(* The experiment harness: regenerates every table and figure of the
   paper's evaluation (§6), plus the in-text comparisons, on the bundled
   models — followed by Bechamel micro-benchmarks of the analysis
   primitives.

     dune exec bench/main.exe                    # everything
     dune exec bench/main.exe -- --list          # list experiments
     dune exec bench/main.exe -- --experiment table1
     dune exec bench/main.exe -- --quick         # reduced enumerations
     dune exec bench/main.exe -- --skip-bechamel

   Absolute numbers differ from the paper (their testbed ran S2E on x86
   binaries for hours; we run a DSL symbolic executor for seconds) — the
   claim reproduced is the *shape*: who wins, by what factor, and where the
   time goes. EXPERIMENTS.md records paper-vs-measured for each entry. *)

open Achilles_smt
open Achilles_symvm
open Achilles_core
open Achilles_baselines
open Achilles_runtime
open Achilles_targets

let quick = ref false
let csv_dir : string option ref = ref None
let banner title = Format.printf "@.=== %s ===@.@." title

(* Optionally persist a figure's data series for external plotting. *)
let write_csv name header rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let path = Filename.concat dir name in
      let oc = open_out path in
      output_string oc (header ^ "\n");
      List.iter (fun row -> output_string oc (row ^ "\n")) rows;
      close_out oc;
      Format.printf "  (series written to %s)@." path

(* Machine-readable twin of a figure: one JSON object per experiment so the
   perf trajectory can be tracked across PRs without re-parsing CSVs. *)
let write_bench_json name fields =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let path = Filename.concat dir name in
      let oc = open_out path in
      let module J = Achilles_obs.Obs.Json in
      output_string oc (J.to_string (J.VObj fields));
      output_string oc "\n";
      close_out oc;
      Format.printf "  (json written to %s)@." path

let fresh_measurement f =
  (* measurements must not be flattered by earlier experiments' caches *)
  Solver.clear_cache ();
  Solver.reset_stats ();
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

(* --- the shared FSP Achilles run (used by E1, E2, E3, E4) --------------------- *)

let fsp_search_config =
  {
    Search.default_config with
    Search.mask = Some Fsp_model.analysis_mask;
    Search.witnesses_per_path = 16;
    Search.distinct_by = Some Fsp_model.block_class;
  }

let fsp_analysis =
  lazy
    (fresh_measurement (fun () ->
         Achilles.analyze ~search_config:fsp_search_config
           ~layout:Fsp_model.layout ~clients:(Fsp_model.clients ())
           ~server:Fsp_model.server ()))

let trojan_classes trojans =
  List.filter_map
    (fun (t : Search.trojan) ->
      match Fsp_model.classify t.Search.witness with
      | Fsp_model.Trojan cls -> Some cls
      | Fsp_model.Valid _ | Fsp_model.Rejected -> None)
    trojans
  |> List.sort_uniq compare

(* --- E1: Table 1 — accuracy of Achilles vs classic symbolic execution --------- *)

(* Classic SE enumerates concrete accepted messages over a reduced
   representative alphabet (NUL, 'a', '*' per payload byte) to keep the
   output finite; see EXPERIMENTS.md. *)
let reduced_alphabet vars =
  let f = Layout.field Fsp_model.layout "buf" in
  List.init f.Layout.size (fun i ->
      let byte = Term.var vars.(f.Layout.offset + i) in
      Term.or_l
        (List.map
           (fun c -> Term.eq byte (Term.int ~width:8 c))
           [ 0; Char.code 'a'; Char.code '*' ]))

let experiment_table1 () =
  banner "E1 / Table 1: accuracy — Achilles vs classic symbolic execution";
  let analysis, achilles_time = Lazy.force fsp_analysis in
  let trojans = Achilles.trojans analysis in
  let classes = trojan_classes trojans in
  let achilles_fp =
    List.length trojans
    - List.length
        (List.filter
           (fun (t : Search.trojan) ->
             match Fsp_model.classify t.Search.witness with
             | Fsp_model.Trojan _ -> true
             | _ -> false)
           trojans)
  in
  let (_classic, enumeration), classic_time =
    fresh_measurement (fun () ->
        let classic = Classic_se.explore Fsp_model.server in
        let cap = if !quick then 40 else 400 in
        let enumeration =
          Classic_se.enumerate ~restrict:reduced_alphabet ~max_per_path:cap
            classic.Classic_se.accepting
        in
        (classic, enumeration))
  in
  let messages = List.map fst enumeration.Classic_se.messages in
  let classic_trojan_msgs, classic_valid_msgs =
    List.partition
      (fun m ->
        match Fsp_model.classify m with
        | Fsp_model.Trojan _ -> true
        | _ -> false)
      messages
  in
  let classic_types =
    List.filter_map
      (fun m ->
        match Fsp_model.classify m with
        | Fsp_model.Trojan cls -> Some cls
        | _ -> None)
      messages
    |> List.sort_uniq compare
  in
  Format.printf
    "                          Achilles      Classic symbolic execution@.";
  Format.printf "  True positives (types)  %-12d  %d%s@." (List.length classes)
    (List.length classic_types)
    (if enumeration.Classic_se.exhausted then "" else " (enumeration capped)");
  Format.printf "  False positives         %-12d  %d accepted-valid messages@."
    achilles_fp
    (List.length classic_valid_msgs);
  Format.printf "  Output volume           %-12d  %d messages to sift@."
    (List.length trojans) (List.length messages);
  Format.printf "  Wall time               %-12.2f  %.2f seconds@."
    achilles_time classic_time;
  Format.printf
    "  (paper, 1 h budget:      80 TP / 0 FP   80 TP / 7,520 FP)@.";
  Format.printf
    "@.  Classic SE finds the accepting paths fast but every Trojan is@.\
    \  bundled with valid messages on the same path (%d Trojan vs %d valid@.\
    \  among the enumerated); only the predicate difference separates them.@."
    (List.length classic_trojan_msgs)
    (List.length classic_valid_msgs)

(* --- E2: Figure 10 — incremental discovery ------------------------------------- *)

let experiment_fig10 () =
  banner "E2 / Figure 10: % of FSP Trojan types discovered vs analysis time";
  let analysis, _ = Lazy.force fsp_analysis in
  let trojans = Achilles.trojans analysis in
  let curve = Report.discovery_curve ~total:80 trojans in
  Format.printf "%s@." (Report.render_ascii_curve curve);
  Format.printf "  %-10s %s@." "seconds" "% discovered";
  List.iteri
    (fun i (t, p) ->
      if i mod 10 = 0 || i = List.length curve - 1 then
        Format.printf "  %-10.3f %.1f@." t p)
    curve;
  write_csv "fig10_discovery.csv" "seconds,percent_discovered"
    (List.map (fun (t, p) -> Printf.sprintf "%.6f,%.2f" t p) curve);
  Format.printf
    "@.  As in the paper, witnesses stream out while the server analysis@.\
    \  runs: interrupting early still yields results (first at %.3fs, all@.\
    \  80 by %.3fs; the paper: first at 20 min, all by 43 min).@."
    (match curve with (t, _) :: _ -> t | [] -> 0.)
    (match List.rev curve with (t, _) :: _ -> t | [] -> 0.)

(* --- E3: Figure 11 — alive client predicates vs path length --------------------- *)

let experiment_fig11 () =
  banner "E3 / Figure 11: client path predicates alive per server path length";
  let analysis, _ = Lazy.force fsp_analysis in
  let samples =
    analysis.Achilles.report.Search.search_stats.Search.alive_samples
  in
  let points =
    List.map
      (fun (s : Search.alive_sample) ->
        (float_of_int s.Search.path_length, float_of_int s.Search.alive))
      samples
  in
  Format.printf "%s@." (Report.render_ascii_curve points);
  write_csv "fig11_alive.csv" "path_length,alive_client_predicates"
    (List.map
       (fun (s : Search.alive_sample) ->
         Printf.sprintf "%d,%d" s.Search.path_length s.Search.alive)
       samples);
  (* aggregate: min/max alive per path length *)
  let by_len = Hashtbl.create 32 in
  List.iter
    (fun (s : Search.alive_sample) ->
      let lo, hi =
        match Hashtbl.find_opt by_len s.Search.path_length with
        | Some (lo, hi) -> (min lo s.Search.alive, max hi s.Search.alive)
        | None -> (s.Search.alive, s.Search.alive)
      in
      Hashtbl.replace by_len s.Search.path_length (lo, hi))
    samples;
  Format.printf "  %-12s %-10s %s@." "path length" "min alive" "max alive";
  Hashtbl.fold (fun len range acc -> (len, range) :: acc) by_len []
  |> List.sort compare
  |> List.iter (fun (len, (lo, hi)) ->
         Format.printf "  %-12d %-10d %d@." len lo hi);
  Format.printf
    "@.  Longer execution paths are more specialized and match fewer client@.\
    \  path predicates, so the per-branch Trojan check keeps getting cheaper@.\
    \  — the same decay as the paper's Figure 11.@."

(* --- E4: the §6.2 timing split --------------------------------------------------- *)

let experiment_timing () =
  banner "E4: analysis time split (client / preprocessing / server)";
  let analysis, _ = Lazy.force fsp_analysis in
  let t = analysis.Achilles.timing in
  (* the paper's preprocessing has no cross-path memoization; measure that
     raw cost too for the faithful comparison *)
  let raw_preprocessing =
    Solver.clear_cache ();
    let _, stats =
      Different_from.compute ~memoize:false ~mask:Fsp_model.analysis_mask
        analysis.Achilles.client
    in
    stats.Different_from.wall_time
  in
  let total =
    t.Achilles.client_extraction +. raw_preprocessing
    +. t.Achilles.server_analysis
  in
  let pct x = 100. *. x /. total in
  Format.printf "  %-30s %8s %8s    %s@." "phase" "seconds" "share"
    "(paper: 1 h total)";
  Format.printf "  %-30s %8.2f %7.1f%%    3 min  (4.8%%)@."
    "client predicate" t.Achilles.client_extraction
    (pct t.Achilles.client_extraction);
  Format.printf "  %-30s %8.2f %7.1f%%    15 min (23.8%%)@."
    "preprocessing (paper-faithful)" raw_preprocessing (pct raw_preprocessing);
  Format.printf "  %-30s %8.2f %7.1f%%    45 min (71.4%%)@." "server analysis"
    t.Achilles.server_analysis
    (pct t.Achilles.server_analysis);
  Format.printf "  %-30s %8.2f          (our signature memoization)@."
    "preprocessing (memoized)" t.Achilles.preprocessing;
  Format.printf
    "@.  Same ordering as the paper: extracting PC is cheap, the raw@.\
    \  differentFrom precomputation is the middle cost, and the server@.\
    \  search dominates. Memoizing pair checks on alpha-canonical path@.\
    \  signatures (an optimization beyond the paper) collapses the@.\
    \  preprocessing phase.@."

(* --- E5: the fuzzing comparison --------------------------------------------------- *)

(* How many concrete Trojan messages exist in the full space of the 8
   analyzed bytes (cmd, bb_len, buf), headers held at their constants. *)
let count_trojan_messages () =
  let printable = 94. in
  let zero_or_printable = 95. in
  let total = ref 0. in
  (* class (L, t): prefix of t printable bytes, NUL at t, NUL at L, the
     remaining payload bytes zero-or-printable *)
  for l = 1 to 4 do
    for t = 0 to l - 1 do
      let free_bytes = Fsp_model.buf_size - t - 1 - 1 in
      (* positions: t and L are pinned NUL (t < L), the other bytes free *)
      let free_bytes = if t = l then free_bytes + 1 else free_bytes in
      total :=
        !total
        +. (8. (* commands *) *. (printable ** float_of_int t)
           *. (zero_or_printable ** float_of_int free_bytes))
    done
  done;
  !total

let experiment_fuzzing () =
  banner "E5: black-box fuzzing comparison (§6.2)";
  let oracle m =
    match Fsp_model.classify m with
    | Fsp_model.Trojan _ -> Fuzzer.Trojan
    | Fsp_model.Valid _ -> Fuzzer.Valid
    | Fsp_model.Rejected -> Fuzzer.Rejected
  in
  let budget = `Seconds (if !quick then 1.0 else 3.0) in
  let uniform, _ =
    fresh_measurement (fun () ->
        Fuzzer.fuzz ~server:Fsp_model.server
          ~gen:(Fuzzer.random_bytes ~size:Fsp_model.message_size)
          ~oracle ~budget ())
  in
  Format.printf "  uniform random fuzzing: %d tests in %.1fs (%.0f/min)@."
    uniform.Fuzzer.tests uniform.Fuzzer.wall_time
    uniform.Fuzzer.throughput_per_min;
  Format.printf "    accepted: %d, Trojans found: %d@." uniform.Fuzzer.accepted
    uniform.Fuzzer.trojans;
  (* the paper's "fair" fuzzer: only the analyzed fields are fuzzed, the
     approximated headers are held at their constants *)
  let fair_gen rng =
    let msg = Array.make Fsp_model.message_size (Bv.zero 8) in
    let set_field name value =
      let f = Layout.field Fsp_model.layout name in
      let rec go i v =
        if i >= 0 then begin
          msg.(f.Layout.offset + i) <- Bv.of_int ~width:8 (v land 0xFF);
          go (i - 1) (v lsr 8)
        end
      in
      go (f.Layout.size - 1) value
    in
    set_field "sum" Fsp_model.sum_const;
    set_field "bb_key" Fsp_model.key_const;
    set_field "bb_seq" Fsp_model.seq_const;
    set_field "bb_pos" Fsp_model.pos_const;
    set_field "cmd"
      (List.nth Fsp_model.commands (Random.State.int rng 8)).Fsp_model.code;
    set_field "bb_len" (1 + Random.State.int rng 4);
    let f = Layout.field Fsp_model.layout "buf" in
    for i = 0 to f.Layout.size - 1 do
      msg.(f.Layout.offset + i) <- Bv.of_int ~width:8 (Random.State.int rng 256)
    done;
    msg
  in
  let fair, _ =
    fresh_measurement (fun () ->
        Fuzzer.fuzz ~server:Fsp_model.server ~gen:fair_gen ~oracle
          ~classify:(fun m ->
            match Fsp_model.class_of_witness m with
            | Some cls -> Some (Format.asprintf "%a" Fsp_model.pp_class cls)
            | None -> None)
          ~budget ())
  in
  Format.printf
    "  \"fair\" fuzzing (headers fixed, 8 relevant bytes random): %d tests@."
    fair.Fuzzer.tests;
  Format.printf
    "    accepted: %d, Trojans: %d, distinct Trojan types: %d of 80@."
    fair.Fuzzer.accepted fair.Fuzzer.trojans
    fair.Fuzzer.distinct_trojan_classes;
  let trojan_messages = count_trojan_messages () in
  let space = 2. ** 64. (* the 8 analyzed bytes *) in
  let per_hour =
    Fuzzer.expected_finds ~trojan_messages ~space
      ~tests:(uniform.Fuzzer.throughput_per_min *. 60.)
  in
  Format.printf
    "    analytic: %.3g Trojan messages in a %.3g space => %.2g expected@.\
    \    finds per hour at the measured throughput@."
    trojan_messages space per_hour;
  Format.printf
    "    (paper: 66e6 Trojans / 1.8e19 messages, 75,000 tests/min,@.\
    \     0.00001 expected finds per hour, 4.5e6 false positives)@.";
  let analysis, achilles_time = Lazy.force fsp_analysis in
  let found = List.length (trojan_classes (Achilles.trojans analysis)) in
  Format.printf
    "@.  Achilles found all %d Trojan types in %.2fs; the fuzzer's expected@.\
    \  yield in the same time is %.2g — %.1e times less effective, matching@.\
    \  the paper's orders-of-magnitude gap.@."
    found achilles_time
    (Fuzzer.expected_finds ~trojan_messages ~space
       ~tests:(uniform.Fuzzer.throughput_per_min /. 60. *. achilles_time))
    (float_of_int found
    /. max 1e-300
         (Fuzzer.expected_finds ~trojan_messages ~space
            ~tests:(uniform.Fuzzer.throughput_per_min /. 60. *. achilles_time)))

(* --- E6: PBFT accuracy -------------------------------------------------------------- *)

let pbft_config =
  lazy
    {
      Search.default_config with
      Search.mask = Some Pbft_model.analysis_mask;
      Search.interp =
        Local_state.over_approximate ~vars:[ ("last_rid", 16) ]
          Interp.default_config;
      Search.witnesses_per_path = 2;
    }

let experiment_pbft () =
  banner "E6: PBFT — rediscovering the MAC attack (§6.2)";
  let analysis, elapsed =
    fresh_measurement (fun () ->
        Achilles.analyze
          ~search_config:(Lazy.force pbft_config)
          ~layout:Pbft_model.layout ~clients:[ Pbft_model.client ]
          ~server:Pbft_model.replica ())
  in
  let trojans = Achilles.trojans analysis in
  let all_mac =
    List.for_all
      (fun (t : Search.trojan) -> Pbft_model.is_mac_trojan t.Search.witness)
      trojans
  in
  Format.printf "  analysis time: %.2fs (paper: \"a few seconds\")@." elapsed;
  Format.printf "  accepting paths: %d, all carrying the Trojan: %b@."
    analysis.Achilles.report.Search.search_stats.Search.accepting_paths
    (List.length trojans
    >= analysis.Achilles.report.Search.search_stats.Search.accepting_paths);
  Format.printf "  every witness is a bad-authenticator request: %b@." all_mac;
  Format.printf
    "@.  A single Trojan type (any request whose MAC differs from the@.\
    \  constant correct clients produce), present on every accepting path,@.\
    \  bundled with valid requests — exactly the paper's finding.@."

(* --- E7: the §6.4 optimization ablation ----------------------------------------------- *)

let experiment_ablation () =
  banner "E7 / §6.4: optimized search vs non-optimized differencing";
  let scale label command_set witnesses =
    let commands = command_set in
    let clients = Fsp_model.clients ~command_set:commands () in
    let server = Fsp_model.server_for commands in
    Format.printf "  -- %s: %d clients (%d client paths) --@." label
      (List.length commands)
      (4 * List.length commands);
    let run name config =
      let analysis, time =
        fresh_measurement (fun () ->
            Achilles.analyze ~search_config:config ~layout:Fsp_model.layout
              ~clients ~server ())
      in
      let witnesses = List.length (Achilles.trojans analysis) in
      let stats = analysis.Achilles.report.Search.search_stats in
      Format.printf
        "  %-34s %7.2fs   %d witnesses, %d alive checks (+%d transitive)@."
        name time witnesses stats.Search.alive_checks
        stats.Search.transitive_drops;
      time
    in
    let base = { fsp_search_config with Search.witnesses_per_path = witnesses } in
    let full = run "Achilles (all optimizations)" base in
    let _ =
      run "  - incremental solver sessions"
        { base with Search.incremental_bindings = false }
    in
    let _ =
      run "  - differentFrom matrix"
        { base with Search.use_different_from = false }
    in
    let _ =
      run "  - alive-set dropping"
        {
          base with
          Search.use_different_from = false;
          Search.drop_alive = false;
        }
    in
    let posthoc =
      run "non-optimized (post-hoc diff)"
        {
          base with
          Search.use_different_from = false;
          Search.drop_alive = false;
          Search.prune_no_trojan = false;
        }
    in
    Format.printf "  non-optimized / optimized = %.2fx@.@."
      (posthoc /. max full 1e-9)
  in
  scale "paper scale" Fsp_model.commands 16;
  if not !quick then
    scale "stress scale" (Fsp_model.extended_commands 24) 16;
  Format.printf
    "  (paper: 2h15 non-optimized vs 1h03 optimized = 2.14x; the gap@.\
    \  grows with the number of client path predicates, which is what the@.\
    \  stress scale shows)@."

(* --- E8: FSP impact (§6.3) -------------------------------------------------------------- *)

let experiment_impact_fsp () =
  banner "E8 / §6.3: FSP impact — wildcard and mismatched-length Trojans";
  (* the wildcard trap *)
  let victim = Fsp_deploy.create ~files:[ "f1"; "f2"; "bank"; "f*" ] () in
  let r =
    Fsp_deploy.exec victim ~command:(Fsp_deploy.command_named "del") ~arg:"f*"
  in
  Format.printf
    "  correct client 'del f*'  -> expands to [%s]; files left: [%s]@."
    (String.concat "; " r.Fsp_deploy.expanded)
    (String.concat "; " (Fsp_deploy.list_files victim));
  let clean = Fsp_deploy.create ~files:[ "f1"; "f2"; "bank"; "f*" ] () in
  (match Fsp_deploy.build_message (Fsp_deploy.command_named "del") "f*" with
  | Ok payload -> (
      match Fsp_deploy.deliver_raw clean payload with
      | Fsp_deploy.Accepted { affected; _ } ->
          Format.printf
            "  Trojan 'del f*' (literal) -> deletes [%s]; files left: [%s]@."
            (String.concat "; " affected)
            (String.concat "; " (Fsp_deploy.list_files clean))
      | Fsp_deploy.Rejected -> ())
  | Error _ -> ());
  (* extra payload smuggling *)
  let analysis, _ = Lazy.force fsp_analysis in
  let smugglers =
    List.filter
      (fun (t : Search.trojan) ->
        Fsp_deploy.extra_payload t.Search.witness <> "")
      (Achilles.trojans analysis)
  in
  Format.printf
    "  mismatched-length witnesses carrying covert payload: %d of %d@."
    (List.length smugglers)
    (List.length (Achilles.trojans analysis));
  match smugglers with
  | t :: _ ->
      Format.printf "  e.g. path %S with %d covert byte(s): %s@."
        (Fsp_deploy.effective_path t.Search.witness)
        (String.length (Fsp_deploy.extra_payload t.Search.witness) / 2)
        (Fsp_deploy.extra_payload t.Search.witness)
  | [] -> ()

(* --- E9: PBFT impact (§6.3) ---------------------------------------------------------------- *)

let experiment_impact_pbft () =
  banner "E9 / §6.3: PBFT impact — MAC-attack recovery cost";
  let requests = if !quick then 100 else 500 in
  let clean = Pbft_deploy.run_workload ~requests () in
  Format.printf "  %-18s %9s %10s %10s %12s@." "workload" "committed"
    "recoveries" "cost" "throughput";
  Format.printf "  %-18s %9d %10d %10d %12.2f@." "clean"
    clean.Pbft_deploy.committed clean.Pbft_deploy.recoveries
    clean.Pbft_deploy.total_cost clean.Pbft_deploy.throughput;
  List.iter
    (fun every ->
      let a = Pbft_deploy.run_workload ~malicious_every:every ~requests () in
      Format.printf "  %-18s %9d %10d %10d %12.2f  (%.1fx slower)@."
        (Printf.sprintf "1/%d bad MACs" every)
        a.Pbft_deploy.committed a.Pbft_deploy.recoveries a.Pbft_deploy.total_cost
        a.Pbft_deploy.throughput
        (clean.Pbft_deploy.throughput /. a.Pbft_deploy.throughput))
    [ 10; 4; 2 ]

(* --- E10: local-state modes (§3.4) ------------------------------------------------------------ *)

let experiment_local_state () =
  banner "E10 / §3.4: the three local-state modes on the Paxos acceptor";
  let analyze label interp =
    let analysis, time =
      fresh_measurement (fun () ->
          Achilles.analyze
            ~search_config:
              {
                Search.default_config with
                Search.mask = Some [ "mtype"; "ballot"; "value" ];
                Search.interp = interp;
                Search.witnesses_per_path = 3;
              }
            ~layout:Paxos_model.layout
            ~clients:[ Paxos_model.proposer_concrete ~value:7 ]
            ~server:Paxos_model.acceptor ())
    in
    Format.printf "  %-38s %5.2fs  %d witnesses@." label time
      (List.length (Achilles.trojans analysis))
  in
  analyze "concrete (promised=5)"
    (Local_state.concrete ~prefix:(Paxos_model.phase1_prefix ~ballot:5)
       Interp.default_config);
  let pc, _ =
    Client_extract.extract ~layout:Paxos_model.layout
      [ Paxos_model.proposer_symbolic ]
  in
  let first = List.hd pc.Predicate.paths in
  analyze "constructed symbolic (round 1 symbolic)"
    (Local_state.constructed_symbolic
       ~rounds:
         [
           {
             State.dst = Term.int ~width:8 0;
             State.payload = first.Predicate.message;
             State.path_at_send = List.rev first.Predicate.constraints;
             State.during_analysis = false;
           };
         ]
       Interp.default_config);
  analyze "over-approximate (promised <= 10)"
    (Local_state.over_approximate ~vars:[ ("promised", 16) ]
       ~constrain:(fun m ->
         [
           Term.ule (State.String_map.find "promised" m) (Term.int ~width:16 10);
         ])
       Interp.default_config);
  Format.printf
    "@.  One symbolic run covers what would otherwise need one concrete@.\
    \  analysis per proposal value — the trade-off described in §3.4.@."

(* --- E11: multicore scaling ----------------------------------------------------------------------- *)

let experiment_scaling () =
  banner "E11: domain-parallel server search — scaling and determinism";
  let run domains =
    (* identical starting state for every run so the reports (including
       fresh-variable ids) are comparable byte for byte *)
    Solver.reset_all_for_tests ();
    Term.set_fresh_counter 0;
    let t0 = Unix.gettimeofday () in
    let analysis =
      Achilles.analyze
        ~search_config:{ fsp_search_config with Search.domains }
        ~layout:Fsp_model.layout ~clients:(Fsp_model.clients ())
        ~server:Fsp_model.server ()
    in
    (analysis, Unix.gettimeofday () -. t0)
  in
  let runs = List.map (fun d -> (d, run d)) [ 1; 2; 4 ] in
  let _, (_, t1) = List.hd runs in
  let base_digest =
    let _, (a, _) = List.hd runs in
    Report.report_digest a.Achilles.report
  in
  Format.printf "  %-8s %10s %10s %9s  %s@." "domains" "total (s)"
    "server (s)" "speedup" "report digest";
  let rows =
    List.map
      (fun (d, ((analysis : Achilles.analysis), t)) ->
        let digest = Report.report_digest analysis.Achilles.report in
        let server = analysis.Achilles.timing.Achilles.server_analysis in
        Format.printf "  %-8d %10.2f %10.2f %8.2fx  %s%s@." d t server
          (t1 /. max t 1e-9) digest
          (if digest = base_digest then "" else "  << MISMATCH");
        Printf.sprintf "%d,%.4f,%.4f,%.4f,%s" d t server (t1 /. max t 1e-9)
          digest)
      runs
  in
  let all_equal =
    List.for_all
      (fun (_, ((a : Achilles.analysis), _)) ->
        Report.report_digest a.Achilles.report = base_digest)
      runs
  in
  Format.printf "  reports identical across domain counts: %b@." all_equal;
  let cores =
    match Domain.recommended_domain_count () with n when n > 0 -> n | _ -> 1
  in
  Format.printf
    "@.  (speedup is bounded by the machine's cores — this host reports %d;@.\
    \  on a single-core host the parallel runs only demonstrate determinism@.\
    \  and pay the sharding spine-replay overhead)@."
    cores;
  (* always persist the series, defaulting next to the other figure data *)
  let saved = !csv_dir in
  if saved = None then begin
    (try Unix.mkdir "bench" 0o755
     with Unix.Unix_error ((Unix.EEXIST | Unix.EPERM), _, _) -> ());
    csv_dir := Some (Filename.concat "bench" "figures")
  end;
  write_csv "scaling.csv" "domains,total_s,server_analysis_s,speedup,digest"
    rows;
  csv_dir := saved;
  if not all_equal then begin
    Format.eprintf "scaling: reports differ across domain counts@.";
    exit 1
  end

(* --- E12: robustness drill ----------------------------------------------------------------------- *)

let experiment_robustness () =
  banner "E12: degraded runs — fault injection and starved solver budgets";
  let distinct_states (r : Search.report) =
    List.sort_uniq compare
      (List.map
         (fun (t : Search.trojan) -> t.Search.server_state_id)
         r.Search.trojans)
  in
  let run ~label ~fault_rate ~budget =
    Solver.reset_all_for_tests ();
    Term.set_fresh_counter 0;
    Solver.set_fault_injection ~rate:fault_rate ~seed:0xf5b ();
    let analysis =
      Fun.protect
        ~finally:(fun () -> Solver.set_fault_injection ())
        (fun () ->
          Achilles.analyze
            ~search_config:
              {
                fsp_search_config with
                Search.domains = 4;
                Search.solver_budget = budget;
              }
            ~layout:Fsp_model.layout ~clients:(Fsp_model.clients ())
            ~server:Fsp_model.server ())
    in
    let r = analysis.Achilles.report in
    let c = r.Search.coverage in
    let unconfirmed =
      List.length
        (List.filter
           (fun (t : Search.trojan) -> not t.Search.confirmed)
           r.Search.trojans)
    in
    Format.printf
      "  %-16s %6.2fs  %3d trojans (%d unconfirmed), %2d states, unknowns \
       %d/%d/%d, exhausted %d, faults %d@."
      label r.Search.search_stats.Search.wall_time
      (List.length r.Search.trojans)
      unconfirmed
      (List.length (distinct_states r))
      c.Search.unknown_alive c.Search.unknown_prune c.Search.unknown_witness
      c.Search.budget_exhaustions c.Search.injected_faults;
    r
  in
  let clean = run ~label:"clean" ~fault_rate:0. ~budget:None in
  let faulty = run ~label:"faults 5%" ~fault_rate:0.05 ~budget:None in
  let starved =
    run ~label:"starved budget" ~fault_rate:0.
      ~budget:(Some (Solver.budget ~conflicts:0 ~escalations:1 ()))
  in
  (* the over-approximation guarantee, measured: a degraded run may add
     unconfirmed trojan states but must not lose one the clean run found *)
  let lost label degraded =
    let d = List.length (distinct_states degraded) in
    let c = List.length (distinct_states clean) in
    if d < c then begin
      Format.eprintf "robustness: %s run lost trojan states (%d < %d)@." label
        d c;
      true
    end
    else false
  in
  let any_lost = lost "faulty" faulty || lost "starved" starved in
  Format.printf "  degraded runs kept every clean trojan state: %b@."
    (not any_lost);
  if any_lost then exit 1

(* --- E13: hash-consed sharing ------------------------------------------------------------------- *)

let experiment_sharing () =
  banner "E13: hash-consed term core — sharing ratio, memo hits, end-to-end cost";
  (* Force the lazy config outside the measured runs: [over_approximate]
     allocates a fresh variable at construction, which would shift the id
     sequence of whichever run happened to force it first. *)
  let pbft = Lazy.force pbft_config in
  let targets =
    [
      ( "fsp",
        fun () ->
          Achilles.analyze ~search_config:fsp_search_config
            ~layout:Fsp_model.layout ~clients:(Fsp_model.clients ())
            ~server:Fsp_model.server () );
      ( "pbft",
        fun () ->
          Achilles.analyze ~search_config:pbft ~layout:Pbft_model.layout
            ~clients:[ Pbft_model.client ] ~server:Pbft_model.replica () );
    ]
  in
  (* One measurement = one full analysis from an identical starting state
     (counters zeroed, every cache/interning table dropped), with sharing on
     or off. Off reproduces the pre-interning cost model: every construction
     allocates, every equality/ordering walks structurally. *)
  let measure sharing analyze =
    Solver.reset_all_for_tests ();
    Term.set_fresh_counter 0;
    Term.set_sharing sharing;
    let t0 = Unix.gettimeofday () in
    let analysis = analyze () in
    let wall = Unix.gettimeofday () -. t0 in
    let agg = Solver.aggregate_stats () in
    let intern_hits, created = Term.aggregate_intern_stats () in
    let blast_hits, blast_misses = Bitblast.aggregate_memo_stats () in
    let work = Term.structural_work () in
    let digest = Report.report_digest analysis.Achilles.report in
    ( digest,
      [
        ("wall_s", Printf.sprintf "%.4f" wall);
        ("solve_s", Printf.sprintf "%.4f" agg.Solver.solve_time);
        ("queries", string_of_int agg.Solver.queries);
        ("sat_calls", string_of_int agg.Solver.sat_calls);
        ("solver_cache_hits", string_of_int agg.Solver.cache_hits);
        ("solver_cache_entries", string_of_int (Solver.aggregate_cache_entries ()));
        ("solver_cache_evictions", string_of_int agg.Solver.cache_evictions);
        ("terms_created", string_of_int created);
        ("intern_hits", string_of_int intern_hits);
        ( "sharing_ratio",
          Printf.sprintf "%.4f"
            (float_of_int intern_hits
            /. float_of_int (max 1 (intern_hits + created))) );
        ("bitblast_memo_hits", string_of_int blast_hits);
        ("bitblast_memo_misses", string_of_int blast_misses);
        ("structural_work", string_of_int work);
        ("digest", digest);
      ] )
  in
  let rows = ref [] in
  let failed = ref false in
  Fun.protect
    ~finally:(fun () -> Term.set_sharing true)
    (fun () ->
      List.iter
        (fun (name, analyze) ->
          let digest_on, on = measure true analyze in
          let digest_off, off = measure false analyze in
          if digest_on <> digest_off then begin
            Format.eprintf
              "sharing: %s report digest differs between sharing modes (%s \
               vs %s)@."
              name digest_on digest_off;
            failed := true
          end;
          let get k row = List.assoc k row in
          Format.printf "  %-5s sharing=on  wall %ss, solve %ss, %s queries, \
                         sharing ratio %s, blast memo %s/%s, work %s@."
            name (get "wall_s" on) (get "solve_s" on) (get "queries" on)
            (get "sharing_ratio" on) (get "bitblast_memo_hits" on)
            (get "bitblast_memo_misses" on) (get "structural_work" on);
          Format.printf "  %-5s sharing=off wall %ss, solve %ss, %s queries, \
                         work %s@."
            name (get "wall_s" off) (get "solve_s" off) (get "queries" off)
            (get "structural_work" off);
          (* Queries and bitblast CNF are pinned byte-identical across modes
             (that is the digest guarantee), so the work counter that can
             legitimately differ is term construction: every off-mode
             construction allocates and hashes a fresh node, every on-mode
             intern hit answers in O(1). *)
          let created_on = int_of_string (get "terms_created" on) in
          let created_off = int_of_string (get "terms_created" off) in
          let alloc_reduction =
            float_of_int created_off /. float_of_int (max 1 created_on)
          in
          let work_on = int_of_string (get "structural_work" on) in
          let work_off = int_of_string (get "structural_work" off) in
          let work_reduction =
            float_of_int work_off /. float_of_int (max 1 work_on)
          in
          Format.printf
            "  %-5s term-construction work: %d -> %d nodes allocated (%.1fx \
             reduction); structural walks: %d -> %d nodes (%.1fx); digests \
             identical: %b@."
            name created_off created_on alloc_reduction work_off work_on
            work_reduction (digest_on = digest_off);
          if name = "fsp" && alloc_reduction < 2. then begin
            Format.eprintf
              "sharing: expected >= 2x term-construction work reduction on \
               FSP, got %.2fx@."
              alloc_reduction;
            failed := true
          end;
          let csv mode row =
            Printf.sprintf "%s,%s,%s" name mode
              (String.concat "," (List.map snd row))
          in
          rows := csv "off" off :: csv "on" on :: !rows)
        targets);
  (* always persist the series, like the other figure experiments *)
  let saved = !csv_dir in
  if saved = None then begin
    (try Unix.mkdir "bench" 0o755
     with Unix.Unix_error ((Unix.EEXIST | Unix.EPERM), _, _) -> ());
    csv_dir := Some (Filename.concat "bench" "figures")
  end;
  write_csv "sharing.csv"
    "target,sharing,wall_s,solve_s,queries,sat_calls,solver_cache_hits,solver_cache_entries,solver_cache_evictions,terms_created,intern_hits,sharing_ratio,bitblast_memo_hits,bitblast_memo_misses,structural_work,digest"
    (List.rev !rows);
  csv_dir := saved;
  if !failed then exit 1

(* --- E14: per-phase profile through the tracing layer ------------------------------- *)

module Obs = Achilles_obs.Obs

let experiment_profile () =
  banner "E14: per-phase time attribution — tracing + trace summarize";
  let profile name run =
    Solver.reset_all_for_tests ();
    Term.set_fresh_counter 0;
    let file =
      Filename.temp_file ("achilles-profile-" ^ name ^ "-") ".jsonl"
    in
    Obs.Trace.enable file;
    ignore (run ());
    Obs.Trace.disable ();
    let summary =
      match Obs.Summary.load file with
      | Ok s -> s
      | Error e ->
          Format.printf "  %s: trace unreadable: %s@." name e;
          exit 1
    in
    Sys.remove file;
    (name, summary)
  in
  let fsp =
    profile "fsp" (fun () ->
        Achilles.analyze ~search_config:fsp_search_config
          ~layout:Fsp_model.layout ~clients:(Fsp_model.clients ())
          ~server:Fsp_model.server ())
  in
  let pbft =
    profile "pbft" (fun () ->
        Achilles.analyze
          ~search_config:(Lazy.force pbft_config)
          ~layout:Pbft_model.layout ~clients:[ Pbft_model.client ]
          ~server:Pbft_model.replica ())
  in
  let rows = ref [] in
  List.iter
    (fun (name, (s : Obs.Summary.t)) ->
      let open Obs.Summary in
      Format.printf "@.  %s: %.3fs wall, %.1f%% attributed to phases@." name
        s.wall
        (100. *. s.attributed);
      Format.printf "    %-16s %10s %8s %8s@." "phase" "self(s)" "share"
        "spans";
      let sorted =
        List.sort (fun a b -> compare b.self_seconds a.self_seconds) s.rows
      in
      List.iter
        (fun r ->
          let share =
            if s.wall > 0. then r.self_seconds /. s.wall else 0.
          in
          Format.printf "    %-16s %10.3f %7.1f%% %8d@." r.row_phase
            r.self_seconds (100. *. share) r.row_spans;
          rows :=
            Printf.sprintf "%s,%s,%.6f,%.6f,%d,%.4f" name r.row_phase
              r.self_seconds r.total_seconds r.row_spans share
            :: !rows)
        sorted)
    [ fsp; pbft ];
  (* always persist the per-phase shares, like the other figure experiments *)
  let saved = !csv_dir in
  if saved = None then begin
    (try Unix.mkdir "bench" 0o755
     with Unix.Unix_error ((Unix.EEXIST | Unix.EPERM), _, _) -> ());
    csv_dir := Some (Filename.concat "bench" "figures")
  end;
  write_csv "profile.csv" "target,phase,self_s,total_s,spans,share_of_wall"
    (List.rev !rows);
  csv_dir := saved;
  (* acceptance: the taxonomy must account for (almost) the whole FSP run *)
  let _, (fsp_summary : Obs.Summary.t) = fsp in
  if fsp_summary.Obs.Summary.attributed < 0.95 then begin
    Format.printf
      "  FAIL: only %.1f%% of the FSP run attributed to named phases (< 95%%)@."
      (100. *. fsp_summary.Obs.Summary.attributed);
    exit 1
  end

(* --- E15: incremental vs scratch solving ----------------------------------------- *)

let experiment_incremental () =
  banner
    "E15: assumption-based incremental solving — frame stack vs scratch \
     queries";
  (* One measurement = one traced FSP analysis from an identical starting
     state, with incremental solving on or off, at a given domain count.
     The digest must be byte-identical across all four combinations: the
     frame contexts serve verdict-only queries, witness extraction stays on
     the scratch path, and complete solvers agree on verdicts. *)
  let measure ~incremental ~domains =
    Solver.reset_all_for_tests ();
    Term.set_fresh_counter 0;
    Solver.set_incremental incremental;
    let file = Filename.temp_file "achilles-incremental-" ".jsonl" in
    Obs.Trace.enable file;
    let t0 = Unix.gettimeofday () in
    let analysis =
      Achilles.analyze
        ~search_config:{ fsp_search_config with Search.domains }
        ~layout:Fsp_model.layout ~clients:(Fsp_model.clients ())
        ~server:Fsp_model.server ()
    in
    let wall = Unix.gettimeofday () -. t0 in
    Obs.Trace.disable ();
    let summary =
      match Obs.Summary.load file with
      | Ok s -> s
      | Error e ->
          Format.printf "  incremental: trace unreadable: %s@." e;
          exit 1
    in
    Sys.remove file;
    let self phase =
      match
        List.find_opt
          (fun r -> r.Obs.Summary.row_phase = phase)
          summary.Obs.Summary.rows
      with
      | Some r -> r.Obs.Summary.self_seconds
      | None -> 0.
    in
    let agg = Solver.aggregate_stats () in
    let _, blast_misses = Bitblast.aggregate_memo_stats () in
    let digest = Report.report_digest analysis.Achilles.report in
    ( digest,
      [
        ("wall_s", Printf.sprintf "%.4f" wall);
        ("solve_s", Printf.sprintf "%.4f" agg.Solver.solve_time);
        ("solver_query_self_s", Printf.sprintf "%.4f" (self "solver_query"));
        ("bitblast_self_s", Printf.sprintf "%.4f" (self "bitblast"));
        ("queries", string_of_int agg.Solver.queries);
        ("sat_calls", string_of_int agg.Solver.sat_calls);
        ("incremental_checks", string_of_int agg.Solver.incremental_checks);
        ("bitblast_memo_misses", string_of_int blast_misses);
        ("learnts_retained", string_of_int agg.Solver.learnts_retained);
        ("frame_pushes", string_of_int agg.Solver.frame_pushes);
        ("frame_pops", string_of_int agg.Solver.frame_pops);
        ("context_resets", string_of_int agg.Solver.context_resets);
        ("digest", digest);
      ] )
  in
  let domain_counts = [ 1; 4 ] in
  let rows = ref [] in
  let failed = ref false in
  let get k row = List.assoc k row in
  Fun.protect
    ~finally:(fun () -> Solver.set_incremental true)
    (fun () ->
      List.iter
        (fun domains ->
          let digest_on, on = measure ~incremental:true ~domains in
          let digest_off, off = measure ~incremental:false ~domains in
          if digest_on <> digest_off then begin
            Format.eprintf
              "incremental: FSP report digest differs between modes at %d \
               domain(s) (%s vs %s)@."
              domains digest_on digest_off;
            failed := true
          end;
          Format.printf
            "  fsp j=%d incremental=on  wall %ss, solver_query self %ss, \
             bitblast self %ss, %s sat calls, %s blast misses, %s learnts \
             retained@."
            domains (get "wall_s" on)
            (get "solver_query_self_s" on)
            (get "bitblast_self_s" on) (get "sat_calls" on)
            (get "bitblast_memo_misses" on)
            (get "learnts_retained" on);
          Format.printf
            "  fsp j=%d incremental=off wall %ss, solver_query self %ss, \
             bitblast self %ss, %s sat calls, %s blast misses@."
            domains (get "wall_s" off)
            (get "solver_query_self_s" off)
            (get "bitblast_self_s" off) (get "sat_calls" off)
            (get "bitblast_memo_misses" off);
          (* Wall-clock is noisy under CI; the deterministic proxy for the
             avoided work is CNF translation: scratch mode re-bitblasts the
             whole conjunction on every non-cached query, the frame context
             translates each distinct term once. *)
          let misses_on = int_of_string (get "bitblast_memo_misses" on) in
          let misses_off = int_of_string (get "bitblast_memo_misses" off) in
          let q_on = float_of_string (get "solver_query_self_s" on) in
          let q_off = float_of_string (get "solver_query_self_s" off) in
          Format.printf
            "  fsp j=%d translation work: %d -> %d memo misses (%.1fx \
             reduction); solver_query self-time: %.4fs -> %.4fs (%.2fx); \
             digests identical: %b@."
            domains misses_off misses_on
            (float_of_int misses_off /. float_of_int (max 1 misses_on))
            q_off q_on
            (q_off /. Float.max q_on 1e-9)
            (digest_on = digest_off);
          if domains = 1 && misses_on >= misses_off then begin
            Format.eprintf
              "incremental: expected a translation-work reduction on FSP, \
               got %d (on) vs %d (off) bitblast memo misses@."
              misses_on misses_off;
            failed := true
          end;
          let csv mode row =
            Printf.sprintf "fsp,%d,%s,%s" domains mode
              (String.concat "," (List.map snd row))
          in
          rows := csv "off" off :: csv "on" on :: !rows)
        domain_counts);
  (* always persist the series, like the other figure experiments *)
  let saved = !csv_dir in
  if saved = None then begin
    (try Unix.mkdir "bench" 0o755
     with Unix.Unix_error ((Unix.EEXIST | Unix.EPERM), _, _) -> ());
    csv_dir := Some (Filename.concat "bench" "figures")
  end;
  write_csv "incremental.csv"
    "target,domains,incremental,wall_s,solve_s,solver_query_self_s,bitblast_self_s,queries,sat_calls,incremental_checks,bitblast_memo_misses,learnts_retained,frame_pushes,frame_pops,context_resets,digest"
    (List.rev !rows);
  csv_dir := saved;
  if !failed then exit 1

(* --- E18: static dependency slicing ----------------------------------------------- *)

let experiment_slice () =
  banner
    "E18: static slice oracle — taint-directed feasibility vs full-path \
     queries";
  (* One measurement = one traced FSP analysis from an identical starting
     state, slice oracle on or off, at a given domain count. The oracle is
     verdict-preserving, so the digest must be byte-identical across every
     combination; what changes is how branch feasibility gets decided —
     statically from equality chains, from the per-run memo, or by a
     cone-restricted query instead of a full-path one — and how many
     differentFrom pairs ever reach the solver. *)
  let measure ~slice ~domains =
    Solver.reset_all_for_tests ();
    Obs.reset_all ();
    Term.set_fresh_counter 0;
    let file = Filename.temp_file "achilles-slice-" ".jsonl" in
    Obs.Trace.enable file;
    let t0 = Unix.gettimeofday () in
    let analysis =
      Achilles.analyze
        ~search_config:
          {
            fsp_search_config with
            Search.domains;
            Search.use_slice = slice;
          }
        ~layout:Fsp_model.layout ~clients:(Fsp_model.clients ())
        ~server:Fsp_model.server ()
    in
    let wall = Unix.gettimeofday () -. t0 in
    Obs.Trace.disable ();
    let summary =
      match Obs.Summary.load file with
      | Ok s -> s
      | Error e ->
          Format.printf "  slice: trace unreadable: %s@." e;
          exit 1
    in
    Sys.remove file;
    let self phase =
      match
        List.find_opt
          (fun r -> r.Obs.Summary.row_phase = phase)
          summary.Obs.Summary.rows
      with
      | Some r -> r.Obs.Summary.self_seconds
      | None -> 0.
    in
    let agg = Solver.aggregate_stats () in
    let counters = (Obs.aggregate ()).Obs.counters in
    let counter name =
      Option.value ~default:0 (List.assoc_opt name counters)
    in
    let cov = analysis.Achilles.report.Search.coverage in
    let pairs_checked, pairs_static =
      match analysis.Achilles.different_from_stats with
      | Some s -> (s.Different_from.pairs_checked, s.Different_from.pairs_static)
      | None -> (0, 0)
    in
    let digest = Report.report_digest analysis.Achilles.report in
    ( digest,
      [
        ("wall_s", Printf.sprintf "%.4f" wall);
        ("solve_s", Printf.sprintf "%.4f" agg.Solver.solve_time);
        ("solver_query_self_s", Printf.sprintf "%.4f" (self "solver_query"));
        ("slice_self_s", Printf.sprintf "%.4f" (self "slice"));
        ("queries", string_of_int agg.Solver.queries);
        ("sat_calls", string_of_int agg.Solver.sat_calls);
        ( "full_path_feasibility",
          string_of_int (counter "interp.feasibility_queries") );
        ("static_branches", string_of_int cov.Search.slice_static_branches);
        ("cone_queries", string_of_int cov.Search.slice_cone_queries);
        ("pairs_checked", string_of_int pairs_checked);
        ("pairs_static", string_of_int pairs_static);
        ("digest", digest);
      ] )
  in
  let domain_counts = [ 1; 4 ] in
  let rows = ref [] in
  let jrows = ref [] in
  let failed = ref false in
  let get k row = List.assoc k row in
  List.iter
    (fun domains ->
      let digest_on, on = measure ~slice:true ~domains in
      let digest_off, off = measure ~slice:false ~domains in
      if digest_on <> digest_off then begin
        Format.eprintf
          "slice: FSP report digest differs between modes at %d domain(s) \
           (%s vs %s)@."
          domains digest_on digest_off;
        failed := true
      end;
      Format.printf
        "  fsp j=%d slice=on  wall %ss, %s solver queries (%s sat calls), \
         %s full-path feasibility, %s branches decided statically, %s cone \
         queries, pairs %s checked / %s static@."
        domains (get "wall_s" on) (get "queries" on) (get "sat_calls" on)
        (get "full_path_feasibility" on)
        (get "static_branches" on)
        (get "cone_queries" on) (get "pairs_checked" on)
        (get "pairs_static" on);
      Format.printf
        "  fsp j=%d slice=off wall %ss, %s solver queries (%s sat calls), \
         %s full-path feasibility, pairs %s checked@."
        domains (get "wall_s" off) (get "queries" off) (get "sat_calls" off)
        (get "full_path_feasibility" off)
        (get "pairs_checked" off);
      (* Wall-clock is noisy under CI; the deterministic proxy for the saved
         interpreter work is the branch-feasibility solver stream: without
         the oracle every branch decision pays a full-path query, with it
         the same decisions are settled statically, from the memo, or by a
         cone-restricted query over the few conjuncts sharing variables
         with the condition. *)
      let feas_on =
        int_of_string (get "full_path_feasibility" on)
        + int_of_string (get "cone_queries" on)
      in
      let feas_off = int_of_string (get "full_path_feasibility" off) in
      let p_on = int_of_string (get "pairs_checked" on) in
      let p_off = int_of_string (get "pairs_checked" off) in
      Format.printf
        "  fsp j=%d feasibility work: %d -> %d branch queries (%.1fx \
         reduction); pairs: %d -> %d (%.1fx); digests identical: %b@."
        domains feas_off feas_on
        (float_of_int feas_off /. float_of_int (max 1 feas_on))
        p_off p_on
        (float_of_int p_off /. float_of_int (max 1 p_on))
        (digest_on = digest_off);
      if domains = 1 then begin
        if feas_off < 2 * feas_on then begin
          Format.eprintf
            "slice: expected a >= 2x branch-feasibility reduction on FSP, \
             got %d (on) vs %d (off)@."
            feas_on feas_off;
          failed := true
        end;
        if p_off < 3 * p_on then begin
          Format.eprintf
            "slice: expected a >= 3x pairs_checked reduction on FSP, got %d \
             (on) vs %d (off)@."
            p_on p_off;
          failed := true
        end
      end;
      let csv mode row =
        Printf.sprintf "fsp,%d,%s,%s" domains mode
          (String.concat "," (List.map snd row))
      in
      let json mode row =
        let module J = Achilles_obs.Obs.Json in
        J.VObj
          (("target", J.VStr "fsp")
          :: ("domains", J.VNum (float_of_int domains))
          :: ("slice", J.VStr mode)
          :: List.map
               (fun (k, v) ->
                 match float_of_string_opt v with
                 | Some f -> (k, J.VNum f)
                 | None -> (k, J.VStr v))
               row)
      in
      rows := csv "off" off :: csv "on" on :: !rows;
      jrows := json "off" off :: json "on" on :: !jrows)
    domain_counts;
  (* always persist the series, like the other figure experiments *)
  let saved = !csv_dir in
  if saved = None then begin
    (try Unix.mkdir "bench" 0o755
     with Unix.Unix_error ((Unix.EEXIST | Unix.EPERM), _, _) -> ());
    csv_dir := Some (Filename.concat "bench" "figures")
  end;
  write_csv "slice.csv"
    "target,domains,slice,wall_s,solve_s,solver_query_self_s,slice_self_s,queries,sat_calls,full_path_feasibility,static_branches,cone_queries,pairs_checked,pairs_static,digest"
    (List.rev !rows);
  (let module J = Achilles_obs.Obs.Json in
   write_bench_json "BENCH_E18.json"
     [ ("experiment", J.VStr "slice"); ("rows", J.VArr (List.rev !jrows)) ]);
  csv_dir := saved;
  if !failed then exit 1

(* --- Bechamel micro-benchmarks ------------------------------------------------------------------ *)

let bechamel_benchmarks () =
  banner "Bechamel micro-benchmarks of the analysis primitives";
  let open Bechamel in
  let open Toolkit in
  (* shared fixtures *)
  let x = Term.fresh_var ~name:"bx" (Term.Bitvec 8) in
  let sat_query =
    [
      Term.ult (Term.var x) (Term.int ~width:8 100);
      Term.ugt (Term.var x) (Term.int ~width:8 10);
    ]
  in
  let unsat_query =
    [
      Term.ult (Term.var x) (Term.int ~width:8 10);
      Term.ugt (Term.var x) (Term.int ~width:8 100);
    ]
  in
  let mul_query =
    let y = Term.fresh_var ~name:"by" (Term.Bitvec 8) in
    [
      Term.eq
        (Term.mul (Term.var x) (Term.var y))
        (Term.int ~width:8 143);
      Term.ugt (Term.var x) (Term.int ~width:8 1);
      Term.ugt (Term.var y) (Term.int ~width:8 1);
    ]
  in
  let fsp_pc =
    fst (Client_extract.extract ~layout:Fsp_model.layout (Fsp_model.clients ()))
  in
  let fsp_path = List.hd fsp_pc.Predicate.paths in
  let server_vars =
    Array.init Fsp_model.message_size (fun i ->
        Term.fresh_var ~name:(Printf.sprintf "sb%d" i) (Term.Bitvec 8))
  in
  let uncached f () =
    Solver.set_cache_enabled false;
    let r = f () in
    Solver.set_cache_enabled true;
    r
  in
  let tests =
    Test.make_grouped ~name:"achilles"
      [
        (* Table 1 machinery: the full pipeline on the working example *)
        Test.make ~name:"table1:rw-analysis"
          (Staged.stage (fun () ->
               Achilles.analyze
                 ~search_config:
                   {
                     Search.default_config with
                     Search.mask = Some [ "address" ];
                   }
                 ~layout:Rw_example.layout ~clients:[ Rw_example.client ]
                 ~server:Rw_example.server ()));
        (* Figure 10 machinery: witness enumeration on one FSP accept path *)
        Test.make ~name:"fig10:client-extraction"
          (Staged.stage (fun () ->
               Client_extract.extract ~layout:Fsp_model.layout
                 [ Fsp_model.client (List.hd Fsp_model.commands) ]));
        (* Figure 11 machinery: one alive-set solver check *)
        Test.make ~name:"fig11:alive-check"
          (Staged.stage
             (uncached (fun () ->
                  Solver.is_sat
                    (Predicate.bind_to_server ~server_vars fsp_path))));
        (* §6.4 machinery: negate and differentFrom primitives *)
        Test.make ~name:"ablation:negate-path"
          (Staged.stage (fun () ->
               Negate.negate_path ~mask:Fsp_model.analysis_mask
                 ~layout:Fsp_model.layout ~server_vars fsp_path));
        (* solver primitives under everything *)
        Test.make ~name:"solver:sat-interval"
          (Staged.stage (uncached (fun () -> Solver.is_sat sat_query)));
        Test.make ~name:"solver:unsat-interval"
          (Staged.stage (uncached (fun () -> Solver.is_unsat unsat_query)));
        Test.make ~name:"solver:sat-factoring"
          (Staged.stage (uncached (fun () -> Solver.is_sat mul_query)));
        Test.make ~name:"solver:cached-hit"
          (Staged.stage (fun () -> Solver.is_sat sat_query));
      ]
  in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if !quick then 0.25 else 1.0))
      ~stabilize:true ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> t
          | _ -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  Format.printf "  %-32s %16s@." "benchmark" "time per run";
  List.iter
    (fun (name, ns) ->
      let pretty =
        if ns >= 1e9 then Printf.sprintf "%8.2f  s" (ns /. 1e9)
        else if ns >= 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns >= 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.2f ns" ns
      in
      Format.printf "  %-32s %16s@." name pretty)
    rows

(* --- E16: multi-process search ------------------------------------------------------------------ *)

let experiment_dist () =
  banner "E16: multi-process search — coordinator/worker digest equality";
  let rec rm_rf path =
    match Sys.is_directory path with
    | true ->
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Unix.rmdir path
    | false -> Sys.remove path
    | exception Sys_error _ -> ()
  in
  let config = { fsp_search_config with Search.domains = 4 } in
  (* the golden single-process run every distributed configuration must
     reproduce byte for byte *)
  let golden_digest, t_inproc =
    Solver.reset_all_for_tests ();
    Term.set_fresh_counter 0;
    let t0 = Unix.gettimeofday () in
    let analysis =
      Achilles.analyze ~search_config:config ~layout:Fsp_model.layout
        ~clients:(Fsp_model.clients ()) ~server:Fsp_model.server ()
    in
    (Report.report_digest analysis.Achilles.report, Unix.gettimeofday () -. t0)
  in
  let dist ~label ~workers ~fault_rate =
    Solver.reset_all_for_tests ();
    Term.set_fresh_counter 0;
    let client, _ =
      Client_extract.extract ~config:Interp.default_config
        ~layout:Fsp_model.layout
        (Fsp_model.clients ())
    in
    let different_from =
      if config.Search.use_different_from then
        Some (fst (Different_from.compute ?mask:config.Search.mask client))
      else None
    in
    let job =
      Achilles_dist.Worker.job_of ~config ?different_from ~client
        ~server:Fsp_model.server ()
    in
    let params =
      {
        Achilles_dist.Worker.heartbeat_interval = 0.02;
        snapshot_interval = 0.05;
        poll_sleep = 0.005;
        orphan_timeout = 30.0;
        fault_rate;
        fault_seed = 0xf00d;
      }
    in
    let workdir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "achilles-bench-dist-%d-%s" (Unix.getpid ()) label)
    in
    rm_rf workdir;
    Unix.mkdir workdir 0o755;
    let ccfg =
      {
        Achilles_dist.Coordinator.c_workers = workers;
        c_lease_ttl = 5.0;
        c_reassign_budget = 50;
        c_max_respawns = 500;
        c_backoff = (fun _ -> 0.01);
        c_drain_grace = 10.0;
        c_tick = 0.005;
        c_cancel = (fun () -> false);
        c_status_interval = 0.1;
      }
    in
    let spawn =
      Achilles_dist.Coordinator.domain_spawner ~workdir ~job ~params ()
    in
    let t0 = Unix.gettimeofday () in
    let report = Achilles_dist.Coordinator.run ~config:ccfg ~workdir ~job ~spawn () in
    let t = Unix.gettimeofday () -. t0 in
    rm_rf workdir;
    (label, workers, fault_rate, t, report)
  in
  let runs =
    [
      dist ~label:"workers2" ~workers:2 ~fault_rate:0.;
      dist ~label:"workers4" ~workers:4 ~fault_rate:0.;
      dist ~label:"workers4-kills" ~workers:4 ~fault_rate:0.05;
    ]
  in
  Format.printf "  %-16s %9s %9s %12s  %s@." "mode" "wall (s)" "faults"
    "reassigned" "report digest";
  Format.printf "  %-16s %9.2f %9s %12s  %s@." "in-process" t_inproc "-" "-"
    golden_digest;
  let rows =
    Printf.sprintf "in-process,1,0,%.4f,0,%s" t_inproc golden_digest
    :: List.map
         (fun (label, workers, fault_rate, t, (report : Search.report)) ->
           let digest = Report.report_digest report in
           let retried = report.Search.coverage.Search.shard_retry_attempts in
           Format.printf "  %-16s %9.2f %9.2f %12d  %s%s@." label t fault_rate
             retried digest
             (if digest = golden_digest then "" else "  << MISMATCH");
           Printf.sprintf "%s,%d,%.2f,%.4f,%d,%s" label workers fault_rate t
             retried digest)
         runs
  in
  let all_equal =
    List.for_all
      (fun (_, _, _, _, (r : Search.report)) ->
        Report.report_digest r = golden_digest)
      runs
  in
  Format.printf
    "@.  digests identical across {in-process, 2 workers, 4 workers, 4 \
     workers with kills}: %b@."
    all_equal;
  let saved = !csv_dir in
  if saved = None then begin
    (try Unix.mkdir "bench" 0o755
     with Unix.Unix_error ((Unix.EEXIST | Unix.EPERM), _, _) -> ());
    csv_dir := Some (Filename.concat "bench" "figures")
  end;
  write_csv "dist.csv" "mode,workers,fault_rate,wall_s,reassignments,digest"
    rows;
  csv_dir := saved;
  if not all_equal then begin
    Format.eprintf "dist: a distributed run diverged from the golden digest@.";
    exit 1
  end

(* --- E17: serving compiled filters — line rate vs per-message re-analysis ---- *)

(* The deployment story of the paper's output: the extracted [not PC] is only
   useful if a server front end can check it on every incoming message. E17
   measures the compiled decision-DAG filter against the naive alternative —
   re-interpret the message concretely ([Symvm.Concrete]) and, when the
   server accepts it, re-run the solver on the accepting state's Trojan
   query — and asserts the filter's verdicts agree with the naive path on a
   sampled subset. *)

module Filter = Achilles_filter.Filter
module Daemon = Achilles_filter.Daemon

let experiment_serve () =
  banner "E17: compiled-filter serving rate";
  let analysis, _ = Lazy.force fsp_analysis in
  let report = analysis.Achilles.report in
  let filter, compile_s =
    fresh_measurement (fun () ->
        Filter.compile ~target:"fsp" ~layout:Fsp_model.layout ~report ())
  in
  Format.printf "  compiled in %.3fs: %a@." compile_s Filter.pp_summary filter;
  let size = Filter.message_size filter in
  let witnesses =
    List.filter_map
      (fun (t : Search.trojan) ->
        if t.Search.confirmed then
          Some (Array.map Bv.to_int t.Search.witness)
        else None)
      report.Search.trojans
    |> Array.of_list
  in
  assert (Array.length witnesses > 0);
  (* workload: 1/3 exact witnesses, 1/3 witness mutants (which keep enough
     structure to reach accepting states), 1/3 uniform noise *)
  let rng = Random.State.make [| 0x5e17 |] in
  let workload n =
    Array.init n (fun i ->
        let pick () =
          Array.copy witnesses.(Random.State.int rng (Array.length witnesses))
        in
        match i mod 3 with
        | 0 -> pick ()
        | 1 ->
            let m = pick () in
            for _ = 1 to 1 + Random.State.int rng 3 do
              m.(Random.State.int rng size) <- Random.State.int rng 256
            done;
            m
        | _ -> Array.init size (fun _ -> Random.State.int rng 256))
  in
  (* the naive path: concrete server execution, then the solver on the
     surviving messages' Trojan queries — same decision, per message *)
  let queries = Search.trojan_queries report in
  let baseline_verdict m =
    let outcome =
      Concrete.run
        ~incoming:[ Array.map (fun b -> Bv.of_int ~width:8 b) m ]
        Fsp_model.server
    in
    if not (Concrete.accepted outcome) then Filter.Accept
    else
      let rec scan = function
        | [] -> Filter.Accept
        | ((sp : Predicate.server_path), query) :: rest -> (
            match query with
            | None -> scan rest
            | Some terms ->
                let byte_of = Hashtbl.create 32 in
                Array.iteri
                  (fun i (v : Term.var) ->
                    Hashtbl.replace byte_of v.Term.id i)
                  sp.Predicate.msg_vars;
                let model =
                  Model.of_list
                    (Array.to_list
                       (Array.mapi
                          (fun i v -> (v, Model.Vbv (Bv.of_int ~width:8 m.(i))))
                          sp.Predicate.msg_vars))
                in
                let pure, auxed =
                  List.partition
                    (fun t ->
                      List.for_all
                        (fun id -> Hashtbl.mem byte_of id)
                        (Term.var_ids t))
                    terms
                in
                if not (List.for_all (Model.eval_bool model) pure) then
                  scan rest
                else if auxed = [] then
                  Filter.Trojan_suspect sp.Predicate.sp_state_id
                else
                  let bind (v : Term.var) =
                    match Hashtbl.find_opt byte_of v.Term.id with
                    | Some i ->
                        Some (Term.const (Bv.of_int ~width:8 m.(i)))
                    | None -> None
                  in
                  (match Solver.check (List.map (Term.subst bind) auxed) with
                  | Solver.Sat _ ->
                      Filter.Trojan_suspect sp.Predicate.sp_state_id
                  | Solver.Unsat -> scan rest
                  | Solver.Unknown -> Filter.Unknown_state))
      in
      scan queries
  in
  let n_filter = if !quick then 50_000 else 200_000 in
  let n_baseline = if !quick then 200 else 600 in
  let filter_msgs =
    Array.map
      (fun m -> Bytes.init size (fun i -> Char.chr m.(i)))
      (workload n_filter)
  in
  let baseline_msgs = workload n_baseline in
  let ev = Filter.evaluator filter in
  let (), filter_s =
    fresh_measurement (fun () ->
        Array.iter (fun b -> ignore (Filter.verdict_bytes ev b)) filter_msgs)
  in
  let baseline_results, baseline_s =
    fresh_measurement (fun () -> Array.map baseline_verdict baseline_msgs)
  in
  (* agreement on the sampled subset: compilation changed no verdict *)
  let mismatches = ref 0 in
  Array.iteri
    (fun i m ->
      let bytes = Bytes.init size (fun j -> Char.chr m.(j)) in
      if Filter.verdict_bytes ev bytes <> baseline_results.(i) then
        incr mismatches)
    baseline_msgs;
  let filter_rate = float_of_int n_filter /. filter_s in
  let baseline_rate = float_of_int n_baseline /. baseline_s in
  let speedup = filter_rate /. baseline_rate in
  Format.printf "  filter:    %d messages in %.3fs = %s msgs/s@." n_filter
    filter_s
    (Printf.sprintf "%.0f" filter_rate);
  Format.printf "  baseline:  %d messages in %.3fs = %s msgs/s@." n_baseline
    baseline_s
    (Printf.sprintf "%.0f" baseline_rate);
  Format.printf "  speedup:   %.0fx; %d/%d verdicts disagree@." speedup
    !mismatches n_baseline;
  write_csv "serve.csv" "mode,messages,seconds,msgs_per_sec,speedup_vs_baseline"
    [
      Printf.sprintf "filter,%d,%.4f,%.0f,%.1f" n_filter filter_s filter_rate
        speedup;
      Printf.sprintf "baseline,%d,%.4f,%.0f,1.0" n_baseline baseline_s
        baseline_rate;
    ];
  (let module J = Achilles_obs.Obs.Json in
   write_bench_json "BENCH_E17.json"
     [
       ("experiment", J.VStr "serve");
       ("filter_messages", J.VNum (float_of_int n_filter));
       ("filter_seconds", J.VNum filter_s);
       ("filter_msgs_per_sec", J.VNum filter_rate);
       ("baseline_messages", J.VNum (float_of_int n_baseline));
       ("baseline_seconds", J.VNum baseline_s);
       ("baseline_msgs_per_sec", J.VNum baseline_rate);
       ("speedup_vs_baseline", J.VNum speedup);
       ("mismatches", J.VNum (float_of_int !mismatches));
     ]);
  if !mismatches > 0 then begin
    Format.eprintf "serve: filter and baseline verdicts diverged@.";
    exit 1
  end;
  if speedup < 10. then begin
    Format.eprintf "serve: expected >= 10x over the naive baseline, got %.1fx@."
      speedup;
    exit 1
  end

(* --- E19: telemetry cost under serving load ----------------------------------------------------- *)

(* The daemon from E17, but as the real select loop over a Unix socket, once
   without the metrics endpoint and once with it (scraped continuously from
   another domain). Telemetry must be close to free — its entire point is to
   be left on in production — and the three views of the same run (Prometheus
   scrape, STATS wire reply, in-process evaluator replay) must agree on every
   verdict counter. *)
let experiment_telemetry () =
  banner "E19: telemetry cost and scrape consistency under serving load";
  let module Obs = Achilles_obs.Obs in
  let analysis, _ = Lazy.force fsp_analysis in
  let report = analysis.Achilles.report in
  let filter = Filter.compile ~target:"fsp" ~layout:Fsp_model.layout ~report () in
  let size = Filter.message_size filter in
  let witnesses =
    List.filter_map
      (fun (t : Search.trojan) ->
        if t.Search.confirmed then Some (Array.map Bv.to_int t.Search.witness)
        else None)
      report.Search.trojans
    |> Array.of_list
  in
  assert (Array.length witnesses > 0);
  (* E17's workload shape: witnesses, near-miss mutants, uniform noise *)
  let rng = Random.State.make [| 0x5e19 |] in
  let n = if !quick then 20_000 else 60_000 in
  let msgs =
    Array.init n (fun i ->
        let pick () =
          Array.copy witnesses.(Random.State.int rng (Array.length witnesses))
        in
        let m =
          match i mod 3 with
          | 0 -> pick ()
          | 1 ->
              let m = pick () in
              for _ = 1 to 1 + Random.State.int rng 3 do
                m.(Random.State.int rng size) <- Random.State.int rng 256
              done;
              m
          | _ -> Array.init size (fun _ -> Random.State.int rng 256)
        in
        Bytes.init size (fun j -> Char.chr m.(j)))
  in
  (* ground truth: replay the workload through the in-process evaluator *)
  let exp_accept = ref 0 and exp_trojan = ref 0 and exp_unknown = ref 0 in
  let ev = Filter.evaluator filter in
  Array.iter
    (fun b ->
      match Filter.verdict_bytes ev (Bytes.copy b) with
      | Filter.Accept -> incr exp_accept
      | Filter.Trojan_suspect _ -> incr exp_trojan
      | Filter.Unknown_state -> incr exp_unknown)
    msgs;
  let tmp_path tag =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "achilles-e19-%s-%d.sock" tag (Unix.getpid ()))
  in
  let connect path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd
  in
  let read_exactly fd k =
    let buf = Bytes.create k in
    let rec go off =
      if off >= k then buf
      else
        match Unix.read fd buf off (k - off) with
        | 0 -> failwith "daemon closed the connection"
        | r -> go (off + r)
    in
    go 0
  in
  (* A scrape in flight: the request is written immediately, the response
     harvested later — so verdict frames and the scrape answer genuinely
     interleave in the daemon's select loop. (A dedicated scraper domain
     would be the obvious harness, but an extra domain — even a sleeping
     one — costs tens of percent on a single-core box through the
     stop-the-world minor GC, drowning the effect being measured.) *)
  let start_scrape mpath =
    let fd = connect mpath in
    let req = "GET /metrics HTTP/1.0\r\n\r\n" in
    ignore (Unix.write_substring fd req 0 (String.length req));
    fd
  in
  let finish_scrape fd =
    let buf = Buffer.create 4096 in
    let chunk = Bytes.create 4096 in
    let rec go () =
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | k ->
          Buffer.add_subbytes buf chunk 0 k;
          go ()
    in
    go ();
    Unix.close fd;
    Buffer.contents buf
  in
  let scrape mpath = finish_scrape (start_scrape mpath) in
  (* one pass over the workload: pipelined batches of frames, replies read
     back in bulk, a scrape in flight every few batches when [mpath] is
     given; returns (wall time, completed scrapes) *)
  let drive fd ~mpath =
    let batch = 256 in
    (* ~5 in-flight scrapes per pass, independent of workload size — a pass
       lasts well under a second, so this is still an order of magnitude
       more aggressive than any real scrape cadence *)
    let scrape_every = max 1 (n / batch / 5) in
    let scrapes = ref 0 in
    let pending = ref None in
    let harvest () =
      match !pending with
      | None -> ()
      | Some sfd ->
          pending := None;
          if String.length (finish_scrape sfd) > 0 then incr scrapes
    in
    let t0 = Unix.gettimeofday () in
    let i = ref 0 in
    let batches = ref 0 in
    while !i < n do
      (match mpath with
      | Some mpath when !batches mod scrape_every = 0 ->
          harvest ();
          pending := Some (start_scrape mpath)
      | _ -> ());
      incr batches;
      let k = min batch (n - !i) in
      let out = Buffer.create (k * (size + 4)) in
      for j = !i to !i + k - 1 do
        let hdr = Bytes.create 4 in
        Bytes.set_int32_be hdr 0 (Int32.of_int size);
        Buffer.add_bytes out hdr;
        Buffer.add_bytes out msgs.(j)
      done;
      let b = Buffer.to_bytes out in
      let off = ref 0 in
      while !off < Bytes.length b do
        off := !off + Unix.write fd b !off (Bytes.length b - !off)
      done;
      ignore (read_exactly fd (k * 5));
      i := !i + k
    done;
    harvest ();
    (Unix.gettimeofday () -. t0, !scrapes)
  in
  (* the value of an exposition sample, matched on the full name{labels} *)
  let metric_value body sample =
    List.find_map
      (fun line ->
        if String.length line = 0 || line.[0] = '#' then None
        else
          match String.rindex_opt line ' ' with
          | Some i when String.sub line 0 i = sample ->
              float_of_string_opt
                (String.sub line (i + 1) (String.length line - i - 1))
          | _ -> None)
      (String.split_on_char '\n' body)
  in
  let stats_value text key =
    List.find_map
      (fun line ->
        match String.split_on_char ' ' (String.trim line) with
        | [ k; v ] when k = key -> float_of_string_opt v
        | _ -> None)
      (String.split_on_char '\n' text)
  in
  let reps = 3 in
  (* one daemon per mode; [reps] passes each, best-of to dampen CI noise *)
  let run_mode ~metrics =
    let sock = tmp_path (if metrics then "on" else "off") in
    let mpath = tmp_path "metrics" in
    let stop = Atomic.make false in
    let daemon =
      Domain.spawn (fun () ->
          Daemon.run
            ?metrics:(if metrics then Some (Daemon.Unix_socket mpath) else None)
            ~filter ~address:(Daemon.Unix_socket sock)
            ~stop:(fun () -> Atomic.get stop)
            ())
    in
    let rec wait_sock tries =
      if Sys.file_exists sock then ()
      else if tries <= 0 then failwith "daemon socket never appeared"
      else begin
        Unix.sleepf 0.01;
        wait_sock (tries - 1)
      end
    in
    wait_sock 500;
    let scrapes = ref 0 in
    let best = ref infinity in
    let fd = connect sock in
    for _ = 1 to reps do
      let dt, sc =
        drive fd ~mpath:(if metrics then Some mpath else None)
      in
      scrapes := !scrapes + sc;
      if dt < !best then best := dt
    done;
    (* consistency: scrape and STATS wire reply, while the daemon is live *)
    let final_scrape = if metrics then Some (scrape mpath) else None in
    let req = Bytes.create 4 in
    Bytes.set_int32_be req 0 0xFFFFFFFFl;
    ignore (Unix.write fd req 0 4);
    let len =
      Int32.to_int (Bytes.get_int32_be (read_exactly fd 4) 0) land 0xFFFFFFFF
    in
    let stats_txt = Bytes.to_string (read_exactly fd len) in
    Unix.close fd;
    Atomic.set stop true;
    let st = Domain.join daemon in
    (try Sys.remove sock with Sys_error _ -> ());
    (try Sys.remove mpath with Sys_error _ -> ());
    (!best, st, stats_txt, final_scrape, !scrapes)
  in
  let off_s, off_st, off_stats, _, _ = run_mode ~metrics:false in
  let on_s, on_st, on_stats, on_scrape, scrapes = run_mode ~metrics:true in
  let total = reps * n in
  let failed = ref false in
  let check name got want =
    if got <> want then begin
      Format.eprintf "telemetry: %s: got %d, want %d@." name got want;
      failed := true
    end
  in
  (* every view of the run agrees with the evaluator replay (x reps) *)
  List.iter
    (fun (tag, st) ->
      check (tag ^ " messages") st.Daemon.messages total;
      check (tag ^ " accepts") st.Daemon.accepts (reps * !exp_accept);
      check (tag ^ " trojans") st.Daemon.trojan_suspects (reps * !exp_trojan);
      check (tag ^ " unknowns") st.Daemon.unknowns (reps * !exp_unknown))
    [ ("off", off_st); ("on", on_st) ];
  List.iter
    (fun (tag, txt) ->
      List.iter
        (fun (key, want) ->
          match stats_value txt key with
          | Some v -> check (tag ^ " stats " ^ key) (int_of_float v) want
          | None ->
              Format.eprintf "telemetry: %s STATS reply lacks %s@." tag key;
              failed := true)
        [
          ("messages", total);
          ("accepts", reps * !exp_accept);
          ("trojan_suspects", reps * !exp_trojan);
          ("unknowns", reps * !exp_unknown);
          ("dropped_frames", 0);
        ])
    [ ("off", off_stats); ("on", on_stats) ];
  (match on_scrape with
  | None -> assert false
  | Some body ->
      List.iter
        (fun (sample, want) ->
          match metric_value body sample with
          | Some v -> check ("scrape " ^ sample) (int_of_float v) want
          | None ->
              Format.eprintf "telemetry: scrape lacks %s@." sample;
              failed := true)
        [
          ("achilles_daemon_messages_total", total);
          ( "achilles_daemon_verdicts_total{verdict=\"accept\"}",
            reps * !exp_accept );
          ( "achilles_daemon_verdicts_total{verdict=\"trojan_suspect\"}",
            reps * !exp_trojan );
          ( "achilles_daemon_verdicts_total{verdict=\"unknown\"}",
            reps * !exp_unknown );
          ("achilles_daemon_dropped_frames_total", 0);
        ]);
  let rate_off = float_of_int n /. off_s in
  let rate_on = float_of_int n /. on_s in
  let overhead = Float.max 0. (1. -. (rate_on /. rate_off)) in
  Format.printf "  metrics off: %d msgs in %.3fs = %.0f msgs/s (best of %d)@." n
    off_s rate_off reps;
  Format.printf
    "  metrics on:  %d msgs in %.3fs = %.0f msgs/s (best of %d, %d scrapes \
     served concurrently)@."
    n on_s rate_on reps scrapes;
  Format.printf "  overhead:    %.2f%%@." (100. *. overhead);
  if scrapes = 0 then begin
    Format.eprintf "telemetry: no scrape succeeded during the load@.";
    failed := true
  end;
  (* the headline claim: leaving telemetry on costs <= 5% throughput *)
  if overhead > 0.05 then begin
    Format.eprintf "telemetry: expected <= 5%% overhead, got %.2f%%@."
      (100. *. overhead);
    failed := true
  end;
  let saved = !csv_dir in
  if saved = None then begin
    (try Unix.mkdir "bench" 0o755
     with Unix.Unix_error ((Unix.EEXIST | Unix.EPERM), _, _) -> ());
    csv_dir := Some (Filename.concat "bench" "figures")
  end;
  write_csv "e19_telemetry.csv"
    "mode,messages,seconds,msgs_per_sec,overhead_pct,scrapes"
    [
      Printf.sprintf "metrics-off,%d,%.4f,%.0f,0.0,0" n off_s rate_off;
      Printf.sprintf "metrics-on,%d,%.4f,%.0f,%.2f,%d" n on_s rate_on
        (100. *. overhead) scrapes;
    ];
  (let module J = Obs.Json in
   write_bench_json "BENCH_E19.json"
     [
       ("experiment", J.VStr "telemetry");
       ("messages_per_pass", J.VNum (float_of_int n));
       ("passes", J.VNum (float_of_int reps));
       ("off_seconds", J.VNum off_s);
       ("off_msgs_per_sec", J.VNum rate_off);
       ("on_seconds", J.VNum on_s);
       ("on_msgs_per_sec", J.VNum rate_on);
       ("overhead_pct", J.VNum (100. *. overhead));
       ("concurrent_scrapes", J.VNum (float_of_int scrapes));
       ("counters_consistent", J.VBool (not !failed));
     ]);
  csv_dir := saved;
  if !failed then exit 1

(* --- driver ------------------------------------------------------------------------------------- *)

let experiments =
  [
    ("table1", experiment_table1);
    ("fig10", experiment_fig10);
    ("fig11", experiment_fig11);
    ("timing", experiment_timing);
    ("fuzzing", experiment_fuzzing);
    ("pbft", experiment_pbft);
    ("ablation", experiment_ablation);
    ("impact-fsp", experiment_impact_fsp);
    ("impact-pbft", experiment_impact_pbft);
    ("local-state", experiment_local_state);
    ("scaling", experiment_scaling);
    ("robustness", experiment_robustness);
    ("sharing", experiment_sharing);
    ("profile", experiment_profile);
    ("incremental", experiment_incremental);
    ("slice", experiment_slice);
    ("dist", experiment_dist);
    ("serve", experiment_serve);
    ("telemetry", experiment_telemetry);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse selected skip_bechamel = function
    | [] -> (selected, skip_bechamel)
    | "--quick" :: rest ->
        quick := true;
        parse selected skip_bechamel rest
    | "--skip-bechamel" :: rest -> parse selected true rest
    | "--csv" :: dir :: rest ->
        csv_dir := Some dir;
        parse selected skip_bechamel rest
    | "--list" :: _ ->
        List.iter (fun (name, _) -> print_endline name) experiments;
        exit 0
    | "--experiment" :: name :: rest -> parse (name :: selected) true rest
    | "--bechamel" :: rest -> parse selected false rest
    | arg :: _ ->
        Format.eprintf
          "unknown argument %s (try --list, --experiment NAME, --quick, \
           --csv DIR, --skip-bechamel)@."
          arg;
        exit 2
  in
  let selected, skip_bechamel = parse [] false args in
  let to_run =
    match selected with
    | [] -> experiments
    | names ->
        List.filter_map
          (fun name ->
            match List.assoc_opt name experiments with
            | Some f -> Some (name, f)
            | None ->
                Format.eprintf "unknown experiment %s@." name;
                exit 2)
          (List.rev names)
  in
  Format.printf
    "Achilles experiment harness — reproducing the evaluation of@.\
     \"Finding Trojan Message Vulnerabilities in Distributed Systems\"@.\
     (ASPLOS 2014). See EXPERIMENTS.md for the paper-vs-measured record.@.";
  List.iter (fun (_, f) -> f ()) to_run;
  if not skip_bechamel then bechamel_benchmarks ();
  Format.printf "@.done.@."
