(* The achilles command-line tool: run Trojan-message analysis on the
   bundled target systems, print client predicates, and replay witnesses.

     dune exec bin/achilles_cli.exe -- analyze fsp
     dune exec bin/achilles_cli.exe -- predicate rw
     dune exec bin/achilles_cli.exe -- list *)

open Achilles_smt
open Achilles_symvm
open Achilles_core
open Achilles_targets
module Smt_term = Term
module Obs = Achilles_obs.Obs
module Slice = Achilles_slice.Slice
open Cmdliner

type target = {
  target_name : string;
  description : string;
  layout : Layout.t;
  clients : Ast.program list;
  server : Ast.program;
  default_mask : string list option;
  interp : Interp.config;
  client_interp : Interp.config option;
      (* client-extraction interpreter when it differs from the default
         (e.g. a concrete local-state scenario for the clients) *)
  distinct_by : (Bv.t array -> Smt_term.var array -> Smt_term.t) option;
}

let targets =
  [
    {
      target_name = "rw";
      description = "the paper's working example (Figures 2-3)";
      layout = Rw_example.layout;
      clients = [ Rw_example.client ];
      server = Rw_example.server;
      default_mask = Some [ "address" ];
      interp = Interp.default_config;
      client_interp = None;
      distinct_by = None;
    };
    {
      target_name = "fsp";
      description = "FSP file transfer protocol, 8 client utilities (§6.1)";
      layout = Fsp_model.layout;
      clients = Fsp_model.clients ();
      server = Fsp_model.server;
      default_mask = Some Fsp_model.analysis_mask;
      interp = Interp.default_config;
      client_interp = None;
      distinct_by = Some Fsp_model.block_class;
    };
    {
      target_name = "fsp-glob";
      description = "FSP with wildcard-aware clients (the §6.3 glob bug)";
      layout = Fsp_model.layout;
      clients = Fsp_model.clients ~model_globbing:true ();
      server = Fsp_model.server;
      default_mask = Some Fsp_model.analysis_mask;
      interp = Interp.default_config;
      client_interp = None;
      distinct_by = None;
    };
    {
      target_name = "pbft";
      description = "PBFT replica vs client (the MAC attack, §6.2)";
      layout = Pbft_model.layout;
      clients = [ Pbft_model.client ];
      server = Pbft_model.replica;
      default_mask = Some Pbft_model.analysis_mask;
      interp =
        Local_state.over_approximate ~vars:[ ("last_rid", 16) ]
          Interp.default_config;
      client_interp = None;
      distinct_by = None;
    };
    {
      target_name = "paxos";
      description = "Paxos acceptor in phase 2 (local-state demo, §3.4)";
      layout = Paxos_model.layout;
      clients = [ Paxos_model.proposer_concrete ~value:7 ];
      server = Paxos_model.acceptor;
      default_mask = Some [ "mtype"; "ballot"; "value" ];
      interp =
        Local_state.concrete ~prefix:(Paxos_model.phase1_prefix ~ballot:5)
          Interp.default_config;
      client_interp = None;
      distinct_by = None;
    };
    {
      target_name = "kv";
      description = "key-value store with auto-classified replies (§5)";
      layout = Kv_model.layout;
      clients = [ Kv_model.client ];
      server = Kv_model.server;
      default_mask = Some Kv_model.analysis_mask;
      interp =
        {
          Interp.default_config with
          Interp.auto_classify = Some Kv_model.auto_classifier;
        };
      client_interp = None;
      distinct_by = None;
    };
    {
      target_name = "gossip";
      description = "gossip failure-report aggregator (the S3-outage scenario)";
      layout = Gossip_model.layout;
      clients = [ Gossip_model.reporter ];
      server = Gossip_model.aggregator ~hardened:false ();
      default_mask = Some Gossip_model.analysis_mask;
      interp = Interp.default_config;
      client_interp =
        Some
          (Local_state.concrete
             ~incoming:(List.init 2 (fun _ -> Gossip_model.failure_event))
             ~prefix:Gossip_model.reporter_prefix Interp.default_config);
      distinct_by = None;
    };
  ]

let find_target name =
  match List.find_opt (fun t -> t.target_name = name) targets with
  | Some t -> Ok t
  | None ->
      Error
        (Printf.sprintf "unknown target %S; try: %s" name
           (String.concat ", " (List.map (fun t -> t.target_name) targets)))

(* --- common arguments ----------------------------------------------------------- *)

let target_arg =
  let doc = "Target system to analyze (see $(b,list))." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TARGET" ~doc)

let mask_arg =
  let doc =
    "Comma-separated message fields to analyze (defaults to the target's \
     recommended mask)."
  in
  Arg.(value & opt (some string) None & info [ "mask" ] ~docv:"FIELDS" ~doc)

let witnesses_arg =
  let doc = "Concrete witnesses to enumerate per accepting path." in
  Arg.(value & opt int 4 & info [ "witnesses"; "w" ] ~docv:"N" ~doc)

let no_drop_arg =
  let doc = "Disable alive-set tracking (optimization 1 of §3.3)." in
  Arg.(value & flag & info [ "no-drop-alive" ] ~doc)

let no_df_arg =
  let doc = "Disable the differentFrom matrix (optimization 2 of §3.3)." in
  Arg.(value & flag & info [ "no-different-from" ] ~doc)

let no_prune_arg =
  let doc = "Disable no-Trojan state pruning." in
  Arg.(value & flag & info [ "no-prune" ] ~doc)

let no_incremental_arg =
  let doc =
    "Disable assumption-based incremental solving: every solver query is \
     decided on a fresh scratch SAT instance instead of the per-domain \
     frame-stack context (also: $(b,ACHILLES_INCREMENTAL=0)). Reports are \
     byte-identical in both modes; this is the escape hatch and the \
     baseline for $(b,--experiment incremental)."
  in
  Arg.(value & flag & info [ "no-incremental" ] ~doc)

let no_slice_arg =
  let doc =
    "Disable static dependency slicing: branch feasibility goes back to \
     full-path solver queries, message-independent branches count against \
     the depth bound again, and every differentFrom pair check hits the \
     solver (also: $(b,ACHILLES_SLICE=0)). Reports are byte-identical in \
     both modes; this is the escape hatch and the baseline for \
     $(b,--experiment slice)."
  in
  Arg.(value & flag & info [ "no-slice" ] ~doc)

let domains_arg =
  let doc =
    "Worker domains for the server-path search (default: \
     $(b,ACHILLES_DOMAINS) or 1). Any value produces the same report, \
     modulo wall-clock timings."
  in
  Arg.(
    value
    & opt int Search.default_config.Search.domains
    & info [ "domains"; "j" ] ~docv:"N" ~doc)

let deadline_arg =
  let doc =
    "Per-solver-query wall-clock deadline in seconds (escalated x4 on \
     Unknown, twice, before the query degrades for good)."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let solver_budget_arg =
  let doc =
    "Per-solver-query CDCL conflict budget (escalated x4 on Unknown, twice, \
     before the query degrades for good)."
  in
  Arg.(
    value
    & opt (some int) None
    & info [ "solver-budget" ] ~docv:"CONFLICTS" ~doc)

let checkpoint_dir_arg =
  let doc =
    "Flush every completed search shard to $(docv) (atomic per-shard files), \
     so an interrupted or killed run can be picked up with $(b,--resume)."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint-dir" ] ~docv:"DIR" ~doc)

let resume_arg =
  let doc =
    "Resume from the shard checkpoints in $(docv): only missing shards are \
     re-explored, and a run that completes this way produces the same \
     report as an uninterrupted one. Implies $(b,--checkpoint-dir) $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"DIR" ~doc)

let workers_arg =
  let doc =
    "Distribute the search over $(docv) worker $(i,processes) (an \
     `achilles worker` each), coordinated over $(b,--work-dir) with leases, \
     heartbeats, and crash-proof shard reassignment. The report is \
     byte-identical to an in-process run. 0 disables; negative picks one \
     worker per spare core."
  in
  Arg.(value & opt int 0 & info [ "workers" ] ~docv:"N" ~doc)

let work_dir_arg =
  let doc =
    "Work directory for the coordinator/worker protocol (manifest, \
     mailboxes, leases, shard checkpoints). Survives crashes: re-running \
     the same analysis against the same directory resumes from the \
     completed shards."
  in
  Arg.(value & opt (some string) None & info [ "work-dir" ] ~docv:"DIR" ~doc)

let lease_ttl_arg =
  let doc =
    "Shard-lease time-to-live in seconds: a worker whose heartbeats stop \
     this long loses the shard, which is reassigned (distributed mode)."
  in
  Arg.(value & opt float 10.0 & info [ "lease-ttl" ] ~docv:"SECONDS" ~doc)

let reassign_budget_arg =
  let doc =
    "Maximum assignments per shard before it is reported as uncovered \
     instead of being retried forever (distributed mode)."
  in
  Arg.(value & opt int 5 & info [ "reassign-budget" ] ~docv:"N" ~doc)

let digest_arg =
  let doc =
    "Print the deterministic report digest (stable across domain counts, \
     worker counts, kills, and resume) — the handle CI uses to assert \
     distributed == single-process."
  in
  Arg.(value & flag & info [ "digest" ] ~doc)

let verbose_arg =
  let doc = "Also print the symbolic Trojan expressions." in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

let trace_arg =
  let doc =
    "Write a JSONL event trace (span begin/end, solver verdicts, drops, \
     cache hits/misses, shard lifecycle) to $(docv). Defaults to \
     $(b,ACHILLES_TRACE) when set. Inspect with $(b,trace summarize); \
     convert for Perfetto with $(b,trace export)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

(* --trace flag, else the ACHILLES_TRACE environment variable. *)
let setup_trace trace =
  match (match trace with Some _ -> trace | None -> Obs.Trace.file_of_env ()) with
  | Some file -> Obs.Trace.enable file
  | None -> ()

(* --verbose goes through the event layer: the same "report"/"trojan_symbolic"
   events land in the trace file (when enabled) and in this sink, so verbose
   output can never drift from what the trace records. *)
let install_verbose_sink () =
  Obs.set_sink
    (Some
       (fun ev ->
         if ev.Obs.ev_kind = "report" && ev.Obs.ev_name = "trojan_symbolic"
         then
           match List.assoc_opt "symbolic" ev.Obs.ev_args with
           | Some (Obs.S text) ->
               Format.printf "  symbolic expression:@.";
               List.iter
                 (fun line -> Format.printf "    %s@." line)
                 (String.split_on_char '\n' text)
           | _ -> ()))

let explain_arg =
  let doc =
    "Print, for each dropped client path, the unsat core of server \
     constraints that made it incompatible."
  in
  Arg.(value & flag & info [ "explain" ] ~doc)

let parse_mask target = function
  | None -> target.default_mask
  | Some s -> Some (String.split_on_char ',' s |> List.map String.trim)

(* SIGINT/SIGTERM flip a flag the search polls at every branch constraint:
   in-flight shards wind down, completed shards are kept (and checkpointed
   when --checkpoint-dir is set), and a partial report is still printed —
   with its coverage block flagging the interruption — before exiting 3. *)
let interrupted = Atomic.make false

let install_signal_handlers () =
  let handle signal =
    try
      Sys.set_signal signal
        (Sys.Signal_handle (fun _ -> Atomic.set interrupted true))
    with Invalid_argument _ | Sys_error _ -> ()
  in
  handle Sys.sigint;
  handle Sys.sigterm

(* 0 = complete coverage, 3 = partial (interrupted or uncovered shards) *)
let exit_code_of (report : Search.report) =
  if Search.coverage_complete report.Search.coverage then 0 else 3

(* --- distributed mode -------------------------------------------------------------

   `analyze --workers N --work-dir DIR` runs the coordinator in this
   process and spawns N `achilles worker` processes of this same binary.
   Workers rebuild the search inputs from the manifest below; client
   extraction and the differentFrom matrix are deterministic, so every
   process derives the same terms, the same shard decomposition, and the
   same run fingerprint — which the worker verifies before serving. *)

module Dist = Achilles_dist

type manifest = {
  mf_target : string;
  mf_mask : string option; (* raw --mask argument *)
  mf_witnesses : int;
  mf_no_drop : bool;
  mf_no_df : bool;
  mf_no_prune : bool;
  mf_no_incremental : bool;
  mf_no_slice : bool;
  mf_explain : bool;
  mf_deadline : float option;
  mf_conflicts : int option;
  mf_workers : int; (* shard decomposition derives from this *)
  mf_fingerprint : string; (* expected run fingerprint; drift check *)
  mf_run_id : string; (* trace/status correlation id for the whole run *)
  mf_trace : bool; (* workers mirror the coordinator's tracing choice *)
}

(* The search config a distributed run uses, identical on both sides.
   [domains] is set to the worker count so the shard decomposition scales
   with it (each worker explores its leased shard sequentially). *)
let dist_search_config target ~mask ~witnesses ~no_drop ~no_df ~no_prune
    ~no_slice ~explain ~workers ~deadline ~conflicts =
  let solver_budget =
    match (deadline, conflicts) with
    | None, None -> None
    | deadline, conflicts -> Some (Solver.budget ?deadline ?conflicts ())
  in
  {
    Search.default_config with
    Search.mask = parse_mask target mask;
    Search.witnesses_per_path = witnesses;
    Search.distinct_by = target.distinct_by;
    Search.drop_alive = not no_drop;
    Search.use_different_from = not no_df;
    Search.prune_no_trojan = not no_prune;
    Search.use_slice = Slice.enabled () && not no_slice;
    Search.explain_drops = explain;
    Search.interp = target.interp;
    Search.domains = max 1 workers;
    Search.solver_budget;
    Search.cancel = (fun () -> Atomic.get interrupted);
  }

let search_config_of_manifest target mf =
  dist_search_config target ~mask:mf.mf_mask ~witnesses:mf.mf_witnesses
    ~no_drop:mf.mf_no_drop ~no_df:mf.mf_no_df ~no_prune:mf.mf_no_prune
    ~no_slice:mf.mf_no_slice ~explain:mf.mf_explain ~workers:mf.mf_workers
    ~deadline:mf.mf_deadline ~conflicts:mf.mf_conflicts

(* Client extraction + differentFrom, then the job record every process of
   the run must agree on. *)
let dist_job target config =
  let client_config =
    match target.client_interp with
    | Some c -> c
    | None -> Interp.default_config
  in
  let client, client_stats =
    Client_extract.extract ~config:client_config ~layout:target.layout
      target.clients
  in
  let different_from, different_from_stats =
    if config.Search.use_different_from then
      let server_slice =
        if config.Search.use_slice then
          Some (Slice.analyze ~layout:target.layout target.server)
        else None
      in
      let df, stats =
        Different_from.compute ?mask:config.Search.mask
          ~use_slice:config.Search.use_slice ?server_slice client
      in
      (Some df, Some stats)
    else (None, None)
  in
  let job =
    Dist.Worker.job_of ~config ?different_from ~client ~server:target.server ()
  in
  (job, client, client_stats, different_from, different_from_stats)

let run_coordinator target config ~workers ~workdir ~lease_ttl
    ~reassign_budget ~manifest_flags =
  let t0 = Unix.gettimeofday () in
  let job, client, client_stats, different_from, different_from_stats =
    dist_job target config
  in
  let t1 = Unix.gettimeofday () in
  let mf = { manifest_flags with mf_fingerprint = job.Dist.Worker.j_fingerprint } in
  let spawn =
    Dist.Coordinator.process_spawner ~prog:Sys.executable_name
      ~argv:[| Sys.executable_name; "worker"; "--work-dir"; workdir |]
      ()
  in
  let ccfg =
    {
      Dist.Coordinator.default_config with
      Dist.Coordinator.c_workers = workers;
      Dist.Coordinator.c_lease_ttl = lease_ttl;
      Dist.Coordinator.c_reassign_budget = reassign_budget;
      Dist.Coordinator.c_cancel = (fun () -> Atomic.get interrupted);
    }
  in
  let report =
    Dist.Coordinator.run ~config:ccfg ~workdir ~job ~spawn
      ~manifest:(Marshal.to_string mf []) ()
  in
  {
    Achilles.client;
    client_stats;
    different_from;
    different_from_stats;
    report;
    timing =
      {
        Achilles.client_extraction =
          client_stats.Client_extract.wall_time;
        preprocessing =
          t1 -. t0 -. client_stats.Client_extract.wall_time;
        server_analysis = report.Search.search_stats.Search.wall_time;
      };
  }

(* --- commands -------------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun t -> Format.printf "%-10s %s@." t.target_name t.description)
      targets;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the bundled target systems")
    Term.(const run $ const ())

let analyze name mask witnesses no_drop no_df no_prune no_incremental no_slice
    verbose explain domains deadline solver_budget checkpoint_dir resume trace
    workers work_dir lease_ttl reassign_budget digest =
  match find_target name with
  | Error e ->
      Format.eprintf "%s@." e;
      1
  | Ok target when workers <> 0 && work_dir = None ->
      Format.eprintf "achilles analyze %s: --workers requires --work-dir@."
        target.target_name;
      1
  | Ok target ->
      let workers =
        if workers < 0 then Pool.recommended_domains () else workers
      in
      if no_incremental then Solver.set_incremental false;
      if no_slice then Slice.set_enabled false;
      install_signal_handlers ();
      (* name this process before any trace stream opens, so the
         trace_start meta event (and status.json) carry the run id *)
      Obs.set_identity
        ~run_id:(Obs.fresh_run_id ())
        ~proc:
          (if workers > 0 && work_dir <> None then "coordinator"
           else "analyze");
      setup_trace trace;
      if verbose then install_verbose_sink ();
      Fun.protect
        ~finally:(fun () ->
          (* also the SIGINT/SIGTERM partial-flush path: the search winds
             down cooperatively and control always comes back through here,
             closing (and thereby flushing) the trace before exit *)
          Obs.set_sink None;
          Obs.Trace.disable ())
      @@ fun () ->
      Obs.emit ~kind:"meta" ~name:"analyze"
        ~args:
          [
            ("target", Obs.S name);
            ("domains", Obs.I domains);
            ("workers", Obs.I workers);
          ]
        ();
      let analysis =
        match work_dir with
        | Some workdir when workers > 0 ->
            let config =
              dist_search_config target ~mask ~witnesses ~no_drop ~no_df
                ~no_prune ~no_slice ~explain ~workers ~deadline
                ~conflicts:solver_budget
            in
            run_coordinator target config ~workers ~workdir ~lease_ttl
              ~reassign_budget
              ~manifest_flags:
                {
                  mf_target = name;
                  mf_mask = mask;
                  mf_witnesses = witnesses;
                  mf_no_drop = no_drop;
                  mf_no_df = no_df;
                  mf_no_prune = no_prune;
                  mf_no_incremental = no_incremental;
                  mf_no_slice = no_slice;
                  mf_explain = explain;
                  mf_deadline = deadline;
                  mf_conflicts = solver_budget;
                  mf_workers = workers;
                  mf_fingerprint = "";
                  mf_run_id = fst (Obs.identity ());
                  mf_trace = Obs.live ();
                }
        | _ ->
            let solver_budget =
              match (deadline, solver_budget) with
              | None, None -> None
              | deadline, conflicts ->
                  Some (Solver.budget ?deadline ?conflicts ())
            in
            let checkpoint_dir =
              match resume with Some dir -> Some dir | None -> checkpoint_dir
            in
            let config =
              {
                Search.default_config with
                Search.mask = parse_mask target mask;
                Search.witnesses_per_path = witnesses;
                Search.distinct_by = target.distinct_by;
                Search.drop_alive = not no_drop;
                Search.use_different_from = not no_df;
                Search.prune_no_trojan = not no_prune;
                Search.use_slice = Slice.enabled () && not no_slice;
                Search.explain_drops = explain;
                Search.interp = target.interp;
                Search.domains = domains;
                Search.solver_budget;
                Search.checkpoint_dir;
                Search.resume = resume <> None;
                Search.cancel = (fun () -> Atomic.get interrupted);
              }
            in
            Achilles.analyze ~search_config:config
              ?client_interp:target.client_interp ~layout:target.layout
              ~clients:target.clients ~server:target.server ()
      in
      Obs.span Obs.Report (fun () ->
          Format.printf "%a@.@." Achilles.pp_summary analysis;
          List.iter
            (fun (t : Search.trojan) ->
              Format.printf "%a@." (Report.pp_trojan target.layout) t;
              if verbose || Obs.live () then
                let rendered =
                  String.concat "\n"
                    (List.map
                       (fun c -> Format.asprintf "%a" Smt_term.pp c)
                       t.Search.symbolic)
                in
                Obs.emit ~kind:"report" ~name:"trojan_symbolic"
                  ~args:
                    [
                      ("state", Obs.I t.Search.server_state_id);
                      ("label", Obs.S t.Search.accept_label);
                      ("symbolic", Obs.S rendered);
                    ]
                  ())
            (Achilles.trojans analysis);
          if explain then begin
            Format.printf "@.-- why client paths were dropped --@.";
            List.iter
              (fun (d : Search.drop_explanation) ->
                Format.printf
                  "  client path %d died at server state %d because:@."
                  d.Search.dropped_path d.Search.at_state;
                List.iter
                  (fun c -> Format.printf "    %a@." Smt_term.pp c)
                  d.Search.conflicting)
              analysis.Achilles.report.Search.drops
          end);
      Format.printf "@.%a@." Report.pp_metrics (Obs.aggregate ());
      if digest then
        Format.printf "@.report digest: %s@."
          (Report.report_digest analysis.Achilles.report);
      exit_code_of analysis.Achilles.report

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze" ~doc:"Search a target system for Trojan messages"
       ~man:
         [
           `S Cmdliner.Manpage.s_exit_status;
           `P
             "0 on complete coverage; 3 when the report is partial \
              (interrupted by SIGINT/SIGTERM, or shards failed after \
              retries); 1 on usage or target errors.";
         ])
    Term.(
      const analyze $ target_arg $ mask_arg $ witnesses_arg $ no_drop_arg
      $ no_df_arg $ no_prune_arg $ no_incremental_arg $ no_slice_arg
      $ verbose_arg $ explain_arg $ domains_arg $ deadline_arg
      $ solver_budget_arg $ checkpoint_dir_arg $ resume_arg $ trace_arg
      $ workers_arg $ work_dir_arg $ lease_ttl_arg $ reassign_budget_arg
      $ digest_arg)

let predicate name =
  match find_target name with
  | Error e ->
      Format.eprintf "%s@." e;
      1
  | Ok target ->
      let config =
        match target.client_interp with Some c -> c | None -> target.interp
      in
      let pc, stats =
        Client_extract.extract ~config ~layout:target.layout target.clients
      in
      Format.printf "%a@." Predicate.pp_client_predicate pc;
      Format.printf
        "(%d programs, %d paths explored, %d messages captured, %.2fs)@.@."
        stats.Client_extract.programs stats.Client_extract.paths_explored
        stats.Client_extract.messages_captured stats.Client_extract.wall_time;
      Format.printf "-- grammar summary (what correct clients put in each field) --@.";
      Format.printf "%a@."
        Report.pp_grammar
        (Report.describe_grammar ?mask:target.default_mask pc);
      0

let predicate_cmd =
  Cmd.v
    (Cmd.info "predicate"
       ~doc:"Extract and print a target's client predicate PC")
    Term.(const predicate $ target_arg)

let conformance name =
  match find_target name with
  | Error e ->
      Format.eprintf "%s@." e;
      1
  | Ok target ->
      let client_config =
        match target.client_interp with Some c -> c | None -> target.interp
      in
      let pc, _ =
        Client_extract.extract ~config:client_config ~layout:target.layout
          target.clients
      in
      let report =
        Conformance.run ~interp:target.interp ~max_per_path:2 ~client:pc
          ~server:target.server ()
      in
      Format.printf "%a@." (Conformance.pp_report target.layout) report;
      0

let conformance_cmd =
  Cmd.v
    (Cmd.info "conformance"
       ~doc:
         "Find lost messages: messages correct clients generate that the \
          server rejects (the dual of the Trojan difference)")
    Term.(const conformance $ target_arg)

let show name =
  match find_target name with
  | Error e ->
      Format.eprintf "%s@." e;
      1
  | Ok target ->
      Format.printf "%a@.@." Layout.pp target.layout;
      Format.printf "%a@.@." Pp.pp_program target.server;
      List.iter
        (fun client -> Format.printf "%a@.@." Pp.pp_program client)
        target.clients;
      0

let show_cmd =
  Cmd.v
    (Cmd.info "show"
       ~doc:"Print a target's message layout and programs as pseudo-C")
    Term.(const show $ target_arg)

let replay name witnesses =
  match find_target name with
  | Error e ->
      Format.eprintf "%s@." e;
      1
  | Ok target ->
      let config =
        {
          Search.default_config with
          Search.mask = target.default_mask;
          Search.witnesses_per_path = witnesses;
          Search.distinct_by = target.distinct_by;
          Search.interp = target.interp;
        }
      in
      let analysis =
        Achilles.analyze ~search_config:config
          ?client_interp:target.client_interp ~layout:target.layout
          ~clients:target.clients ~server:target.server ()
      in
      let trojans = Achilles.trojans analysis in
      let confirmation =
        Achilles_runtime.Inject.confirm ~server:target.server trojans
      in
      Format.printf "%a@." Achilles_runtime.Inject.pp_confirmation confirmation;
      if confirmation.Achilles_runtime.Inject.rejected > 0 then 1 else 0

let replay_cmd =
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Analyze, then replay every discovered witness against the \
          concretely executed server (fire-drill mode)")
    Term.(const replay $ target_arg $ witnesses_arg)

(* --- worker mode ------------------------------------------------------------------ *)

let worker workdir wid epoch =
  install_signal_handlers ();
  let manifest_path = Dist.Lease.manifest_file workdir in
  (* the coordinator writes the manifest before spawning anyone, so a
     short wait only covers slow filesystems *)
  let rec wait_manifest tries =
    match Dist.Lease.read_file manifest_path with
    | Some content -> Some content
    | None ->
        if tries <= 0 then None
        else begin
          Unix.sleepf 0.05;
          wait_manifest (tries - 1)
        end
  in
  match wait_manifest 100 with
  | None ->
      Format.eprintf "achilles worker: no manifest in %s@." workdir;
      2
  | Some content -> (
      match (Marshal.from_string content 0 : manifest) with
      | exception _ ->
          Format.eprintf "achilles worker: unreadable manifest in %s@." workdir;
          2
      | mf ->
          Obs.set_identity ~run_id:mf.mf_run_id
            ~proc:(Printf.sprintf "worker-%03d" wid);
          if mf.mf_trace then
            Obs.Trace.enable
              (Filename.concat workdir
                 (Printf.sprintf "trace-worker-%03d.e%d.jsonl" wid epoch));
          (* every exit path below — drift exit 2, SIGTERM drain, clean
             drain — funnels through this [finally], so the per-worker
             trace stream is always flushed and closed. The fault-injected
             death path bypasses it by design ([Unix._exit]); the default
             [die] closes the trace itself first. *)
          Fun.protect ~finally:(fun () -> Obs.Trace.disable ())
          @@ fun () -> (
          match find_target mf.mf_target with
          | Error e ->
              Format.eprintf "achilles worker: %s@." e;
              2
          | Ok target ->
              if mf.mf_no_incremental then Solver.set_incremental false;
              if mf.mf_no_slice then Slice.set_enabled false;
              let config = search_config_of_manifest target mf in
              let job, _, _, _, _ = dist_job target config in
              if job.Dist.Worker.j_fingerprint <> mf.mf_fingerprint then begin
                (* binary or target drift: serving would poison the merge *)
                Format.eprintf
                  "achilles worker: run fingerprint mismatch for %s (got %s, \
                   manifest %s)@."
                  mf.mf_target job.Dist.Worker.j_fingerprint mf.mf_fingerprint;
                2
              end
              else begin
                Dist.Worker.run ~workdir ~wid ~epoch ~job ();
                0
              end))

let worker_cmd =
  let work_dir_req =
    let doc = "Coordinator work directory to attach to." in
    Arg.(
      required
      & opt (some string) None
      & info [ "work-dir" ] ~docv:"DIR" ~doc)
  in
  let id_arg =
    let doc = "Worker id assigned by the coordinator." in
    Arg.(required & opt (some int) None & info [ "id" ] ~docv:"N" ~doc)
  in
  let epoch_arg =
    let doc = "Respawn epoch (diversifies the fault-injection PRNG)." in
    Arg.(value & opt int 0 & info [ "epoch" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Serve shards for a distributed analyze run (spawned by \
          $(b,analyze --workers); rarely invoked by hand). Rebuilds the \
          search inputs from the coordinator's manifest, verifies the run \
          fingerprint, then leases shards until drained. \
          $(b,ACHILLES_WORKER_FAULT_RATE) injects deterministic \
          mid-shard crashes for chaos testing."
       ~man:
         [
           `S Cmdliner.Manpage.s_exit_status;
           `P
             "0 after a clean drain; 2 when the manifest is missing, \
              unreadable, or names a different run fingerprint.";
         ])
    Term.(const worker $ work_dir_req $ id_arg $ epoch_arg)

(* --- compiled filters and the serve daemon ---------------------------------------- *)

module Filter = Achilles_filter.Filter
module Daemon = Achilles_filter.Daemon

let hex_of_witness (bytes : Bv.t array) =
  String.concat ""
    (Array.to_list (Array.map (fun b -> Printf.sprintf "%02x" (Bv.to_int b)) bytes))

let bytes_of_hex s =
  let digit c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let n = String.length s in
  if n mod 2 <> 0 then Error (Printf.sprintf "odd-length hex string %S" s)
  else
    let out = Bytes.create (n / 2) in
    let rec go i =
      if i >= n / 2 then Ok out
      else
        match (digit s.[2 * i], digit s.[(2 * i) + 1]) with
        | Some hi, Some lo ->
            Bytes.set out i (Char.chr ((hi lsl 4) lor lo));
            go (i + 1)
        | _ -> Error (Printf.sprintf "not a hex string: %S" s)
    in
    go 0

let pp_verdict filter ppf = function
  | Filter.Accept -> Format.fprintf ppf "accept"
  | Filter.Trojan_suspect id ->
      let label =
        match Filter.state_label filter id with
        | Some l -> Printf.sprintf " %S" l
        | None -> ""
      in
      Format.fprintf ppf "trojan-suspect state=%d%s" id label
  | Filter.Unknown_state -> Format.fprintf ppf "unknown-state"

let enum_values_arg =
  let doc =
    "Solver model-enumeration budget for irreducible existential residues \
     (per residue); past it the residue becomes an honest unknown leaf."
  in
  Arg.(value & opt int 512 & info [ "enum-values" ] ~docv:"N" ~doc)

let output_filter_arg =
  let doc = "Output file (default: $(i,TARGET).achfilter)." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let print_witness_arg =
  let doc =
    "Also print each discovered Trojan witness as a hex string ready for \
     $(b,filter query) / $(b,filter send) golden checks."
  in
  Arg.(value & flag & info [ "print-witnesses" ] ~doc)

let compile_filter name mask witnesses enum_values output print_witnesses =
  match find_target name with
  | Error e ->
      Format.eprintf "%s@." e;
      1
  | Ok target -> (
      let config =
        {
          Search.default_config with
          Search.mask = parse_mask target mask;
          Search.witnesses_per_path = witnesses;
          Search.distinct_by = target.distinct_by;
          Search.interp = target.interp;
        }
      in
      let analysis =
        Achilles.analyze ~search_config:config
          ?client_interp:target.client_interp ~layout:target.layout
          ~clients:target.clients ~server:target.server ()
      in
      let filter =
        Obs.span Obs.Filter_eval (fun () ->
            Filter.compile ~enum_values ~target:name ~layout:target.layout
              ~report:analysis.Achilles.report ())
      in
      let file =
        match output with Some f -> f | None -> name ^ ".achfilter"
      in
      match Filter.save filter ~file with
      | Error e ->
          Format.eprintf "compile-filter: cannot write %s: %s@." file e;
          1
      | Ok () ->
          Format.printf "%a@." Filter.pp_summary filter;
          Format.printf "wrote %s@." file;
          if print_witnesses then
            List.iter
              (fun (t : Search.trojan) ->
                Format.printf "witness state=%d %s@." t.Search.server_state_id
                  (hex_of_witness t.Search.witness))
              (Achilles.trojans analysis);
          if Filter.unknown_leaves filter > 0 then
            Format.printf
              "note: %d unknown leaves — some messages will answer \
               unknown-state@."
              (Filter.unknown_leaves filter);
          0)

let compile_filter_cmd =
  Cmd.v
    (Cmd.info "compile-filter"
       ~doc:
         "Analyze a target and compile the per-state Trojan queries \
          ($(i,not) PC restricted to accepting server paths) into a \
          self-contained runtime filter")
    Term.(
      const compile_filter $ target_arg $ mask_arg $ witnesses_arg
      $ enum_values_arg $ output_filter_arg $ print_witness_arg)

let filter_file_arg =
  let doc = "Compiled filter written by $(b,compile-filter)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILTER" ~doc)

let socket_arg =
  let doc = "Serve on a Unix-domain socket at $(docv)." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let tcp_arg =
  let doc = "Serve on TCP $(docv) (HOST:PORT)." in
  Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)

let parse_address socket tcp =
  match (socket, tcp) with
  | Some path, None -> Ok (Daemon.Unix_socket path)
  | None, Some hostport -> (
      match String.rindex_opt hostport ':' with
      | None -> Error "--tcp expects HOST:PORT"
      | Some i -> (
          let host = String.sub hostport 0 i in
          let port = String.sub hostport (i + 1) (String.length hostport - i - 1) in
          match int_of_string_opt port with
          | Some p when p > 0 && p < 0x10000 -> Ok (Daemon.Tcp (host, p))
          | _ -> Error (Printf.sprintf "bad port %S" port)))
  | None, None | Some _, Some _ ->
      Error "exactly one of --socket or --tcp is required"

(* --metrics takes one operand: HOST:PORT when it looks like one (has a
   colon and no slash), otherwise a Unix-socket path *)
let parse_metrics_address s =
  match String.rindex_opt s ':' with
  | Some _ when not (String.contains s '/') -> parse_address None (Some s)
  | _ -> Ok (Daemon.Unix_socket s)

let metrics_arg =
  let doc =
    "Also expose Prometheus text metrics (verdict counters, per-request \
     latency histogram, frame drops, live phase counters) over HTTP at \
     $(docv) — $(i,HOST:PORT) or a Unix-socket path. Scrapes are served \
     from the daemon's select loop; they never block verdict traffic."
  in
  Arg.(
    value & opt (some string) None & info [ "metrics" ] ~docv:"ADDR" ~doc)

let serve filter_file socket tcp metrics trace =
  match Filter.load ~file:filter_file with
  | Error e ->
      Format.eprintf "serve: %s@." e;
      1
  | Ok filter -> (
      match parse_address socket tcp with
      | Error e ->
          Format.eprintf "serve: %s@." e;
          1
      | Ok address -> (
          let metrics_address =
            match metrics with
            | None -> Ok None
            | Some s -> Result.map Option.some (parse_metrics_address s)
          in
          match metrics_address with
          | Error e ->
              Format.eprintf "serve: --metrics: %s@." e;
              1
          | Ok metrics ->
              install_signal_handlers ();
              setup_trace trace;
              Format.printf "serving %a@." Filter.pp_summary filter;
              (match address with
              | Daemon.Unix_socket path ->
                  Format.printf "listening on %s@." path
              | Daemon.Tcp (host, port) ->
                  Format.printf "listening on %s:%d@." host port);
              (match metrics with
              | Some (Daemon.Unix_socket path) ->
                  Format.printf "metrics on %s@." path
              | Some (Daemon.Tcp (host, port)) ->
                  Format.printf "metrics on %s:%d@." host port
              | None -> ());
              (* readiness marker for scripts: the socket exists once run is
                 entered, but flushing here lets a parent wait on our stdout *)
              Format.printf "ready@.";
              flush stdout;
              Fun.protect ~finally:(fun () -> Obs.Trace.disable ())
              @@ fun () ->
              let stats =
                Daemon.run ?metrics ~filter ~address
                  ~stop:(fun () -> Atomic.get interrupted)
                  ()
              in
              Format.printf "%a@." Daemon.pp_stats stats;
              0))

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a compiled filter as a daemon: length-prefixed messages in, \
          accept / trojan-suspect / unknown-state verdicts out. SIGTERM or \
          SIGINT drains and prints verdict statistics."
       ~man:
         [
           `S Cmdliner.Manpage.s_description;
           `P
             "Protocol: each request is a 4-byte big-endian length followed \
              by the raw message bytes; each response is one verdict \
              character (A/T/U) and a 4-byte big-endian state id \
              (0xFFFFFFFF when there is none). Frames above 1 MiB drop the \
              connection. A length of 0xFFFFFFFF is the STATS sentinel: \
              the daemon replies with a length-prefixed text block of its \
              live statistics (see $(b,filter stats)).";
         ])
    Term.(
      const serve $ filter_file_arg $ socket_arg $ tcp_arg $ metrics_arg
      $ trace_arg)

let filter_info file =
  match Filter.load ~file with
  | Error e ->
      Format.eprintf "filter info: %s@." e;
      1
  | Ok filter ->
      Format.printf "%a@." Filter.pp_summary filter;
      0

let filter_info_cmd =
  Cmd.v
    (Cmd.info "info" ~doc:"Print a compiled filter's summary")
    Term.(const filter_info $ filter_file_arg)

let hex_messages_arg =
  let doc = "Messages as hex strings (two digits per byte)." in
  Arg.(non_empty & pos_right 0 string [] & info [] ~docv:"HEX" ~doc)

let filter_query file hexes =
  match Filter.load ~file with
  | Error e ->
      Format.eprintf "filter query: %s@." e;
      1
  | Ok filter ->
      let ev = Filter.evaluator filter in
      let rec go = function
        | [] -> 0
        | hex :: rest -> (
            match bytes_of_hex hex with
            | Error e ->
                Format.eprintf "filter query: %s@." e;
                1
            | Ok bytes ->
                Format.printf "%s -> %a@." hex (pp_verdict filter)
                  (Filter.verdict_bytes ev bytes);
                go rest)
      in
      go hexes

let filter_query_cmd =
  Cmd.v
    (Cmd.info "query"
       ~doc:"Evaluate messages against a compiled filter in-process")
    Term.(const filter_query $ filter_file_arg $ hex_messages_arg)

let hex_messages_all_arg =
  let doc = "Messages as hex strings (two digits per byte)." in
  Arg.(non_empty & pos_all string [] & info [] ~docv:"HEX" ~doc)

let filter_send socket tcp hexes =
  match parse_address socket tcp with
  | Error e ->
      Format.eprintf "filter send: %s@." e;
      1
  | Ok address -> (
      let sockaddr, domain =
        match address with
        | Daemon.Unix_socket path -> (Unix.ADDR_UNIX path, Unix.PF_UNIX)
        | Daemon.Tcp (host, port) ->
            (Unix.ADDR_INET (Unix.inet_addr_of_string host, port), Unix.PF_INET)
      in
      let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
      match Unix.connect fd sockaddr with
      | exception Unix.Unix_error (err, _, _) ->
          Format.eprintf "filter send: connect: %s@." (Unix.error_message err);
          1
      | () ->
          let read_exactly n =
            let buf = Bytes.create n in
            let rec go off =
              if off >= n then buf
              else
                match Unix.read fd buf off (n - off) with
                | 0 -> failwith "daemon closed the connection"
                | k -> go (off + k)
            in
            go 0
          in
          let code =
            try
              List.iter
                (fun hex ->
                  match bytes_of_hex hex with
                  | Error e -> failwith e
                  | Ok payload ->
                      let frame = Bytes.create (4 + Bytes.length payload) in
                      Bytes.set_int32_be frame 0
                        (Int32.of_int (Bytes.length payload));
                      Bytes.blit payload 0 frame 4 (Bytes.length payload);
                      let _ = Unix.write fd frame 0 (Bytes.length frame) in
                      let reply = read_exactly 5 in
                      let state =
                        Int32.to_int (Bytes.get_int32_be reply 1)
                        land 0xFFFFFFFF
                      in
                      let verdict =
                        match Bytes.get reply 0 with
                        | 'A' -> "accept"
                        | 'T' -> Printf.sprintf "trojan-suspect state=%d" state
                        | 'U' -> "unknown-state"
                        | c -> Printf.sprintf "unexpected reply %C" c
                      in
                      Format.printf "%s -> %s@." hex verdict)
                hexes;
              0
            with Failure e ->
              Format.eprintf "filter send: %s@." e;
              1
          in
          (try Unix.close fd with Unix.Unix_error _ -> ());
          code)

let filter_send_cmd =
  Cmd.v
    (Cmd.info "send"
       ~doc:
         "Send messages to a running $(b,serve) daemon and print its \
          verdicts (the daemon's wire protocol, exercised end to end)")
    Term.(const filter_send $ socket_arg $ tcp_arg $ hex_messages_all_arg)

let filter_stats socket tcp =
  match parse_address socket tcp with
  | Error e ->
      Format.eprintf "filter stats: %s@." e;
      1
  | Ok address -> (
      let sockaddr, domain =
        match address with
        | Daemon.Unix_socket path -> (Unix.ADDR_UNIX path, Unix.PF_UNIX)
        | Daemon.Tcp (host, port) ->
            (Unix.ADDR_INET (Unix.inet_addr_of_string host, port), Unix.PF_INET)
      in
      let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
      match Unix.connect fd sockaddr with
      | exception Unix.Unix_error (err, _, _) ->
          Format.eprintf "filter stats: connect: %s@." (Unix.error_message err);
          1
      | () ->
          let read_exactly n =
            let buf = Bytes.create n in
            let rec go off =
              if off >= n then buf
              else
                match Unix.read fd buf off (n - off) with
                | 0 -> failwith "daemon closed the connection"
                | k -> go (off + k)
            in
            go 0
          in
          let code =
            try
              (* the STATS sentinel: an impossible frame length *)
              let req = Bytes.create 4 in
              Bytes.set_int32_be req 0 0xFFFFFFFFl;
              let _ = Unix.write fd req 0 4 in
              let len =
                Int32.to_int (Bytes.get_int32_be (read_exactly 4) 0)
                land 0xFFFFFFFF
              in
              print_string (Bytes.to_string (read_exactly len));
              0
            with Failure e ->
              Format.eprintf "filter stats: %s@." e;
              1
          in
          (try Unix.close fd with Unix.Unix_error _ -> ());
          code)

let filter_stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Ask a running $(b,serve) daemon for its live statistics over the \
          verdict socket (uptime, connection and message totals, verdict \
          counters, dropped frames, latency quantiles) — one $(i,key value) \
          line each, the same totals the $(b,--metrics) endpoint exports")
    Term.(const filter_stats $ socket_arg $ tcp_arg)

let filter_cmd =
  Cmd.group
    (Cmd.info "filter"
       ~doc:"Inspect, evaluate, and exercise compiled Trojan filters")
    [ filter_info_cmd; filter_query_cmd; filter_send_cmd; filter_stats_cmd ]

(* --- trace inspection ------------------------------------------------------------- *)

let trace_file_arg =
  let doc = "JSONL trace file written by $(b,analyze --trace)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let trace_summarize file =
  match Obs.Summary.load file with
  | Error e ->
      Format.eprintf "trace summarize: %s@." e;
      1
  | Ok s ->
      let open Obs.Summary in
      Format.printf
        "Trace: %d events over %.3fs wall; %.1f%% of wall-clock attributed \
         to named phases@.@."
        s.events s.wall (100. *. s.attributed);
      Format.printf "%-16s %10s %8s %10s %8s %9s %9s %9s %10s@." "phase"
        "self(s)" "share" "total(s)" "spans" "p50(ms)" "p95(ms)" "p99(ms)"
        "max(ms)";
      let rows =
        List.sort (fun a b -> compare b.self_seconds a.self_seconds) s.rows
      in
      List.iter
        (fun r ->
          let q p = 1000. *. Obs.estimate_quantile r.row_hist p in
          Format.printf
            "%-16s %10.3f %7.1f%% %10.3f %8d %9.2f %9.2f %9.2f %10.2f@."
            r.row_phase r.self_seconds
            (if s.wall > 0. then 100. *. r.self_seconds /. s.wall else 0.)
            r.total_seconds r.row_spans (q 0.5) (q 0.95) (q 0.99)
            (1000. *. r.max_seconds))
        rows;
      if s.verdicts <> [] then begin
        Format.printf "@.solver verdicts:";
        List.iter (fun (v, n) -> Format.printf " %s=%d" v n) s.verdicts;
        Format.printf "@."
      end;
      if s.cache_hits > 0 || s.cache_misses > 0 then
        Format.printf "solver cache:    %d hits, %d misses@." s.cache_hits
          s.cache_misses;
      if s.counters <> [] then begin
        Format.printf "@.counters:@.";
        List.iter
          (fun (name, n) -> Format.printf "  %-28s %d@." name n)
          s.counters
      end;
      if s.kinds <> [] then begin
        Format.printf "@.events by kind:@.";
        List.iter (fun (k, n) -> Format.printf "  %-28s %d@." k n) s.kinds
      end;
      0

let trace_summarize_cmd =
  Cmd.v
    (Cmd.info "summarize"
       ~doc:
         "Print a per-phase time/query breakdown of a JSONL trace. Self-time \
          attribution: nested spans (a solver query inside the server \
          search) are charged to the innermost phase only.")
    Term.(const trace_summarize $ trace_file_arg)

let trace_export file output =
  let dst =
    match output with Some o -> o | None -> file ^ ".chrome.json"
  in
  match Obs.Chrome.export ~src:file ~dst with
  | Error e ->
      Format.eprintf "trace export: %s@." e;
      1
  | Ok () ->
      Format.printf
        "wrote %s (load in Perfetto / chrome://tracing as a flamegraph)@." dst;
      0

let trace_export_cmd =
  let output_arg =
    let doc = "Output path (default: $(i,FILE).chrome.json)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT" ~doc)
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Convert a JSONL trace to Chrome trace-event JSON for Perfetto / \
          chrome://tracing")
    Term.(const trace_export $ trace_file_arg $ output_arg)

let trace_merge srcs output =
  match srcs with
  | [] ->
      Format.eprintf "trace merge: need at least one trace file@.";
      1
  | first :: _ -> (
      let dst =
        match output with Some o -> o | None -> first ^ ".merged.json"
      in
      match Obs.Chrome.merge ~srcs ~dst with
      | Error e ->
          Format.eprintf "trace merge: %s@." e;
          1
      | Ok (n, run_id) ->
          Format.printf "merged %d streams%s into %s@." n
            (match run_id with
            | Some id -> Printf.sprintf " (run %s)" id
            | None -> "")
            dst;
          0)

let trace_merge_cmd =
  let srcs_arg =
    let doc =
      "JSONL traces of one run: the coordinator's $(b,--trace) file plus \
       the workers' $(i,trace-worker-*.jsonl) from the work directory."
    in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc)
  in
  let output_arg =
    let doc = "Output path (default: $(i,FIRST).merged.json)." in
    Arg.(
      value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT" ~doc)
  in
  Cmd.v
    (Cmd.info "merge"
       ~doc:
         "Stitch the coordinator's and workers' JSONL traces into one \
          Chrome/Perfetto timeline: one process track per stream, \
          timestamps aligned on each stream's wall-clock origin, and a \
          hard error if the streams carry different run ids")
    Term.(const trace_merge $ srcs_arg $ output_arg)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace" ~doc:"Inspect JSONL traces written by analyze --trace")
    [ trace_summarize_cmd; trace_export_cmd; trace_merge_cmd ]

(* --- run status ------------------------------------------------------------------- *)

let status workdir =
  match Dist.Status.load ~workdir with
  | Error e ->
      Format.eprintf "achilles status: %s@." e;
      1
  | Ok st ->
      Format.printf "%a@." (Dist.Status.pp ?now:None) st;
      0

let status_cmd =
  let work_dir_req =
    let doc = "Work directory of the distributed run to inspect." in
    Arg.(
      required
      & opt (some string) None
      & info [ "work-dir" ] ~docv:"DIR" ~doc)
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:
         "Render the status.json a distributed run's coordinator keeps \
          beside its leases: shard progress, solver throughput, cache hit \
          rate, and per-worker liveness. Works on a live run (the file is \
          updated atomically every second) and on a crashed one (the last \
          written picture survives)."
       ~man:
         [
           `S Cmdliner.Manpage.s_exit_status;
           `P "0 when status.json was read; 1 when missing or unreadable.";
         ])
    Term.(const status $ work_dir_req)

let () =
  let doc = "find Trojan messages in distributed system implementations" in
  let info = Cmd.info "achilles" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            list_cmd;
            analyze_cmd;
            worker_cmd;
            predicate_cmd;
            replay_cmd;
            show_cmd;
            conformance_cmd;
            compile_filter_cmd;
            serve_cmd;
            filter_cmd;
            trace_cmd;
            status_cmd;
          ]))
