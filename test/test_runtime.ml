(* Tests for the concrete runtime: nodes, the simulated network, the FSP
   file store and deployment (wildcard + extra-payload impact), the PBFT
   deployment (MAC-attack impact), and Trojan fault injection. *)

open Achilles_smt
open Achilles_symvm
open Achilles_core
open Achilles_runtime
open Achilles_targets

let b8 n = Bv.of_int ~width:8 n

(* --- Fsp_fs / globbing ----------------------------------------------------------- *)

let test_glob_match () =
  let cases =
    [
      ("f*", "f1", true);
      ("f*", "f", true);
      ("f*", "f*", true);
      ("f*", "g1", false);
      ("*", "anything", true);
      ("a*b", "axxb", true);
      ("a*b", "ab", true);
      ("a*b", "axc", false);
      ("no-star", "no-star", true);
      ("no-star", "other", false);
    ]
  in
  List.iter
    (fun (pattern, name, expected) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s ~ %s" pattern name)
        expected
        (Fsp_fs.glob_match ~pattern name))
    cases

let qcheck_glob_literal_patterns =
  let gen =
    QCheck2.Gen.(
      string_size ~gen:(map Char.chr (int_range 97 122)) (int_range 0 6))
  in
  QCheck2.Test.make ~name:"literal patterns match only themselves" ~count:100
    (QCheck2.Gen.pair gen gen) (fun (pattern, name) ->
      Fsp_fs.glob_match ~pattern name = (pattern = name))

let test_fs_operations () =
  let fs = Fsp_fs.create ~files:[ "b"; "a" ] () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b" ] (Fsp_fs.list fs);
  Fsp_fs.create_file fs "c";
  Alcotest.(check bool) "created" true (Fsp_fs.exists fs "c");
  Alcotest.(check bool) "delete hit" true (Fsp_fs.delete fs "a");
  Alcotest.(check bool) "delete miss" false (Fsp_fs.delete fs "zz");
  Alcotest.(check bool) "rename" true (Fsp_fs.rename fs ~src:"b" ~dst:"d");
  Alcotest.(check (list string)) "final" [ "c"; "d" ] (Fsp_fs.list fs)

(* --- node / net -------------------------------------------------------------------- *)

let test_node_state_persists () =
  let open Builder in
  let counter =
    prog "counter" ~globals:[ ("count", 8) ] ~buffers:[ ("m", 1) ]
      [ receive "m"; set "count" (v "count" +: i8 1); mark_accept "ok" ]
  in
  let node = Node.create counter in
  ignore (Node.deliver node [| b8 0 |]);
  ignore (Node.deliver node [| b8 0 |]);
  ignore (Node.deliver node [| b8 0 |]);
  Alcotest.(check int) "three delivered" 3 (Node.delivered node);
  Alcotest.(check bool) "count is 3" true
    (Bv.equal (List.assoc "count" (Node.globals node)) (b8 3));
  Alcotest.(check int) "all accepted" 3 (Node.accepted_count node)

let test_net_routing_and_replies () =
  let open Builder in
  let ping =
    prog "ping" ~buffers:[ ("in", 1); ("out", 1) ]
      [
        receive "in";
        store "out" (i8 0) (load "in" (i8 0) +: i8 1);
        send (i8 2) "out";
        mark_accept "ponged";
      ]
  in
  let sink =
    prog "sink" ~globals:[ ("last", 8) ] ~buffers:[ ("in", 1) ]
      [ receive "in"; set "last" (load "in" (i8 0)); mark_accept "got" ]
  in
  let net = Net.create () in
  let ping_node = Node.create ping and sink_node = Node.create sink in
  Net.add_node net ~addr:1 ping_node;
  Net.add_node net ~addr:2 sink_node;
  Net.inject net ~dst:1 [| b8 41 |];
  let steps = Net.run_to_quiescence net in
  Alcotest.(check int) "two deliveries" 2 steps;
  Alcotest.(check bool) "sink saw 42" true
    (Bv.equal (List.assoc "last" (Node.globals sink_node)) (b8 42))

let test_net_bit_flip_fault () =
  (* the paper's example: one bit flip turns ASCII 'j' into '*' *)
  Alcotest.(check int) "j ^ 0x40 = *" (Char.code '*') (Char.code 'j' lxor 0x40);
  let open Builder in
  let sink =
    prog "sink" ~globals:[ ("last", 8) ] ~buffers:[ ("in", 1) ]
      [ receive "in"; set "last" (load "in" (i8 0)); mark_accept "got" ]
  in
  let net = Net.create () in
  let node = Node.create sink in
  Net.add_node net ~addr:1 node;
  Net.set_fault net (Some (Net.bit_flip_fault ~byte:0 ~bit:6 ()));
  Net.inject net ~dst:1 [| b8 (Char.code 'j') |];
  ignore (Net.run_to_quiescence net);
  Alcotest.(check bool) "corrupted to '*'" true
    (Bv.equal (List.assoc "last" (Node.globals node)) (b8 (Char.code '*')))

let test_net_fault_index_validation () =
  let raises_invalid name f =
    Alcotest.check_raises name
      (Invalid_argument
         (match name with
         | "negative byte" -> "Net.bit_flip_fault: negative byte -1"
         | "bit too high" -> "Net.bit_flip_fault: bit 8 outside [0, 7]"
         | _ -> "Net.bit_flip_fault: bit -3 outside [0, 7]"))
      (fun () -> ignore (f ()))
  in
  raises_invalid "negative byte" (fun () ->
      Net.bit_flip_fault ~byte:(-1) ~bit:0 ());
  raises_invalid "bit too high" (fun () ->
      Net.bit_flip_fault ~byte:0 ~bit:8 ());
  raises_invalid "negative bit" (fun () ->
      Net.bit_flip_fault ~byte:0 ~bit:(-3) ());
  (* a byte beyond a given packet stays a per-packet no-op, not an error:
     packet sizes legitimately vary across receivers *)
  let f = Net.bit_flip_fault ~byte:9 ~bit:0 () in
  let p = { Net.src = 0; Net.dst = 1; Net.payload = [| b8 7 |] } in
  Alcotest.(check bool) "oversized byte leaves short packet intact" true
    (Bv.equal (f p).Net.payload.(0) (b8 7))

let test_net_inject_arity_validation () =
  let open Builder in
  let sink =
    prog "sink" ~globals:[ ("last", 8) ] ~buffers:[ ("in", 2) ]
      [ receive "in"; set "last" (load "in" (i8 0)); mark_accept "got" ]
  in
  let net = Net.create () in
  let node = Node.create sink in
  Net.add_node net ~addr:1 node;
  Alcotest.(check (option int)) "receive size scanned" (Some 2)
    (Node.receive_size node);
  Alcotest.check_raises "one byte into a two-byte receiver"
    (Invalid_argument "Net.inject: payload is 1 bytes but node 1 receives 2")
    (fun () -> Net.inject net ~dst:1 [| b8 1 |]);
  Alcotest.check_raises "three bytes into a two-byte receiver"
    (Invalid_argument "Net.inject: payload is 3 bytes but node 1 receives 2")
    (fun () -> Net.inject net ~dst:1 [| b8 1; b8 2; b8 3 |]);
  (* the exact size goes through and is delivered *)
  Net.inject net ~dst:1 [| b8 5; b8 6 |];
  Alcotest.(check int) "valid payload delivered" 1 (Net.run_to_quiescence net);
  (* unroutable destinations are not validated (the queue accepts them and
     step drops them, as before) *)
  Net.inject net ~dst:99 [| b8 1 |];
  Alcotest.(check int) "unroutable packet still just dropped" 0
    (Net.run_to_quiescence net)

(* --- FSP deployment: the wildcard bug (§6.3) ---------------------------------------- *)

let test_wildcard_collateral_damage () =
  let t = Fsp_deploy.create ~files:[ "f1"; "f2"; "bank"; "f*" ] () in
  let r = Fsp_deploy.exec t ~command:(Fsp_deploy.command_named "del") ~arg:"f*" in
  (* the client glob-expands: the deletion hits every f-prefixed file *)
  Alcotest.(check (list string)) "expansion" [ "f*"; "f1"; "f2" ]
    (List.sort compare r.Fsp_deploy.expanded);
  Alcotest.(check (list string)) "only bank survives" [ "bank" ]
    (Fsp_deploy.list_files t);
  Alcotest.(check bool) "no client error" true (r.Fsp_deploy.client_error = None)

let test_wildcard_cannot_be_escaped () =
  let t = Fsp_deploy.create ~files:[ "f1"; "f*" ] () in
  (* no-glob-match: the client refuses (there is no escape syntax) *)
  let r = Fsp_deploy.exec t ~command:(Fsp_deploy.command_named "del") ~arg:"z*" in
  Alcotest.(check bool) "no match -> client error" true
    (r.Fsp_deploy.client_error <> None);
  Alcotest.(check (list string)) "nothing deleted" [ "f*"; "f1" ]
    (Fsp_deploy.list_files t)

let test_wildcard_trojan_deletes_surgically () =
  let t = Fsp_deploy.create ~files:[ "f1"; "f2"; "f*" ] () in
  (* craft the Trojan: a del message with a literal '*' — no correct client
     can send this *)
  (match Fsp_deploy.build_message (Fsp_deploy.command_named "del") "f*" with
  | Ok payload -> (
      (* note: the plain (non-globbing) DSL client does transmit it, which
         is exactly why the analysis needs the globbing-aware model *)
      match Fsp_deploy.deliver_raw t payload with
      | Fsp_deploy.Accepted { affected; _ } ->
          Alcotest.(check (list string)) "deleted exactly f*" [ "f*" ] affected
      | Fsp_deploy.Rejected -> Alcotest.fail "server rejected the trojan")
  | Error e -> Alcotest.fail e);
  Alcotest.(check (list string)) "others intact" [ "f1"; "f2" ]
    (Fsp_deploy.list_files t)

let test_bit_flip_creates_wildcard_file () =
  (* end to end: client sends put "fj"; a bit flip in flight turns it into
     put "f*"; the server accepts and creates the trap *)
  let t = Fsp_deploy.create () in
  match Fsp_deploy.build_message (Fsp_deploy.command_named "put") "fj" with
  | Error e -> Alcotest.fail e
  | Ok payload ->
      let flipped = Array.copy payload in
      let f = Layout.field Fsp_model.layout "buf" in
      flipped.(f.Layout.offset + 1) <-
        Bv.logxor flipped.(f.Layout.offset + 1) (b8 0x40);
      (match Fsp_deploy.deliver_raw t flipped with
      | Fsp_deploy.Accepted { path; _ } ->
          Alcotest.(check string) "created the trap" "f*" path
      | Fsp_deploy.Rejected -> Alcotest.fail "server rejected");
      Alcotest.(check (list string)) "file exists" [ "f*" ]
        (Fsp_deploy.list_files t)

let test_extra_payload_smuggling () =
  (* mismatched-length Trojan: reported length 4, true length 1, two bytes
     of covert payload after the early terminator *)
  let payload =
    let bytes = Array.make Fsp_model.message_size (Bv.zero 8) in
    let set_field name value =
      let f = Layout.field Fsp_model.layout name in
      let rec go i v =
        if i >= 0 then begin
          bytes.(f.Layout.offset + i) <- Bv.of_int ~width:8 (v land 0xFF);
          go (i - 1) (v lsr 8)
        end
      in
      go (f.Layout.size - 1) value
    in
    set_field "cmd" 0x11;
    set_field "sum" Fsp_model.sum_const;
    set_field "bb_key" Fsp_model.key_const;
    set_field "bb_seq" Fsp_model.seq_const;
    set_field "bb_pos" Fsp_model.pos_const;
    set_field "bb_len" 4;
    let f = Layout.field Fsp_model.layout "buf" in
    bytes.(f.Layout.offset) <- b8 (Char.code 'a');
    bytes.(f.Layout.offset + 1) <- b8 0;
    bytes.(f.Layout.offset + 2) <- b8 (Char.code 'X');
    bytes.(f.Layout.offset + 3) <- b8 (Char.code 'Y');
    bytes.(f.Layout.offset + 4) <- b8 0;
    bytes
  in
  let t = Fsp_deploy.create () in
  (match Fsp_deploy.deliver_raw t payload with
  | Fsp_deploy.Accepted { path; _ } ->
      Alcotest.(check string) "effective path is the C string" "a" path
  | Fsp_deploy.Rejected -> Alcotest.fail "server rejected");
  Alcotest.(check string) "covert bytes rode along" "5859"
    (Fsp_deploy.extra_payload payload)

(* --- PBFT deployment: the MAC attack ------------------------------------------------ *)

let test_pbft_mac_attack_slowdown () =
  let clean = Pbft_deploy.run_workload ~requests:200 () in
  let attacked = Pbft_deploy.run_workload ~malicious_every:4 ~requests:200 () in
  Alcotest.(check int) "clean commits all" 200 clean.Pbft_deploy.committed;
  Alcotest.(check int) "no recoveries when clean" 0 clean.Pbft_deploy.recoveries;
  Alcotest.(check int) "recoveries under attack" 50
    attacked.Pbft_deploy.recoveries;
  Alcotest.(check bool) "throughput collapses" true
    (attacked.Pbft_deploy.throughput < clean.Pbft_deploy.throughput /. 2.)

let test_pbft_corrupt_mac_costs_recovery () =
  let t = Pbft_deploy.create () in
  match Pbft_deploy.build_request ~corrupt_mac:true ~cid:0 ~rid:1 ~command:7 () with
  | Some payload ->
      let r = Pbft_deploy.submit t payload in
      Alcotest.(check bool) "recovery triggered" true r.Pbft_deploy.recovery;
      Alcotest.(check int) "recovery cost" Pbft_deploy.recovery_cost
        r.Pbft_deploy.cost
  | None -> Alcotest.fail "client refused"

(* --- fault injection of analysis witnesses ------------------------------------------- *)

let test_inject_confirms_fsp_witnesses () =
  let config =
    {
      Search.default_config with
      Search.mask = Some Fsp_model.analysis_mask;
      Search.witnesses_per_path = 4;
      Search.distinct_by = Some Fsp_model.block_class;
    }
  in
  (* two clients suffice for a quick end-to-end check *)
  let clients =
    [
      Fsp_model.client (List.nth Fsp_model.commands 0);
      Fsp_model.client (List.nth Fsp_model.commands 1);
    ]
  in
  let analysis =
    Achilles.analyze ~search_config:config ~layout:Fsp_model.layout ~clients
      ~server:Fsp_model.server ()
  in
  let trojans = Achilles.trojans analysis in
  Alcotest.(check bool) "witnesses found" true (trojans <> []);
  let confirmation = Inject.confirm ~server:Fsp_model.server trojans in
  Alcotest.(check int) "all witnesses accepted live" 0
    confirmation.Inject.rejected;
  let client_codes = [ 0x10; 0x11 ] in
  let real, fake =
    Inject.check_against_oracle
      ~is_trojan:(fun m ->
        match Fsp_model.classify m with
        | Fsp_model.Trojan _ -> true
        (* with only two clients deployed, other commands' messages are
           Trojan too: nobody in this system generates them *)
        | Fsp_model.Valid cls ->
            not (List.mem cls.Fsp_model.class_cmd client_codes)
        | Fsp_model.Rejected -> false)
      trojans
  in
  Alcotest.(check int) "no false positives" 0 (List.length fake);
  Alcotest.(check bool) "confirmed trojans" true (real <> [])

let () =
  let qsuite name tests =
    (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)
  in
  Alcotest.run "runtime"
    [
      ( "fsp-fs",
        [
          Alcotest.test_case "glob matching" `Quick test_glob_match;
          Alcotest.test_case "operations" `Quick test_fs_operations;
        ] );
      qsuite "fsp-fs-properties" [ qcheck_glob_literal_patterns ];
      ( "node-net",
        [
          Alcotest.test_case "state persists" `Quick test_node_state_persists;
          Alcotest.test_case "routing and replies" `Quick
            test_net_routing_and_replies;
          Alcotest.test_case "bit flip fault" `Quick test_net_bit_flip_fault;
          Alcotest.test_case "fault index validation" `Quick
            test_net_fault_index_validation;
          Alcotest.test_case "inject arity validation" `Quick
            test_net_inject_arity_validation;
        ] );
      ( "fsp-impact",
        [
          Alcotest.test_case "collateral damage" `Quick
            test_wildcard_collateral_damage;
          Alcotest.test_case "no escape" `Quick test_wildcard_cannot_be_escaped;
          Alcotest.test_case "surgical trojan delete" `Quick
            test_wildcard_trojan_deletes_surgically;
          Alcotest.test_case "bit flip creates trap" `Quick
            test_bit_flip_creates_wildcard_file;
          Alcotest.test_case "extra payload" `Quick test_extra_payload_smuggling;
        ] );
      ( "pbft-impact",
        [
          Alcotest.test_case "MAC attack slowdown" `Quick
            test_pbft_mac_attack_slowdown;
          Alcotest.test_case "recovery cost" `Quick
            test_pbft_corrupt_mac_costs_recovery;
        ] );
      ( "inject",
        [
          Alcotest.test_case "confirm witnesses" `Slow
            test_inject_confirms_fsp_witnesses;
        ] );
    ]
