(* The multi-process search: lease-table fencing, heartbeat expiry and
   reassignment, the coordinator/worker protocol end to end (on
   in-process domain workers), checkpoint corruption guards, and digest
   equality against undisturbed single-process runs under worker kills,
   duplicate-lease races, coordinator restart, and reassignment-budget
   exhaustion. *)

open Achilles_smt
open Achilles_symvm
open Achilles_core
module Dist = Achilles_dist
module Table = Dist.Lease.Table

(* --- the lease table: fencing, expiry, budget -------------------------------- *)

let test_table_fencing_race () =
  let t = Table.create ~shards:4 ~budget:5 in
  (* worker 0 leases shard 0, goes quiet, the lease expires, worker 1 is
     granted the same shard: both finish, only the current token merges *)
  let s0, tok0 =
    match Table.grant t ~now:0. ~ttl:1.0 ~worker:0 with
    | Some g -> g
    | None -> Alcotest.fail "expected a grant"
  in
  Alcotest.(check int) "first shard" 0 s0;
  let expired = Table.expire t ~now:2.0 in
  Alcotest.(check int) "one lease expired" 1 (List.length expired);
  let s1, tok1 =
    match Table.grant t ~now:2.0 ~ttl:1.0 ~worker:1 with
    | Some g -> g
    | None -> Alcotest.fail "expected a re-grant"
  in
  Alcotest.(check int) "same shard re-granted" 0 s1;
  Alcotest.(check bool) "fencing token strictly larger" true (tok1 > tok0);
  (* the stale worker finishes first: rejected *)
  Alcotest.(check bool) "stale completion rejected" true
    (Table.complete t ~shard:0 ~token:tok0 = `Stale);
  Alcotest.(check bool) "current completion accepted" true
    (Table.complete t ~shard:0 ~token:tok1 = `Accepted);
  (* duplicate and late messages can never merge twice *)
  Alcotest.(check bool) "duplicate completion rejected" true
    (Table.complete t ~shard:0 ~token:tok1 = `Stale);
  Alcotest.(check bool) "stale-after-done rejected" true
    (Table.complete t ~shard:0 ~token:tok0 = `Stale)

let test_table_heartbeat_renewal () =
  let t = Table.create ~shards:1 ~budget:3 in
  let shard, token =
    match Table.grant t ~now:0. ~ttl:1.0 ~worker:7 with
    | Some g -> g
    | None -> Alcotest.fail "expected a grant"
  in
  Alcotest.(check bool) "renewal accepted" true
    (Table.renew t ~now:0.9 ~ttl:1.0 ~worker:7 ~shard ~token = `Renewed);
  (* renewed at 0.9 with ttl 1.0: alive until 1.9 *)
  Alcotest.(check int) "not expired yet" 0
    (List.length (Table.expire t ~now:1.5));
  Alcotest.(check int) "expired once heartbeats stop" 1
    (List.length (Table.expire t ~now:2.0));
  Alcotest.(check bool) "stale renewal after expiry" true
    (Table.renew t ~now:2.0 ~ttl:1.0 ~worker:7 ~shard ~token = `Stale);
  (* wrong worker with the right token is also stale *)
  let shard, token =
    match Table.grant t ~now:2.0 ~ttl:1.0 ~worker:7 with
    | Some g -> g
    | None -> Alcotest.fail "expected a re-grant"
  in
  Alcotest.(check bool) "renewal from the wrong worker rejected" true
    (Table.renew t ~now:2.1 ~ttl:1.0 ~worker:8 ~shard ~token = `Stale)

let test_table_budget_exhaustion () =
  let t = Table.create ~shards:2 ~budget:2 in
  (* burn shard 0's two assignments *)
  for _ = 1 to 2 do
    match Table.grant t ~now:0. ~ttl:1.0 ~worker:0 with
    | Some (0, token) -> (
        match Table.fail t ~shard:0 ~token with
        | `Reassignable | `Exhausted -> ()
        | `Stale -> Alcotest.fail "live lease reported stale")
    | _ -> Alcotest.fail "expected shard 0"
  done;
  Alcotest.(check bool) "shard 0 degraded to uncovered" true
    (Table.state t 0 = Table.Uncovered);
  (* the next grant skips it and serves shard 1 *)
  (match Table.grant t ~now:0. ~ttl:1.0 ~worker:1 with
  | Some (1, token) ->
      Alcotest.(check bool) "shard 1 completes" true
        (Table.complete t ~shard:1 ~token = `Accepted)
  | _ -> Alcotest.fail "expected shard 1");
  Alcotest.(check (list int)) "uncovered reported, never dropped" [ 0 ]
    (Table.uncovered t);
  Alcotest.(check bool) "settled: done + uncovered" true (Table.settled t);
  Alcotest.(check int) "reassignment accounting" 1 (Table.reassignments t)

let test_table_release_worker () =
  let t = Table.create ~shards:4 ~budget:3 in
  ignore (Table.grant t ~now:0. ~ttl:5.0 ~worker:0);
  ignore (Table.grant t ~now:0. ~ttl:5.0 ~worker:1);
  ignore (Table.grant t ~now:0. ~ttl:5.0 ~worker:0);
  let released = Table.release_worker t ~worker:0 in
  Alcotest.(check int) "both of worker 0's leases released" 2
    (List.length released);
  Alcotest.(check int) "worker 1 untouched" 1 (Table.leased_count t);
  Alcotest.(check int) "released shards pending again" 3 (Table.pending_count t)

(* Random op storms: whatever the interleaving of grants, completions with
   arbitrary tokens, failures, and expiries, (a) a shard merges at most
   once, ever; (b) granted fencing tokens strictly increase per shard;
   (c) shard states only move forward into Done/Uncovered, never out. *)
let qcheck_table_invariants =
  QCheck2.Test.make ~name:"lease table invariants under random op storms"
    ~count:300
    QCheck2.Gen.(
      list_size (int_range 1 60)
        (tup3 (int_range 0 3) (int_range 0 3) (int_range 0 9)))
    (fun ops ->
      let shards = 3 in
      let t = Table.create ~shards ~budget:3 in
      let accepted = Array.make shards 0 in
      let last_granted = Array.make shards 0 in
      let terminal = Array.make shards false in
      let now = ref 0. in
      List.for_all
        (fun (op, shard, token) ->
          now := !now +. 0.05;
          let ok =
            match op with
            | 0 -> (
                match Table.grant t ~now:!now ~ttl:0.3 ~worker:token with
                | Some (s, tok) ->
                    let fresh = tok > last_granted.(s) in
                    last_granted.(s) <- tok;
                    fresh && not terminal.(s)
                | None -> true)
            | 1 -> (
                match Table.complete t ~shard ~token with
                | `Accepted ->
                    accepted.(shard) <- accepted.(shard) + 1;
                    accepted.(shard) <= 1
                | `Stale -> true)
            | 2 -> (
                match Table.fail t ~shard ~token with
                | `Reassignable | `Exhausted | `Stale -> true)
            | _ ->
                now := !now +. 0.5;
                ignore (Table.expire t ~now:!now);
                true
          in
          for s = 0 to shards - 1 do
            match Table.state t s with
            | Table.Done _ | Table.Uncovered -> terminal.(s) <- true
            | _ -> assert (not terminal.(s))
            (* forward-only: a terminal shard never reopens *)
          done;
          ok)
        ops)

(* --- generated client/server pairs (same shape as the robustness suite) ------ *)

let message_size = 3
let layout = Layout.make ~name:"dist" [ ("tag", 1); ("a", 1); ("b", 1) ]

type tree =
  | Leaf of bool
  | Node of { field : int; op : int; konst : int; t : tree; f : tree }

type field_spec = Fconst of int | Fbounded of int

let tree_gen =
  QCheck2.Gen.(
    sized_size (int_range 1 3) @@ fix (fun self depth ->
        let leaf = map (fun b -> Leaf b) bool in
        if depth = 0 then leaf
        else
          frequency
            [
              (1, leaf);
              ( 3,
                let* field = int_range 0 (message_size - 1) in
                let* op = int_range 0 3 in
                let* konst = int_range 0 7 in
                let* t = self (depth - 1) in
                let* f = self (depth - 1) in
                return (Node { field; op; konst; t; f }) );
            ]))

let client_gen =
  QCheck2.Gen.(
    list_size (int_range 1 2)
      (list_repeat message_size
         (oneof
            [
              map (fun c -> Fconst c) (int_range 0 7);
              map (fun hi -> Fbounded hi) (int_range 0 7);
            ])))

let case_gen = QCheck2.Gen.pair tree_gen client_gen

let server_of_tree tree =
  let open Builder in
  let labels = ref 0 in
  let next () =
    incr labels;
    string_of_int !labels
  in
  let rec block = function
    | Leaf true -> [ mark_accept ("ok" ^ next ()) ]
    | Leaf false -> [ mark_reject ("no" ^ next ()) ]
    | Node { field; op; konst; t; f } ->
        let byte = load "msg" (i8 field) in
        let cond =
          match op with
          | 0 -> byte =: i8 konst
          | 1 -> byte <>: i8 konst
          | 2 -> byte <: i8 konst
          | _ -> byte >: i8 konst
        in
        [ if_ cond (block t) (block f) ]
  in
  prog "dist-server"
    ~buffers:[ ("msg", message_size) ]
    (receive "msg" :: block tree)

let client_of_spec idx spec =
  let open Builder in
  let body =
    List.concat
      (List.mapi
         (fun i fs ->
           match fs with
           | Fconst c -> [ store "msg" (i8 i) (i8 c) ]
           | Fbounded hi ->
               let name = Printf.sprintf "din%d_%d" idx i in
               [
                 read_input name ~width:8;
                 when_ (v name >: i8 hi) [ halt ];
                 store "msg" (i8 i) (v name);
               ])
         spec)
    @ [ send (i8 0) "msg" ]
  in
  prog
    (Printf.sprintf "dist-client%d" idx)
    ~buffers:[ ("msg", message_size) ]
    body

let extract_case (tree, client_specs) =
  let server = server_of_tree tree in
  let clients = List.mapi client_of_spec client_specs in
  Solver.reset_all_for_tests ();
  Term.reset_fresh_counter ();
  let client, _ = Client_extract.extract ~layout clients in
  (client, server, Term.fresh_counter_value ())

let run_case ?(config = Search.default_config) ~base client server =
  Solver.reset_all_for_tests ();
  Term.set_fresh_counter base;
  Search.run ~config ~client ~server ()

let fixed_case =
  ( Node
      {
        field = 0;
        op = 2;
        konst = 4;
        t = Node { field = 1; op = 0; konst = 2; t = Leaf true; f = Leaf false };
        f = Leaf true;
      },
    [ [ Fbounded 5; Fconst 2; Fbounded 3 ]; [ Fconst 1; Fbounded 6; Fconst 0 ] ]
  )

(* --- workdir plumbing --------------------------------------------------------- *)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let fresh_workdir name =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d" name (Unix.getpid ()))
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  dir

(* One distributed run on in-process domain workers: the full protocol
   (mailboxes, leases, fencing tokens, token-suffixed checkpoints), with
   process isolation simulated by Worker.Killed at poll granularity. *)
let dist_run ?(workers = 3) ?(fault_rate = 0.) ?(fault_seed = 1)
    ?(heartbeat = 0.002) ?(ttl = 1.0) ?(budget = 50) ?(max_respawns = 500)
    ?(cancel = fun () -> false) ?(chaos = None) ~workdir ~base client server =
  Solver.reset_all_for_tests ();
  Term.set_fresh_counter base;
  let config = { Search.default_config with Search.domains = 4; Search.chaos = chaos } in
  let job = Dist.Worker.job_of ~config ~client ~server () in
  let params =
    {
      Dist.Worker.heartbeat_interval = heartbeat;
      snapshot_interval = 0.01;
      poll_sleep = 0.002;
      orphan_timeout = 30.0;
      fault_rate;
      fault_seed;
    }
  in
  let ccfg =
    {
      Dist.Coordinator.c_workers = workers;
      Dist.Coordinator.c_lease_ttl = ttl;
      Dist.Coordinator.c_reassign_budget = budget;
      Dist.Coordinator.c_max_respawns = max_respawns;
      Dist.Coordinator.c_backoff = (fun _ -> 0.003);
      Dist.Coordinator.c_drain_grace = 10.0;
      Dist.Coordinator.c_tick = 0.002;
      Dist.Coordinator.c_cancel = cancel;
      Dist.Coordinator.c_status_interval = 0.05;
    }
  in
  let spawn = Dist.Coordinator.domain_spawner ~workdir ~job ~params () in
  Dist.Coordinator.run ~config:ccfg ~workdir ~job ~spawn ()

(* --- end-to-end digest equality ---------------------------------------------- *)

let test_dist_matches_single_process () =
  let client, server, base = extract_case fixed_case in
  let clean = run_case ~base client server in
  let workdir = fresh_workdir "achilles-dist-basic" in
  let report = dist_run ~workdir ~base client server in
  rm_rf workdir;
  Alcotest.(check bool) "coverage complete" true
    (Search.coverage_complete report.Search.coverage);
  Alcotest.(check string) "digest identical to single-process"
    (Report.report_digest clean)
    (Report.report_digest report)

let qcheck_dist_kill_at_any_point =
  QCheck2.Test.make
    ~name:"worker kills at any poll: digest identical to the no-fault run"
    ~count:6
    QCheck2.Gen.(pair case_gen (int_range 0 1000))
    (fun (case, seed) ->
      let client, server, base = extract_case case in
      let clean = run_case ~base client server in
      if not (Search.coverage_complete clean.Search.coverage) then false
      else begin
        let workdir = fresh_workdir "achilles-dist-kill" in
        let report =
          (* heartbeat every poll makes every branch constraint a
             potential death site; the generous budget means kills can
             never exhaust a shard, so the run must still complete *)
          dist_run ~fault_rate:0.2 ~fault_seed:seed ~heartbeat:0.0
            ~workdir ~base client server
        in
        rm_rf workdir;
        Search.coverage_complete report.Search.coverage
        && Report.report_digest report = Report.report_digest clean
      end)

(* Duplicate-lease race, end to end: a worker sleeps through its TTL
   mid-shard (as a wedged solver would), the shard is reassigned and
   completed by a rival, then the sleeper finishes late. Its stale
   checkpoint must not merge — the digest stays identical. *)
let test_dist_expiry_race_fencing () =
  let client, server, base = extract_case fixed_case in
  let clean = run_case ~base client server in
  let workdir = fresh_workdir "achilles-dist-race" in
  let slept = Atomic.make false in
  let chaos =
    Some
      (fun ~shard_index ~attempt:_ ->
        if shard_index = 2 && not (Atomic.exchange slept true) then
          Unix.sleepf 1.2 (* > ttl: lease expires mid-shard *))
  in
  let report = dist_run ~ttl:0.4 ~chaos ~workdir ~base client server in
  rm_rf workdir;
  Alcotest.(check bool) "coverage complete" true
    (Search.coverage_complete report.Search.coverage);
  Alcotest.(check bool) "the shard really was reassigned" true
    (report.Search.coverage.Search.shard_retry_attempts >= 1);
  Alcotest.(check string) "stale completion never merged: digest identical"
    (Report.report_digest clean)
    (Report.report_digest report)

exception Shard_crash

let test_dist_budget_exhaustion_uncovered () =
  let client, server, base = extract_case fixed_case in
  let clean = run_case ~base client server in
  let workdir = fresh_workdir "achilles-dist-budget" in
  let chaos =
    Some
      (fun ~shard_index ~attempt:_ ->
        if shard_index = 1 then raise Shard_crash)
  in
  let report = dist_run ~budget:2 ~chaos ~workdir ~base client server in
  rm_rf workdir;
  let c = report.Search.coverage in
  Alcotest.(check (list int)) "hopeless shard reported uncovered" [ 1 ]
    c.Search.failed_shards;
  Alcotest.(check int) "every other shard completed"
    (c.Search.total_shards - 1)
    c.Search.completed_shards;
  Alcotest.(check bool) "coverage honest: partial" false
    (Search.coverage_complete c);
  Alcotest.(check bool) "partial digest differs from complete" true
    (Report.report_digest clean <> Report.report_digest report)

let test_dist_coordinator_restart_resumes () =
  let client, server, base = extract_case fixed_case in
  let clean = run_case ~base client server in
  let digest = Report.report_digest clean in
  let workdir = fresh_workdir "achilles-dist-restart" in
  (* run 1: the coordinator is cancelled after a few shards start; the
     graceful drain lets in-flight shards flush their checkpoints *)
  let attempts = Atomic.make 0 in
  let chaos =
    Some (fun ~shard_index:_ ~attempt:_ -> Atomic.incr attempts)
  in
  let partial =
    dist_run ~chaos
      ~cancel:(fun () -> Atomic.get attempts >= 4)
      ~workdir ~base client server
  in
  let c = partial.Search.coverage in
  Alcotest.(check bool) "run 1 interrupted" true c.Search.interrupted;
  Alcotest.(check bool) "run 1 flushed some shards" true
    (c.Search.completed_shards >= 1);
  Alcotest.(check bool) "run 1 incomplete" true
    (c.Search.completed_shards < c.Search.total_shards);
  (* run 2: a fresh coordinator on the same workdir picks the completed
     shards up from disk and finishes the rest *)
  let resumed = dist_run ~workdir ~base client server in
  let c2 = resumed.Search.coverage in
  Alcotest.(check bool) "run 2 complete" true (Search.coverage_complete c2);
  Alcotest.(check int) "run 1's shards resumed, not re-explored"
    c.Search.completed_shards c2.Search.resumed_shards;
  Alcotest.(check string) "restart-resumed digest byte-identical" digest
    (Report.report_digest resumed);
  (* run 3: corrupt one checkpoint on disk; the restart treats it as
     missing, re-explores that shard, and still reproduces the digest *)
  let shards_dir = Dist.Lease.shards_dir workdir in
  let victim =
    Filename.concat shards_dir
      (List.find
         (fun f -> Filename.check_suffix f ".ckpt")
         (Array.to_list (Sys.readdir shards_dir)))
  in
  let oc = open_out_gen [ Open_wronly; Open_trunc ] 0o644 victim in
  output_string oc "torn";
  close_out oc;
  let healed = dist_run ~workdir ~base client server in
  rm_rf workdir;
  Alcotest.(check bool) "run 3 complete despite corrupt checkpoint" true
    (Search.coverage_complete healed.Search.coverage);
  Alcotest.(check string) "corrupt checkpoint recomputed: digest identical"
    digest
    (Report.report_digest healed)

(* --- checkpoint durability guards (satellites) -------------------------------- *)

let explore_one_shard ~config ~base client server =
  Solver.reset_all_for_tests ();
  Term.set_fresh_counter base;
  let bits = Search.Shards.split_bits config in
  let out, _ =
    Search.Shards.explore ~config ~different_from:None ~client ~server ~bits
      ~base ~started:(Unix.gettimeofday ()) 0
  in
  match out with
  | Some out -> (bits, out)
  | None -> Alcotest.fail "shard exploration was cancelled?"

let test_checkpoint_corruption_guards () =
  let client, server, base = extract_case fixed_case in
  let config = { Search.default_config with Search.domains = 4 } in
  let _, out = explore_one_shard ~config ~base client server in
  let dir = fresh_workdir "achilles-dist-ckpt" in
  let file = Filename.concat dir "shard-0000.ckpt" in
  let fingerprint = "test-fingerprint" in
  Search.Shards.write ~file ~fingerprint ~idx:0 out;
  Alcotest.(check bool) "pristine checkpoint loads" true
    (Search.Shards.load ~file ~fingerprint ~idx:0 <> None);
  Alcotest.(check bool) "wrong fingerprint rejected" true
    (Search.Shards.load ~file ~fingerprint:"other" ~idx:0 = None);
  Alcotest.(check bool) "wrong shard index rejected" true
    (Search.Shards.load ~file ~fingerprint ~idx:1 = None);
  let size = (Unix.stat file).Unix.st_size in
  (* truncation (a torn write surviving a crash) *)
  let fd = Unix.openfile file [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (size / 2);
  Unix.close fd;
  Alcotest.(check bool) "truncated checkpoint treated as missing" true
    (Search.Shards.load ~file ~fingerprint ~idx:0 = None);
  (* bad magic / junk header *)
  let oc = open_out_bin file in
  output_string oc "NOT-A-CHECKPOINT-AT-ALL";
  close_out oc;
  Alcotest.(check bool) "bad magic treated as missing" true
    (Search.Shards.load ~file ~fingerprint ~idx:0 = None);
  (* empty file *)
  let oc = open_out_bin file in
  close_out oc;
  Alcotest.(check bool) "empty file treated as missing" true
    (Search.Shards.load ~file ~fingerprint ~idx:0 = None);
  (* flipped payload byte: caught by the payload digest *)
  Search.Shards.write ~file ~fingerprint ~idx:0 out;
  let fd = Unix.openfile file [ Unix.O_WRONLY ] 0o644 in
  ignore (Unix.lseek fd (size - 3) Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "\xff") 0 1);
  Unix.close fd;
  Alcotest.(check bool) "corrupted payload treated as missing" true
    (Search.Shards.load ~file ~fingerprint ~idx:0 = None);
  rm_rf dir

let test_stale_tmp_cleanup () =
  let dir = fresh_workdir "achilles-dist-tmp" in
  let junk = Filename.concat dir "shard-0000.ckpt.tmp.12345.0" in
  let oc = open_out_bin junk in
  output_string oc "half-written by a killed worker";
  close_out oc;
  let keep = Filename.concat dir "shard-0001.ckpt" in
  let oc = open_out_bin keep in
  output_string oc "not actually loadable, but not tmp either";
  close_out oc;
  Search.Shards.prepare_dir dir;
  Alcotest.(check bool) "stale tmp swept" false (Sys.file_exists junk);
  Alcotest.(check bool) "real files kept" true (Sys.file_exists keep);
  rm_rf dir

(* --- telemetry: snapshot wire messages and status.json ------------------------- *)

module Obs = Achilles_obs.Obs

let test_snapshot_wire_roundtrip () =
  let zero () = Array.make Obs.histogram_buckets 0 in
  let histogram = zero () in
  histogram.(3) <- 5;
  let snap =
    {
      Obs.phases =
        List.map
          (fun p ->
            if p = Obs.Solver_query then
              (p, { Obs.spans = 5; seconds = 0.25; histogram })
            else (p, { Obs.spans = 0; seconds = 0.; histogram = zero () }))
          Obs.all_phases;
      counters = [ ("solver.queries", 5); ("dist.shards.completed", 2) ];
    }
  in
  let msg = Dist.Lease.Snapshot { wid = 3; shard = -1; snap } in
  (* the snapshot body is multi-line: the mailbox codec must carry it as
     one message *)
  (match Dist.Lease.parse_to_coordinator (Dist.Lease.encode_to_coordinator msg) with
  | Some (Dist.Lease.Snapshot { wid; shard; snap = snap' }) ->
      Alcotest.(check int) "wid carried" 3 wid;
      Alcotest.(check int) "idle shard carried" (-1) shard;
      let solver = List.assoc Obs.Solver_query snap'.Obs.phases in
      Alcotest.(check int) "spans carried" 5 solver.Obs.spans;
      Alcotest.(check (float 0.)) "seconds carried" 0.25 solver.Obs.seconds;
      Alcotest.(check int) "histogram carried" 5 solver.Obs.histogram.(3);
      Alcotest.(check (list (pair string int))) "counters carried"
        [ ("dist.shards.completed", 2); ("solver.queries", 5) ]
        snap'.Obs.counters
  | Some _ -> Alcotest.fail "snapshot message parsed as something else"
  | None -> Alcotest.fail "snapshot message did not parse");
  (* a held shard id round-trips too *)
  match
    Dist.Lease.parse_to_coordinator
      (Dist.Lease.encode_to_coordinator
         (Dist.Lease.Snapshot { wid = 0; shard = 6; snap = Obs.Snapshot.empty () }))
  with
  | Some (Dist.Lease.Snapshot { shard = 6; _ }) -> ()
  | _ -> Alcotest.fail "held-shard snapshot did not round-trip"

let test_status_file () =
  let client, server, base = extract_case fixed_case in
  let workdir = fresh_workdir "achilles-dist-status" in
  (* the coordinator stamps the process identity's run id into status.json *)
  let saved_run, saved_proc = Obs.identity () in
  Obs.set_identity ~run_id:(Obs.fresh_run_id ()) ~proc:"coordinator";
  let report = dist_run ~workdir ~base client server in
  Obs.set_identity ~run_id:saved_run ~proc:saved_proc;
  let st =
    match Dist.Status.load ~workdir with
    | Ok st -> st
    | Error e -> Alcotest.fail ("status.json unreadable: " ^ e)
  in
  rm_rf workdir;
  let c = report.Search.coverage in
  Alcotest.(check string) "final state is done" "done" st.Dist.Status.s_state;
  Alcotest.(check bool) "run id stamped" true (st.Dist.Status.s_run_id <> "");
  Alcotest.(check int) "shard total matches the report" c.Search.total_shards
    st.Dist.Status.s_shards_total;
  Alcotest.(check int) "every shard accounted for" st.Dist.Status.s_shards_total
    (st.Dist.Status.s_done + st.Dist.Status.s_leased
   + st.Dist.Status.s_pending + st.Dist.Status.s_uncovered);
  Alcotest.(check int) "all shards done" c.Search.completed_shards
    st.Dist.Status.s_done;
  Alcotest.(check int) "nothing leased after the run" 0
    st.Dist.Status.s_leased;
  Alcotest.(check bool) "timestamps ordered" true
    (st.Dist.Status.s_updated >= st.Dist.Status.s_started);
  Alcotest.(check bool) "workers tracked" true
    (st.Dist.Status.s_workers <> []);
  List.iter
    (fun (w : Dist.Status.worker) ->
      Alcotest.(check bool) "worker was seen" true (w.Dist.Status.w_last_seen > 0.))
    st.Dist.Status.s_workers;
  (* the JSON codec round-trips the loaded status *)
  (match Dist.Status.of_json (Dist.Status.to_json st) with
  | Error e -> Alcotest.fail ("status JSON round-trip failed: " ^ e)
  | Ok st' ->
      Alcotest.(check string) "round-trip run id" st.Dist.Status.s_run_id
        st'.Dist.Status.s_run_id;
      Alcotest.(check int) "round-trip done count" st.Dist.Status.s_done
        st'.Dist.Status.s_done;
      Alcotest.(check int) "round-trip worker count"
        (List.length st.Dist.Status.s_workers)
        (List.length st'.Dist.Status.s_workers));
  (* the human rendering works and mentions the final state *)
  let rendered =
    Format.asprintf "%a"
      (Dist.Status.pp ~now:(st.Dist.Status.s_updated +. 1.0))
      st
  in
  let contains needle =
    let nl = String.length needle and l = String.length rendered in
    let rec go i =
      i + nl <= l && (String.sub rendered i nl = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "rendering mentions the state" true (contains "done");
  Alcotest.(check bool) "rendering mentions shards" true (contains "shards")

(* --- real worker processes (the CLI round trip) -------------------------------- *)

let cli_binary () =
  let candidate =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      "../bin/achilles_cli.exe"
  in
  if Sys.file_exists candidate then Some candidate else None

let run_cli binary args =
  let out = Filename.temp_file "achilles-dist-cli" ".out" in
  let fd = Unix.openfile out [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
  let pid =
    Unix.create_process binary
      (Array.of_list (binary :: args))
      Unix.stdin fd Unix.stderr
  in
  Unix.close fd;
  let _, status = Unix.waitpid [] pid in
  let ic = open_in out in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  Sys.remove out;
  (status, content)

let digest_of_output content =
  List.find_map
    (fun line ->
      match String.index_opt line ':' with
      | Some i when String.sub line 0 i = "report digest" ->
          Some (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
      | _ -> None)
    (String.split_on_char '\n' content)

let test_real_worker_processes () =
  match cli_binary () with
  | None -> print_endline "achilles_cli.exe not built here; skipping"
  | Some binary ->
      let status1, out1 = run_cli binary [ "analyze"; "rw"; "--digest" ] in
      Alcotest.(check bool) "single-process run exits 0" true
        (status1 = Unix.WEXITED 0);
      let workdir = fresh_workdir "achilles-dist-proc" in
      let status2, out2 =
        run_cli binary
          [
            "analyze"; "rw"; "--digest"; "--workers"; "2"; "--work-dir";
            workdir; "--lease-ttl"; "5";
          ]
      in
      rm_rf workdir;
      Alcotest.(check bool) "distributed run exits 0" true
        (status2 = Unix.WEXITED 0);
      match (digest_of_output out1, digest_of_output out2) with
      | Some d1, Some d2 ->
          Alcotest.(check string)
            "real worker processes reproduce the single-process digest" d1 d2
      | _ -> Alcotest.fail "no report digest in CLI output"

(* Worker processes must flush their trace sinks on EVERY exit path —
   including the fault-injected hard kill (_exit) — so each
   trace-worker-NNN.eN.jsonl left in the workdir is whole-line JSONL that
   summarize and merge can read. Fault injection forces kills + respawns;
   the epoch suffix keeps each incarnation's stream separate. *)
let test_worker_traces_flushed () =
  match cli_binary () with
  | None -> print_endline "achilles_cli.exe not built here; skipping"
  | Some binary ->
      let workdir = fresh_workdir "achilles-dist-traces" in
      let coord_trace = Filename.concat workdir "coordinator.jsonl" in
      Unix.putenv "ACHILLES_WORKER_FAULT_RATE" "0.2";
      Unix.putenv "ACHILLES_WORKER_FAULT_SEED" "7";
      Unix.putenv "ACHILLES_HEARTBEAT_INTERVAL" "0.05";
      let status, _out =
        run_cli binary
          [
            "analyze"; "rw"; "--digest"; "--workers"; "2"; "--work-dir";
            workdir; "--lease-ttl"; "5"; "--reassign-budget"; "50";
            "--trace"; coord_trace;
          ]
      in
      Unix.putenv "ACHILLES_WORKER_FAULT_RATE" "0";
      Unix.putenv "ACHILLES_HEARTBEAT_INTERVAL" "0.5";
      (* kills may or may not exhaust the respawn budget depending on
         timing; either a complete (0) or partial (3) run must still leave
         clean traces behind *)
      Alcotest.(check bool) "run exited with a report" true
        (status = Unix.WEXITED 0 || status = Unix.WEXITED 3);
      let worker_traces =
        Sys.readdir workdir |> Array.to_list
        |> List.filter (fun f ->
               String.length f >= 12
               && String.sub f 0 12 = "trace-worker"
               && Filename.check_suffix f ".jsonl")
        |> List.map (Filename.concat workdir)
      in
      Alcotest.(check bool) "workers left trace files" true
        (worker_traces <> []);
      (* every stream — coordinator and each worker incarnation — is
         parseable to the last line and stamped with the same run id *)
      let run_id_of path =
        match Obs.Summary.load path with
        | Error e -> Alcotest.failf "%s unreadable: %s" path e
        | Ok s ->
            Alcotest.(check bool)
              (Printf.sprintf "%s has events" (Filename.basename path))
              true (s.Obs.Summary.events > 0);
            let ic = open_in path in
            let first = input_line ic in
            close_in ic;
            (match Obs.Json.parse_line first with
            | Ok fields -> (
                match
                  ( List.assoc_opt "name" fields,
                    List.assoc_opt "run_id" fields )
                with
                | Some (Obs.Json.Str "trace_start"), Some (Obs.Json.Str id) ->
                    id
                | _ ->
                    Alcotest.failf "%s: first line is not a trace_start stamp"
                      path)
            | Error e -> Alcotest.failf "%s: meta line unparseable: %s" path e)
      in
      let coord_id = run_id_of coord_trace in
      List.iter
        (fun path ->
          Alcotest.(check string)
            (Printf.sprintf "%s shares the run id" (Filename.basename path))
            coord_id (run_id_of path))
        worker_traces;
      (* the streams merge into one run_id-correlated timeline *)
      let merged = Filename.concat workdir "merged.json" in
      (match Obs.Chrome.merge ~srcs:(coord_trace :: worker_traces) ~dst:merged with
      | Error e -> Alcotest.fail ("trace merge failed: " ^ e)
      | Ok (n, run_id) ->
          Alcotest.(check int) "all streams merged"
            (1 + List.length worker_traces)
            n;
          Alcotest.(check (option string)) "merge agrees on the run id"
            (Some coord_id) run_id);
      (* `achilles status` renders the same run's final picture *)
      let st_status, st_out =
        run_cli binary [ "status"; "--work-dir"; workdir ]
      in
      Alcotest.(check bool) "status exits 0" true (st_status = Unix.WEXITED 0);
      let contains needle =
        let nl = String.length needle and l = String.length st_out in
        let rec go i =
          i + nl <= l && (String.sub st_out i nl = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "status names the run" true (contains coord_id);
      Alcotest.(check bool) "status shows shard progress" true
        (contains "shards");
      rm_rf workdir

let () =
  Alcotest.run "dist"
    [
      ( "lease-table",
        [
          Alcotest.test_case "fencing race" `Quick test_table_fencing_race;
          Alcotest.test_case "heartbeat renewal" `Quick
            test_table_heartbeat_renewal;
          Alcotest.test_case "budget exhaustion" `Quick
            test_table_budget_exhaustion;
          Alcotest.test_case "worker release" `Quick test_table_release_worker;
          QCheck_alcotest.to_alcotest ~verbose:false qcheck_table_invariants;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "digest matches single-process" `Quick
            test_dist_matches_single_process;
          Alcotest.test_case "expiry race: fencing wins" `Quick
            test_dist_expiry_race_fencing;
          Alcotest.test_case "budget exhaustion reported uncovered" `Quick
            test_dist_budget_exhaustion_uncovered;
          Alcotest.test_case "coordinator restart resumes" `Quick
            test_dist_coordinator_restart_resumes;
          QCheck_alcotest.to_alcotest ~verbose:false
            qcheck_dist_kill_at_any_point;
        ] );
      ( "checkpoint-durability",
        [
          Alcotest.test_case "corruption guards" `Quick
            test_checkpoint_corruption_guards;
          Alcotest.test_case "stale tmp cleanup" `Quick test_stale_tmp_cleanup;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "snapshot wire round-trip" `Quick
            test_snapshot_wire_roundtrip;
          Alcotest.test_case "status.json after a run" `Quick test_status_file;
        ] );
      ( "worker-processes",
        [
          Alcotest.test_case "CLI round trip" `Slow test_real_worker_processes;
          Alcotest.test_case "worker traces flushed on every exit path" `Slow
            test_worker_traces_flushed;
        ] );
    ]
