(* Tests for the comparison baselines: classic symbolic execution,
   black-box fuzzing, and the non-optimized post-hoc differencing. *)

open Achilles_smt
open Achilles_symvm
open Achilles_core
open Achilles_baselines
open Achilles_targets

(* --- classic symbolic execution -------------------------------------------------- *)

let fsp_classic = lazy (Classic_se.explore Fsp_model.server)

let test_classic_explores_accepting_paths () =
  let result = Lazy.force fsp_classic in
  (* one accepting path per command: valid and Trojan messages share it *)
  Alcotest.(check int) "8 accepting paths" 8
    (List.length result.Classic_se.accepting);
  Alcotest.(check bool) "some rejecting paths" true
    (result.Classic_se.rejecting_paths > 0)

(* reduced enumeration alphabet: NUL plus two printable representatives and
   the wildcard (documented in EXPERIMENTS.md) *)
let reduced_alphabet vars =
  let f = Layout.field Fsp_model.layout "buf" in
  List.init f.Layout.size (fun i ->
      let byte = Term.var vars.(f.Layout.offset + i) in
      Term.or_l
        (List.map
           (fun c -> Term.eq byte (Term.int ~width:8 c))
           [ 0; Char.code 'a'; Char.code 'b'; Char.code '*' ]))

let test_classic_enumeration_mixes_valid_and_trojan () =
  let result = Lazy.force fsp_classic in
  (* enumerate a handful of concrete accepted messages from one path *)
  let enumeration =
    Classic_se.enumerate ~restrict:reduced_alphabet ~max_per_path:40
      [ List.hd result.Classic_se.accepting ]
  in
  let messages = List.map fst enumeration.Classic_se.messages in
  Alcotest.(check int) "cap reached" 40 (List.length messages);
  (* every enumerated message really is accepted... *)
  List.iter
    (fun m ->
      Alcotest.(check bool) "oracle accepts" true
        (Fsp_model.classify m <> Fsp_model.Rejected))
    messages;
  (* ...and all bytes are distinct messages *)
  let distinct =
    List.sort_uniq compare
      (List.map (fun m -> Array.to_list (Array.map Bv.value m)) messages)
  in
  Alcotest.(check int) "no duplicates" 40 (List.length distinct)

let test_classic_class_enumeration () =
  let result = Lazy.force fsp_classic in
  (* with class blocking, one accepting path yields its 14 classes:
     4 valid (t = L) + 10 Trojan (t < L) *)
  let enumeration =
    Classic_se.enumerate ~distinct_by:Fsp_model.block_class ~max_per_path:20
      [ List.hd result.Classic_se.accepting ]
  in
  let classes =
    List.filter_map
      (fun (m, _) -> Fsp_model.class_of_witness m)
      enumeration.Classic_se.messages
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "14 classes on one path" 14 (List.length classes);
  Alcotest.(check bool) "enumeration exhausted below cap" true
    enumeration.Classic_se.exhausted

(* --- fuzzer ------------------------------------------------------------------------ *)

let test_fuzzer_uniform_finds_nothing () =
  (* uniform random 17-byte messages essentially never pass the header
     checks: the paper's 1.8e19 space argument in miniature *)
  let result =
    Fuzzer.fuzz ~server:Fsp_model.server
      ~gen:(Fuzzer.random_bytes ~size:Fsp_model.message_size)
      ~oracle:(fun m ->
        match Fsp_model.classify m with
        | Fsp_model.Trojan _ -> Fuzzer.Trojan
        | Fsp_model.Valid _ -> Fuzzer.Valid
        | Fsp_model.Rejected -> Fuzzer.Rejected)
      ~budget:(`Tests 3000) ()
  in
  Alcotest.(check int) "3000 tests ran" 3000 result.Fuzzer.tests;
  Alcotest.(check int) "nothing accepted" 0 result.Fuzzer.accepted;
  Alcotest.(check bool) "throughput measured" true
    (result.Fuzzer.throughput_per_min > 0.)

(* a generator that already knows the header constants and only fuzzes the
   fields the analysis looks at — the paper's "fair" fuzzer *)
let fair_gen rng =
  let msg = Array.make Fsp_model.message_size (Bv.zero 8) in
  let set_field name value =
    let f = Layout.field Fsp_model.layout name in
    let rec go i v =
      if i >= 0 then begin
        msg.(f.Layout.offset + i) <- Bv.of_int ~width:8 (v land 0xFF);
        go (i - 1) (v lsr 8)
      end
    in
    go (f.Layout.size - 1) value
  in
  set_field "sum" Fsp_model.sum_const;
  set_field "bb_key" Fsp_model.key_const;
  set_field "bb_seq" Fsp_model.seq_const;
  set_field "bb_pos" Fsp_model.pos_const;
  let cmd =
    (List.nth Fsp_model.commands (Random.State.int rng 8)).Fsp_model.code
  in
  set_field "cmd" cmd;
  set_field "bb_len" (1 + Random.State.int rng 4);
  let f = Layout.field Fsp_model.layout "buf" in
  for i = 0 to f.Layout.size - 1 do
    msg.(f.Layout.offset + i) <- Bv.of_int ~width:8 (Random.State.int rng 256)
  done;
  msg

let test_fuzzer_fair_still_inefficient () =
  let result =
    Fuzzer.fuzz ~server:Fsp_model.server ~gen:fair_gen
      ~oracle:(fun m ->
        match Fsp_model.classify m with
        | Fsp_model.Trojan _ -> Fuzzer.Trojan
        | Fsp_model.Valid _ -> Fuzzer.Valid
        | Fsp_model.Rejected -> Fuzzer.Rejected)
      ~classify:(fun m ->
        match Fsp_model.class_of_witness m with
        | Some cls -> Some (Format.asprintf "%a" Fsp_model.pp_class cls)
        | None -> None)
      ~budget:(`Tests 4000) ()
  in
  (* even knowing all header constants, random payload bytes rarely land a
     terminated printable path; acceptance stays rare and the distinct
     Trojan classes found stay far below 80 *)
  Alcotest.(check bool) "acceptance is rare" true
    (result.Fuzzer.accepted * 10 < result.Fuzzer.tests);
  Alcotest.(check bool) "nowhere near all classes" true
    (result.Fuzzer.distinct_trojan_classes < 80);
  Alcotest.(check bool) "counts consistent" true
    (result.Fuzzer.trojans <= result.Fuzzer.accepted
    && result.Fuzzer.accepted <= result.Fuzzer.tests)

let test_expected_finds_math () =
  (* the paper's numbers: 66e6 Trojans in 1.8e19 messages at 75 000
     tests/min for one hour *)
  let expected =
    Fuzzer.expected_finds ~trojan_messages:66e6 ~space:1.8e19
      ~tests:(75_000. *. 60.)
  in
  Alcotest.(check bool) "about 1e-5 per hour" true
    (expected > 1e-6 && expected < 1e-4)

(* --- post-hoc differencing ----------------------------------------------------------- *)

let test_posthoc_matches_achilles () =
  let mask = [ "address" ] in
  let optimized =
    Achilles.analyze
      ~search_config:{ Search.default_config with Search.mask = Some mask }
      ~layout:Rw_example.layout ~clients:[ Rw_example.client ]
      ~server:Rw_example.server ()
  in
  let posthoc =
    Posthoc.run ~mask ~layout:Rw_example.layout ~clients:[ Rw_example.client ]
      ~server:Rw_example.server ()
  in
  let labels analysis =
    List.map (fun (t : Search.trojan) -> t.Search.accept_label)
      (Achilles.trojans analysis)
    |> List.sort_uniq compare
  in
  Alcotest.(check (list string)) "same trojan paths" (labels optimized)
    (labels posthoc.Posthoc.analysis);
  List.iter
    (fun (t : Search.trojan) ->
      Alcotest.(check bool) "posthoc witness is real" true
        (Rw_example.is_trojan t.Search.witness))
    (Achilles.trojans posthoc.Posthoc.analysis)

let () =
  Alcotest.run "baselines"
    [
      ( "classic-se",
        [
          Alcotest.test_case "accepting paths" `Quick
            test_classic_explores_accepting_paths;
          Alcotest.test_case "mixed enumeration" `Slow
            test_classic_enumeration_mixes_valid_and_trojan;
          Alcotest.test_case "class enumeration" `Quick
            test_classic_class_enumeration;
        ] );
      ( "fuzzer",
        [
          Alcotest.test_case "uniform random" `Quick
            test_fuzzer_uniform_finds_nothing;
          Alcotest.test_case "fair fuzzer" `Slow test_fuzzer_fair_still_inefficient;
          Alcotest.test_case "expected-find arithmetic" `Quick
            test_expected_finds_math;
        ] );
      ( "posthoc",
        [ Alcotest.test_case "matches Achilles" `Slow test_posthoc_matches_achilles ] );
    ]
