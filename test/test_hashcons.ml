(* Tests for the hash-consed term core: semantic equivalence of the smart
   constructors against direct bit-level evaluation under random models,
   hash-consing invariants (equal <=> physical equality, id stability under
   replay, sharing-off agreement), and the registry-wide solver-cache
   clear/eviction behaviour the bounded per-domain cache introduced. *)

open Achilles_smt

(* Every property must leave sharing on for later tests, whatever happens. *)
let with_sharing mode f =
  Fun.protect ~finally:(fun () -> Term.set_sharing true) (fun () ->
      Term.set_sharing mode;
      f ())

(* --- term recipes ----------------------------------------------------------

   A recipe is a term built from explicit syntax over a small variable pool,
   paired with a denotation computed directly with [Bv] arithmetic — the
   ground-truth semantics the constructor-time rewrites must preserve. *)

type bv_recipe =
  | RVar of int (* index into the 8-bit variable pool *)
  | RConst of Bv.t
  | RBnot of bv_recipe
  | RBin of string * bv_recipe * bv_recipe (* same-width arithmetic/logic *)
  | RConcat of bv_recipe * bv_recipe
  | RExtract of int * int * bv_recipe (* hi, lo *)
  | RIte of bool_recipe * bv_recipe * bv_recipe

and bool_recipe =
  | RCmp of string * bv_recipe * bv_recipe
  | RNot of bool_recipe
  | RAnd of bool_recipe * bool_recipe
  | ROr of bool_recipe * bool_recipe

let n_vars = 3
let var_width = 8

let bin_ops =
  [
    ("add", Term.add, Bv.add);
    ("sub", Term.sub, Bv.sub);
    ("mul", Term.mul, Bv.mul);
    ("udiv", Term.udiv, Bv.udiv);
    ("urem", Term.urem, Bv.urem);
    ("band", Term.band, Bv.logand);
    ("bor", Term.bor, Bv.logor);
    ("bxor", Term.bxor, Bv.logxor);
    ("shl", Term.shl, Bv.shl);
    ("lshr", Term.lshr, Bv.lshr);
    ("ashr", Term.ashr, Bv.ashr);
  ]

let cmp_ops =
  [
    ("eq", Term.eq, Bv.equal);
    ("ult", Term.ult, Bv.ult);
    ("slt", Term.slt, Bv.slt);
    ("ule", Term.ule, Bv.ule);
    ("sle", Term.sle, Bv.sle);
  ]

(* Build through the smart constructors. *)
let rec build_bv vars = function
  | RVar i -> Term.var vars.(i)
  | RConst bv -> Term.const bv
  | RBnot r -> Term.bnot (build_bv vars r)
  | RBin (op, a, b) ->
      let f = match List.assoc_opt op (List.map (fun (n, f, _) -> (n, f)) bin_ops) with
        | Some f -> f
        | None -> invalid_arg op
      in
      f (build_bv vars a) (build_bv vars b)
  | RConcat (a, b) -> Term.concat (build_bv vars a) (build_bv vars b)
  | RExtract (hi, lo, r) -> Term.extract ~hi ~lo (build_bv vars r)
  | RIte (c, a, b) ->
      Term.ite (build_bool vars c) (build_bv vars a) (build_bv vars b)

and build_bool vars = function
  | RCmp (op, a, b) ->
      let f = match List.assoc_opt op (List.map (fun (n, f, _) -> (n, f)) cmp_ops) with
        | Some f -> f
        | None -> invalid_arg op
      in
      f (build_bv vars a) (build_bv vars b)
  | RNot r -> Term.not_ (build_bool vars r)
  | RAnd (a, b) -> Term.and_ (build_bool vars a) (build_bool vars b)
  | ROr (a, b) -> Term.or_ (build_bool vars a) (build_bool vars b)

(* Denote with plain Bv arithmetic — no term machinery involved. *)
let rec denote_bv values = function
  | RVar i -> values.(i)
  | RConst bv -> bv
  | RBnot r -> Bv.lognot (denote_bv values r)
  | RBin (op, a, b) ->
      let f = match List.assoc_opt op (List.map (fun (n, _, f) -> (n, f)) bin_ops) with
        | Some f -> f
        | None -> invalid_arg op
      in
      f (denote_bv values a) (denote_bv values b)
  | RConcat (a, b) -> Bv.concat (denote_bv values a) (denote_bv values b)
  | RExtract (hi, lo, r) -> Bv.extract ~hi ~lo (denote_bv values r)
  | RIte (c, a, b) ->
      if denote_bool values c then denote_bv values a else denote_bv values b

and denote_bool values = function
  | RCmp (op, a, b) ->
      let f = match List.assoc_opt op (List.map (fun (n, _, f) -> (n, f)) cmp_ops) with
        | Some f -> f
        | None -> invalid_arg op
      in
      f (denote_bv values a) (denote_bv values b)
  | RNot r -> not (denote_bool values r)
  | RAnd (a, b) -> denote_bool values a && denote_bool values b
  | ROr (a, b) -> denote_bool values a || denote_bool values b

(* --- generators ------------------------------------------------------------ *)

let gen_const width =
  QCheck2.Gen.map
    (fun v -> RConst (Bv.make ~width (Int64.of_int v)))
    QCheck2.Gen.(int_bound ((1 lsl min width 16) - 1))

(* A bv recipe of exactly [width] bits; only 8-bit recipes can use the
   variable pool, other widths bottom out in constants. *)
let rec gen_bv ~width n =
  let open QCheck2.Gen in
  if n <= 0 then
    if width = var_width then
      oneof [ map (fun i -> RVar i) (int_bound (n_vars - 1)); gen_const width ]
    else gen_const width
  else
    let sub = gen_bv ~width (n / 2) in
    let cases =
      [
        (if width = var_width then
           map (fun i -> RVar i) (int_bound (n_vars - 1))
         else gen_const width);
        gen_const width;
        map (fun r -> RBnot r) sub;
        map3
          (fun (op, _, _) a b -> RBin (op, a, b))
          (oneofl bin_ops) sub sub;
        (* split the width across a concat *)
        (if width >= 2 then
           int_range 1 (width - 1) >>= fun lw ->
           map2
             (fun a b -> RConcat (a, b))
             (gen_bv ~width:lw (n / 2))
             (gen_bv ~width:(width - lw) (n / 2))
         else gen_const width);
        (* extract [width] bits out of something wider *)
        ( int_range 0 4 >>= fun pad_lo ->
          int_range 0 4 >>= fun pad_hi ->
          let inner = pad_lo + width + pad_hi in
          map
            (fun r -> RExtract (pad_lo + width - 1, pad_lo, r))
            (gen_bv ~width:inner (n / 2)) );
        map3
          (fun c a b -> RIte (c, a, b))
          (gen_bool (n / 2)) sub sub;
      ]
    in
    oneof cases

and gen_bool n =
  let open QCheck2.Gen in
  if n <= 0 then
    map3
      (fun (op, _, _) a b -> RCmp (op, a, b))
      (oneofl cmp_ops)
      (gen_bv ~width:var_width 0)
      (gen_bv ~width:var_width 0)
  else
    let sub = gen_bool (n / 2) in
    oneof
      [
        map3
          (fun (op, _, _) a b -> RCmp (op, a, b))
          (oneofl cmp_ops)
          (gen_bv ~width:var_width (n / 2))
          (gen_bv ~width:var_width (n / 2));
        map (fun r -> RNot r) sub;
        map2 (fun a b -> RAnd (a, b)) sub sub;
        map2 (fun a b -> ROr (a, b)) sub sub;
      ]

let gen_values =
  QCheck2.Gen.array_size (QCheck2.Gen.return n_vars)
    (QCheck2.Gen.map
       (fun v -> Bv.make ~width:var_width (Int64.of_int v))
       QCheck2.Gen.(int_bound 255))

let make_vars () =
  Array.init n_vars (fun i ->
      Term.fresh_var ~name:(Printf.sprintf "hc%d" i) (Term.Bitvec var_width))

let model_of vars values =
  Array.to_list (Array.map2 (fun v bv -> (v, Model.Vbv bv)) vars values)
  |> Model.of_list

(* --- semantic equivalence -------------------------------------------------- *)

(* Constructor-time rewrites must be invisible to evaluation: a term built
   through the smart constructors evaluates to the recipe's direct Bv
   denotation, under both sharing modes. *)
let qcheck_rewrites_preserve_bv_semantics =
  QCheck2.Test.make ~name:"smart constructors preserve bitvector semantics"
    ~count:500
    QCheck2.Gen.(pair (gen_bv ~width:var_width 4) gen_values)
    (fun (recipe, values) ->
      let vars = make_vars () in
      let m = model_of vars values in
      let expected = denote_bv values recipe in
      List.for_all
        (fun mode ->
          with_sharing mode (fun () ->
              Model.eval_bv m (build_bv vars recipe) |> Bv.equal expected))
        [ true; false ])

let qcheck_rewrites_preserve_bool_semantics =
  QCheck2.Test.make ~name:"smart constructors preserve boolean semantics"
    ~count:500
    QCheck2.Gen.(pair (gen_bool 4) gen_values)
    (fun (recipe, values) ->
      let vars = make_vars () in
      let m = model_of vars values in
      let expected = denote_bool values recipe in
      List.for_all
        (fun mode ->
          with_sharing mode (fun () ->
              Model.eval_bool m (build_bool vars recipe) = expected))
        [ true; false ])

(* Sharing must be a pure representation choice: the same recipe renders to
   the same concrete syntax whether or not terms are interned. *)
let qcheck_sharing_modes_agree =
  QCheck2.Test.make ~name:"sharing on/off build identical terms" ~count:300
    (gen_bool 4)
    (fun recipe ->
      let vars = make_vars () in
      let on = with_sharing true (fun () -> build_bool vars recipe) in
      let off = with_sharing false (fun () -> build_bool vars recipe) in
      String.equal (Term.to_string on) (Term.to_string off))

(* --- hash-consing invariants ----------------------------------------------- *)

(* With sharing on, structural equality and physical equality coincide for
   terms built in the same domain. *)
let qcheck_equal_iff_physical =
  QCheck2.Test.make ~name:"equal a b <=> a == b under sharing" ~count:300
    QCheck2.Gen.(pair (gen_bool 4) (gen_bool 4))
    (fun (r1, r2) ->
      with_sharing true (fun () ->
          let vars = make_vars () in
          let a = build_bool vars r1 and b = build_bool vars r2 in
          let dup = build_bool vars r1 in
          (* a rebuilt copy of the same recipe is the same object *)
          a == dup
          (* and for arbitrary pairs the two equalities agree *)
          && Term.equal a b = (a == b)))

let qcheck_rebuild_is_identity =
  QCheck2.Test.make ~name:"rebuild is the identity on interned terms"
    ~count:300 (gen_bool 4)
    (fun recipe ->
      with_sharing true (fun () ->
          let vars = make_vars () in
          let t = build_bool vars recipe in
          Term.rebuild t == t))

(* Replaying a construction sequence from the same fresh-counter position
   reproduces the same variable ids and the same physical terms — the
   property the parallel search's shard replay depends on. *)
let test_replay_id_stability () =
  with_sharing true (fun () ->
      let base = Term.fresh_counter_value () in
      let build () =
        Term.set_fresh_counter base;
        let x = Term.var (Term.fresh_var ~name:"replay" (Term.Bitvec 8)) in
        let y = Term.var (Term.fresh_var ~name:"replay" (Term.Bitvec 8)) in
        [
          Term.eq (Term.add x y) (Term.int ~width:8 7);
          Term.ult x y;
          Term.and_ (Term.ult x y) (Term.not_ (Term.eq x y));
        ]
      in
      let first = build () in
      let second = build () in
      Alcotest.(check int)
        "same fresh-counter position"
        (base + 2)
        (Term.fresh_counter_value ());
      List.iter2
        (fun a b ->
          Alcotest.(check bool) "replayed term is the same object" true (a == b);
          Alcotest.(check int) "replayed tid is stable" a.Term.tid b.Term.tid)
        first second)

(* Terms created while sharing was off are re-interned by [rebuild]; the
   result is canonical (physically equal to a sharing-on build) and renders
   identically. *)
let test_rebuild_after_off_mode () =
  let vars = make_vars () in
  let recipe =
    RAnd
      ( RCmp ("ult", RVar 0, RBin ("add", RVar 1, RConst (Bv.of_int ~width:8 3))),
        RNot (RCmp ("eq", RVar 0, RVar 2)) )
  in
  let off = with_sharing false (fun () -> build_bool vars recipe) in
  with_sharing true (fun () ->
      let canonical = build_bool vars recipe in
      let rebuilt = Term.rebuild off in
      Alcotest.(check bool)
        "rebuild re-interns to the canonical object" true
        (rebuilt == canonical);
      Alcotest.(check string)
        "rendering unchanged" (Term.to_string off) (Term.to_string rebuilt))

(* var_ids is memoized by term id under sharing; the memo must be invisible. *)
let qcheck_var_ids_memo_transparent =
  QCheck2.Test.make ~name:"var_ids agrees across sharing modes" ~count:300
    (gen_bool 4)
    (fun recipe ->
      let vars = make_vars () in
      let on =
        with_sharing true (fun () -> Term.var_ids (build_bool vars recipe))
      in
      let off =
        with_sharing false (fun () -> Term.var_ids (build_bool vars recipe))
      in
      on = off)

(* --- bounded solver cache -------------------------------------------------- *)

let query_of_int i =
  let x = Term.var (Term.fresh_var ~name:"cache_probe" (Term.Bitvec 16)) in
  [ Term.eq x (Term.int ~width:16 i) ]

(* clear_cache must reach every domain's cache, not just the caller's: a
   query cached inside a worker domain must not survive a clear issued from
   the main domain. *)
let test_clear_cache_all_domains () =
  Solver.reset_all_for_tests ();
  let worker_entries =
    let domains =
      List.init 2 (fun d ->
          Domain.spawn (fun () ->
              (* distinct queries per domain so each populates its own cache *)
              for i = 0 to 4 do
                ignore (Solver.is_sat (query_of_int ((d * 100) + i)))
              done;
              (Solver.cache_stats ()).Solver.cache_entries))
    in
    List.map Domain.join domains
  in
  List.iter
    (fun entries ->
      Alcotest.(check bool) "worker cached its queries" true (entries > 0))
    worker_entries;
  ignore (Solver.is_sat (query_of_int 999));
  Alcotest.(check bool)
    "aggregate sees worker + main entries" true
    (Solver.aggregate_cache_entries () > List.fold_left ( + ) 0 worker_entries - 1);
  Solver.clear_cache ();
  Alcotest.(check int)
    "clear_cache empties every domain" 0
    (Solver.aggregate_cache_entries ());
  Solver.reset_all_for_tests ()

let test_cache_eviction_at_capacity () =
  Solver.reset_all_for_tests ();
  Fun.protect
    ~finally:(fun () ->
      Solver.set_cache_capacity 65536;
      Solver.reset_all_for_tests ())
    (fun () ->
      Solver.set_cache_capacity 3;
      (* a fixed pool: re-running queries.(i) must produce the same key *)
      let queries = Array.init 10 query_of_int in
      Array.iter (fun q -> ignore (Solver.is_sat q)) queries;
      let cs = Solver.cache_stats () in
      Alcotest.(check int) "entries bounded by the cap" 3 cs.Solver.cache_entries;
      Alcotest.(check int) "evictions counted" 7 cs.Solver.cache_eviction_count;
      Alcotest.(check int)
        "misses counted for every uncached query" 10 cs.Solver.cache_miss_count;
      Alcotest.(check int)
        "stats expose the evictions" 7
        (Solver.stats ()).Solver.cache_evictions;
      (* the most recent query survived FIFO eviction and hits *)
      let hits_before = (Solver.stats ()).Solver.cache_hits in
      ignore (Solver.is_sat queries.(9));
      Alcotest.(check int)
        "most recent query still cached" (hits_before + 1)
        (Solver.stats ()).Solver.cache_hits;
      (* the oldest was evicted: re-solving it is a miss that re-enters *)
      ignore (Solver.is_sat queries.(0));
      Alcotest.(check int)
        "evicted query re-solves without a hit" (hits_before + 1)
        (Solver.stats ()).Solver.cache_hits)

let test_cache_capacity_validation () =
  Alcotest.check_raises "non-positive capacity rejected"
    (Invalid_argument "Solver.set_cache_capacity")
    (fun () -> Solver.set_cache_capacity 0)

(* --- intern counters ------------------------------------------------------- *)

let test_intern_stats_move () =
  with_sharing true (fun () ->
      Solver.reset_all_for_tests ();
      let vars = make_vars () in
      let x = Term.var vars.(0) and y = Term.var vars.(1) in
      let _t1 = Term.add x y in
      let hits0, created0 = Term.intern_stats () in
      let _t2 = Term.add x y in
      let hits1, created1 = Term.intern_stats () in
      Alcotest.(check bool) "duplicate construction hits" true (hits1 > hits0);
      Alcotest.(check int) "duplicate construction allocates nothing" created0
        created1;
      Solver.reset_all_for_tests ())

let () =
  let qsuite name tests =
    (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)
  in
  Alcotest.run "hashcons"
    [
      qsuite "semantics"
        [
          qcheck_rewrites_preserve_bv_semantics;
          qcheck_rewrites_preserve_bool_semantics;
          qcheck_sharing_modes_agree;
        ];
      qsuite "invariants"
        [
          qcheck_equal_iff_physical;
          qcheck_rebuild_is_identity;
          qcheck_var_ids_memo_transparent;
        ];
      ( "replay",
        [
          Alcotest.test_case "id stability under replay" `Quick
            test_replay_id_stability;
          Alcotest.test_case "rebuild after off-mode" `Quick
            test_rebuild_after_off_mode;
        ] );
      ( "solver-cache",
        [
          Alcotest.test_case "clear_cache reaches all domains" `Quick
            test_clear_cache_all_domains;
          Alcotest.test_case "FIFO eviction at capacity" `Quick
            test_cache_eviction_at_capacity;
          Alcotest.test_case "capacity validation" `Quick
            test_cache_capacity_validation;
          Alcotest.test_case "intern counters" `Quick test_intern_stats_move;
        ] );
    ]
