(* Compiled Trojan filters, differentially verified against the solver.

   The headline property: for every bundled target, on random concrete
   messages (uniform bytes, witness mutations, and exact witnesses), the
   compiled filter's verdict equals the solver's decision of the same
   per-state Trojan queries the search reported — i.e. compilation
   (quantifier elimination included) changed nothing. Plus: every
   search-reported witness is flagged, serialization round-trips, every
   corruption is rejected rather than mis-answered, and the serve daemon
   speaks its protocol end to end (in-process and as a real subprocess). *)

open Achilles_smt
open Achilles_symvm
open Achilles_core
open Achilles_targets
module Filter = Achilles_filter.Filter
module Daemon = Achilles_filter.Daemon

(* --- the bundled targets, mirrored from the CLI ------------------------------ *)

type setup = {
  sname : string;
  layout : Layout.t;
  clients : Ast.program list;
  server : Ast.program;
  mask : string list option;
  interp : Interp.config;
  client_interp : Interp.config option;
}

let setups =
  [
    {
      sname = "fsp";
      layout = Fsp_model.layout;
      clients = Fsp_model.clients ();
      server = Fsp_model.server;
      mask = Some Fsp_model.analysis_mask;
      interp = Interp.default_config;
      client_interp = None;
    };
    {
      sname = "pbft";
      layout = Pbft_model.layout;
      clients = [ Pbft_model.client ];
      server = Pbft_model.replica;
      mask = Some Pbft_model.analysis_mask;
      interp =
        Local_state.over_approximate ~vars:[ ("last_rid", 16) ]
          Interp.default_config;
      client_interp = None;
    };
    {
      sname = "kv";
      layout = Kv_model.layout;
      clients = [ Kv_model.client ];
      server = Kv_model.server;
      mask = Some Kv_model.analysis_mask;
      interp =
        {
          Interp.default_config with
          Interp.auto_classify = Some Kv_model.auto_classifier;
        };
      client_interp = None;
    };
    {
      sname = "gossip";
      layout = Gossip_model.layout;
      clients = [ Gossip_model.reporter ];
      server = Gossip_model.aggregator ~hardened:false ();
      mask = Some Gossip_model.analysis_mask;
      interp = Interp.default_config;
      client_interp =
        Some
          (Local_state.concrete
             ~incoming:(List.init 2 (fun _ -> Gossip_model.failure_event))
             ~prefix:Gossip_model.reporter_prefix Interp.default_config);
    };
    {
      sname = "paxos";
      layout = Paxos_model.layout;
      clients = [ Paxos_model.proposer_concrete ~value:7 ];
      server = Paxos_model.acceptor;
      mask = Some [ "mtype"; "ballot"; "value" ];
      interp =
        Local_state.concrete ~prefix:(Paxos_model.phase1_prefix ~ballot:5)
          Interp.default_config;
      client_interp = None;
    };
  ]

let compiled =
  List.map
    (fun s ->
      ( s.sname,
        lazy
          (let config =
             {
               Search.default_config with
               Search.mask = s.mask;
               Search.witnesses_per_path = 4;
               Search.interp = s.interp;
             }
           in
           let analysis =
             Achilles.analyze ~search_config:config
               ?client_interp:s.client_interp ~layout:s.layout
               ~clients:s.clients ~server:s.server ()
           in
           let filter =
             Filter.compile ~target:s.sname ~layout:s.layout
               ~report:analysis.Achilles.report ()
           in
           (s, analysis.Achilles.report, filter)) ))
    setups

let force name = Lazy.force (List.assoc name compiled)

(* --- the solver-side oracle --------------------------------------------------- *)

(* Decide each state's Trojan query on concrete bytes the way the search
   itself would: conjuncts over message bytes evaluate concretely under a
   model; conjuncts with auxiliary variables get the bytes substituted in
   and the existential residue goes to the solver. First satisfied state
   wins, like the filter. *)
let oracle (report : Search.report) (bytes : int array) =
  let rec scan = function
    | [] -> Filter.Accept
    | ((sp : Predicate.server_path), query) :: rest -> (
        match query with
        | None -> scan rest
        | Some terms ->
            let byte_of = Hashtbl.create 32 in
            Array.iteri
              (fun i (v : Term.var) -> Hashtbl.replace byte_of v.Term.id i)
              sp.Predicate.msg_vars;
            let model =
              Model.of_list
                (Array.to_list
                   (Array.mapi
                      (fun i v ->
                        (v, Model.Vbv (Bv.of_int ~width:8 bytes.(i))))
                      sp.Predicate.msg_vars))
            in
            let pure, auxed =
              List.partition
                (fun t ->
                  List.for_all
                    (fun id -> Hashtbl.mem byte_of id)
                    (Term.var_ids t))
                terms
            in
            if not (List.for_all (Model.eval_bool model) pure) then scan rest
            else if auxed = [] then Filter.Trojan_suspect sp.Predicate.sp_state_id
            else
              let bind (v : Term.var) =
                match Hashtbl.find_opt byte_of v.Term.id with
                | Some i -> Some (Term.const (Bv.of_int ~width:8 bytes.(i)))
                | None -> None
              in
              let residue = List.map (Term.subst bind) auxed in
              (match Solver.check residue with
              | Solver.Sat _ -> Filter.Trojan_suspect sp.Predicate.sp_state_id
              | Solver.Unsat -> scan rest
              | Solver.Unknown ->
                  Alcotest.fail "oracle: solver returned Unknown unbudgeted"))
  in
  scan (Search.trojan_queries report)

let pp_verdict = function
  | Filter.Accept -> "accept"
  | Filter.Trojan_suspect id -> Printf.sprintf "trojan-suspect %d" id
  | Filter.Unknown_state -> "unknown-state"

(* --- differential property ---------------------------------------------------- *)

let witness_bytes (t : Search.trojan) =
  Array.map (fun b -> Bv.to_int b) t.Search.witness

(* Uniform bytes, mutated witnesses (1-3 flipped positions), and the
   witnesses themselves: the mutation cases keep most constraints satisfied,
   which is what drives messages deep into the per-state queries. *)
let message_gen size witnesses =
  let open QCheck2.Gen in
  let uniform = array_size (return size) (int_range 0 255) in
  match witnesses with
  | [] -> uniform
  | ws ->
      let pick_witness = map Array.copy (oneofl ws) in
      let mutated =
        pick_witness >>= fun base ->
        int_range 1 3 >>= fun flips ->
        list_size (return flips) (pair (int_range 0 (size - 1)) (int_range 0 255))
        >>= fun edits ->
        List.iter (fun (i, v) -> base.(i) <- v) edits;
        return base
      in
      frequency [ (2, uniform); (3, mutated); (1, pick_witness) ]

let differential_test name =
  QCheck2.Test.make
    ~name:(Printf.sprintf "%s: filter verdict == solver verdict" name)
    ~count:10_000
    (QCheck2.Gen.delay (fun () ->
         let s, report, _ = force name in
         ignore s;
         let witnesses =
           List.filter_map
             (fun (t : Search.trojan) ->
               if t.Search.confirmed then Some (witness_bytes t) else None)
             report.Search.trojans
         in
         message_gen (Layout.total_size (List.find (fun s -> s.sname = name) setups).layout) witnesses))
    (fun bytes ->
      let _, report, filter = force name in
      let ev = Filter.evaluator filter in
      let message = Array.map (fun b -> Bv.of_int ~width:8 b) bytes in
      let got = Filter.verdict ev message in
      let expected = oracle report bytes in
      if got <> expected then
        QCheck2.Test.fail_reportf "filter says %s, solver says %s"
          (pp_verdict got) (pp_verdict expected)
      else true)

let test_witnesses_flagged () =
  List.iter
    (fun (name, _) ->
      let _, report, filter = force name in
      let ev = Filter.evaluator filter in
      List.iter
        (fun (t : Search.trojan) ->
          if t.Search.confirmed then
            match Filter.verdict ev t.Search.witness with
            | Filter.Trojan_suspect _ -> ()
            | v ->
                Alcotest.failf "%s: witness for state %d got %s" name
                  t.Search.server_state_id (pp_verdict v))
        report.Search.trojans)
    compiled

let test_exact_compilation () =
  (* the bundled targets compile without degradation — the differential
     property above is only meaningful because nothing answers unknown *)
  List.iter
    (fun (name, _) ->
      let _, _, filter = force name in
      Alcotest.(check int)
        (Printf.sprintf "%s: unknown leaves" name)
        0
        (Filter.unknown_leaves filter);
      Alcotest.(check bool)
        (Printf.sprintf "%s: has states" name)
        true
        (Filter.state_count filter > 0))
    compiled

let test_wrong_length_is_unknown () =
  let _, _, filter = force "fsp" in
  let ev = Filter.evaluator filter in
  let short = Bytes.make (Filter.message_size filter - 1) '\000' in
  let long = Bytes.make (Filter.message_size filter + 1) '\000' in
  Alcotest.(check string) "short" "unknown-state"
    (pp_verdict (Filter.verdict_bytes ev short));
  Alcotest.(check string) "long" "unknown-state"
    (pp_verdict (Filter.verdict_bytes ev long))

(* --- serialization: round trip and corruption guards -------------------------- *)

let fsp_image = lazy (let _, _, filter = force "fsp" in Filter.to_string filter)

let test_round_trip () =
  List.iter
    (fun (name, _) ->
      let _, report, filter = force name in
      let image = Filter.to_string filter in
      match Filter.of_string image with
      | Error e -> Alcotest.failf "%s: round trip failed: %s" name e
      | Ok filter' ->
          (* canonical encoding: decode then re-encode is the identity *)
          Alcotest.(check bool)
            (Printf.sprintf "%s: image identical" name)
            true
            (String.equal image (Filter.to_string filter'));
          (* and the decoded filter behaves identically on live traffic *)
          let ev = Filter.evaluator filter and ev' = Filter.evaluator filter' in
          List.iter
            (fun (t : Search.trojan) ->
              Alcotest.(check bool) "same verdict" true
                (Filter.verdict ev t.Search.witness
                = Filter.verdict ev' t.Search.witness))
            report.Search.trojans)
    compiled

let expect_error what = function
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s was accepted" what

let test_corruption_guards () =
  let image = Lazy.force fsp_image in
  let len = String.length image in
  (* torn writes: every truncation point is rejected *)
  expect_error "empty file" (Filter.of_string "");
  expect_error "half image" (Filter.of_string (String.sub image 0 (len / 2)));
  expect_error "missing last byte"
    (Filter.of_string (String.sub image 0 (len - 1)));
  expect_error "only the header" (Filter.of_string (String.sub image 0 12));
  (* foreign files *)
  expect_error "garbage" (Filter.of_string "not a filter at all");
  expect_error "trailing garbage" (Filter.of_string (image ^ "x"));
  (* a future format version is refused rather than misparsed *)
  let bumped = Bytes.of_string image in
  Bytes.set bumped 7 '2';
  expect_error "future version" (Filter.of_string (Bytes.to_string bumped));
  (* a well-formed envelope around a nonsense payload fails validation *)
  let payload = String.init 64 (fun i -> Char.chr (i * 7 mod 256)) in
  let buf = Buffer.create 128 in
  Buffer.add_string buf "ACHFLT01";
  Buffer.add_int32_be buf (Int32.of_int (String.length payload));
  Buffer.add_string buf payload;
  Buffer.add_string buf (Digest.string payload);
  expect_error "valid envelope, junk payload"
    (Filter.of_string (Buffer.contents buf))

(* Any single bit flip anywhere in the image — magic, lengths, payload, or
   the digest itself — must produce an error, never a verdict-capable
   filter with different behavior. *)
let qcheck_bit_flips_rejected =
  QCheck2.Test.make ~name:"any single bit flip in the image is rejected"
    ~count:500
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 0 7))
    (fun (p, bit) ->
      let image = Lazy.force fsp_image in
      let pos = p mod String.length image in
      let flipped = Bytes.of_string image in
      Bytes.set flipped pos
        (Char.chr (Char.code image.[pos] lxor (1 lsl bit)));
      match Filter.of_string (Bytes.to_string flipped) with
      | Error _ -> true
      | Ok _ ->
          QCheck2.Test.fail_reportf "flip at byte %d bit %d accepted" pos bit)

let test_save_load () =
  let _, _, filter = force "gossip" in
  let file = Filename.temp_file "achilles-filter" ".achfilter" in
  (match Filter.save filter ~file with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save: %s" e);
  (match Filter.load ~file with
  | Ok filter' ->
      Alcotest.(check string) "round trip through disk"
        (Filter.to_string filter) (Filter.to_string filter')
  | Error e -> Alcotest.failf "load: %s" e);
  Sys.remove file;
  (match Filter.load ~file with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loading a missing file succeeded")

(* --- the daemon: in-process protocol check ------------------------------------ *)

let temp_socket_path () =
  let file = Filename.temp_file "achilles-serve" ".sock" in
  Sys.remove file;
  file

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec go tries =
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when tries > 0 ->
        Unix.sleepf 0.02;
        go (tries - 1)
  in
  go 250

let read_exactly fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off >= n then buf
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> Alcotest.fail "daemon closed the connection mid-reply"
      | k -> go (off + k)
  in
  go 0

let frame_of payload =
  let frame = Bytes.create (4 + Bytes.length payload) in
  Bytes.set_int32_be frame 0 (Int32.of_int (Bytes.length payload));
  Bytes.blit payload 0 frame 4 (Bytes.length payload);
  frame

let send_message fd payload =
  let frame = frame_of payload in
  let n = Unix.write fd frame 0 (Bytes.length frame) in
  Alcotest.(check int) "frame fully written" (Bytes.length frame) n;
  let reply = read_exactly fd 5 in
  let state = Int32.to_int (Bytes.get_int32_be reply 1) land 0xFFFFFFFF in
  (Bytes.get reply 0, state)

let bytes_of_witness w =
  Bytes.init (Array.length w) (fun i -> Char.chr (Bv.to_int w.(i)))

let test_daemon_in_process () =
  let _, report, filter = force "gossip" in
  let ev = Filter.evaluator filter in
  let sock = temp_socket_path () in
  let stop = Atomic.make false in
  let daemon =
    Domain.spawn (fun () ->
        Daemon.run ~filter ~address:(Daemon.Unix_socket sock)
          ~stop:(fun () -> Atomic.get stop)
          ())
  in
  Fun.protect ~finally:(fun () -> Atomic.set stop true)
  @@ fun () ->
  let fd = connect_unix sock in
  (* every confirmed witness comes back 'T' with the id the filter gives *)
  let confirmed =
    List.filter (fun (t : Search.trojan) -> t.Search.confirmed)
      report.Search.trojans
  in
  Alcotest.(check bool) "have witnesses to send" true (confirmed <> []);
  List.iter
    (fun (t : Search.trojan) ->
      let expected =
        match Filter.verdict ev t.Search.witness with
        | Filter.Trojan_suspect id -> id
        | v -> Alcotest.failf "witness not flagged in-process: %s" (pp_verdict v)
      in
      let c, state = send_message fd (bytes_of_witness t.Search.witness) in
      Alcotest.(check char) "verdict char" 'T' c;
      Alcotest.(check int) "state id" expected state)
    confirmed;
  (* a benign message answers 'A', a wrong-length one 'U' *)
  let benign = Bytes.make (Filter.message_size filter) '\255' in
  (match Filter.verdict_bytes ev (Bytes.copy benign) with
  | Filter.Accept -> ()
  | v -> Alcotest.failf "expected all-ff gossip message benign, got %s" (pp_verdict v));
  let c, _ = send_message fd benign in
  Alcotest.(check char) "benign verdict" 'A' c;
  let c, _ = send_message fd (Bytes.make 2 '\000') in
  Alcotest.(check char) "wrong length" 'U' c;
  (* pipelining: two frames in one write produce two replies in order *)
  let w = bytes_of_witness (List.hd confirmed).Search.witness in
  let both = Bytes.concat Bytes.empty [ frame_of w; frame_of benign ] in
  let n = Unix.write fd both 0 (Bytes.length both) in
  Alcotest.(check int) "both frames written" (Bytes.length both) n;
  let r1 = read_exactly fd 5 in
  let r2 = read_exactly fd 5 in
  Alcotest.(check char) "pipelined first" 'T' (Bytes.get r1 0);
  Alcotest.(check char) "pipelined second" 'A' (Bytes.get r2 0);
  (* a frame split across writes is reassembled *)
  let frame = frame_of w in
  let half = Bytes.length frame / 2 in
  ignore (Unix.write fd frame 0 half);
  Unix.sleepf 0.05;
  ignore (Unix.write fd frame half (Bytes.length frame - half));
  let r3 = read_exactly fd 5 in
  Alcotest.(check char) "split frame" 'T' (Bytes.get r3 0);
  Unix.close fd;
  Atomic.set stop true;
  let stats = Domain.join daemon in
  Alcotest.(check int) "daemon counted every message"
    (List.length confirmed + 5)
    stats.Daemon.messages;
  Alcotest.(check int) "one connection" 1 stats.Daemon.connections;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists sock)

(* --- the daemon's telemetry surfaces: STATS wire command and /metrics ---------- *)

let stats_over fd =
  let req = Bytes.create 4 in
  Bytes.set_int32_be req 0 0xFFFFFFFFl;
  let n = Unix.write fd req 0 4 in
  Alcotest.(check int) "sentinel fully written" 4 n;
  let len = Int32.to_int (Bytes.get_int32_be (read_exactly fd 4) 0) land 0xFFFFFFFF in
  Bytes.to_string (read_exactly fd len)

let kv_of text =
  List.filter_map
    (fun line ->
      match String.split_on_char ' ' (String.trim line) with
      | [ k; v ] -> Some (k, v)
      | _ -> None)
    (String.split_on_char '\n' text)

let stat_int kv key =
  match List.assoc_opt key kv with
  | Some v -> (
      match int_of_string_opt v with
      | Some n -> n
      | None -> Alcotest.failf "stats key %s is not an int: %s" key v)
  | None -> Alcotest.failf "stats reply lacks key %s" key

let stat_float kv key =
  match Option.bind (List.assoc_opt key kv) float_of_string_opt with
  | Some f -> f
  | None -> Alcotest.failf "stats reply lacks float key %s" key

let read_to_eof fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
  in
  go ();
  Buffer.contents buf

let scrape msock =
  let fd = connect_unix msock in
  let req = Bytes.of_string "GET /metrics HTTP/1.0\r\n\r\n" in
  ignore (Unix.write fd req 0 (Bytes.length req));
  let reply = read_to_eof fd in
  Unix.close fd;
  match String.index_opt reply '\n' with
  | None -> Alcotest.fail "scrape reply has no status line"
  | Some _ -> (
      let status = List.hd (String.split_on_char '\n' reply) in
      Alcotest.(check string) "scrape status line" "HTTP/1.0 200 OK"
        (String.trim status);
      let marker = "\r\n\r\n" in
      let ml = String.length marker and rl = String.length reply in
      let rec find i =
        if i + ml > rl then None
        else if String.sub reply i ml = marker then Some (i + ml)
        else find (i + 1)
      in
      match find 0 with
      | None -> Alcotest.fail "scrape reply has no header/body separator"
      | Some body_at -> (reply, String.sub reply body_at (rl - body_at)))

(* Value of an exposition sample whose full series name (labels included)
   is [series]. *)
let metric_sample body series =
  let prefix = series ^ " " in
  let pl = String.length prefix in
  match
    List.find_opt
      (fun l -> String.length l > pl && String.sub l 0 pl = prefix)
      (String.split_on_char '\n' body)
  with
  | Some l -> (
      match float_of_string_opt (String.sub l pl (String.length l - pl)) with
      | Some f -> f
      | None -> Alcotest.failf "unparseable sample: %s" l)
  | None -> Alcotest.failf "exposition lacks series %s" series

let check_exposition_shape body =
  List.iter
    (fun line ->
      if String.length line > 0 && line.[0] <> '#' then
        match String.rindex_opt line ' ' with
        | Some i -> (
            match
              float_of_string_opt
                (String.sub line (i + 1) (String.length line - i - 1))
            with
            | Some _ -> ()
            | None -> Alcotest.failf "unparseable sample value: %s" line)
        | None -> Alcotest.failf "sample line without value: %s" line)
    (List.filter (fun l -> l <> "") (String.split_on_char '\n' body))

let test_daemon_telemetry () =
  let _, report, filter = force "gossip" in
  let sock = temp_socket_path () in
  let msock = temp_socket_path () in
  let stop = Atomic.make false in
  let daemon =
    Domain.spawn (fun () ->
        Daemon.run ~filter
          ~metrics:(Daemon.Unix_socket msock)
          ~address:(Daemon.Unix_socket sock)
          ~stop:(fun () -> Atomic.get stop)
          ())
  in
  Fun.protect ~finally:(fun () -> Atomic.set stop true)
  @@ fun () ->
  let witness =
    match
      List.find_opt (fun (t : Search.trojan) -> t.Search.confirmed)
        report.Search.trojans
    with
    | Some t -> bytes_of_witness t.Search.witness
    | None -> Alcotest.fail "gossip analysis reported no confirmed trojan"
  in
  let benign = Bytes.make (Filter.message_size filter) '\255' in
  let fd = connect_unix sock in
  let c, _ = send_message fd witness in
  Alcotest.(check char) "witness flagged" 'T' c;
  let c, _ = send_message fd benign in
  Alcotest.(check char) "benign accepted" 'A' c;
  let c, _ = send_message fd (Bytes.make 2 '\000') in
  Alcotest.(check char) "short is unknown" 'U' c;
  (* STATS sentinel mid-stream: a key/value reply, then normal service *)
  let kv = kv_of (stats_over fd) in
  Alcotest.(check int) "wire stats: messages" 3 (stat_int kv "messages");
  Alcotest.(check int) "wire stats: accepts" 1 (stat_int kv "accepts");
  Alcotest.(check int) "wire stats: trojan_suspects" 1
    (stat_int kv "trojan_suspects");
  Alcotest.(check int) "wire stats: unknowns" 1 (stat_int kv "unknowns");
  Alcotest.(check int) "wire stats: dropped_frames" 0
    (stat_int kv "dropped_frames");
  Alcotest.(check int) "wire stats: connections" 1 (stat_int kv "connections");
  Alcotest.(check int) "wire stats: latency_count" 3
    (stat_int kv "latency_count");
  Alcotest.(check bool) "wire stats: uptime non-negative" true
    (stat_float kv "uptime_seconds" >= 0.);
  Alcotest.(check bool) "wire stats: p50 <= p99" true
    (stat_float kv "latency_p50_us" <= stat_float kv "latency_p99_us");
  let c, _ = send_message fd benign in
  Alcotest.(check char) "daemon keeps serving after STATS" 'A' c;
  (* scrape while the verdict connection is still open: the exposition must
     agree with the wire stats *)
  let _, body = scrape msock in
  check_exposition_shape body;
  Alcotest.(check (float 0.)) "scrape: messages" 4.
    (metric_sample body "achilles_daemon_messages_total");
  Alcotest.(check (float 0.)) "scrape: accepts" 2.
    (metric_sample body "achilles_daemon_verdicts_total{verdict=\"accept\"}");
  Alcotest.(check (float 0.)) "scrape: trojan suspects" 1.
    (metric_sample body
       "achilles_daemon_verdicts_total{verdict=\"trojan_suspect\"}");
  Alcotest.(check (float 0.)) "scrape: unknowns" 1.
    (metric_sample body "achilles_daemon_verdicts_total{verdict=\"unknown\"}");
  Alcotest.(check (float 0.)) "scrape: dropped frames" 0.
    (metric_sample body "achilles_daemon_dropped_frames_total");
  Alcotest.(check (float 0.)) "scrape: latency count covers live conns" 4.
    (metric_sample body "achilles_daemon_request_duration_seconds_count");
  Alcotest.(check (float 0.)) "scrape: +Inf bucket equals count" 4.
    (metric_sample body
       "achilles_daemon_request_duration_seconds_bucket{le=\"+Inf\"}");
  Alcotest.(check bool) "scrape: uptime gauge present" true
    (metric_sample body "achilles_daemon_uptime_seconds" >= 0.);
  (* an oversized frame drops that connection and counts as a drop *)
  let fd2 = connect_unix sock in
  let huge = Bytes.create 4 in
  Bytes.set_int32_be huge 0 (Int32.of_int (2 * 1024 * 1024));
  ignore (Unix.write fd2 huge 0 4);
  let eof =
    match Unix.read fd2 (Bytes.create 1) 0 1 with
    | 0 -> true
    | _ -> false
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> true
  in
  Alcotest.(check bool) "oversized frame drops the connection" true eof;
  Unix.close fd2;
  (* the drop shows up on both surfaces; the first connection still serves *)
  let kv = kv_of (stats_over fd) in
  Alcotest.(check int) "wire stats: drop counted" 1
    (stat_int kv "dropped_frames");
  Alcotest.(check int) "wire stats: two connections" 2
    (stat_int kv "connections");
  let _, body = scrape msock in
  Alcotest.(check (float 0.)) "scrape: drop counted" 1.
    (metric_sample body "achilles_daemon_dropped_frames_total");
  Unix.close fd;
  Atomic.set stop true;
  let stats = Domain.join daemon in
  (* the returned record, the wire reply, and the scrape all told the same
     story *)
  Alcotest.(check int) "record: messages" 4 stats.Daemon.messages;
  Alcotest.(check int) "record: accepts" 2 stats.Daemon.accepts;
  Alcotest.(check int) "record: trojan suspects" 1 stats.Daemon.trojan_suspects;
  Alcotest.(check int) "record: unknowns" 1 stats.Daemon.unknowns;
  Alcotest.(check int) "record: dropped frames" 1 stats.Daemon.dropped_frames;
  Alcotest.(check int) "record: connections" 2 stats.Daemon.connections;
  Alcotest.(check bool) "metrics socket file removed" false
    (Sys.file_exists msock)

(* The select loop interleaves scrapes with verdict traffic: start a scrape,
   keep sending frames on the verdict connection, then harvest the scrape —
   all on one daemon thread. Every scrape must be well-formed and counters
   must be monotone across scrapes. *)
let test_scrape_while_serving () =
  let _, _, filter = force "gossip" in
  let sock = temp_socket_path () in
  let msock = temp_socket_path () in
  let stop = Atomic.make false in
  let daemon =
    Domain.spawn (fun () ->
        Daemon.run ~filter
          ~metrics:(Daemon.Unix_socket msock)
          ~address:(Daemon.Unix_socket sock)
          ~stop:(fun () -> Atomic.get stop)
          ())
  in
  Fun.protect ~finally:(fun () -> Atomic.set stop true)
  @@ fun () ->
  let benign = Bytes.make (Filter.message_size filter) '\255' in
  let fd = connect_unix sock in
  let sent = ref 0 in
  let last = ref 0. in
  for _round = 1 to 5 do
    (* open the scrape first, then drive traffic before harvesting it *)
    let sfd = connect_unix msock in
    let req = Bytes.of_string "GET /metrics HTTP/1.0\r\n\r\n" in
    ignore (Unix.write sfd req 0 (Bytes.length req));
    for _ = 1 to 20 do
      let c, _ = send_message fd benign in
      incr sent;
      Alcotest.(check char) "verdict under scrape load" 'A' c
    done;
    let reply = read_to_eof sfd in
    Unix.close sfd;
    let marker = "\r\n\r\n" in
    let ml = String.length marker and rl = String.length reply in
    let rec find i =
      if i + ml > rl then None
      else if String.sub reply i ml = marker then Some (i + ml)
      else find (i + 1)
    in
    match find 0 with
    | None -> Alcotest.fail "interleaved scrape has no body"
    | Some at ->
        let body = String.sub reply at (rl - at) in
        check_exposition_shape body;
        let m = metric_sample body "achilles_daemon_messages_total" in
        Alcotest.(check bool) "scrape counter is monotone" true (m >= !last);
        Alcotest.(check bool) "scrape counter within bounds" true
          (m <= float_of_int !sent);
        last := m
  done;
  Unix.close fd;
  Atomic.set stop true;
  let stats = Domain.join daemon in
  Alcotest.(check int) "every frame judged" !sent stats.Daemon.messages

(* --- the daemon as a real subprocess (achilles serve round trip) -------------- *)

let cli_binary () =
  let candidate =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      "../bin/achilles_cli.exe"
  in
  if Sys.file_exists candidate then Some candidate else None

let test_serve_subprocess () =
  match cli_binary () with
  | None -> print_endline "achilles_cli.exe not built here; skipping"
  | Some binary ->
      let _, report, filter = force "gossip" in
      let file = Filename.temp_file "achilles-filter" ".achfilter" in
      (match Filter.save filter ~file with
      | Ok () -> ()
      | Error e -> Alcotest.failf "save: %s" e);
      let sock = temp_socket_path () in
      let out = Filename.temp_file "achilles-serve" ".out" in
      let out_fd = Unix.openfile out [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
      let pid =
        Unix.create_process binary
          [| binary; "serve"; file; "--socket"; sock |]
          Unix.stdin out_fd Unix.stderr
      in
      Unix.close out_fd;
      Fun.protect ~finally:(fun () ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
          List.iter
            (fun f -> try Sys.remove f with Sys_error _ -> ())
            [ file; out; sock ])
      @@ fun () ->
      let fd = connect_unix sock in
      let witness =
        match
          List.find_opt (fun (t : Search.trojan) -> t.Search.confirmed)
            report.Search.trojans
        with
        | Some t -> t
        | None -> Alcotest.fail "gossip analysis reported no confirmed trojan"
      in
      let c, _ = send_message fd (bytes_of_witness witness.Search.witness) in
      Alcotest.(check char) "subprocess flags the witness" 'T' c;
      let benign = Bytes.make (Filter.message_size filter) '\255' in
      let c, _ = send_message fd benign in
      Alcotest.(check char) "subprocess accepts benign" 'A' c;
      Unix.close fd;
      (* clean SIGTERM drain: exit 0 and final statistics on stdout *)
      Unix.kill pid Sys.sigterm;
      let _, status = Unix.waitpid [] pid in
      Alcotest.(check bool) "clean exit on SIGTERM" true
        (status = Unix.WEXITED 0);
      let ic = open_in out in
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check bool) "announced readiness" true
        (String.length content >= 5
        && List.exists
             (fun line -> String.trim line = "ready")
             (String.split_on_char '\n' content));
      Alcotest.(check bool) "printed drain statistics" true
        (List.exists
           (fun line ->
             let line = String.trim line in
             String.length line > 0
             && String.index_opt line ',' <> None
             && List.exists
                  (fun needle ->
                    let nl = String.length needle and ll = String.length line in
                    let rec find i =
                      i + nl <= ll
                      && (String.sub line i nl = needle || find (i + 1))
                    in
                    find 0)
                  [ "trojan-suspect" ])
           (String.split_on_char '\n' content))

let () =
  let qsuite name tests =
    (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)
  in
  Alcotest.run "filter"
    [
      qsuite "differential"
        (List.map (fun (name, _) -> differential_test name) compiled);
      ( "compilation",
        [
          Alcotest.test_case "witnesses flagged" `Quick test_witnesses_flagged;
          Alcotest.test_case "exact (no unknown leaves)" `Quick
            test_exact_compilation;
          Alcotest.test_case "wrong length is unknown" `Quick
            test_wrong_length_is_unknown;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "round trip" `Quick test_round_trip;
          Alcotest.test_case "corruption guards" `Quick test_corruption_guards;
          Alcotest.test_case "save/load" `Quick test_save_load;
        ] );
      qsuite "serialization-properties" [ qcheck_bit_flips_rejected ];
      ( "daemon",
        [
          Alcotest.test_case "in-process protocol" `Quick test_daemon_in_process;
          Alcotest.test_case "telemetry surfaces agree" `Quick
            test_daemon_telemetry;
          Alcotest.test_case "scrape while serving" `Quick
            test_scrape_while_serving;
          Alcotest.test_case "serve subprocess round trip" `Quick
            test_serve_subprocess;
        ] );
    ]
