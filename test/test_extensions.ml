(* Tests for features beyond the paper's core pipeline: witness refinement
   (the §4.1 future work), automatic accept/reject classification (§5.1 and
   its HTTP-style extension, on the kv target), and witness minimization. *)

open Achilles_smt
open Achilles_symvm
open Achilles_core
open Achilles_targets

let b8 n = Bv.of_int ~width:8 n

(* --- refinement (§4.1) ----------------------------------------------------------- *)

let test_refine_confirms_rw_trojans () =
  let config =
    { Search.default_config with Search.mask = Some [ "address" ] }
  in
  let analysis =
    Achilles.analyze ~search_config:config ~layout:Rw_example.layout
      ~clients:[ Rw_example.client ] ~server:Rw_example.server ()
  in
  let result =
    Refine.refine ~client:analysis.Achilles.client (Achilles.trojans analysis)
  in
  Alcotest.(check int) "nothing refuted" 0 (List.length result.Refine.refuted);
  Alcotest.(check bool) "witnesses confirmed" true (result.Refine.confirmed <> [])

(* A client whose field value is x mod 4 under a constraint that does not
   restrict the field: without the overlap check, negate produces false
   positives, which the refinement must catch. *)
let tricky_layout = Layout.make ~name:"tricky" [ ("kind", 1); ("val", 1) ]

let tricky_client =
  let open Builder in
  prog "tricky-client" ~buffers:[ ("msg", 2) ]
    [
      read_input "x" ~width:8;
      when_ (v "x" >=: i8 8) [ halt ];
      store "msg" (i8 0) (i8 1);
      store "msg" (i8 1) (v "x" %: i8 4);
      send (i8 0) "msg";
      halt;
    ]

let tricky_server =
  let open Builder in
  prog "tricky-server" ~buffers:[ ("msg", 2); ("reply", 1) ]
    [
      receive "msg";
      when_ (load "msg" (i8 0) <>: i8 1) [ mark_reject "bad-kind" ];
      when_ (load "msg" (i8 1) >=: i8 4) [ mark_reject "bad-val" ];
      send (i8 0) "reply";
      mark_accept "ok";
    ]

let test_refine_catches_overlap_false_positives () =
  (* the server accepts exactly the client's value set {0..3}: there are NO
     Trojan values. With the overlap discard disabled, negate claims some;
     the refinement refutes every one of them. *)
  let config =
    {
      Search.default_config with
      Search.mask = Some [ "val" ];
      Search.check_overlap = false;
      Search.witnesses_per_path = 4;
    }
  in
  let analysis =
    Achilles.analyze ~search_config:config ~layout:tricky_layout
      ~clients:[ tricky_client ] ~server:tricky_server ()
  in
  let trojans = Achilles.trojans analysis in
  Alcotest.(check bool) "unsound run reports false positives" true
    (trojans <> []);
  let result = Refine.refine ~client:analysis.Achilles.client trojans in
  Alcotest.(check int) "all refuted" (List.length trojans)
    (List.length result.Refine.refuted);
  Alcotest.(check int) "none left" 0 (List.length result.Refine.confirmed);
  (* and with the overlap check on (the default), none are reported *)
  let sound =
    Achilles.analyze
      ~search_config:{ config with Search.check_overlap = true }
      ~layout:tricky_layout ~clients:[ tricky_client ] ~server:tricky_server ()
  in
  Alcotest.(check int) "sound run reports none" 0
    (List.length (Achilles.trojans sound))

let test_refine_generable_by () =
  let pc, _ =
    Client_extract.extract ~layout:tricky_layout [ tricky_client ]
  in
  Alcotest.(check bool) "kind=1 val=2 generable" true
    (Refine.generable_by ~client:pc [| b8 1; b8 2 |] <> None);
  Alcotest.(check bool) "kind=1 val=9 not generable" true
    (Refine.generable_by ~client:pc [| b8 1; b8 9 |] = None);
  Alcotest.(check bool) "kind=2 not generable" true
    (Refine.generable_by ~client:pc [| b8 2; b8 0 |] = None)

(* --- automatic classification (§5.1) ------------------------------------------------ *)

let test_classify_by_reply () =
  let open Builder in
  let server =
    prog "replier" ~buffers:[ ("m", 1); ("r", 1) ]
      [
        receive "m";
        if_ (load "m" (i8 0) <: i8 100) [ send (i8 1) "r"; halt ] [ halt ];
      ]
  in
  let config =
    {
      Interp.default_config with
      Interp.auto_classify = Some Interp.classify_by_reply;
    }
  in
  let run = Interp.run ~config server in
  let statuses =
    List.map
      (fun (s : State.t) -> State.status_string s.State.status)
      run.Interp.terminals
    |> List.sort compare
  in
  Alcotest.(check (list string)) "reply => accept, silence => reject"
    [ "accepted:auto:reply"; "rejected:auto:no-reply" ]
    statuses

let kv_interp =
  {
    Interp.default_config with
    Interp.auto_classify = Some Kv_model.auto_classifier;
  }

let test_kv_auto_classification () =
  let run = Interp.run ~config:kv_interp Kv_model.server in
  let accepted, rejected =
    List.partition
      (fun (s : State.t) ->
        match s.State.status with State.Accepted _ -> true | _ -> false)
      run.Interp.terminals
  in
  (* accepting: GET-200 and PUT-200; rejecting: 400 and 404 *)
  Alcotest.(check int) "two 2xx paths" 2 (List.length accepted);
  Alcotest.(check bool) "some 4xx paths" true (List.length rejected >= 2);
  List.iter
    (fun (s : State.t) ->
      match s.State.status with
      | State.Accepted label ->
          Alcotest.(check string) "status label" "auto:status-2" label
      | _ -> ())
    accepted

let kv_analysis =
  lazy
    (let config =
       {
         Search.default_config with
         Search.mask = Some Kv_model.analysis_mask;
         Search.interp = kv_interp;
         Search.witnesses_per_path = 8;
       }
     in
     Achilles.analyze ~search_config:config ~layout:Kv_model.layout
       ~clients:[ Kv_model.client ] ~server:Kv_model.server ())

let test_kv_trojans () =
  let analysis = Lazy.force kv_analysis in
  let trojans = Achilles.trojans analysis in
  Alcotest.(check bool) "trojans found" true (trojans <> []);
  List.iter
    (fun (t : Search.trojan) ->
      Alcotest.(check bool) "matches ground truth" true
        (Kv_model.is_trojan t.Search.witness))
    trojans;
  (* both families appear among the witnesses *)
  let bad_token =
    List.exists
      (fun (t : Search.trojan) ->
        Bv.to_int (Layout.field_value Kv_model.layout t.Search.witness "token")
        <> Kv_model.secret_token)
      trojans
  in
  let foreign_key =
    List.exists
      (fun (t : Search.trojan) ->
        let key =
          Bv.to_int (Layout.field_value Kv_model.layout t.Search.witness "key")
        in
        key >= Kv_model.client_key_space && key < Kv_model.server_key_space)
      trojans
  in
  Alcotest.(check bool) "unchecked-token family found" true bad_token;
  Alcotest.(check bool) "foreign-key family found" true foreign_key;
  (* refinement confirms them all *)
  let result = Refine.refine ~client:analysis.Achilles.client trojans in
  Alcotest.(check int) "refinement confirms" 0 (List.length result.Refine.refuted)

let test_kv_concrete_agrees () =
  (* the concrete server accepts exactly what the oracle says it accepts *)
  let mk ~meth ~key ~token =
    let bytes = Array.make Kv_model.message_size (Bv.zero 8) in
    bytes.(0) <- b8 meth;
    bytes.(1) <- b8 (key lsr 8);
    bytes.(2) <- b8 (key land 0xFF);
    bytes.(5) <- b8 (token lsr 8);
    bytes.(6) <- b8 (token land 0xFF);
    bytes
  in
  let server_status msg =
    let outcome = Concrete.run ~incoming:[ msg ] Kv_model.server in
    match outcome.Concrete.sent with
    | (_, reply) :: _ -> Bv.to_int reply.(0)
    | [] -> -1
  in
  Alcotest.(check int) "valid GET -> 2xx" 2
    (server_status (mk ~meth:1 ~key:5 ~token:Kv_model.secret_token));
  Alcotest.(check int) "bad token still 2xx (the bug)" 2
    (server_status (mk ~meth:1 ~key:5 ~token:0));
  Alcotest.(check int) "foreign key still 2xx (the bug)" 2
    (server_status (mk ~meth:1 ~key:150 ~token:Kv_model.secret_token));
  Alcotest.(check int) "oversized key -> 4xx" 4
    (server_status (mk ~meth:1 ~key:5000 ~token:Kv_model.secret_token));
  Alcotest.(check int) "bad method -> 4xx" 4
    (server_status (mk ~meth:9 ~key:5 ~token:Kv_model.secret_token))

(* the symbolic exploration's auto-classified verdict must match the
   concrete server's reply status for any message *)
let qcheck_kv_classification_consistent =
  let exploration =
    lazy
      (let run = Interp.run ~config:kv_interp Kv_model.server in
       List.filter_map
         (fun (st : State.t) ->
           match st.State.msg_vars, st.State.status with
           | Some vars, (State.Accepted _ | State.Rejected _) ->
               Some (vars, State.constraints st, st.State.status)
           | _ -> None)
         run.Interp.terminals)
  in
  let gen =
    QCheck2.Gen.(
      let* meth = int_range 0 3 in
      let* key = int_range 0 300 in
      let* token = oneofl [ Kv_model.secret_token; 0; 0xFFFF ] in
      return (meth, key, token))
  in
  QCheck2.Test.make ~name:"auto-classification matches concrete replies"
    ~count:60 gen (fun (meth, key, token) ->
      let message =
        let bytes = Array.make Kv_model.message_size (Bv.zero 8) in
        bytes.(0) <- b8 meth;
        bytes.(1) <- b8 (key lsr 8);
        bytes.(2) <- b8 (key land 0xFF);
        bytes.(5) <- b8 (token lsr 8);
        bytes.(6) <- b8 (token land 0xFF);
        bytes
      in
      let concrete_accepts =
        let outcome = Concrete.run ~incoming:[ message ] Kv_model.server in
        match outcome.Concrete.sent with
        | (_, reply) :: _ -> Bv.to_int reply.(0) = 2
        | [] -> false
      in
      (* exactly one symbolic path covers the message, with the same verdict *)
      let covering =
        List.filter
          (fun (vars, constraints, _) ->
            let model =
              Array.to_seq vars
              |> Seq.mapi (fun i v -> (v, Model.Vbv message.(i)))
              |> List.of_seq |> Model.of_list
            in
            Model.satisfies model constraints)
          (Lazy.force exploration)
      in
      match covering with
      | [ (_, _, State.Accepted _) ] -> concrete_accepts
      | [ (_, _, State.Rejected _) ] -> not concrete_accepts
      | _ -> false)

(* --- witness minimization -------------------------------------------------------------- *)

let test_minimize_witness () =
  let analysis = Lazy.force kv_analysis in
  match Achilles.trojans analysis with
  | [] -> Alcotest.fail "no trojans"
  | t :: _ ->
      let minimized = Search.minimize_witness t in
      let zeros a =
        Array.fold_left
          (fun n b -> if Bv.equal b (Bv.zero 8) then n + 1 else n)
          0 a
      in
      Alcotest.(check bool) "no fewer zero bytes" true
        (zeros minimized >= zeros t.Search.witness);
      (* still a Trojan of the same expression *)
      let still_trojan =
        Solver.is_sat
          (Array.to_list
             (Array.mapi
                (fun i b -> Term.eq (Term.var t.Search.msg_vars.(i)) (Term.const b))
                minimized)
          @ t.Search.symbolic)
      in
      Alcotest.(check bool) "minimized witness satisfies the expression" true
        still_trojan;
      Alcotest.(check bool) "and the ground truth" true
        (Kv_model.is_trojan minimized)

(* --- drop explanations (unsat cores) ------------------------------------------------ *)

let test_drop_explanations () =
  let config =
    {
      Search.default_config with
      Search.mask = Some [ "address" ];
      Search.explain_drops = true;
    }
  in
  let analysis =
    Achilles.analyze ~search_config:config ~layout:Rw_example.layout
      ~clients:[ Rw_example.client ] ~server:Rw_example.server ()
  in
  let drops = analysis.Achilles.report.Search.drops in
  Alcotest.(check bool) "drops recorded" true (drops <> []);
  (* the WRITE client path (cp_id 1) dies on the READ branch, and vice
     versa; each explanation carries a non-empty conflicting core *)
  let dropped_ids =
    List.sort_uniq compare
      (List.map (fun (d : Search.drop_explanation) -> d.Search.dropped_path) drops)
  in
  Alcotest.(check (list int)) "both client paths die somewhere" [ 0; 1 ]
    dropped_ids;
  List.iter
    (fun (d : Search.drop_explanation) ->
      Alcotest.(check bool) "non-empty core" true (d.Search.conflicting <> []))
    drops;
  (* a core really is conflicting: re-checking it against the binding of the
     dropped path must be UNSAT *)
  let server_paths = analysis.Achilles.report.Search.accepting in
  match server_paths with
  | sp :: _ ->
      let d = List.hd drops in
      let path = List.nth analysis.Achilles.client.Predicate.paths d.Search.dropped_path in
      let binding =
        Predicate.bind_to_server ~server_vars:sp.Predicate.msg_vars path
      in
      Alcotest.(check bool) "core conflicts with the binding" true
        (Solver.is_unsat (d.Search.conflicting @ binding))
  | [] -> Alcotest.fail "no accepting paths"

(* --- conformance: lost messages (C \ S) ----------------------------------------------- *)

let test_conformance_fsp_lost_messages () =
  (* FSP clients copy unconstrained trailing bytes; the server insists they
     are NUL-or-printable: lost messages must exist *)
  let client, _ =
    Client_extract.extract ~layout:Fsp_model.layout
      [ Fsp_model.client (List.hd Fsp_model.commands) ]
  in
  let report = Conformance.run ~client ~server:Fsp_model.server () in
  Alcotest.(check bool) "lost messages found" true (report.Conformance.lost <> []);
  List.iter
    (fun (l : Conformance.lost) ->
      (* generable by the client... *)
      Alcotest.(check bool) "client can generate it" true
        (Refine.generable_by ~client l.Conformance.witness <> None);
      (* ...rejected by the live server *)
      let outcome =
        Concrete.run ~incoming:[ l.Conformance.witness ] Fsp_model.server
      in
      match outcome.Concrete.status with
      | State.Rejected _ -> ()
      | s ->
          Alcotest.failf "server should reject a lost message, got %s"
            (State.status_string s))
    report.Conformance.lost

let test_conformance_rw_clean () =
  (* the working example's server accepts everything its client produces *)
  let client, _ =
    Client_extract.extract ~layout:Rw_example.layout [ Rw_example.client ]
  in
  let report = Conformance.run ~client ~server:Rw_example.server () in
  Alcotest.(check int) "no lost messages" 0 (List.length report.Conformance.lost);
  Alcotest.(check int) "both accepting paths seen" 2
    report.Conformance.accepting_paths

(* --- gossip / Amazon-S3 scenario (§1 + §3.4 concrete local state) ------------------ *)

let gossip_client_interp ~observed =
  Local_state.concrete
    ~incoming:(List.init observed (fun _ -> Gossip_model.failure_event))
    ~prefix:Gossip_model.reporter_prefix Interp.default_config

let gossip_analysis ~hardened ~observed =
  Achilles.analyze
    ~search_config:
      {
        Search.default_config with
        Search.mask = Some Gossip_model.analysis_mask;
        Search.witnesses_per_path = 6;
      }
    ~client_interp:(gossip_client_interp ~observed)
    ~layout:Gossip_model.layout ~clients:[ Gossip_model.reporter ]
    ~server:(Gossip_model.aggregator ~hardened ()) ()

let test_gossip_concrete_state_trojans () =
  let observed = 2 in
  let analysis = gossip_analysis ~hardened:false ~observed in
  let trojans = Achilles.trojans analysis in
  Alcotest.(check bool) "trojans found" true (trojans <> []);
  List.iter
    (fun (t : Search.trojan) ->
      Alcotest.(check bool) "count differs from the scenario's" true
        (Gossip_model.is_trojan ~observed t.Search.witness))
    trojans;
  (* the client predicate pins count to the concrete local state *)
  let path = List.hd analysis.Achilles.client.Predicate.paths in
  let count_term =
    Layout.field_term Gossip_model.layout path.Predicate.message "count"
  in
  Alcotest.(check bool) "count field is the concrete 2" true
    (Term.equal count_term (Term.int ~width:8 observed))

let test_gossip_scenario_dependence () =
  (* the same message is Trojan in one scenario and valid in another — the
     paper's point about the S3 outage message *)
  let report count =
    let bytes = Array.make Gossip_model.message_size (Bv.zero 8) in
    bytes.(0) <- b8 Gossip_model.msg_report;
    bytes.(1) <- b8 1;
    bytes.(2) <- b8 count;
    bytes.(4) <- b8 Gossip_model.current_epoch;
    bytes
  in
  Alcotest.(check bool) "count 5 is Trojan with 2 failures" true
    (Gossip_model.is_trojan ~observed:2 (report 5));
  Alcotest.(check bool) "count 5 is valid with 5 failures" false
    (Gossip_model.is_trojan ~observed:5 (report 5));
  (* and Achilles agrees: with 5 observed failures, count=5 is generable *)
  let analysis = gossip_analysis ~hardened:false ~observed:5 in
  Alcotest.(check bool) "witness counts never equal 5" true
    (List.for_all
       (fun (t : Search.trojan) ->
         Bv.to_int
           (Layout.field_value Gossip_model.layout t.Search.witness "count")
         <> 5)
       (Achilles.trojans analysis))

let test_gossip_hardened_rejects_corruption () =
  let node =
    Achilles_runtime.Node.create (Gossip_model.aggregator ~hardened:true ())
  in
  let bad =
    let bytes = Array.make Gossip_model.message_size (Bv.zero 8) in
    bytes.(0) <- b8 Gossip_model.msg_report;
    bytes.(1) <- b8 1;
    bytes.(2) <- b8 66 (* the bit-flipped count *);
    bytes.(4) <- b8 Gossip_model.current_epoch;
    bytes
  in
  let outcome = Achilles_runtime.Node.deliver node bad in
  Alcotest.(check string) "implausible count rejected"
    "rejected:implausible-count"
    (State.status_string outcome.Achilles_symvm.Concrete.status)

(* grammar describer sanity (appended suite) *)
let test_grammar_rw () =
  let pc, _ =
    Client_extract.extract ~layout:Rw_example.layout [ Rw_example.client ]
  in
  let grammar = Report.describe_grammar pc in
  let find name = List.assoc name grammar in
  (match find "request" with
  | Report.Constant values ->
      Alcotest.(check (list int)) "request constants" [ 1; 2 ]
        (List.map Bv.to_int values)
  | _ -> Alcotest.fail "request should be constant");
  (match find "address" with
  | Report.Ranged { low; high } ->
      Alcotest.(check int) "address low" 0 (Bv.to_int low);
      Alcotest.(check int) "address high" 99 (Bv.to_int high)
  | _ -> Alcotest.fail "address should be ranged");
  (match find "sender" with
  | Report.Ranged { low; high } ->
      Alcotest.(check int) "sender low" 1 (Bv.to_int low);
      Alcotest.(check int) "sender high" 3 (Bv.to_int high)
  | _ -> Alcotest.fail "sender should be ranged");
  match find "value" with
  | Report.Unconstrained -> ()
  | _ -> Alcotest.fail "value should be unconstrained (WRITE path)"

let test_grammar_fsp () =
  let pc, _ =
    Client_extract.extract ~layout:Fsp_model.layout
      [ Fsp_model.client (List.hd Fsp_model.commands) ]
  in
  let grammar = Report.describe_grammar ~mask:Fsp_model.analysis_mask pc in
  (match List.assoc "cmd" grammar with
  | Report.Constant [ v ] -> Alcotest.(check int) "cmd" 0x10 (Bv.to_int v)
  | _ -> Alcotest.fail "cmd should be one constant");
  match List.assoc "bb_len" grammar with
  | Report.Constant values ->
      Alcotest.(check (list int)) "lengths" [ 1; 2; 3; 4 ]
        (List.map Bv.to_int values)
  | _ -> Alcotest.fail "bb_len should be constants"

let () =
  let qsuite name tests =
    (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)
  in
  Alcotest.run "extensions"
    [
      qsuite "auto-classify-properties" [ qcheck_kv_classification_consistent ];
      ( "refine",
        [
          Alcotest.test_case "confirms real trojans" `Quick
            test_refine_confirms_rw_trojans;
          Alcotest.test_case "catches overlap FPs" `Quick
            test_refine_catches_overlap_false_positives;
          Alcotest.test_case "generable_by" `Quick test_refine_generable_by;
        ] );
      ( "auto-classify",
        [
          Alcotest.test_case "by reply" `Quick test_classify_by_reply;
          Alcotest.test_case "kv status codes" `Quick test_kv_auto_classification;
          Alcotest.test_case "kv trojans" `Quick test_kv_trojans;
          Alcotest.test_case "kv concrete agrees" `Quick test_kv_concrete_agrees;
        ] );
      ( "minimize",
        [ Alcotest.test_case "witness minimization" `Quick test_minimize_witness ] );
      ( "explain",
        [ Alcotest.test_case "drop explanations" `Quick test_drop_explanations ] );
      ( "conformance",
        [
          Alcotest.test_case "fsp lost messages" `Quick
            test_conformance_fsp_lost_messages;
          Alcotest.test_case "rw has none" `Quick test_conformance_rw_clean;
        ] );
      ( "grammar",
        [
          Alcotest.test_case "rw summary" `Quick test_grammar_rw;
          Alcotest.test_case "fsp summary" `Quick test_grammar_fsp;
        ] );
      ( "gossip",
        [
          Alcotest.test_case "concrete-state trojans" `Quick
            test_gossip_concrete_state_trojans;
          Alcotest.test_case "scenario dependence" `Quick
            test_gossip_scenario_dependence;
          Alcotest.test_case "hardened rejects corruption" `Quick
            test_gossip_hardened_rejects_corruption;
        ] );
    ]
