(* Tests for the Achilles core: predicates, the negate operator, the
   differentFrom matrix, the incremental search, and the local-state
   modes. *)

open Achilles_smt
open Achilles_symvm
open Achilles_core
open Achilles_targets

let b8 n = Bv.of_int ~width:8 n

(* A tiny 3-field layout for hand-built client paths. *)
let tiny = Layout.make ~name:"tiny" [ ("kind", 1); ("val", 1); ("pad", 1) ]

let fresh8 name = Term.fresh_var ~name (Term.Bitvec 8)

let path_of ~kind ~value ~constraints =
  {
    Predicate.cp_id = 0;
    source = "test";
    message = [| kind; value; Term.int ~width:8 0 |];
    constraints;
  }

let server_vars () =
  Array.init 3 (fun i -> Term.fresh_var ~name:(Printf.sprintf "m%d" i) (Term.Bitvec 8))

(* --- negate ------------------------------------------------------------------ *)

let test_negate_constant_field () =
  let path =
    path_of ~kind:(Term.int ~width:8 7) ~value:(Term.int ~width:8 1)
      ~constraints:[]
  in
  let target = Term.var (fresh8 "t") in
  match Negate.negate_field ~layout:tiny ~target path "kind" with
  | Some negation ->
      (* models of the negation are exactly target <> 7 *)
      Alcotest.(check bool) "7 excluded" false
        (Solver.is_sat [ negation; Term.eq target (Term.int ~width:8 7) ]);
      Alcotest.(check bool) "8 included" true
        (Solver.is_sat [ negation; Term.eq target (Term.int ~width:8 8) ])
  | None -> Alcotest.fail "constant field must be negatable"

let test_negate_constrained_symbolic_field () =
  let x = fresh8 "x" in
  let constraints =
    [ Term.ult (Term.var x) (b8 10 |> Term.const); Term.ugt (Term.var x) (Term.const (b8 2)) ]
  in
  let path =
    path_of ~kind:(Term.int ~width:8 1) ~value:(Term.var x) ~constraints
  in
  let target = Term.var (fresh8 "t") in
  match Negate.negate_field ~layout:tiny ~target path "val" with
  | Some negation ->
      (* anything in (2, 10) is generable, so it must NOT satisfy the
         negation; values outside are exactly what the negation captures *)
      Alcotest.(check bool) "5 excluded" false
        (Solver.is_sat [ negation; Term.eq target (Term.int ~width:8 5) ]);
      Alcotest.(check bool) "1 included" true
        (Solver.is_sat [ negation; Term.eq target (Term.int ~width:8 1) ]);
      Alcotest.(check bool) "200 included" true
        (Solver.is_sat [ negation; Term.eq target (Term.int ~width:8 200) ])
  | None -> Alcotest.fail "constrained field must be negatable"

let test_negate_abandons_unconstrained () =
  let x = fresh8 "x" in
  let path =
    path_of ~kind:(Term.int ~width:8 1) ~value:(Term.var x) ~constraints:[]
  in
  let target = Term.var (fresh8 "t") in
  Alcotest.(check bool) "unconstrained symbolic field abandoned" true
    (Negate.negate_field ~layout:tiny ~target path "val" = None)

let test_negate_path_overlap_discard () =
  (* field value x mod 4 under constraint x < 8: the constraint does not
     actually restrict the field (x mod 4 covers {0..3} either way), so the
     negation's values (x' mod 4 with x' >= 8) are all producible by the
     client and the overlap check must discard the disjunct; with only this
     field analyzed the whole path negation collapses to false *)
  let x = fresh8 "x" in
  let value = Term.urem (Term.var x) (Term.int ~width:8 4) in
  let path =
    path_of ~kind:(Term.int ~width:8 1) ~value
      ~constraints:[ Term.ult (Term.var x) (Term.const (b8 8)) ]
  in
  let vars = server_vars () in
  let negation =
    Negate.negate_path ~check_overlap:true ~mask:[ "val" ] ~layout:tiny
      ~server_vars:vars path
  in
  Alcotest.(check bool) "collapsed to false" true (Term.equal negation Term.fls);
  (* without the overlap check the unsound disjunct survives *)
  let unsound =
    Negate.negate_path ~check_overlap:false ~mask:[ "val" ] ~layout:tiny
      ~server_vars:vars path
  in
  Alcotest.(check bool) "kept without the check" false
    (Term.equal unsound Term.fls)

let test_negate_related_constraints_transitive () =
  let x = fresh8 "x" and y = fresh8 "y" in
  let path =
    path_of ~kind:(Term.int ~width:8 1) ~value:(Term.var x)
      ~constraints:
        [
          Term.eq (Term.var y) (Term.add (Term.var x) (Term.int ~width:8 1));
          Term.ult (Term.var y) (Term.const (b8 5));
        ]
  in
  let related = Negate.related_constraints path [ x.Term.id ] in
  Alcotest.(check int) "closure pulls in the y constraint" 2
    (List.length related)

(* negate is an under-approximation and, with the overlap check, has no
   false positives: any model of negate_path names a message the client
   path cannot produce. *)
let qcheck_negate_sound =
  let gen =
    QCheck2.Gen.(
      let* lo = int_range 0 120 in
      let* hi = int_range (lo + 1) 127 in
      let* kind = int_range 0 255 in
      return (lo, hi, kind))
  in
  QCheck2.Test.make ~name:"negate has no false positives" ~count:40 gen
    (fun (lo, hi, kind) ->
      let x = fresh8 "x" in
      let constraints =
        [
          Term.ule (Term.const (b8 lo)) (Term.var x);
          Term.ule (Term.var x) (Term.const (b8 hi));
        ]
      in
      let path =
        path_of ~kind:(Term.int ~width:8 kind) ~value:(Term.var x) ~constraints
      in
      let vars = server_vars () in
      let negation =
        Negate.negate_path ~layout:tiny ~server_vars:vars path
      in
      match Solver.get_model [ negation ] with
      | None -> true (* nothing claimed: trivially sound *)
      | Some model ->
          let witness_kind =
            match Model.find model vars.(0) with
            | Some (Model.Vbv v) -> Bv.to_int v
            | _ -> 0
          in
          let witness_val =
            match Model.find model vars.(1) with
            | Some (Model.Vbv v) -> Bv.to_int v
            | _ -> 0
          in
          (* the client produces exactly kind = [kind], value in [lo,hi] *)
          not (witness_kind = kind && witness_val >= lo && witness_val <= hi))

(* --- predicates ----------------------------------------------------------------- *)

let test_bind_to_server () =
  let x = fresh8 "x" in
  let path =
    path_of ~kind:(Term.int ~width:8 3) ~value:(Term.var x)
      ~constraints:[ Term.ult (Term.var x) (Term.const (b8 10)) ]
  in
  let vars = server_vars () in
  let binding = Predicate.bind_to_server ~server_vars:vars path in
  (* a server message with kind 3 and small value is compatible... *)
  Alcotest.(check bool) "compatible" true
    (Solver.is_sat
       (Term.eq (Term.var vars.(0)) (Term.int ~width:8 3)
       :: Term.eq (Term.var vars.(1)) (Term.int ~width:8 4)
       :: binding));
  (* ...but kind 4 is not *)
  Alcotest.(check bool) "incompatible kind" false
    (Solver.is_sat
       (Term.eq (Term.var vars.(0)) (Term.int ~width:8 4) :: binding))

let test_independent_fields () =
  let pc, _ =
    Client_extract.extract ~layout:Rw_example.layout [ Rw_example.client ]
  in
  (* unmasked, the checksum couples every field: nothing is independent *)
  let all = Predicate.independent_fields pc in
  Alcotest.(check bool) "crc is dependent" false (List.mem "crc" all);
  Alcotest.(check bool) "address coupled through crc" false
    (List.mem "address" all);
  (* with the checksum masked out (as the paper's evaluation does), the
     remaining fields decouple *)
  let masked =
    Predicate.independent_fields ~mask:[ "request"; "address"; "value" ] pc
  in
  Alcotest.(check bool) "address independent under mask" true
    (List.mem "address" masked);
  Alcotest.(check bool) "request independent under mask" true
    (List.mem "request" masked)

(* --- differentFrom ---------------------------------------------------------------- *)

let fsp_predicate =
  lazy (fst (Client_extract.extract ~layout:Fsp_model.layout (Fsp_model.clients ())))

let test_different_from_fsp () =
  let pc = Lazy.force fsp_predicate in
  let df, stats = Different_from.compute ~mask:Fsp_model.analysis_mask pc in
  Alcotest.(check bool) "cmd covered" true (Different_from.covers_field df "cmd");
  Alcotest.(check bool) "bb_len covered" true
    (Different_from.covers_field df "bb_len");
  Alcotest.(check bool) "some pair checks ran" true
    (stats.Different_from.pairs_checked > 0);
  (* paths 0..3 come from the first client (lengths 1..4), later ones from
     other clients; find two paths of the same client and two of different
     clients and check cmd/bb_len difference *)
  let paths = Array.of_list pc.Predicate.paths in
  let cmd_of i =
    match
      Term.const_value
        (Layout.field_term Fsp_model.layout paths.(i).Predicate.message "cmd")
    with
    | Some bv -> Bv.to_int bv
    | None -> -1
  in
  let len_of i =
    match
      Term.const_value
        (Layout.field_term Fsp_model.layout paths.(i).Predicate.message "bb_len")
    with
    | Some bv -> Bv.to_int bv
    | None -> -1
  in
  let same_cmd = ref None and diff_cmd = ref None in
  Array.iteri
    (fun i _ ->
      Array.iteri
        (fun j _ ->
          if i <> j then begin
            if cmd_of i = cmd_of j && !same_cmd = None then
              same_cmd := Some (i, j);
            if cmd_of i <> cmd_of j && !diff_cmd = None then
              diff_cmd := Some (i, j)
          end)
        paths)
    paths;
  (match !diff_cmd with
  | Some (i, j) ->
      Alcotest.(check bool) "different commands differ on cmd" true
        (Different_from.different df ~i ~j ~field:"cmd")
  | None -> Alcotest.fail "no differing-cmd pair");
  (match !same_cmd with
  | Some (i, j) ->
      Alcotest.(check bool) "same command: no cmd difference" false
        (Different_from.different df ~i ~j ~field:"cmd");
      if len_of i <> len_of j then
        Alcotest.(check bool) "different lengths differ on bb_len" true
          (Different_from.different df ~i ~j ~field:"bb_len")
  | None -> Alcotest.fail "no same-cmd pair")

(* --- search ------------------------------------------------------------------------ *)

let rw_analysis config =
  Achilles.analyze ~search_config:config ~layout:Rw_example.layout
    ~clients:[ Rw_example.client ] ~server:Rw_example.server ()

let rw_mask_config =
  { Search.default_config with Search.mask = Some [ "address" ] }

let test_search_rw_finds_trojan () =
  let analysis = rw_analysis rw_mask_config in
  let trojans = Achilles.trojans analysis in
  Alcotest.(check int) "one accepting trojan path" 1 (List.length trojans);
  let t = List.hd trojans in
  Alcotest.(check string) "on the READ path" "read" t.Search.accept_label;
  Alcotest.(check bool) "witness is a ground-truth trojan" true
    (Rw_example.is_trojan t.Search.witness);
  (* the WRITE path was pruned before reaching its accept marker *)
  Alcotest.(check bool) "a state was pruned" true
    (analysis.Achilles.report.Search.search_stats.Search.pruned_states >= 1)

let test_search_optimizations_equivalent () =
  (* all four on/off combinations of the two §3.3 optimizations find the
     same Trojans on the working example *)
  let label_sets =
    List.map
      (fun (drop_alive, use_df) ->
        let config =
          {
            rw_mask_config with
            Search.drop_alive = drop_alive;
            Search.use_different_from = use_df;
          }
        in
        let analysis = rw_analysis config in
        List.map
          (fun (t : Search.trojan) ->
            (t.Search.accept_label, Rw_example.is_trojan t.Search.witness))
          (Achilles.trojans analysis))
      [ (true, true); (true, false); (false, true); (false, false) ]
  in
  match label_sets with
  | first :: rest ->
      List.iteri
        (fun i other ->
          Alcotest.(check (list (pair string bool)))
            (Printf.sprintf "config %d equivalent" (i + 1))
            first other)
        rest
  | [] -> assert false

let test_search_no_pruning_still_correct () =
  let config = { rw_mask_config with Search.prune_no_trojan = false } in
  let analysis = rw_analysis config in
  (* without pruning, the WRITE path reaches its accept marker but yields no
     witness (its Trojan query is unsatisfiable) *)
  Alcotest.(check int) "both paths accept" 2
    analysis.Achilles.report.Search.search_stats.Search.accepting_paths;
  let trojans = Achilles.trojans analysis in
  Alcotest.(check int) "still exactly one trojan" 1 (List.length trojans);
  Alcotest.(check bool) "and it is real" true
    (Rw_example.is_trojan (List.hd trojans).Search.witness)

let test_search_alive_samples_decrease () =
  let analysis = rw_analysis rw_mask_config in
  let samples =
    analysis.Achilles.report.Search.search_stats.Search.alive_samples
  in
  Alcotest.(check bool) "samples recorded" true (List.length samples > 0);
  List.iter
    (fun (s : Search.alive_sample) ->
      Alcotest.(check bool) "alive bounded by client paths" true
        (s.Search.alive <= 2))
    samples

let test_search_witness_enumeration () =
  let config =
    {
      rw_mask_config with
      Search.witnesses_per_path = 5 (* block exact bytes between witnesses *);
    }
  in
  let analysis = rw_analysis config in
  let trojans = Achilles.trojans analysis in
  Alcotest.(check int) "five distinct witnesses" 5 (List.length trojans);
  let distinct =
    List.sort_uniq compare
      (List.map
         (fun (t : Search.trojan) ->
           Array.to_list (Array.map Bv.value t.Search.witness))
         trojans)
  in
  Alcotest.(check int) "all different" 5 (List.length distinct);
  List.iter
    (fun (t : Search.trojan) ->
      Alcotest.(check bool) "each is a ground-truth trojan" true
        (Rw_example.is_trojan t.Search.witness))
    trojans

(* --- local state -------------------------------------------------------------------- *)

let paxos_config interp =
  {
    Search.default_config with
    Search.mask = Some [ "mtype"; "ballot"; "value" ];
    Search.interp = interp;
  }

let paxos_trojans interp ~clients =
  let analysis =
    Achilles.analyze
      ~search_config:(paxos_config interp)
      ~layout:Paxos_model.layout ~clients ~server:Paxos_model.acceptor ()
  in
  Achilles.trojans analysis

let test_local_state_concrete () =
  (* acceptor promised ballot 5, proposers locked on value 7: Accepts with
     value <> 7 are Trojan *)
  let interp =
    Local_state.concrete ~prefix:(Paxos_model.phase1_prefix ~ballot:5)
      Interp.default_config
  in
  let trojans =
    paxos_trojans interp ~clients:[ Paxos_model.proposer_concrete ~value:7 ]
  in
  Alcotest.(check bool) "found trojans" true (trojans <> []);
  List.iter
    (fun (t : Search.trojan) ->
      Alcotest.(check bool) "value <> 7, ballot >= 5" true
        (Paxos_model.is_phase2_trojan ~promised:5 ~chosen_value:7
           t.Search.witness
        || (* prepare-side trojans are possible too: any prepare with a high
              ballot is generable... the proposer only sends Accept, so
              Prepare messages are all Trojan *)
        Bv.to_int
          (Layout.field_value Paxos_model.layout t.Search.witness "mtype")
        = Paxos_model.msg_prepare))
    trojans

let test_local_state_constructed_symbolic () =
  (* run the symbolic proposer once; its Accept (with symbolic value V)
     becomes round 1, binding the acceptor's... in this simple acceptor the
     interesting part is that the analysis still completes and finds value
     Trojans for the fresh round-2 message *)
  let pc, _ =
    Client_extract.extract ~layout:Paxos_model.layout
      [ Paxos_model.proposer_symbolic ]
  in
  Alcotest.(check bool) "proposer captured" true (pc.Predicate.paths <> []);
  let first = List.hd pc.Predicate.paths in
  let rounds =
    [
      {
        State.dst = Term.int ~width:8 0;
        State.payload = first.Predicate.message;
        State.path_at_send = List.rev first.Predicate.constraints;
        State.during_analysis = false;
      };
    ]
  in
  let interp = Local_state.constructed_symbolic ~rounds Interp.default_config in
  let trojans =
    paxos_trojans interp ~clients:[ Paxos_model.proposer_concrete ~value:7 ]
  in
  Alcotest.(check bool) "analysis completes with symbolic round" true
    (trojans <> [])

let test_local_state_over_approximate () =
  let interp =
    Local_state.over_approximate
      ~vars:[ ("promised", 16) ]
      ~constrain:(fun m ->
        [
          Term.ule
            (State.String_map.find "promised" m)
            (Term.int ~width:16 10);
        ])
      Interp.default_config
  in
  let trojans =
    paxos_trojans interp ~clients:[ Paxos_model.proposer_concrete ~value:7 ]
  in
  Alcotest.(check bool) "found trojans under symbolic state" true
    (trojans <> [])

(* --- report helpers ------------------------------------------------------------------- *)

let test_discovery_curve () =
  let mk found_at =
    {
      Search.server_state_id = 0;
      accept_label = "a";
      witness = [||];
      symbolic = [];
      msg_vars = [||];
      confirmed = true;
      found_at;
    }
  in
  let curve = Report.discovery_curve ~total:4 [ mk 1.0; mk 2.0; mk 3.0 ] in
  Alcotest.(check int) "three points" 3 (List.length curve);
  Alcotest.(check (float 0.01)) "last point at 75%" 75.
    (snd (List.nth curve 2));
  let ascii = Report.render_ascii_curve curve in
  Alcotest.(check bool) "plot rendered" true (String.length ascii > 0)

let () =
  let qsuite name tests =
    (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)
  in
  Alcotest.run "core"
    [
      ( "negate",
        [
          Alcotest.test_case "constant field" `Quick test_negate_constant_field;
          Alcotest.test_case "constrained field" `Quick
            test_negate_constrained_symbolic_field;
          Alcotest.test_case "abandons unconstrained" `Quick
            test_negate_abandons_unconstrained;
          Alcotest.test_case "overlap discard" `Quick
            test_negate_path_overlap_discard;
          Alcotest.test_case "transitive constraints" `Quick
            test_negate_related_constraints_transitive;
        ] );
      qsuite "negate-properties" [ qcheck_negate_sound ];
      ( "predicate",
        [
          Alcotest.test_case "bind to server" `Quick test_bind_to_server;
          Alcotest.test_case "independent fields" `Quick test_independent_fields;
        ] );
      ( "different-from",
        [ Alcotest.test_case "fsp matrix" `Slow test_different_from_fsp ] );
      ( "search",
        [
          Alcotest.test_case "rw trojan found" `Quick test_search_rw_finds_trojan;
          Alcotest.test_case "optimizations equivalent" `Slow
            test_search_optimizations_equivalent;
          Alcotest.test_case "no pruning still correct" `Quick
            test_search_no_pruning_still_correct;
          Alcotest.test_case "alive samples" `Quick
            test_search_alive_samples_decrease;
          Alcotest.test_case "witness enumeration" `Quick
            test_search_witness_enumeration;
        ] );
      ( "local-state",
        [
          Alcotest.test_case "concrete" `Quick test_local_state_concrete;
          Alcotest.test_case "constructed symbolic" `Quick
            test_local_state_constructed_symbolic;
          Alcotest.test_case "over-approximate" `Quick
            test_local_state_over_approximate;
        ] );
      ( "report",
        [ Alcotest.test_case "discovery curve" `Quick test_discovery_curve ] );
    ]
