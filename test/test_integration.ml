(* End-to-end integration tests: the paper's headline results, run whole.

   - §6.2 / Table 1: Achilles on bounded FSP finds all 80 Trojan message
     types with zero false positives.
   - Figure 10: discovery is incremental and monotone.
   - Figure 11: the alive-set size shrinks as server paths lengthen.
   - §6.2 PBFT: the MAC-attack Trojan, rediscovered in seconds, and its
     witnesses drive the recovery protocol in a live deployment.
   - §6.3: a discovered wildcard Trojan really manipulates the file store. *)

open Achilles_smt
open Achilles_core
open Achilles_runtime
open Achilles_symvm
open Achilles_targets

let fsp_analysis =
  lazy
    (let config =
       {
         Search.default_config with
         Search.mask = Some Fsp_model.analysis_mask;
         Search.witnesses_per_path = 16;
         Search.distinct_by = Some Fsp_model.block_class;
       }
     in
     Achilles.analyze ~search_config:config ~layout:Fsp_model.layout
       ~clients:(Fsp_model.clients ()) ~server:Fsp_model.server ())

let trojan_classes analysis =
  List.filter_map
    (fun (t : Search.trojan) ->
      match Fsp_model.classify t.Search.witness with
      | Fsp_model.Trojan cls -> Some cls
      | Fsp_model.Valid _ | Fsp_model.Rejected -> None)
    (Achilles.trojans analysis)
  |> List.sort_uniq compare

let test_table1_achilles () =
  let analysis = Lazy.force fsp_analysis in
  let trojans = Achilles.trojans analysis in
  let classes = trojan_classes analysis in
  (* all 80 ground-truth types, nothing else *)
  Alcotest.(check int) "80 true positives" 80 (List.length classes);
  Alcotest.(check int) "no false positives" 80 (List.length trojans);
  List.iter
    (fun cls ->
      Alcotest.(check bool) "class is ground truth" true
        (List.mem cls Fsp_model.all_trojan_classes))
    classes;
  (* witnesses replay cleanly on the live server *)
  let confirmation = Inject.confirm ~server:Fsp_model.server trojans in
  Alcotest.(check int) "all accepted live" 0 confirmation.Inject.rejected

let test_figure10_discovery_curve () =
  let analysis = Lazy.force fsp_analysis in
  let trojans = Achilles.trojans analysis in
  let curve = Report.discovery_curve ~total:80 trojans in
  Alcotest.(check int) "one point per witness" 80 (List.length curve);
  (* timestamps are non-decreasing and percentages climb to 100 *)
  let rec monotone = function
    | (t1, p1) :: ((t2, p2) :: _ as rest) ->
        t1 <= t2 && p1 <= p2 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (monotone curve);
  Alcotest.(check (float 0.01)) "reaches 100%" 100. (snd (List.nth curve 79))

let test_figure11_alive_decay () =
  let analysis = Lazy.force fsp_analysis in
  let samples =
    analysis.Achilles.report.Search.search_stats.Search.alive_samples
  in
  Alcotest.(check bool) "enough samples" true (List.length samples >= 30);
  (* average alive-count over short paths must exceed the average over long
     paths: the specialization effect of Figure 11 *)
  let lengths = List.map (fun (s : Search.alive_sample) -> s.Search.path_length) samples in
  let max_len = List.fold_left max 0 lengths in
  let avg p =
    let xs = List.filter p samples in
    if xs = [] then 0.
    else
      List.fold_left
        (fun acc (s : Search.alive_sample) -> acc +. float_of_int s.Search.alive)
        0. xs
      /. float_of_int (List.length xs)
  in
  let early = avg (fun s -> s.Search.path_length <= max_len / 3) in
  let late = avg (fun s -> s.Search.path_length > 2 * max_len / 3) in
  Alcotest.(check bool)
    (Printf.sprintf "alive decays (early %.1f > late %.1f)" early late)
    true (early > late)

let test_timing_shape () =
  let analysis = Lazy.force fsp_analysis in
  let t = analysis.Achilles.timing in
  (* §6.2: server analysis dominates (45 of 63 minutes in the paper); our
     signature memoization collapses the preprocessing phase, so the raw
     (paper-faithful) cost is measured separately *)
  Alcotest.(check bool) "server analysis dominates" true
    (t.Achilles.server_analysis > t.Achilles.client_extraction
    && t.Achilles.server_analysis > t.Achilles.preprocessing);
  let _, raw =
    Different_from.compute ~memoize:false ~mask:Fsp_model.analysis_mask
      analysis.Achilles.client
  in
  Alcotest.(check bool) "raw preprocessing beats client extraction" true
    (raw.Different_from.wall_time > t.Achilles.client_extraction)

let test_pbft_end_to_end () =
  let interp =
    Local_state.over_approximate ~vars:[ ("last_rid", 16) ]
      Interp.default_config
  in
  let config =
    {
      Search.default_config with
      Search.mask = Some Pbft_model.analysis_mask;
      Search.interp = interp;
      Search.witnesses_per_path = 3;
    }
  in
  let t0 = Unix.gettimeofday () in
  let analysis =
    Achilles.analyze ~search_config:config ~layout:Pbft_model.layout
      ~clients:[ Pbft_model.client ] ~server:Pbft_model.replica ()
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let trojans = Achilles.trojans analysis in
  (* "a few seconds" in the paper; our bounded model is faster still *)
  Alcotest.(check bool) "completes quickly" true (elapsed < 30.);
  Alcotest.(check bool) "trojans on both accepting paths" true
    (List.length trojans >= 2);
  (* every witness is the MAC attack *)
  List.iter
    (fun (t : Search.trojan) ->
      Alcotest.(check bool) "MAC trojan" true
        (Pbft_model.is_mac_trojan t.Search.witness))
    trojans;
  (* drive a witness into a live deployment: recovery fires *)
  let deploy = Pbft_deploy.create () in
  let witness = (List.hd trojans).Search.witness in
  (* make the rid definitely fresh for the live replica *)
  let f = Layout.field Pbft_model.layout "rid" in
  witness.(f.Layout.offset) <- Bv.of_int ~width:8 0xFF;
  witness.(f.Layout.offset + 1) <- Bv.of_int ~width:8 0xFF;
  let r = Pbft_deploy.submit deploy witness in
  Alcotest.(check bool) "live replica accepts and recovery fires" true
    r.Pbft_deploy.recovery

(* The multicore determinism guarantee on the headline workload: a 4-domain
   FSP analysis produces byte-identical Figure 10 / Figure 11 data to the
   sequential one, and both match pinned golden digests (reproducible
   because the runs start from a reset solver and fresh-variable counter).
   The digests cover no wall-clock fields — see {!Report.report_digest}. *)
let golden_fig10_digest = "075ddf0b4c175bc33c01d12bc70ab018"
let golden_fig11_digest = "0f7bc3f897fc2fdb28e2d2e7bf624c9c"

let test_multicore_golden_digests () =
  let run domains =
    Solver.reset_all_for_tests ();
    Term.reset_fresh_counter ();
    let config =
      {
        Search.default_config with
        Search.mask = Some Fsp_model.analysis_mask;
        Search.witnesses_per_path = 16;
        Search.distinct_by = Some Fsp_model.block_class;
        Search.domains;
      }
    in
    Achilles.analyze ~search_config:config ~layout:Fsp_model.layout
      ~clients:(Fsp_model.clients ()) ~server:Fsp_model.server ()
  in
  let a1 = run 1 and a4 = run 4 in
  let fig10 (a : Achilles.analysis) = Report.discovery_digest a.Achilles.report in
  let fig11 (a : Achilles.analysis) =
    Report.alive_digest a.Achilles.report.Search.search_stats
  in
  Alcotest.(check string) "Fig 10 series: 4 domains = sequential" (fig10 a1)
    (fig10 a4);
  Alcotest.(check string) "Fig 11 samples: 4 domains = sequential" (fig11 a1)
    (fig11 a4);
  Alcotest.(check string) "Fig 10 golden digest" golden_fig10_digest (fig10 a4);
  Alcotest.(check string) "Fig 11 golden digest" golden_fig11_digest (fig11 a4);
  Alcotest.(check string) "full report agrees too"
    (Report.report_digest a1.Achilles.report)
    (Report.report_digest a4.Achilles.report)

let test_wildcard_trojan_via_analysis () =
  (* with globbing-aware clients, the analysis must produce a witness with a
     literal '*' in the path — the wildcard bug found by Achilles *)
  let config =
    {
      Search.default_config with
      Search.mask = Some Fsp_model.analysis_mask;
      Search.witnesses_per_path = 40;
      Search.distinct_by = None (* block exact bytes to explore classes *);
    }
  in
  let clients =
    [ Fsp_model.client ~model_globbing:true (List.hd Fsp_model.commands) ]
  in
  let analysis =
    Achilles.analyze ~search_config:config ~layout:Fsp_model.layout ~clients
      ~server:Fsp_model.server ()
  in
  let trojans = Achilles.trojans analysis in
  let wildcarded =
    List.filter
      (fun (t : Search.trojan) -> Fsp_model.contains_wildcard t.Search.witness)
      trojans
  in
  Alcotest.(check bool) "found a wildcard witness" true (wildcarded <> [])

let () =
  Alcotest.run "integration"
    [
      ( "fsp",
        [
          Alcotest.test_case "Table 1 (Achilles side)" `Slow test_table1_achilles;
          Alcotest.test_case "Figure 10 curve" `Slow test_figure10_discovery_curve;
          Alcotest.test_case "Figure 11 decay" `Slow test_figure11_alive_decay;
          Alcotest.test_case "timing shape" `Slow test_timing_shape;
          Alcotest.test_case "wildcard bug" `Slow test_wildcard_trojan_via_analysis;
          Alcotest.test_case "multicore golden digests" `Slow
            test_multicore_golden_digests;
        ] );
      ( "pbft",
        [ Alcotest.test_case "MAC attack end to end" `Slow test_pbft_end_to_end ] );
    ]
