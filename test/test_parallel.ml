(* The multicore search machinery: the domain pool, the thread-safety of the
   per-domain solver layer, and the headline determinism guarantee — any
   [domains] setting produces the identical report, checked here on random
   client/server pairs and on the degenerate cases. *)

open Achilles_smt
open Achilles_symvm
open Achilles_core
open Achilles_targets

(* --- the domain pool --------------------------------------------------------- *)

let test_pool_map () =
  Pool.with_pool ~domains:3 (fun pool ->
      let input = Array.init 20 (fun i -> i + 1) in
      let squares = Pool.parallel_map pool (fun x -> x * x) input in
      Alcotest.(check (array int))
        "squares by index"
        (Array.map (fun x -> x * x) input)
        squares;
      (* the pool survives several batches *)
      let doubles = Pool.parallel_map pool (fun x -> 2 * x) input in
      Alcotest.(check int) "second batch" 40 doubles.(19))

let test_pool_empty () =
  Pool.with_pool ~domains:2 (fun pool ->
      Alcotest.(check (array int))
        "empty batch" [||]
        (Pool.parallel_map pool (fun x -> x) [||]);
      Pool.run_tasks pool [||];
      Alcotest.(check int) "still two workers" 2 (Pool.size pool))

exception Task_failed of int

let test_pool_exception () =
  Pool.with_pool ~domains:2 (fun pool ->
      let ran = Array.make 6 false in
      (* the failing task's exception must reach the submitter — and the
         whole batch must still drain, not hang *)
      (match
         Pool.parallel_map pool
           (fun i ->
             ran.(i) <- true;
             if i = 2 || i = 4 then raise (Task_failed i))
           (Array.init 6 Fun.id)
       with
      | _ -> Alcotest.fail "expected the task exception to propagate"
      | exception Task_failed i ->
          Alcotest.(check int) "lowest failing index wins" 2 i);
      Alcotest.(check bool) "batch drained" true (Array.for_all Fun.id ran);
      (* and the pool remains usable afterwards *)
      let r = Pool.parallel_map pool (fun x -> x + 1) [| 1; 2; 3 |] in
      Alcotest.(check (array int)) "pool usable after failure" [| 2; 3; 4 |] r)

let test_pool_shutdown () =
  let pool = Pool.create ~domains:2 in
  let r = Pool.parallel_map pool (fun x -> x * 10) [| 1; 2 |] in
  Alcotest.(check (array int)) "ran" [| 10; 20 |] r;
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  (match Pool.parallel_map pool (fun x -> x) [| 1 |] with
  | _ -> Alcotest.fail "expected Invalid_argument after shutdown"
  | exception Invalid_argument _ -> ());
  match Pool.create ~domains:0 with
  | _ -> Alcotest.fail "expected Invalid_argument for zero domains"
  | exception Invalid_argument _ -> ()

(* --- solver thread-safety ----------------------------------------------------- *)

(* Four domains hammer overlapping sat/unsat queries; every model must
   satisfy its own query, and the per-domain statistics must sum to the
   aggregate snapshot. *)
let test_solver_stress () =
  Solver.reset_all_for_tests ();
  let x = Term.fresh_var ~name:"stress_x" (Term.Bitvec 8) in
  let y = Term.fresh_var ~name:"stress_y" (Term.Bitvec 8) in
  let sat_query i =
    [
      Term.ugt (Term.var x) (Term.int ~width:8 i);
      Term.ult (Term.var x) (Term.int ~width:8 (i + 40));
      Term.eq
        (Term.band (Term.var y) (Term.int ~width:8 1))
        (Term.int ~width:8 (i land 1));
    ]
  in
  let unsat_query i =
    [
      Term.ult (Term.var x) (Term.int ~width:8 i);
      Term.ugt (Term.var x) (Term.int ~width:8 (i + 40));
    ]
  in
  let tasks = 8 and rounds = 5 in
  let before = (Solver.aggregate_stats ()).Solver.queries in
  let results =
    Pool.with_pool ~domains:4 (fun pool ->
        Pool.parallel_map pool
          (fun t ->
            let ok = ref true in
            for r = 0 to rounds - 1 do
              let i = ((t + r) mod 6) + 1 in
              (match Solver.check (sat_query i) with
              | Solver.Sat model ->
                  if not (Model.satisfies model (sat_query i)) then ok := false
              | Solver.Unsat | Solver.Unknown -> ok := false);
              if Solver.is_sat (unsat_query i) then ok := false
            done;
            !ok)
          (Array.init tasks Fun.id))
  in
  Alcotest.(check bool)
    "all answers correct, all models satisfy their query" true
    (Array.for_all Fun.id results);
  let after = (Solver.aggregate_stats ()).Solver.queries in
  Alcotest.(check int)
    "per-domain query counts sum to the aggregate" (tasks * rounds * 2)
    (after - before)

(* Statistics are domain-local: a worker's queries never leak into the main
   domain's record, [reset_stats] only touches the caller, and
   [reset_all_for_tests] wipes everyone. *)
let test_stats_isolation () =
  Solver.reset_all_for_tests ();
  let x = Term.fresh_var ~name:"iso_x" (Term.Bitvec 8) in
  let q = [ Term.ult (Term.var x) (Term.int ~width:8 5) ] in
  ignore (Solver.is_sat q);
  Alcotest.(check int) "main counts its query" 1 (Solver.stats ()).Solver.queries;
  let worker =
    Domain.spawn (fun () ->
        ignore (Solver.is_sat q);
        ignore (Solver.is_sat q);
        ignore
          (Solver.is_unsat
             [
               Term.ult (Term.var x) (Term.int ~width:8 3);
               Term.ugt (Term.var x) (Term.int ~width:8 9);
             ]);
        (Solver.stats ()).Solver.queries)
  in
  let worker_queries = Domain.join worker in
  Alcotest.(check int) "worker saw only its own" 3 worker_queries;
  Alcotest.(check int) "main unchanged by the worker" 1
    (Solver.stats ()).Solver.queries;
  Alcotest.(check int) "aggregate sums both" 4
    (Solver.aggregate_stats ()).Solver.queries;
  Solver.reset_stats ();
  Alcotest.(check int) "reset_stats clears the caller" 0
    (Solver.stats ()).Solver.queries;
  Alcotest.(check int) "…but not the worker's record" 3
    (Solver.aggregate_stats ()).Solver.queries;
  Solver.reset_all_for_tests ();
  Alcotest.(check int) "reset_all clears every domain" 0
    (Solver.aggregate_stats ()).Solver.queries

(* --- determinism: random client/server pairs ---------------------------------- *)

let message_size = 3

let layout =
  Layout.make ~name:"par" [ ("tag", 1); ("a", 1); ("b", 1) ]

(* A random server is a binary decision tree over the three message bytes;
   a random client pins each field to a constant or bounds it from above. *)
type tree =
  | Leaf of bool (* accept? *)
  | Node of { field : int; op : int; konst : int; t : tree; f : tree }

type field_spec = Fconst of int | Fbounded of int

let tree_gen =
  QCheck2.Gen.(
    sized_size (int_range 1 3) @@ fix (fun self depth ->
        let leaf = map (fun b -> Leaf b) bool in
        if depth = 0 then leaf
        else
          frequency
            [
              (1, leaf);
              ( 3,
                let* field = int_range 0 (message_size - 1) in
                let* op = int_range 0 3 in
                let* konst = int_range 0 7 in
                let* t = self (depth - 1) in
                let* f = self (depth - 1) in
                return (Node { field; op; konst; t; f }) );
            ]))

let client_gen =
  QCheck2.Gen.(
    list_size (int_range 1 2)
      (list_repeat message_size
         (oneof
            [
              map (fun c -> Fconst c) (int_range 0 7);
              map (fun hi -> Fbounded hi) (int_range 0 7);
            ])))

let case_gen = QCheck2.Gen.pair tree_gen client_gen

let server_of_tree tree =
  let open Builder in
  let labels = ref 0 in
  let next () =
    incr labels;
    string_of_int !labels
  in
  let rec block = function
    | Leaf true -> [ mark_accept ("ok" ^ next ()) ]
    | Leaf false -> [ mark_reject ("no" ^ next ()) ]
    | Node { field; op; konst; t; f } ->
        let byte = load "msg" (i8 field) in
        let cond =
          match op with
          | 0 -> byte =: i8 konst
          | 1 -> byte <>: i8 konst
          | 2 -> byte <: i8 konst
          | _ -> byte >: i8 konst
        in
        [ if_ cond (block t) (block f) ]
  in
  prog "gen-server"
    ~buffers:[ ("msg", message_size) ]
    (receive "msg" :: block tree)

let client_of_spec idx spec =
  let open Builder in
  let body =
    List.concat
      (List.mapi
         (fun i fs ->
           match fs with
           | Fconst c -> [ store "msg" (i8 i) (i8 c) ]
           | Fbounded hi ->
               let name = Printf.sprintf "in%d_%d" idx i in
               [
                 read_input name ~width:8;
                 when_ (v name >: i8 hi) [ halt ];
                 store "msg" (i8 i) (v name);
               ])
         spec)
    @ [ send (i8 0) "msg" ]
  in
  prog (Printf.sprintf "gen-client%d" idx) ~buffers:[ ("msg", message_size) ] body

let digest_at ~domains ?split_bits ~base client server =
  (* identical starting state for every run: empty caches, zeroed stats,
     and the fresh-variable counter back where extraction left it *)
  Solver.reset_all_for_tests ();
  Term.set_fresh_counter base;
  let config =
    {
      Search.default_config with
      Search.domains;
      Search.split_bits;
      Search.witnesses_per_path = 2;
    }
  in
  Report.report_digest (Search.run ~config ~client ~server ())

let qcheck_parallel_determinism =
  QCheck2.Test.make
    ~name:"reports are identical for domains 1, 2 and 4" ~count:15 case_gen
    (fun (tree, client_specs) ->
      let server = server_of_tree tree in
      let clients = List.mapi client_of_spec client_specs in
      Solver.reset_all_for_tests ();
      Term.reset_fresh_counter ();
      let client, _ = Client_extract.extract ~layout clients in
      let base = Term.fresh_counter_value () in
      let reference = digest_at ~domains:1 ~base client server in
      List.for_all
        (fun (domains, split_bits) ->
          digest_at ~domains ?split_bits ~base client server = reference)
        [ (2, None); (4, None); (4, Some 4); (3, Some 1) ])

(* The empty-frontier degenerate case: a server that never forks gives every
   shard the same spine, exactly one shard owns it, and the merged report
   still matches the sequential one. *)
let test_parallel_no_forks () =
  let open Builder in
  let server =
    prog "reject-all"
      ~buffers:[ ("msg", message_size) ]
      [ receive "msg"; mark_reject "always" ]
  in
  let spec = [ [ Fconst 1; Fconst 2; Fconst 3 ] ] in
  let clients = List.mapi client_of_spec spec in
  Solver.reset_all_for_tests ();
  Term.reset_fresh_counter ();
  let client, _ = Client_extract.extract ~layout clients in
  let base = Term.fresh_counter_value () in
  let d1 = digest_at ~domains:1 ~base client server in
  let d4 = digest_at ~domains:4 ~base client server in
  Alcotest.(check string) "fork-free server: domains 1 = domains 4" d1 d4

(* The differentFrom precompute distributed over a pool must equal the
   sequential one in every observable: matrix cells, the pair-check count,
   and even the fresh-variable ids consumed. *)
let test_different_from_pool () =
  Solver.reset_all_for_tests ();
  Term.reset_fresh_counter ();
  let pc, _ =
    Client_extract.extract ~layout:Fsp_model.layout (Fsp_model.clients ())
  in
  let base = Term.fresh_counter_value () in
  let seq_t, seq_stats =
    Different_from.compute ~mask:Fsp_model.analysis_mask pc
  in
  let seq_counter = Term.fresh_counter_value () in
  Solver.reset_all_for_tests ();
  Term.set_fresh_counter base;
  let par_t, par_stats =
    Pool.with_pool ~domains:4 (fun pool ->
        Different_from.compute ~mask:Fsp_model.analysis_mask ~pool pc)
  in
  Alcotest.(check int) "same pair-check count"
    seq_stats.Different_from.pairs_checked par_stats.Different_from.pairs_checked;
  Alcotest.(check int) "same fresh variables consumed" seq_counter
    (Term.fresh_counter_value ());
  Alcotest.(check (list string)) "same fields covered"
    seq_stats.Different_from.fields_covered
    par_stats.Different_from.fields_covered;
  let n = Predicate.client_path_count pc in
  List.iter
    (fun field ->
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if
            Different_from.different seq_t ~i ~j ~field
            <> Different_from.different par_t ~i ~j ~field
          then
            Alcotest.failf "matrix mismatch at field %s cell (%d, %d)" field i j
        done
      done)
    seq_stats.Different_from.fields_covered

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "parallel_map" `Quick test_pool_map;
          Alcotest.test_case "empty batch" `Quick test_pool_empty;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown;
        ] );
      ( "solver",
        [
          Alcotest.test_case "4-domain stress" `Quick test_solver_stress;
          Alcotest.test_case "stats isolation" `Quick test_stats_isolation;
        ] );
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest ~verbose:false qcheck_parallel_determinism;
          Alcotest.test_case "no forks" `Quick test_parallel_no_forks;
          Alcotest.test_case "differentFrom over a pool" `Quick
            test_different_from_pool;
        ] );
    ]
