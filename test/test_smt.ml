(* Tests for the SMT substrate: bitvectors, terms, the SAT solver, the
   bitblaster and the solver front end. *)

open Achilles_smt

let bv = Alcotest.testable Bv.pp Bv.equal

(* --- Bv ------------------------------------------------------------------- *)

let test_bv_arith () =
  let x = Bv.of_int ~width:8 200 and y = Bv.of_int ~width:8 100 in
  Alcotest.(check bv) "add wraps" (Bv.of_int ~width:8 44) (Bv.add x y);
  Alcotest.(check bv) "sub wraps" (Bv.of_int ~width:8 156) (Bv.sub y x);
  Alcotest.(check bv) "mul wraps" (Bv.of_int ~width:8 32) (Bv.mul x y);
  Alcotest.(check bv) "udiv" (Bv.of_int ~width:8 2) (Bv.udiv x y);
  Alcotest.(check bv) "urem" (Bv.of_int ~width:8 0) (Bv.urem x y);
  Alcotest.(check bv) "udiv by zero is ones" (Bv.ones 8)
    (Bv.udiv x (Bv.zero 8));
  Alcotest.(check bv) "urem by zero is lhs" x (Bv.urem x (Bv.zero 8))

let test_bv_signed () =
  let minus_one = Bv.ones 8 in
  Alcotest.(check int64) "sign extension" (-1L) (Bv.to_signed_int64 minus_one);
  Alcotest.(check bool) "slt: -1 < 0" true (Bv.slt minus_one (Bv.zero 8));
  Alcotest.(check bool) "ult: 255 > 0" false (Bv.ult minus_one (Bv.zero 8));
  Alcotest.(check bv) "ashr fills sign"
    (Bv.ones 8)
    (Bv.ashr minus_one (Bv.of_int ~width:8 3));
  Alcotest.(check bv) "sign_extend negative"
    (Bv.of_int ~width:16 0xFFFF)
    (Bv.sign_extend ~by:8 minus_one)

let test_bv_slices () =
  let v = Bv.of_int ~width:16 0xBEEF in
  Alcotest.(check bv) "extract low byte" (Bv.of_int ~width:8 0xEF)
    (Bv.extract ~hi:7 ~lo:0 v);
  Alcotest.(check bv) "extract high byte" (Bv.of_int ~width:8 0xBE)
    (Bv.extract ~hi:15 ~lo:8 v);
  Alcotest.(check bv) "concat round-trips" v
    (Bv.concat (Bv.extract ~hi:15 ~lo:8 v) (Bv.extract ~hi:7 ~lo:0 v));
  Alcotest.(check bool) "bit 0" true (Bv.bit v 0);
  Alcotest.(check bool) "bit 4" false (Bv.bit v 4)

let test_bv_shifts_saturate () =
  let v = Bv.of_int ~width:8 0x81 in
  Alcotest.(check bv) "shl past width" (Bv.zero 8)
    (Bv.shl v (Bv.of_int ~width:8 8));
  Alcotest.(check bv) "lshr past width" (Bv.zero 8)
    (Bv.lshr v (Bv.of_int ~width:8 200));
  Alcotest.(check bv) "ashr past width, negative" (Bv.ones 8)
    (Bv.ashr v (Bv.of_int ~width:8 200))

(* --- Term ----------------------------------------------------------------- *)

let t8 n = Term.int ~width:8 n

let test_term_folding () =
  Alcotest.(check bool) "const add folds" true
    (Term.equal (Term.add (t8 3) (t8 4)) (t8 7));
  Alcotest.(check bool) "and true" true
    (Term.equal (Term.and_ Term.tru Term.fls) Term.fls);
  let v = Term.var (Term.fresh_var ~name:"x" (Term.Bitvec 8)) in
  Alcotest.(check bool) "x + 0 = x" true (Term.equal (Term.add v (t8 0)) v);
  Alcotest.(check bool) "x * 0 = 0" true (Term.equal (Term.mul v (t8 0)) (t8 0));
  Alcotest.(check bool) "eq x x folds" true (Term.equal (Term.eq v v) Term.tru);
  Alcotest.(check bool) "ult x x folds" true
    (Term.equal (Term.ult v v) Term.fls);
  Alcotest.(check bool) "not not x" true
    (Term.equal (Term.not_ (Term.not_ (Term.eq v (t8 1)))) (Term.eq v (t8 1)))

let test_term_extract_rules () =
  let v = Term.var (Term.fresh_var ~name:"y" (Term.Bitvec 16)) in
  let full = Term.extract ~hi:15 ~lo:0 v in
  Alcotest.(check bool) "full extract is identity" true (Term.equal full v);
  let lo = Term.extract ~hi:7 ~lo:0 v in
  let nested = Term.extract ~hi:3 ~lo:2 lo in
  Alcotest.(check bool) "nested extracts fuse" true
    (Term.equal nested (Term.extract ~hi:3 ~lo:2 v));
  let w8 = Term.var (Term.fresh_var (Term.Bitvec 8)) in
  let cat = Term.concat v w8 (* v is high, w8 is low *) in
  Alcotest.(check bool) "extract of concat (low part)" true
    (Term.equal (Term.extract ~hi:7 ~lo:0 cat) w8);
  Alcotest.(check bool) "extract of concat (high part)" true
    (Term.equal (Term.extract ~hi:23 ~lo:8 cat) v)

let test_term_sorts () =
  let v = Term.var (Term.fresh_var (Term.Bitvec 8)) in
  Alcotest.check_raises "adding bool raises"
    (Term.Sort_error "add: incompatible sorts Bool and Bv8") (fun () ->
      ignore (Term.add Term.tru v));
  Alcotest.(check int) "width_of" 8 (Term.width_of v);
  Alcotest.(check bool) "sort of comparison" true
    (Term.sort_equal Term.Bool (Term.sort_of (Term.ult v (t8 1))))

let test_term_subst () =
  let x = Term.fresh_var ~name:"x" (Term.Bitvec 8) in
  let t = Term.add (Term.var x) (t8 1) in
  let replaced = Term.subst (fun v -> if v.id = x.id then Some (t8 41) else None) t in
  Alcotest.(check bool) "subst then fold" true (Term.equal replaced (t8 42))

let test_term_vars () =
  let x = Term.fresh_var ~name:"x" (Term.Bitvec 8) in
  let y = Term.fresh_var ~name:"y" (Term.Bitvec 8) in
  let t = Term.ult (Term.add (Term.var x) (Term.var y)) (Term.var x) in
  let ids = Term.var_ids t in
  Alcotest.(check (list int)) "distinct var ids" [ x.id; y.id ] ids;
  Alcotest.(check bool) "mentions x" true (Term.mentions t x);
  let z = Term.fresh_var (Term.Bitvec 8) in
  Alcotest.(check bool) "does not mention z" false (Term.mentions t z)

(* --- Sat ------------------------------------------------------------------ *)

let test_sat_basic () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [ a; b ];
  Sat.add_clause s [ -a; b ];
  Sat.add_clause s [ a; -b ];
  (match Sat.solve s with
  | Some Sat.Sat -> ()
  | _ -> Alcotest.fail "expected SAT");
  Alcotest.(check bool) "a true" true (Sat.value s a);
  Alcotest.(check bool) "b true" true (Sat.value s b)

let test_sat_unsat () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [ a; b ];
  Sat.add_clause s [ -a; b ];
  Sat.add_clause s [ a; -b ];
  Sat.add_clause s [ -a; -b ];
  match Sat.solve s with
  | Some Sat.Unsat -> ()
  | _ -> Alcotest.fail "expected UNSAT"

let test_sat_pigeonhole () =
  (* 4 pigeons in 3 holes: classic small UNSAT instance exercising learning *)
  let s = Sat.create () in
  let pigeons = 4 and holes = 3 in
  let var = Array.init pigeons (fun _ -> Array.init holes (fun _ -> Sat.new_var s)) in
  for p = 0 to pigeons - 1 do
    Sat.add_clause s (Array.to_list var.(p))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Sat.add_clause s [ -var.(p1).(h); -var.(p2).(h) ]
      done
    done
  done;
  match Sat.solve s with
  | Some Sat.Unsat -> ()
  | _ -> Alcotest.fail "pigeonhole should be UNSAT"

let test_sat_empty_clause () =
  let s = Sat.create () in
  Sat.add_clause s [];
  match Sat.solve s with
  | Some Sat.Unsat -> ()
  | _ -> Alcotest.fail "empty clause should be UNSAT"

(* Brute-force CNF evaluation over all assignments. *)
let brute_force_sat nvars clauses =
  let rec go assignment v =
    if v > nvars then
      List.for_all
        (fun clause ->
          List.exists
            (fun l ->
              let value = List.nth assignment (abs l - 1) in
              if l > 0 then value else not value)
            clause)
        clauses
    else go (assignment @ [ true ]) (v + 1) || go (assignment @ [ false ]) (v + 1)
  in
  go [] 1

let qcheck_sat_matches_brute_force =
  let gen =
    QCheck2.Gen.(
      let* nvars = int_range 1 6 in
      let* nclauses = int_range 1 12 in
      let lit = map2 (fun v s -> if s then v else -v) (int_range 1 nvars) bool in
      let clause = list_size (int_range 1 4) lit in
      let+ clauses = list_size (return nclauses) clause in
      (nvars, clauses))
  in
  QCheck2.Test.make ~name:"sat agrees with brute force" ~count:300 gen
    (fun (nvars, clauses) ->
      let s = Sat.create () in
      for _ = 1 to nvars do
        ignore (Sat.new_var s)
      done;
      List.iter (Sat.add_clause s) clauses;
      let expected = brute_force_sat nvars clauses in
      match Sat.solve s with
      | Some Sat.Sat ->
          expected
          && List.for_all
               (fun clause -> List.exists (Sat.lit_value s) clause)
               clauses
      | Some Sat.Unsat -> not expected
      | None -> false)

(* --- Solver / bitblast ----------------------------------------------------- *)

let fresh8 name = Term.fresh_var ~name (Term.Bitvec 8)

let check_sat terms =
  match Solver.check terms with
  | Solver.Sat m -> `Sat m
  | Solver.Unsat -> `Unsat
  | Solver.Unknown -> `Unknown

let test_solver_simple () =
  let x = fresh8 "x" in
  let vx = Term.var x in
  (match check_sat [ Term.ult vx (t8 5); Term.ugt vx (t8 2) ] with
  | `Sat m ->
      let value = Model.eval_bv m vx in
      Alcotest.(check bool) "model in range" true
        (Bv.ult value (Bv.of_int ~width:8 5) && Bv.ult (Bv.of_int ~width:8 2) value)
  | _ -> Alcotest.fail "expected SAT");
  match check_sat [ Term.ult vx (t8 5); Term.ugt vx (t8 10) ] with
  | `Unsat -> ()
  | _ -> Alcotest.fail "expected UNSAT"

let test_solver_arith () =
  let x = fresh8 "x" and y = fresh8 "y" in
  let vx = Term.var x and vy = Term.var y in
  (* x + y = 10, x * 2 = y  ->  x = 10 - 2x -> 3x = 10: no 8-bit solution
     without wrap... actually 3x = 10 mod 256 has a solution because 3 is
     invertible mod 256 (3 * 171 = 513 = 1 mod 256), x = 171 * 10 mod 256 = 174. *)
  (match
     check_sat
       [ Term.eq (Term.add vx vy) (t8 10); Term.eq (Term.mul vx (t8 2)) vy ]
   with
  | `Sat m ->
      let mx = Model.eval_bv m vx and my = Model.eval_bv m vy in
      Alcotest.(check bv) "x + y = 10" (Bv.of_int ~width:8 10) (Bv.add mx my);
      Alcotest.(check bv) "2x = y" my (Bv.mul mx (Bv.of_int ~width:8 2))
  | _ -> Alcotest.fail "expected SAT");
  (* x * 2 is even: x * 2 = 3 is UNSAT *)
  match check_sat [ Term.eq (Term.mul vx (t8 2)) (t8 3) ] with
  | `Unsat -> ()
  | _ -> Alcotest.fail "2x = 3 must be UNSAT in Z/256"

let test_solver_div () =
  let x = fresh8 "x" in
  let vx = Term.var x in
  (* x / 3 = 5 and x % 3 = 2 -> x = 17 *)
  match
    check_sat
      [
        Term.eq (Term.udiv vx (t8 3)) (t8 5);
        Term.eq (Term.urem vx (t8 3)) (t8 2);
      ]
  with
  | `Sat m ->
      Alcotest.(check bv) "x = 17" (Bv.of_int ~width:8 17) (Model.eval_bv m vx)
  | _ -> Alcotest.fail "expected SAT"

let test_solver_div_by_zero_semantics () =
  let x = fresh8 "x" in
  let vx = Term.var x in
  (* per SMT-LIB, x udiv 0 = 0xFF for all x *)
  match check_sat [ Term.neq (Term.udiv vx (t8 0)) (t8 0xFF) ] with
  | `Unsat -> ()
  | _ -> Alcotest.fail "udiv by zero must equal ones"

let test_solver_shifts () =
  let x = fresh8 "x" in
  let vx = Term.var x in
  (* x << 1 = 0x10 -> x in {0x08, 0x88} *)
  (match check_sat [ Term.eq (Term.shl vx (t8 1)) (t8 0x10) ] with
  | `Sat m ->
      let v = Bv.value (Model.eval_bv m vx) in
      Alcotest.(check bool) "x is 0x08 or 0x88" true (v = 0x08L || v = 0x88L)
  | _ -> Alcotest.fail "expected SAT");
  (* shift saturates: x >> 9 = 0 always *)
  match check_sat [ Term.neq (Term.lshr vx (t8 9)) (t8 0) ] with
  | `Unsat -> ()
  | _ -> Alcotest.fail "oversized shift must be zero"

let test_solver_signed () =
  let x = fresh8 "x" in
  let vx = Term.var x in
  (* x <s 0 and x >u 0x7F describe the same set: both satisfiable together *)
  (match check_sat [ Term.slt vx (t8 0); Term.ule (t8 0x80) vx ] with
  | `Sat _ -> ()
  | _ -> Alcotest.fail "negative bytes exist");
  match check_sat [ Term.slt vx (t8 0); Term.ult vx (t8 0x80) ] with
  | `Unsat -> ()
  | _ -> Alcotest.fail "x <s 0 contradicts x <u 0x80"

let test_solver_concat_extract () =
  let x = fresh8 "x" in
  let vx = Term.var x in
  let wide = Term.concat vx (t8 0xAB) in
  match
    check_sat [ Term.eq wide (Term.int ~width:16 0xCDAB) ]
  with
  | `Sat m ->
      Alcotest.(check bv) "high byte recovered" (Bv.of_int ~width:8 0xCD)
        (Model.eval_bv m vx)
  | _ -> Alcotest.fail "expected SAT"

let test_solver_ite () =
  let x = fresh8 "x" in
  let vx = Term.var x in
  let abs_x = Term.ite (Term.slt vx (t8 0)) (Term.neg vx) vx in
  (* |x| = 5 has two solutions *)
  match check_sat [ Term.eq abs_x (t8 5); Term.slt vx (t8 0) ] with
  | `Sat m ->
      Alcotest.(check bv) "x = -5" (Bv.of_int ~width:8 251) (Model.eval_bv m vx)
  | _ -> Alcotest.fail "expected SAT"

let test_solver_implied () =
  let x = fresh8 "x" in
  let vx = Term.var x in
  Alcotest.(check bool) "x < 5 implies x < 10" true
    (Solver.implied [ Term.ult vx (t8 5) ] (Term.ult vx (t8 10)));
  Alcotest.(check bool) "x < 10 does not imply x < 5" false
    (Solver.implied [ Term.ult vx (t8 10) ] (Term.ult vx (t8 5)))

let test_solver_unknown_on_budget () =
  (* A deliberately hard multiplication instance with a tiny conflict budget
     should report Unknown rather than a wrong answer. *)
  let w = 16 in
  let x = Term.fresh_var ~name:"x" (Term.Bitvec w) in
  let y = Term.fresh_var ~name:"y" (Term.Bitvec w) in
  let product = Term.mul (Term.var x) (Term.var y) in
  let terms =
    [
      Term.eq product (Term.int ~width:w 0x6E0F);
      Term.ugt (Term.var x) (Term.int ~width:w 1);
      Term.ugt (Term.var y) (Term.int ~width:w 1);
    ]
  in
  match Solver.check ~conflict_limit:1 terms with
  | Solver.Unknown | Solver.Sat _ -> ()
  | Solver.Unsat -> Alcotest.fail "factoring 0x6E0F is satisfiable"

(* --- incremental sessions ------------------------------------------------------ *)

let test_incremental_basic () =
  let x = fresh8 "ix" in
  let vx = Term.var x in
  let s = Solver.Incremental.create () in
  Solver.Incremental.assert_always s (Term.ult vx (t8 10));
  Alcotest.(check bool) "x<10, x=5 sat" true
    (Solver.Incremental.is_sat s [ Term.eq vx (t8 5) ]);
  Alcotest.(check bool) "x<10, x=20 unsat" true
    (Solver.Incremental.is_unsat s [ Term.eq vx (t8 20) ]);
  (* the session survives an unsat answer under assumptions *)
  Alcotest.(check bool) "x=3 sat afterwards" true
    (Solver.Incremental.is_sat s [ Term.eq vx (t8 3) ]);
  (* growing the permanent part mid-session *)
  Solver.Incremental.assert_always s (Term.ugt vx (t8 3));
  Alcotest.(check bool) "x=3 now unsat" true
    (Solver.Incremental.is_unsat s [ Term.eq vx (t8 3) ]);
  Alcotest.(check bool) "x=7 still sat" true
    (Solver.Incremental.is_sat s [ Term.eq vx (t8 7) ])

let test_incremental_models () =
  let x = fresh8 "imx" in
  let vx = Term.var x in
  let s = Solver.Incremental.create () in
  Solver.Incremental.assert_always s (Term.ult vx (t8 50));
  match Solver.Incremental.check s [ Term.ugt vx (t8 40) ] with
  | Solver.Sat m ->
      let value = Model.eval_bv m vx in
      Alcotest.(check bool) "model within both bounds" true
        (Bv.ult value (Bv.of_int ~width:8 50) && Bv.ult (Bv.of_int ~width:8 40) value)
  | _ -> Alcotest.fail "expected SAT"

(* incremental answers must agree with one-shot solving on random query
   sequences over shared permanent constraints *)
let qcheck_incremental_matches_oneshot =
  let gen =
    QCheck2.Gen.(
      let* lo = int_range 0 200 in
      let* hi = int_range 0 255 in
      let* queries =
        list_size (int_range 1 6)
          (pair (int_range 0 255) (int_range 0 255))
      in
      return (lo, hi, queries))
  in
  QCheck2.Test.make ~name:"incremental agrees with one-shot" ~count:60 gen
    (fun (lo, hi, queries) ->
      let x = Term.fresh_var ~name:"qix" (Term.Bitvec 8) in
      let vx = Term.var x in
      let permanent =
        [ Term.ule (t8 lo) vx; Term.ule vx (t8 hi) ]
      in
      let session = Solver.Incremental.create () in
      List.iter (Solver.Incremental.assert_always session) permanent;
      List.for_all
        (fun (a, b) ->
          let extra = [ Term.uge vx (t8 a); Term.ule vx (t8 b) ] in
          let incremental = Solver.Incremental.is_sat session extra in
          Solver.set_cache_enabled false;
          let oneshot = Solver.is_sat (extra @ permanent) in
          Solver.set_cache_enabled true;
          incremental = oneshot)
        queries)

(* --- interval pre-check ----------------------------------------------------- *)

let test_interval_prunes () =
  let x = fresh8 "x" in
  let vx = Term.var x in
  Alcotest.(check bool) "x < 5 && x > 10 pruned" true
    (Interval.definitely_unsat [ Term.ult vx (t8 5); Term.ugt vx (t8 10) ]);
  Alcotest.(check bool) "x < 5 && x = 3 kept" false
    (Interval.definitely_unsat [ Term.ult vx (t8 5); Term.eq vx (t8 3) ]);
  Alcotest.(check bool) "x = 4 && x <> 4 pruned" true
    (Interval.definitely_unsat [ Term.eq vx (t8 4); Term.neq vx (t8 4) ]);
  Alcotest.(check bool) "edge tightening: 3 <= x <= 4, x<>3, x<>4" true
    (Interval.definitely_unsat
       [
         Term.ule (t8 3) vx; Term.ule vx (t8 4); Term.neq vx (t8 3);
         Term.neq vx (t8 4);
       ])

let test_interval_never_wrong () =
  (* soundness on a tricky satisfiable conjunction *)
  let x = fresh8 "x" in
  let vx = Term.var x in
  let terms = [ Term.ule (t8 200) vx; Term.neq vx (t8 200); Term.neq vx (t8 255) ] in
  Alcotest.(check bool) "not pruned" false (Interval.definitely_unsat terms);
  match check_sat terms with `Sat _ -> () | _ -> Alcotest.fail "expected SAT"

(* --- property tests over the full solver ------------------------------------ *)

(* random terms over two 4-bit variables, compared against brute force *)
let qcheck_solver_matches_enumeration =
  let x = Term.fresh_var ~name:"qx" (Term.Bitvec 4) in
  let y = Term.fresh_var ~name:"qy" (Term.Bitvec 4) in
  let t4 n = Term.int ~width:4 n in
  let gen_bv_term =
    QCheck2.Gen.(
      sized @@ fix (fun self n ->
          if n <= 0 then
            oneof [ return (Term.var x); return (Term.var y);
                    map (fun v -> t4 v) (int_range 0 15) ]
          else
            let sub = self (n / 2) in
            oneof
              [
                map2 Term.add sub sub;
                map2 Term.sub sub sub;
                map2 Term.mul sub sub;
                map2 Term.band sub sub;
                map2 Term.bor sub sub;
                map2 Term.bxor sub sub;
                map2 Term.udiv sub sub;
                map2 Term.urem sub sub;
                map Term.bnot sub;
                map2 Term.shl sub sub;
                map2 Term.lshr sub sub;
                (* slice-and-reassemble exercises the extract/concat
                   fusion rules of the smart constructors *)
                map
                  (fun t ->
                    Term.concat
                      (Term.extract ~hi:3 ~lo:2 t)
                      (Term.extract ~hi:1 ~lo:0 t))
                  sub;
                map2
                  (fun t amount ->
                    Term.extract ~hi:1 ~lo:0
                      (Term.lshr t (t4 amount)))
                  sub (int_range 0 5)
                |> map (fun narrow -> Term.zero_extend ~by:2 narrow);
              ]))
  in
  let gen_atom =
    QCheck2.Gen.(
      let* a = gen_bv_term and* b = gen_bv_term in
      oneofl
        [ Term.eq a b; Term.ult a b; Term.ule a b; Term.slt a b; Term.sle a b ])
  in
  let gen = QCheck2.Gen.(list_size (int_range 1 3) gen_atom) in
  QCheck2.Test.make ~name:"solver agrees with enumeration (2x4bit)" ~count:120
    gen (fun atoms ->
      let expected =
        let found = ref false in
        for vx = 0 to 15 do
          for vy = 0 to 15 do
            let m =
              Model.of_list
                [
                  (x, Model.Vbv (Bv.of_int ~width:4 vx));
                  (y, Model.Vbv (Bv.of_int ~width:4 vy));
                ]
            in
            if Model.satisfies m atoms then found := true
          done
        done;
        !found
      in
      match check_sat atoms with
      | `Sat m -> expected && Model.satisfies m atoms
      | `Unsat -> not expected
      | `Unknown -> false)

(* the interval pre-check may only ever answer "unsat" when the solver
   agrees *)
let qcheck_interval_sound =
  let x = Term.fresh_var ~name:"ivx" (Term.Bitvec 8) in
  let gen_atom =
    QCheck2.Gen.(
      let* c = int_range 0 255 in
      let* flip = bool in
      let+ kind = int_range 0 3 in
      let atom =
        match kind with
        | 0 -> Term.ult (Term.var x) (t8 c)
        | 1 -> Term.ule (t8 c) (Term.var x)
        | 2 -> Term.eq (Term.var x) (t8 c)
        | _ -> Term.neq (Term.var x) (t8 c)
      in
      if flip then Term.not_ atom else atom)
  in
  QCheck2.Test.make ~name:"interval pre-check is sound" ~count:200
    QCheck2.Gen.(list_size (int_range 1 5) gen_atom)
    (fun atoms ->
      if Interval.definitely_unsat atoms then begin
        (* verify against brute force (the solver itself consults the
           interval check, so it would not be an independent witness) *)
        let satisfiable = ref false in
        for v = 0 to 255 do
          let m = Model.add_bv x (Bv.of_int ~width:8 v) Model.empty in
          if Model.satisfies m atoms then satisfiable := true
        done;
        not !satisfiable
      end
      else true)

let qcheck_model_satisfies =
  (* any SAT answer must come with a model that satisfies the query *)
  let x = Term.fresh_var ~name:"mx" (Term.Bitvec 8) in
  let gen =
    QCheck2.Gen.(
      let* lo = int_range 0 255 and* hi = int_range 0 255 in
      let* exclude = int_range 0 255 in
      return
        [
          Term.ule (t8 lo) (Term.var x);
          Term.ule (Term.var x) (t8 hi);
          Term.neq (Term.var x) (t8 exclude);
        ])
  in
  QCheck2.Test.make ~name:"models satisfy their query" ~count:200 gen
    (fun terms ->
      match check_sat terms with
      | `Sat m -> Model.satisfies m terms
      | `Unsat | `Unknown -> true)

let () =
  let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests) in
  Alcotest.run "smt"
    [
      ( "bv",
        [
          Alcotest.test_case "arithmetic" `Quick test_bv_arith;
          Alcotest.test_case "signed ops" `Quick test_bv_signed;
          Alcotest.test_case "slices" `Quick test_bv_slices;
          Alcotest.test_case "shift saturation" `Quick test_bv_shifts_saturate;
        ] );
      ( "term",
        [
          Alcotest.test_case "constant folding" `Quick test_term_folding;
          Alcotest.test_case "extract rules" `Quick test_term_extract_rules;
          Alcotest.test_case "sort checking" `Quick test_term_sorts;
          Alcotest.test_case "substitution" `Quick test_term_subst;
          Alcotest.test_case "variable collection" `Quick test_term_vars;
        ] );
      ( "sat",
        [
          Alcotest.test_case "basic sat" `Quick test_sat_basic;
          Alcotest.test_case "basic unsat" `Quick test_sat_unsat;
          Alcotest.test_case "pigeonhole" `Quick test_sat_pigeonhole;
          Alcotest.test_case "empty clause" `Quick test_sat_empty_clause;
        ] );
      qsuite "sat-properties" [ qcheck_sat_matches_brute_force ];
      ( "solver",
        [
          Alcotest.test_case "ranges" `Quick test_solver_simple;
          Alcotest.test_case "arithmetic" `Quick test_solver_arith;
          Alcotest.test_case "division" `Quick test_solver_div;
          Alcotest.test_case "div-by-zero semantics" `Quick
            test_solver_div_by_zero_semantics;
          Alcotest.test_case "shifts" `Quick test_solver_shifts;
          Alcotest.test_case "signed comparisons" `Quick test_solver_signed;
          Alcotest.test_case "concat/extract" `Quick test_solver_concat_extract;
          Alcotest.test_case "ite" `Quick test_solver_ite;
          Alcotest.test_case "implication" `Quick test_solver_implied;
          Alcotest.test_case "unknown on tiny budget" `Quick
            test_solver_unknown_on_budget;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "sessions" `Quick test_incremental_basic;
          Alcotest.test_case "models" `Quick test_incremental_models;
        ] );
      qsuite "incremental-properties" [ qcheck_incremental_matches_oneshot ];
      ( "interval",
        [
          Alcotest.test_case "prunes contradictions" `Quick test_interval_prunes;
          Alcotest.test_case "sound on satisfiable" `Quick
            test_interval_never_wrong;
        ] );
      qsuite "solver-properties"
        [
          qcheck_solver_matches_enumeration;
          qcheck_model_satisfies;
          qcheck_interval_sound;
        ];
    ]
