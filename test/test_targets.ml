(* Tests for the target-system models: the working example, FSP, PBFT and
   Paxos — mostly through concrete execution, which pins down the protocol
   semantics the symbolic experiments rely on. *)

open Achilles_smt
open Achilles_symvm
open Achilles_targets

let b8 n = Bv.of_int ~width:8 n

let status_of outcome = State.status_string outcome.Concrete.status

(* --- helpers to build concrete FSP messages ----------------------------------- *)

let fsp_message ~cmd ~len ~buf =
  let bytes = Array.make Fsp_model.message_size (Bv.zero 8) in
  let set_field name value =
    let f = Layout.field Fsp_model.layout name in
    let rec go i v =
      if i >= 0 then begin
        bytes.(f.Layout.offset + i) <- Bv.of_int ~width:8 (v land 0xFF);
        go (i - 1) (v lsr 8)
      end
    in
    go (f.Layout.size - 1) value
  in
  set_field "cmd" cmd;
  set_field "sum" Fsp_model.sum_const;
  set_field "bb_key" Fsp_model.key_const;
  set_field "bb_seq" Fsp_model.seq_const;
  set_field "bb_pos" Fsp_model.pos_const;
  set_field "bb_len" len;
  String.iteri
    (fun i c ->
      bytes.((Layout.field Fsp_model.layout "buf").Layout.offset + i) <-
        b8 (Char.code c))
    buf;
  bytes

let run_fsp_server message =
  Concrete.run ~incoming:[ message ] Fsp_model.server

(* --- FSP server acceptance --------------------------------------------------- *)

let test_fsp_server_accepts_valid () =
  let msg = fsp_message ~cmd:0x12 ~len:2 ~buf:"ab" in
  Alcotest.(check string) "valid del accepted" "accepted:del"
    (status_of (run_fsp_server msg))

let test_fsp_server_accepts_early_nul () =
  (* the mismatched-length Trojan: reported length 3, true length 1 *)
  let msg = fsp_message ~cmd:0x10 ~len:3 ~buf:"a\000x" in
  Alcotest.(check string) "early NUL accepted (the bug)" "accepted:get"
    (status_of (run_fsp_server msg))

let test_fsp_server_rejects () =
  let reject msg expect =
    match (run_fsp_server msg).Concrete.status with
    | State.Rejected label -> Alcotest.(check string) "label" expect label
    | s -> Alcotest.failf "expected rejection, got %s" (State.status_string s)
  in
  reject (fsp_message ~cmd:0x99 ~len:2 ~buf:"ab") "bad-cmd";
  reject (fsp_message ~cmd:0x10 ~len:0 ~buf:"") "len-zero";
  reject (fsp_message ~cmd:0x10 ~len:5 ~buf:"abcd") "len-too-big";
  reject (fsp_message ~cmd:0x10 ~len:2 ~buf:"a\007") "bad-char";
  reject (fsp_message ~cmd:0x10 ~len:2 ~buf:"abc") "no-term";
  let bad_sum = fsp_message ~cmd:0x10 ~len:2 ~buf:"ab" in
  let f = Layout.field Fsp_model.layout "sum" in
  bad_sum.(f.Layout.offset) <- b8 0;
  reject bad_sum "bad-sum"

let test_fsp_server_accepts_wildcard () =
  (* '*' is printable: the server takes it — half of the wildcard bug *)
  let msg = fsp_message ~cmd:0x12 ~len:2 ~buf:"f*" in
  Alcotest.(check string) "literal wildcard accepted" "accepted:del"
    (status_of (run_fsp_server msg))

(* --- FSP clients --------------------------------------------------------------- *)

let client_send ?model_globbing command path =
  let inputs =
    List.init Fsp_model.buf_size (fun i ->
        if i < String.length path then b8 (Char.code path.[i]) else Bv.zero 8)
  in
  let outcome =
    Concrete.run ~inputs (Fsp_model.client ?model_globbing command)
  in
  match outcome.Concrete.sent with
  | [ (_, payload) ] -> Some payload
  | _ -> None

let del_command = List.nth Fsp_model.commands 2

let test_fsp_client_valid_path () =
  match client_send del_command "ab" with
  | Some payload ->
      Alcotest.(check int) "bb_len = 2" 2
        (Bv.to_int (Layout.field_value Fsp_model.layout payload "bb_len"));
      Alcotest.(check string) "server accepts what the client sends"
        "accepted:del"
        (status_of (run_fsp_server payload))
  | None -> Alcotest.fail "client refused a valid path"

let test_fsp_client_rejects_bad_chars () =
  Alcotest.(check bool) "control character refused" true
    (client_send del_command "a\007" = None);
  Alcotest.(check bool) "empty path refused" true
    (client_send del_command "" = None)

let test_fsp_client_glob_variant_blocks_wildcard () =
  Alcotest.(check bool) "plain client transmits '*'" true
    (client_send del_command "f*" <> None);
  Alcotest.(check bool) "globbing client never transmits '*'" true
    (client_send ~model_globbing:true del_command "f*" = None)

(* every message a client emits is accepted by the server: the clients are
   "correct" in the paper's sense *)
let qcheck_fsp_client_server_compatible =
  let printable_char =
    QCheck2.Gen.map Char.chr (QCheck2.Gen.int_range 33 126)
  in
  let gen =
    QCheck2.Gen.(
      let* len = int_range 1 4 in
      let* cmd_idx = int_range 0 7 in
      let+ chars = list_size (return len) printable_char in
      (cmd_idx, String.init len (List.nth chars)))
  in
  QCheck2.Test.make ~name:"client messages are always accepted" ~count:50 gen
    (fun (cmd_idx, path) ->
      let command = List.nth Fsp_model.commands cmd_idx in
      match client_send command path with
      | Some payload -> (
          match (run_fsp_server payload).Concrete.status with
          | State.Accepted label -> label = command.Fsp_model.cmd_name
          | _ -> false)
      | None -> false)

(* --- FSP ground truth ------------------------------------------------------------ *)

let test_fsp_ground_truth_classes () =
  Alcotest.(check int) "80 Trojan classes" 80
    (List.length Fsp_model.all_trojan_classes);
  let distinct = List.sort_uniq compare Fsp_model.all_trojan_classes in
  Alcotest.(check int) "all distinct" 80 (List.length distinct)

let test_fsp_classify () =
  let check msg expect =
    let verdict = Fsp_model.classify msg in
    Alcotest.(check bool) "verdict" true (verdict = expect)
  in
  check
    (fsp_message ~cmd:0x10 ~len:2 ~buf:"ab")
    (Fsp_model.Valid { class_cmd = 0x10; reported_len = 2; true_len = 2 });
  check
    (fsp_message ~cmd:0x10 ~len:3 ~buf:"a\000x")
    (Fsp_model.Trojan { class_cmd = 0x10; reported_len = 3; true_len = 1 });
  check (fsp_message ~cmd:0x99 ~len:2 ~buf:"ab") Fsp_model.Rejected;
  (* classifier must agree with the concrete server on acceptance *)
  let msgs =
    [
      fsp_message ~cmd:0x11 ~len:1 ~buf:"\000";
      fsp_message ~cmd:0x11 ~len:4 ~buf:"ab\000d";
      fsp_message ~cmd:0x17 ~len:4 ~buf:"abcd";
      fsp_message ~cmd:0x17 ~len:2 ~buf:"\127\127";
    ]
  in
  List.iter
    (fun msg ->
      let oracle_accepts = Fsp_model.classify msg <> Fsp_model.Rejected in
      let server_accepts =
        match (run_fsp_server msg).Concrete.status with
        | State.Accepted _ -> true
        | _ -> false
      in
      Alcotest.(check bool) "oracle matches server" server_accepts
        oracle_accepts)
    msgs

let test_fsp_wildcard_classifier () =
  let msg = fsp_message ~cmd:0x12 ~len:2 ~buf:"f*" in
  Alcotest.(check bool) "wildcard variant flags it" true
    (match Fsp_model.classify_with_globbing msg with
    | Fsp_model.Trojan _ -> true
    | _ -> false);
  Alcotest.(check bool) "plain classifier calls it valid" true
    (match Fsp_model.classify msg with
    | Fsp_model.Valid _ -> true
    | _ -> false)

(* --- PBFT ------------------------------------------------------------------------ *)

let pbft_request ?(corrupt_mac = false) ~cid ~rid () =
  let inputs =
    [
      Bv.of_int ~width:16 cid;
      Bv.of_int ~width:16 rid;
      Bv.of_int ~width:16 0;
      Bv.of_int ~width:16 1;
      Bv.of_int ~width:32 7;
    ]
  in
  match (Concrete.run ~inputs Pbft_model.client).Concrete.sent with
  | [ (_, payload) ] ->
      if corrupt_mac then begin
        let f = Layout.field Pbft_model.layout "mac" in
        payload.(f.Layout.offset) <- b8 0x00
      end;
      Some payload
  | _ -> None

let test_pbft_client_builds_valid_requests () =
  match pbft_request ~cid:1 ~rid:5 () with
  | Some payload ->
      Alcotest.(check bool) "valid MAC" true (Pbft_model.has_valid_mac payload);
      Alcotest.(check int) "tag" Pbft_model.tag_request
        (Bv.to_int (Layout.field_value Pbft_model.layout payload "tag"))
  | None -> Alcotest.fail "client refused"

let test_pbft_client_refuses_bad_cid () =
  Alcotest.(check bool) "cid out of range refused" true
    (pbft_request ~cid:100 ~rid:5 () = None)

let test_pbft_replica_accepts_bad_mac () =
  (* the vulnerability: the replica never looks at the authenticators *)
  match pbft_request ~corrupt_mac:true ~cid:1 ~rid:5 () with
  | Some payload -> (
      let outcome = Concrete.run ~incoming:[ payload ] Pbft_model.replica in
      match outcome.Concrete.status with
      | State.Accepted "pre-prepare" ->
          Alcotest.(check bool) "oracle flags it" true
            (Pbft_model.is_mac_trojan payload)
      | s -> Alcotest.failf "expected acceptance, got %s" (State.status_string s))
  | None -> Alcotest.fail "client refused"

let test_pbft_replica_rejects () =
  match pbft_request ~cid:1 ~rid:5 () with
  | None -> Alcotest.fail "client refused"
  | Some payload ->
      let with_field name value =
        let p = Array.copy payload in
        let f = Layout.field Pbft_model.layout name in
        p.(f.Layout.offset + f.Layout.size - 1) <- b8 value;
        p
      in
      let reject p expect =
        match (Concrete.run ~incoming:[ p ] Pbft_model.replica).Concrete.status with
        | State.Rejected label -> Alcotest.(check string) "label" expect label
        | s -> Alcotest.failf "expected %s, got %s" expect (State.status_string s)
      in
      reject (with_field "tag" 9) "bad-tag";
      reject (with_field "cid" 200) "unknown-client";
      reject (with_field "rid" 0) "stale-rid";
      let bad_od = Array.copy payload in
      let f = Layout.field Pbft_model.layout "od" in
      bad_od.(f.Layout.offset + 3) <- b8 0;
      reject bad_od "bad-digest"

let test_pbft_replica_rid_state_advances () =
  (* deliver rid 5 then rid 5 again through a persistent node: the second
     must be stale *)
  let node = Achilles_runtime.Node.create Pbft_model.replica in
  match pbft_request ~cid:1 ~rid:5 () with
  | None -> Alcotest.fail "client refused"
  | Some payload ->
      let first = Achilles_runtime.Node.deliver node payload in
      Alcotest.(check string) "first accepted" "accepted:pre-prepare"
        (status_of first);
      let second = Achilles_runtime.Node.deliver node payload in
      Alcotest.(check string) "replay is stale" "rejected:stale-rid"
        (status_of second)

(* --- Paxos ------------------------------------------------------------------------ *)

let paxos_message ~mtype ~ballot ~value ~proposer =
  let bytes = Array.make Paxos_model.message_size (Bv.zero 8) in
  bytes.(0) <- b8 mtype;
  bytes.(1) <- b8 (ballot lsr 8);
  bytes.(2) <- b8 (ballot land 0xFF);
  bytes.(3) <- b8 (value lsr 8);
  bytes.(4) <- b8 (value land 0xFF);
  bytes.(5) <- b8 proposer;
  bytes

let test_paxos_acceptor_phases () =
  let deliver ?(promised = 0) msg =
    Concrete.run
      ~initial_globals:[ ("promised", Bv.of_int ~width:16 promised) ]
      ~incoming:[ msg ] Paxos_model.acceptor
  in
  Alcotest.(check string) "fresh prepare accepted" "accepted:promise"
    (status_of (deliver (paxos_message ~mtype:1 ~ballot:4 ~value:0 ~proposer:0)));
  Alcotest.(check string) "old prepare rejected" "rejected:old-ballot"
    (status_of
       (deliver ~promised:9 (paxos_message ~mtype:1 ~ballot:4 ~value:0 ~proposer:0)));
  Alcotest.(check string) "accept at promise taken" "accepted:accepted"
    (status_of
       (deliver ~promised:5 (paxos_message ~mtype:2 ~ballot:5 ~value:7 ~proposer:1)));
  Alcotest.(check string) "below-promise accept rejected" "rejected:below-promise"
    (status_of
       (deliver ~promised:5 (paxos_message ~mtype:2 ~ballot:4 ~value:7 ~proposer:1)));
  (* the bug: a different value is accepted just the same *)
  Alcotest.(check string) "wrong value taken (the bug)" "accepted:accepted"
    (status_of
       (deliver ~promised:5 (paxos_message ~mtype:2 ~ballot:5 ~value:99 ~proposer:1)))

let test_paxos_ground_truth () =
  Alcotest.(check bool) "wrong value is a trojan" true
    (Paxos_model.is_phase2_trojan ~promised:5 ~chosen_value:7
       (paxos_message ~mtype:2 ~ballot:6 ~value:99 ~proposer:1));
  Alcotest.(check bool) "right value is not" false
    (Paxos_model.is_phase2_trojan ~promised:5 ~chosen_value:7
       (paxos_message ~mtype:2 ~ballot:6 ~value:7 ~proposer:1))

(* --- the working example ------------------------------------------------------------ *)

let rw_message ~sender ~request ~address =
  let bytes = Array.make Rw_example.message_size (Bv.zero 8) in
  bytes.(0) <- b8 sender;
  bytes.(1) <- b8 request;
  let a = Int64.of_int address in
  for i = 0 to 3 do
    bytes.(2 + i) <-
      Bv.make ~width:8 (Int64.shift_right_logical a (8 * (3 - i)))
  done;
  (* additive checksum over bytes 0..9 *)
  let crc = ref (Bv.zero 8) in
  for i = 0 to Rw_example.message_size - 2 do
    crc := Bv.add !crc bytes.(i)
  done;
  bytes.(Rw_example.message_size - 1) <- !crc;
  bytes

let test_rw_server_bug () =
  let deliver msg = Concrete.run ~incoming:[ msg ] Rw_example.server in
  Alcotest.(check string) "valid read accepted" "accepted:read"
    (status_of (deliver (rw_message ~sender:1 ~request:1 ~address:42)));
  (* negative address on READ: accepted — the planted bug *)
  Alcotest.(check string) "negative read accepted" "accepted:read"
    (status_of (deliver (rw_message ~sender:1 ~request:1 ~address:(-3))));
  Alcotest.(check string) "negative write rejected" "rejected:write-neg"
    (status_of (deliver (rw_message ~sender:1 ~request:2 ~address:(-3))));
  Alcotest.(check string) "oob read rejected" "rejected:read-oob"
    (status_of (deliver (rw_message ~sender:1 ~request:1 ~address:1000)));
  Alcotest.(check string) "unknown peer" "rejected:unknown-peer"
    (status_of (deliver (rw_message ~sender:9 ~request:1 ~address:42)))

let () =
  let qsuite name tests =
    (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)
  in
  Alcotest.run "targets"
    [
      ( "fsp-server",
        [
          Alcotest.test_case "accepts valid" `Quick test_fsp_server_accepts_valid;
          Alcotest.test_case "accepts early NUL (bug)" `Quick
            test_fsp_server_accepts_early_nul;
          Alcotest.test_case "rejections" `Quick test_fsp_server_rejects;
          Alcotest.test_case "accepts wildcard" `Quick
            test_fsp_server_accepts_wildcard;
        ] );
      ( "fsp-client",
        [
          Alcotest.test_case "valid path" `Quick test_fsp_client_valid_path;
          Alcotest.test_case "validation" `Quick test_fsp_client_rejects_bad_chars;
          Alcotest.test_case "glob variant" `Quick
            test_fsp_client_glob_variant_blocks_wildcard;
        ] );
      qsuite "fsp-compat" [ qcheck_fsp_client_server_compatible ];
      ( "fsp-oracle",
        [
          Alcotest.test_case "80 classes" `Quick test_fsp_ground_truth_classes;
          Alcotest.test_case "classification" `Quick test_fsp_classify;
          Alcotest.test_case "wildcard classifier" `Quick
            test_fsp_wildcard_classifier;
        ] );
      ( "pbft",
        [
          Alcotest.test_case "client requests" `Quick
            test_pbft_client_builds_valid_requests;
          Alcotest.test_case "client cid validation" `Quick
            test_pbft_client_refuses_bad_cid;
          Alcotest.test_case "replica accepts bad MAC" `Quick
            test_pbft_replica_accepts_bad_mac;
          Alcotest.test_case "replica rejections" `Quick test_pbft_replica_rejects;
          Alcotest.test_case "rid state advances" `Quick
            test_pbft_replica_rid_state_advances;
        ] );
      ( "paxos",
        [
          Alcotest.test_case "acceptor phases" `Quick test_paxos_acceptor_phases;
          Alcotest.test_case "ground truth" `Quick test_paxos_ground_truth;
        ] );
      ( "rw-example",
        [ Alcotest.test_case "server bug" `Quick test_rw_server_bug ] );
    ]
