(* The resource-governance and fault-tolerance layer: solver budgets and
   their escalation ladder, deterministic fault injection, the sound
   degradation policies of the search (Unknown keeps things alive, never
   drops a Trojan), shard-level retry/failure isolation, cooperative
   cancellation, and checkpoint/resume. *)

open Achilles_smt
open Achilles_symvm
open Achilles_core
open Achilles_targets

(* --- pool retry / failure isolation ---------------------------------------- *)

exception Flaky of int

let test_pool_retry_then_succeed () =
  Pool.with_pool ~domains:2 (fun pool ->
      let failures_left = Array.make 6 0 in
      failures_left.(2) <- 2;
      (* task 2 fails twice, then succeeds on its third attempt *)
      let outcomes =
        Pool.map_with_retries ~retries:2
          ~backoff:(fun _ -> 0.)
          pool
          (fun i ->
            if failures_left.(i) > 0 then begin
              failures_left.(i) <- failures_left.(i) - 1;
              raise (Flaky i)
            end;
            i * 10)
          (Array.init 6 Fun.id)
      in
      Array.iteri
        (fun i o ->
          Alcotest.(check bool)
            (Printf.sprintf "task %d succeeded" i)
            true
            (o.Pool.result = Ok (i * 10));
          Alcotest.(check int)
            (Printf.sprintf "task %d attempts" i)
            (if i = 2 then 3 else 1)
            o.Pool.attempts)
        outcomes)

let test_pool_retry_exhausted () =
  Pool.with_pool ~domains:2 (fun pool ->
      let outcomes =
        Pool.map_with_retries ~retries:1
          ~backoff:(fun _ -> 0.)
          pool
          (fun i -> if i = 1 then raise (Flaky 1) else i)
          [| 0; 1; 2 |]
      in
      (* the batch never raises: the hopeless task is recorded as Error
         after retries, its siblings are untouched *)
      Alcotest.(check bool) "task 0 ok" true (outcomes.(0).Pool.result = Ok 0);
      Alcotest.(check bool) "task 2 ok" true (outcomes.(2).Pool.result = Ok 2);
      (match outcomes.(1).Pool.result with
      | Error (Flaky 1) -> ()
      | _ -> Alcotest.fail "expected Error (Flaky 1)");
      Alcotest.(check int) "cap spent" 2 outcomes.(1).Pool.attempts;
      (match
         Pool.map_with_retries ~retries:(-1) pool Fun.id [| 0 |]
       with
      | _ -> Alcotest.fail "expected Invalid_argument for negative retries"
      | exception Invalid_argument _ -> ());
      (* the pool stays usable after a batch with failures *)
      let r = Pool.parallel_map pool (fun x -> x + 1) [| 1 |] in
      Alcotest.(check (array int)) "pool usable" [| 2 |] r)

let test_pool_backoff_called () =
  Pool.with_pool ~domains:1 (fun pool ->
      let pauses = ref [] in
      let outcomes =
        Pool.map_with_retries ~retries:2
          ~backoff:(fun attempt ->
            pauses := attempt :: !pauses;
            0.)
          pool
          (fun () -> raise (Flaky 0))
          [| () |]
      in
      Alcotest.(check int) "three attempts" 3 outcomes.(0).Pool.attempts;
      (* backoff is consulted before each retry, with the attempt number *)
      Alcotest.(check (list int)) "backoff schedule" [ 0; 1 ] (List.rev !pauses))

(* --- solver budgets and the escalation ladder ------------------------------- *)

(* A query the interval pre-check cannot settle, so it must reach the SAT
   solver (fresh variables per call defeat the result cache). *)
let hard_query () =
  let x = Term.fresh_var ~name:"rb_x" (Term.Bitvec 8) in
  let y = Term.fresh_var ~name:"rb_y" (Term.Bitvec 8) in
  [
    Term.eq (Term.bxor (Term.var x) (Term.var y)) (Term.int ~width:8 5);
    Term.eq (Term.add (Term.var x) (Term.var y)) (Term.int ~width:8 9);
  ]

let test_budget_exhaustion () =
  Solver.reset_all_for_tests ();
  (* conflicts = 0 answers Unknown on every rung (0 * 4 = 0), so the whole
     ladder runs and ends in an exhaustion — deterministically *)
  Solver.set_budget (Some (Solver.budget ~conflicts:0 ~escalations:2 ()));
  Fun.protect
    ~finally:(fun () -> Solver.set_budget None)
    (fun () ->
      let q = hard_query () in
      (match Solver.check q with
      | Solver.Unknown -> ()
      | _ -> Alcotest.fail "expected Unknown under a zero conflict budget");
      Alcotest.(check bool) "is_sat false on Unknown" false (Solver.is_sat q);
      Alcotest.(check bool) "is_unsat false on Unknown" false (Solver.is_unsat q);
      let s = Solver.stats () in
      Alcotest.(check int) "x4 retries taken" (2 * 3) s.Solver.budget_escalations;
      Alcotest.(check int) "ladders exhausted" 3 s.Solver.budget_exhaustions;
      Alcotest.(check int) "final Unknowns" 3 s.Solver.unknown_results);
  (* with the budget cleared the same shape of query is decidable again *)
  match Solver.check (hard_query ()) with
  | Solver.Sat _ -> ()
  | _ -> Alcotest.fail "expected Sat without a budget"

let test_budget_generous_is_invisible () =
  Solver.reset_all_for_tests ();
  Solver.set_budget
    (Some (Solver.budget ~deadline:30. ~conflicts:1_000_000 ()));
  Fun.protect
    ~finally:(fun () -> Solver.set_budget None)
    (fun () ->
      (match Solver.check (hard_query ()) with
      | Solver.Sat _ -> ()
      | _ -> Alcotest.fail "expected Sat under a generous budget");
      let s = Solver.stats () in
      Alcotest.(check int) "no escalations" 0 s.Solver.budget_escalations;
      Alcotest.(check int) "no exhaustions" 0 s.Solver.budget_exhaustions)

let test_budget_validation () =
  (match Solver.budget ~deadline:(-1.) () with
  | _ -> Alcotest.fail "expected Invalid_argument for a negative deadline"
  | exception Invalid_argument _ -> ());
  (match Solver.budget ~conflicts:(-5) () with
  | _ -> Alcotest.fail "expected Invalid_argument for negative conflicts"
  | exception Invalid_argument _ -> ());
  match Solver.budget ~escalations:(-1) () with
  | _ -> Alcotest.fail "expected Invalid_argument for negative escalations"
  | exception Invalid_argument _ -> ()

let test_incremental_budget () =
  Solver.reset_all_for_tests ();
  let x = Term.fresh_var ~name:"rbi_x" (Term.Bitvec 8) in
  let y = Term.fresh_var ~name:"rbi_y" (Term.Bitvec 8) in
  let session = Solver.Incremental.create () in
  Solver.Incremental.assert_always session
    (Term.eq (Term.bxor (Term.var x) (Term.var y)) (Term.int ~width:8 5));
  let q = [ Term.eq (Term.add (Term.var x) (Term.var y)) (Term.int ~width:8 9) ] in
  Solver.set_budget (Some (Solver.budget ~conflicts:0 ~escalations:1 ()));
  Fun.protect
    ~finally:(fun () -> Solver.set_budget None)
    (fun () ->
      match Solver.Incremental.check session q with
      | Solver.Unknown -> ()
      | _ -> Alcotest.fail "expected Unknown from a zero-budget session");
  match Solver.Incremental.check session q with
  | Solver.Sat _ -> ()
  | _ -> Alcotest.fail "expected Sat once the budget is lifted"

(* --- fault injection --------------------------------------------------------- *)

let test_fault_injection () =
  Solver.reset_all_for_tests ();
  Solver.set_fault_injection ~rate:1.0 ();
  Fun.protect
    ~finally:(fun () -> Solver.set_fault_injection ())
    (fun () ->
      Alcotest.(check (float 0.)) "rate readable" 1.0 (Solver.fault_rate ());
      (match Solver.check (hard_query ()) with
      | Solver.Unknown -> ()
      | _ -> Alcotest.fail "expected Unknown at fault rate 1");
      Alcotest.(check bool) "faults counted" true
        ((Solver.stats ()).Solver.injected_faults > 0));
  Alcotest.(check (float 0.)) "off again" 0. (Solver.fault_rate ());
  (match Solver.check (hard_query ()) with
  | Solver.Sat _ -> ()
  | _ -> Alcotest.fail "expected Sat with injection off");
  match Solver.set_fault_injection ~rate:1.5 () with
  | _ -> Alcotest.fail "expected Invalid_argument for rate > 1"
  | exception Invalid_argument _ -> ()

(* --- random client/server pairs (same shape as the determinism suite) -------- *)

let message_size = 3
let layout = Layout.make ~name:"rob" [ ("tag", 1); ("a", 1); ("b", 1) ]

type tree =
  | Leaf of bool (* accept? *)
  | Node of { field : int; op : int; konst : int; t : tree; f : tree }

type field_spec = Fconst of int | Fbounded of int

let tree_gen =
  QCheck2.Gen.(
    sized_size (int_range 1 3) @@ fix (fun self depth ->
        let leaf = map (fun b -> Leaf b) bool in
        if depth = 0 then leaf
        else
          frequency
            [
              (1, leaf);
              ( 3,
                let* field = int_range 0 (message_size - 1) in
                let* op = int_range 0 3 in
                let* konst = int_range 0 7 in
                let* t = self (depth - 1) in
                let* f = self (depth - 1) in
                return (Node { field; op; konst; t; f }) );
            ]))

let client_gen =
  QCheck2.Gen.(
    list_size (int_range 1 2)
      (list_repeat message_size
         (oneof
            [
              map (fun c -> Fconst c) (int_range 0 7);
              map (fun hi -> Fbounded hi) (int_range 0 7);
            ])))

let case_gen = QCheck2.Gen.pair tree_gen client_gen

let server_of_tree tree =
  let open Builder in
  let labels = ref 0 in
  let next () =
    incr labels;
    string_of_int !labels
  in
  let rec block = function
    | Leaf true -> [ mark_accept ("ok" ^ next ()) ]
    | Leaf false -> [ mark_reject ("no" ^ next ()) ]
    | Node { field; op; konst; t; f } ->
        let byte = load "msg" (i8 field) in
        let cond =
          match op with
          | 0 -> byte =: i8 konst
          | 1 -> byte <>: i8 konst
          | 2 -> byte <: i8 konst
          | _ -> byte >: i8 konst
        in
        [ if_ cond (block t) (block f) ]
  in
  prog "rob-server"
    ~buffers:[ ("msg", message_size) ]
    (receive "msg" :: block tree)

let client_of_spec idx spec =
  let open Builder in
  let body =
    List.concat
      (List.mapi
         (fun i fs ->
           match fs with
           | Fconst c -> [ store "msg" (i8 i) (i8 c) ]
           | Fbounded hi ->
               let name = Printf.sprintf "rin%d_%d" idx i in
               [
                 read_input name ~width:8;
                 when_ (v name >: i8 hi) [ halt ];
                 store "msg" (i8 i) (v name);
               ])
         spec)
    @ [ send (i8 0) "msg" ]
  in
  prog
    (Printf.sprintf "rob-client%d" idx)
    ~buffers:[ ("msg", message_size) ]
    body

let extract_case (tree, client_specs) =
  let server = server_of_tree tree in
  let clients = List.mapi client_of_spec client_specs in
  Solver.reset_all_for_tests ();
  Term.reset_fresh_counter ();
  let client, _ = Client_extract.extract ~layout clients in
  (client, server, Term.fresh_counter_value ())

let run_case ?(config = Search.default_config) ~base client server =
  Solver.reset_all_for_tests ();
  Term.set_fresh_counter base;
  Search.run ~config ~client ~server ()

(* Trojan identity across degraded runs: the accept label, which the
   generated servers make unique per accepting path. (State ids cannot be
   compared — they are allocation/route ranks, and a degraded run that
   keeps extra states alive shifts everyone's rank.) *)
let trojan_labels (r : Search.report) =
  List.sort_uniq compare
    (List.map (fun (t : Search.trojan) -> t.Search.accept_label) r.Search.trojans)

let qcheck_fault_superset =
  QCheck2.Test.make
    ~name:"injected Unknowns only ever add trojans (never drop one)" ~count:10
    case_gen
    (fun case ->
      let client, server, base = extract_case case in
      let clean = run_case ~base client server in
      if not (Search.coverage_complete clean.Search.coverage) then false
      else begin
        let clean_labels = trojan_labels clean in
        (* each chaos configuration runs on both solver routes: the default
           assumption-based frame contexts and the scratch-instance fallback
           ([--no-incremental]); degraded answers must over-approximate on
           either one *)
        let faulty_ok (domains, seed, incremental) =
          let prev = Solver.incremental_enabled () in
          Solver.set_fault_injection ~rate:0.3 ~seed ();
          Solver.set_incremental incremental;
          let faulty =
            Fun.protect
              ~finally:(fun () ->
                Solver.set_fault_injection ();
                Solver.set_incremental prev)
              (fun () ->
                run_case
                  ~config:{ Search.default_config with Search.domains }
                  ~base client server)
          in
          let inc = (Solver.aggregate_stats ()).Solver.incremental_checks in
          let faulty_labels = trojan_labels faulty in
          (* the toggle really selects the route: the scratch leg must never
             touch a frame context *)
          (incremental || inc = 0)
          &&
          (* every fault-free trojan state is still reported… *)
          List.for_all (fun l -> List.mem l faulty_labels) clean_labels
          (* …faults never make coverage incomplete (they degrade answers,
             they don't lose shards)… *)
          && Search.coverage_complete faulty.Search.coverage
          (* …and a clean run's confirmed trojans stay confirmed: only a
             degraded witness query may flag one unconfirmed *)
          && List.for_all
               (fun (t : Search.trojan) ->
                 t.Search.confirmed
                 || faulty.Search.coverage.Search.unknown_witness > 0)
               faulty.Search.trojans
        in
        List.for_all faulty_ok
          [ (1, 7, true); (4, 42, true); (1, 7, false); (4, 42, false) ]
      end)

let qcheck_budget_superset =
  QCheck2.Test.make
    ~name:"a starved solver budget over-approximates, never drops" ~count:10
    case_gen
    (fun case ->
      let client, server, base = extract_case case in
      let clean = run_case ~base client server in
      let clean_labels = trojan_labels clean in
      (* starvation must stay an over-approximation on both solver routes:
         a frame context that runs out of rungs degrades exactly as soundly
         as a starved scratch instance *)
      let starved_ok incremental =
        let prev = Solver.incremental_enabled () in
        Solver.set_incremental incremental;
        let starved =
          Fun.protect
            ~finally:(fun () -> Solver.set_incremental prev)
            (fun () ->
              run_case
                ~config:
                  {
                    Search.default_config with
                    Search.solver_budget =
                      Some (Solver.budget ~conflicts:0 ~escalations:1 ());
                  }
                ~base client server)
        in
        let starved_labels = trojan_labels starved in
        List.for_all (fun l -> List.mem l starved_labels) clean_labels
        && Search.coverage_complete starved.Search.coverage
      in
      starved_ok true && starved_ok false)

(* --- shard chaos: retry and failure isolation -------------------------------- *)

exception Chaos_crash

let fixed_case =
  ( Node
      {
        field = 0;
        op = 2;
        konst = 4;
        t = Node { field = 1; op = 0; konst = 2; t = Leaf true; f = Leaf false };
        f = Leaf true;
      },
    [ [ Fbounded 5; Fconst 2; Fbounded 3 ]; [ Fconst 1; Fbounded 6; Fconst 0 ] ]
  )

let test_chaos_shard_retry () =
  let client, server, base = extract_case fixed_case in
  let clean = run_case ~base client server in
  let crashes = Atomic.make 0 in
  let config =
    {
      Search.default_config with
      Search.domains = 4;
      Search.shard_backoff = (fun _ -> 0.);
      Search.chaos =
        Some
          (fun ~shard_index ~attempt ->
            if shard_index = 0 && attempt < 2 then begin
              Atomic.incr crashes;
              raise Chaos_crash
            end);
    }
  in
  let report = run_case ~config ~base client server in
  Alcotest.(check int) "chaos fired twice" 2 (Atomic.get crashes);
  Alcotest.(check bool) "coverage complete after retries" true
    (Search.coverage_complete report.Search.coverage);
  Alcotest.(check int) "retries accounted" 2
    report.Search.coverage.Search.shard_retry_attempts;
  Alcotest.(check string) "report identical to the undisturbed run"
    (Report.report_digest clean)
    (Report.report_digest report)

let test_chaos_shard_failure_isolated () =
  let client, server, base = extract_case fixed_case in
  let clean = run_case ~base client server in
  let config =
    {
      Search.default_config with
      Search.domains = 4;
      Search.shard_retries = 1;
      Search.shard_backoff = (fun _ -> 0.);
      Search.chaos =
        Some
          (fun ~shard_index ~attempt:_ ->
            if shard_index = 1 then raise Chaos_crash);
    }
  in
  (* the hopeless shard must not tear down the run: every other shard's
     results are delivered, the loss is reported as coverage *)
  let report = run_case ~config ~base client server in
  let c = report.Search.coverage in
  Alcotest.(check (list int)) "failed shard recorded" [ 1 ] c.Search.failed_shards;
  Alcotest.(check int) "everything else completed"
    (c.Search.total_shards - 1)
    c.Search.completed_shards;
  Alcotest.(check bool) "coverage partial" false (Search.coverage_complete c);
  Alcotest.(check bool) "partial digest differs from the complete one" true
    (Report.report_digest clean <> Report.report_digest report)

(* --- cooperative cancellation and checkpoint/resume -------------------------- *)

let fresh_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  if Sys.file_exists dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir)
  else Unix.mkdir dir 0o755;
  dir

let test_checkpoint_resume_identical () =
  let client, server, base = extract_case fixed_case in
  let dir = fresh_dir "achilles-rob-resume" in
  let config ~resume =
    {
      Search.default_config with
      Search.domains = 4;
      Search.checkpoint_dir = Some dir;
      Search.resume = resume;
    }
  in
  let full = run_case ~config:(config ~resume:false) ~base client server in
  let digest = Report.report_digest full in
  let shards = Sys.readdir dir in
  Alcotest.(check int) "one checkpoint per shard"
    full.Search.coverage.Search.total_shards (Array.length shards);
  (* lose a couple of shards, as a kill -9 mid-run would *)
  Sys.remove (Filename.concat dir "shard-0001.ckpt");
  Sys.remove (Filename.concat dir "shard-0003.ckpt");
  let resumed = run_case ~config:(config ~resume:true) ~base client server in
  Alcotest.(check string) "resumed report byte-identical" digest
    (Report.report_digest resumed);
  Alcotest.(check int) "only missing shards re-explored"
    (full.Search.coverage.Search.total_shards - 2)
    resumed.Search.coverage.Search.resumed_shards;
  Alcotest.(check bool) "resumed coverage complete" true
    (Search.coverage_complete resumed.Search.coverage)

let test_checkpoint_fingerprint_guard () =
  let client, server, base = extract_case fixed_case in
  let dir = fresh_dir "achilles-rob-fpr" in
  let config ~witnesses ~resume =
    {
      Search.default_config with
      Search.domains = 2;
      Search.witnesses_per_path = witnesses;
      Search.checkpoint_dir = Some dir;
      Search.resume = resume;
    }
  in
  ignore (run_case ~config:(config ~witnesses:1 ~resume:false) ~base client server);
  (* a config change invalidates every checkpoint: nothing may be resumed
     into a run it no longer matches *)
  let r = run_case ~config:(config ~witnesses:2 ~resume:true) ~base client server in
  Alcotest.(check int) "stale checkpoints ignored" 0
    r.Search.coverage.Search.resumed_shards

let test_cancel_partial_then_resume () =
  let client, server, base = extract_case fixed_case in
  let clean = run_case ~base client server in
  let dir = fresh_dir "achilles-rob-cancel" in
  let calls = Atomic.make 0 in
  let interrupted_config =
    {
      Search.default_config with
      Search.domains = 4;
      Search.checkpoint_dir = Some dir;
      (* trips partway through the run, like a SIGINT would: the flag is
         polled at every branch constraint and at shard boundaries *)
      Search.cancel = (fun () -> Atomic.fetch_and_add calls 1 >= 10);
    }
  in
  let partial = run_case ~config:interrupted_config ~base client server in
  let c = partial.Search.coverage in
  Alcotest.(check bool) "interruption reported" true c.Search.interrupted;
  Alcotest.(check bool) "not all shards completed" true
    (c.Search.completed_shards < c.Search.total_shards);
  Alcotest.(check bool) "partial run digests differently" true
    (Report.report_digest clean <> Report.report_digest partial);
  (* the flush is per completed shard: picking the run back up from the
     checkpoint directory reproduces the uninterrupted report exactly *)
  let resumed =
    run_case
      ~config:
        {
          Search.default_config with
          Search.domains = 4;
          Search.checkpoint_dir = Some dir;
          Search.resume = true;
        }
      ~base client server
  in
  Alcotest.(check string) "resume completes to the clean report"
    (Report.report_digest clean)
    (Report.report_digest resumed);
  Alcotest.(check bool) "resumed coverage complete" true
    (Search.coverage_complete resumed.Search.coverage)

(* --- FSP end-to-end under faults (the acceptance drill) ----------------------- *)

let distinct_trojan_states (r : Search.report) =
  List.sort_uniq compare
    (List.map
       (fun (t : Search.trojan) -> t.Search.server_state_id)
       r.Search.trojans)

let server_fsp = Fsp_model.server

let test_fsp_under_faults () =
  Solver.reset_all_for_tests ();
  Term.reset_fresh_counter ();
  let fsp_config ~domains =
    {
      Search.default_config with
      Search.mask = Some Fsp_model.analysis_mask;
      Search.witnesses_per_path = 2;
      Search.distinct_by = Some Fsp_model.block_class;
      Search.domains;
    }
  in
  let client, _ =
    Client_extract.extract ~layout:Fsp_model.layout (Fsp_model.clients ())
  in
  let base = Term.fresh_counter_value () in
  let clean = run_case ~config:(fsp_config ~domains:4) ~base client server_fsp in
  let clean_states = distinct_trojan_states clean in
  Solver.set_fault_injection ~rate:0.05 ~seed:0xf5b ();
  (* pin the frame-context route for the chaos run, so the drill stays
     meaningful when the suite runs under ACHILLES_INCREMENTAL=0 *)
  let prev_incremental = Solver.incremental_enabled () in
  Solver.set_incremental true;
  let faulty =
    Fun.protect
      ~finally:(fun () ->
        Solver.set_fault_injection ();
        Solver.set_incremental prev_incremental)
      (fun () ->
        run_case ~config:(fsp_config ~domains:4) ~base client server_fsp)
  in
  (* the chaos run really went down the route under test: frame contexts
     decided queries while faults were being injected into them *)
  let s = Solver.aggregate_stats () in
  Alcotest.(check bool) "faults landed on the incremental path" true
    (s.Solver.injected_faults > 0 && s.Solver.incremental_checks > 0);
  Alcotest.(check bool) "faulty run terminated with complete coverage" true
    (Search.coverage_complete faulty.Search.coverage);
  Alcotest.(check bool) "no fewer trojan-bearing server states" true
    (List.length (distinct_trojan_states faulty) >= List.length clean_states);
  Alcotest.(check bool) "all clean-run trojans are confirmed" true
    (List.for_all (fun (t : Search.trojan) -> t.Search.confirmed) clean.Search.trojans);
  (* every confirmed witness of the degraded run still fire-drills cleanly;
     unconfirmed ones are skipped, not misreported as rejections *)
  let confirmation =
    Achilles_runtime.Inject.confirm ~server:server_fsp faulty.Search.trojans
  in
  Alcotest.(check int) "no false positives among confirmed witnesses" 0
    confirmation.Achilles_runtime.Inject.rejected

let () =
  Alcotest.run "robustness"
    [
      ( "pool-retries",
        [
          Alcotest.test_case "retry then succeed" `Quick
            test_pool_retry_then_succeed;
          Alcotest.test_case "retries exhausted" `Quick test_pool_retry_exhausted;
          Alcotest.test_case "backoff schedule" `Quick test_pool_backoff_called;
        ] );
      ( "solver-budgets",
        [
          Alcotest.test_case "exhaustion ladder" `Quick test_budget_exhaustion;
          Alcotest.test_case "generous budget invisible" `Quick
            test_budget_generous_is_invisible;
          Alcotest.test_case "validation" `Quick test_budget_validation;
          Alcotest.test_case "incremental sessions" `Quick
            test_incremental_budget;
          Alcotest.test_case "fault injection" `Quick test_fault_injection;
        ] );
      ( "degradation",
        [
          QCheck_alcotest.to_alcotest ~verbose:false qcheck_fault_superset;
          QCheck_alcotest.to_alcotest ~verbose:false qcheck_budget_superset;
        ] );
      ( "shard-isolation",
        [
          Alcotest.test_case "chaos retry" `Quick test_chaos_shard_retry;
          Alcotest.test_case "failure isolated" `Quick
            test_chaos_shard_failure_isolated;
        ] );
      ( "checkpoint-resume",
        [
          Alcotest.test_case "resume byte-identical" `Quick
            test_checkpoint_resume_identical;
          Alcotest.test_case "fingerprint guard" `Quick
            test_checkpoint_fingerprint_guard;
          Alcotest.test_case "cancel, flush, resume" `Quick
            test_cancel_partial_then_resume;
        ] );
      ( "fsp-drill",
        [ Alcotest.test_case "FSP under faults" `Slow test_fsp_under_faults ] );
    ]
