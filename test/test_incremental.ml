(* Differential harness for assumption-based incremental solving: the
   frame-stack contexts ([Solver.Frames] / [Solver.check_assuming]) must
   agree verdict-for-verdict with the scratch solver on arbitrary query
   sequences — Unknown may only widen — across sharing modes and domain
   counts; plus regression coverage for escalation-rung clause retention and
   the registry-wide context clear. *)

open Achilles_smt

let with_sharing mode f =
  Fun.protect ~finally:(fun () -> Term.set_sharing true) (fun () ->
      Term.set_sharing mode;
      f ())

let with_incremental mode f =
  let prev = Solver.incremental_enabled () in
  Fun.protect ~finally:(fun () -> Solver.set_incremental prev) (fun () ->
      Solver.set_incremental mode;
      f ())

(* --- a small constraint language -------------------------------------------

   Queries are conjunctions of comparisons over a shared pool of 8-bit
   variables, with enough arithmetic mixed in to give the bitblaster real
   circuits (and the cone restriction real sharing) without making any
   single query slow. *)

let n_vars = 4

let make_vars () =
  Array.init n_vars (fun i ->
      Term.var
        (Term.fresh_var ~name:(Printf.sprintf "inc%d" i) (Term.Bitvec 8)))

type atom =
  | ACmp of int * int * int (* cmp_op index, var i, var j *)
  | AConst of int * int * int (* cmp_op index, var i, constant *)
  | AArith of int * int * int * int (* bin_op, cmp: vi OP vj CMP const *)
  | ANeg of atom

let cmp_ops = [| Term.eq; Term.ult; Term.ule; Term.slt; Term.sle |]
let bin_ops = [| Term.add; Term.sub; Term.mul; Term.band; Term.bxor |]

let rec build_atom vars = function
  | ACmp (c, i, j) -> cmp_ops.(c) vars.(i) vars.(j)
  | AConst (c, i, k) -> cmp_ops.(c) vars.(i) (Term.int ~width:8 k)
  | AArith (b, c, i, j) ->
      cmp_ops.(c) (bin_ops.(b) vars.(i) vars.(j)) (Term.int ~width:8 ((i * 37) + j))
  | ANeg a -> Term.not_ (build_atom vars a)

let gen_atom =
  let open QCheck2.Gen in
  let base =
    oneof
      [
        map3 (fun c i j -> ACmp (c, i, j)) (int_bound 4) (int_bound (n_vars - 1))
          (int_bound (n_vars - 1));
        map3 (fun c i k -> AConst (c, i, k)) (int_bound 4)
          (int_bound (n_vars - 1)) (int_bound 255);
        map3
          (fun b c (i, j) -> AArith (b, c, i, j))
          (int_bound 4) (int_bound 4)
          (pair (int_bound (n_vars - 1)) (int_bound (n_vars - 1)));
      ]
  in
  QCheck2.Gen.oneof [ base; QCheck2.Gen.map (fun a -> ANeg a) base ]

let verdict = function
  | Solver.Sat _ -> `Sat
  | Solver.Unsat -> `Unsat
  | Solver.Unknown -> `Unknown

(* Unknown on either side excuses a mismatch (soundness lets a budgeted or
   faulty run degrade); a definite Sat on one side and Unsat on the other
   never has an excuse. *)
let verdicts_agree a b =
  match (verdict a, verdict b) with
  | `Unknown, _ | _, `Unknown -> true
  | va, vb -> va = vb

(* --- differential property: check_assuming vs scratch ---------------------- *)

(* One random case: a path (innermost-first, as [State.path]) and one extra
   conjunct. The incremental route answers through the per-domain frame
   stack; the oracle is the always-scratch [Solver.check] on the same
   conjunction. *)
let run_differential (path_atoms, extra_atom) =
  (* pin the route under test: the property must not go vacuous when the
     suite runs under ACHILLES_INCREMENTAL=0 (the CI scratch leg) *)
  with_incremental true (fun () ->
      let vars = make_vars () in
      let path = List.map (build_atom vars) path_atoms in
      let extra = build_atom vars extra_atom in
      let incremental = Solver.check_assuming ~path [ extra ] in
      let scratch = Solver.check (extra :: path) in
      verdicts_agree incremental scratch)

let gen_case =
  QCheck2.Gen.(pair (list_size (int_bound 6) gen_atom) gen_atom)

let qcheck_differential_sharing_on =
  QCheck2.Test.make ~name:"check_assuming = scratch check (sharing on)"
    ~count:150 gen_case
    (fun case -> with_sharing true (fun () -> run_differential case))

let qcheck_differential_sharing_off =
  QCheck2.Test.make ~name:"check_assuming = scratch check (sharing off)"
    ~count:100 gen_case
    (fun case -> with_sharing false (fun () -> run_differential case))

(* The same property exercised from several domains at once: each worker
   owns a private frame context (Domain.DLS), so agreement must hold under
   parallel query streams too. *)
let test_differential_parallel () =
  Solver.reset_all_for_tests ();
  let cases =
    QCheck2.Gen.generate ~n:120 ~rand:(Random.State.make [| 0x1ac4e |]) gen_case
  in
  let shards = 4 in
  let results =
    (* the outer wrap keeps the global toggle stable while workers run *)
    with_incremental true (fun () ->
        List.init shards (fun s ->
            Domain.spawn (fun () ->
                List.filteri (fun i _ -> i mod shards = s) cases
                |> List.for_all run_differential))
        |> List.map Domain.join)
  in
  Alcotest.(check (list bool))
    "every shard agrees with scratch"
    (List.map (fun _ -> true) results)
    results;
  Solver.reset_all_for_tests ()

(* --- frame-stack behaviour -------------------------------------------------- *)

(* Pushing a frame then popping it restores the previous verdict for a fixed
   probe set: pop really does retire the constraint even though its guard
   stays registered for reuse. *)
let qcheck_pop_restores_verdicts =
  QCheck2.Test.make ~name:"pop restores pre-push verdicts" ~count:80
    QCheck2.Gen.(triple (list_size (int_bound 4) gen_atom) gen_atom
                   (list_size (int_bound 3) gen_atom))
    (fun (base_atoms, pushed_atom, probe_atoms) ->
      with_sharing true (fun () ->
          let vars = make_vars () in
          let c = Solver.Frames.create () in
          List.iter
            (fun a -> Solver.Frames.push c (build_atom vars a))
            base_atoms;
          let probes = List.map (fun a -> [ build_atom vars a ]) probe_atoms in
          let before = List.map (fun p -> verdict (Solver.Frames.check c p)) probes in
          Solver.Frames.push c (build_atom vars pushed_atom);
          ignore (List.map (fun p -> Solver.Frames.check c p) probes);
          Solver.Frames.pop c;
          let after = List.map (fun p -> verdict (Solver.Frames.check c p)) probes in
          before = after))

let test_set_path_mirrors_stack () =
  let vars = make_vars () in
  let a = Term.ult vars.(0) vars.(1) in
  let b = Term.ult vars.(1) vars.(2) in
  let b' = Term.not_ b in
  let c = Solver.Frames.create () in
  (* paths are innermost-first, like State.path *)
  Solver.Frames.set_path c [ b; a ];
  Alcotest.(check int) "two frames" 2 (Solver.Frames.depth c);
  Solver.Frames.set_path c [ b'; a ];
  Alcotest.(check int) "sibling flip keeps the prefix" 2 (Solver.Frames.depth c);
  Alcotest.(check bool)
    "stack mirrors the new path" true
    (List.for_all2 Term.equal (Solver.Frames.path c) [ b'; a ]);
  Solver.Frames.set_path c [];
  Alcotest.(check int) "backtrack to root pops all" 0 (Solver.Frames.depth c);
  Alcotest.check_raises "pop on empty stack rejected"
    (Invalid_argument "Solver.Frames.pop: empty frame stack") (fun () ->
      Solver.Frames.pop c)

(* --- escalation-rung clause retention --------------------------------------- *)

(* A 12x12-bit factoring query that needs ~1000 conflicts: under a
   2-conflict ambient budget the first rungs time out, and the retry ladder
   must carry the learnt clauses forward (rung_retained counts the clauses
   alive when a rung > 0 starts). The final verdict must still be Sat —
   escalation, not degradation. *)
let test_rung_retains_learnts () =
  Solver.reset_all_for_tests ();
  Fun.protect ~finally:(fun () -> Solver.set_budget None) (fun () ->
      Solver.set_budget (Some (Solver.budget ~conflicts:2 ~escalations:6 ()));
      let x = Term.var (Term.fresh_var ~name:"fx" (Term.Bitvec 12)) in
      let y = Term.var (Term.fresh_var ~name:"fy" (Term.Bitvec 12)) in
      (* zero-extend so the product cannot wrap: 2797 * 3023 = 8455331 *)
      let ext t = Term.concat (Term.int ~width:12 0) t in
      let q =
        [
          Term.eq (Term.mul (ext x) (ext y)) (Term.int ~width:24 8455331);
          Term.ult (Term.int ~width:12 1) x;
          Term.ult (Term.int ~width:12 1) y;
          Term.ule x y;
        ]
      in
      let c = Solver.Frames.create () in
      List.iter (fun t -> Solver.Frames.push c t) q;
      (match Solver.Frames.check c [] with
      | Solver.Sat _ -> ()
      | Solver.Unsat -> Alcotest.fail "factoring query must be Sat"
      | Solver.Unknown ->
          Alcotest.fail "escalation ladder must reach an answer");
      let st = Solver.stats () in
      Alcotest.(check bool)
        "query escalated at least once" true
        (st.Solver.budget_escalations >= 1);
      Alcotest.(check bool)
        "escalation rungs inherited learnt clauses" true
        (st.Solver.rung_retained > 0);
      Alcotest.(check bool)
        "context still holds the learnts" true
        (Solver.Frames.learnts c > 0));
  Solver.reset_all_for_tests ()

(* --- unsat cores ------------------------------------------------------------ *)

let test_unsat_core_localizes () =
  let vars = make_vars () in
  let irrelevant = Term.ult vars.(2) vars.(3) in
  let lo = Term.ult (Term.int ~width:8 10) vars.(0) in
  let hi = Term.ult vars.(0) (Term.int ~width:8 5) in
  let c = Solver.Frames.create () in
  Solver.Frames.push c irrelevant;
  Solver.Frames.push c lo;
  (match Solver.Frames.check c [ hi ] with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "contradictory bounds must be Unsat");
  match Solver.Frames.unsat_core c with
  | None -> Alcotest.fail "Unsat answer must produce a core"
  | Some core ->
      Alcotest.(check bool)
        "core contains the conflicting bounds" true
        (List.exists (Term.equal lo) core && List.exists (Term.equal hi) core)

(* --- registry-wide context clear -------------------------------------------- *)

(* clear_cache must retire every domain's incremental context, not just the
   caller's: worker domains allocate contexts lazily via check_assuming, and
   a reconfiguration clear from the main domain must reach them all (the
   next check then lazily rebuilds a fresh, correct context). *)
let test_clear_cache_resets_contexts () =
  Solver.reset_all_for_tests ();
  with_incremental true (fun () ->
      let vars = make_vars () in
      let probe d =
        [ Term.eq vars.(0) (Term.int ~width:8 d) ]
      in
      let workers =
        List.init 2 (fun d ->
            Domain.spawn (fun () ->
                match Solver.check_assuming ~path:(probe d) [ Term.ult vars.(1) vars.(2) ] with
                | Solver.Sat _ -> true
                | _ -> false))
      in
      let worker_ok = List.map Domain.join workers in
      Alcotest.(check (list bool)) "workers answered" [ true; true ] worker_ok;
      Alcotest.(check bool)
        "workers allocated incremental contexts" true
        (Solver.aggregate_incremental_contexts () >= 2);
      Solver.clear_cache ();
      Alcotest.(check int)
        "clear_cache retires every context" 0
        (Solver.aggregate_incremental_contexts ());
      (* and the lazily-rebuilt context still answers correctly *)
      match
        Solver.check_assuming ~path:(probe 7)
          [ Term.eq vars.(0) (Term.int ~width:8 9) ]
      with
      | Solver.Unsat -> ()
      | _ -> Alcotest.fail "rebuilt context must still refute x=7 /\\ x=9");
  Solver.reset_all_for_tests ()

(* --- escape hatch ------------------------------------------------------------ *)

let test_incremental_toggle () =
  with_incremental false (fun () ->
      Solver.reset_all_for_tests ();
      let vars = make_vars () in
      (* with incrementality off, check_assuming takes the scratch route and
         allocates no context *)
      (match
         Solver.check_assuming
           ~path:[ Term.ult vars.(0) vars.(1) ]
           [ Term.ult vars.(1) vars.(0) ]
       with
      | Solver.Unsat -> ()
      | _ -> Alcotest.fail "scratch fallback must refute x<y /\\ y<x");
      Alcotest.(check int) "no incremental context allocated" 0
        (Solver.aggregate_incremental_contexts ());
      Alcotest.(check bool) "last_assumption_core disabled" true
        (Solver.last_assumption_core () = None);
      Solver.reset_all_for_tests ())

let () =
  let qsuite name tests =
    (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)
  in
  Alcotest.run "incremental"
    [
      qsuite "differential"
        [ qcheck_differential_sharing_on; qcheck_differential_sharing_off ];
      ( "parallel",
        [
          Alcotest.test_case "agreement across 4 domains" `Quick
            test_differential_parallel;
        ] );
      qsuite "frames" [ qcheck_pop_restores_verdicts ];
      ( "frame-stack",
        [
          Alcotest.test_case "set_path mirrors the DFS path" `Quick
            test_set_path_mirrors_stack;
          Alcotest.test_case "unsat core localizes the conflict" `Quick
            test_unsat_core_localizes;
        ] );
      ( "escalation",
        [
          Alcotest.test_case "rungs retain learnt clauses" `Quick
            test_rung_retains_learnts;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "clear_cache resets all contexts" `Quick
            test_clear_cache_resets_contexts;
          Alcotest.test_case "incremental off = scratch route" `Quick
            test_incremental_toggle;
        ] );
    ]
