(* The observability layer: JSON round-trips, domain-safe metric
   aggregation, the lock-protected JSONL writer under concurrent emission
   and mid-run interruption, self-time attribution in trace summaries, the
   Chrome exporter, and the guarantee that tracing never perturbs search
   results (digest equality on random cases, golden FSP digests). *)

open Achilles_smt
open Achilles_symvm
open Achilles_core
open Achilles_targets
module Obs = Achilles_obs.Obs

(* --- JSON round-trips --------------------------------------------------------- *)

let tricky_string = "q\"uote \\back\nnew\tline \r \001ctrl caf\xc3\xa9"

let field fields k =
  match List.assoc_opt k fields with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "missing field %S" k)

let check_num fields k expected =
  match field fields k with
  | Obs.Json.Num f -> Alcotest.(check (float 0.)) k expected f
  | _ -> Alcotest.fail (Printf.sprintf "field %S is not a number" k)

let check_str fields k expected =
  match field fields k with
  | Obs.Json.Str s -> Alcotest.(check string) k expected s
  | _ -> Alcotest.fail (Printf.sprintf "field %S is not a string" k)

let test_json_roundtrip () =
  let ev =
    {
      Obs.ev_t = 1.25;
      ev_tid = 3;
      ev_kind = "te\"st";
      ev_name = tricky_string;
      ev_args =
        [
          ("s", Obs.S tricky_string);
          ("i", Obs.I (-42));
          ("f", Obs.F 0.015625);
          ("whole", Obs.F 3.0);
          ("b", Obs.B true);
        ];
    }
  in
  match Obs.Json.parse_line (Obs.json_of_event ev) with
  | Error msg -> Alcotest.fail ("round-trip parse failed: " ^ msg)
  | Ok fields ->
      check_num fields "t" 1.25;
      check_num fields "tid" 3.;
      check_str fields "kind" "te\"st";
      check_str fields "name" tricky_string;
      check_str fields "s" tricky_string;
      check_num fields "i" (-42.);
      check_num fields "f" 0.015625;
      check_num fields "whole" 3.;
      (match field fields "b" with
      | Obs.Json.Bool true -> ()
      | _ -> Alcotest.fail "field b is not true")

let test_json_parse_errors () =
  let bad s =
    match Obs.Json.parse_line s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "expected parse error on %S" s)
  in
  bad "not json";
  bad "{\"a\":1} trailing";
  bad "{\"a\":}";
  bad "{\"a\":\"unterminated";
  bad "{\"a\":1,}";
  (match Obs.Json.parse_line "{}" with
  | Ok [] -> ()
  | _ -> Alcotest.fail "empty object should parse to an empty assoc");
  match Obs.Json.parse_line "{ \"a\" : null , \"b\" : -1.5e2 }" with
  | Ok [ ("a", Obs.Json.Null); ("b", Obs.Json.Num f) ] ->
      Alcotest.(check (float 0.)) "number with exponent" (-150.) f
  | _ -> Alcotest.fail "whitespace/null/exponent object misparsed"

(* --- DLS metrics and cross-domain aggregation --------------------------------- *)

let test_aggregate_across_domains () =
  Obs.reset_all ();
  let work () =
    Obs.span Obs.Negate (fun () -> ());
    Obs.count ~n:2 "obs.test_counter"
  in
  let domains = Array.init 4 (fun _ -> Domain.spawn work) in
  Array.iter Domain.join domains;
  work ();
  (* the current domain as well *)
  let snap = Obs.aggregate () in
  let negate = List.assoc Obs.Negate snap.Obs.phases in
  Alcotest.(check int) "spans summed over 5 domains" 5 negate.Obs.spans;
  Alcotest.(check bool) "elapsed non-negative" true (negate.Obs.seconds >= 0.);
  Alcotest.(check int) "histogram mass equals span count" 5
    (Array.fold_left ( + ) 0 negate.Obs.histogram);
  Alcotest.(check (option int)) "counter summed over 5 domains" (Some 10)
    (List.assoc_opt "obs.test_counter" snap.Obs.counters);
  Obs.reset_all ();
  let snap = Obs.aggregate () in
  let negate = List.assoc Obs.Negate snap.Obs.phases in
  Alcotest.(check int) "reset zeroes every registered slice" 0 negate.Obs.spans;
  Alcotest.(check (option int)) "reset clears counters" None
    (List.assoc_opt "obs.test_counter" snap.Obs.counters)

let test_phase_names_total () =
  Alcotest.(check int) "eleven phases" 11 (List.length Obs.all_phases);
  List.iter
    (fun p ->
      match Obs.phase_of_name (Obs.phase_name p) with
      | Some p' when p' = p -> ()
      | _ -> Alcotest.fail ("phase name does not round-trip: " ^ Obs.phase_name p))
    Obs.all_phases;
  Alcotest.(check (option reject)) "unknown phase name rejected" None
    (Obs.phase_of_name "no_such_phase")

(* --- the JSONL writer under concurrency --------------------------------------- *)

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !lines

let check_all_lines_parse path lines =
  List.iteri
    (fun i line ->
      match Obs.Json.parse_line line with
      | Ok _ -> ()
      | Error msg ->
          Alcotest.fail (Printf.sprintf "%s:%d: invalid JSON (%s)" path (i + 1) msg))
    lines

let test_concurrent_writer () =
  let file = Filename.temp_file "achilles-obs-conc" ".jsonl" in
  Obs.Trace.enable file;
  let per_domain = 50 in
  let domains =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              Obs.emit
                ~args:[ ("domain", Obs.I d); ("i", Obs.I i); ("s", Obs.S "x\"y\nz") ]
                ~kind:"test" ~name:"tick" ();
              Obs.span Obs.Checkpoint_io (fun () -> ())
            done))
  in
  Array.iter Domain.join domains;
  Obs.Trace.disable ();
  let lines = read_lines file in
  (* the trace_start meta stamp, then one tick + span_begin/span_end per
     iteration, no torn or merged lines *)
  Alcotest.(check int) "every event is exactly one line"
    ((4 * per_domain * 3) + 1)
    (List.length lines);
  (match Obs.Json.parse_line (List.hd lines) with
  | Ok fields ->
      check_str fields "kind" "meta";
      check_str fields "name" "trace_start"
  | Error msg -> Alcotest.fail ("meta line unparseable: " ^ msg));
  check_all_lines_parse file lines;
  let ticks =
    List.filter
      (fun l ->
        match Obs.Json.parse_line l with
        | Ok fields -> List.assoc_opt "kind" fields = Some (Obs.Json.Str "test")
        | Error _ -> false)
      lines
  in
  Alcotest.(check int) "all ticks accounted" (4 * per_domain) (List.length ticks);
  Sys.remove file

(* --- random client/server pairs (same harness as the robustness suite) --------- *)

let message_size = 3
let layout = Layout.make ~name:"obs" [ ("tag", 1); ("a", 1); ("b", 1) ]

type tree =
  | Leaf of bool
  | Node of { field : int; op : int; konst : int; t : tree; f : tree }

type field_spec = Fconst of int | Fbounded of int

let tree_gen =
  QCheck2.Gen.(
    sized_size (int_range 1 3) @@ fix (fun self depth ->
        let leaf = map (fun b -> Leaf b) bool in
        if depth = 0 then leaf
        else
          frequency
            [
              (1, leaf);
              ( 3,
                let* field = int_range 0 (message_size - 1) in
                let* op = int_range 0 3 in
                let* konst = int_range 0 7 in
                let* t = self (depth - 1) in
                let* f = self (depth - 1) in
                return (Node { field; op; konst; t; f }) );
            ]))

let client_gen =
  QCheck2.Gen.(
    list_size (int_range 1 2)
      (list_repeat message_size
         (oneof
            [
              map (fun c -> Fconst c) (int_range 0 7);
              map (fun hi -> Fbounded hi) (int_range 0 7);
            ])))

let case_gen = QCheck2.Gen.pair tree_gen client_gen

let server_of_tree tree =
  let open Builder in
  let labels = ref 0 in
  let next () =
    incr labels;
    string_of_int !labels
  in
  let rec block = function
    | Leaf true -> [ mark_accept ("ok" ^ next ()) ]
    | Leaf false -> [ mark_reject ("no" ^ next ()) ]
    | Node { field; op; konst; t; f } ->
        let byte = load "msg" (i8 field) in
        let cond =
          match op with
          | 0 -> byte =: i8 konst
          | 1 -> byte <>: i8 konst
          | 2 -> byte <: i8 konst
          | _ -> byte >: i8 konst
        in
        [ if_ cond (block t) (block f) ]
  in
  prog "obs-server"
    ~buffers:[ ("msg", message_size) ]
    (receive "msg" :: block tree)

let client_of_spec idx spec =
  let open Builder in
  let body =
    List.concat
      (List.mapi
         (fun i fs ->
           match fs with
           | Fconst c -> [ store "msg" (i8 i) (i8 c) ]
           | Fbounded hi ->
               let name = Printf.sprintf "oin%d_%d" idx i in
               [
                 read_input name ~width:8;
                 when_ (v name >: i8 hi) [ halt ];
                 store "msg" (i8 i) (v name);
               ])
         spec)
    @ [ send (i8 0) "msg" ]
  in
  prog
    (Printf.sprintf "obs-client%d" idx)
    ~buffers:[ ("msg", message_size) ]
    body

let extract_case (tree, client_specs) =
  let server = server_of_tree tree in
  let clients = List.mapi client_of_spec client_specs in
  Solver.reset_all_for_tests ();
  Term.reset_fresh_counter ();
  let client, _ = Client_extract.extract ~layout clients in
  (client, server, Term.fresh_counter_value ())

let run_case ?(config = Search.default_config) ~base client server =
  Solver.reset_all_for_tests ();
  Term.set_fresh_counter base;
  Search.run ~config ~client ~server ()

let fixed_case =
  ( Node
      {
        field = 0;
        op = 2;
        konst = 4;
        t = Node { field = 1; op = 0; konst = 2; t = Leaf true; f = Leaf false };
        f = Leaf true;
      },
    [ [ Fbounded 5; Fconst 2; Fbounded 3 ]; [ Fconst 1; Fbounded 6; Fconst 0 ] ]
  )

(* --- a cancelled run still leaves a flushed, parseable trace ------------------- *)

let test_interrupted_trace_parseable () =
  let client, server, base = extract_case fixed_case in
  let file = Filename.temp_file "achilles-obs-cancel" ".jsonl" in
  Obs.Trace.enable file;
  let calls = Atomic.make 0 in
  let config =
    {
      Search.default_config with
      Search.domains = 4;
      (* trips partway through the run, like a SIGINT/SIGTERM would: the
         flag is polled at every branch constraint and shard boundary *)
      Search.cancel = (fun () -> Atomic.fetch_and_add calls 1 >= 10);
    }
  in
  let partial = run_case ~config ~base client server in
  Alcotest.(check bool) "interruption reported" true
    partial.Search.coverage.Search.interrupted;
  (* read the file BEFORE disable: the per-line flush must already have
     left only whole lines behind, as a process kill would find them *)
  let lines = read_lines file in
  Alcotest.(check bool) "interrupted trace is non-empty" true (lines <> []);
  check_all_lines_parse file lines;
  Obs.Trace.disable ();
  (match Obs.Summary.load file with
  | Error msg -> Alcotest.fail ("summarize failed on interrupted trace: " ^ msg)
  | Ok s ->
      Alcotest.(check int) "summary saw every flushed line" (List.length lines)
        s.Obs.Summary.events;
      Alcotest.(check bool) "attribution is a fraction" true
        (s.Obs.Summary.attributed >= 0. && s.Obs.Summary.attributed <= 1.));
  Sys.remove file

(* --- self-time attribution on a hand-written trace ----------------------------- *)

let evt ?(args = []) t tid kind name =
  [
    ("t", Obs.Json.Num t);
    ("tid", Obs.Json.Num (float_of_int tid));
    ("kind", Obs.Json.Str kind);
    ("name", Obs.Json.Str name);
  ]
  @ args

let row_of s name =
  match
    List.find_opt
      (fun r -> r.Obs.Summary.row_phase = name)
      s.Obs.Summary.rows
  with
  | Some r -> r
  | None -> Alcotest.fail ("summary has no row for " ^ name)

let test_summary_self_time () =
  let events =
    [
      evt 0. 0 "span_begin" "server_se";
      evt 2. 0 "span_begin" "solver_query";
      evt 1. 1 "span_begin" "negate" (* left open: the run was killed *);
      evt 5. 0 "span_end" "solver_query" ~args:[ ("dur", Obs.Json.Num 3.) ];
      evt 6. 0 "counter" "foo" ~args:[ ("n", Obs.Json.Num 4.) ];
      evt 7. 0 "solver" "verdict" ~args:[ ("result", Obs.Json.Str "sat") ];
      evt 7.5 0 "cache" "hit";
      evt 7.6 0 "cache" "miss";
      evt 10. 0 "span_end" "server_se" (* no dur: derived from t - start *);
    ]
  in
  let s = Obs.Summary.of_events events in
  Alcotest.(check (float 1e-9)) "wall clock spans the event range" 10. s.Obs.Summary.wall;
  let server = row_of s "server_se" in
  Alcotest.(check (float 1e-9)) "server_se total" 10. server.Obs.Summary.total_seconds;
  Alcotest.(check (float 1e-9)) "server_se self excludes its child" 7.
    server.Obs.Summary.self_seconds;
  Alcotest.(check (float 1e-9)) "server_se max" 10. server.Obs.Summary.max_seconds;
  let solver = row_of s "solver_query" in
  Alcotest.(check (float 1e-9)) "solver_query self = dur (leaf span)" 3.
    solver.Obs.Summary.self_seconds;
  Alcotest.(check int) "solver_query span count" 1 solver.Obs.Summary.row_spans;
  (* the unclosed span on tid 1 is closed at the last timestamp *)
  let negate = row_of s "negate" in
  Alcotest.(check (float 1e-9)) "unclosed span closed at max t" 9.
    negate.Obs.Summary.total_seconds;
  (* tid 0 emitted first, so it is the main domain: its root span covers
     the whole window, and tid 1's orphan does not inflate coverage *)
  Alcotest.(check (float 1e-9)) "fully attributed" 1. s.Obs.Summary.attributed;
  Alcotest.(check (option int)) "counter event tallied" (Some 4)
    (List.assoc_opt "foo" s.Obs.Summary.counters);
  Alcotest.(check (option int)) "verdict tallied" (Some 1)
    (List.assoc_opt "sat" s.Obs.Summary.verdicts);
  Alcotest.(check int) "cache hit" 1 s.Obs.Summary.cache_hits;
  Alcotest.(check int) "cache miss" 1 s.Obs.Summary.cache_misses;
  Alcotest.(check int) "event count" 9 s.Obs.Summary.events

(* --- Chrome export ------------------------------------------------------------- *)

let test_chrome_export () =
  let src = Filename.temp_file "achilles-obs-chrome" ".jsonl" in
  let dst = src ^ ".chrome.json" in
  let oc = open_out src in
  List.iter
    (fun ev -> output_string oc (Obs.json_of_event ev ^ "\n"))
    [
      {
        Obs.ev_t = 0.001;
        ev_tid = 0;
        ev_kind = "span_begin";
        ev_name = "solver_query";
        ev_args = [];
      };
      {
        Obs.ev_t = 0.004;
        ev_tid = 0;
        ev_kind = "span_end";
        ev_name = "solver_query";
        ev_args = [ ("dur", Obs.F 0.003) ];
      };
      {
        Obs.ev_t = 0.005;
        ev_tid = 1;
        ev_kind = "drop";
        ev_name = "subsumed";
        ev_args = [ ("route", Obs.S "r\"1") ];
      };
    ];
  close_out oc;
  (match Obs.Chrome.export ~src ~dst with
  | Error msg -> Alcotest.fail ("export failed: " ^ msg)
  | Ok () -> ());
  let ic = open_in_bin dst in
  let out = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let contains needle =
    let nl = String.length needle and l = String.length out in
    let rec go i = i + nl <= l && (String.sub out i nl = needle || go (i + 1)) in
    Alcotest.(check bool) (Printf.sprintf "output contains %s" needle) true (go 0)
  in
  Alcotest.(check bool) "traceEvents wrapper" true
    (String.length out > 16 && String.sub out 0 16 = "{\"traceEvents\":[");
  contains "\"ph\":\"B\"";
  contains "\"ph\":\"E\"";
  contains "\"ph\":\"i\"";
  contains "\"s\":\"t\"";
  (* µs timestamps *)
  contains "\"ts\":1000.000";
  contains "\"ts\":4000.000";
  (* args carried over, with JSON escapes intact *)
  contains "\"route\":\"r\\\"1\"";
  contains "\"name\":\"drop:subsumed\"";
  Sys.remove src;
  Sys.remove dst

(* --- latency quantiles from log2-µs histograms --------------------------------- *)

let bucket_mid k = (2. ** (float_of_int k +. 0.5)) *. 1e-6

let test_estimate_quantile () =
  let hist = Array.make Obs.histogram_buckets 0 in
  Alcotest.(check (float 0.)) "empty histogram" 0.
    (Obs.estimate_quantile hist 0.5);
  hist.(0) <- 10;
  hist.(10) <- 10;
  Alcotest.(check (float 1e-12)) "p25 falls in bucket 0" (bucket_mid 0)
    (Obs.estimate_quantile hist 0.25);
  Alcotest.(check (float 1e-9)) "p75 falls in bucket 10" (bucket_mid 10)
    (Obs.estimate_quantile hist 0.75);
  Alcotest.(check (float 1e-9)) "p100 is the last occupied bucket" (bucket_mid 10)
    (Obs.estimate_quantile hist 1.0);
  Alcotest.(check (float 1e-12)) "p0 clamps to the first observation"
    (bucket_mid 0) (Obs.estimate_quantile hist 0.);
  (* bucket_of_seconds must land durations in the bucket the quantile
     estimator reads back *)
  let one_ms = Array.make Obs.histogram_buckets 0 in
  one_ms.(Obs.bucket_of_seconds 1e-3) <- 1;
  let est = Obs.estimate_quantile one_ms 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "1ms estimate within 2x (%g)" est)
    true
    (est >= 0.5e-3 && est <= 2e-3)

(* --- snapshot codec ------------------------------------------------------------ *)

let metrics_of ~spans ~seconds buckets =
  let histogram = Array.make Obs.histogram_buckets 0 in
  List.iter (fun (k, v) -> histogram.(k) <- v) buckets;
  { Obs.spans; seconds; histogram }

let snapshot_of cells counters =
  {
    Obs.phases =
      List.map
        (fun p ->
          match List.assoc_opt p cells with
          | Some m -> (p, m)
          | None -> (p, metrics_of ~spans:0 ~seconds:0. []))
        Obs.all_phases;
    counters = List.sort (fun (a, _) (b, _) -> String.compare a b) counters;
  }

let check_snap_eq label a b =
  List.iter2
    (fun (p, m) (p', m') ->
      let name = Obs.phase_name p in
      Alcotest.(check bool) (label ^ ": phase order " ^ name) true (p = p');
      Alcotest.(check int) (label ^ ": spans " ^ name) m.Obs.spans m'.Obs.spans;
      Alcotest.(check (float 0.))
        (label ^ ": seconds " ^ name)
        m.Obs.seconds m'.Obs.seconds;
      Alcotest.(check (array int))
        (label ^ ": histogram " ^ name)
        m.Obs.histogram m'.Obs.histogram)
    a.Obs.phases b.Obs.phases;
  Alcotest.(check (list (pair string int)))
    (label ^ ": counters") a.Obs.counters b.Obs.counters

let test_snapshot_codec () =
  let snap =
    snapshot_of
      [
        ( Obs.Solver_query,
          metrics_of ~spans:3 ~seconds:0.125 [ (2, 2); (5, 1) ] );
        (Obs.Server_se, metrics_of ~spans:1 ~seconds:1.5e-9 [ (0, 1) ]);
        (* wall-clock is a float that does not render prettily: it must
           still round-trip exactly through %.17g *)
        (Obs.Dist, metrics_of ~spans:7 ~seconds:0.1 [ (27, 7) ]);
      ]
      [ ("solver.queries", 42); ("weird name %\n\xffend", 2); ("", 1) ]
  in
  let text = Obs.Snapshot.encode snap in
  (match Obs.Snapshot.decode text with
  | Error e -> Alcotest.fail ("decode failed: " ^ e)
  | Ok snap' -> check_snap_eq "round-trip" snap snap');
  (* all-zero phases are elided from the text but restored on decode *)
  let empty = Obs.Snapshot.empty () in
  Alcotest.(check int)
    "empty snapshot is just the header" 1
    (List.length
       (List.filter
          (fun l -> String.trim l <> "")
          (String.split_on_char '\n' (Obs.Snapshot.encode empty))));
  (match Obs.Snapshot.decode (Obs.Snapshot.encode empty) with
  | Error e -> Alcotest.fail ("empty decode failed: " ^ e)
  | Ok e' -> check_snap_eq "empty round-trip" empty e');
  (* merge is a pointwise sum *)
  let doubled = Obs.Snapshot.merge snap snap in
  let solver = List.assoc Obs.Solver_query doubled.Obs.phases in
  Alcotest.(check int) "merge sums spans" 6 solver.Obs.spans;
  Alcotest.(check (float 1e-12)) "merge sums seconds" 0.25 solver.Obs.seconds;
  Alcotest.(check int) "merge sums histogram cells" 4 solver.Obs.histogram.(2);
  Alcotest.(check (option int)) "merge sums counters" (Some 84)
    (List.assoc_opt "solver.queries" doubled.Obs.counters);
  let merged_empty = Obs.Snapshot.merge snap (Obs.Snapshot.empty ()) in
  check_snap_eq "merge with empty is identity" snap merged_empty

let test_snapshot_decode_errors () =
  let bad text =
    match Obs.Snapshot.decode text with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "expected decode error on %S" text)
  in
  bad "";
  bad "not a snapshot";
  bad "achsnap nine\n";
  bad (Printf.sprintf "achsnap %d\n" (Obs.Snapshot.version + 1));
  bad "achsnap 1\nphase solver_query nope 1.0 -\n";
  bad "achsnap 1\nphase solver_query 1 1.0 0:x\n";
  bad "achsnap 1\nphase solver_query 1 1.0 99:1\n";
  bad "achsnap 1\ncounter foo bar\n";
  (* forward compatibility: unknown phases and record tags are skipped,
     known records on the same snapshot still land *)
  match
    Obs.Snapshot.decode
      "achsnap 1\nphase warp_drive 3 1.0 -\nfrobnicate x y\ncounter foo 3\n"
  with
  | Error e -> Alcotest.fail ("forward-compat decode failed: " ^ e)
  | Ok snap ->
      Alcotest.(check (option int)) "known counter decoded" (Some 3)
        (List.assoc_opt "foo" snap.Obs.counters);
      List.iter
        (fun (_, m) ->
          Alcotest.(check int) "unknown phase contributes nothing" 0 m.Obs.spans)
        snap.Obs.phases

let snapshot_gen =
  QCheck2.Gen.(
    let cell_gen =
      (* histogram mass forces spans > 0 so the phase is never elided while
         carrying data *)
      let* buckets =
        list_size (int_range 0 4)
          (pair (int_range 0 (Obs.histogram_buckets - 1)) (int_range 1 50))
      in
      let mass = List.fold_left (fun acc (_, v) -> acc + v) 0 buckets in
      let* extra = int_range 0 5 in
      let* seconds =
        oneof
          [
            return 0.;
            float_bound_inclusive 1000.;
            map (fun x -> x *. 1e-9) (float_bound_inclusive 1000.);
          ]
      in
      let spans = if mass = 0 && seconds = 0. then 0 else mass + extra in
      return (metrics_of ~spans ~seconds buckets)
    in
    let* cells = list_repeat (List.length Obs.all_phases) cell_gen in
    let* counters =
      list_size (int_range 0 6)
        (pair (string_size ~gen:printable (int_range 0 12))
           (int_range 0 10000))
    in
    let counters =
      List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) counters
    in
    return (snapshot_of (List.combine Obs.all_phases cells) counters))

let qcheck_snapshot_roundtrip =
  QCheck2.Test.make ~name:"snapshot encode/decode round-trip" ~count:200
    snapshot_gen (fun snap ->
      match Obs.Snapshot.decode (Obs.Snapshot.encode snap) with
      | Error _ -> false
      | Ok snap' ->
          List.for_all2
            (fun (p, m) (p', m') ->
              p = p'
              && m.Obs.spans = m'.Obs.spans
              && m.Obs.seconds = m'.Obs.seconds
              && m.Obs.histogram = m'.Obs.histogram)
            snap.Obs.phases snap'.Obs.phases
          && snap.Obs.counters = snap'.Obs.counters)

(* --- Prometheus text exposition ------------------------------------------------ *)

let out_lines s =
  List.filter (fun l -> l <> "") (String.split_on_char '\n' s)

let test_prometheus_escaping () =
  Alcotest.(check string) "label escaping" "a\\\\b\\\"c\\nd"
    (Obs.Prometheus.escape_label "a\\b\"c\nd");
  Alcotest.(check string) "help escaping keeps quotes" "a\\\\b\"c\\nd"
    (Obs.Prometheus.escape_help "a\\b\"c\nd");
  Alcotest.(check string) "metric name sanitized" "a_b_c_1"
    (Obs.Prometheus.metric_name "a b-c/1");
  let buf = Buffer.create 128 in
  Obs.Prometheus.counter buf ~name:"t_total" ~help:"line1\nline2"
    [ ([], 3.); ([ ("verdict", "a\"b\\c") ], 1.5) ];
  Alcotest.(check string) "counter family rendering"
    ("# HELP t_total line1\\nline2\n# TYPE t_total counter\n"
   ^ "t_total 3\nt_total{verdict=\"a\\\"b\\\\c\"} 1.5\n")
    (Buffer.contents buf)

let test_prometheus_histogram () =
  let hist = Array.make Obs.histogram_buckets 0 in
  hist.(0) <- 2;
  hist.(3) <- 1;
  hist.(Obs.histogram_buckets - 1) <- 4;
  let buf = Buffer.create 1024 in
  Obs.Prometheus.histogram buf ~name:"h_seconds" ~help:"h"
    [ ([ ("phase", "x") ], hist, 1.5) ];
  let lines = out_lines (Buffer.contents buf) in
  let value_of line =
    match String.rindex_opt line ' ' with
    | Some i ->
        float_of_string (String.sub line (i + 1) (String.length line - i - 1))
    | None -> Alcotest.fail ("no value on line: " ^ line)
  in
  let bucket_lines =
    List.filter
      (fun l -> String.length l > 16 && String.sub l 0 16 = "h_seconds_bucket")
      lines
  in
  Alcotest.(check int) "one bucket line per bucket plus +Inf"
    (Obs.histogram_buckets + 1)
    (List.length bucket_lines);
  let values = List.map value_of bucket_lines in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "cumulative buckets are monotone" true (monotone values);
  let last = List.nth values (List.length values - 1) in
  Alcotest.(check (float 0.)) "+Inf bucket carries the full mass" 7. last;
  let count_line =
    List.find (fun l -> String.length l > 15 && String.sub l 0 15 = "h_seconds_count") lines
  in
  Alcotest.(check (float 0.)) "_count equals +Inf" 7. (value_of count_line);
  let sum_line =
    List.find (fun l -> String.length l > 13 && String.sub l 0 13 = "h_seconds_sum") lines
  in
  Alcotest.(check (float 0.)) "_sum carried through" 1.5 (value_of sum_line);
  (* the +Inf line must literally use the +Inf label *)
  Alcotest.(check bool) "+Inf label present" true
    (List.exists
       (fun l ->
         match String.index_opt l '{' with
         | Some _ ->
             let nl = String.length l in
             let needle = "le=\"+Inf\"" in
             let rec go i =
               i + String.length needle <= nl
               && (String.sub l i (String.length needle) = needle || go (i + 1))
             in
             go 0
         | None -> false)
       bucket_lines)

let test_prometheus_of_snapshot () =
  let snap =
    snapshot_of
      [ (Obs.Solver_query, metrics_of ~spans:2 ~seconds:0.25 [ (3, 2) ]) ]
      [ ("filter.daemon.accept", 5) ]
  in
  let out = Obs.Prometheus.of_snapshot snap in
  let contains needle =
    let nl = String.length needle and l = String.length out in
    let rec go i = i + nl <= l && (String.sub out i nl = needle || go (i + 1)) in
    Alcotest.(check bool) (Printf.sprintf "exposition contains %s" needle) true (go 0)
  in
  contains "# TYPE achilles_phase_spans_total counter";
  contains "achilles_phase_spans_total{phase=\"solver_query\"} 2";
  contains "achilles_phase_seconds_total{phase=\"solver_query\"} 0.25";
  contains "# TYPE achilles_phase_duration_seconds histogram";
  contains "achilles_phase_duration_seconds_count{phase=\"solver_query\"} 2";
  contains "achilles_events_total{name=\"filter.daemon.accept\"} 5";
  (* idle phases get counter series but no histogram series *)
  contains "achilles_phase_spans_total{phase=\"slice\"} 0";
  let not_contains needle =
    let nl = String.length needle and l = String.length out in
    let rec go i = i + nl <= l && (String.sub out i nl = needle || go (i + 1)) in
    Alcotest.(check bool) (Printf.sprintf "exposition omits %s" needle) false (go 0)
  in
  not_contains "achilles_phase_duration_seconds_count{phase=\"slice\"}";
  (* every non-comment line is "name-or-series value" with a float value *)
  List.iter
    (fun line ->
      if String.length line > 0 && line.[0] <> '#' then
        match String.rindex_opt line ' ' with
        | Some i -> (
            match
              float_of_string_opt
                (String.sub line (i + 1) (String.length line - i - 1))
            with
            | Some _ -> ()
            | None -> Alcotest.fail ("unparseable sample value: " ^ line))
        | None -> Alcotest.fail ("sample line without value: " ^ line))
    (out_lines out)

(* --- nested JSON values (Json.v) ----------------------------------------------- *)

let test_json_value_roundtrip () =
  let v =
    Obs.Json.VObj
      [
        ("s", Obs.Json.VStr tricky_string);
        ("n", Obs.Json.VNum 1.5);
        ("neg", Obs.Json.VNum (-3.));
        ("null", Obs.Json.VNull);
        ("b", Obs.Json.VBool false);
        ( "arr",
          Obs.Json.VArr
            [ Obs.Json.VNum 1.; Obs.Json.VStr "x"; Obs.Json.VObj [] ] );
        ("obj", Obs.Json.VObj [ ("k", Obs.Json.VArr []) ]);
      ]
  in
  (match Obs.Json.parse (Obs.Json.to_string v) with
  | Error e -> Alcotest.fail ("nested round-trip failed: " ^ e)
  | Ok v' -> Alcotest.(check bool) "nested value round-trips" true (v = v'));
  (match Obs.Json.parse "\"caf\\u00e9\"" with
  | Ok (Obs.Json.VStr s) ->
      Alcotest.(check string) "unicode escape decodes to UTF-8" "caf\xc3\xa9" s
  | _ -> Alcotest.fail "unicode escape misparsed");
  (match Obs.Json.parse " [ 1 , true , null ] " with
  | Ok (Obs.Json.VArr [ Obs.Json.VNum 1.; Obs.Json.VBool true; Obs.Json.VNull ])
    -> ()
  | _ -> Alcotest.fail "whitespace array misparsed");
  let bad s =
    match Obs.Json.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "expected parse error on %S" s)
  in
  bad "{";
  bad "[1,";
  bad "tru";
  bad "{\"a\":1} x";
  (* accessors *)
  (match Obs.Json.mem "n" v with
  | Some n ->
      Alcotest.(check (option (float 0.))) "to_float" (Some 1.5)
        (Obs.Json.to_float n)
  | None -> Alcotest.fail "mem lost a field");
  Alcotest.(check (option string)) "to_str"
    (Some tricky_string)
    (Option.bind (Obs.Json.mem "s" v) Obs.Json.to_str);
  Alcotest.(check bool) "mem on non-object" true
    (Obs.Json.mem "x" (Obs.Json.VNum 1.) = None)

(* --- process identity and the trace_start meta event ---------------------------- *)

let test_trace_meta_identity () =
  let id1 = Obs.fresh_run_id () in
  let id2 = Obs.fresh_run_id () in
  Alcotest.(check int) "run ids are 12 hex chars" 12 (String.length id1);
  String.iter
    (fun c ->
      Alcotest.(check bool) "run id is lowercase hex" true
        ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
    id1;
  Alcotest.(check bool) "run ids are fresh" true (id1 <> id2);
  let saved_run, saved_proc = Obs.identity () in
  Obs.set_identity ~run_id:"cafe01234567" ~proc:"unit-test";
  Alcotest.(check (pair string string)) "identity readback"
    ("cafe01234567", "unit-test")
    (Obs.identity ());
  let file = Filename.temp_file "achilles-obs-meta" ".jsonl" in
  Obs.Trace.enable file;
  Obs.emit ~kind:"test" ~name:"x" ();
  Obs.Trace.disable ();
  Obs.set_identity ~run_id:saved_run ~proc:saved_proc;
  let lines = read_lines file in
  Alcotest.(check int) "meta stamp plus one event" 2 (List.length lines);
  (match Obs.Json.parse_line (List.hd lines) with
  | Error e -> Alcotest.fail ("meta line unparseable: " ^ e)
  | Ok fields -> (
      check_str fields "kind" "meta";
      check_str fields "name" "trace_start";
      check_str fields "run_id" "cafe01234567";
      check_str fields "proc" "unit-test";
      check_num fields "pid" (float_of_int (Unix.getpid ()));
      match field fields "wall0" with
      | Obs.Json.Num w ->
          Alcotest.(check bool) "wall0 is an epoch timestamp near now" true
            (Float.abs (w -. Unix.gettimeofday ()) < 3600.)
      | _ -> Alcotest.fail "wall0 is not a number"));
  Sys.remove file

(* --- merging multi-process traces ---------------------------------------------- *)

let write_stream path ~run_id ~proc ~wall0 events =
  let oc = open_out path in
  Printf.fprintf oc
    "{\"t\":0,\"tid\":0,\"kind\":\"meta\",\"name\":\"trace_start\",\"run_id\":%S,\"proc\":%S,\"pid\":1,\"wall0\":%.6f}\n"
    run_id proc wall0;
  List.iter
    (fun ev -> output_string oc (Obs.json_of_event ev ^ "\n"))
    events;
  close_out oc

let span_pair t name =
  [
    { Obs.ev_t = t; ev_tid = 0; ev_kind = "span_begin"; ev_name = name; ev_args = [] };
    {
      Obs.ev_t = t +. 0.5;
      ev_tid = 0;
      ev_kind = "span_end";
      ev_name = name;
      ev_args = [ ("dur", Obs.F 0.5) ];
    };
  ]

let test_chrome_merge () =
  let dir = Filename.temp_file "achilles-obs-merge" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let coord = Filename.concat dir "coord.jsonl" in
  let w0 = Filename.concat dir "trace-worker-000.e0.jsonl" in
  write_stream coord ~run_id:"deadbeef0001" ~proc:"coordinator" ~wall0:1000.
    (span_pair 1.0 "dist");
  write_stream w0 ~run_id:"deadbeef0001" ~proc:"worker-000" ~wall0:1002.5
    (span_pair 0.5 "server_se");
  let dst = Filename.concat dir "merged.json" in
  (match Obs.Chrome.merge ~srcs:[ coord; w0 ] ~dst with
  | Error e -> Alcotest.fail ("merge failed: " ^ e)
  | Ok (n, run_id) ->
      Alcotest.(check int) "two streams merged" 2 n;
      Alcotest.(check (option string)) "run id correlated"
        (Some "deadbeef0001") run_id);
  let ic = open_in_bin dst in
  let out = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let contains needle =
    let nl = String.length needle and l = String.length out in
    let rec go i = i + nl <= l && (String.sub out i nl = needle || go (i + 1)) in
    Alcotest.(check bool) (Printf.sprintf "merged timeline contains %s" needle)
      true (go 0)
  in
  contains "\"name\":\"process_name\"";
  contains "\"coordinator\"";
  contains "\"worker-000\"";
  (* the coordinator stream has the earliest wall0, so its event keeps its
     local offset; the worker's 0.5 s event lands at 2.5 + 0.5 = 3 s *)
  contains "\"ts\":1000000.000";
  contains "\"ts\":3000000.000";
  contains "\"pid\":0";
  contains "\"pid\":1";
  (match Obs.Json.parse out with
  | Error e -> Alcotest.fail ("merged output is not valid JSON: " ^ e)
  | Ok v -> (
      match Obs.Json.mem "traceEvents" v with
      | Some (Obs.Json.VArr evs) ->
          Alcotest.(check bool) "merged timeline has events" true
            (List.length evs >= 6)
      | _ -> Alcotest.fail "merged output lacks a traceEvents array"));
  (* distinct run ids refuse to merge *)
  let w1 = Filename.concat dir "trace-worker-001.e0.jsonl" in
  write_stream w1 ~run_id:"0123456789ab" ~proc:"worker-001" ~wall0:1001.
    (span_pair 0.1 "server_se");
  (match Obs.Chrome.merge ~srcs:[ coord; w1 ] ~dst with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "merging different runs must fail");
  (* a stream without a meta stamp falls back to its filename as proc *)
  let bare = Filename.concat dir "bare-stream.jsonl" in
  let oc = open_out bare in
  List.iter
    (fun ev -> output_string oc (Obs.json_of_event ev ^ "\n"))
    (span_pair 0.2 "negate");
  close_out oc;
  (match Obs.Chrome.merge ~srcs:[ bare ] ~dst with
  | Error e -> Alcotest.fail ("bare merge failed: " ^ e)
  | Ok (n, run_id) ->
      Alcotest.(check int) "single bare stream merges" 1 n;
      Alcotest.(check (option string)) "no run id without meta" None run_id);
  let ic = open_in_bin dst in
  let out = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let nl = String.length "\"bare-stream\"" and l = String.length out in
  let rec go i =
    i + nl <= l && (String.sub out i nl = "\"bare-stream\"" || go (i + 1))
  in
  Alcotest.(check bool) "proc falls back to filename" true (go 0);
  List.iter Sys.remove [ coord; w0; w1; bare; dst ];
  Unix.rmdir dir

(* --- tracing must never change search results ---------------------------------- *)

let qcheck_trace_invisible =
  QCheck2.Test.make
    ~name:"trace on/off and domains 1/4 all agree on report digests" ~count:10
    case_gen
    (fun case ->
      let client, server, base = extract_case case in
      let digest ~domains ~traced =
        let config = { Search.default_config with Search.domains } in
        if not traced then
          Report.report_digest (run_case ~config ~base client server)
        else begin
          let file = Filename.temp_file "achilles-obs-q" ".jsonl" in
          Obs.Trace.enable file;
          Fun.protect
            ~finally:(fun () ->
              Obs.Trace.disable ();
              Sys.remove file)
            (fun () ->
              Report.report_digest (run_case ~config ~base client server))
        end
      in
      let d = digest ~domains:1 ~traced:false in
      d = digest ~domains:1 ~traced:true
      && d = digest ~domains:4 ~traced:false
      && d = digest ~domains:4 ~traced:true)

(* The pinned seed digests from test_integration: the instrumented search,
   traced or not, must still reproduce them byte for byte. *)
let golden_fig10_digest = "075ddf0b4c175bc33c01d12bc70ab018"
let golden_fig11_digest = "0f7bc3f897fc2fdb28e2d2e7bf624c9c"

let test_fsp_golden_traced () =
  let run domains =
    Solver.reset_all_for_tests ();
    Term.reset_fresh_counter ();
    let file = Filename.temp_file "achilles-obs-fsp" ".jsonl" in
    Obs.Trace.enable file;
    let analysis =
      Fun.protect
        ~finally:(fun () -> Obs.Trace.disable ())
        (fun () ->
          let config =
            {
              Search.default_config with
              Search.mask = Some Fsp_model.analysis_mask;
              Search.witnesses_per_path = 16;
              Search.distinct_by = Some Fsp_model.block_class;
              Search.domains;
            }
          in
          Achilles.analyze ~search_config:config ~layout:Fsp_model.layout
            ~clients:(Fsp_model.clients ()) ~server:Fsp_model.server ())
    in
    (analysis, file)
  in
  let a1, f1 = run 1 in
  let a4, f4 = run 4 in
  let report (a : Achilles.analysis) = a.Achilles.report in
  Alcotest.(check string) "Fig 10 golden, traced, domains 1" golden_fig10_digest
    (Report.discovery_digest (report a1));
  Alcotest.(check string) "Fig 10 golden, traced, domains 4" golden_fig10_digest
    (Report.discovery_digest (report a4));
  Alcotest.(check string) "Fig 11 golden, traced, domains 1" golden_fig11_digest
    (Report.alive_digest (report a1).Search.search_stats);
  Alcotest.(check string) "Fig 11 golden, traced, domains 4" golden_fig11_digest
    (Report.alive_digest (report a4).Search.search_stats);
  Alcotest.(check string) "full reports agree across domains"
    (Report.report_digest (report a1))
    (Report.report_digest (report a4));
  (* the acceptance bar: summarize attributes >= 95% of wall-clock to the
     named phases on an FSP run *)
  List.iter
    (fun file ->
      match Obs.Summary.load file with
      | Error msg -> Alcotest.fail ("summarize failed: " ^ msg)
      | Ok s ->
          Alcotest.(check bool)
            (Printf.sprintf "attribution >= 95%% (%s: %.1f%%)" file
               (100. *. s.Obs.Summary.attributed))
            true
            (s.Obs.Summary.attributed >= 0.95);
          List.iter
            (fun phase ->
              Alcotest.(check bool)
                (Printf.sprintf "%s has a row in %s" phase file)
                true
                (List.exists
                   (fun r -> r.Obs.Summary.row_phase = phase)
                   s.Obs.Summary.rows))
            [ "client_se"; "server_se"; "solver_query" ];
          Sys.remove file)
    [ f1; f4 ]

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "event round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "parser rejects malformed lines" `Quick
            test_json_parse_errors;
          Alcotest.test_case "nested values round-trip" `Quick
            test_json_value_roundtrip;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "aggregate across domains" `Quick
            test_aggregate_across_domains;
          Alcotest.test_case "phase taxonomy round-trips" `Quick
            test_phase_names_total;
          Alcotest.test_case "quantiles from log2 histograms" `Quick
            test_estimate_quantile;
        ] );
      ( "snapshot-codec",
        [
          Alcotest.test_case "encode/decode/merge" `Quick test_snapshot_codec;
          Alcotest.test_case "decode rejects malformed, skips unknown" `Quick
            test_snapshot_decode_errors;
          QCheck_alcotest.to_alcotest ~verbose:false qcheck_snapshot_roundtrip;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "escaping and counter families" `Quick
            test_prometheus_escaping;
          Alcotest.test_case "histogram exposition" `Quick
            test_prometheus_histogram;
          Alcotest.test_case "snapshot exposition" `Quick
            test_prometheus_of_snapshot;
        ] );
      ( "trace-writer",
        [
          Alcotest.test_case "concurrent emission stays line-atomic" `Quick
            test_concurrent_writer;
          Alcotest.test_case "cancelled run leaves a parseable trace" `Quick
            test_interrupted_trace_parseable;
        ] );
      ( "summary",
        [
          Alcotest.test_case "self-time attribution" `Quick
            test_summary_self_time;
          Alcotest.test_case "chrome export" `Quick test_chrome_export;
        ] );
      ( "correlation",
        [
          Alcotest.test_case "identity and trace_start meta" `Quick
            test_trace_meta_identity;
          Alcotest.test_case "chrome merge across processes" `Quick
            test_chrome_merge;
        ] );
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest ~verbose:false qcheck_trace_invisible;
          Alcotest.test_case "FSP golden digests with tracing on" `Slow
            test_fsp_golden_traced;
        ] );
    ]
