(* The observability layer: JSON round-trips, domain-safe metric
   aggregation, the lock-protected JSONL writer under concurrent emission
   and mid-run interruption, self-time attribution in trace summaries, the
   Chrome exporter, and the guarantee that tracing never perturbs search
   results (digest equality on random cases, golden FSP digests). *)

open Achilles_smt
open Achilles_symvm
open Achilles_core
open Achilles_targets
module Obs = Achilles_obs.Obs

(* --- JSON round-trips --------------------------------------------------------- *)

let tricky_string = "q\"uote \\back\nnew\tline \r \001ctrl caf\xc3\xa9"

let field fields k =
  match List.assoc_opt k fields with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "missing field %S" k)

let check_num fields k expected =
  match field fields k with
  | Obs.Json.Num f -> Alcotest.(check (float 0.)) k expected f
  | _ -> Alcotest.fail (Printf.sprintf "field %S is not a number" k)

let check_str fields k expected =
  match field fields k with
  | Obs.Json.Str s -> Alcotest.(check string) k expected s
  | _ -> Alcotest.fail (Printf.sprintf "field %S is not a string" k)

let test_json_roundtrip () =
  let ev =
    {
      Obs.ev_t = 1.25;
      ev_tid = 3;
      ev_kind = "te\"st";
      ev_name = tricky_string;
      ev_args =
        [
          ("s", Obs.S tricky_string);
          ("i", Obs.I (-42));
          ("f", Obs.F 0.015625);
          ("whole", Obs.F 3.0);
          ("b", Obs.B true);
        ];
    }
  in
  match Obs.Json.parse_line (Obs.json_of_event ev) with
  | Error msg -> Alcotest.fail ("round-trip parse failed: " ^ msg)
  | Ok fields ->
      check_num fields "t" 1.25;
      check_num fields "tid" 3.;
      check_str fields "kind" "te\"st";
      check_str fields "name" tricky_string;
      check_str fields "s" tricky_string;
      check_num fields "i" (-42.);
      check_num fields "f" 0.015625;
      check_num fields "whole" 3.;
      (match field fields "b" with
      | Obs.Json.Bool true -> ()
      | _ -> Alcotest.fail "field b is not true")

let test_json_parse_errors () =
  let bad s =
    match Obs.Json.parse_line s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "expected parse error on %S" s)
  in
  bad "not json";
  bad "{\"a\":1} trailing";
  bad "{\"a\":}";
  bad "{\"a\":\"unterminated";
  bad "{\"a\":1,}";
  (match Obs.Json.parse_line "{}" with
  | Ok [] -> ()
  | _ -> Alcotest.fail "empty object should parse to an empty assoc");
  match Obs.Json.parse_line "{ \"a\" : null , \"b\" : -1.5e2 }" with
  | Ok [ ("a", Obs.Json.Null); ("b", Obs.Json.Num f) ] ->
      Alcotest.(check (float 0.)) "number with exponent" (-150.) f
  | _ -> Alcotest.fail "whitespace/null/exponent object misparsed"

(* --- DLS metrics and cross-domain aggregation --------------------------------- *)

let test_aggregate_across_domains () =
  Obs.reset_all ();
  let work () =
    Obs.span Obs.Negate (fun () -> ());
    Obs.count ~n:2 "obs.test_counter"
  in
  let domains = Array.init 4 (fun _ -> Domain.spawn work) in
  Array.iter Domain.join domains;
  work ();
  (* the current domain as well *)
  let snap = Obs.aggregate () in
  let negate = List.assoc Obs.Negate snap.Obs.phases in
  Alcotest.(check int) "spans summed over 5 domains" 5 negate.Obs.spans;
  Alcotest.(check bool) "elapsed non-negative" true (negate.Obs.seconds >= 0.);
  Alcotest.(check int) "histogram mass equals span count" 5
    (Array.fold_left ( + ) 0 negate.Obs.histogram);
  Alcotest.(check (option int)) "counter summed over 5 domains" (Some 10)
    (List.assoc_opt "obs.test_counter" snap.Obs.counters);
  Obs.reset_all ();
  let snap = Obs.aggregate () in
  let negate = List.assoc Obs.Negate snap.Obs.phases in
  Alcotest.(check int) "reset zeroes every registered slice" 0 negate.Obs.spans;
  Alcotest.(check (option int)) "reset clears counters" None
    (List.assoc_opt "obs.test_counter" snap.Obs.counters)

let test_phase_names_total () =
  Alcotest.(check int) "eleven phases" 11 (List.length Obs.all_phases);
  List.iter
    (fun p ->
      match Obs.phase_of_name (Obs.phase_name p) with
      | Some p' when p' = p -> ()
      | _ -> Alcotest.fail ("phase name does not round-trip: " ^ Obs.phase_name p))
    Obs.all_phases;
  Alcotest.(check (option reject)) "unknown phase name rejected" None
    (Obs.phase_of_name "no_such_phase")

(* --- the JSONL writer under concurrency --------------------------------------- *)

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !lines

let check_all_lines_parse path lines =
  List.iteri
    (fun i line ->
      match Obs.Json.parse_line line with
      | Ok _ -> ()
      | Error msg ->
          Alcotest.fail (Printf.sprintf "%s:%d: invalid JSON (%s)" path (i + 1) msg))
    lines

let test_concurrent_writer () =
  let file = Filename.temp_file "achilles-obs-conc" ".jsonl" in
  Obs.Trace.enable file;
  let per_domain = 50 in
  let domains =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              Obs.emit
                ~args:[ ("domain", Obs.I d); ("i", Obs.I i); ("s", Obs.S "x\"y\nz") ]
                ~kind:"test" ~name:"tick" ();
              Obs.span Obs.Checkpoint_io (fun () -> ())
            done))
  in
  Array.iter Domain.join domains;
  Obs.Trace.disable ();
  let lines = read_lines file in
  (* one tick + span_begin/span_end per iteration, no torn or merged lines *)
  Alcotest.(check int) "every event is exactly one line" (4 * per_domain * 3)
    (List.length lines);
  check_all_lines_parse file lines;
  let ticks =
    List.filter
      (fun l ->
        match Obs.Json.parse_line l with
        | Ok fields -> List.assoc_opt "kind" fields = Some (Obs.Json.Str "test")
        | Error _ -> false)
      lines
  in
  Alcotest.(check int) "all ticks accounted" (4 * per_domain) (List.length ticks);
  Sys.remove file

(* --- random client/server pairs (same harness as the robustness suite) --------- *)

let message_size = 3
let layout = Layout.make ~name:"obs" [ ("tag", 1); ("a", 1); ("b", 1) ]

type tree =
  | Leaf of bool
  | Node of { field : int; op : int; konst : int; t : tree; f : tree }

type field_spec = Fconst of int | Fbounded of int

let tree_gen =
  QCheck2.Gen.(
    sized_size (int_range 1 3) @@ fix (fun self depth ->
        let leaf = map (fun b -> Leaf b) bool in
        if depth = 0 then leaf
        else
          frequency
            [
              (1, leaf);
              ( 3,
                let* field = int_range 0 (message_size - 1) in
                let* op = int_range 0 3 in
                let* konst = int_range 0 7 in
                let* t = self (depth - 1) in
                let* f = self (depth - 1) in
                return (Node { field; op; konst; t; f }) );
            ]))

let client_gen =
  QCheck2.Gen.(
    list_size (int_range 1 2)
      (list_repeat message_size
         (oneof
            [
              map (fun c -> Fconst c) (int_range 0 7);
              map (fun hi -> Fbounded hi) (int_range 0 7);
            ])))

let case_gen = QCheck2.Gen.pair tree_gen client_gen

let server_of_tree tree =
  let open Builder in
  let labels = ref 0 in
  let next () =
    incr labels;
    string_of_int !labels
  in
  let rec block = function
    | Leaf true -> [ mark_accept ("ok" ^ next ()) ]
    | Leaf false -> [ mark_reject ("no" ^ next ()) ]
    | Node { field; op; konst; t; f } ->
        let byte = load "msg" (i8 field) in
        let cond =
          match op with
          | 0 -> byte =: i8 konst
          | 1 -> byte <>: i8 konst
          | 2 -> byte <: i8 konst
          | _ -> byte >: i8 konst
        in
        [ if_ cond (block t) (block f) ]
  in
  prog "obs-server"
    ~buffers:[ ("msg", message_size) ]
    (receive "msg" :: block tree)

let client_of_spec idx spec =
  let open Builder in
  let body =
    List.concat
      (List.mapi
         (fun i fs ->
           match fs with
           | Fconst c -> [ store "msg" (i8 i) (i8 c) ]
           | Fbounded hi ->
               let name = Printf.sprintf "oin%d_%d" idx i in
               [
                 read_input name ~width:8;
                 when_ (v name >: i8 hi) [ halt ];
                 store "msg" (i8 i) (v name);
               ])
         spec)
    @ [ send (i8 0) "msg" ]
  in
  prog
    (Printf.sprintf "obs-client%d" idx)
    ~buffers:[ ("msg", message_size) ]
    body

let extract_case (tree, client_specs) =
  let server = server_of_tree tree in
  let clients = List.mapi client_of_spec client_specs in
  Solver.reset_all_for_tests ();
  Term.reset_fresh_counter ();
  let client, _ = Client_extract.extract ~layout clients in
  (client, server, Term.fresh_counter_value ())

let run_case ?(config = Search.default_config) ~base client server =
  Solver.reset_all_for_tests ();
  Term.set_fresh_counter base;
  Search.run ~config ~client ~server ()

let fixed_case =
  ( Node
      {
        field = 0;
        op = 2;
        konst = 4;
        t = Node { field = 1; op = 0; konst = 2; t = Leaf true; f = Leaf false };
        f = Leaf true;
      },
    [ [ Fbounded 5; Fconst 2; Fbounded 3 ]; [ Fconst 1; Fbounded 6; Fconst 0 ] ]
  )

(* --- a cancelled run still leaves a flushed, parseable trace ------------------- *)

let test_interrupted_trace_parseable () =
  let client, server, base = extract_case fixed_case in
  let file = Filename.temp_file "achilles-obs-cancel" ".jsonl" in
  Obs.Trace.enable file;
  let calls = Atomic.make 0 in
  let config =
    {
      Search.default_config with
      Search.domains = 4;
      (* trips partway through the run, like a SIGINT/SIGTERM would: the
         flag is polled at every branch constraint and shard boundary *)
      Search.cancel = (fun () -> Atomic.fetch_and_add calls 1 >= 10);
    }
  in
  let partial = run_case ~config ~base client server in
  Alcotest.(check bool) "interruption reported" true
    partial.Search.coverage.Search.interrupted;
  (* read the file BEFORE disable: the per-line flush must already have
     left only whole lines behind, as a process kill would find them *)
  let lines = read_lines file in
  Alcotest.(check bool) "interrupted trace is non-empty" true (lines <> []);
  check_all_lines_parse file lines;
  Obs.Trace.disable ();
  (match Obs.Summary.load file with
  | Error msg -> Alcotest.fail ("summarize failed on interrupted trace: " ^ msg)
  | Ok s ->
      Alcotest.(check int) "summary saw every flushed line" (List.length lines)
        s.Obs.Summary.events;
      Alcotest.(check bool) "attribution is a fraction" true
        (s.Obs.Summary.attributed >= 0. && s.Obs.Summary.attributed <= 1.));
  Sys.remove file

(* --- self-time attribution on a hand-written trace ----------------------------- *)

let evt ?(args = []) t tid kind name =
  [
    ("t", Obs.Json.Num t);
    ("tid", Obs.Json.Num (float_of_int tid));
    ("kind", Obs.Json.Str kind);
    ("name", Obs.Json.Str name);
  ]
  @ args

let row_of s name =
  match
    List.find_opt
      (fun r -> r.Obs.Summary.row_phase = name)
      s.Obs.Summary.rows
  with
  | Some r -> r
  | None -> Alcotest.fail ("summary has no row for " ^ name)

let test_summary_self_time () =
  let events =
    [
      evt 0. 0 "span_begin" "server_se";
      evt 2. 0 "span_begin" "solver_query";
      evt 1. 1 "span_begin" "negate" (* left open: the run was killed *);
      evt 5. 0 "span_end" "solver_query" ~args:[ ("dur", Obs.Json.Num 3.) ];
      evt 6. 0 "counter" "foo" ~args:[ ("n", Obs.Json.Num 4.) ];
      evt 7. 0 "solver" "verdict" ~args:[ ("result", Obs.Json.Str "sat") ];
      evt 7.5 0 "cache" "hit";
      evt 7.6 0 "cache" "miss";
      evt 10. 0 "span_end" "server_se" (* no dur: derived from t - start *);
    ]
  in
  let s = Obs.Summary.of_events events in
  Alcotest.(check (float 1e-9)) "wall clock spans the event range" 10. s.Obs.Summary.wall;
  let server = row_of s "server_se" in
  Alcotest.(check (float 1e-9)) "server_se total" 10. server.Obs.Summary.total_seconds;
  Alcotest.(check (float 1e-9)) "server_se self excludes its child" 7.
    server.Obs.Summary.self_seconds;
  Alcotest.(check (float 1e-9)) "server_se max" 10. server.Obs.Summary.max_seconds;
  let solver = row_of s "solver_query" in
  Alcotest.(check (float 1e-9)) "solver_query self = dur (leaf span)" 3.
    solver.Obs.Summary.self_seconds;
  Alcotest.(check int) "solver_query span count" 1 solver.Obs.Summary.row_spans;
  (* the unclosed span on tid 1 is closed at the last timestamp *)
  let negate = row_of s "negate" in
  Alcotest.(check (float 1e-9)) "unclosed span closed at max t" 9.
    negate.Obs.Summary.total_seconds;
  (* tid 0 emitted first, so it is the main domain: its root span covers
     the whole window, and tid 1's orphan does not inflate coverage *)
  Alcotest.(check (float 1e-9)) "fully attributed" 1. s.Obs.Summary.attributed;
  Alcotest.(check (option int)) "counter event tallied" (Some 4)
    (List.assoc_opt "foo" s.Obs.Summary.counters);
  Alcotest.(check (option int)) "verdict tallied" (Some 1)
    (List.assoc_opt "sat" s.Obs.Summary.verdicts);
  Alcotest.(check int) "cache hit" 1 s.Obs.Summary.cache_hits;
  Alcotest.(check int) "cache miss" 1 s.Obs.Summary.cache_misses;
  Alcotest.(check int) "event count" 9 s.Obs.Summary.events

(* --- Chrome export ------------------------------------------------------------- *)

let test_chrome_export () =
  let src = Filename.temp_file "achilles-obs-chrome" ".jsonl" in
  let dst = src ^ ".chrome.json" in
  let oc = open_out src in
  List.iter
    (fun ev -> output_string oc (Obs.json_of_event ev ^ "\n"))
    [
      {
        Obs.ev_t = 0.001;
        ev_tid = 0;
        ev_kind = "span_begin";
        ev_name = "solver_query";
        ev_args = [];
      };
      {
        Obs.ev_t = 0.004;
        ev_tid = 0;
        ev_kind = "span_end";
        ev_name = "solver_query";
        ev_args = [ ("dur", Obs.F 0.003) ];
      };
      {
        Obs.ev_t = 0.005;
        ev_tid = 1;
        ev_kind = "drop";
        ev_name = "subsumed";
        ev_args = [ ("route", Obs.S "r\"1") ];
      };
    ];
  close_out oc;
  (match Obs.Chrome.export ~src ~dst with
  | Error msg -> Alcotest.fail ("export failed: " ^ msg)
  | Ok () -> ());
  let ic = open_in_bin dst in
  let out = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let contains needle =
    let nl = String.length needle and l = String.length out in
    let rec go i = i + nl <= l && (String.sub out i nl = needle || go (i + 1)) in
    Alcotest.(check bool) (Printf.sprintf "output contains %s" needle) true (go 0)
  in
  Alcotest.(check bool) "traceEvents wrapper" true
    (String.length out > 16 && String.sub out 0 16 = "{\"traceEvents\":[");
  contains "\"ph\":\"B\"";
  contains "\"ph\":\"E\"";
  contains "\"ph\":\"i\"";
  contains "\"s\":\"t\"";
  (* µs timestamps *)
  contains "\"ts\":1000.000";
  contains "\"ts\":4000.000";
  (* args carried over, with JSON escapes intact *)
  contains "\"route\":\"r\\\"1\"";
  contains "\"name\":\"drop:subsumed\"";
  Sys.remove src;
  Sys.remove dst

(* --- tracing must never change search results ---------------------------------- *)

let qcheck_trace_invisible =
  QCheck2.Test.make
    ~name:"trace on/off and domains 1/4 all agree on report digests" ~count:10
    case_gen
    (fun case ->
      let client, server, base = extract_case case in
      let digest ~domains ~traced =
        let config = { Search.default_config with Search.domains } in
        if not traced then
          Report.report_digest (run_case ~config ~base client server)
        else begin
          let file = Filename.temp_file "achilles-obs-q" ".jsonl" in
          Obs.Trace.enable file;
          Fun.protect
            ~finally:(fun () ->
              Obs.Trace.disable ();
              Sys.remove file)
            (fun () ->
              Report.report_digest (run_case ~config ~base client server))
        end
      in
      let d = digest ~domains:1 ~traced:false in
      d = digest ~domains:1 ~traced:true
      && d = digest ~domains:4 ~traced:false
      && d = digest ~domains:4 ~traced:true)

(* The pinned seed digests from test_integration: the instrumented search,
   traced or not, must still reproduce them byte for byte. *)
let golden_fig10_digest = "075ddf0b4c175bc33c01d12bc70ab018"
let golden_fig11_digest = "0f7bc3f897fc2fdb28e2d2e7bf624c9c"

let test_fsp_golden_traced () =
  let run domains =
    Solver.reset_all_for_tests ();
    Term.reset_fresh_counter ();
    let file = Filename.temp_file "achilles-obs-fsp" ".jsonl" in
    Obs.Trace.enable file;
    let analysis =
      Fun.protect
        ~finally:(fun () -> Obs.Trace.disable ())
        (fun () ->
          let config =
            {
              Search.default_config with
              Search.mask = Some Fsp_model.analysis_mask;
              Search.witnesses_per_path = 16;
              Search.distinct_by = Some Fsp_model.block_class;
              Search.domains;
            }
          in
          Achilles.analyze ~search_config:config ~layout:Fsp_model.layout
            ~clients:(Fsp_model.clients ()) ~server:Fsp_model.server ())
    in
    (analysis, file)
  in
  let a1, f1 = run 1 in
  let a4, f4 = run 4 in
  let report (a : Achilles.analysis) = a.Achilles.report in
  Alcotest.(check string) "Fig 10 golden, traced, domains 1" golden_fig10_digest
    (Report.discovery_digest (report a1));
  Alcotest.(check string) "Fig 10 golden, traced, domains 4" golden_fig10_digest
    (Report.discovery_digest (report a4));
  Alcotest.(check string) "Fig 11 golden, traced, domains 1" golden_fig11_digest
    (Report.alive_digest (report a1).Search.search_stats);
  Alcotest.(check string) "Fig 11 golden, traced, domains 4" golden_fig11_digest
    (Report.alive_digest (report a4).Search.search_stats);
  Alcotest.(check string) "full reports agree across domains"
    (Report.report_digest (report a1))
    (Report.report_digest (report a4));
  (* the acceptance bar: summarize attributes >= 95% of wall-clock to the
     named phases on an FSP run *)
  List.iter
    (fun file ->
      match Obs.Summary.load file with
      | Error msg -> Alcotest.fail ("summarize failed: " ^ msg)
      | Ok s ->
          Alcotest.(check bool)
            (Printf.sprintf "attribution >= 95%% (%s: %.1f%%)" file
               (100. *. s.Obs.Summary.attributed))
            true
            (s.Obs.Summary.attributed >= 0.95);
          List.iter
            (fun phase ->
              Alcotest.(check bool)
                (Printf.sprintf "%s has a row in %s" phase file)
                true
                (List.exists
                   (fun r -> r.Obs.Summary.row_phase = phase)
                   s.Obs.Summary.rows))
            [ "client_se"; "server_se"; "solver_query" ];
          Sys.remove file)
    [ f1; f4 ]

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "event round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "parser rejects malformed lines" `Quick
            test_json_parse_errors;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "aggregate across domains" `Quick
            test_aggregate_across_domains;
          Alcotest.test_case "phase taxonomy round-trips" `Quick
            test_phase_names_total;
        ] );
      ( "trace-writer",
        [
          Alcotest.test_case "concurrent emission stays line-atomic" `Quick
            test_concurrent_writer;
          Alcotest.test_case "cancelled run leaves a parseable trace" `Quick
            test_interrupted_trace_parseable;
        ] );
      ( "summary",
        [
          Alcotest.test_case "self-time attribution" `Quick
            test_summary_self_time;
          Alcotest.test_case "chrome export" `Quick test_chrome_export;
        ] );
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest ~verbose:false qcheck_trace_invisible;
          Alcotest.test_case "FSP golden digests with tracing on" `Slow
            test_fsp_golden_traced;
        ] );
    ]
