(* Tests for the protocol DSL: builder validation, the concrete interpreter,
   the symbolic interpreter, layouts, and the consistency between symbolic
   and concrete execution. *)

open Achilles_smt
open Achilles_symvm

let bv = Alcotest.testable Bv.pp Bv.equal
let b8 n = Bv.of_int ~width:8 n

(* --- builder / validation ------------------------------------------------- *)

let test_validate_catches_unknowns () =
  let open Builder in
  Alcotest.check_raises "unknown buffer"
    (Invalid_argument "Builder.prog bad: unknown buffer nope") (fun () ->
      ignore (prog "bad" [ receive "nope" ]));
  Alcotest.check_raises "unknown procedure"
    (Invalid_argument "Builder.prog bad2: unknown procedure f") (fun () ->
      ignore (prog "bad2" [ call "f" [] ]));
  match
    Ast.validate
      {
        Ast.prog_name = "arity";
        globals = [];
        buffers = [];
        procs = [ { Ast.proc_name = "p"; params = [ ("x", 8) ]; body = [] } ];
        main = [ Ast.Call { proc = "p"; args = []; result = None } ];
      }
  with
  | Error [ msg ] ->
      Alcotest.(check string) "arity error" "procedure p expects 1 arguments, got 0" msg
  | _ -> Alcotest.fail "expected a single arity error"

(* --- concrete interpreter --------------------------------------------------- *)

let test_concrete_arith () =
  let open Builder in
  let program =
    prog "arith" ~globals:[ ("out", 32) ]
      [
        set "x" (i32 6);
        set "y" (i32 7);
        set "out" (v "x" *: v "y");
        halt;
      ]
  in
  let outcome = Concrete.run program in
  Alcotest.(check bv) "6*7" (Bv.of_int ~width:32 42)
    (List.assoc "out" outcome.Concrete.globals)

let test_concrete_loop_and_proc () =
  let open Builder in
  let sum_proc =
    proc "sum_to" ~params:[ ("n", 32) ]
      [
        set "acc" (i32 0);
        set "i" (i32 1);
        while_
          (v "i" <=: v "n")
          [ set "acc" (v "acc" +: v "i"); set "i" (v "i" +: i32 1) ];
        return (v "acc");
      ]
  in
  let program =
    prog "looper" ~globals:[ ("out", 32) ] ~procs:[ sum_proc ]
      [ call "sum_to" [ i32 10 ] ~result:"r"; set "out" (v "r"); halt ]
  in
  let outcome = Concrete.run program in
  Alcotest.(check bv) "sum 1..10" (Bv.of_int ~width:32 55)
    (List.assoc "out" outcome.Concrete.globals)

let test_concrete_switch () =
  let open Builder in
  let program which =
    prog "sw" ~globals:[ ("out", 8) ]
      [
        set "x" (i8 which);
        switch (v "x")
          [ (1, [ set "out" (i8 10) ]); (2, [ set "out" (i8 20) ]) ]
          ~default:[ set "out" (i8 99) ];
        halt;
      ]
  in
  let out which =
    List.assoc "out" (Concrete.run (program which)).Concrete.globals
  in
  Alcotest.(check bv) "case 1" (b8 10) (out 1);
  Alcotest.(check bv) "case 2" (b8 20) (out 2);
  Alcotest.(check bv) "default" (b8 99) (out 7)

let test_concrete_step_limit () =
  let open Builder in
  let program =
    prog "spin" [ set "x" (i8 1); while_ (v "x" =: i8 1) [ set "x" (v "x") ] ]
  in
  let outcome = Concrete.run ~max_steps:500 program in
  match outcome.Concrete.status with
  | State.Crashed "step limit" -> ()
  | s -> Alcotest.failf "expected step-limit crash, got %s" (State.status_string s)

let test_concrete_receive_send () =
  let open Builder in
  let program =
    prog "echo"
      ~buffers:[ ("inbox", 2); ("outbox", 2) ]
      [
        receive "inbox";
        store "outbox" (i8 0) (load "inbox" (i8 1));
        store "outbox" (i8 1) (load "inbox" (i8 0));
        send (i8 9) "outbox";
        halt;
      ]
  in
  let outcome =
    Concrete.run ~incoming:[ [| b8 0xAA; b8 0xBB |] ] program
  in
  (match outcome.Concrete.sent with
  | [ (dst, payload) ] ->
      Alcotest.(check bv) "destination" (b8 9) dst;
      Alcotest.(check bv) "swapped 0" (b8 0xBB) payload.(0);
      Alcotest.(check bv) "swapped 1" (b8 0xAA) payload.(1)
  | _ -> Alcotest.fail "expected exactly one send");
  (* with no message pending, the node just waits: Finished *)
  let idle = Concrete.run program in
  Alcotest.(check string) "idle finishes" "finished"
    (State.status_string idle.Concrete.status)

let test_concrete_oob_crashes () =
  let open Builder in
  let program =
    prog "oob" ~buffers:[ ("b", 2) ] [ store "b" (i8 5) (i8 1); halt ]
  in
  match (Concrete.run program).Concrete.status with
  | State.Crashed _ -> ()
  | _ -> Alcotest.fail "expected a crash"

let test_concrete_assume () =
  let open Builder in
  let program ok =
    prog "as" [ set "x" (i8 (if ok then 1 else 2)); assume (v "x" =: i8 1); halt ]
  in
  Alcotest.(check string) "assume holds" "finished"
    (State.status_string (Concrete.run (program true)).Concrete.status);
  Alcotest.(check string) "assume fails" "dropped"
    (State.status_string (Concrete.run (program false)).Concrete.status)

(* --- symbolic interpreter ---------------------------------------------------- *)

let terminal_statuses run =
  List.map (fun (s : State.t) -> s.State.status) run.Interp.terminals

let test_symbolic_forks () =
  let open Builder in
  let program =
    prog "forky"
      [
        read_input "x" ~width:8;
        if_ (v "x" <: i8 10)
          [ if_ (v "x" =: i8 3) [ mark_accept "three" ] [ mark_reject "small" ] ]
          [ mark_reject "big" ];
      ]
  in
  let run = Interp.run program in
  Alcotest.(check int) "three paths" 3 (List.length run.Interp.terminals);
  Alcotest.(check int) "two fork points" 2 run.Interp.stats.Interp.forks;
  let accepted =
    List.filter (fun s -> s = State.Accepted "three") (terminal_statuses run)
  in
  Alcotest.(check int) "one accepting" 1 (List.length accepted)

let test_symbolic_infeasible_branch_not_explored () =
  let open Builder in
  let program =
    prog "narrow"
      [
        read_input "x" ~width:8;
        assume (v "x" <: i8 5);
        if_ (v "x" >: i8 100) [ mark_accept "impossible" ] [ mark_reject "fine" ];
      ]
  in
  let run = Interp.run program in
  Alcotest.(check (list string)) "only the feasible side"
    [ "rejected:fine" ]
    (List.map State.status_string (terminal_statuses run))

let test_symbolic_unroll_bound () =
  let open Builder in
  let program =
    prog "loop8"
      [
        read_input "n" ~width:8;
        set "i" (i8 0);
        while_ (v "i" <: v "n") [ set "i" (v "i" +: i8 1) ];
        mark_accept "done";
      ]
  in
  let config = { Interp.default_config with Interp.max_unroll = 4 } in
  let run = Interp.run ~config program in
  (* paths for n = 0..3 complete; longer loops are truncated *)
  let accepted, truncated =
    List.partition
      (fun (s : State.t) ->
        match s.State.status with State.Accepted _ -> true | _ -> false)
      run.Interp.terminals
  in
  Alcotest.(check int) "completed unrollings" 4 (List.length accepted);
  Alcotest.(check bool) "some truncation" true (List.length truncated >= 1);
  Alcotest.(check bool) "stat recorded" true
    (run.Interp.stats.Interp.truncated_unroll >= 1);
  Alcotest.(check int) "unroll is the only cut"
    (Interp.truncated run.Interp.stats)
    run.Interp.stats.Interp.truncated_unroll

let test_symbolic_receive_protocol () =
  let open Builder in
  let program =
    prog "twice" ~buffers:[ ("m", 1) ]
      [ receive "m"; receive "m"; mark_accept "never" ]
  in
  let run = Interp.run program in
  (* second receive hits the event loop boundary: path finishes *)
  Alcotest.(check (list string)) "finished at loop boundary" [ "finished" ]
    (List.map
       (fun (s : State.t) -> State.status_string s.State.status)
       run.Interp.terminals);
  let st = List.hd run.Interp.terminals in
  Alcotest.(check bool) "message vars recorded" true (st.State.msg_vars <> None)

let test_symbolic_preload_then_fresh () =
  let open Builder in
  let program =
    prog "rounds" ~buffers:[ ("m", 1) ]
      [
        receive "m";
        set "first" (load "m" (i8 0));
        receive "m";
        if_ (load "m" (i8 0) =: v "first") [ mark_accept "same" ]
          [ mark_reject "diff" ];
      ]
  in
  let preload = [ [| Term.int ~width:8 7 |] ] in
  let config = { Interp.default_config with Interp.preload_messages = preload } in
  let run = Interp.run ~config program in
  (* first receive consumes the preload; second gets the fresh symbolic
     message, so both branches of the comparison are feasible *)
  let statuses =
    List.map (fun (s : State.t) -> State.status_string s.State.status)
      run.Interp.terminals
    |> List.sort compare
  in
  Alcotest.(check (list string)) "both outcomes"
    [ "accepted:same"; "rejected:diff" ] statuses

let test_symbolic_store_symbolic_index () =
  let open Builder in
  let program =
    prog "symidx" ~buffers:[ ("b", 3) ]
      [
        read_input "i" ~width:8;
        assume (v "i" <: i8 3);
        store "b" (v "i") (i8 0xEE);
        if_ (load "b" (v "i") =: i8 0xEE) [ mark_accept "read-back" ]
          [ mark_reject "lost" ];
      ]
  in
  let run = Interp.run program in
  let rejected =
    List.exists
      (fun (s : State.t) ->
        match s.State.status with State.Rejected _ -> true | _ -> false)
      run.Interp.terminals
  in
  Alcotest.(check bool) "store/load through symbolic index" false rejected

(* --- layout round trips -------------------------------------------------------- *)

let test_layout_roundtrip_via_dsl () =
  let layout = Layout.make ~name:"t" [ ("a", 1); ("b", 2); ("c", 4) ] in
  let open Builder in
  let program =
    prog "rt" ~buffers:[ ("m", 7) ] ~globals:[ ("out_b", 16); ("out_c", 32) ]
      (List.concat
         [
           Layout.store_field layout "a" ~buf:"m" ~value:(i8 0x11);
           Layout.store_field layout "b" ~buf:"m" ~value:(i16 0xBEEF);
           Layout.store_field layout "c" ~buf:"m" ~value:(i32 0xDEADBEEF);
           [
             set "out_b" (Layout.field_expr layout "b" ~buf:"m");
             set "out_c" (Layout.field_expr layout "c" ~buf:"m");
             halt;
           ];
         ])
  in
  let outcome = Concrete.run program in
  Alcotest.(check bv) "b round trip" (Bv.of_int ~width:16 0xBEEF)
    (List.assoc "out_b" outcome.Concrete.globals);
  Alcotest.(check bv) "c round trip"
    (Bv.make ~width:32 0xDEADBEEFL)
    (List.assoc "out_c" outcome.Concrete.globals);
  let m = List.assoc "m" outcome.Concrete.buffers in
  Alcotest.(check bv) "big-endian high byte of c" (b8 0xDE) m.(3);
  Alcotest.(check bv) "field_value agrees"
    (Bv.make ~width:32 0xDEADBEEFL)
    (Layout.field_value layout m "c")

(* every DSL binary operator agrees with the Bv reference semantics when
   run through the concrete interpreter *)
let qcheck_concrete_ops_match_bv =
  let ops : (Ast.binop * (Bv.t -> Bv.t -> Bv.t)) list =
    [
      (Ast.Add, Bv.add);
      (Ast.Sub, Bv.sub);
      (Ast.Mul, Bv.mul);
      (Ast.Udiv, Bv.udiv);
      (Ast.Urem, Bv.urem);
      (Ast.Band, Bv.logand);
      (Ast.Bor, Bv.logor);
      (Ast.Bxor, Bv.logxor);
      (Ast.Shl, Bv.shl);
      (Ast.Lshr, Bv.lshr);
      (Ast.Ashr, Bv.ashr);
    ]
  in
  let gen =
    QCheck2.Gen.(
      let* op = int_range 0 (List.length ops - 1) in
      let* a = int_range 0 255 in
      let* b = int_range 0 255 in
      return (op, a, b))
  in
  QCheck2.Test.make ~name:"DSL operators match Bv semantics" ~count:200 gen
    (fun (op_idx, a, b) ->
      let op, reference = List.nth ops op_idx in
      let open Builder in
      let program =
        prog "op" ~globals:[ ("out", 8) ]
          [ set "out" (Ast.Binop (op, i8 a, i8 b)); halt ]
      in
      let outcome = Concrete.run program in
      Bv.equal
        (List.assoc "out" outcome.Concrete.globals)
        (reference (b8 a) (b8 b)))

(* ...and with the symbolic interpreter on constant inputs, the smart
   constructors must fold to the same value *)
let qcheck_symbolic_constant_folding_matches =
  let gen =
    QCheck2.Gen.(
      let* a = int_range 0 255 in
      let* b = int_range 1 255 in
      return (a, b))
  in
  QCheck2.Test.make ~name:"symbolic constant folding matches concrete"
    ~count:100 gen (fun (a, b) ->
      let open Builder in
      let program =
        prog "fold" ~globals:[ ("out", 8) ]
          [
            set "x" (i8 a);
            set "out" ((v "x" *: i8 b) +: (v "x" /: i8 b));
            halt;
          ]
      in
      let concrete = List.assoc "out" (Concrete.run program).Concrete.globals in
      let run = Interp.run program in
      match run.Interp.terminals with
      | [ st ] -> (
          match
            (Achilles_symvm.State.String_map.find "out" st.State.globals)
              .Achilles_smt.Term.node
          with
          | Achilles_smt.Term.Const v -> Bv.equal v concrete
          | _ -> false)
      | _ -> false)

(* --- pretty printer -------------------------------------------------------------- *)

let test_pp_golden () =
  let open Builder in
  let program =
    prog "golden" ~globals:[ ("g", 16) ] ~buffers:[ ("m", 2) ]
      ~procs:[ proc "inc" ~params:[ ("x", 8) ] [ return (v "x" +: i8 1) ] ]
      [
        receive "m";
        call "inc" [ load "m" (i8 0) ] ~result:"r";
        if_ (v "r" =: chr 'a') [ mark_accept "ok" ] [ mark_reject "no" ];
      ]
  in
  let expected =
    "// program golden\n\
     global u16 g;\n\
     buffer m[2];\n\
     \n\
     proc inc(u8 x) {\n\
    \  return x + 1;\n\
     }\n\
     \n\
     main {\n\
    \  m = receive();\n\
    \  r = inc(m[0]);\n\
    \  if (r == 'a') {\n\
    \    mark_accept(\"ok\");\n\
    \  } else {\n\
    \    mark_reject(\"no\");\n\
    \  }\n\
     }"
  in
  Alcotest.(check string) "golden output" expected
    (Pp.program_to_string program)

let test_pp_all_targets_print () =
  (* smoke: every bundled program renders without raising *)
  List.iter
    (fun p -> ignore (Pp.program_to_string p))
    ([
       Achilles_targets.Rw_example.server;
       Achilles_targets.Rw_example.client;
       Achilles_targets.Fsp_model.server;
       Achilles_targets.Pbft_model.client;
       Achilles_targets.Pbft_model.replica;
       Achilles_targets.Paxos_model.acceptor;
       Achilles_targets.Kv_model.server;
       Achilles_targets.Gossip_model.reporter;
     ]
    @ Achilles_targets.Fsp_model.clients ())

(* --- symbolic/concrete consistency (property) ----------------------------------- *)

(* For random concrete inputs, the concrete run of the rw-example client
   must agree with exactly the symbolic paths whose constraints those
   inputs satisfy: same decision to send, and identical message bytes. *)
let qcheck_symbolic_concrete_consistency =
  let client = Achilles_targets.Rw_example.client in
  let extraction =
    lazy
      (let runs = Interp.run client in
       List.concat_map
         (fun (st : State.t) ->
           List.map
             (fun (m : State.message) -> (m, List.rev st.State.input_vars))
             st.State.sent)
         runs.Interp.terminals)
  in
  let gen =
    QCheck2.Gen.(
      let* peer = int_range 0 5 in
      let* op = int_range 0 3 in
      let* addr = int_range (-200) 200 in
      let* value = int_range 0 1000 in
      return (peer, op, addr, value))
  in
  QCheck2.Test.make ~name:"symbolic paths cover concrete runs" ~count:60 gen
    (fun (peer, op, addr, value) ->
      let inputs =
        [
          b8 peer;
          b8 op;
          Bv.make ~width:32 (Int64.of_int addr);
          Bv.make ~width:32 (Int64.of_int value);
        ]
      in
      let concrete = Concrete.run ~inputs client in
      let messages = Lazy.force extraction in
      (* bind the path's input variables to the concrete inputs, in the
         order the client reads them *)
      let matching =
        List.filter
          (fun ((m : State.message), vars) ->
            let model =
              List.fold_left2
                (fun acc var input ->
                  Model.add_bv var
                    (Bv.make
                       ~width:(match var.Term.sort with
                               | Term.Bitvec w -> w
                               | Term.Bool -> 1)
                       (Bv.value input))
                    acc)
                Model.empty vars
                (List.filteri (fun i _ -> i < List.length vars) inputs)
            in
            List.length vars <= List.length inputs
            && Model.satisfies model (List.rev m.State.path_at_send))
          messages
      in
      match concrete.Concrete.sent, matching with
      | [], [] -> true
      | [ (_, payload) ], [ (m, vars) ] ->
          let model =
            List.fold_left2
              (fun acc var input ->
                Model.add_bv var
                  (Bv.make
                     ~width:(match var.Term.sort with
                             | Term.Bitvec w -> w
                             | Term.Bool -> 1)
                     (Bv.value input))
                  acc)
              Model.empty vars
              (List.filteri (fun i _ -> i < List.length vars) inputs)
          in
          Array.for_all2
            (fun term concrete_byte ->
              Bv.equal (Model.eval_bv model term) concrete_byte)
            m.State.payload payload
      | _ -> false)

let () =
  let qsuite name tests =
    (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)
  in
  Alcotest.run "symvm"
    [
      ( "builder",
        [ Alcotest.test_case "validation" `Quick test_validate_catches_unknowns ] );
      ( "concrete",
        [
          Alcotest.test_case "arithmetic" `Quick test_concrete_arith;
          Alcotest.test_case "loop + procedure" `Quick test_concrete_loop_and_proc;
          Alcotest.test_case "switch" `Quick test_concrete_switch;
          Alcotest.test_case "step limit" `Quick test_concrete_step_limit;
          Alcotest.test_case "receive/send" `Quick test_concrete_receive_send;
          Alcotest.test_case "out-of-bounds" `Quick test_concrete_oob_crashes;
          Alcotest.test_case "assume" `Quick test_concrete_assume;
        ] );
      ( "symbolic",
        [
          Alcotest.test_case "forks per branch" `Quick test_symbolic_forks;
          Alcotest.test_case "infeasible pruning" `Quick
            test_symbolic_infeasible_branch_not_explored;
          Alcotest.test_case "unroll bound" `Quick test_symbolic_unroll_bound;
          Alcotest.test_case "receive = path boundary" `Quick
            test_symbolic_receive_protocol;
          Alcotest.test_case "preload then fresh" `Quick
            test_symbolic_preload_then_fresh;
          Alcotest.test_case "symbolic store index" `Quick
            test_symbolic_store_symbolic_index;
        ] );
      ( "layout",
        [ Alcotest.test_case "round trip via DSL" `Quick test_layout_roundtrip_via_dsl ] );
      ( "pp",
        [
          Alcotest.test_case "golden program" `Quick test_pp_golden;
          Alcotest.test_case "all targets print" `Quick test_pp_all_targets_print;
        ] );
      qsuite "consistency"
        [
          qcheck_symbolic_concrete_consistency;
          qcheck_concrete_ops_match_bv;
          qcheck_symbolic_constant_folding_matches;
        ];
    ]
