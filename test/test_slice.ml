(* The static dependency slice (lib/slice), end to end:

   - golden taint summaries for every bundled target model;
   - the injective-chain value-set machinery;
   - the feasibility oracle's static equality-chain decisions;
   - slice-aware differentFrom: identical matrices, identical fresh-variable
     consumption, fewer solver queries;
   - the soundness bar itself: report digests byte-identical slice on/off,
     at domains 1 and 4, on the bundled targets and on random server trees;
   - the taint-aware depth bound: message-independent branches stop
     consuming [max_depth] when the oracle is installed. *)

open Achilles_smt
open Achilles_symvm
open Achilles_core
open Achilles_targets
module Slice = Achilles_slice.Slice

(* --- golden taint summaries --------------------------------------------------- *)

let golden_rw =
  String.concat "\n"
    [
      "slice rw-server: 6/7 branch sites message-tainted";
      "  main:if#0                {sender}";
      "  main:if#1                {address,crc,request,sender,value}";
      "  main:switch#0            {request}";
      "  main:if#2                {address}";
      "  main:if#3                {address}";
      "  main:if#4                {address}";
      "  checksum:while#0         clean";
      "  field sender           branches 2, updates 0, sends 2";
      "  field request          branches 2, updates 0, sends 0";
      "  field address          branches 4, updates 0, sends 0";
      "  field value            branches 1, updates 0, sends 0";
      "  field crc              branches 1, updates 0, sends 0";
    ]

let golden_fsp =
  String.concat "\n"
    [
      "slice fsp-server: 9/10 branch sites message-tainted";
      "  main:if#0                {sum}";
      "  main:if#1                {bb_key}";
      "  main:if#2                {bb_seq}";
      "  main:if#3                {bb_pos}";
      "  main:if#4                {bb_len}";
      "  main:if#5                {bb_len}";
      "  main:while#0             clean";
      "  main:if#6                {bb_key,bb_len,bb_pos,bb_seq,buf,cmd,sum}";
      "  main:if#7                {bb_key,bb_len,bb_pos,bb_seq,buf,cmd,sum}";
      "  main:switch#0            {cmd}";
      "  field cmd              branches 3, updates 0, sends 0";
      "  field sum              branches 3, updates 0, sends 0";
      "  field bb_key           branches 3, updates 0, sends 0";
      "  field bb_seq           branches 3, updates 0, sends 0";
      "  field bb_len           branches 4, updates 0, sends 0";
      "  field bb_pos           branches 3, updates 0, sends 0";
      "  field buf              branches 2, updates 0, sends 0";
    ]

let golden_kv =
  String.concat "\n"
    [
      "slice kv-server: 3/3 branch sites message-tainted";
      "  main:if#0                {method}";
      "  main:if#1                {key}";
      "  main:if#2                {method}";
      "  field method           branches 2, updates 0, sends 0";
      "  field key              branches 1, updates 0, sends 0";
      "  field value            branches 0, updates 3, sends 4";
      "  field token            branches 0, updates 0, sends 0";
    ]

let golden_pbft =
  String.concat "\n"
    [
      "slice pbft-replica: 22/22 branch sites message-tainted";
      "  main:if#0                {tag}";
      "  main:if#1                {size}";
      "  main:if#2                {command_size}";
      "  main:if#3                {od}";
      "  main:if#4                {od}";
      "  main:if#5                {od}";
      "  main:if#6                {od}";
      "  main:if#7                {od}";
      "  main:if#8                {od}";
      "  main:if#9                {od}";
      "  main:if#10               {od}";
      "  main:if#11               {od}";
      "  main:if#12               {od}";
      "  main:if#13               {od}";
      "  main:if#14               {od}";
      "  main:if#15               {od}";
      "  main:if#16               {od}";
      "  main:if#17               {od}";
      "  main:if#18               {od}";
      "  main:if#19               {cid}";
      "  main:if#20               {rid}";
      "  main:if#21               {extra}";
      "  field tag              branches 1, updates 0, sends 0";
      "  field extra            branches 1, updates 0, sends 0";
      "  field size             branches 1, updates 0, sends 0";
      "  field od               branches 16, updates 0, sends 0";
      "  field replier          branches 0, updates 0, sends 0";
      "  field command_size     branches 1, updates 0, sends 0";
      "  field cid              branches 1, updates 0, sends 0";
      "  field rid              branches 1, updates 1, sends 0";
      "  field command          branches 0, updates 0, sends 0";
      "  field mac              branches 0, updates 0, sends 0";
    ]

let golden_gossip =
  String.concat "\n"
    [
      "slice gossip-aggregator: 4/4 branch sites message-tainted";
      "  main:if#0                {mtype}";
      "  main:if#1                {reporter}";
      "  main:if#2                {epoch}";
      "  main:if#3                {count}";
      "  field mtype            branches 1, updates 0, sends 0";
      "  field reporter         branches 1, updates 0, sends 1";
      "  field count            branches 1, updates 1, sends 0";
      "  field epoch            branches 1, updates 0, sends 0";
    ]

let golden_paxos =
  String.concat "\n"
    [
      "slice paxos-acceptor: 4/5 branch sites message-tainted";
      "  main:while#0             clean";
      "  main:if#0                {proposer}";
      "  main:switch#0            {mtype}";
      "  main:if#1                {ballot}";
      "  main:if#2                {ballot}";
      "  field mtype            branches 1, updates 0, sends 0";
      "  field ballot           branches 2, updates 1, sends 0";
      "  field value            branches 0, updates 0, sends 0";
      "  field proposer         branches 1, updates 0, sends 2";
    ]

let model_summaries =
  [
    ("rw", Rw_example.layout, Rw_example.server, golden_rw);
    ("fsp", Fsp_model.layout, Fsp_model.server, golden_fsp);
    ("kv", Kv_model.layout, Kv_model.server, golden_kv);
    ("pbft", Pbft_model.layout, Pbft_model.replica, golden_pbft);
    ("gossip", Gossip_model.layout, Gossip_model.aggregator (), golden_gossip);
    ("paxos", Paxos_model.layout, Paxos_model.acceptor, golden_paxos);
  ]

let test_golden_summaries () =
  List.iter
    (fun (name, layout, server, golden) ->
      let rendered =
        String.trim
          (Format.asprintf "%a" Slice.pp_summary (Slice.analyze ~layout server))
      in
      Alcotest.(check string) (name ^ " summary") golden rendered)
    model_summaries

let test_field_reachability () =
  let reaches layout server f =
    Slice.field_reaches_branch (Slice.analyze ~layout server) f
  in
  (* the fields that matter for a verdict *)
  Alcotest.(check bool) "fsp cmd reaches branches" true
    (reaches Fsp_model.layout Fsp_model.server "cmd");
  Alcotest.(check bool) "rw crc reaches branches" true
    (reaches Rw_example.layout Rw_example.server "crc");
  (* the fields the server provably never branches on *)
  Alcotest.(check bool) "kv value reaches no branch" false
    (reaches Kv_model.layout Kv_model.server "value");
  Alcotest.(check bool) "kv token reaches no branch" false
    (reaches Kv_model.layout Kv_model.server "token");
  Alcotest.(check bool) "pbft mac reaches no branch" false
    (reaches Pbft_model.layout Pbft_model.replica "mac");
  Alcotest.(check bool) "pbft command reaches no branch" false
    (reaches Pbft_model.layout Pbft_model.replica "command");
  (* unknown fields stay conservative *)
  Alcotest.(check bool) "unknown field is conservative" true
    (reaches Kv_model.layout Kv_model.server "no-such-field")

(* --- value-set machinery ------------------------------------------------------- *)

let test_injective_image_bits () =
  let v8 = Term.var (Term.fresh_var ~name:"a" (Term.Bitvec 8)) in
  let w8 = Term.var (Term.fresh_var ~name:"b" (Term.Bitvec 8)) in
  let bits = Alcotest.(option int) in
  Alcotest.check bits "plain var" (Some 8) (Slice.injective_image_bits v8);
  Alcotest.check bits "zero-extended var" (Some 8)
    (Slice.injective_image_bits (Term.zero_extend ~by:8 v8));
  Alcotest.check bits "concat of distinct vars" (Some 16)
    (Slice.injective_image_bits (Term.concat v8 w8));
  Alcotest.check bits "repeated var is not injective" None
    (Slice.injective_image_bits (Term.concat v8 v8));
  Alcotest.check bits "constant has a 1-value image" (Some 0)
    (Slice.injective_image_bits (Term.const (Bv.of_int ~width:8 5)));
  Alcotest.check bits "arithmetic is opaque" None
    (Slice.injective_image_bits (Term.add v8 w8))

(* --- the oracle's static decisions --------------------------------------------- *)

let feas =
  let s = function
    | Interp.Feasible_exact -> "Feasible_exact"
    | Interp.Feasible_unknown -> "Feasible_unknown"
    | Interp.Infeasible -> "Infeasible"
  in
  Alcotest.testable (fun fmt v -> Format.pp_print_string fmt (s v)) ( = )

let test_oracle_static_decide () =
  Solver.reset_all_for_tests ();
  let oracle = Slice.make_oracle () in
  let x = Term.var (Term.fresh_var ~name:"x" (Term.Bitvec 8)) in
  let y = Term.var (Term.fresh_var ~name:"y" (Term.Bitvec 8)) in
  let c n = Term.const (Bv.of_int ~width:8 n) in
  let check name expected path cond =
    Alcotest.check feas name expected (oracle ~path cond)
  in
  (* an equality in the cone pins the base (the path is satisfiable) *)
  check "pinned: same constant" Interp.Feasible_exact
    [ Term.eq x (c 5) ] (Term.eq x (c 5));
  check "pinned: other constant" Interp.Infeasible
    [ Term.eq x (c 5) ] (Term.eq x (c 7));
  check "pinned: negated self" Interp.Infeasible
    [ Term.eq x (c 5) ] (Term.neq x (c 5));
  check "pinned: negated other" Interp.Feasible_exact
    [ Term.eq x (c 5) ] (Term.neq x (c 7));
  (* disequality chains over an injective base (the switch-case pattern) *)
  check "chain blocks the excluded value" Interp.Infeasible
    [ Term.neq x (c 1); Term.neq x (c 2) ]
    (Term.eq x (c 2));
  check "chain admits a fresh value" Interp.Feasible_exact
    [ Term.neq x (c 1) ] (Term.eq x (c 3));
  check "room left in the image" Interp.Feasible_exact
    [ Term.neq x (c 1) ] (Term.neq x (c 2));
  (* the cone drops variable-disjoint conjuncts *)
  check "disjoint constraints are irrelevant" Interp.Feasible_exact
    [ Term.eq y (c 9) ] (Term.eq x (c 4));
  (* single-variable interval atoms (the client guard-chain pattern) *)
  check "bound admits a member" Interp.Feasible_exact
    [ Term.ult x (c 10) ] (Term.eq x (c 5));
  check "bound excludes a non-member" Interp.Infeasible
    [ Term.ult x (c 10) ] (Term.eq x (c 12));
  check "bounds that cross are empty" Interp.Infeasible
    [ Term.uge x (c 7) ]
    (Term.ult x (c 7));
  check "narrow range minus holes survives" Interp.Feasible_exact
    [ Term.ugt x (c 3); Term.ult x (c 6); Term.neq x (c 4) ]
    (Term.eq x (c 5));
  check "narrow range exhausted by holes" Interp.Infeasible
    [ Term.ugt x (c 3); Term.ult x (c 6); Term.neq x (c 4) ]
    (Term.neq x (c 5));
  (* a 1-bit image exhausts: b <> 0 /\ b <> 1 is unsat *)
  let b = Term.var (Term.fresh_var ~name:"bit" (Term.Bitvec 1)) in
  let c1 n = Term.const (Bv.of_int ~width:1 n) in
  check "image exhausted" Interp.Infeasible
    [ Term.neq b (c1 0) ] (Term.neq b (c1 1));
  (* non-atoms fall back to the cone query and still agree with the truth *)
  check "non-atom falls back to the solver" Interp.Feasible_exact
    [ Term.eq y (c 9) ]
    (Term.ult x (c 5));
  check "unsat non-atom via the solver" Interp.Infeasible
    [ Term.ult x (c 1) ]
    (Term.neq x (c 0));
  Solver.reset_all_for_tests ()

(* --- slice-aware differentFrom -------------------------------------------------- *)

let fsp_predicate =
  lazy
    (Solver.reset_all_for_tests ();
     Term.reset_fresh_counter ();
     fst (Client_extract.extract ~layout:Fsp_model.layout (Fsp_model.clients ())))

let test_different_from_slice () =
  let pc = Lazy.force fsp_predicate in
  let base = Term.fresh_counter_value () in
  let run ~use_slice ~server_slice =
    Solver.reset_all_for_tests ();
    Term.set_fresh_counter base;
    let df, stats =
      Different_from.compute ~mask:Fsp_model.analysis_mask ~use_slice
        ?server_slice pc
    in
    (df, stats, Term.fresh_counter_value ())
  in
  let df_off, s_off, c_off = run ~use_slice:false ~server_slice:None in
  let df_on, s_on, c_on = run ~use_slice:true ~server_slice:None in
  let summary = Slice.analyze ~layout:Fsp_model.layout Fsp_model.server in
  let df_sum, s_sum, c_sum =
    run ~use_slice:true ~server_slice:(Some summary)
  in
  (* fresh-variable ids are consumed identically — the digest-stability
     property every later search variable id rests on *)
  Alcotest.(check int) "same fresh counter (slice on)" c_off c_on;
  Alcotest.(check int) "same fresh counter (server slice)" c_off c_sum;
  Alcotest.(check (list string))
    "same fields covered" s_off.Different_from.fields_covered
    s_on.Different_from.fields_covered;
  Alcotest.(check (list string))
    "same fields covered (server slice)" s_off.Different_from.fields_covered
    s_sum.Different_from.fields_covered;
  (* static decisions replace queries without changing a single verdict *)
  let n = Predicate.client_path_count pc in
  List.iter
    (fun field ->
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let off = Different_from.different df_off ~i ~j ~field in
          Alcotest.(check bool)
            (Printf.sprintf "%s (%d,%d) slice on = off" field i j)
            off
            (Different_from.different df_on ~i ~j ~field);
          (* every fsp mask field reaches a branch, so the server-slice
             variant decides the same matrix too *)
          Alcotest.(check bool)
            (Printf.sprintf "%s (%d,%d) server slice = off" field i j)
            off
            (Different_from.different df_sum ~i ~j ~field)
        done
      done)
    s_off.Different_from.fields_covered;
  Alcotest.(check int) "slice off decides nothing statically" 0
    s_off.Different_from.pairs_static;
  Alcotest.(check bool) "slice on decides pairs statically" true
    (s_on.Different_from.pairs_static > 0);
  Alcotest.(check bool)
    (Printf.sprintf "queries reduced >= 3x (%d -> %d)"
       s_off.Different_from.pairs_checked s_on.Different_from.pairs_checked)
    true
    (s_on.Different_from.pairs_checked * 3
    <= s_off.Different_from.pairs_checked);
  (* mask interaction: fields outside the mask are uncovered and safe,
     slice on or off *)
  List.iter
    (fun (f : Layout.field) ->
      let name = f.Layout.field_name in
      if not (List.mem name Fsp_model.analysis_mask) then
        List.iter
          (fun df ->
            Alcotest.(check bool) (name ^ " uncovered") false
              (Different_from.covers_field df name);
            Alcotest.(check bool) (name ^ " safe false") false
              (Different_from.different df ~i:0 ~j:1 ~field:name))
          [ df_off; df_on; df_sum ])
    (Layout.fields Fsp_model.layout)

let test_server_slice_skips_branchless_fields () =
  Solver.reset_all_for_tests ();
  Term.reset_fresh_counter ();
  let pc, _ =
    Client_extract.extract ~layout:Kv_model.layout [ Kv_model.client ]
  in
  let base = Term.fresh_counter_value () in
  let summary = Slice.analyze ~layout:Kv_model.layout Kv_model.server in
  let run ~server_slice =
    Solver.reset_all_for_tests ();
    Term.set_fresh_counter base;
    Different_from.compute ~mask:Kv_model.analysis_mask ~use_slice:true
      ?server_slice pc
  in
  let df_plain, _ = run ~server_slice:None in
  let df_sliced, stats = run ~server_slice:(Some summary) in
  let n = Predicate.client_path_count pc in
  List.iter
    (fun field ->
      let reaches = Slice.field_reaches_branch summary field in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let sliced = Different_from.different df_sliced ~i ~j ~field in
          if reaches then
            (* reachable fields: verbatim the plain matrix *)
            Alcotest.(check bool)
              (Printf.sprintf "%s (%d,%d) unchanged" field i j)
              (Different_from.different df_plain ~i ~j ~field)
              sliced
          else
            (* branchless fields: rows the search never consults, all safe *)
            Alcotest.(check bool)
              (Printf.sprintf "%s (%d,%d) skipped to false" field i j)
              false sliced
        done
      done)
    stats.Different_from.fields_covered

(* --- the digest bar: bundled targets, slice on/off x domains ------------------- *)

type setup = {
  sname : string;
  layout : Layout.t;
  clients : Ast.program list;
  server : Ast.program;
  mask : string list option;
  interp : Interp.config;
  client_interp : Interp.config option;
}

let setups =
  [
    {
      sname = "fsp";
      layout = Fsp_model.layout;
      clients = Fsp_model.clients ();
      server = Fsp_model.server;
      mask = Some Fsp_model.analysis_mask;
      interp = Interp.default_config;
      client_interp = None;
    };
    {
      sname = "pbft";
      layout = Pbft_model.layout;
      clients = [ Pbft_model.client ];
      server = Pbft_model.replica;
      mask = Some Pbft_model.analysis_mask;
      interp =
        Local_state.over_approximate ~vars:[ ("last_rid", 16) ]
          Interp.default_config;
      client_interp = None;
    };
    {
      sname = "kv";
      layout = Kv_model.layout;
      clients = [ Kv_model.client ];
      server = Kv_model.server;
      mask = Some Kv_model.analysis_mask;
      interp =
        {
          Interp.default_config with
          Interp.auto_classify = Some Kv_model.auto_classifier;
        };
      client_interp = None;
    };
    {
      sname = "gossip";
      layout = Gossip_model.layout;
      clients = [ Gossip_model.reporter ];
      server = Gossip_model.aggregator ~hardened:false ();
      mask = Some Gossip_model.analysis_mask;
      interp = Interp.default_config;
      client_interp =
        Some
          (Local_state.concrete
             ~incoming:(List.init 2 (fun _ -> Gossip_model.failure_event))
             ~prefix:Gossip_model.reporter_prefix Interp.default_config);
    };
    {
      sname = "paxos";
      layout = Paxos_model.layout;
      clients = [ Paxos_model.proposer_concrete ~value:7 ];
      server = Paxos_model.acceptor;
      mask = Some [ "mtype"; "ballot"; "value" ];
      interp =
        Local_state.concrete ~prefix:(Paxos_model.phase1_prefix ~ballot:5)
          Interp.default_config;
      client_interp = None;
    };
  ]

let digest_of s ~use_slice ~domains =
  Solver.reset_all_for_tests ();
  Term.reset_fresh_counter ();
  let config =
    {
      Search.default_config with
      Search.mask = s.mask;
      Search.witnesses_per_path = 2;
      Search.interp = s.interp;
      Search.use_slice = use_slice;
      Search.domains;
    }
  in
  let analysis =
    Achilles.analyze ~search_config:config ?client_interp:s.client_interp
      ~layout:s.layout ~clients:s.clients ~server:s.server ()
  in
  Report.report_digest analysis.Achilles.report

let test_digests_slice_invariant () =
  List.iter
    (fun s ->
      let reference = digest_of s ~use_slice:false ~domains:1 in
      List.iter
        (fun (use_slice, domains) ->
          Alcotest.(check string)
            (Printf.sprintf "%s: slice %b, domains %d" s.sname use_slice
               domains)
            reference
            (digest_of s ~use_slice ~domains))
        [ (true, 1); (false, 4); (true, 4) ])
    setups

(* --- the digest bar on random server trees -------------------------------------- *)

let message_size = 3
let rnd_layout = Layout.make ~name:"slice-rnd" [ ("tag", 1); ("a", 1); ("b", 1) ]

type tree =
  | Leaf of bool
  | Node of { field : int; op : int; konst : int; t : tree; f : tree }

type field_spec = Fconst of int | Fbounded of int

let tree_gen =
  QCheck2.Gen.(
    sized_size (int_range 1 3)
    @@ fix (fun self depth ->
           let leaf = map (fun b -> Leaf b) bool in
           if depth = 0 then leaf
           else
             frequency
               [
                 (1, leaf);
                 ( 3,
                   let* field = int_range 0 (message_size - 1) in
                   let* op = int_range 0 3 in
                   let* konst = int_range 0 7 in
                   let* t = self (depth - 1) in
                   let* f = self (depth - 1) in
                   return (Node { field; op; konst; t; f }) );
               ]))

let client_gen =
  QCheck2.Gen.(
    list_size (int_range 1 2)
      (list_repeat message_size
         (oneof
            [
              map (fun c -> Fconst c) (int_range 0 7);
              map (fun hi -> Fbounded hi) (int_range 0 7);
            ])))

let case_gen = QCheck2.Gen.pair tree_gen client_gen

let server_of_tree tree =
  let open Builder in
  let labels = ref 0 in
  let next () =
    incr labels;
    string_of_int !labels
  in
  let rec block = function
    | Leaf true -> [ mark_accept ("ok" ^ next ()) ]
    | Leaf false -> [ mark_reject ("no" ^ next ()) ]
    | Node { field; op; konst; t; f } ->
        let byte = load "msg" (i8 field) in
        let cond =
          match op with
          | 0 -> byte =: i8 konst
          | 1 -> byte <>: i8 konst
          | 2 -> byte <: i8 konst
          | _ -> byte >: i8 konst
        in
        [ if_ cond (block t) (block f) ]
  in
  prog "slice-gen-server"
    ~buffers:[ ("msg", message_size) ]
    (receive "msg" :: block tree)

let client_of_spec idx spec =
  let open Builder in
  let body =
    List.concat
      (List.mapi
         (fun i fs ->
           match fs with
           | Fconst c -> [ store "msg" (i8 i) (i8 c) ]
           | Fbounded hi ->
               let name = Printf.sprintf "sin%d_%d" idx i in
               [
                 read_input name ~width:8;
                 when_ (v name >: i8 hi) [ halt ];
                 store "msg" (i8 i) (v name);
               ])
         spec)
    @ [ send (i8 0) "msg" ]
  in
  prog
    (Printf.sprintf "slice-gen-client%d" idx)
    ~buffers:[ ("msg", message_size) ]
    body

let qcheck_random_digest_invariance =
  QCheck2.Test.make ~name:"random servers: digest slice on = slice off"
    ~count:25 case_gen (fun (tree, client_specs) ->
      let server = server_of_tree tree in
      let clients = List.mapi client_of_spec client_specs in
      let digest ~use_slice =
        Solver.reset_all_for_tests ();
        Term.reset_fresh_counter ();
        let client, _ = Client_extract.extract ~layout:rnd_layout clients in
        let config =
          { Search.default_config with Search.use_slice; Search.witnesses_per_path = 2 }
        in
        Report.report_digest (Search.run ~config ~client ~server ())
      in
      digest ~use_slice:true = digest ~use_slice:false)

(* --- taint-aware depth accounting ------------------------------------------------ *)

(* A server whose branching is dominated by message-independent decisions:
   with the oracle installed, only message-tainted branches count against
   [max_depth], so a bound the clean chain would blow stops truncating. *)
let local_chain_server depth =
  let open Builder in
  let rec chain k =
    if k = 0 then [ mark_accept "deep" ]
    else
      [
        if_
          (v "x" >: i8 (100 + k))
          [ mark_reject (Printf.sprintf "hi%d" k) ]
          (chain (k - 1));
      ]
  in
  prog "local-chain"
    ~buffers:[ ("msg", 2) ]
    (receive "msg"
    :: read_input "x" ~width:8
    :: if_
         (load "msg" (i8 0) =: i8 1)
         (chain depth)
         [ mark_reject "tag" ]
    :: [])

let test_taint_aware_depth () =
  let depth = 8 in
  let server = local_chain_server depth in
  let run oracle =
    Solver.reset_all_for_tests ();
    Term.reset_fresh_counter ();
    let config =
      { Interp.default_config with Interp.max_depth = 4; Interp.oracle }
    in
    Interp.run ~config server
  in
  let without = run None in
  let with_slice = run (Some (Slice.make_oracle ())) in
  Alcotest.(check bool) "plain interpreter truncates the clean chain" true
    (without.Interp.stats.Interp.truncated_depth > 0);
  Alcotest.(check int) "sliced interpreter never truncates" 0
    (with_slice.Interp.stats.Interp.truncated_depth);
  Alcotest.(check bool) "and explores more of the clean chain" true
    (with_slice.Interp.stats.Interp.forks > without.Interp.stats.Interp.forks)

let () =
  Alcotest.run "slice"
    [
      ( "analysis",
        [
          Alcotest.test_case "golden summaries" `Quick test_golden_summaries;
          Alcotest.test_case "field reachability" `Quick
            test_field_reachability;
        ] );
      ( "value-set",
        [
          Alcotest.test_case "injective image bits" `Quick
            test_injective_image_bits;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "static decisions" `Quick
            test_oracle_static_decide;
        ] );
      ( "different-from",
        [
          Alcotest.test_case "slice on = slice off" `Quick
            test_different_from_slice;
          Alcotest.test_case "server slice skips branchless fields" `Quick
            test_server_slice_skips_branchless_fields;
        ] );
      ( "digests",
        [
          Alcotest.test_case "bundled targets, slice x domains" `Slow
            test_digests_slice_invariant;
          QCheck_alcotest.to_alcotest qcheck_random_digest_invariance;
        ] );
      ( "interp",
        [
          Alcotest.test_case "taint-aware depth" `Quick test_taint_aware_depth;
        ] );
    ]
