(* A symbolic execution state: symbolic store (scalars + buffers), path
   constraints, captured sends, and the terminal status. States are
   immutable; forking shares structure, and buffer writes copy the array. *)

open Achilles_smt
module String_map = Map.Make (String)

type status =
  | Running
  | Accepted of string (* reached a [Mark_accept] *)
  | Rejected of string (* reached a [Mark_reject] *)
  | Finished (* ran to completion / [Halt] / trailing [Receive] *)
  | Dropped (* [Drop_path] or infeasible [Assume] *)
  | Crashed of string (* runtime error or resource bound *)

type message = {
  dst : Term.t;
  payload : Term.t array; (* byte terms at the moment of the send *)
  path_at_send : Term.t list;
  during_analysis : bool;
      (* sent while handling the analyzed (fresh symbolic) message — i.e. a
         reply to it, as opposed to traffic from preloaded rounds *)
}

type t = {
  id : int;
  parent : int option;
  route : string;
      (* branch decisions ('0' = true-branch, '1' = false-branch) taken at
         two-sided forks on the way here; stable across runs and domain
         counts, unlike [id] which numbers states in creation order *)
  globals : Term.t String_map.t;
  buffers : Term.t array String_map.t;
  path : Term.t list; (* newest constraint first *)
  path_exact : bool;
      (* every conjunct on [path] was admitted with an exact [Sat] — the
         invariant the slice oracle's cone factorization relies on; turns
         false the first time a conjunct rides in on an [Unknown] *)
  depth : int; (* number of branch decisions on symbolic data *)
  sent : message list; (* newest first *)
  received : int; (* number of [Receive] statements executed *)
  incoming_queue : Term.t array list; (* messages pending for [Receive] *)
  msg_vars : Term.var array option; (* bytes of the fresh symbolic message *)
  input_vars : Term.var list;
  status : status;
}

let status_string = function
  | Running -> "running"
  | Accepted l -> "accepted:" ^ l
  | Rejected l -> "rejected:" ^ l
  | Finished -> "finished"
  | Dropped -> "dropped"
  | Crashed m -> "crashed:" ^ m

let is_terminal s = s.status <> Running

let constraints s = List.rev s.path

(* On interned terms this is a physical-equality scan (hkey filters the
   rest), so callers can afford it on every branch. *)
let has_conjunct s c = List.exists (Term.equal c) s.path

let pp fmt s =
  Format.fprintf fmt "@[<v>state %d (%s), depth %d@," s.id
    (status_string s.status) s.depth;
  List.iter (fun c -> Format.fprintf fmt "  %a@," Term.pp c) (constraints s);
  Format.fprintf fmt "@]"
