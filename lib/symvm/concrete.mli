(** Concrete interpreter for the protocol DSL.

    Runs a program on concrete values: [Read_input] / [Make_symbolic]
    consume the provided input list (zero once exhausted), [Receive]
    consumes the incoming message queue and terminates the path when the
    queue is empty (the node is back at its event loop), [Send] appends to
    the outbox. Used by the black-box fuzzing baseline, by fault injection,
    and to validate Trojan witnesses produced by the symbolic analysis. *)

open Achilles_smt

type outcome = {
  status : State.status;
  sent : (Bv.t * Bv.t array) list; (* (destination, payload), send order *)
  globals : (string * Bv.t) list; (* final values of program globals *)
  buffers : (string * Bv.t array) list; (* final buffer contents *)
  steps : int;
}

val run :
  ?max_steps:int ->
  ?inputs:Bv.t list ->
  ?incoming:Bv.t array list ->
  ?initial_globals:(string * Bv.t) list ->
  ?initial_buffers:(string * Bv.t array) list ->
  Ast.program ->
  outcome
(** Raises nothing: runtime errors (out-of-bounds accesses, unbound names,
    exhausted step budget) yield a [Crashed] status. *)

val accepted : outcome -> bool
(** Did the run end on a [Mark_accept]? *)
