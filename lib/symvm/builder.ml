(* Combinators for writing DSL programs concisely. Target models open this
   module locally:

   {[
     let open Builder in
     prog "server"
       ~buffers:[ ("msg", 8) ]
       [
         receive "msg";
         if_ (load "msg" (i8 0) =: i8 1)
           [ mark_accept "read" ]
           [ mark_reject "bad-cmd" ];
       ]
   ]} *)

open Ast

let num ~width value = Num { value; width }
let i8 value = num ~width:8 value
let i16 value = num ~width:16 value
let i32 value = num ~width:32 value
let chr c = i8 (Char.code c)
let v name = Var name
let load buf off = Load (buf, off)
let len buf = Len buf
let cast width e = Cast (width, e)

let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)
let ( *: ) a b = Binop (Mul, a, b)
let ( /: ) a b = Binop (Udiv, a, b)
let ( %: ) a b = Binop (Urem, a, b)
let ( =: ) a b = Binop (Eq, a, b)
let ( <>: ) a b = Binop (Ne, a, b)
let ( <: ) a b = Binop (Ult, a, b)
let ( <=: ) a b = Binop (Ule, a, b)
let ( >: ) a b = Binop (Ugt, a, b)
let ( >=: ) a b = Binop (Uge, a, b)
let ( <+: ) a b = Binop (Slt, a, b) (* signed comparisons *)
let ( <=+: ) a b = Binop (Sle, a, b)
let ( >+: ) a b = Binop (Sgt, a, b)
let ( >=+: ) a b = Binop (Sge, a, b)
let ( &&: ) a b = Binop (And, a, b)
let ( ||: ) a b = Binop (Or, a, b)
let ( &: ) a b = Binop (Band, a, b)
let ( |: ) a b = Binop (Bor, a, b)
let ( ^: ) a b = Binop (Bxor, a, b)
let ( <<: ) a b = Binop (Shl, a, b)
let ( >>: ) a b = Binop (Lshr, a, b)
let not_ e = Unop (Not, e)
let bnot e = Unop (Bnot, e)
let neg e = Unop (Neg, e)

let set name e = Assign (name, e)
let store buf off value = Store (buf, off, value)
let if_ c t f = If (c, t, f)
let when_ c t = If (c, t, [])
let switch e cases ~default = Switch (e, cases, default)
let while_ c body = While (c, body)
let call ?result proc args = Call { proc; args; result }
let return e = Return (Some e)
let return_unit = Return None
let receive buf = Receive buf
let send dst buf = Send { dst; buf }
let read_input name ~width = Read_input (name, width)
let make_symbolic name ~width = Make_symbolic (name, width)
let make_buffer_symbolic buf = Make_buffer_symbolic buf
let assume e = Assume e
let drop_path = Drop_path
let mark_accept label = Mark_accept label
let mark_reject label = Mark_reject label
let halt = Halt
let abort reason = Abort reason

let proc name ~params body = { proc_name = name; params; body }

let prog ?(globals = []) ?(buffers = []) ?(procs = []) name main =
  let program = { prog_name = name; globals; buffers; procs; main } in
  match validate program with
  | Ok () -> program
  | Error errors ->
      invalid_arg
        (Printf.sprintf "Builder.prog %s: %s" name (String.concat "; " errors))
