(** Combinators for writing DSL programs concisely.

    Target models open this module locally:

    {[
      let open Builder in
      prog "server"
        ~buffers:[ ("msg", 8) ]
        [
          receive "msg";
          if_
            (load "msg" (i8 0) =: i8 1)
            [ mark_accept "read" ]
            [ mark_reject "bad-cmd" ];
        ]
    ]}

    Operator conventions: a trailing [:] marks the DSL variant of an OCaml
    operator ([+:], [=:], [<:], ...); comparisons are unsigned unless they
    carry a [+] ([<+:] is signed less-than); [&&:]/[||:] are boolean while
    [&:]/[|:]/[^:] are bitwise. *)

open Ast

val num : width:int -> int -> expr
val i8 : int -> expr
val i16 : int -> expr
val i32 : int -> expr
val chr : char -> expr
val v : string -> expr
(** Variable reference. *)

val load : string -> expr -> expr
val len : string -> expr
val cast : int -> expr -> expr

val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr
val ( %: ) : expr -> expr -> expr
val ( =: ) : expr -> expr -> expr
val ( <>: ) : expr -> expr -> expr
val ( <: ) : expr -> expr -> expr
val ( <=: ) : expr -> expr -> expr
val ( >: ) : expr -> expr -> expr
val ( >=: ) : expr -> expr -> expr
val ( <+: ) : expr -> expr -> expr
(** Signed comparisons. *)

val ( <=+: ) : expr -> expr -> expr
val ( >+: ) : expr -> expr -> expr
val ( >=+: ) : expr -> expr -> expr
val ( &&: ) : expr -> expr -> expr
val ( ||: ) : expr -> expr -> expr
val ( &: ) : expr -> expr -> expr
val ( |: ) : expr -> expr -> expr
val ( ^: ) : expr -> expr -> expr
val ( <<: ) : expr -> expr -> expr
val ( >>: ) : expr -> expr -> expr
val not_ : expr -> expr
val bnot : expr -> expr
val neg : expr -> expr

val set : string -> expr -> stmt
val store : string -> expr -> expr -> stmt
val if_ : expr -> block -> block -> stmt
val when_ : expr -> block -> stmt
(** [when_ c body] is [if_ c body []]. *)

val switch : expr -> (int * block) list -> default:block -> stmt
val while_ : expr -> block -> stmt
val call : ?result:string -> string -> expr list -> stmt
val return : expr -> stmt
val return_unit : stmt
val receive : string -> stmt
val send : expr -> string -> stmt
val read_input : string -> width:int -> stmt
val make_symbolic : string -> width:int -> stmt
val make_buffer_symbolic : string -> stmt
val assume : expr -> stmt
val drop_path : stmt
val mark_accept : string -> stmt
val mark_reject : string -> stmt
val halt : stmt
val abort : string -> stmt

val proc : string -> params:(string * int) list -> block -> proc

val prog :
  ?globals:(string * int) list ->
  ?buffers:(string * int) list ->
  ?procs:proc list ->
  string ->
  block ->
  program
(** Build and {!Ast.validate} a program; raises [Invalid_argument] listing
    the problems on failure. *)
