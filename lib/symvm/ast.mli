(** The protocol-node DSL.

    Programs model distributed-system nodes: they read local inputs,
    receive and send fixed-size byte-buffer messages, and branch on their
    contents. The DSL plays the role x86 binaries under S2E play in the
    paper: the symbolic interpreter needs only branching structure, buffer
    bytes and accept/reject/send events, all of which the DSL provides.

    Scalars are fixed-width bitvectors; buffers are global fixed-size byte
    arrays. Boolean-valued expressions (comparisons, [And]/[Or]/[Not]) may
    appear in any boolean context; numeric contexts coerce booleans to
    1-bit vectors and harmonize operand widths by zero-extension (signed
    operators sign-extend).

    Prefer building programs with {!Builder}, which validates the result. *)

type unop = Not  (** boolean *) | Bnot  (** bitwise *) | Neg

type binop =
  | Add
  | Sub
  | Mul
  | Udiv
  | Urem
  | And  (** boolean *)
  | Or  (** boolean *)
  | Band
  | Bor
  | Bxor
  | Shl
  | Lshr
  | Ashr
  | Eq
  | Ne
  | Ult
  | Ule
  | Ugt
  | Uge
  | Slt
  | Sle
  | Sgt
  | Sge

type expr =
  | Num of { value : int; width : int }
  | Var of string
  | Load of string * expr
      (** [Load (buffer, offset)] reads one byte; symbolic offsets are
          handled by the interpreters *)
  | Len of string  (** buffer length, as a 32-bit constant *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Cast of int * expr  (** zero-extend or truncate to the given width *)

type stmt =
  | Assign of string * expr
  | Store of string * expr * expr  (** [buffer.(offset) <- value] (8-bit) *)
  | If of expr * block * block
  | Switch of expr * (int * block) list * block
      (** scrutinee, cases, default *)
  | While of expr * block  (** unrolled up to the interpreter bound *)
  | Call of { proc : string; args : expr list; result : string option }
  | Return of expr option
  | Receive of string  (** fill the buffer with the next incoming message *)
  | Send of { dst : expr; buf : string }
  | Read_input of string * int
      (** bind a fresh local input of the given width (symbolic mode) or
          the next provided input (concrete mode) *)
  | Make_symbolic of string * int  (** annotation: havoc a scalar (§5.2) *)
  | Make_buffer_symbolic of string  (** annotation: havoc a whole buffer *)
  | Assume of expr
      (** annotation: constrain; infeasible paths are dropped (§5.2's
          [drop_path]-with-constraints idiom) *)
  | Drop_path  (** annotation: silently abandon this path (§5.2) *)
  | Mark_accept of string  (** annotation: accepting path marker (§5.2) *)
  | Mark_reject of string  (** annotation: rejecting path marker (§5.2) *)
  | Halt  (** finish the program normally *)
  | Abort of string  (** simulated crash *)

and block = stmt list

type proc = { proc_name : string; params : (string * int) list; body : block }
(** Procedures take fixed-width scalar parameters by value and may return a
    scalar with [Return]; buffers and globals are shared. *)

type program = {
  prog_name : string;
  globals : (string * int) list;  (** scalar name, width in bits *)
  buffers : (string * int) list;  (** buffer name, length in bytes *)
  procs : proc list;
  main : block;
}

val find_proc : program -> string -> proc option
val buffer_length : program -> string -> int option

val top_blocks : program -> (string * block) list
(** [("main", main)] followed by every procedure's [(name, body)] — the
    sweep order program-wide analyses (the dependency slice) iterate over. *)

val stmt_exprs : stmt -> expr list
(** The expressions a statement evaluates directly (conditions, right-hand
    sides, offsets, arguments); nested blocks are not descended into. *)

val stmt_blocks : stmt -> block list
(** The blocks nested directly under a statement ([If]/[Switch]/[While]). *)

val validate : program -> (unit, string list) result
(** Check that every referenced buffer and procedure exists and call
    arities match. Width errors surface dynamically via [Term]'s sort
    checker. *)
