open Achilles_smt

type outcome = {
  status : State.status;
  sent : (Bv.t * Bv.t array) list;
  globals : (string * Bv.t) list;
  buffers : (string * Bv.t array) list;
  steps : int;
}

type value = Vbool of bool | Vbv of Bv.t

exception Terminated of State.status
exception Runtime_error of string

let runtime_error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

type env = {
  program : Ast.program;
  globals : (string, Bv.t) Hashtbl.t;
  buffers : (string, Bv.t array) Hashtbl.t;
  mutable inputs : Bv.t list;
  mutable incoming : Bv.t array list;
  mutable sent : (Bv.t * Bv.t array) list; (* newest first *)
  mutable steps : int;
  max_steps : int;
}

let tick env =
  env.steps <- env.steps + 1;
  if env.steps > env.max_steps then raise (Terminated (State.Crashed "step limit"))

let as_bool = function
  | Vbool b -> b
  | Vbv bv -> not (Bv.equal bv (Bv.zero (Bv.width bv)))

let as_bv = function
  | Vbv bv -> bv
  | Vbool b -> Bv.of_int ~width:1 (if b then 1 else 0)

let harmonize ~signed a b =
  let a = as_bv a and b = as_bv b in
  let wa = Bv.width a and wb = Bv.width b in
  if wa = wb then (a, b)
  else
    let extend ~by v =
      if signed then Bv.sign_extend ~by v else Bv.zero_extend ~by v
    in
    if wa < wb then (extend ~by:(wb - wa) a, b) else (a, extend ~by:(wa - wb) b)

let resize ~width v =
  let w = Bv.width v in
  if width = w then v
  else if width > w then Bv.zero_extend ~by:(width - w) v
  else Bv.extract ~hi:(width - 1) ~lo:0 v

let get_buffer env name =
  match Hashtbl.find_opt env.buffers name with
  | Some b -> b
  | None -> runtime_error "unknown buffer %s" name

type frame = (string, Bv.t) Hashtbl.t

let lookup env (frame : frame) name =
  match Hashtbl.find_opt frame name with
  | Some v -> Some v
  | None -> Hashtbl.find_opt env.globals name

let assign env (frame : frame) name v =
  if Hashtbl.mem env.globals name then Hashtbl.replace env.globals name v
  else Hashtbl.replace frame name v

let next_input env width =
  match env.inputs with
  | v :: rest ->
      env.inputs <- rest;
      resize ~width v
  | [] -> Bv.zero width

let rec eval env frame (e : Ast.expr) : value =
  match e with
  | Num { value; width } -> Vbv (Bv.of_int ~width value)
  | Var name -> (
      match lookup env frame name with
      | Some v -> Vbv v
      | None -> runtime_error "unbound variable %s" name)
  | Load (buf, off) ->
      let buffer = get_buffer env buf in
      let i = Bv.to_int (as_bv (eval env frame off)) in
      if i < 0 || i >= Array.length buffer then
        runtime_error "out-of-bounds read %s[%d]" buf i
      else Vbv buffer.(i)
  | Len buf -> Vbv (Bv.of_int ~width:32 (Array.length (get_buffer env buf)))
  | Unop (op, a) -> (
      let v = eval env frame a in
      match op with
      | Ast.Not -> Vbool (not (as_bool v))
      | Ast.Bnot -> Vbv (Bv.lognot (as_bv v))
      | Ast.Neg -> Vbv (Bv.neg (as_bv v)))
  | Binop (op, a, b) -> (
      let va = eval env frame a and vb = eval env frame b in
      let u f = let x, y = harmonize ~signed:false va vb in Vbv (f x y) in
      let ub f = let x, y = harmonize ~signed:false va vb in Vbool (f x y) in
      let sb f = let x, y = harmonize ~signed:true va vb in Vbool (f x y) in
      match op with
      | Ast.Add -> u Bv.add
      | Ast.Sub -> u Bv.sub
      | Ast.Mul -> u Bv.mul
      | Ast.Udiv -> u Bv.udiv
      | Ast.Urem -> u Bv.urem
      | Ast.And -> Vbool (as_bool va && as_bool vb)
      | Ast.Or -> Vbool (as_bool va || as_bool vb)
      | Ast.Band -> u Bv.logand
      | Ast.Bor -> u Bv.logor
      | Ast.Bxor -> u Bv.logxor
      | Ast.Shl -> u Bv.shl
      | Ast.Lshr -> u Bv.lshr
      | Ast.Ashr ->
          let x, y = harmonize ~signed:true va vb in
          Vbv (Bv.ashr x y)
      | Ast.Eq -> ub Bv.equal
      | Ast.Ne -> ub (fun x y -> not (Bv.equal x y))
      | Ast.Ult -> ub Bv.ult
      | Ast.Ule -> ub Bv.ule
      | Ast.Ugt -> ub (fun x y -> Bv.ult y x)
      | Ast.Uge -> ub (fun x y -> Bv.ule y x)
      | Ast.Slt -> sb Bv.slt
      | Ast.Sle -> sb Bv.sle
      | Ast.Sgt -> sb (fun x y -> Bv.slt y x)
      | Ast.Sge -> sb (fun x y -> Bv.sle y x))
  | Cast (width, a) -> Vbv (resize ~width (as_bv (eval env frame a)))

let rec exec_block env frame block : Bv.t option option =
  (* [None]: fell through; [Some r]: returned with optional value *)
  match block with
  | [] -> None
  | stmt :: rest -> (
      match exec_stmt env frame stmt with
      | None -> exec_block env frame rest
      | Some _ as returned -> returned)

and exec_stmt env frame (stmt : Ast.stmt) : Bv.t option option =
  tick env;
  match stmt with
  | Assign (name, e) ->
      assign env frame name (as_bv (eval env frame e));
      None
  | Store (buf, off, value) ->
      let buffer = get_buffer env buf in
      let i = Bv.to_int (as_bv (eval env frame off)) in
      if i < 0 || i >= Array.length buffer then
        runtime_error "out-of-bounds write %s[%d]" buf i;
      buffer.(i) <- resize ~width:8 (as_bv (eval env frame value));
      None
  | If (c, tb, fb) ->
      if as_bool (eval env frame c) then exec_block env frame tb
      else exec_block env frame fb
  | Switch (e, cases, default) -> (
      let v = as_bv (eval env frame e) in
      let w = Bv.width v in
      match
        List.find_opt (fun (k, _) -> Bv.equal v (Bv.of_int ~width:w k)) cases
      with
      | Some (_, blk) -> exec_block env frame blk
      | None -> exec_block env frame default)
  | While (c, body) ->
      let rec loop () =
        tick env;
        if as_bool (eval env frame c) then
          match exec_block env frame body with
          | None -> loop ()
          | Some _ as returned -> returned
        else None
      in
      loop ()
  | Call { proc; args; result } -> (
      match Ast.find_proc env.program proc with
      | None -> runtime_error "unknown procedure %s" proc
      | Some p ->
          let callee : frame = Hashtbl.create 8 in
          List.iter2
            (fun (param, width) arg ->
              Hashtbl.replace callee param
                (resize ~width (as_bv (eval env frame arg))))
            p.Ast.params args;
          let returned = exec_block env callee p.Ast.body in
          (match result, returned with
          | None, _ -> ()
          | Some var, Some (Some v) -> assign env frame var v
          | Some _, (None | Some None) ->
              runtime_error "procedure %s returned no value" proc);
          None)
  | Return e -> Some (Option.map (fun e -> as_bv (eval env frame e)) e)
  | Receive buf -> (
      let buffer = get_buffer env buf in
      match env.incoming with
      | msg :: rest ->
          if Array.length msg <> Array.length buffer then
            runtime_error "receive: message size mismatch for %s" buf;
          env.incoming <- rest;
          Hashtbl.replace env.buffers buf (Array.copy msg);
          None
      | [] -> raise (Terminated State.Finished))
  | Send { dst; buf } ->
      let dst = as_bv (eval env frame dst) in
      env.sent <- (dst, Array.copy (get_buffer env buf)) :: env.sent;
      None
  | Read_input (name, width) | Make_symbolic (name, width) ->
      assign env frame name (next_input env width);
      None
  | Make_buffer_symbolic buf ->
      let buffer = get_buffer env buf in
      Hashtbl.replace env.buffers buf
        (Array.map (fun _ -> next_input env 8) buffer);
      None
  | Assume e ->
      if as_bool (eval env frame e) then None
      else raise (Terminated State.Dropped)
  | Drop_path -> raise (Terminated State.Dropped)
  | Mark_accept label -> raise (Terminated (State.Accepted label))
  | Mark_reject label -> raise (Terminated (State.Rejected label))
  | Halt -> raise (Terminated State.Finished)
  | Abort reason -> raise (Terminated (State.Crashed reason))

let run ?(max_steps = 1_000_000) ?(inputs = []) ?(incoming = [])
    ?(initial_globals = []) ?(initial_buffers = []) program =
  let env =
    {
      program;
      globals = Hashtbl.create 16;
      buffers = Hashtbl.create 8;
      inputs;
      incoming;
      sent = [];
      steps = 0;
      max_steps;
    }
  in
  List.iter
    (fun (name, width) -> Hashtbl.replace env.globals name (Bv.zero width))
    program.Ast.globals;
  List.iter
    (fun (name, v) ->
      if not (Hashtbl.mem env.globals name) then
        invalid_arg (Printf.sprintf "Concrete.run: %s is not a global" name);
      Hashtbl.replace env.globals name v)
    initial_globals;
  List.iter
    (fun (name, size) ->
      Hashtbl.replace env.buffers name (Array.make size (Bv.zero 8)))
    program.Ast.buffers;
  List.iter
    (fun (name, contents) ->
      match Hashtbl.find_opt env.buffers name with
      | Some b when Array.length b = Array.length contents ->
          Hashtbl.replace env.buffers name (Array.copy contents)
      | Some _ -> invalid_arg "Concrete.run: initial buffer size mismatch"
      | None -> invalid_arg (Printf.sprintf "Concrete.run: no buffer %s" name))
    initial_buffers;
  let status =
    try
      let frame : frame = Hashtbl.create 16 in
      (match exec_block env frame program.Ast.main with
      | None | Some _ -> ());
      State.Finished
    with
    | Terminated status -> status
    | Runtime_error msg -> State.Crashed msg
  in
  {
    status;
    sent = List.rev env.sent;
    globals =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) env.globals []
      |> List.sort compare;
    buffers =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) env.buffers []
      |> List.sort compare;
    steps = env.steps;
  }

let accepted outcome =
  match outcome.status with State.Accepted _ -> true | _ -> false
