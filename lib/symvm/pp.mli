(** Pretty-printing of DSL programs as pseudo-C, for inspection and for the
    CLI's [show] command. The output is stable (used in golden tests) but
    not parsed back. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_block : Format.formatter -> Ast.block -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val program_to_string : Ast.program -> string
