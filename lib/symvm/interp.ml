open Achilles_smt
module Obs = Achilles_obs.Obs
module String_map = State.String_map

exception Runtime_error of string

let runtime_error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

(* A shard restricts a run to the subtree(s) whose routes agree with the
   shard index on the first [shard_bits] fork decisions. 2^shard_bits shards
   together cover the whole exploration tree: each shard replays the shared
   spine (states whose route is shorter than [shard_bits]) and exclusively
   explores the subtrees below its own bit pattern. *)
type shard = { shard_index : int; shard_bits : int }

let shard_bit sh k = (sh.shard_index lsr k) land 1

let shard_compatible sh route =
  let n = min (String.length route) sh.shard_bits in
  let ok = ref true in
  for k = 0 to n - 1 do
    if Char.code route.[k] - Char.code '0' <> shard_bit sh k then ok := false
  done;
  !ok

(* Exactly one compatible shard "owns" each state: the one whose index bits
   beyond the route are all zero. Owners do the per-state recording (and the
   witness enumeration) so a parallel merge is pure concatenation. *)
let shard_owns sh route =
  shard_compatible sh route
  && sh.shard_index lsr min (String.length route) sh.shard_bits = 0

(* Three-way feasibility verdict. [Feasible_exact] is a real [Sat]: the
   extended path is known satisfiable, preserving the invariant behind
   [State.path_exact]. [Feasible_unknown] keeps the path (conservative) but
   poisons exactness down the subtree. *)
type feasibility = Feasible_exact | Feasible_unknown | Infeasible

(* A feasibility oracle decides [path /\ cond] without (necessarily) paying
   for a full-path solver query — e.g. the slice oracle's cone
   factorization. Only consulted while [State.path_exact] holds, i.e. the
   path itself is known satisfiable; verdicts must coincide with what the
   scratch query over the full path would answer (modulo Unknown, which may
   only degrade toward [Feasible_unknown]). *)
type oracle = path:Term.t list -> Term.t -> feasibility

type config = {
  max_unroll : int;
  max_depth : int;
  max_states : int;
  feasibility_conflict_limit : int option;
  preload_messages : Term.t array list;
  initial_globals : (string * Term.t) list;
  initial_path : Term.t list;
  auto_classify : (State.t -> State.status option) option;
      (* reclassify paths that end back at the event loop without an
         explicit marker (status [Finished]) — §5.1's automatic
         accept/reject detection *)
  shard : shard option;
      (* when set, forks creating a route incompatible with the shard are
         not explored (the sibling shard explores them) *)
  oracle : oracle option;
      (* feasibility oracle for branch/assume checks on exact paths; when
         set, [max_depth] also counts only message-tainted decisions *)
}

let default_config =
  {
    max_unroll = 64;
    max_depth = 256;
    max_states = 100_000;
    feasibility_conflict_limit = None;
    preload_messages = [];
    initial_globals = [];
    initial_path = [];
    auto_classify = None;
    shard = None;
    oracle = None;
  }

(* §5.1's default heuristic: a handler that replied to the analyzed message
   accepted it; one that silently returned to its event loop rejected it. *)
let classify_by_reply (st : State.t) =
  if st.State.msg_vars = None then None
  else if
    List.exists (fun (m : State.message) -> m.State.during_analysis) st.State.sent
  then Some (State.Accepted "auto:reply")
  else Some (State.Rejected "auto:no-reply")

(* The HTTP-style extension: classify by a status byte of the reply. Paths
   whose status byte is not a compile-time constant are left unclassified
   (conservative). *)
let classify_by_status ~offset ~accept (st : State.t) =
  if st.State.msg_vars = None then None
  else
    match
      List.find_opt
        (fun (m : State.message) -> m.State.during_analysis)
        st.State.sent
    with
    | None -> Some (State.Rejected "auto:no-reply")
    | Some reply when offset < Array.length reply.State.payload -> (
        match Term.const_value reply.State.payload.(offset) with
        | Some code ->
            let code = Bv.to_int code in
            if accept code then
              Some (State.Accepted (Printf.sprintf "auto:status-%d" code))
            else Some (State.Rejected (Printf.sprintf "auto:status-%d" code))
        | None -> None)
    | Some _ -> None

type hooks = {
  on_constraint : State.t -> Term.t -> bool;
  on_fork : parent:State.t -> child:State.t -> unit;
  on_send : State.t -> State.message -> unit;
  on_terminal : State.t -> unit;
}

let default_hooks =
  {
    on_constraint = (fun _ _ -> true);
    on_fork = (fun ~parent:_ ~child:_ -> ());
    on_send = (fun _ _ -> ());
    on_terminal = (fun _ -> ());
  }

type run_stats = {
  mutable states_created : int;
  mutable forks : int;
  mutable pruned : int;
  mutable truncated_depth : int;
  mutable truncated_unroll : int;
  mutable truncated_states : int;
}

let truncated s = s.truncated_depth + s.truncated_unroll + s.truncated_states

type run = { terminals : State.t list; stats : run_stats }

type ctx = {
  program : Ast.program;
  config : config;
  hooks : hooks;
  stats : run_stats;
  mutable next_id : int;
}

type locals = Term.t String_map.t

type exit = Fall | Ret of Term.t option | End

(* Execution is a lazy sequence of outcomes: a fork's true child and its
   whole subtree are forced (and numbered) before the false child is even
   created. That makes state creation order exactly the depth-first
   pre-order of the exploration tree — i.e. the lexicographic order of
   routes — which is what the parallel search's deterministic merge
   renumbers by. It also keeps only one path's frontier live at a time
   instead of materializing every pending sibling eagerly. *)
type outcomes = (State.t * locals * exit) Seq.t

(* --- value coercion -------------------------------------------------------- *)

let as_bool t =
  match Term.sort_of t with
  | Term.Bool -> t
  | Term.Bitvec w -> Term.neq t (Term.int ~width:w 0)

let as_bv t =
  match Term.sort_of t with
  | Term.Bitvec _ -> t
  | Term.Bool -> Term.ite t (Term.int ~width:1 1) (Term.int ~width:1 0)

let harmonize ~signed a b =
  let a = as_bv a and b = as_bv b in
  let wa = Term.width_of a and wb = Term.width_of b in
  if wa = wb then (a, b)
  else
    let extend ~by t =
      if signed then Term.sign_extend ~by t else Term.zero_extend ~by t
    in
    if wa < wb then (extend ~by:(wb - wa) a, b) else (a, extend ~by:(wa - wb) b)

(* --- expression evaluation -------------------------------------------------- *)

let lookup_var st (locals : locals) name =
  match String_map.find_opt name locals with
  | Some t -> Some t
  | None -> String_map.find_opt name st.State.globals

let get_buffer st name =
  match String_map.find_opt name st.State.buffers with
  | Some b -> b
  | None -> runtime_error "unknown buffer %s" name

let load_byte st name offset =
  let buffer = get_buffer st name in
  let n = Array.length buffer in
  match Term.const_value offset with
  | Some bv ->
      let i = Bv.to_int bv in
      if i < 0 || i >= n then
        runtime_error "out-of-bounds read %s[%d] (size %d)" name i n
      else buffer.(i)
  | None ->
      (* symbolic index: mux over every cell; out-of-range reads as 0, which
         models a safe-but-unchecked memory (the accept/reject structure,
         not the loaded value, is what the analysis consumes) *)
      let w = Term.width_of offset in
      let rec mux i =
        if i = n then Term.int ~width:8 0
        else
          Term.ite
            (Term.eq offset (Term.int ~width:w i))
            buffer.(i) (mux (i + 1))
      in
      mux 0

let rec eval ctx st (locals : locals) (e : Ast.expr) : Term.t =
  match e with
  | Num { value; width } -> Term.int ~width value
  | Var name -> (
      match lookup_var st locals name with
      | Some t -> t
      | None -> runtime_error "unbound variable %s" name)
  | Load (buf, off) -> load_byte st buf (as_bv (eval ctx st locals off))
  | Len buf -> Term.int ~width:32 (Array.length (get_buffer st buf))
  | Unop (op, a) -> (
      let t = eval ctx st locals a in
      match op with
      | Ast.Not -> Term.not_ (as_bool t)
      | Ast.Bnot -> Term.bnot (as_bv t)
      | Ast.Neg -> Term.neg (as_bv t))
  | Binop (op, a, b) -> (
      let ta = eval ctx st locals a and tb = eval ctx st locals b in
      let u f = let x, y = harmonize ~signed:false ta tb in f x y in
      let s f = let x, y = harmonize ~signed:true ta tb in f x y in
      match op with
      | Ast.Add -> u Term.add
      | Ast.Sub -> u Term.sub
      | Ast.Mul -> u Term.mul
      | Ast.Udiv -> u Term.udiv
      | Ast.Urem -> u Term.urem
      | Ast.And -> Term.and_ (as_bool ta) (as_bool tb)
      | Ast.Or -> Term.or_ (as_bool ta) (as_bool tb)
      | Ast.Band -> u Term.band
      | Ast.Bor -> u Term.bor
      | Ast.Bxor -> u Term.bxor
      | Ast.Shl -> u Term.shl
      | Ast.Lshr -> u Term.lshr
      | Ast.Ashr -> s Term.ashr
      | Ast.Eq -> u Term.eq
      | Ast.Ne -> u Term.neq
      | Ast.Ult -> u Term.ult
      | Ast.Ule -> u Term.ule
      | Ast.Ugt -> u Term.ugt
      | Ast.Uge -> u Term.uge
      | Ast.Slt -> s Term.slt
      | Ast.Sle -> s Term.sle
      | Ast.Sgt -> s Term.sgt
      | Ast.Sge -> s Term.sge)
  | Cast (width, a) -> Term.resize_unsigned ~width (as_bv (eval ctx st locals a))

(* --- state helpers ----------------------------------------------------------- *)

(* Is [cond] consistent with the state's path? Verdict-only, so it rides
   the per-domain incremental context: the frame stack is synced to the
   state's path prefix (shared with the sibling branch and every ancestor
   check) and only [cond] itself is new. [--no-incremental] falls back to
   the historical scratch query [check (cond :: path)]. *)
let feasible ctx (st : State.t) cond =
  match ctx.config.oracle with
  | Some oracle when st.State.path_exact -> oracle ~path:st.State.path cond
  | _ -> (
      Obs.count "interp.feasibility_queries";
      match
        Solver.check_assuming
          ?conflict_limit:ctx.config.feasibility_conflict_limit
          ~path:st.State.path [ cond ]
      with
      | Solver.Sat _ -> Feasible_exact
      | Solver.Unsat -> Infeasible
      | Solver.Unknown -> Feasible_unknown (* conservative: keep exploring *))

(* Record the exactness of the verdict that admitted a conjunct: once a path
   carries an Unknown-admitted constraint it is no longer known satisfiable
   and the oracle's factorization argument stops applying below it. *)
let mark_exactness (st : State.t) = function
  | Feasible_unknown when st.State.path_exact ->
      { st with State.path_exact = false }
  | _ -> st

(* Does the condition read any byte of the analyzed message? Sorted-list
   intersection over the memoized distinct-var-id lists. *)
let message_tainted (st : State.t) cond =
  match st.State.msg_vars with
  | None -> false
  | Some vars ->
      let n = Array.length vars in
      n > 0
      &&
      let lo = vars.(0).Term.id and hi = vars.(n - 1).Term.id in
      (* msg vars are allocated as one consecutive run at the Receive *)
      List.exists (fun id -> id >= lo && id <= hi) (Term.var_ids cond)

let finish ctx (st : State.t) status =
  let status =
    match status, ctx.config.auto_classify with
    | State.Finished, Some classify -> (
        match classify st with Some s -> s | None -> State.Finished)
    | _ -> status
  in
  let st = { st with State.status } in
  ctx.hooks.on_terminal st;
  st

(* Resource-bound cuts, labeled so E18 can attribute which bound bites.
   The crash reason strings are part of terminal-state identity and must
   not change. *)
let truncate ctx st kind =
  let reason =
    match kind with
    | `Depth ->
        ctx.stats.truncated_depth <- ctx.stats.truncated_depth + 1;
        Obs.count "interp.truncated_depth";
        "max-depth"
    | `Unroll ->
        ctx.stats.truncated_unroll <- ctx.stats.truncated_unroll + 1;
        Obs.count "interp.truncated_unroll";
        "max-unroll"
    | `States ->
        ctx.stats.truncated_states <- ctx.stats.truncated_states + 1;
        Obs.count "interp.truncated_states";
        "max-states"
  in
  finish ctx st (State.Crashed reason)

let set_global (st : State.t) name t =
  { st with State.globals = String_map.add name t st.State.globals }

let assign_var (st : State.t) (locals : locals) name t =
  (* a name declared as a program global updates the state; anything else is
     a frame-local binding (created on first assignment) *)
  if String_map.mem name st.State.globals then (set_global st name t, locals)
  else (st, String_map.add name t locals)

(* Append a constraint and run the pruning hook. *)
let add_constraint ctx (st : State.t) cond =
  let st = { st with State.path = cond :: st.State.path } in
  if ctx.hooks.on_constraint st cond then Some st
  else begin
    ctx.stats.pruned <- ctx.stats.pruned + 1;
    ignore (finish ctx st State.Dropped);
    None
  end

let fork_child ctx (parent : State.t) route =
  ctx.next_id <- ctx.next_id + 1;
  ctx.stats.states_created <- ctx.stats.states_created + 1;
  let child =
    {
      parent with
      State.id = ctx.next_id;
      State.parent = Some parent.State.id;
      State.route = route;
    }
  in
  ctx.hooks.on_fork ~parent ~child;
  child

(* Branch on a boolean term. [ift] and [iff] continue execution from the
   constrained state. *)
let branch ctx (st : State.t) cond ift iff : outcomes =
  match Term.bool_value cond with
  | Some true -> ift st
  | Some false -> iff st
  | None -> (
      (* Syntactic subsumption before touching the solver: a side whose
         constraint contradicts a conjunct already on the path literally
         (cond vs (not cond)) is infeasible — the solver query would contain
         both and come back Unsat. On complete (unbudgeted) runs this is
         exactly the answer the solver gave; under budgets it additionally
         prunes branches an injected/exhausted Unknown would have left
         conservatively explored, which loses only infeasible states. *)
      let subsumed side =
        Obs.count "interp.subsumed_branches";
        if Obs.live () then
          Obs.emit ~kind:"drop" ~name:"subsumed"
            ~args:[ ("route", Obs.S st.State.route); ("side", Obs.S side) ]
            ();
        true
      in
      let t_verdict =
        if State.has_conjunct st (Term.not_ cond) && subsumed "true" then
          Infeasible
        else feasible ctx st cond
      in
      let f_verdict =
        if State.has_conjunct st cond && subsumed "false" then Infeasible
        else feasible ctx st (Term.not_ cond)
      in
      let one_sided verdict cond side =
        match add_constraint ctx (mark_exactness st verdict) cond with
        | Some st -> side st
        | None -> Seq.empty
      in
      match t_verdict, f_verdict with
      | Infeasible, Infeasible ->
          (* the current path was already infeasible; treat as dropped *)
          Seq.return (finish ctx st State.Dropped, String_map.empty, End)
      | Infeasible, f_verdict -> one_sided f_verdict (Term.not_ cond) iff
      | t_verdict, Infeasible -> one_sided t_verdict cond ift
      | t_verdict, f_verdict ->
          (* With an oracle installed, only message-tainted decisions spend
             depth budget: untainted forks (local/config state) are the ones
             slicing makes cheap, so they must not starve the interesting
             depth. Without an oracle, every fork counts, as before. *)
          let next_depth =
            if ctx.config.oracle <> None && not (message_tainted st cond) then
              st.State.depth
            else st.State.depth + 1
          in
          if next_depth > ctx.config.max_depth then
            Seq.return (truncate ctx st `Depth, String_map.empty, End)
          else if ctx.stats.states_created + 2 > ctx.config.max_states then
            Seq.return (truncate ctx st `States, String_map.empty, End)
          else begin
            ctx.stats.forks <- ctx.stats.forks + 1;
            let continue side verdict cond bit : outcomes =
             fun () ->
              (* deferred to forcing time: the true subtree is explored
                 (and numbered) in full before this child even exists *)
              let route = st.State.route ^ bit in
              let skip =
                match ctx.config.shard with
                | Some sh -> not (shard_compatible sh route)
                | None -> false
              in
              if skip then Seq.Nil
              else
                let child = fork_child ctx st route in
                let child = { child with State.depth = next_depth } in
                let child = mark_exactness child verdict in
                match add_constraint ctx child cond with
                | Some child -> side child ()
                | None -> Seq.Nil
            in
            Seq.append
              (continue ift t_verdict cond "0")
              (continue iff f_verdict (Term.not_ cond) "1")
          end)

(* --- statement execution ------------------------------------------------------ *)

let rec exec_block ctx st (locals : locals) (block : Ast.block) : outcomes =
  match block with
  | [] -> Seq.return (st, locals, Fall)
  | stmt :: rest ->
      exec_stmt ctx st locals stmt
      |> Seq.concat_map (fun ((st : State.t), locals, exit) ->
             match exit with
             | Fall when st.State.status = State.Running ->
                 exec_block ctx st locals rest
             | _ -> Seq.return (st, locals, exit))

and exec_stmt ctx (st : State.t) (locals : locals) (stmt : Ast.stmt) : outcomes
    =
  protect ctx st locals (fun () -> exec_stmt_unsafe ctx st locals stmt ())

(* Statement execution is lazy, so a [Runtime_error] surfaces while the
   resulting sequence is being forced, not while [exec_stmt_unsafe] builds
   it. Guard every forcing step and turn the error into a crashed terminal
   for the pre-statement state, like the eager interpreter did. *)
and protect ctx (st : State.t) (locals : locals) (s : outcomes) : outcomes =
 fun () ->
  try
    match s () with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (x, rest) -> Seq.Cons (x, protect ctx st locals rest)
  with Runtime_error msg ->
    Seq.Cons ((finish ctx st (State.Crashed msg), locals, End), Seq.empty)

and exec_stmt_unsafe ctx (st : State.t) (locals : locals) (stmt : Ast.stmt) :
    outcomes =
  match stmt with
  | Assign (name, e) ->
      let t = eval ctx st locals e in
      let st, locals = assign_var st locals name t in
      Seq.return (st, locals, Fall)
  | Store (buf, off, value) ->
      let offset = as_bv (eval ctx st locals off) in
      let value = Term.resize_unsigned ~width:8 (as_bv (eval ctx st locals value)) in
      let buffer = get_buffer st buf in
      let n = Array.length buffer in
      let buffer' =
        match Term.const_value offset with
        | Some bv ->
            let i = Bv.to_int bv in
            if i < 0 || i >= n then
              runtime_error "out-of-bounds write %s[%d] (size %d)" buf i n;
            let b = Array.copy buffer in
            b.(i) <- value;
            b
        | None ->
            let w = Term.width_of offset in
            Array.mapi
              (fun i old ->
                Term.ite (Term.eq offset (Term.int ~width:w i)) value old)
              buffer
      in
      let st =
        { st with State.buffers = String_map.add buf buffer' st.State.buffers }
      in
      Seq.return (st, locals, Fall)
  | If (c, tb, fb) ->
      let cond = as_bool (eval ctx st locals c) in
      branch ctx st cond
        (fun st -> exec_block ctx st locals tb)
        (fun st -> exec_block ctx st locals fb)
  | Switch (e, cases, default) ->
      let scrutinee = as_bv (eval ctx st locals e) in
      let w = Term.width_of scrutinee in
      let rec try_cases st = function
        | [] -> exec_block ctx st locals default
        | (k, blk) :: rest ->
            let cond = Term.eq scrutinee (Term.int ~width:w k) in
            branch ctx st cond
              (fun st -> exec_block ctx st locals blk)
              (fun st -> try_cases st rest)
      in
      try_cases st cases
  | While (c, body) -> exec_while ctx st locals c body ctx.config.max_unroll
  | Call { proc; args; result } -> (
      match Ast.find_proc ctx.program proc with
      | None -> runtime_error "unknown procedure %s" proc
      | Some p ->
          let bind frame (param, width) arg =
            let t = eval ctx st locals arg in
            String_map.add param
              (Term.resize_unsigned ~width (as_bv t))
              frame
          in
          let frame = List.fold_left2 bind String_map.empty p.Ast.params args in
          exec_block ctx st frame p.Ast.body
          |> Seq.concat_map (fun ((st : State.t), _frame, exit) ->
                 match exit with
                 | End -> Seq.return (st, locals, End)
                 | Fall | Ret None -> (
                     match result with
                     | None -> Seq.return (st, locals, Fall)
                     | Some _ ->
                         runtime_error "procedure %s returned no value" proc)
                 | Ret (Some value) -> (
                     match result with
                     | None -> Seq.return (st, locals, Fall)
                     | Some var ->
                         let st, locals = assign_var st locals var value in
                         Seq.return (st, locals, Fall))))
  | Return e ->
      let value = Option.map (fun e -> eval ctx st locals e) e in
      Seq.return (st, locals, Ret value)
  | Receive buf -> (
      let buffer = get_buffer st buf in
      let n = Array.length buffer in
      match st.State.incoming_queue with
      | msg :: rest ->
          if Array.length msg <> n then
            runtime_error "receive: message size %d does not match buffer %s (%d)"
              (Array.length msg) buf n;
          let st =
            {
              st with
              State.buffers = String_map.add buf (Array.copy msg) st.State.buffers;
              State.incoming_queue = rest;
              State.received = st.State.received + 1;
            }
          in
          Seq.return (st, locals, Fall)
      | [] ->
          if st.State.msg_vars <> None then
            (* the analyzed message was already delivered: the node is back
               at its event loop, which ends the path *)
            Seq.return (finish ctx st State.Finished, locals, End)
          else begin
            let vars =
              Array.init n (fun i ->
                  Term.fresh_var ~name:(Printf.sprintf "%s[%d]" buf i)
                    (Term.Bitvec 8))
            in
            let bytes = Array.map Term.var vars in
            let st =
              {
                st with
                State.buffers = String_map.add buf bytes st.State.buffers;
                State.received = st.State.received + 1;
                State.msg_vars = Some vars;
              }
            in
            Seq.return (st, locals, Fall)
          end)
  | Send { dst; buf } ->
      let dst = as_bv (eval ctx st locals dst) in
      let payload = Array.copy (get_buffer st buf) in
      let message =
        {
          State.dst;
          State.payload;
          State.path_at_send = st.State.path;
          State.during_analysis = st.State.msg_vars <> None;
        }
      in
      let st = { st with State.sent = message :: st.State.sent } in
      ctx.hooks.on_send st message;
      Seq.return (st, locals, Fall)
  | Read_input (name, width) ->
      let var = Term.fresh_var ~name (Term.Bitvec width) in
      let st = { st with State.input_vars = var :: st.State.input_vars } in
      let st, locals = assign_var st locals name (Term.var var) in
      Seq.return (st, locals, Fall)
  | Make_symbolic (name, width) ->
      let var = Term.fresh_var ~name (Term.Bitvec width) in
      let st = { st with State.input_vars = var :: st.State.input_vars } in
      let st, locals = assign_var st locals name (Term.var var) in
      Seq.return (st, locals, Fall)
  | Make_buffer_symbolic buf ->
      let buffer = get_buffer st buf in
      let vars =
        Array.init (Array.length buffer) (fun i ->
            Term.fresh_var ~name:(Printf.sprintf "%s[%d]" buf i) (Term.Bitvec 8))
      in
      let st =
        {
          st with
          State.buffers =
            String_map.add buf (Array.map Term.var vars) st.State.buffers;
          State.input_vars =
            Array.to_list vars @ st.State.input_vars;
        }
      in
      Seq.return (st, locals, Fall)
  | Assume e -> (
      let cond = as_bool (eval ctx st locals e) in
      match Term.bool_value cond with
      | Some true -> Seq.return (st, locals, Fall)
      | Some false -> Seq.return (finish ctx st State.Dropped, locals, End)
      | None -> (
          match feasible ctx st cond with
          | Infeasible -> Seq.return (finish ctx st State.Dropped, locals, End)
          | verdict -> (
              match add_constraint ctx (mark_exactness st verdict) cond with
              | Some st -> Seq.return (st, locals, Fall)
              | None -> Seq.empty)))
  | Drop_path -> Seq.return (finish ctx st State.Dropped, locals, End)
  | Mark_accept label ->
      (* accept/reject markers classify the handling of the analyzed
         (fresh symbolic) message; while earlier preloaded rounds are being
         replayed they are inert and the node continues its event loop *)
      if st.State.received > 0 && st.State.msg_vars = None then
        Seq.return (st, locals, Fall)
      else Seq.return (finish ctx st (State.Accepted label), locals, End)
  | Mark_reject label ->
      if st.State.received > 0 && st.State.msg_vars = None then
        Seq.return (st, locals, Fall)
      else Seq.return (finish ctx st (State.Rejected label), locals, End)
  | Halt -> Seq.return (finish ctx st State.Finished, locals, End)
  | Abort reason -> Seq.return (finish ctx st (State.Crashed reason), locals, End)

and exec_while ctx st locals c body budget =
  if budget = 0 then Seq.return (truncate ctx st `Unroll, locals, End)
  else
    let cond = as_bool (eval ctx st locals c) in
    branch ctx st cond
      (fun st ->
        exec_block ctx st locals body
        |> Seq.concat_map (fun ((st : State.t), locals, exit) ->
               match exit with
               | Fall when st.State.status = State.Running ->
                   exec_while ctx st locals c body (budget - 1)
               | _ -> Seq.return (st, locals, exit)))
      (fun st -> Seq.return (st, locals, Fall))

(* --- program entry -------------------------------------------------------------- *)

let initial_state ctx =
  let program = ctx.program in
  let globals =
    List.fold_left
      (fun m (name, width) -> String_map.add name (Term.int ~width 0) m)
      String_map.empty program.Ast.globals
  in
  let globals =
    List.fold_left
      (fun m (name, t) ->
        if not (String_map.mem name m) then
          runtime_error "initial_globals: %s is not a program global" name;
        String_map.add name t m)
      globals ctx.config.initial_globals
  in
  let buffers =
    List.fold_left
      (fun m (name, size) ->
        String_map.add name (Array.make size (Term.int ~width:8 0)) m)
      String_map.empty program.Ast.buffers
  in
  {
    State.id = 0;
    parent = None;
    route = "";
    globals;
    buffers;
    path = List.rev ctx.config.initial_path;
    (* [initial_path] is satisfiable by construction (concrete-run prefixes
       and havoc bounds), which is what seeds the oracle's invariant *)
    path_exact = true;
    depth = 0;
    sent = [];
    received = 0;
    incoming_queue = ctx.config.preload_messages;
    msg_vars = None;
    input_vars = [];
    status = State.Running;
  }

let run ?(config = default_config) ?(hooks = default_hooks) program =
  let stats =
    {
      states_created = 1;
      forks = 0;
      pruned = 0;
      truncated_depth = 0;
      truncated_unroll = 0;
      truncated_states = 0;
    }
  in
  let ctx = { program; config; hooks; stats; next_id = 0 } in
  let st = initial_state ctx in
  let outcomes = exec_block ctx st String_map.empty program.Ast.main in
  (* forcing the sequence here is what actually runs the exploration, in
     strict depth-first order *)
  let terminals =
    List.of_seq
      (Seq.map
         (fun ((st : State.t), _locals, _exit) ->
           if State.is_terminal st then st else finish ctx st State.Finished)
         outcomes)
  in
  { terminals; stats }
