(** The forking symbolic interpreter for the protocol DSL.

    Executes a {!Ast.program} on symbolic inputs. [Read_input] produces
    fresh symbolic variables (the client's "local input" in the paper);
    [Receive] fills the buffer from the configured queue of incoming
    symbolic messages, then — once the queue is exhausted — with one fresh
    unconstrained symbolic message, and finally terminates the path (the
    paper's "execution path ends when the server listens for new events").

    [Mark_accept] / [Mark_reject] classify how the {e analyzed} (fresh
    symbolic) message is handled: they terminate the path once that message
    has been delivered. While preloaded local-state rounds are still being
    replayed they are inert, so a server written as an event loop runs its
    earlier rounds through the same handler code.

    Branches whose condition is symbolic query the SMT solver for the
    feasibility of each side and fork accordingly. Hooks observe constraint
    additions, forks, sends and terminal states, and can prune states — this
    is how the Achilles search drops server paths that no Trojan message can
    trigger. *)

open Achilles_smt

type shard = { shard_index : int; shard_bits : int }
(** A route-prefix shard of the exploration tree: the run only explores
    states whose route agrees with the low [shard_bits] bits of
    [shard_index] (bit [k] of the index = decision at fork depth [k]). The
    [2^shard_bits] shards cover the tree: each replays the shared spine
    (routes shorter than [shard_bits]) and exclusively owns the subtrees
    matching its own bit pattern. Requires [0 <= shard_index < 2^shard_bits]
    and [shard_bits <= 30]. *)

val shard_compatible : shard -> string -> bool
(** Does this shard explore the state with the given route? *)

val shard_owns : shard -> string -> bool
(** Among the shards compatible with a route, exactly one — the one whose
    index bits beyond the route are all zero — owns it; owners do the
    per-state work (recording, witness enumeration) so that merging shard
    results needs no deduplication. *)

(** Verdict of a branch/assume feasibility check. [Feasible_exact] is a real
    [Sat] — the extended path is known satisfiable, which is what keeps
    {!State.t.path_exact} true down that side. [Feasible_unknown] is the
    conservative keep-exploring degradation (budget exhaustion, injected
    fault, or an oracle that cannot decide): the side is still explored but
    exactness is poisoned for the whole subtree. *)
type feasibility = Feasible_exact | Feasible_unknown | Infeasible

type oracle = path:Term.t list -> Term.t -> feasibility
(** A feasibility oracle decides [path /\ cond] cheaper than a full-path
    solver query (see [Achilles_slice.Slice.make_oracle]). It is consulted
    only while the state's [path_exact] invariant holds — every conjunct of
    [path] was admitted with an exact [Sat], so the path itself is known
    satisfiable and factorization arguments (answering from a variable-
    connected cone of the path) are sound. Verdicts must agree with the
    full-path query on clean runs; under degradation an oracle may only err
    toward [Feasible_unknown]. *)

type config = {
  max_unroll : int; (* loop iterations per [While] per path *)
  max_depth : int; (* symbolic branch decisions per path *)
  max_states : int; (* total states created per run *)
  feasibility_conflict_limit : int option;
      (* optional SAT budget for branch feasibility; [Unknown] counts as
         feasible, preserving soundness of exploration *)
  preload_messages : Term.t array list;
      (* messages handed to the first [Receive]s, for local-state modes *)
  initial_globals : (string * Term.t) list;
      (* overrides of globals' initial (zero) values, e.g. concrete local
         state built by a previous run *)
  initial_path : Term.t list;
      (* constraints assumed before execution starts, e.g. the client path
         constraints attached to a preloaded symbolic message *)
  auto_classify : (State.t -> State.status option) option;
      (* reclassify paths ending with status [Finished] (back at the event
         loop with no explicit marker) — §5.1's automatic accept/reject
         detection; [None] from the classifier keeps [Finished] *)
  shard : shard option;
      (* when set, forks whose child route is incompatible with the shard
         are skipped (a sibling shard explores them); [None] explores
         everything *)
  oracle : oracle option;
      (* when set, branch/assume feasibility on exact paths goes through the
         oracle instead of a full-path solver query, and [max_depth] counts
         only message-tainted branch decisions (forks on conditions reading
         no byte of the analyzed message are free). Requires
         [initial_path] to be satisfiable. [None] keeps the historical
         behavior bit for bit. *)
}

val default_config : config
(** [oracle] defaults to [None]. *)

val classify_by_reply : State.t -> State.status option
(** §5.1's default heuristic: replying to the analyzed message means the
    path accepted it; silently returning to the event loop means it was
    rejected. *)

val classify_by_status :
  offset:int -> accept:(int -> bool) -> State.t -> State.status option
(** The HTTP-style extension of §5.1: classify by a constant status byte of
    the reply (e.g. [accept = fun c -> c / 100 = 2] for 2xx codes). Replies
    whose status byte is symbolic stay [Finished]. *)

type hooks = {
  on_constraint : State.t -> Term.t -> bool;
      (* a constraint was appended to the state's path; return [false] to
         prune the state (it ends with status [Dropped]) *)
  on_fork : parent:State.t -> child:State.t -> unit;
  on_send : State.t -> State.message -> unit;
  on_terminal : State.t -> unit;
}

val default_hooks : hooks

type run_stats = {
  mutable states_created : int;
  mutable forks : int;
  mutable pruned : int; (* states dropped by [on_constraint] *)
  mutable truncated_depth : int; (* paths cut by [max_depth] *)
  mutable truncated_unroll : int; (* loops cut by [max_unroll] *)
  mutable truncated_states : int; (* forks refused by [max_states] *)
}

val truncated : run_stats -> int
(** Total paths cut by any resource bound (the pre-split lump sum). The
    per-bound counters are also surfaced as [Obs] counters
    [interp.truncated_depth] / [_unroll] / [_states]. *)

type run = { terminals : State.t list; stats : run_stats }

val run : ?config:config -> ?hooks:hooks -> Ast.program -> run
(** Explore the program exhaustively (within bounds) and return all terminal
    states in exploration (depth-first) order. *)
