open Ast

let unop_symbol = function Not -> "!" | Bnot -> "~" | Neg -> "-"

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Udiv -> "/"
  | Urem -> "%"
  | And -> "&&"
  | Or -> "||"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Shl -> "<<"
  | Lshr -> ">>"
  | Ashr -> ">>s"
  | Eq -> "=="
  | Ne -> "!="
  | Ult -> "<"
  | Ule -> "<="
  | Ugt -> ">"
  | Uge -> ">="
  | Slt -> "<s"
  | Sle -> "<=s"
  | Sgt -> ">s"
  | Sge -> ">=s"

let rec pp_expr fmt = function
  | Num { value; width } ->
      if width = 8 && value >= 32 && value < 127 then
        Format.fprintf fmt "'%c'" (Char.chr value)
      else Format.fprintf fmt "%d" value
  | Var name -> Format.pp_print_string fmt name
  | Load (buf, off) -> Format.fprintf fmt "%s[%a]" buf pp_expr off
  | Len buf -> Format.fprintf fmt "sizeof(%s)" buf
  | Unop (op, e) -> Format.fprintf fmt "%s%a" (unop_symbol op) pp_atom e
  | Binop (op, a, b) ->
      Format.fprintf fmt "%a %s %a" pp_atom a (binop_symbol op) pp_atom b
  | Cast (width, e) -> Format.fprintf fmt "(u%d)%a" width pp_atom e

and pp_atom fmt e =
  match e with
  | Num _ | Var _ | Load _ | Len _ -> pp_expr fmt e
  | Unop _ | Binop _ | Cast _ -> Format.fprintf fmt "(%a)" pp_expr e

let rec pp_stmt fmt = function
  | Assign (name, e) -> Format.fprintf fmt "%s = %a;" name pp_expr e
  | Store (buf, off, v) ->
      Format.fprintf fmt "%s[%a] = %a;" buf pp_expr off pp_expr v
  | If (c, t, []) ->
      Format.fprintf fmt "@[<v 2>if (%a) {%a@]@,}" pp_expr c pp_body t
  | If (c, [], f) ->
      Format.fprintf fmt "@[<v 2>if (!(%a)) {%a@]@,}" pp_expr c pp_body f
  | If (c, t, f) ->
      Format.fprintf fmt "@[<v 2>if (%a) {%a@]@,@[<v 2>} else {%a@]@,}"
        pp_expr c pp_body t pp_body f
  | Switch (e, cases, default) ->
      Format.fprintf fmt "@[<v 2>switch (%a) {" pp_expr e;
      List.iter
        (fun (k, blk) ->
          Format.fprintf fmt "@,@[<v 2>case %d:%a@]" k pp_body blk)
        cases;
      Format.fprintf fmt "@,@[<v 2>default:%a@]@]@,}" pp_body default
  | While (c, body) ->
      Format.fprintf fmt "@[<v 2>while (%a) {%a@]@,}" pp_expr c pp_body body
  | Call { proc; args; result } ->
      (match result with
      | Some r -> Format.fprintf fmt "%s = " r
      | None -> ());
      Format.fprintf fmt "%s(%a);" proc
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp_expr)
        args
  | Return None -> Format.pp_print_string fmt "return;"
  | Return (Some e) -> Format.fprintf fmt "return %a;" pp_expr e
  | Receive buf -> Format.fprintf fmt "%s = receive();" buf
  | Send { dst; buf } -> Format.fprintf fmt "send(%a, %s);" pp_expr dst buf
  | Read_input (name, width) ->
      Format.fprintf fmt "%s = read_input();  /* u%d */" name width
  | Make_symbolic (name, width) ->
      Format.fprintf fmt "%s = make_symbolic();  /* u%d */" name width
  | Make_buffer_symbolic buf ->
      Format.fprintf fmt "make_buffer_symbolic(%s);" buf
  | Assume e -> Format.fprintf fmt "assume(%a);" pp_expr e
  | Drop_path -> Format.pp_print_string fmt "drop_path();"
  | Mark_accept label -> Format.fprintf fmt "mark_accept(%S);" label
  | Mark_reject label -> Format.fprintf fmt "mark_reject(%S);" label
  | Halt -> Format.pp_print_string fmt "halt();"
  | Abort reason -> Format.fprintf fmt "abort(%S);" reason

and pp_body fmt block =
  List.iter (fun s -> Format.fprintf fmt "@,%a" pp_stmt s) block

let pp_block fmt block =
  Format.fprintf fmt "@[<v>";
  Format.pp_print_list pp_stmt fmt block;
  Format.fprintf fmt "@]"

let pp_program fmt (p : program) =
  Format.fprintf fmt "@[<v>// program %s@," p.prog_name;
  List.iter
    (fun (name, width) -> Format.fprintf fmt "global u%d %s;@," width name)
    p.globals;
  List.iter
    (fun (name, size) -> Format.fprintf fmt "buffer %s[%d];@," name size)
    p.buffers;
  List.iter
    (fun proc ->
      Format.fprintf fmt "@,@[<v 2>proc %s(%s) {%a@]@,}@," proc.proc_name
        (String.concat ", "
           (List.map
              (fun (p, w) -> Printf.sprintf "u%d %s" w p)
              proc.params))
        pp_body proc.body)
    p.procs;
  Format.fprintf fmt "@,@[<v 2>main {%a@]@,}@]" pp_body p.main

let program_to_string p = Format.asprintf "%a" pp_program p
