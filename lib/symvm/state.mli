(** Symbolic execution states.

    A state is one point of the symbolic exploration: the symbolic store
    (scalar globals and byte buffers, all {!Achilles_smt.Term.t}s), the
    path constraints accumulated on the way here, the messages sent, and —
    once the path ends — a terminal status. States are immutable: forking
    shares structure and buffer writes copy. *)

open Achilles_smt
module String_map : Map.S with type key = string

type status =
  | Running
  | Accepted of string  (** reached a [Mark_accept] (or an auto-classifier) *)
  | Rejected of string  (** reached a [Mark_reject] (or an auto-classifier) *)
  | Finished  (** ran to completion / [Halt] / back at the event loop *)
  | Dropped  (** [Drop_path] or an infeasible [Assume] *)
  | Crashed of string  (** runtime error or resource bound *)

type message = {
  dst : Term.t;
  payload : Term.t array;  (** byte terms at the moment of the send *)
  path_at_send : Term.t list;
      (** the sender's path constraints (newest first) when it sent *)
  during_analysis : bool;
      (** sent while handling the analyzed (fresh symbolic) message, i.e. a
          reply to it, as opposed to traffic from preloaded rounds *)
}

type t = {
  id : int;  (** unique within a run; fork children get fresh ids *)
  parent : int option;
  route : string;
      (** branch decisions ('0' = true-branch, '1' = false-branch) taken at
          two-sided forks on the way here. The route names a state's position
          in the exploration tree independently of execution order, which is
          what the parallel search merges and renumbers by. *)
  globals : Term.t String_map.t;
  buffers : Term.t array String_map.t;
  path : Term.t list;  (** path constraints, newest first *)
  path_exact : bool;
      (** [true] while every conjunct on [path] was admitted with an exact
          [Sat] verdict, so the whole path is known satisfiable — the
          invariant the slice oracle's cone factorization relies on. Turns
          [false] (and stays false down the subtree) the first time a
          conjunct is admitted on an [Unknown] degradation. *)
  depth : int;  (** branch decisions on symbolic data along this path *)
  sent : message list;  (** newest first *)
  received : int;  (** number of [Receive] statements executed *)
  incoming_queue : Term.t array list;  (** messages pending for [Receive] *)
  msg_vars : Term.var array option;
      (** the byte variables of the analyzed (fresh symbolic) message, once
          it has been received *)
  input_vars : Term.var list;  (** local inputs read, newest first *)
  status : status;
}

val status_string : status -> string
val is_terminal : t -> bool

val constraints : t -> Term.t list
(** Path constraints in the order they were added. *)

val has_conjunct : t -> Term.t -> bool
(** Is this exact (structurally equal) constraint already on the path?
    Cheap on interned terms — a physical-equality scan in the common case —
    which lets the interpreter settle one side of a branch syntactically
    instead of asking the solver. *)

val pp : Format.formatter -> t -> unit
