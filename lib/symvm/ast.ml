(* The protocol-node DSL.

   Programs model distributed-system nodes: they read local inputs, receive
   and send messages (fixed-size byte buffers), and branch on their
   contents. The DSL plays the role that x86 binaries under S2E play in the
   paper: the symbolic interpreter only needs branching structure, buffer
   bytes and the accept/reject/send events, all of which the DSL provides.

   Scalars are fixed-width bitvectors. Expressions evaluating to booleans
   (comparisons, [And]/[Or]/[Not]) may only appear in conditions or other
   boolean contexts. Buffers are global, fixed-size byte arrays. *)

type unop =
  | Not (* boolean *)
  | Bnot (* bitwise *)
  | Neg

type binop =
  | Add
  | Sub
  | Mul
  | Udiv
  | Urem
  | And (* boolean *)
  | Or (* boolean *)
  | Band
  | Bor
  | Bxor
  | Shl
  | Lshr
  | Ashr
  | Eq
  | Ne
  | Ult
  | Ule
  | Ugt
  | Uge
  | Slt
  | Sle
  | Sgt
  | Sge

type expr =
  | Num of { value : int; width : int }
  | Var of string
  | Load of string * expr (* buffer, byte offset; yields an 8-bit value *)
  | Len of string (* buffer length, as a 32-bit constant *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Cast of int * expr (* zero-extend or truncate to the given width *)

type stmt =
  | Assign of string * expr
  | Store of string * expr * expr (* buffer[offset] := value (8-bit) *)
  | If of expr * block * block
  | Switch of expr * (int * block) list * block (* scrutinee, cases, default *)
  | While of expr * block (* unrolled up to the interpreter bound *)
  | Call of { proc : string; args : expr list; result : string option }
  | Return of expr option
  | Receive of string (* fill the buffer with the incoming message *)
  | Send of { dst : expr; buf : string }
  | Read_input of string * int (* var := fresh local input of given width *)
  | Make_symbolic of string * int (* annotation: havoc a scalar *)
  | Make_buffer_symbolic of string (* annotation: havoc a whole buffer *)
  | Assume of expr (* annotation: constrain; drop the path if infeasible *)
  | Drop_path (* annotation: silently abandon this path *)
  | Mark_accept of string (* annotation: accepting path, with a label *)
  | Mark_reject of string (* annotation: rejecting path, with a label *)
  | Halt (* finish the program normally *)
  | Abort of string (* simulated crash *)

and block = stmt list

type proc = { proc_name : string; params : (string * int) list; body : block }

type program = {
  prog_name : string;
  globals : (string * int) list; (* scalar name, width in bits *)
  buffers : (string * int) list; (* buffer name, length in bytes *)
  procs : proc list;
  main : block;
}

let find_proc program name =
  List.find_opt (fun p -> p.proc_name = name) program.procs

let buffer_length program name = List.assoc_opt name program.buffers

(* Structural accessors for program-wide analyses (e.g. the dependency
   slice): the top-level blocks with the name of the procedure owning each,
   a statement's directly evaluated expressions, and its nested blocks. *)

let top_blocks program =
  ("main", program.main)
  :: List.map (fun p -> (p.proc_name, p.body)) program.procs

let stmt_exprs = function
  | Assign (_, e) | If (e, _, _) | Switch (e, _, _) | While (e, _) | Assume e
    ->
      [ e ]
  | Store (_, off, v) -> [ off; v ]
  | Call { args; _ } -> args
  | Return (Some e) | Send { dst = e; _ } -> [ e ]
  | Return None
  | Receive _ | Read_input _ | Make_symbolic _ | Make_buffer_symbolic _
  | Drop_path | Mark_accept _ | Mark_reject _ | Halt | Abort _ ->
      []

let stmt_blocks = function
  | If (_, t, f) -> [ t; f ]
  | Switch (_, cases, default) -> List.map snd cases @ [ default ]
  | While (_, b) -> [ b ]
  | _ -> []

(* A light well-formedness check: every named buffer/procedure exists and
   arities match. Width correctness is enforced dynamically by Term's sort
   checker. *)
let validate program =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let check_buffer name =
    if buffer_length program name = None then err "unknown buffer %s" name
  in
  let rec expr = function
    | Num _ | Var _ -> ()
    | Load (b, e) ->
        check_buffer b;
        expr e
    | Len b -> check_buffer b
    | Unop (_, e) | Cast (_, e) -> expr e
    | Binop (_, a, b) ->
        expr a;
        expr b
  and stmt = function
    | Assign (_, e) | Assume e | Return (Some e) -> expr e
    | Store (b, off, v) ->
        check_buffer b;
        expr off;
        expr v
    | If (c, t, f) ->
        expr c;
        block t;
        block f
    | Switch (e, cases, default) ->
        expr e;
        List.iter (fun (_, b) -> block b) cases;
        block default
    | While (c, b) ->
        expr c;
        block b
    | Call { proc; args; _ } -> (
        List.iter expr args;
        match find_proc program proc with
        | None -> err "unknown procedure %s" proc
        | Some p ->
            if List.length p.params <> List.length args then
              err "procedure %s expects %d arguments, got %d" proc
                (List.length p.params) (List.length args))
    | Send { dst; buf } ->
        expr dst;
        check_buffer buf
    | Receive b | Make_buffer_symbolic b -> check_buffer b
    | Return None | Read_input _ | Make_symbolic _ | Drop_path | Mark_accept _
    | Mark_reject _ | Halt | Abort _ ->
        ()
  and block b = List.iter stmt b in
  List.iter (fun p -> block p.body) program.procs;
  block program.main;
  (match !errors with [] -> Ok () | es -> Error (List.rev es))
