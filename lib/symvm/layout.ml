open Achilles_smt

type field = { field_name : string; offset : int; size : int }

type t = { name : string; fields : field list; total : int }

let make ~name specs =
  let seen = Hashtbl.create 8 in
  let fields, total =
    List.fold_left
      (fun (fields, offset) (field_name, size) ->
        if size <= 0 then
          invalid_arg
            (Printf.sprintf "Layout.make: field %s has size %d" field_name size);
        if Hashtbl.mem seen field_name then
          invalid_arg
            (Printf.sprintf "Layout.make: duplicate field %s" field_name);
        Hashtbl.add seen field_name ();
        ({ field_name; offset; size } :: fields, offset + size))
      ([], 0) specs
  in
  { name; fields = List.rev fields; total }

let name t = t.name
let total_size t = t.total
let fields t = t.fields
let field_opt t n = List.find_opt (fun f -> f.field_name = n) t.fields

let field t n =
  match field_opt t n with Some f -> f | None -> raise Not_found

let field_covering t offset =
  List.find_opt
    (fun f -> offset >= f.offset && offset < f.offset + f.size)
    t.fields

let field_bytes t bytes n =
  let f = field t n in
  Array.sub bytes f.offset f.size

let field_term t byte_terms n =
  let f = field t n in
  (* big-endian: the byte at the lowest offset is the most significant *)
  let parts =
    List.init f.size (fun i -> byte_terms.(f.offset + i))
  in
  Term.concat_l parts

let field_value t bytes n =
  let f = field t n in
  let rec go acc i =
    if i = f.size then acc
    else go (Bv.concat acc bytes.(f.offset + i)) (i + 1)
  in
  go bytes.(f.offset) 1

let field_expr t n ~buf =
  let f = field t n in
  let byte i = Ast.Load (buf, Ast.Num { value = f.offset + i; width = 32 }) in
  (* big-endian accumulation: acc' = (acc << 8) | next_byte, widened as we go *)
  let rec go acc i =
    if i = f.size then acc
    else
      let width = 8 * (i + 1) in
      let widened = Ast.Cast (width, acc) in
      let shifted = Ast.Binop (Ast.Shl, widened, Ast.Num { value = 8; width }) in
      go (Ast.Binop (Ast.Bor, shifted, Ast.Cast (width, byte i))) (i + 1)
  in
  go (byte 0) 1

let store_field t n ~buf ~value =
  let f = field t n in
  (* big-endian: byte at offset gets the most significant bits *)
  List.init f.size (fun i ->
      let shift = 8 * (f.size - 1 - i) in
      let byte =
        Ast.Cast
          ( 8,
            Ast.Binop
              (Ast.Lshr, value, Ast.Num { value = shift; width = 8 * f.size })
          )
      in
      Ast.Store (buf, Ast.Num { value = f.offset + i; width = 32 }, byte))

let pp fmt t =
  Format.fprintf fmt "@[<v>layout %s (%d bytes)@," t.name t.total;
  List.iter
    (fun f ->
      Format.fprintf fmt "  %-16s offset %2d size %d@," f.field_name f.offset
        f.size)
    t.fields;
  Format.fprintf fmt "@]"
