(** Message field layouts.

    A layout names the contiguous byte ranges of a fixed-size message
    buffer, e.g. FSP's [cmd]/[sum]/[bb_key]/... headers. Achilles' negate
    operator, differentFrom matrix and field masks are all per-field, so the
    layout is how the analysis knows the structure of the wire format.
    Multi-byte fields are big-endian (network byte order). *)

type field = { field_name : string; offset : int; size : int (* bytes *) }

type t

val make : name:string -> (string * int) list -> t
(** [make ~name fields] lays the fields out contiguously in order; each pair
    is (field name, size in bytes). Raises [Invalid_argument] on duplicate
    names or non-positive sizes. *)

val name : t -> string
val total_size : t -> int
val fields : t -> field list
val field : t -> string -> field
(** Raises [Not_found]. *)

val field_opt : t -> string -> field option
val field_covering : t -> int -> field option
(** The field containing the given byte offset. *)

val field_term : t -> Achilles_smt.Term.t array -> string -> Achilles_smt.Term.t
(** Read a field out of an array of byte terms as one big-endian value. *)

val field_bytes : t -> 'a array -> string -> 'a array
(** The slice of a byte array covered by a field. *)

val field_value : t -> Achilles_smt.Bv.t array -> string -> Achilles_smt.Bv.t
(** Read a field out of concrete message bytes. *)

val field_expr : t -> string -> buf:string -> Ast.expr
(** DSL expression reading a field from a buffer (big-endian). *)

val store_field : t -> string -> buf:string -> value:Ast.expr -> Ast.stmt list
(** DSL statements writing a field into a buffer, big-endian; the value
    expression must have width [8 * size]. *)

val pp : Format.formatter -> t -> unit
