(** Fault injection of discovered Trojan messages into concretely running
    nodes — the "live fire drill" usage of §4.1: witnesses are replayed
    against the real (concretely executed) server to confirm acceptance and
    observe effects. *)

open Achilles_smt
open Achilles_symvm
open Achilles_core

val replay :
  ?initial_globals:(string * Bv.t) list ->
  server:Ast.program ->
  Bv.t array ->
  State.status

type confirmation = {
  total : int;
  accepted : int;  (** witnesses the concrete server accepted *)
  rejected : int;  (** would-be false positives *)
  skipped : int;
      (** unconfirmed trojans — their placeholder witnesses were never
          solver-checked, so replaying them would be meaningless *)
}

val confirm :
  ?initial_globals:(string * Bv.t) list ->
  server:Ast.program ->
  Search.trojan list ->
  confirmation
(** Replay every confirmed witness; a sound analysis shows [rejected = 0].
    Trojans with [confirmed = false] are counted in [skipped], not
    replayed. *)

val check_against_oracle :
  is_trojan:(Bv.t array -> bool) ->
  Search.trojan list ->
  Search.trojan list * Search.trojan list
(** Partition witnesses into (truly ungenerable, false positives) according
    to an external ground-truth oracle. *)

val pp_confirmation : Format.formatter -> confirmation -> unit
