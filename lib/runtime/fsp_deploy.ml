(* A concrete FSP deployment: the DSL server validates incoming command
   messages, and accepted commands take effect on an in-memory file store.
   Clients are the DSL utilities run concretely — including the glob
   expansion a real FSP client performs before anything hits the wire. *)

open Achilles_smt
open Achilles_symvm
open Achilles_targets

type t = { fs : Fsp_fs.t; server : Node.t }

let create ?files () =
  { fs = Fsp_fs.create ?files (); server = Node.create Fsp_model.server }

let fs t = t.fs
let list_files t = Fsp_fs.list t.fs

(* --- message construction via the DSL clients -------------------------------- *)

let arg_inputs path =
  (* the client's argv buffer: path bytes, NUL-padded *)
  List.init Fsp_model.buf_size (fun i ->
      if i < String.length path then Bv.of_int ~width:8 (Char.code path.[i])
      else Bv.zero 8)

(* Run a client utility concretely on a literal path (no globbing) and
   return the message it would send, if its validation lets the path out. *)
let build_message command path =
  if String.length path > Fsp_model.max_path then Error "path too long"
  else begin
    let client = Fsp_model.client command in
    let outcome = Concrete.run ~inputs:(arg_inputs path) client in
    match outcome.Concrete.sent with
    | [ (_, payload) ] -> Ok payload
    | [] -> Error "client validation rejected the path"
    | _ -> Error "client sent more than one message"
  end

(* --- server-side command effects ---------------------------------------------- *)

(* The server handles the path as a C string: everything up to the first
   NUL. Bytes between the true length and bb_len travel along unchecked —
   the "additional arbitrary payload" of the mismatched-length bug. *)
let effective_path payload =
  let buf = Layout.field_bytes Fsp_model.layout payload "buf" in
  let b = Buffer.create 8 in
  (try
     Array.iter
       (fun byte ->
         let c = Bv.to_int byte in
         if c = 0 then raise Exit;
         Buffer.add_char b (Char.chr c))
       buf
   with Exit -> ());
  Buffer.contents b

let extra_payload payload =
  let buf = Layout.field_bytes Fsp_model.layout payload "buf" in
  let len = Bv.to_int (Layout.field_value Fsp_model.layout payload "bb_len") in
  let t = String.length (effective_path payload) in
  if t >= len then ""
  else
    String.concat ""
      (List.init (len - t - 1) (fun i ->
           Printf.sprintf "%02Lx" (Bv.value buf.(t + 1 + i))))

type server_reply =
  | Accepted of { command : string; path : string; affected : string list }
  | Rejected

(* Deliver raw bytes to the server node; on acceptance, apply the command
   to the file store. This is the injection point for Trojan messages. *)
let deliver_raw t payload =
  let outcome = Node.deliver t.server payload in
  match outcome.Concrete.status with
  | State.Accepted label ->
      let path = effective_path payload in
      let affected =
        match label with
        | "del" | "rmdir" | "grab" ->
            if Fsp_fs.delete t.fs path then [ path ] else []
        | "put" | "mkdir" ->
            Fsp_fs.create_file t.fs path;
            [ path ]
        | "get" | "cat" | "stat" ->
            if Fsp_fs.exists t.fs path then [ path ] else []
        | _ -> []
      in
      Accepted { command = label; path; affected }
  | _ -> Rejected

(* --- client-side command execution -------------------------------------------- *)

type exec_result = {
  expanded : string list; (* the paths actually sent after globbing *)
  replies : (string * server_reply) list;
  client_error : string option;
}

(* Execute a user command the way the FSP utility does: glob-expand the
   argument against the server's file list (no escape possible), then send
   one command message per expansion. *)
let exec t ~command ~arg =
  match Fsp_model.command_of_code command.Fsp_model.code with
  | None -> invalid_arg "Fsp_deploy.exec: unknown command"
  | Some _ ->
      let expanded =
        if String.contains arg '*' && command.Fsp_model.globs_argument then
          Fsp_fs.glob t.fs ~pattern:arg
        else [ arg ]
      in
      if expanded = [] then
        { expanded = []; replies = []; client_error = Some "no match" }
      else begin
        let replies =
          List.filter_map
            (fun path ->
              match build_message command path with
              | Ok payload -> Some (path, deliver_raw t payload)
              | Error _ -> None)
            expanded
        in
        let failed =
          List.filter
            (fun path ->
              not (List.exists (fun (p, _) -> p = path) replies))
            expanded
        in
        {
          expanded;
          replies;
          client_error =
            (match failed with
            | [] -> None
            | ps ->
                Some
                  (Printf.sprintf "client could not send: %s"
                     (String.concat ", " ps)));
        }
      end

let command_named name =
  List.find (fun c -> c.Fsp_model.cmd_name = name) Fsp_model.commands
