(* The FSP server's file store, with the exact wildcard semantics of §6.3:
   the server treats '*' as an ordinary character in the names it stores and
   deletes, while FSP *clients* glob-expand '*' (with no way to escape it)
   before any command leaves the machine. *)

type t = { mutable files : string list (* sorted, unique *) }

let create ?(files = []) () = { files = List.sort_uniq compare files }

let list t = t.files
let exists t name = List.mem name t.files

let create_file t name =
  if not (exists t name) then t.files <- List.sort compare (name :: t.files)

let delete t name =
  let before = List.length t.files in
  t.files <- List.filter (fun f -> f <> name) t.files;
  List.length t.files < before

let rename t ~src ~dst =
  if exists t src then begin
    ignore (delete t src);
    create_file t dst;
    true
  end
  else false

(* Shell-style globbing: '*' matches any (possibly empty) character
   sequence. This is the CLIENT-side expansion; note there is no escape
   syntax — exactly the FSP limitation the paper exploits. *)
let glob_match ~pattern name =
  let np = String.length pattern and nn = String.length name in
  (* matches.(i).(j): pattern[i..] matches name[j..] *)
  let rec matches i j =
    if i = np then j = nn
    else
      match pattern.[i] with
      | '*' -> matches (i + 1) j || (j < nn && matches i (j + 1))
      | c -> j < nn && name.[j] = c && matches (i + 1) (j + 1)
  in
  matches 0 0

let glob t ~pattern = List.filter (fun f -> glob_match ~pattern f) t.files
