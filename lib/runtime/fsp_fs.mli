(** The FSP server's file store, with the wildcard semantics of §6.3.

    The server stores and deletes {e literal} names — '*' is an ordinary
    character to it — while FSP {e clients} glob-expand '*' before any
    command leaves the machine, with no escape syntax. That asymmetry is
    the wildcard Trojan. *)

type t

val create : ?files:string list -> unit -> t
val list : t -> string list
(** Sorted, duplicate-free. *)

val exists : t -> string -> bool
val create_file : t -> string -> unit
val delete : t -> string -> bool
(** [true] if the file existed. *)

val rename : t -> src:string -> dst:string -> bool

val glob_match : pattern:string -> string -> bool
(** Shell-style matching: '*' matches any (possibly empty) character
    sequence; every other character matches itself. No escape syntax —
    exactly the FSP limitation the paper exploits. *)

val glob : t -> pattern:string -> string list
(** Files matching the pattern (client-side expansion). *)
