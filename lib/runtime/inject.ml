(* Fault injection of discovered Trojan messages into concretely running
   nodes — the "live fire drill" usage of §4.1: concrete witnesses are
   replayed against the real (concretely executed) server to confirm they
   are accepted and to observe their effect. *)

open Achilles_symvm
open Achilles_core

let replay ?(initial_globals = []) ~server witness =
  let outcome = Concrete.run ~incoming:[ witness ] ~initial_globals server in
  outcome.Concrete.status

type confirmation = {
  total : int;
  accepted : int; (* witnesses the concrete server accepted *)
  rejected : int; (* would-be false positives *)
  skipped : int; (* unconfirmed trojans: placeholder witnesses, not replayed *)
}

(* Replay every confirmed witness; a sound analysis shows [rejected = 0].
   Unconfirmed trojans (witness query degraded to Unknown under a solver
   budget) carry a placeholder witness that was never checked against the
   Trojan expression — replaying it would report a spurious rejection, so
   they are counted as skipped instead. *)
let confirm ?(initial_globals = []) ~server trojans =
  let accepted, rejected, skipped =
    List.fold_left
      (fun (acc, rej, skip) (t : Search.trojan) ->
        if not t.Search.confirmed then (acc, rej, skip + 1)
        else
          match replay ~initial_globals ~server t.Search.witness with
          | State.Accepted _ -> (acc + 1, rej, skip)
          | _ -> (acc, rej + 1, skip))
      (0, 0, 0) trojans
  in
  { total = accepted + rejected + skipped; accepted; rejected; skipped }

(* Double-check against a ground-truth oracle: how many witnesses are truly
   ungenerable (Trojan) vs. generable (false positives of the analysis)? *)
let check_against_oracle ~is_trojan trojans =
  List.partition (fun (t : Search.trojan) -> is_trojan t.Search.witness) trojans

let pp_confirmation fmt c =
  Format.fprintf fmt "replayed %d witnesses: %d accepted, %d rejected%s" c.total
    c.accepted c.rejected
    (if c.skipped > 0 then Printf.sprintf ", %d skipped (unconfirmed)" c.skipped
     else "")

