(** A simulated network connecting {!Node}s by integer address.

    FIFO delivery, an optional in-flight fault (e.g. the single-bit
    corruption of the paper's §1 Amazon S3 story), and direct injection of
    arbitrary messages — the fault-injection channel the paper recommends
    for discovered Trojan messages. *)

open Achilles_smt
open Achilles_symvm

type packet = { src : int; dst : int; payload : Bv.t array }

type t

val create : unit -> t

val add_node : t -> addr:int -> Node.t -> unit
(** Raises [Invalid_argument] if the address is taken. *)

val node : t -> int -> Node.t option

val set_fault : t -> (packet -> packet) option -> unit
(** Install (or clear) a transformation applied to every packet in flight. *)

val clear_fault : t -> unit

val bit_flip_fault :
  ?when_:(packet -> bool) -> byte:int -> bit:int -> unit -> packet -> packet
(** Flip one bit of one byte of each matching packet. Raises
    [Invalid_argument] (at construction) on a negative [byte] or a [bit]
    outside [0, 7] — indices that could never address a bit would silently
    corrupt nothing. A [byte] beyond a given packet's payload leaves that
    packet unchanged. *)

val send : t -> src:int -> dst:int -> Bv.t array -> unit
val inject : t -> dst:int -> Bv.t array -> unit
(** Inject a message from outside the system (source address -1). Raises
    [Invalid_argument] when the destination node is routable and expects a
    receive buffer of a different size than the payload
    ({!Node.receive_size}); a mis-sized {e injected} message is a harness
    bug, not a protocol behavior worth simulating. *)

val step : t -> (packet * Concrete.outcome) option
(** Deliver the next queued packet; the receiver's own sends are enqueued.
    [None] on an empty queue or an unroutable destination. *)

val run_to_quiescence : ?max_steps:int -> t -> int
(** Deliver until the queue drains; returns the number of deliveries. *)

val pending : t -> int
val delivered_packets : t -> int
