(** A concrete PBFT deployment for the MAC-attack impact experiment (§6.3).

    The primary validates requests with the DSL replica — which never
    checks authenticators — and forwards a Pre_prepare. The backups do
    verify the MAC: a mismatch means the client or the primary is faulty,
    and being unable to tell which, they run the expensive recovery
    protocol instead of the normal three-phase commit. Costs are abstract
    protocol time units, making the slowdown factor deterministic. *)

open Achilles_smt

val normal_commit_cost : int
val recovery_cost : int

type t

val create : unit -> t

val build_request :
  ?corrupt_mac:bool ->
  cid:int ->
  rid:int ->
  command:int ->
  unit ->
  Bv.t array option
(** Build a request through the DSL client (so only what a correct client
    can produce leaves here), optionally corrupting the authenticators in
    flight. [None] when the client itself refuses (e.g. an unconfigured
    client id). *)

type submit_result = { committed : bool; recovery : bool; cost : int }

val submit : t -> Bv.t array -> submit_result

type workload_summary = {
  requests : int;
  committed : int;
  recoveries : int;
  total_cost : int;
  throughput : float;  (** committed requests per 100 cost units *)
}

val run_workload :
  ?malicious_every:int -> requests:int -> unit -> workload_summary
(** A request stream where every [malicious_every]-th request carries a
    corrupted authenticator (0 = none do). *)
