(** A concrete FSP deployment: the DSL server validates command messages
    and accepted commands take effect on an in-memory {!Fsp_fs} store.
    Clients are the DSL utilities run concretely, including the glob
    expansion a real FSP client performs before anything hits the wire.
    This is where the §6.3 impact experiments live. *)

open Achilles_smt
open Achilles_targets

type t

val create : ?files:string list -> unit -> t
val fs : t -> Fsp_fs.t
val list_files : t -> string list

val build_message :
  Fsp_model.command -> string -> (Bv.t array, string) result
(** Run a client utility concretely on a literal path (no globbing) and
    return the message it would send; [Error] if its validation refuses. *)

val effective_path : Bv.t array -> string
(** The path as the server consumes it: bytes up to the first NUL. *)

val extra_payload : Bv.t array -> string
(** Hex rendering of the covert bytes a mismatched-length Trojan carries
    between the early terminator and the reported length (§6.3); [""] when
    there are none. *)

type server_reply =
  | Accepted of { command : string; path : string; affected : string list }
  | Rejected

val deliver_raw : t -> Bv.t array -> server_reply
(** Deliver raw bytes to the server node; on acceptance, apply the command
    to the file store. The injection point for Trojan messages. *)

type exec_result = {
  expanded : string list;  (** the paths actually sent after globbing *)
  replies : (string * server_reply) list;
  client_error : string option;
}

val exec : t -> command:Fsp_model.command -> arg:string -> exec_result
(** Execute a user command the way the FSP utility does: glob-expand the
    argument against the server's file list, then send one command message
    per expansion. An unmatched pattern is a client-side error (there is no
    escape syntax to send it literally). *)

val command_named : string -> Fsp_model.command
(** Raises [Not_found]. *)
