(** A concretely executing protocol node.

    DSL programs are single-shot message handlers (or bounded event loops);
    a node re-runs its program for each delivered message while persisting
    the program's global scalars across runs — the surrounding event loop
    the paper's servers have. Used by the deployments and the fault
    injector. *)

open Achilles_smt
open Achilles_symvm

type t

val create : ?name:string -> Ast.program -> t
val name : t -> string

val globals : t -> (string * Bv.t) list
(** The node's current persistent state. *)

val set_global : t -> string -> Bv.t -> unit
val delivered : t -> int

val receive_size : t -> int option
(** The message size (in bytes) this node's handler expects: the buffer
    length of the first [Receive] reachable in program order. [None] for
    programs that never receive. *)

val deliver : t -> Bv.t array -> Concrete.outcome
(** Run the handler to completion on one message, persist the globals, and
    return the outcome (including any messages the node sent). *)

val history : t -> (Bv.t array * State.status) list
(** Delivered messages and how each ended, in delivery order. *)

val accepted_count : t -> int
