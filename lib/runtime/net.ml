(* A simulated network connecting nodes by integer address: FIFO delivery,
   an optional in-flight fault (bit flips, the Amazon-S3-style corruption of
   §1), and direct injection of arbitrary messages (the fault-injection use
   the paper recommends for discovered Trojan messages). *)

open Achilles_smt
open Achilles_symvm

type packet = { src : int; dst : int; payload : Bv.t array }

type t = {
  nodes : (int, Node.t) Hashtbl.t;
  queue : packet Queue.t;
  mutable fault : (packet -> packet) option;
  mutable delivered_packets : int;
}

let create () =
  {
    nodes = Hashtbl.create 8;
    queue = Queue.create ();
    fault = None;
    delivered_packets = 0;
  }

let add_node t ~addr node =
  if Hashtbl.mem t.nodes addr then
    invalid_arg (Printf.sprintf "Net.add_node: address %d taken" addr);
  Hashtbl.replace t.nodes addr node

let node t addr = Hashtbl.find_opt t.nodes addr

let set_fault t f = t.fault <- f
let clear_fault t = t.fault <- None

(* Flip one bit of one byte of every packet matching [when_]. A [byte]
   beyond a particular packet's payload leaves that packet intact (packet
   sizes vary per receiver), but indices that can never address a bit —
   negative [byte], [bit] outside [0, 7] — are rejected up front: silently
   flipping nothing would make a corruption experiment vacuously pass. *)
let bit_flip_fault ?(when_ = fun _ -> true) ~byte ~bit () =
  if byte < 0 then
    invalid_arg (Printf.sprintf "Net.bit_flip_fault: negative byte %d" byte);
  if bit < 0 || bit > 7 then
    invalid_arg
      (Printf.sprintf "Net.bit_flip_fault: bit %d outside [0, 7]" bit);
  fun packet ->
    if not (when_ packet) then packet
    else begin
      let payload = Array.copy packet.payload in
      if byte < Array.length payload then
        payload.(byte) <-
          Bv.logxor payload.(byte) (Bv.of_int ~width:8 (1 lsl bit));
      { packet with payload }
    end

let send t ~src ~dst payload = Queue.push { src; dst; payload } t.queue

(* Unlike node-to-node [send] (whose mis-sized packets crash the receiver
   observably, as a [Crashed] outcome), a mis-sized injected payload is a
   harness bug — reject it at the call site when the receiver is already
   routable and its expected size known. *)
let inject t ~dst payload =
  (match node t dst with
  | Some receiver -> (
      match Node.receive_size receiver with
      | Some expected when expected <> Array.length payload ->
          invalid_arg
            (Printf.sprintf
               "Net.inject: payload is %d bytes but node %d receives %d"
               (Array.length payload) dst expected)
      | _ -> ())
  | None -> ());
  send t ~src:(-1) ~dst payload

(* Deliver the next queued packet; the receiving node's own sends are
   enqueued in turn. Returns the receiver outcome, or [None] on an empty
   queue or unroutable address. *)
let step t =
  match Queue.take_opt t.queue with
  | None -> None
  | Some packet -> (
      let packet =
        match t.fault with Some f -> f packet | None -> packet
      in
      match node t packet.dst with
      | None -> None
      | Some receiver ->
          t.delivered_packets <- t.delivered_packets + 1;
          let outcome = Node.deliver receiver packet.payload in
          List.iter
            (fun (dst_bv, payload) ->
              send t ~src:packet.dst ~dst:(Bv.to_int dst_bv) payload)
            outcome.Concrete.sent;
          Some (packet, outcome))

let run_to_quiescence ?(max_steps = 10_000) t =
  let rec go n =
    if n >= max_steps then n
    else match step t with None -> n | Some _ -> go (n + 1)
  in
  go 0

let pending t = Queue.length t.queue
let delivered_packets t = t.delivered_packets
