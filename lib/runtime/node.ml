(* A concretely executing protocol node. The DSL programs are single-shot
   message handlers (one [Receive], then processing); a node re-runs its
   program for every delivered message while carrying the program's global
   scalars across runs — the event loop the paper's servers have around
   their handlers. *)

open Achilles_smt
open Achilles_symvm

type t = {
  name : string;
  program : Ast.program;
  mutable globals : (string * Bv.t) list;
  mutable delivered : int;
  mutable log : (Bv.t array * State.status) list; (* newest first *)
}

let create ?name program =
  {
    name = Option.value name ~default:program.Ast.prog_name;
    program;
    globals = [];
    delivered = 0;
    log = [];
  }

let name t = t.name
let globals t = t.globals
let delivered t = t.delivered

(* The byte size this node expects of a delivered message: the buffer length
   of the first [Receive] reachable in program order (main first, then
   procedures). Handlers receive once up front, so the first is the one an
   injected message lands in. [None] for programs that never receive. *)
let receive_size t =
  let exception Found of int in
  let rec stmt = function
    | Ast.Receive buf -> (
        match Ast.buffer_length t.program buf with
        | Some n -> raise (Found n)
        | None -> ())
    | Ast.If (_, a, b) ->
        block a;
        block b
    | Ast.Switch (_, cases, default) ->
        List.iter (fun (_, b) -> block b) cases;
        block default
    | Ast.While (_, b) -> block b
    | _ -> ()
  and block b = List.iter stmt b in
  try
    block t.program.Ast.main;
    List.iter (fun (p : Ast.proc) -> block p.Ast.body) t.program.Ast.procs;
    None
  with Found n -> Some n

let set_global t key value =
  t.globals <- (key, value) :: List.remove_assoc key t.globals

(* Deliver one message: run the handler to completion, persist the globals,
   and return the outcome (including any messages the node sent). *)
let deliver t message =
  let outcome =
    Concrete.run ~incoming:[ message ] ~initial_globals:t.globals t.program
  in
  t.globals <- outcome.Concrete.globals;
  t.delivered <- t.delivered + 1;
  t.log <- (message, outcome.Concrete.status) :: t.log;
  outcome

let history t = List.rev t.log

let accepted_count t =
  List.length
    (List.filter
       (fun (_, s) -> match s with State.Accepted _ -> true | _ -> false)
       t.log)
