(* A concrete PBFT deployment for the MAC-attack impact experiment (§6.3).

   The primary validates incoming requests with the DSL replica model —
   which never checks authenticators — and forwards a Pre_prepare. The
   backups DO verify the request's MAC entry (deployment-level protocol
   logic): a mismatch means either the client or the primary is faulty, and
   since they cannot tell which, they start the expensive recovery protocol
   instead of the normal three-phase commit. Costs are counted in abstract
   protocol time units so the slowdown factor is deterministic. *)

open Achilles_smt
open Achilles_symvm
open Achilles_targets

let normal_commit_cost = 3 (* pre-prepare, prepare, commit *)
let recovery_cost = 30 (* retransmission with signatures + view change *)

type t = {
  primary : Node.t;
  n_backups : int;
  mutable committed : int;
  mutable recoveries : int;
  mutable rejected : int;
  mutable cost_units : int;
}

let create () =
  {
    primary = Node.create ~name:"replica-0" Pbft_model.replica;
    n_backups = Pbft_model.n_replicas - 1;
    committed = 0;
    recoveries = 0;
    rejected = 0;
    cost_units = 0;
  }

(* Build a request through the DSL client (so only what a correct client can
   produce leaves here), then optionally corrupt the authenticators in
   flight — the malicious client / corrupted key of the paper. *)
let build_request ?(corrupt_mac = false) ~cid ~rid ~command () =
  let inputs =
    [
      Bv.of_int ~width:16 cid (* make_symbolic my_cid *);
      Bv.of_int ~width:16 rid;
      Bv.of_int ~width:16 0 (* flags: not read-only *);
      Bv.of_int ~width:16 1 (* replier *);
      Bv.of_int ~width:32 command;
    ]
  in
  let outcome = Concrete.run ~inputs Pbft_model.client in
  match outcome.Concrete.sent with
  | [ (_, payload) ] ->
      if corrupt_mac then begin
        let payload = Array.copy payload in
        let f = Layout.field Pbft_model.layout "mac" in
        payload.(f.Layout.offset) <-
          Bv.logxor payload.(f.Layout.offset) (Bv.of_int ~width:8 0xFF);
        Some payload
      end
      else Some payload
  | _ -> None (* e.g. cid out of the configured range: client refuses *)

let backup_mac_check payload = Pbft_model.has_valid_mac payload

type submit_result = { committed : bool; recovery : bool; cost : int }

let submit t payload =
  let outcome = Node.deliver t.primary payload in
  match outcome.Concrete.status with
  | State.Accepted _ ->
      (* primary forwarded a Pre_prepare; backups now check the MAC *)
      if backup_mac_check payload then begin
        t.committed <- t.committed + 1;
        t.cost_units <- t.cost_units + normal_commit_cost;
        { committed = true; recovery = false; cost = normal_commit_cost }
      end
      else begin
        t.recoveries <- t.recoveries + 1;
        t.cost_units <- t.cost_units + recovery_cost;
        { committed = true (* recovery guarantees progress *);
          recovery = true;
          cost = recovery_cost;
        }
      end
  | _ ->
      t.rejected <- t.rejected + 1;
      { committed = false; recovery = false; cost = 0 }

type workload_summary = {
  requests : int;
  committed : int;
  recoveries : int;
  total_cost : int;
  throughput : float; (* committed requests per 100 cost units *)
}

(* A stream of client requests; every [malicious_every]-th request carries a
   corrupted authenticator. *)
let run_workload ?(malicious_every = 0) ~requests () =
  let t = create () in
  for i = 1 to requests do
    let corrupt_mac = malicious_every > 0 && i mod malicious_every = 0 in
    match build_request ~corrupt_mac ~cid:(i mod 2) ~rid:i ~command:i () with
    | Some payload -> ignore (submit t payload)
    | None -> ()
  done;
  {
    requests;
    committed = t.committed;
    recoveries = t.recoveries;
    total_cost = t.cost_units;
    throughput =
      (if t.cost_units > 0 then
         100. *. float_of_int t.committed /. float_of_int t.cost_units
       else 0.);
  }
