(** Domain-safe observability: scoped phase timers, counters, latency
    histograms, and an optional JSONL event trace.

    Design rules (see DESIGN.md §9):

    - All in-memory metrics live in [Domain.DLS], mirroring
      [Solver.aggregate_stats]: each domain mutates its own state without
      locks and {!aggregate} merges every domain's slice on demand.
    - Counts (span counts, counters) are safe to print in reports; elapsed
      times are wall-clock and must only ever reach the trace file, never
      digested report text.
    - The trace writer is lock-protected and flushes after every line, so a
      SIGINT/SIGTERM that kills the process mid-run still leaves a valid
      one-object-per-line JSONL file behind. *)

(** {1 Phase taxonomy} *)

(** The static phase taxonomy. Every scoped timer in the pipeline belongs to
    exactly one of these; [trace summarize] attributes wall-clock time to
    them by self-time (nested spans never double-count). *)
type phase =
  | Client_se        (** client-side symbolic execution ([Client_extract]) *)
  | Server_se        (** server-path exploration ([Search] over [Interp]) *)
  | Negate           (** predicate negation ([Negate.negate_path]) *)
  | Different_from   (** differentFrom set construction *)
  | Solver_query     (** one [Solver.check] / incremental check *)
  | Bitblast         (** term -> CNF translation inside a solver query *)
  | Checkpoint_io    (** shard checkpoint write/load *)
  | Report           (** report rendering *)
  | Dist             (** coordinator/worker lease protocol and idle time *)
  | Filter_eval      (** one compiled-filter verdict ([Achilles_filter]) *)
  | Slice            (** static dependency slicing ([Achilles_slice]) *)

val all_phases : phase list

val phase_name : phase -> string

val phase_of_name : string -> phase option

(** {1 Scoped timers and counters} *)

(** [span p f] runs [f ()], charging its duration to phase [p] in this
    domain's metrics slice (count, total seconds, latency histogram) and —
    when a trace or sink is live — emitting [span_begin]/[span_end] events.
    Exceptions close the span before propagating. *)
val span : phase -> (unit -> 'a) -> 'a

(** [count ?n name] bumps the named counter by [n] (default 1) in this
    domain's slice. Counter values are deterministic counts and may be
    printed in reports. *)
val count : ?n:int -> string -> unit

(** [record_span p dt] charges an externally-measured duration [dt] (seconds)
    to phase [p] — count, total seconds, histogram — without re-reading the
    clock. When a trace is live it emits a lone [span_end] event carrying
    [dur], which {!Summary.of_events} attributes via its orphan-end path.
    For hot paths (the serving daemon) that already hold the duration. *)
val record_span : phase -> float -> unit

(** {1 Aggregated snapshot} *)

(** Number of log2-microsecond latency buckets per phase: bucket [k] counts
    spans whose duration fell in [[2^k, 2^k+1)) microseconds. *)
val histogram_buckets : int

(** Bucket index for a duration in seconds (clamped to the last bucket). *)
val bucket_of_seconds : float -> int

type phase_metrics = {
  spans : int;            (** completed spans *)
  seconds : float;        (** total elapsed (wall-clock — never digest this) *)
  histogram : int array;  (** latency histogram, [histogram_buckets] buckets *)
}

type snapshot = {
  phases : (phase * phase_metrics) list;  (** in [all_phases] order *)
  counters : (string * int) list;         (** sorted by name *)
}

(** Merge every domain's slice, mirroring [Solver.aggregate_stats]. *)
val aggregate : unit -> snapshot

(** Zero all per-domain metrics (every registered domain). Tests/bench only. *)
val reset_all : unit -> unit

(** [estimate_quantile hist q] estimates the [q]-quantile (0..1) of the
    durations behind a log2-µs histogram, returning the geometric midpoint
    [2^(k+0.5) µs] of the first bucket whose cumulative count crosses
    [q * total]. Returns 0 for an empty histogram. *)
val estimate_quantile : int array -> float -> float

(** {1 Snapshot codec}

    A versioned, text-serializable rendering of {!snapshot} so any process
    can export its metrics state over a wire or file and a peer can merge it
    (worker heartbeats → coordinator status; daemon → scrape). The format is
    line-based ([achsnap 1] header, [phase ...] and [counter ...] records)
    and forward-compatible: unknown phases and record tags are skipped. *)
module Snapshot : sig
  val version : int

  (** All-zero snapshot (every phase present, no counters). *)
  val empty : unit -> snapshot

  (** Deterministic text rendering; floats round-trip exactly. *)
  val encode : snapshot -> string

  (** Inverse of {!encode}; [Error] on malformed input, never raises. *)
  val decode : string -> (snapshot, string) result

  (** Pointwise sum: spans, seconds, histograms, and counters (union). *)
  val merge : snapshot -> snapshot -> snapshot
end

(** {1 Prometheus text exposition (format 0.0.4)} *)

module Prometheus : sig
  (** Escape a label value: backslash, double-quote, newline. *)
  val escape_label : string -> string

  (** Escape a HELP text: backslash, newline. *)
  val escape_help : string -> string

  (** Sanitize an arbitrary string onto the metric-name charset. *)
  val metric_name : string -> string

  (** Upper bound (seconds, as a [le] label value) of log2-µs bucket [k]. *)
  val le_of_bucket : int -> string

  (** [counter buf ~name ~help series] appends one counter family; [series]
      is a [(labels, value)] list and HELP/TYPE are emitted exactly once. *)
  val counter :
    Buffer.t -> name:string -> help:string -> ((string * string) list * float) list -> unit

  val gauge :
    Buffer.t -> name:string -> help:string -> ((string * string) list * float) list -> unit

  (** [histogram buf ~name ~help series] appends one histogram family;
      [series] is a [(labels, log2µs-histogram, sum_seconds)] list. Buckets
      are cumulative with a trailing [+Inf] equal to [_count]. *)
  val histogram :
    Buffer.t ->
    name:string ->
    help:string ->
    ((string * string) list * int array * float) list ->
    unit

  (** Render a whole snapshot: [<ns>_phase_spans_total],
      [<ns>_phase_seconds_total], [<ns>_phase_duration_seconds] (histogram,
      phases with spans only) and [<ns>_events_total] (one series per named
      counter). [namespace] defaults to ["achilles"]. *)
  val of_snapshot : ?namespace:string -> snapshot -> string
end

(** {1 Process identity} *)

(** [set_identity ~run_id ~proc] names this process for trace correlation;
    every subsequently opened trace stream stamps both into its
    [trace_start] meta event. Defaults to [("", "main")]. *)
val set_identity : run_id:string -> proc:string -> unit

(** Current [(run_id, proc)]. *)
val identity : unit -> string * string

(** A fresh 12-hex-char run id (pid + wall clock + counter digest). *)
val fresh_run_id : unit -> string

(** {1 Events} *)

type value = S of string | I of int | F of float | B of bool

type event = {
  ev_t : float;    (** seconds since trace start *)
  ev_tid : int;    (** emitting domain id *)
  ev_kind : string;
  ev_name : string;
  ev_args : (string * value) list;
}

(** True when a trace file or sink is attached — use to guard event payloads
    that are expensive to build (e.g. rendered terms). *)
val live : unit -> bool

(** [emit ?args ~kind ~name ()] records one event. A no-op unless {!live}.
    The writer lock serialises emission across domains; each event is one
    flushed JSONL line. *)
val emit : ?args:(string * value) list -> kind:string -> name:string -> unit -> unit

(** [set_sink (Some f)] mirrors every emitted event to [f] (under the writer
    lock), independently of whether a trace file is open. The CLI routes
    [--verbose] output through this so verbose text and trace events are two
    renderings of the same event stream. *)
val set_sink : (event -> unit) option -> unit

(** One-line JSON rendering of an event (the JSONL trace line, no newline). *)
val json_of_event : event -> string

(** {1 Trace file} *)

module Trace : sig
  (** Open [file] (truncating) and start writing JSONL events to it. *)
  val enable : string -> unit

  val enabled : unit -> bool

  (** Flush and close the trace file. Safe to call when disabled. *)
  val disable : unit -> unit

  val flush : unit -> unit

  (** [Sys.getenv_opt "ACHILLES_TRACE"] *)
  val file_of_env : unit -> string option
end

(** {1 Reading traces back} *)

module Json : sig
  type t = Null | Bool of bool | Num of float | Str of string

  (** Parse one flat JSONL object ([{"k":v,...}] with scalar values) into an
      assoc list. *)
  val parse_line : string -> ((string * t) list, string) result

  (** Full nested JSON values — status.json and merged-trace validation.
      [parse_line] remains the fast path for flat trace lines. *)
  type v =
    | VNull
    | VBool of bool
    | VNum of float
    | VStr of string
    | VArr of v list
    | VObj of (string * v) list

  val parse : string -> (v, string) result

  (** Compact single-line rendering; inverse of {!parse} up to float
      formatting. *)
  val to_string : v -> string

  (** Field lookup on a [VObj]; [None] otherwise. *)
  val mem : string -> v -> v option

  val to_float : v -> float option

  val to_str : v -> string option
end

module Summary : sig
  type row = {
    row_phase : string;
    self_seconds : float;   (** duration minus same-tid child spans *)
    total_seconds : float;  (** inclusive duration *)
    row_spans : int;
    max_seconds : float;    (** longest single span *)
    row_hist : int array;   (** log2-µs histogram of inclusive durations —
                                feed to {!estimate_quantile} for p50/p95/p99 *)
  }

  type t = {
    wall : float;              (** last event t - first event t *)
    attributed : float;        (** fraction of wall covered by root spans on
                                   the main (first-event) domain *)
    rows : row list;           (** phases in first-seen order *)
    counters : (string * int) list;
    verdicts : (string * int) list;  (** solver verdict -> count *)
    cache_hits : int;
    cache_misses : int;
    events : int;
    kinds : (string * int) list;     (** event kind -> count *)
  }

  (** Compute per-phase self-time from parsed events (file order). Spans
      left open (e.g. the run was killed) are closed at the last timestamp. *)
  val of_events : (string * Json.t) list list -> t

  (** Read and summarize a JSONL trace file. *)
  val load : string -> (t, string) result
end

module Chrome : sig
  (** Convert a JSONL trace to a Chrome trace-event JSON file
      ([{"traceEvents":[...]}]) loadable in Perfetto / about://tracing. *)
  val export : src:string -> dst:string -> (unit, string) result

  (** [merge ~srcs ~dst] stitches several JSONL streams (coordinator +
      workers) into one Chrome timeline: one pid + [process_name] metadata
      per stream, timestamps aligned via each stream's [wall0] meta field,
      and an error if streams carry distinct non-empty run_ids. Returns
      [(streams_merged, run_id)]. *)
  val merge :
    srcs:string list -> dst:string -> (int * string option, string) result
end
