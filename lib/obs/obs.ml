(* Domain-safe observability: phase timers, counters, latency histograms in
   Domain.DLS (registry + aggregate, the same shape as Solver's per-domain
   stats), plus an optional lock-protected JSONL event trace. *)

type phase =
  | Client_se
  | Server_se
  | Negate
  | Different_from
  | Solver_query
  | Bitblast
  | Checkpoint_io
  | Report
  | Dist
  | Filter_eval
  | Slice

let all_phases =
  [
    Client_se;
    Server_se;
    Negate;
    Different_from;
    Solver_query;
    Bitblast;
    Checkpoint_io;
    Report;
    Dist;
    Filter_eval;
    Slice;
  ]

let phase_name = function
  | Client_se -> "client_se"
  | Server_se -> "server_se"
  | Negate -> "negate"
  | Different_from -> "different_from"
  | Solver_query -> "solver_query"
  | Bitblast -> "bitblast"
  | Checkpoint_io -> "checkpoint_io"
  | Report -> "report"
  | Dist -> "dist"
  | Filter_eval -> "filter_eval"
  | Slice -> "slice"

let phase_of_name s = List.find_opt (fun p -> phase_name p = s) all_phases

let phase_index = function
  | Client_se -> 0
  | Server_se -> 1
  | Negate -> 2
  | Different_from -> 3
  | Solver_query -> 4
  | Bitblast -> 5
  | Checkpoint_io -> 6
  | Report -> 7
  | Dist -> 8
  | Filter_eval -> 9
  | Slice -> 10

let n_phases = List.length all_phases

(* --- per-domain metrics ---------------------------------------------------- *)

let histogram_buckets = 28

(* Bucket k holds durations in [2^k, 2^k+1) microseconds; sub-microsecond
   spans land in bucket 0, anything past ~2 minutes saturates the last. *)
let bucket_of_seconds s =
  let us = int_of_float (s *. 1e6) in
  if us <= 1 then 0
  else begin
    let k = ref 0 and v = ref us in
    while !v > 1 && !k < histogram_buckets - 1 do
      incr k;
      v := !v lsr 1
    done;
    !k
  end

type cell = {
  mutable c_spans : int;
  mutable c_seconds : float;
  c_histogram : int array;
}

type domain_slice = {
  cells : cell array; (* indexed by phase_index *)
  counters : (string, int) Hashtbl.t;
}

let registry : domain_slice list ref = ref []
let registry_mutex = Mutex.create ()

let fresh_slice () =
  {
    cells =
      Array.init n_phases (fun _ ->
          { c_spans = 0; c_seconds = 0.; c_histogram = Array.make histogram_buckets 0 });
    counters = Hashtbl.create 32;
  }

let slice_key =
  Domain.DLS.new_key (fun () ->
      Mutex.lock registry_mutex;
      let s = fresh_slice () in
      registry := s :: !registry;
      Mutex.unlock registry_mutex;
      s)

let slice () = Domain.DLS.get slice_key

let count ?(n = 1) name =
  let s = slice () in
  let cur = try Hashtbl.find s.counters name with Not_found -> 0 in
  Hashtbl.replace s.counters name (cur + n)

type phase_metrics = { spans : int; seconds : float; histogram : int array }

type snapshot = {
  phases : (phase * phase_metrics) list;
  counters : (string * int) list;
}

let aggregate () =
  Mutex.lock registry_mutex;
  let slices = !registry in
  Mutex.unlock registry_mutex;
  let cells =
    Array.init n_phases (fun _ ->
        { spans = 0; seconds = 0.; histogram = Array.make histogram_buckets 0 })
  in
  let counters : (string, int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun s ->
      Array.iteri
        (fun i c ->
          let acc = cells.(i) in
          cells.(i) <-
            {
              spans = acc.spans + c.c_spans;
              seconds = acc.seconds +. c.c_seconds;
              histogram = Array.map2 ( + ) acc.histogram c.c_histogram;
            })
        s.cells;
      Hashtbl.iter
        (fun name n ->
          let cur = try Hashtbl.find counters name with Not_found -> 0 in
          Hashtbl.replace counters name (cur + n))
        s.counters)
    slices;
  {
    phases = List.map (fun p -> (p, cells.(phase_index p))) all_phases;
    counters =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) counters []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
  }

let reset_all () =
  Mutex.lock registry_mutex;
  let slices = !registry in
  Mutex.unlock registry_mutex;
  List.iter
    (fun s ->
      Array.iter
        (fun c ->
          c.c_spans <- 0;
          c.c_seconds <- 0.;
          Array.fill c.c_histogram 0 histogram_buckets 0)
        s.cells;
      Hashtbl.reset s.counters)
    slices

(* --- events and the JSONL trace writer ------------------------------------- *)

type value = S of string | I of int | F of float | B of bool

type event = {
  ev_t : float;
  ev_tid : int;
  ev_kind : string;
  ev_name : string;
  ev_args : (string * value) list;
}

type writer = { oc : out_channel; w_t0 : float }

(* Both the writer and the sink are mutated only from the orchestrating
   domain (CLI/bench/test setup), but events arrive from every worker, so
   all access to either goes through [trace_mutex]. [live_flag] keeps the
   disabled fast path to a single atomic load. *)
let trace_mutex = Mutex.create ()
let writer : writer option ref = ref None
let sink : (event -> unit) option ref = ref None
let live_flag = Atomic.make false
let process_t0 = Unix.gettimeofday ()

let live () = Atomic.get live_flag

let update_live_locked () =
  Atomic.set live_flag (!writer <> None || !sink <> None)

let set_sink f =
  Mutex.lock trace_mutex;
  sink := f;
  update_live_locked ();
  Mutex.unlock trace_mutex

(* Hand-rolled JSON: the subsystem is zero-dependency by design. *)
let buf_add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let buf_add_float buf f =
  (* Shortest round-trippable rendering; JSON has no NaN/inf so clamp. *)
  if Float.is_nan f then Buffer.add_string buf "0"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.9g" f)

let buf_add_value buf = function
  | S s -> buf_add_json_string buf s
  | I i -> Buffer.add_string buf (string_of_int i)
  | F f -> buf_add_float buf f
  | B b -> Buffer.add_string buf (if b then "true" else "false")

let json_of_event ev =
  let buf = Buffer.create 96 in
  Buffer.add_string buf "{\"t\":";
  buf_add_float buf ev.ev_t;
  Buffer.add_string buf ",\"tid\":";
  Buffer.add_string buf (string_of_int ev.ev_tid);
  Buffer.add_string buf ",\"kind\":";
  buf_add_json_string buf ev.ev_kind;
  Buffer.add_string buf ",\"name\":";
  buf_add_json_string buf ev.ev_name;
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ',';
      buf_add_json_string buf k;
      Buffer.add_char buf ':';
      buf_add_value buf v)
    ev.ev_args;
  Buffer.add_char buf '}';
  Buffer.contents buf

let emit ?(args = []) ~kind ~name () =
  if Atomic.get live_flag then begin
    Mutex.lock trace_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock trace_mutex)
      (fun () ->
        let t0 = match !writer with Some w -> w.w_t0 | None -> process_t0 in
        let ev =
          {
            ev_t = Unix.gettimeofday () -. t0;
            ev_tid = (Domain.self () :> int);
            ev_kind = kind;
            ev_name = name;
            ev_args = args;
          }
        in
        (match !writer with
        | Some w ->
            output_string w.oc (json_of_event ev);
            output_char w.oc '\n';
            (* Flush per line: a killed process still leaves whole lines. *)
            flush w.oc
        | None -> ());
        match !sink with Some f -> f ev | None -> ())
  end

let span p f =
  let c = (slice ()).cells.(phase_index p) in
  let name = phase_name p in
  if Atomic.get live_flag then emit ~kind:"span_begin" ~name ();
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Unix.gettimeofday () -. t0 in
      c.c_spans <- c.c_spans + 1;
      c.c_seconds <- c.c_seconds +. dt;
      let b = bucket_of_seconds dt in
      c.c_histogram.(b) <- c.c_histogram.(b) + 1;
      if Atomic.get live_flag then
        emit ~args:[ ("dur", F dt) ] ~kind:"span_end" ~name ())
    f

module Trace = struct
  let enable path =
    Mutex.lock trace_mutex;
    (match !writer with
    | Some w -> ( try close_out w.oc with Sys_error _ -> ())
    | None -> ());
    writer := Some { oc = open_out path; w_t0 = Unix.gettimeofday () };
    update_live_locked ();
    Mutex.unlock trace_mutex

  let enabled () =
    Mutex.lock trace_mutex;
    let b = !writer <> None in
    Mutex.unlock trace_mutex;
    b

  let flush () =
    Mutex.lock trace_mutex;
    (match !writer with Some w -> ( try flush w.oc with Sys_error _ -> ()) | None -> ());
    Mutex.unlock trace_mutex

  let disable () =
    Mutex.lock trace_mutex;
    (match !writer with
    | Some w -> ( try close_out w.oc with Sys_error _ -> ())
    | None -> ());
    writer := None;
    update_live_locked ();
    Mutex.unlock trace_mutex

  let file_of_env () = Sys.getenv_opt "ACHILLES_TRACE"
end

(* --- reading traces back ---------------------------------------------------- *)

module Json = struct
  type t = Null | Bool of bool | Num of float | Str of string

  exception Bad of string

  (* Minimal recursive-descent parser for the flat objects this module
     writes: {"key": scalar, ...} with string/number/bool/null values. *)
  let parse_line line =
    let n = String.length line in
    let pos = ref 0 in
    let peek () = if !pos < n then Some line.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < n
        && (match line.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false)
      do
        advance ()
      done
    in
    let expect c =
      skip_ws ();
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> raise (Bad (Printf.sprintf "expected %c at %d" c !pos))
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then raise (Bad "unterminated string");
        let c = line.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
            if !pos >= n then raise (Bad "unterminated escape");
            let e = line.[!pos] in
            advance ();
            match e with
            | '"' -> Buffer.add_char buf '"'; go ()
            | '\\' -> Buffer.add_char buf '\\'; go ()
            | '/' -> Buffer.add_char buf '/'; go ()
            | 'n' -> Buffer.add_char buf '\n'; go ()
            | 'r' -> Buffer.add_char buf '\r'; go ()
            | 't' -> Buffer.add_char buf '\t'; go ()
            | 'b' -> Buffer.add_char buf '\b'; go ()
            | 'f' -> Buffer.add_char buf '\012'; go ()
            | 'u' ->
                if !pos + 4 > n then raise (Bad "short \\u escape");
                let hex = String.sub line !pos 4 in
                pos := !pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> raise (Bad "bad \\u escape")
                in
                (* We only emit \u for control chars; decode the BMP point
                   as UTF-8 so round-trips stay lossless. *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end;
                go ()
            | _ -> raise (Bad "bad escape"))
        | c -> Buffer.add_char buf c; go ()
      in
      go ()
    in
    let parse_scalar () =
      skip_ws ();
      match peek () with
      | Some '"' -> Str (parse_string ())
      | Some 't' ->
          if !pos + 4 <= n && String.sub line !pos 4 = "true" then begin
            pos := !pos + 4;
            Bool true
          end
          else raise (Bad "bad literal")
      | Some 'f' ->
          if !pos + 5 <= n && String.sub line !pos 5 = "false" then begin
            pos := !pos + 5;
            Bool false
          end
          else raise (Bad "bad literal")
      | Some 'n' ->
          if !pos + 4 <= n && String.sub line !pos 4 = "null" then begin
            pos := !pos + 4;
            Null
          end
          else raise (Bad "bad literal")
      | Some c when c = '-' || (c >= '0' && c <= '9') ->
          let start = !pos in
          while
            !pos < n
            && (match line.[!pos] with
               | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
               | _ -> false)
          do
            advance ()
          done;
          let s = String.sub line start (!pos - start) in
          (match float_of_string_opt s with
          | Some f -> Num f
          | None -> raise (Bad (Printf.sprintf "bad number %S" s)))
      | _ -> raise (Bad (Printf.sprintf "unexpected input at %d" !pos))
    in
    try
      expect '{';
      skip_ws ();
      let fields = ref [] in
      (match peek () with
      | Some '}' -> advance ()
      | _ ->
          let rec members () =
            let key = (skip_ws (); parse_string ()) in
            expect ':';
            let v = parse_scalar () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> raise (Bad "expected , or }")
          in
          members ());
      skip_ws ();
      if !pos <> n then raise (Bad "trailing garbage");
      Ok (List.rev !fields)
    with Bad msg -> Error msg
end

module Summary = struct
  type row = {
    row_phase : string;
    self_seconds : float;
    total_seconds : float;
    row_spans : int;
    max_seconds : float;
  }

  type t = {
    wall : float;
    attributed : float;
    rows : row list;
    counters : (string * int) list;
    verdicts : (string * int) list;
    cache_hits : int;
    cache_misses : int;
    events : int;
    kinds : (string * int) list;
  }

  type open_span = { os_name : string; os_start : float; mutable os_child : float }

  let str fields k =
    match List.assoc_opt k fields with Some (Json.Str s) -> Some s | _ -> None

  let num fields k =
    match List.assoc_opt k fields with Some (Json.Num f) -> Some f | _ -> None

  let of_events events =
    let rows : (string, row) Hashtbl.t = Hashtbl.create 16 in
    let row_order : string list ref = ref [] in
    let counters : (string, int) Hashtbl.t = Hashtbl.create 16 in
    let verdicts : (string, int) Hashtbl.t = Hashtbl.create 4 in
    let kinds : (string, int) Hashtbl.t = Hashtbl.create 8 in
    let stacks : (int, open_span list ref) Hashtbl.t = Hashtbl.create 8 in
    let bump tbl k n =
      let cur = try Hashtbl.find tbl k with Not_found -> 0 in
      Hashtbl.replace tbl k (cur + n)
    in
    let cache_hits = ref 0 and cache_misses = ref 0 in
    let n_events = ref 0 in
    let min_t = ref infinity and max_t = ref neg_infinity in
    let main_tid = ref None in
    (* Wall-clock attributed to phases on the main domain = total duration
       of its root (unnested) spans. Nested spans only shift time between
       phases via self-time; they never add to coverage. *)
    let main_root = ref 0. in
    let stack_of tid =
      match Hashtbl.find_opt stacks tid with
      | Some s -> s
      | None ->
          let s = ref [] in
          Hashtbl.add stacks tid s;
          s
    in
    let add_span tid name ~dur ~self =
      let self = Float.max 0. self in
      let r =
        match Hashtbl.find_opt rows name with
        | Some r -> r
        | None ->
            row_order := name :: !row_order;
            {
              row_phase = name;
              self_seconds = 0.;
              total_seconds = 0.;
              row_spans = 0;
              max_seconds = 0.;
            }
      in
      Hashtbl.replace rows name
        {
          r with
          self_seconds = r.self_seconds +. self;
          total_seconds = r.total_seconds +. dur;
          row_spans = r.row_spans + 1;
          max_seconds = Float.max r.max_seconds dur;
        };
      let stack = stack_of tid in
      match !stack with
      | parent :: _ -> parent.os_child <- parent.os_child +. dur
      | [] -> if Some tid = !main_tid then main_root := !main_root +. dur
    in
    List.iter
      (fun fields ->
        let t = Option.value ~default:0. (num fields "t") in
        let tid =
          int_of_float (Option.value ~default:0. (num fields "tid"))
        in
        let kind = Option.value ~default:"" (str fields "kind") in
        let name = Option.value ~default:"" (str fields "name") in
        incr n_events;
        if t < !min_t then min_t := t;
        if t > !max_t then max_t := t;
        if !main_tid = None then main_tid := Some tid;
        bump kinds kind 1;
        match kind with
        | "span_begin" ->
            let stack = stack_of tid in
            stack := { os_name = name; os_start = t; os_child = 0. } :: !stack
        | "span_end" -> (
            let stack = stack_of tid in
            match !stack with
            | top :: rest when top.os_name = name ->
                stack := rest;
                let dur =
                  match num fields "dur" with
                  | Some d -> d
                  | None -> t -. top.os_start
                in
                add_span tid name ~dur ~self:(dur -. top.os_child)
            | _ ->
                (* Orphaned end (trace truncated at the front): count the
                   span from its own dur field when present. *)
                let dur = Option.value ~default:0. (num fields "dur") in
                add_span tid name ~dur ~self:dur)
        | "counter" ->
            let n =
              int_of_float (Option.value ~default:1. (num fields "n"))
            in
            bump counters name n
        | "solver" when name = "verdict" ->
            let r = Option.value ~default:"?" (str fields "result") in
            bump verdicts r 1
        | "cache" ->
            if name = "hit" then incr cache_hits
            else if name = "miss" then incr cache_misses
        | _ -> ())
      events;
    (* Close spans the run never finished (killed mid-run) at the last
       timestamp, innermost first so child time propagates outward. *)
    let last = if !max_t = neg_infinity then 0. else !max_t in
    Hashtbl.iter
      (fun tid stack ->
        List.iter
          (fun os ->
            let stack' = stack_of tid in
            (match !stack' with
            | top :: rest when top == os -> stack' := rest
            | _ -> ());
            let dur = Float.max 0. (last -. os.os_start) in
            add_span tid os.os_name ~dur ~self:(dur -. os.os_child))
          !stack)
      stacks;
    let wall =
      if !max_t = neg_infinity || !min_t = infinity then 0.
      else !max_t -. !min_t
    in
    let sorted tbl =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    {
      wall;
      attributed = (if wall > 0. then Float.min 1. (!main_root /. wall) else 1.);
      rows = List.rev_map (Hashtbl.find rows) !row_order;
      counters = sorted counters;
      verdicts = sorted verdicts;
      cache_hits = !cache_hits;
      cache_misses = !cache_misses;
      events = !n_events;
      kinds = sorted kinds;
    }

  let load path =
    match open_in path with
    | exception Sys_error msg -> Error msg
    | ic ->
        let events = ref [] in
        let lineno = ref 0 in
        let err = ref None in
        (try
           while !err = None do
             let line = input_line ic in
             incr lineno;
             if String.trim line <> "" then
               match Json.parse_line line with
               | Ok fields -> events := fields :: !events
               | Error msg ->
                   err := Some (Printf.sprintf "%s:%d: %s" path !lineno msg)
           done
         with End_of_file -> ());
        close_in ic;
        (match !err with
        | Some e -> Error e
        | None -> Ok (of_events (List.rev !events)))
end

module Chrome = struct
  (* Chrome trace-event format: span_begin/span_end map to "B"/"E" duration
     events, everything else to instant events, all timestamps in µs. *)
  let export ~src ~dst =
    match open_in src with
    | exception Sys_error msg -> Error msg
    | ic -> (
        match open_out dst with
        | exception Sys_error msg ->
            close_in ic;
            Error msg
        | oc ->
            let buf = Buffer.create 256 in
            let first = ref true in
            let err = ref None in
            let lineno = ref 0 in
            output_string oc "{\"traceEvents\":[\n";
            let emit_one fields =
              let t = Option.value ~default:0. (Summary.num fields "t") in
              let tid =
                int_of_float
                  (Option.value ~default:0. (Summary.num fields "tid"))
              in
              let kind = Option.value ~default:"" (Summary.str fields "kind") in
              let name =
                Option.value ~default:"event" (Summary.str fields "name")
              in
              let ph, nm =
                match kind with
                | "span_begin" -> ("B", name)
                | "span_end" -> ("E", name)
                | _ -> ("i", kind ^ ":" ^ name)
              in
              Buffer.clear buf;
              if not !first then Buffer.add_string buf ",\n";
              first := false;
              Buffer.add_string buf "{\"name\":";
              buf_add_json_string buf nm;
              Buffer.add_string buf ",\"cat\":";
              buf_add_json_string buf kind;
              Buffer.add_string buf
                (Printf.sprintf ",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":0,\"tid\":%d"
                   ph (t *. 1e6) tid);
              if ph = "i" then Buffer.add_string buf ",\"s\":\"t\"";
              let extra =
                List.filter
                  (fun (k, _) ->
                    not (List.mem k [ "t"; "tid"; "kind"; "name" ]))
                  fields
              in
              if extra <> [] then begin
                Buffer.add_string buf ",\"args\":{";
                List.iteri
                  (fun i (k, v) ->
                    if i > 0 then Buffer.add_char buf ',';
                    buf_add_json_string buf k;
                    Buffer.add_char buf ':';
                    match v with
                    | Json.Null -> Buffer.add_string buf "null"
                    | Json.Bool b ->
                        Buffer.add_string buf (if b then "true" else "false")
                    | Json.Num f -> buf_add_float buf f
                    | Json.Str s -> buf_add_json_string buf s)
                  extra;
                Buffer.add_char buf '}'
              end;
              Buffer.add_char buf '}';
              output_string oc (Buffer.contents buf)
            in
            (try
               while !err = None do
                 let line = input_line ic in
                 incr lineno;
                 if String.trim line <> "" then
                   match Json.parse_line line with
                   | Ok fields -> emit_one fields
                   | Error msg ->
                       err :=
                         Some (Printf.sprintf "%s:%d: %s" src !lineno msg)
               done
             with End_of_file -> ());
            output_string oc "\n]}\n";
            close_in ic;
            close_out oc;
            (match !err with Some e -> Error e | None -> Ok ()))
end
