(* Domain-safe observability: phase timers, counters, latency histograms in
   Domain.DLS (registry + aggregate, the same shape as Solver's per-domain
   stats), plus an optional lock-protected JSONL event trace. *)

type phase =
  | Client_se
  | Server_se
  | Negate
  | Different_from
  | Solver_query
  | Bitblast
  | Checkpoint_io
  | Report
  | Dist
  | Filter_eval
  | Slice

let all_phases =
  [
    Client_se;
    Server_se;
    Negate;
    Different_from;
    Solver_query;
    Bitblast;
    Checkpoint_io;
    Report;
    Dist;
    Filter_eval;
    Slice;
  ]

let phase_name = function
  | Client_se -> "client_se"
  | Server_se -> "server_se"
  | Negate -> "negate"
  | Different_from -> "different_from"
  | Solver_query -> "solver_query"
  | Bitblast -> "bitblast"
  | Checkpoint_io -> "checkpoint_io"
  | Report -> "report"
  | Dist -> "dist"
  | Filter_eval -> "filter_eval"
  | Slice -> "slice"

let phase_of_name s = List.find_opt (fun p -> phase_name p = s) all_phases

let phase_index = function
  | Client_se -> 0
  | Server_se -> 1
  | Negate -> 2
  | Different_from -> 3
  | Solver_query -> 4
  | Bitblast -> 5
  | Checkpoint_io -> 6
  | Report -> 7
  | Dist -> 8
  | Filter_eval -> 9
  | Slice -> 10

let n_phases = List.length all_phases

(* --- per-domain metrics ---------------------------------------------------- *)

let histogram_buckets = 28

(* Bucket k holds durations in [2^k, 2^k+1) microseconds; sub-microsecond
   spans land in bucket 0, anything past ~2 minutes saturates the last. *)
let bucket_of_seconds s =
  let us = int_of_float (s *. 1e6) in
  if us <= 1 then 0
  else begin
    let k = ref 0 and v = ref us in
    while !v > 1 && !k < histogram_buckets - 1 do
      incr k;
      v := !v lsr 1
    done;
    !k
  end

(* Geometric midpoint of bucket [2^k, 2^(k+1)) µs, in seconds. *)
let bucket_midpoint k = (2.0 ** (float_of_int k +. 0.5)) *. 1e-6

let estimate_quantile hist q =
  let total = Array.fold_left ( + ) 0 hist in
  if total = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target = Float.max 1.0 (q *. float_of_int total) in
    let n = Array.length hist in
    let rec go k acc =
      if k >= n then bucket_midpoint (n - 1)
      else
        let acc = acc + hist.(k) in
        if float_of_int acc >= target then bucket_midpoint k else go (k + 1) acc
    in
    go 0 0
  end

type cell = {
  mutable c_spans : int;
  mutable c_seconds : float;
  c_histogram : int array;
}

type domain_slice = {
  cells : cell array; (* indexed by phase_index *)
  counters : (string, int) Hashtbl.t;
}

let registry : domain_slice list ref = ref []
let registry_mutex = Mutex.create ()

let fresh_slice () =
  {
    cells =
      Array.init n_phases (fun _ ->
          { c_spans = 0; c_seconds = 0.; c_histogram = Array.make histogram_buckets 0 });
    counters = Hashtbl.create 32;
  }

let slice_key =
  Domain.DLS.new_key (fun () ->
      Mutex.lock registry_mutex;
      let s = fresh_slice () in
      registry := s :: !registry;
      Mutex.unlock registry_mutex;
      s)

let slice () = Domain.DLS.get slice_key

let count ?(n = 1) name =
  let s = slice () in
  let cur = try Hashtbl.find s.counters name with Not_found -> 0 in
  Hashtbl.replace s.counters name (cur + n)

type phase_metrics = { spans : int; seconds : float; histogram : int array }

type snapshot = {
  phases : (phase * phase_metrics) list;
  counters : (string * int) list;
}

let aggregate () =
  Mutex.lock registry_mutex;
  let slices = !registry in
  Mutex.unlock registry_mutex;
  let cells =
    Array.init n_phases (fun _ ->
        { spans = 0; seconds = 0.; histogram = Array.make histogram_buckets 0 })
  in
  let counters : (string, int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun s ->
      Array.iteri
        (fun i c ->
          let acc = cells.(i) in
          cells.(i) <-
            {
              spans = acc.spans + c.c_spans;
              seconds = acc.seconds +. c.c_seconds;
              histogram = Array.map2 ( + ) acc.histogram c.c_histogram;
            })
        s.cells;
      Hashtbl.iter
        (fun name n ->
          let cur = try Hashtbl.find counters name with Not_found -> 0 in
          Hashtbl.replace counters name (cur + n))
        s.counters)
    slices;
  {
    phases = List.map (fun p -> (p, cells.(phase_index p))) all_phases;
    counters =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) counters []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
  }

let reset_all () =
  Mutex.lock registry_mutex;
  let slices = !registry in
  Mutex.unlock registry_mutex;
  List.iter
    (fun s ->
      Array.iter
        (fun c ->
          c.c_spans <- 0;
          c.c_seconds <- 0.;
          Array.fill c.c_histogram 0 histogram_buckets 0)
        s.cells;
      Hashtbl.reset s.counters)
    slices

(* --- snapshot codec --------------------------------------------------------- *)

module Snapshot = struct
  let version = 1

  let zero_metrics () =
    { spans = 0; seconds = 0.; histogram = Array.make histogram_buckets 0 }

  let empty () =
    { phases = List.map (fun p -> (p, zero_metrics ())) all_phases; counters = [] }

  (* Counter names ride on a space-separated line: percent-escape anything
     outside printable non-space ASCII (plus '%' itself). *)
  let escape_name s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        let code = Char.code c in
        if c = '%' || code <= 0x20 || code > 0x7e then
          Buffer.add_string buf (Printf.sprintf "%%%02x" code)
        else Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let unescape_name s =
    let n = String.length s in
    let buf = Buffer.create n in
    let rec go i =
      if i >= n then Some (Buffer.contents buf)
      else if s.[i] = '%' then
        if i + 2 >= n then None
        else
          match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
          | Some code when code >= 0 && code < 256 ->
              Buffer.add_char buf (Char.chr code);
              go (i + 3)
          | _ -> None
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
    in
    go 0

  let encode snap =
    let buf = Buffer.create 512 in
    Buffer.add_string buf (Printf.sprintf "achsnap %d\n" version);
    List.iter
      (fun (p, m) ->
        if m.spans <> 0 || m.seconds <> 0. then begin
          (* %.17g: shortest always-round-trippable double rendering. *)
          Buffer.add_string buf
            (Printf.sprintf "phase %s %d %.17g " (phase_name p) m.spans m.seconds);
          let cells = ref [] in
          Array.iteri
            (fun k v -> if v <> 0 then cells := Printf.sprintf "%d:%d" k v :: !cells)
            m.histogram;
          Buffer.add_string buf
            (if !cells = [] then "-" else String.concat "," (List.rev !cells));
          Buffer.add_char buf '\n'
        end)
      snap.phases;
    List.iter
      (fun (name, n) ->
        Buffer.add_string buf (Printf.sprintf "counter %s %d\n" (escape_name name) n))
      snap.counters;
    Buffer.contents buf

  let decode text =
    let exception Fail of string in
    let fail fmt = Printf.ksprintf (fun m -> raise (Fail m)) fmt in
    try
      let lines = String.split_on_char '\n' text in
      let header, body =
        match lines with
        | h :: rest -> (String.trim h, rest)
        | [] -> fail "empty snapshot"
      in
      (match String.split_on_char ' ' header with
      | [ "achsnap"; v ] -> (
          match int_of_string_opt v with
          | Some v when v >= 1 && v <= version -> ()
          | Some v -> fail "unsupported snapshot version %d" v
          | None -> fail "bad snapshot version %S" v)
      | _ -> fail "not a snapshot (bad header %S)" header);
      let cells = Array.init n_phases (fun _ -> zero_metrics ()) in
      let counters : (string, int) Hashtbl.t = Hashtbl.create 16 in
      let parse_hist m field =
        if field <> "-" then
          List.iter
            (fun cell ->
              match String.split_on_char ':' cell with
              | [ k; v ] -> (
                  match (int_of_string_opt k, int_of_string_opt v) with
                  | Some k, Some v when k >= 0 && k < histogram_buckets && v >= 0 ->
                      m.histogram.(k) <- m.histogram.(k) + v
                  | _ -> fail "bad histogram cell %S" cell)
              | _ -> fail "bad histogram cell %S" cell)
            (String.split_on_char ',' field)
      in
      List.iter
        (fun line ->
          let line = String.trim line in
          if line <> "" then
            match String.split_on_char ' ' line with
            | "phase" :: name :: spans :: seconds :: rest -> (
                match phase_of_name name with
                | None -> () (* unknown phase from a newer build: skip *)
                | Some p -> (
                    let m = cells.(phase_index p) in
                    (match (int_of_string_opt spans, float_of_string_opt seconds) with
                    | Some sp, Some sec when sp >= 0 ->
                        cells.(phase_index p) <-
                          { m with spans = m.spans + sp; seconds = m.seconds +. sec }
                    | _ -> fail "bad phase line %S" line);
                    match rest with
                    | [ hist ] -> parse_hist cells.(phase_index p) hist
                    | _ -> fail "bad phase line %S" line))
            | "counter" :: name :: [ n ] -> (
                match (unescape_name name, int_of_string_opt n) with
                | Some name, Some n ->
                    let cur = try Hashtbl.find counters name with Not_found -> 0 in
                    Hashtbl.replace counters name (cur + n)
                | _ -> fail "bad counter line %S" line)
            | tag :: _
              when tag <> "phase" && tag <> "counter" && tag <> "achsnap" ->
                () (* unknown record tag from a newer version: skip *)
            | _ -> fail "bad line %S" line)
        body;
      Ok
        {
          phases = List.map (fun p -> (p, cells.(phase_index p))) all_phases;
          counters =
            Hashtbl.fold (fun k v acc -> (k, v) :: acc) counters []
            |> List.sort (fun (a, _) (b, _) -> String.compare a b);
        }
    with Fail msg -> Error msg

  let merge a b =
    let metrics_of snap p =
      match List.assoc_opt p snap.phases with
      | Some m -> m
      | None -> zero_metrics ()
    in
    let hget h k = if k < Array.length h then h.(k) else 0 in
    let phases =
      List.map
        (fun p ->
          let ma = metrics_of a p and mb = metrics_of b p in
          ( p,
            {
              spans = ma.spans + mb.spans;
              seconds = ma.seconds +. mb.seconds;
              histogram =
                Array.init histogram_buckets (fun k ->
                    hget ma.histogram k + hget mb.histogram k);
            } ))
        all_phases
    in
    let counters : (string, int) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (name, n) ->
        let cur = try Hashtbl.find counters name with Not_found -> 0 in
        Hashtbl.replace counters name (cur + n))
      (a.counters @ b.counters);
    {
      phases;
      counters =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) counters []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    }
end

(* --- Prometheus text exposition (format 0.0.4) ------------------------------ *)

module Prometheus = struct
  let escape_label s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '"' -> Buffer.add_string buf "\\\""
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let escape_help s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  (* Map an arbitrary counter name onto the metric-name charset
     [a-zA-Z_:][a-zA-Z0-9_:]*. *)
  let metric_name s =
    let buf = Buffer.create (String.length s) in
    String.iteri
      (fun i c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> Buffer.add_char buf c
        | '0' .. '9' when i > 0 -> Buffer.add_char buf c
        | _ -> Buffer.add_char buf '_')
      s;
    if Buffer.length buf = 0 then "_" else Buffer.contents buf

  let fmt_value f =
    if Float.is_nan f then "NaN"
    else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.9g" f

  let labels_str = function
    | [] -> ""
    | ls ->
        "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> k ^ "=\"" ^ escape_label v ^ "\"") ls)
        ^ "}"

  let sample buf name labels v =
    Buffer.add_string buf name;
    Buffer.add_string buf (labels_str labels);
    Buffer.add_char buf ' ';
    Buffer.add_string buf (fmt_value v);
    Buffer.add_char buf '\n'

  let header buf ~name ~help ~mtype =
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name mtype)

  (* [series] = (labels, value) list; one family, HELP/TYPE emitted once. *)
  let counter buf ~name ~help series =
    header buf ~name ~help ~mtype:"counter";
    List.iter (fun (labels, v) -> sample buf name labels v) series

  let gauge buf ~name ~help series =
    header buf ~name ~help ~mtype:"gauge";
    List.iter (fun (labels, v) -> sample buf name labels v) series

  (* Upper bound of log2-µs bucket k, in seconds. *)
  let le_of_bucket k = Printf.sprintf "%g" (2.0 ** float_of_int (k + 1) *. 1e-6)

  (* [series] = (labels, histogram, sum_seconds) list. Buckets are emitted
     cumulatively with a final +Inf equal to _count. *)
  let histogram buf ~name ~help series =
    header buf ~name ~help ~mtype:"histogram";
    List.iter
      (fun (labels, hist, sum) ->
        let cum = ref 0 in
        Array.iteri
          (fun k v ->
            cum := !cum + v;
            sample buf (name ^ "_bucket")
              (labels @ [ ("le", le_of_bucket k) ])
              (float_of_int !cum))
          hist;
        sample buf (name ^ "_bucket")
          (labels @ [ ("le", "+Inf") ])
          (float_of_int !cum);
        sample buf (name ^ "_sum") labels sum;
        sample buf (name ^ "_count") labels (float_of_int !cum))
      series

  let of_snapshot ?(namespace = "achilles") snap =
    let buf = Buffer.create 4096 in
    counter buf
      ~name:(namespace ^ "_phase_spans_total")
      ~help:"Completed spans per pipeline phase"
      (List.map
         (fun (p, m) ->
           ([ ("phase", phase_name p) ], float_of_int m.spans))
         snap.phases);
    counter buf
      ~name:(namespace ^ "_phase_seconds_total")
      ~help:"Total wall-clock seconds per pipeline phase"
      (List.map (fun (p, m) -> ([ ("phase", phase_name p) ], m.seconds)) snap.phases);
    let active =
      List.filter (fun (_, m) -> m.spans > 0) snap.phases
    in
    if active <> [] then
      histogram buf
        ~name:(namespace ^ "_phase_duration_seconds")
        ~help:"Span duration per pipeline phase (log2-microsecond buckets)"
        (List.map
           (fun (p, m) -> ([ ("phase", phase_name p) ], m.histogram, m.seconds))
           active);
    if snap.counters <> [] then
      counter buf
        ~name:(namespace ^ "_events_total")
        ~help:"Named event counters"
        (List.map
           (fun (name, n) -> ([ ("name", name) ], float_of_int n))
           snap.counters);
    Buffer.contents buf
end

(* --- events and the JSONL trace writer ------------------------------------- *)

type value = S of string | I of int | F of float | B of bool

type event = {
  ev_t : float;
  ev_tid : int;
  ev_kind : string;
  ev_name : string;
  ev_args : (string * value) list;
}

type writer = { oc : out_channel; w_t0 : float }

(* Both the writer and the sink are mutated only from the orchestrating
   domain (CLI/bench/test setup), but events arrive from every worker, so
   all access to either goes through [trace_mutex]. [live_flag] keeps the
   disabled fast path to a single atomic load. *)
let trace_mutex = Mutex.create ()
let writer : writer option ref = ref None
let sink : (event -> unit) option ref = ref None
let live_flag = Atomic.make false
let process_t0 = Unix.gettimeofday ()

let live () = Atomic.get live_flag

(* --- process identity (for cross-process trace correlation) ---------------- *)

(* (run_id, process name). Set once by the orchestrating entry point; read
   whenever a trace stream opens. Guarded by [trace_mutex] alongside the
   writer it stamps. *)
let identity_ref = ref ("", "main")

let set_identity ~run_id ~proc =
  Mutex.lock trace_mutex;
  identity_ref := (run_id, proc);
  Mutex.unlock trace_mutex

let identity () =
  Mutex.lock trace_mutex;
  let id = !identity_ref in
  Mutex.unlock trace_mutex;
  id

let run_id_counter = Atomic.make 0

let fresh_run_id () =
  let seed =
    Printf.sprintf "%d.%.6f.%d" (Unix.getpid ()) (Unix.gettimeofday ())
      (Atomic.fetch_and_add run_id_counter 1)
  in
  String.sub (Digest.to_hex (Digest.string seed)) 0 12

let update_live_locked () =
  Atomic.set live_flag (!writer <> None || !sink <> None)

let set_sink f =
  Mutex.lock trace_mutex;
  sink := f;
  update_live_locked ();
  Mutex.unlock trace_mutex

(* Hand-rolled JSON: the subsystem is zero-dependency by design. *)
let buf_add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let buf_add_float buf f =
  (* Shortest round-trippable rendering; JSON has no NaN/inf so clamp. *)
  if Float.is_nan f then Buffer.add_string buf "0"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else if Float.abs f >= 1e6 then
    (* Epoch-scale timestamps (wall0 in the trace meta event): keep
       microsecond precision so cross-process alignment stays sharp. *)
    Buffer.add_string buf (Printf.sprintf "%.6f" f)
  else Buffer.add_string buf (Printf.sprintf "%.9g" f)

let buf_add_value buf = function
  | S s -> buf_add_json_string buf s
  | I i -> Buffer.add_string buf (string_of_int i)
  | F f -> buf_add_float buf f
  | B b -> Buffer.add_string buf (if b then "true" else "false")

let json_of_event ev =
  let buf = Buffer.create 96 in
  Buffer.add_string buf "{\"t\":";
  buf_add_float buf ev.ev_t;
  Buffer.add_string buf ",\"tid\":";
  Buffer.add_string buf (string_of_int ev.ev_tid);
  Buffer.add_string buf ",\"kind\":";
  buf_add_json_string buf ev.ev_kind;
  Buffer.add_string buf ",\"name\":";
  buf_add_json_string buf ev.ev_name;
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ',';
      buf_add_json_string buf k;
      Buffer.add_char buf ':';
      buf_add_value buf v)
    ev.ev_args;
  Buffer.add_char buf '}';
  Buffer.contents buf

let emit ?(args = []) ~kind ~name () =
  if Atomic.get live_flag then begin
    Mutex.lock trace_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock trace_mutex)
      (fun () ->
        let t0 = match !writer with Some w -> w.w_t0 | None -> process_t0 in
        let ev =
          {
            ev_t = Unix.gettimeofday () -. t0;
            ev_tid = (Domain.self () :> int);
            ev_kind = kind;
            ev_name = name;
            ev_args = args;
          }
        in
        (match !writer with
        | Some w ->
            output_string w.oc (json_of_event ev);
            output_char w.oc '\n';
            (* Flush per line: a killed process still leaves whole lines. *)
            flush w.oc
        | None -> ());
        match !sink with Some f -> f ev | None -> ())
  end

let span p f =
  let c = (slice ()).cells.(phase_index p) in
  let name = phase_name p in
  if Atomic.get live_flag then emit ~kind:"span_begin" ~name ();
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Unix.gettimeofday () -. t0 in
      c.c_spans <- c.c_spans + 1;
      c.c_seconds <- c.c_seconds +. dt;
      let b = bucket_of_seconds dt in
      c.c_histogram.(b) <- c.c_histogram.(b) + 1;
      if Atomic.get live_flag then
        emit ~args:[ ("dur", F dt) ] ~kind:"span_end" ~name ())
    f

(* [record_span p dt] charges an externally-timed duration to phase [p]
   without a second clock read — for hot paths (the serving daemon) that
   already hold [dt]. Emits a lone [span_end] carrying [dur]; the summary's
   orphan-end path attributes it correctly. *)
let record_span p dt =
  let c = (slice ()).cells.(phase_index p) in
  c.c_spans <- c.c_spans + 1;
  c.c_seconds <- c.c_seconds +. dt;
  let b = bucket_of_seconds dt in
  c.c_histogram.(b) <- c.c_histogram.(b) + 1;
  if Atomic.get live_flag then
    emit ~args:[ ("dur", F dt) ] ~kind:"span_end" ~name:(phase_name p) ()

module Trace = struct
  let enable path =
    Mutex.lock trace_mutex;
    (match !writer with
    | Some w -> ( try close_out w.oc with Sys_error _ -> ())
    | None -> ());
    let w = { oc = open_out path; w_t0 = Unix.gettimeofday () } in
    writer := Some w;
    (* Stamp the stream with its identity so merged timelines can correlate
       processes: run_id ties streams of one run together, wall0 aligns
       their clocks. *)
    let run_id, proc = !identity_ref in
    let meta =
      {
        ev_t = 0.;
        ev_tid = (Domain.self () :> int);
        ev_kind = "meta";
        ev_name = "trace_start";
        ev_args =
          [
            ("run_id", S run_id);
            ("proc", S proc);
            ("pid", I (Unix.getpid ()));
            ("wall0", F w.w_t0);
          ];
      }
    in
    output_string w.oc (json_of_event meta);
    output_char w.oc '\n';
    flush w.oc;
    update_live_locked ();
    Mutex.unlock trace_mutex

  let enabled () =
    Mutex.lock trace_mutex;
    let b = !writer <> None in
    Mutex.unlock trace_mutex;
    b

  let flush () =
    Mutex.lock trace_mutex;
    (match !writer with Some w -> ( try flush w.oc with Sys_error _ -> ()) | None -> ());
    Mutex.unlock trace_mutex

  let disable () =
    Mutex.lock trace_mutex;
    (match !writer with
    | Some w -> ( try close_out w.oc with Sys_error _ -> ())
    | None -> ());
    writer := None;
    update_live_locked ();
    Mutex.unlock trace_mutex

  let file_of_env () = Sys.getenv_opt "ACHILLES_TRACE"
end

(* --- reading traces back ---------------------------------------------------- *)

module Json = struct
  type t = Null | Bool of bool | Num of float | Str of string

  exception Bad of string

  (* Minimal recursive-descent parser for the flat objects this module
     writes: {"key": scalar, ...} with string/number/bool/null values. *)
  let parse_line line =
    let n = String.length line in
    let pos = ref 0 in
    let peek () = if !pos < n then Some line.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < n
        && (match line.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false)
      do
        advance ()
      done
    in
    let expect c =
      skip_ws ();
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> raise (Bad (Printf.sprintf "expected %c at %d" c !pos))
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then raise (Bad "unterminated string");
        let c = line.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
            if !pos >= n then raise (Bad "unterminated escape");
            let e = line.[!pos] in
            advance ();
            match e with
            | '"' -> Buffer.add_char buf '"'; go ()
            | '\\' -> Buffer.add_char buf '\\'; go ()
            | '/' -> Buffer.add_char buf '/'; go ()
            | 'n' -> Buffer.add_char buf '\n'; go ()
            | 'r' -> Buffer.add_char buf '\r'; go ()
            | 't' -> Buffer.add_char buf '\t'; go ()
            | 'b' -> Buffer.add_char buf '\b'; go ()
            | 'f' -> Buffer.add_char buf '\012'; go ()
            | 'u' ->
                if !pos + 4 > n then raise (Bad "short \\u escape");
                let hex = String.sub line !pos 4 in
                pos := !pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> raise (Bad "bad \\u escape")
                in
                (* We only emit \u for control chars; decode the BMP point
                   as UTF-8 so round-trips stay lossless. *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end;
                go ()
            | _ -> raise (Bad "bad escape"))
        | c -> Buffer.add_char buf c; go ()
      in
      go ()
    in
    let parse_scalar () =
      skip_ws ();
      match peek () with
      | Some '"' -> Str (parse_string ())
      | Some 't' ->
          if !pos + 4 <= n && String.sub line !pos 4 = "true" then begin
            pos := !pos + 4;
            Bool true
          end
          else raise (Bad "bad literal")
      | Some 'f' ->
          if !pos + 5 <= n && String.sub line !pos 5 = "false" then begin
            pos := !pos + 5;
            Bool false
          end
          else raise (Bad "bad literal")
      | Some 'n' ->
          if !pos + 4 <= n && String.sub line !pos 4 = "null" then begin
            pos := !pos + 4;
            Null
          end
          else raise (Bad "bad literal")
      | Some c when c = '-' || (c >= '0' && c <= '9') ->
          let start = !pos in
          while
            !pos < n
            && (match line.[!pos] with
               | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
               | _ -> false)
          do
            advance ()
          done;
          let s = String.sub line start (!pos - start) in
          (match float_of_string_opt s with
          | Some f -> Num f
          | None -> raise (Bad (Printf.sprintf "bad number %S" s)))
      | _ -> raise (Bad (Printf.sprintf "unexpected input at %d" !pos))
    in
    try
      expect '{';
      skip_ws ();
      let fields = ref [] in
      (match peek () with
      | Some '}' -> advance ()
      | _ ->
          let rec members () =
            let key = (skip_ws (); parse_string ()) in
            expect ':';
            let v = parse_scalar () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> raise (Bad "expected , or }")
          in
          members ());
      skip_ws ();
      if !pos <> n then raise (Bad "trailing garbage");
      Ok (List.rev !fields)
    with Bad msg -> Error msg

  (* Full (nested) JSON values — used by status.json and trace merging.
     [parse_line] above stays the fast path for flat trace lines. *)
  type v =
    | VNull
    | VBool of bool
    | VNum of float
    | VStr of string
    | VArr of v list
    | VObj of (string * v) list

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false)
      do
        advance ()
      done
    in
    let expect c =
      skip_ws ();
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> raise (Bad (Printf.sprintf "expected %c at %d" c !pos))
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then raise (Bad "unterminated string");
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
            if !pos >= n then raise (Bad "unterminated escape");
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' -> Buffer.add_char buf '"'; go ()
            | '\\' -> Buffer.add_char buf '\\'; go ()
            | '/' -> Buffer.add_char buf '/'; go ()
            | 'n' -> Buffer.add_char buf '\n'; go ()
            | 'r' -> Buffer.add_char buf '\r'; go ()
            | 't' -> Buffer.add_char buf '\t'; go ()
            | 'b' -> Buffer.add_char buf '\b'; go ()
            | 'f' -> Buffer.add_char buf '\012'; go ()
            | 'u' ->
                if !pos + 4 > n then raise (Bad "short \\u escape");
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> raise (Bad "bad \\u escape")
                in
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end;
                go ()
            | _ -> raise (Bad "bad escape"))
        | c -> Buffer.add_char buf c; go ()
      in
      go ()
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '"' -> VStr (parse_string ())
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            VObj []
          end
          else begin
            let fields = ref [] in
            let rec members () =
              skip_ws ();
              let key = parse_string () in
              expect ':';
              let v = parse_value () in
              fields := (key, v) :: !fields;
              skip_ws ();
              match peek () with
              | Some ',' -> advance (); members ()
              | Some '}' -> advance ()
              | _ -> raise (Bad "expected , or }")
            in
            members ();
            VObj (List.rev !fields)
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            VArr []
          end
          else begin
            let items = ref [] in
            let rec elements () =
              let v = parse_value () in
              items := v :: !items;
              skip_ws ();
              match peek () with
              | Some ',' -> advance (); elements ()
              | Some ']' -> advance ()
              | _ -> raise (Bad "expected , or ]")
            in
            elements ();
            VArr (List.rev !items)
          end
      | Some 't' ->
          if !pos + 4 <= n && String.sub s !pos 4 = "true" then begin
            pos := !pos + 4;
            VBool true
          end
          else raise (Bad "bad literal")
      | Some 'f' ->
          if !pos + 5 <= n && String.sub s !pos 5 = "false" then begin
            pos := !pos + 5;
            VBool false
          end
          else raise (Bad "bad literal")
      | Some 'n' ->
          if !pos + 4 <= n && String.sub s !pos 4 = "null" then begin
            pos := !pos + 4;
            VNull
          end
          else raise (Bad "bad literal")
      | Some c when c = '-' || (c >= '0' && c <= '9') ->
          let start = !pos in
          while
            !pos < n
            && (match s.[!pos] with
               | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
               | _ -> false)
          do
            advance ()
          done;
          let str = String.sub s start (!pos - start) in
          (match float_of_string_opt str with
          | Some f -> VNum f
          | None -> raise (Bad (Printf.sprintf "bad number %S" str)))
      | _ -> raise (Bad (Printf.sprintf "unexpected input at %d" !pos))
    in
    try
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then raise (Bad "trailing garbage");
      Ok v
    with Bad msg -> Error msg

  let to_string v =
    let buf = Buffer.create 256 in
    let rec go = function
      | VNull -> Buffer.add_string buf "null"
      | VBool b -> Buffer.add_string buf (if b then "true" else "false")
      | VNum f -> buf_add_float buf f
      | VStr s -> buf_add_json_string buf s
      | VArr items ->
          Buffer.add_char buf '[';
          List.iteri
            (fun i item ->
              if i > 0 then Buffer.add_char buf ',';
              go item)
            items;
          Buffer.add_char buf ']'
      | VObj fields ->
          Buffer.add_char buf '{';
          List.iteri
            (fun i (k, item) ->
              if i > 0 then Buffer.add_char buf ',';
              buf_add_json_string buf k;
              Buffer.add_char buf ':';
              go item)
            fields;
          Buffer.add_char buf '}'
    in
    go v;
    Buffer.contents buf

  let mem k = function VObj fields -> List.assoc_opt k fields | _ -> None

  let to_float = function VNum f -> Some f | _ -> None

  let to_str = function VStr s -> Some s | _ -> None
end

module Summary = struct
  type row = {
    row_phase : string;
    self_seconds : float;
    total_seconds : float;
    row_spans : int;
    max_seconds : float;
    row_hist : int array; (* log2-µs histogram of inclusive span durations *)
  }

  type t = {
    wall : float;
    attributed : float;
    rows : row list;
    counters : (string * int) list;
    verdicts : (string * int) list;
    cache_hits : int;
    cache_misses : int;
    events : int;
    kinds : (string * int) list;
  }

  type open_span = { os_name : string; os_start : float; mutable os_child : float }

  let str fields k =
    match List.assoc_opt k fields with Some (Json.Str s) -> Some s | _ -> None

  let num fields k =
    match List.assoc_opt k fields with Some (Json.Num f) -> Some f | _ -> None

  let of_events events =
    let rows : (string, row) Hashtbl.t = Hashtbl.create 16 in
    let row_order : string list ref = ref [] in
    let counters : (string, int) Hashtbl.t = Hashtbl.create 16 in
    let verdicts : (string, int) Hashtbl.t = Hashtbl.create 4 in
    let kinds : (string, int) Hashtbl.t = Hashtbl.create 8 in
    let stacks : (int, open_span list ref) Hashtbl.t = Hashtbl.create 8 in
    let bump tbl k n =
      let cur = try Hashtbl.find tbl k with Not_found -> 0 in
      Hashtbl.replace tbl k (cur + n)
    in
    let cache_hits = ref 0 and cache_misses = ref 0 in
    let n_events = ref 0 in
    let min_t = ref infinity and max_t = ref neg_infinity in
    let main_tid = ref None in
    (* Wall-clock attributed to phases on the main domain = total duration
       of its root (unnested) spans. Nested spans only shift time between
       phases via self-time; they never add to coverage. *)
    let main_root = ref 0. in
    let stack_of tid =
      match Hashtbl.find_opt stacks tid with
      | Some s -> s
      | None ->
          let s = ref [] in
          Hashtbl.add stacks tid s;
          s
    in
    let add_span tid name ~dur ~self =
      let self = Float.max 0. self in
      let r =
        match Hashtbl.find_opt rows name with
        | Some r -> r
        | None ->
            row_order := name :: !row_order;
            {
              row_phase = name;
              self_seconds = 0.;
              total_seconds = 0.;
              row_spans = 0;
              max_seconds = 0.;
              row_hist = Array.make histogram_buckets 0;
            }
      in
      let b = bucket_of_seconds (Float.max 0. dur) in
      r.row_hist.(b) <- r.row_hist.(b) + 1;
      Hashtbl.replace rows name
        {
          r with
          self_seconds = r.self_seconds +. self;
          total_seconds = r.total_seconds +. dur;
          row_spans = r.row_spans + 1;
          max_seconds = Float.max r.max_seconds dur;
        };
      let stack = stack_of tid in
      match !stack with
      | parent :: _ -> parent.os_child <- parent.os_child +. dur
      | [] -> if Some tid = !main_tid then main_root := !main_root +. dur
    in
    List.iter
      (fun fields ->
        let t = Option.value ~default:0. (num fields "t") in
        let tid =
          int_of_float (Option.value ~default:0. (num fields "tid"))
        in
        let kind = Option.value ~default:"" (str fields "kind") in
        let name = Option.value ~default:"" (str fields "name") in
        incr n_events;
        if t < !min_t then min_t := t;
        if t > !max_t then max_t := t;
        if !main_tid = None then main_tid := Some tid;
        bump kinds kind 1;
        match kind with
        | "span_begin" ->
            let stack = stack_of tid in
            stack := { os_name = name; os_start = t; os_child = 0. } :: !stack
        | "span_end" -> (
            let stack = stack_of tid in
            match !stack with
            | top :: rest when top.os_name = name ->
                stack := rest;
                let dur =
                  match num fields "dur" with
                  | Some d -> d
                  | None -> t -. top.os_start
                in
                add_span tid name ~dur ~self:(dur -. top.os_child)
            | _ ->
                (* Orphaned end (trace truncated at the front): count the
                   span from its own dur field when present. *)
                let dur = Option.value ~default:0. (num fields "dur") in
                add_span tid name ~dur ~self:dur)
        | "counter" ->
            let n =
              int_of_float (Option.value ~default:1. (num fields "n"))
            in
            bump counters name n
        | "solver" when name = "verdict" ->
            let r = Option.value ~default:"?" (str fields "result") in
            bump verdicts r 1
        | "cache" ->
            if name = "hit" then incr cache_hits
            else if name = "miss" then incr cache_misses
        | _ -> ())
      events;
    (* Close spans the run never finished (killed mid-run) at the last
       timestamp, innermost first so child time propagates outward. *)
    let last = if !max_t = neg_infinity then 0. else !max_t in
    Hashtbl.iter
      (fun tid stack ->
        List.iter
          (fun os ->
            let stack' = stack_of tid in
            (match !stack' with
            | top :: rest when top == os -> stack' := rest
            | _ -> ());
            let dur = Float.max 0. (last -. os.os_start) in
            add_span tid os.os_name ~dur ~self:(dur -. os.os_child))
          !stack)
      stacks;
    let wall =
      if !max_t = neg_infinity || !min_t = infinity then 0.
      else !max_t -. !min_t
    in
    let sorted tbl =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    {
      wall;
      attributed = (if wall > 0. then Float.min 1. (!main_root /. wall) else 1.);
      rows = List.rev_map (Hashtbl.find rows) !row_order;
      counters = sorted counters;
      verdicts = sorted verdicts;
      cache_hits = !cache_hits;
      cache_misses = !cache_misses;
      events = !n_events;
      kinds = sorted kinds;
    }

  let load path =
    match open_in path with
    | exception Sys_error msg -> Error msg
    | ic ->
        let events = ref [] in
        let lineno = ref 0 in
        let err = ref None in
        (try
           while !err = None do
             let line = input_line ic in
             incr lineno;
             if String.trim line <> "" then
               match Json.parse_line line with
               | Ok fields -> events := fields :: !events
               | Error msg ->
                   err := Some (Printf.sprintf "%s:%d: %s" path !lineno msg)
           done
         with End_of_file -> ());
        close_in ic;
        (match !err with
        | Some e -> Error e
        | None -> Ok (of_events (List.rev !events)))
end

module Chrome = struct
  (* Chrome trace-event format: span_begin/span_end map to "B"/"E" duration
     events, everything else to instant events, all timestamps in µs. *)

  let emit_event oc buf ~first ~pid ~toffset fields =
    let t = Option.value ~default:0. (Summary.num fields "t") +. toffset in
    let tid =
      int_of_float (Option.value ~default:0. (Summary.num fields "tid"))
    in
    let kind = Option.value ~default:"" (Summary.str fields "kind") in
    let name = Option.value ~default:"event" (Summary.str fields "name") in
    let ph, nm =
      match kind with
      | "span_begin" -> ("B", name)
      | "span_end" -> ("E", name)
      | _ -> ("i", kind ^ ":" ^ name)
    in
    Buffer.clear buf;
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf "{\"name\":";
    buf_add_json_string buf nm;
    Buffer.add_string buf ",\"cat\":";
    buf_add_json_string buf kind;
    Buffer.add_string buf
      (Printf.sprintf ",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d" ph
         (t *. 1e6) pid tid);
    if ph = "i" then Buffer.add_string buf ",\"s\":\"t\"";
    let extra =
      List.filter
        (fun (k, _) -> not (List.mem k [ "t"; "tid"; "kind"; "name" ]))
        fields
    in
    if extra <> [] then begin
      Buffer.add_string buf ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          buf_add_json_string buf k;
          Buffer.add_char buf ':';
          match v with
          | Json.Null -> Buffer.add_string buf "null"
          | Json.Bool b -> Buffer.add_string buf (if b then "true" else "false")
          | Json.Num f -> buf_add_float buf f
          | Json.Str s -> buf_add_json_string buf s)
        extra;
      Buffer.add_char buf '}'
    end;
    Buffer.add_char buf '}';
    output_string oc (Buffer.contents buf)

  let emit_process_name oc buf ~first ~pid name =
    Buffer.clear buf;
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf
      (Printf.sprintf "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":"
         pid);
    buf_add_json_string buf name;
    Buffer.add_string buf "}}";
    output_string oc (Buffer.contents buf)

  let export ~src ~dst =
    match open_in src with
    | exception Sys_error msg -> Error msg
    | ic -> (
        match open_out dst with
        | exception Sys_error msg ->
            close_in ic;
            Error msg
        | oc ->
            let buf = Buffer.create 256 in
            let first = ref true in
            let err = ref None in
            let lineno = ref 0 in
            output_string oc "{\"traceEvents\":[\n";
            (try
               while !err = None do
                 let line = input_line ic in
                 incr lineno;
                 if String.trim line <> "" then
                   match Json.parse_line line with
                   | Ok fields ->
                       emit_event oc buf ~first ~pid:0 ~toffset:0. fields
                   | Error msg ->
                       err :=
                         Some (Printf.sprintf "%s:%d: %s" src !lineno msg)
               done
             with End_of_file -> ());
            output_string oc "\n]}\n";
            close_in ic;
            close_out oc;
            (match !err with Some e -> Error e | None -> Ok ()))

  (* One stream's meta identity as read back from its trace_start line. *)
  type stream_meta = {
    sm_run_id : string option;
    sm_proc : string option;
    sm_wall0 : float option;
  }

  let load_stream src =
    match open_in src with
    | exception Sys_error msg -> Error msg
    | ic ->
        let events = ref [] in
        let lineno = ref 0 in
        let err = ref None in
        (try
           while !err = None do
             let line = input_line ic in
             incr lineno;
             if String.trim line <> "" then
               match Json.parse_line line with
               | Ok fields -> events := fields :: !events
               | Error msg ->
                   err := Some (Printf.sprintf "%s:%d: %s" src !lineno msg)
           done
         with End_of_file -> ());
        close_in ic;
        (match !err with
        | Some e -> Error e
        | None ->
            let events = List.rev !events in
            let meta =
              List.find_opt
                (fun fields ->
                  Summary.str fields "kind" = Some "meta"
                  && Summary.str fields "name" = Some "trace_start")
                events
            in
            let get f k = Option.bind meta (fun m -> f m k) in
            Ok
              ( events,
                {
                  sm_run_id =
                    (match get Summary.str "run_id" with
                    | Some "" -> None
                    | other -> other);
                  sm_proc = get Summary.str "proc";
                  sm_wall0 = get Summary.num "wall0";
                } ))

  (* Merge several JSONL trace streams (coordinator + workers) into one
     Chrome timeline: one pid per stream, clocks aligned via each stream's
     wall0, and an error if streams carry distinct run_ids. *)
  let merge ~srcs ~dst =
    let exception Fail of string in
    try
      let streams =
        List.map
          (fun src ->
            match load_stream src with
            | Ok (events, meta) -> (src, events, meta)
            | Error msg -> raise (Fail msg))
          srcs
      in
      if streams = [] then raise (Fail "no trace files to merge");
      let run_ids =
        List.filter_map (fun (_, _, m) -> m.sm_run_id) streams
        |> List.sort_uniq String.compare
      in
      (match run_ids with
      | [] | [ _ ] -> ()
      | ids ->
          raise
            (Fail
               (Printf.sprintf "traces belong to different runs: %s"
                  (String.concat ", " ids))));
      let base =
        List.filter_map (fun (_, _, m) -> m.sm_wall0) streams
        |> List.fold_left Float.min infinity
      in
      (match open_out dst with
      | exception Sys_error msg -> raise (Fail msg)
      | oc ->
          let buf = Buffer.create 256 in
          let first = ref true in
          output_string oc "{\"traceEvents\":[\n";
          List.iteri
            (fun pid (src, events, meta) ->
              let proc =
                match meta.sm_proc with
                | Some p -> p
                | None -> Filename.remove_extension (Filename.basename src)
              in
              emit_process_name oc buf ~first ~pid proc;
              let toffset =
                match meta.sm_wall0 with
                | Some w when base < infinity -> w -. base
                | _ -> 0.
              in
              List.iter (emit_event oc buf ~first ~pid ~toffset) events)
            streams;
          output_string oc "\n]}\n";
          close_out oc);
      Ok (List.length streams, match run_ids with [ id ] -> Some id | _ -> None)
    with Fail msg -> Error msg
end
