(** An HTTP-style key-value store exercising §5.1's automatic accept/reject
    classification: the server carries no markers — every request gets a
    reply whose status byte says 2xx or 4xx, and
    {!Achilles_symvm.Interp.classify_by_status} classifies the paths.

    Request: method(1: 1=GET, 2=PUT) key(2) value(2) token(2).
    Reply: status(1: 2=2xx, 4=4xx) body(2).

    Two planted Trojan families: the server never validates [token] (while
    clients always send the deployment secret), and it serves any key below
    [server_key_space] while clients are configured with the smaller
    [client_key_space]. *)

open Achilles_smt
open Achilles_symvm

val method_get : int
val method_put : int
val secret_token : int
val client_key_space : int
val server_key_space : int
val message_size : int
val reply_size : int
val layout : Layout.t
val analysis_mask : string list
val client : Ast.program
val server : Ast.program

val auto_classifier : State.t -> State.status option
(** [classify_by_status] on the reply's status byte, accepting 2xx. *)

val is_trojan : Bv.t array -> bool
