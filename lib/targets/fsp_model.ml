(* Model of the File Service Protocol (FSP) as analyzed in §6.1-§6.3.

   The message format follows the paper: cmd(1) sum(1) bb_key(2) bb_seq(2)
   bb_len(2) bb_pos(4) buf(5). As in the evaluation setup, the sum, bb_key,
   bb_seq and bb_pos checks are approximated with annotations: the clients
   write a predefined constant and the server checks that constant, and the
   analysis masks those fields. File paths are bounded to fewer than 5
   characters (buf holds up to 4 path bytes plus the NUL terminator), which
   lets symbolic execution run to completion exactly as in §6.2.

   Client behaviour: each of the 8 client utilities reads one path argument,
   computes its length (the first NUL), validates every character as
   printable ASCII (33..126), writes bb_len = length and copies the argument
   buffer into the message verbatim — so the bytes after the terminator are
   whatever the (symbolic) argument buffer held, like the uninitialized
   trailing bytes a real client leaks.

   Server behaviour: validates the approximated header fields, requires
   1 <= bb_len <= 4, requires every buf byte to be NUL-or-printable (a
   single branch per byte, like the C server's validation loop), requires a
   NUL terminator at position bb_len, and dispatches on cmd. Crucially it
   never checks that the first NUL is *at* bb_len — the mismatched-length
   bug of §6.3: messages with an early NUL (true length < bb_len) are
   accepted yet no client generates them. Those are the 80 ground-truth
   Trojan message types of §6.2: 8 commands x (1+2+3+4) (reported length,
   true length) combinations. *)

open Achilles_symvm

let max_path = 4 (* paths are bounded to length < 5, as in the paper *)
let buf_size = max_path + 1
let message_size = 12 + buf_size

(* The magic constants standing in for the checksum/key/sequence/position
   machinery bypassed with annotations (§6.1). *)
let sum_const = 0x5A
let key_const = 0x1234
let seq_const = 0x0001
let pos_const = 0

let printable_min = 33
let printable_max = 126
let wildcard = Char.code '*'

type command = {
  cmd_name : string;
  code : int;
  globs_argument : bool;
      (* does the client expand wildcards in this argument before sending? *)
}

(* Eight client utilities with a single file-path argument (§6.2). *)
let commands =
  [
    { cmd_name = "get"; code = 0x10; globs_argument = true };
    { cmd_name = "put"; code = 0x11; globs_argument = true };
    { cmd_name = "del"; code = 0x12; globs_argument = true };
    { cmd_name = "cat"; code = 0x13; globs_argument = true };
    { cmd_name = "stat"; code = 0x14; globs_argument = true };
    { cmd_name = "grab"; code = 0x15; globs_argument = true };
    { cmd_name = "mkdir"; code = 0x16; globs_argument = true };
    { cmd_name = "rmdir"; code = 0x17; globs_argument = true };
  ]

let command_of_code code = List.find_opt (fun c -> c.code = code) commands

(* A scaled-up command set for stress experiments (§6.4 ablation at a size
   where differencing costs dominate): the 8 real utilities plus synthetic
   single-path-argument ones. *)
let extended_commands n =
  List.init n (fun i ->
      match List.nth_opt commands i with
      | Some c -> c
      | None ->
          {
            cmd_name = Printf.sprintf "cmd%02x" (0x10 + i);
            code = 0x10 + i;
            globs_argument = true;
          })

let layout =
  Layout.make ~name:"fsp"
    [
      ("cmd", 1);
      ("sum", 1);
      ("bb_key", 2);
      ("bb_seq", 2);
      ("bb_len", 2);
      ("bb_pos", 4);
      ("buf", buf_size);
    ]

let analysis_mask = [ "cmd"; "bb_len"; "buf" ]

let buf_offset = (Layout.field layout "buf").Layout.offset

(* --- client ------------------------------------------------------------- *)

(* A client utility: read the path argument into [arg], validate it, build
   the command message. [model_globbing] decides whether the utility also
   refuses to transmit '*' (because a real client expands wildcards before
   sending, no message with a literal '*' in a globbed argument can ever
   leave a correct client). *)
let client ?(model_globbing = false) command =
  let open Builder in
  let set_field name value = Layout.store_field layout name ~buf:"msg" ~value in
  let validate_char e =
    let printable = e >=: i8 printable_min &&: (e <=: i8 printable_max) in
    if model_globbing && command.globs_argument then
      printable &&: (e <>: i8 wildcard)
    else printable
  in
  let parse_and_validate =
    [
      (* the command-line argument, as unconstrained symbolic bytes *)
      make_buffer_symbolic "arg";
      (* find the path length = offset of the first NUL; reject non-printable
         characters on the way, and paths that fill the whole buffer *)
      set "plen" (i32 buf_size);
      set "i" (i32 0);
      while_
        (v "i" <: i32 buf_size)
        [
          if_
            (v "plen" =: i32 buf_size)
            [
              if_
                (load "arg" (v "i") =: i8 0)
                [ set "plen" (v "i") ]
                [
                  when_
                    (not_ (validate_char (load "arg" (v "i"))))
                    [ halt (* invalid character: exit(1) *) ];
                ];
            ]
            [];
          set "i" (v "i" +: i32 1);
        ];
      when_ (v "plen" =: i32 buf_size) [ halt (* path too long: exit(1) *) ];
      when_ (v "plen" =: i32 0) [ halt (* empty path: nothing to do *) ];
      (* copy the argument buffer verbatim into the message payload
         (terminator and trailing garbage included) *)
      set "j" (i32 0);
      while_
        (v "j" <: i32 buf_size)
        [
          store "msg" (i32 buf_offset +: v "j") (load "arg" (v "j"));
          set "j" (v "j" +: i32 1);
        ];
    ]
  in
  prog
    (Printf.sprintf "fsp-%s%s" command.cmd_name
       (if model_globbing then "-glob" else ""))
    ~buffers:[ ("arg", buf_size); ("msg", message_size) ]
    (List.concat
       [
         parse_and_validate;
         set_field "cmd" (i8 command.code);
         set_field "sum" (i8 sum_const);
         set_field "bb_key" (i16 key_const);
         set_field "bb_seq" (i16 seq_const);
         set_field "bb_len" (cast 16 (v "plen"));
         set_field "bb_pos" (i32 pos_const);
         [ send (i8 0) "msg"; halt ];
       ])

let clients ?model_globbing ?(command_set = commands) () =
  List.map (fun c -> client ?model_globbing c) command_set

(* --- server ---------------------------------------------------------------- *)

let server_for command_set =
  let open Builder in
  let field name = Layout.field_expr layout name ~buf:"msg" in
  let buf_byte e = load "msg" (i32 buf_offset +: e) in
  prog "fsp-server"
    ~buffers:[ ("msg", message_size); ("reply", 2) ]
    [
      receive "msg";
      (* approximated checksum/key/sequence/position validation (§6.1) *)
      when_ (field "sum" <>: i8 sum_const) [ mark_reject "bad-sum" ];
      when_ (field "bb_key" <>: i16 key_const) [ mark_reject "bad-key" ];
      when_ (field "bb_seq" <>: i16 seq_const) [ mark_reject "bad-seq" ];
      when_ (field "bb_pos" <>: i32 pos_const) [ mark_reject "bad-pos" ];
      set "len" (field "bb_len");
      when_ (v "len" <: i16 1) [ mark_reject "len-zero" ];
      when_ (v "len" >: i16 max_path) [ mark_reject "len-too-big" ];
      (* every payload byte must be NUL or printable — one branch per byte,
         so valid messages and early-NUL Trojans share the same path *)
      set "k" (i32 0);
      while_
        (v "k" <: i32 buf_size)
        [
          set "c" (buf_byte (v "k"));
          when_
            (not_
               (v "c" =: i8 0
               ||: (v "c" >=: i8 printable_min &&: (v "c" <=: i8 printable_max))
               ))
            [ mark_reject "bad-char" ];
          set "k" (v "k" +: i32 1);
        ];
      (* terminator must sit at the reported length; nothing checks that the
         first NUL is not EARLIER — the mismatched-length bug (§6.3) *)
      when_ (buf_byte (cast 32 (v "len")) <>: i8 0) [ mark_reject "no-term" ];
      switch (field "cmd")
        (List.map
           (fun c ->
             ( c.code,
               [
                 store "reply" (i8 0) (i8 c.code);
                 send (i8 1) "reply";
                 mark_accept c.cmd_name;
               ] ))
           command_set)
        ~default:[ mark_reject "bad-cmd" ];
    ]

let server = server_for commands

(* --- ground truth (§6.2) ----------------------------------------------------- *)

open Achilles_smt

type trojan_class = { class_cmd : int; reported_len : int; true_len : int }

(* The 80 Trojan message types: 8 commands x (reported length 1..4) x
   (true length 0..reported-1). *)
let all_trojan_classes =
  List.concat_map
    (fun c ->
      List.concat_map
        (fun reported_len ->
          List.init reported_len (fun true_len ->
              { class_cmd = c.code; reported_len; true_len }))
        [ 1; 2; 3; 4 ])
    commands

let is_printable b =
  let x = Bv.to_int b in
  x >= printable_min && x <= printable_max

let is_nul b = Bv.equal b (Bv.zero 8)

(* Re-implementation of the server's acceptance logic in plain OCaml,
   used as the experiments' oracle. *)
type verdict = Rejected | Valid of trojan_class | Trojan of trojan_class

let classify bytes =
  let fv name = Layout.field_value layout bytes name in
  let cmd = Bv.to_int (fv "cmd") in
  let len = Bv.to_int (fv "bb_len") in
  let ok_headers =
    Bv.to_int (fv "sum") = sum_const
    && Bv.to_int (fv "bb_key") = key_const
    && Bv.to_int (fv "bb_seq") = seq_const
    && Bv.to_int (fv "bb_pos") = pos_const
  in
  let buf = Layout.field_bytes layout bytes "buf" in
  let bytes_ok = Array.for_all (fun b -> is_nul b || is_printable b) buf in
  if
    (not ok_headers) || len < 1 || len > max_path || (not bytes_ok)
    || (not (is_nul buf.(len)))
    || command_of_code cmd = None
  then Rejected
  else begin
    let rec first_nul i = if i >= len then len else if is_nul buf.(i) then i else first_nul (i + 1) in
    let true_len = first_nul 0 in
    let cls = { class_cmd = cmd; reported_len = len; true_len } in
    if true_len < len then Trojan cls else Valid cls
  end

(* With wildcard-aware clients, any accepted message containing '*' in the
   effective path is also a Trojan (§6.3, the wildcard bug). *)
let contains_wildcard bytes =
  let buf = Layout.field_bytes layout bytes "buf" in
  let len = Bv.to_int (Layout.field_value layout bytes "bb_len") in
  let rec go i =
    if i >= min len (Array.length buf) then false
    else if is_nul buf.(i) then false
    else Bv.to_int buf.(i) = wildcard || go (i + 1)
  in
  go 0

let classify_with_globbing bytes =
  match classify bytes with
  | Valid cls when contains_wildcard bytes -> Trojan cls
  | verdict -> verdict

(* Blocking-constraint generator for witness enumeration: block the whole
   (cmd, reported length, true length) class of the witness so the next
   solver call must produce a different class. *)
let block_class witness vars =
  let server_bytes = Array.map Term.var vars in
  let fterm name = Layout.field_term layout server_bytes name in
  let cmd = Layout.field_value layout witness "cmd" in
  let len = Bv.to_int (Layout.field_value layout witness "bb_len") in
  let buf_terms = Layout.field_bytes layout server_bytes "buf" in
  let buf_vals = Layout.field_bytes layout witness "buf" in
  let rec first_nul i =
    if i >= len then len else if is_nul buf_vals.(i) then i else first_nul (i + 1)
  in
  let t = first_nul 0 in
  let zero8 = Term.int ~width:8 0 in
  let nul_pattern =
    (* first NUL of the payload prefix is exactly at position t *)
    let nonzero_prefix =
      List.init t (fun i -> Term.neq buf_terms.(i) zero8)
    in
    if t < len then Term.and_l (Term.eq buf_terms.(t) zero8 :: nonzero_prefix)
    else Term.and_l nonzero_prefix
  in
  Term.not_
    (Term.and_l
       [
         Term.eq (fterm "cmd") (Term.const cmd);
         Term.eq (fterm "bb_len") (Term.int ~width:16 len);
         nul_pattern;
       ])

let class_of_witness witness =
  match classify witness with
  | Trojan cls | Valid cls -> Some cls
  | Rejected -> None

let pp_class fmt cls =
  let name =
    match command_of_code cls.class_cmd with
    | Some c -> c.cmd_name
    | None -> Printf.sprintf "0x%02x" cls.class_cmd
  in
  Format.fprintf fmt "%s: reported len %d, true len %d" name cls.reported_len
    cls.true_len
