(** Model of the File Service Protocol (FSP) as analyzed in §6.1-§6.3.

    Message format (as in the paper): cmd(1) sum(1) bb_key(2) bb_seq(2)
    bb_len(2) bb_pos(4) buf(5). The sum/key/seq/pos checks are approximated
    with constants on both sides (the paper's annotation bypass), file
    paths are bounded below 5 characters so symbolic execution completes
    (§6.2), and the analysis masks to cmd/bb_len/buf.

    Both §6.3 bugs are present:
    - {b mismatched lengths}: the server accepts a NUL before the reported
      [bb_len] — the 80 ground-truth Trojan types of §6.2 (8 commands x
      (1+2+3+4) (reported, true) length combinations);
    - {b the wildcard}: '*' is printable so the server takes it, while
      wildcard-aware clients ([model_globbing:true]) can never transmit one
      in a globbed argument. *)

open Achilles_smt
open Achilles_symvm

val max_path : int
val buf_size : int
val message_size : int
val sum_const : int
val key_const : int
val seq_const : int
val pos_const : int
val printable_min : int
val printable_max : int
val wildcard : int

type command = {
  cmd_name : string;
  code : int;
  globs_argument : bool;
      (** does the client expand wildcards in this argument before
          sending? *)
}

val commands : command list
(** The eight single-path-argument utilities of §6.2. *)

val command_of_code : int -> command option

val extended_commands : int -> command list
(** The real utilities plus synthetic ones, for stress experiments (the
    §6.4 ablation at a scale where differencing costs dominate). *)

val layout : Layout.t
val analysis_mask : string list
val buf_offset : int

val client : ?model_globbing:bool -> command -> Ast.program
val clients : ?model_globbing:bool -> ?command_set:command list -> unit -> Ast.program list
val server_for : command list -> Ast.program
val server : Ast.program

(** {1 Ground truth (§6.2)} *)

type trojan_class = { class_cmd : int; reported_len : int; true_len : int }

val all_trojan_classes : trojan_class list
(** Exactly the 80 types. *)

type verdict = Rejected | Valid of trojan_class | Trojan of trojan_class

val classify : Bv.t array -> verdict
(** The experiments' oracle: a plain-OCaml re-implementation of the
    server's acceptance logic plus the length-mismatch Trojan test. *)

val contains_wildcard : Bv.t array -> bool
val classify_with_globbing : Bv.t array -> verdict
(** Like {!classify}, but accepted messages carrying '*' in the effective
    path are Trojan too (for wildcard-aware client sets). *)

val block_class : Bv.t array -> Term.var array -> Term.t
(** Blocking-constraint generator for witness enumeration: excludes the
    whole (cmd, reported length, true length) class of the witness. *)

val class_of_witness : Bv.t array -> trojan_class option
val pp_class : Format.formatter -> trojan_class -> unit
