(* Model of a PBFT client request and replica, following §6.1.

   Message format (sizes as in the paper, with the variable-length command
   and authenticator list fixed for the analysis): tag(2) extra(2) size(4)
   od(16) replier(2) command_size(2) cid(2) rid(2) command(4) mac(8).

   As in the paper's setup, the digest [od] and the MAC authenticators are
   approximated with predefined constants on the client side (annotation
   bypass of the crypto), and the replica's local request-history data
   structure is over-approximated with unconstrained symbolic state.

   The replica checks the tag, the sizes, the digest, that the client id is
   known, and that the request id is fresh — but it never verifies the MAC
   authenticators. Since correct clients always emit the (approximated)
   valid authenticator bytes, every request with a different MAC is a
   Trojan message: the MAC attack of Clement et al., rediscovered exactly
   as in §6.3. *)

open Achilles_symvm

let tag_request = 0x0001
let n_replicas = 4
let n_clients = 4
let command_bytes = 4
let mac_bytes = 2 * n_replicas
let message_size = 2 + 2 + 4 + 16 + 2 + 2 + 2 + 2 + command_bytes + mac_bytes

let digest_byte = 0xD1 (* the approximated digest constant *)
let mac_byte = 0xAC (* the approximated valid-authenticator constant *)

let layout =
  Layout.make ~name:"pbft-request"
    [
      ("tag", 2);
      ("extra", 2);
      ("size", 4);
      ("od", 16);
      ("replier", 2);
      ("command_size", 2);
      ("cid", 2);
      ("rid", 2);
      ("command", command_bytes);
      ("mac", mac_bytes);
    ]

(* od and mac are multi-byte constant blocks; negate handles them as whole
   fields, but od is 16 bytes > 64 bits, so the analysis masks it the same
   way the paper does (the digest is approximated and uninteresting). *)
let analysis_mask =
  [ "tag"; "extra"; "size"; "replier"; "command_size"; "cid"; "rid";
    "command"; "mac" ]

let store_byte_range ~buf ~field ~value =
  let open Builder in
  fun layout_ ->
    let f = Layout.field layout_ field in
    List.init f.Layout.size (fun i ->
        store buf (i32 (f.Layout.offset + i)) (i8 value))

(* --- client ---------------------------------------------------------------- *)

let client =
  let open Builder in
  let set_field name value = Layout.store_field layout name ~buf:"req" ~value in
  let fill field value = store_byte_range ~buf:"req" ~field ~value layout in
  prog "pbft-client"
    ~buffers:[ ("req", message_size) ]
    (List.concat
       [
         [
           (* a correct client has one of the configured identities *)
           make_symbolic "my_cid" ~width:16;
           assume (v "my_cid" <: i16 n_clients);
           (* the request id, command payload, responsible-replica choice and
              flags all come from the upper layer: unconstrained inputs *)
           read_input "my_rid" ~width:16;
           read_input "flags" ~width:16;
           read_input "want_replier" ~width:16;
           read_input "payload" ~width:(8 * command_bytes);
         ];
         set_field "tag" (i16 tag_request);
         set_field "extra" (v "flags");
         set_field "size" (i32 message_size);
         fill "od" digest_byte;
         set_field "replier" (v "want_replier");
         set_field "command_size" (i16 command_bytes);
         set_field "cid" (v "my_cid");
         set_field "rid" (v "my_rid");
         set_field "command" (v "payload");
         (* authenticators: the approximated signing constant — a correct
            client can only ever produce these bytes *)
         fill "mac" mac_byte;
         [ send (i16 0) "req"; halt ];
       ])

(* --- replica ---------------------------------------------------------------- *)

(* [last_rid] stands for the replica's per-client request-history structure;
   the analysis over-approximates it with unconstrained symbolic state
   (Local_state.over_approximate), per §6.1. *)
let replica =
  let open Builder in
  let field name = Layout.field_expr layout name ~buf:"req" in
  let od_byte i =
    load "req" (i32 ((Layout.field layout "od").Layout.offset + i))
  in
  let check_od =
    List.init 16 (fun i ->
        when_ (od_byte i <>: i8 digest_byte) [ mark_reject "bad-digest" ])
  in
  prog "pbft-replica"
    ~globals:[ ("last_rid", 16) ]
    ~buffers:[ ("req", message_size); ("pre_prepare", 4) ]
    (List.concat
       [
         [
           receive "req";
           when_ (field "tag" <>: i16 tag_request) [ mark_reject "bad-tag" ];
           when_ (field "size" <>: i32 message_size) [ mark_reject "bad-size" ];
           when_
             (field "command_size" <>: i16 command_bytes)
             [ mark_reject "bad-command-size" ];
         ];
         check_od;
         [
           (* known client? *)
           when_ (field "cid" >=: i16 n_clients) [ mark_reject "unknown-client" ];
           (* request id must be fresh w.r.t. the (over-approximated)
              history *)
           when_ (field "rid" <=: v "last_rid") [ mark_reject "stale-rid" ];
           set "last_rid" (field "rid");
           (* NOTE the missing check: the MAC authenticators are never
              verified before the request enters the agreement protocol *)
           if_
             ((field "extra" &: i16 1) <>: i16 0)
             [
               (* read-only requests are executed directly *)
               store "pre_prepare" (i32 0) (i8 2);
               send (i16 1) "pre_prepare";
               mark_accept "read-only";
             ]
             [
               (* generate the Pre_prepare, starting agreement (§6.1's
                  acceptance point) *)
               store "pre_prepare" (i32 0) (i8 1);
               send (i16 1) "pre_prepare";
               mark_accept "pre-prepare";
             ];
         ];
       ])

(* --- ground truth ------------------------------------------------------------ *)

open Achilles_smt

(* Accepted by the replica (given some reachable history state)? *)
let replica_accepts ?(last_rid = 0) bytes =
  let fv name = Layout.field_value layout bytes name in
  let od = Layout.field_bytes layout bytes "od" in
  Bv.to_int (fv "tag") = tag_request
  && Bv.to_int (fv "size") = message_size
  && Bv.to_int (fv "command_size") = command_bytes
  && Array.for_all (fun b -> Bv.to_int b = digest_byte) od
  && Bv.to_int (fv "cid") < n_clients
  && Bv.to_int (fv "rid") > last_rid

let has_valid_mac bytes =
  Array.for_all
    (fun b -> Bv.to_int b = mac_byte)
    (Layout.field_bytes layout bytes "mac")

(* A Trojan request: accepted, yet carrying authenticator bytes no correct
   client can produce. *)
let is_mac_trojan bytes = replica_accepts bytes && not (has_valid_mac bytes)
