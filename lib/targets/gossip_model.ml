(* The paper's opening example (§1), modeled: Amazon S3's 2008 outage was
   caused by gossip messages whose "system state information was incorrect"
   — a single corrupted bit made servers exchange failure reports that no
   correct node could have produced, and the receivers merged them anyway.

   Here, reporter nodes observe failure events and gossip their failure
   count to an aggregator. The aggregator checks the message framing but
   never asks whether the reported count is plausible; it merges whatever
   arrives and switches the system into emergency mode when the merged
   count crosses a threshold.

   §3.4's Concrete Local State mode is what finds the Trojan: in a
   deployment that has seen exactly [k] failures, every correct reporter's
   counter equals [k], so a report with any other count is a Trojan for
   that scenario — "no correct client node can report high failure rates,
   yet the servers accept such messages".

   Message: mtype(1: 1=failure-event, 2=report) reporter(1) count(1)
   epoch(2). *)

open Achilles_symvm

let msg_failure_event = 1
let msg_report = 2
let cluster_size = 16
let n_reporters = 4
let current_epoch = 7
let emergency_threshold = 8
let message_size = 5

let layout =
  Layout.make ~name:"gossip"
    [ ("mtype", 1); ("reporter", 1); ("count", 1); ("epoch", 2) ]

let analysis_mask = [ "mtype"; "reporter"; "count"; "epoch" ]

(* The deployment prefix: a reporter consuming the failure events it has
   observed so far. Run concretely (Local_state.concrete), it leaves the
   observation counter in the reporter's local state. *)
let reporter_prefix =
  let open Builder in
  prog "gossip-reporter-prefix"
    ~globals:[ ("observed_failures", 8) ]
    ~buffers:[ ("event", message_size) ]
    [
      while_ (i8 1)
        [
          receive "event";
          when_
            (load "event" (i8 0) =: i8 msg_failure_event)
            [ set "observed_failures" (v "observed_failures" +: i8 1) ];
        ];
    ]

let failure_event =
  let open Achilles_smt in
  let bytes = Array.make message_size (Bv.zero 8) in
  bytes.(0) <- Bv.of_int ~width:8 msg_failure_event;
  bytes

(* The reporter (client side of the analyzed exchange): gossips its current
   counter. The counter is local state — under Concrete Local State it is a
   concrete value, making the count field a constant the negate operator
   can work with (§3.2, case 1). *)
let reporter =
  let open Builder in
  let set_field name value = Layout.store_field layout name ~buf:"report" ~value in
  prog "gossip-reporter"
    ~globals:[ ("observed_failures", 8) ]
    ~buffers:[ ("report", message_size) ]
    (List.concat
       [
         [
           make_symbolic "me" ~width:8;
           assume (v "me" <: i8 n_reporters);
         ];
         set_field "mtype" (i8 msg_report);
         set_field "reporter" (cast 8 (v "me"));
         set_field "count" (v "observed_failures");
         set_field "epoch" (i16 current_epoch);
         [ send (i8 0) "report"; halt ];
       ])

(* The aggregator: framing checks only — the count's plausibility is never
   questioned. Emergency mode trips on the merged count. *)
let aggregator ?(hardened = false) () =
  let open Builder in
  let field name = Layout.field_expr layout name ~buf:"msg" in
  prog (if hardened then "gossip-aggregator-hardened" else "gossip-aggregator")
    ~globals:[ ("merged_count", 8); ("emergency", 8) ]
    ~buffers:[ ("msg", message_size); ("ack", 1) ]
    (List.concat
       [
         [
           receive "msg";
           when_ (field "mtype" <>: i8 msg_report) [ mark_reject "bad-type" ];
           when_
             (field "reporter" >=: i8 n_reporters)
             [ mark_reject "unknown-reporter" ];
           when_
             (field "epoch" <>: i16 current_epoch)
             [ mark_reject "stale-epoch" ];
         ];
         (if hardened then
            [
              (* the post-mortem fix: "log any such messages and then
                 reject them" — counts beyond the cluster size are
                 impossible *)
              when_
                (field "count" >: i8 cluster_size)
                [ mark_reject "implausible-count" ];
            ]
          else []);
         [
           set "merged_count" (field "count");
           when_
             (v "merged_count" >=: i8 emergency_threshold)
             [ set "emergency" (i8 1) ];
           send (field "reporter") "ack";
           mark_accept "merged";
         ];
       ])

open Achilles_smt

(* Ground truth for the concrete scenario: [observed] failures seen by every
   correct reporter. *)
let is_trojan ?(hardened = false) ~observed bytes =
  let fv name = Layout.field_value layout bytes name in
  let accepted =
    Bv.to_int (fv "mtype") = msg_report
    && Bv.to_int (fv "reporter") < n_reporters
    && Bv.to_int (fv "epoch") = current_epoch
    && ((not hardened) || Bv.to_int (fv "count") <= cluster_size)
  in
  accepted && Bv.to_int (fv "count") <> observed
