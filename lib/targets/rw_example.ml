(* The paper's working example (Figures 2 and 3): a read/write server whose
   READ handler forgets to reject negative addresses, and a client that
   validates addresses before sending. Any READ request with a negative
   address is a Trojan message.

   Message layout: sender(1) request(1) address(4) value(4) crc(1).
   The crc is a simple additive checksum over the preceding bytes, computed
   by both sides — a stand-in for the paper's CRC whose negation disjunct
   the overlap check is expected to discard (sums are not injective). *)

open Achilles_symvm

let read_op = 1
let write_op = 2
let data_size = 100
let message_size = 11

let layout =
  Layout.make ~name:"rw"
    [ ("sender", 1); ("request", 1); ("address", 4); ("value", 4); ("crc", 1) ]

(* checksum over bytes [0, 10) of a buffer *)
let checksum_proc buf =
  let open Builder in
  proc "checksum" ~params:[]
    [
      set "crc_acc" (i8 0);
      set "crc_i" (i32 0);
      while_
        (v "crc_i" <: i32 (message_size - 1))
        [
          set "crc_acc" (v "crc_acc" +: load buf (v "crc_i"));
          set "crc_i" (v "crc_i" +: i32 1);
        ];
      return (v "crc_acc");
    ]

let server =
  let open Builder in
  let field name = Layout.field_expr layout name ~buf:"msg" in
  prog "rw-server"
    ~buffers:[ ("msg", message_size); ("reply", 2) ]
    ~procs:[ checksum_proc "msg" ]
    [
      receive "msg";
      (* isInSet(msg.sender, peers): the configured peers are {1, 2, 3} *)
      if_
        (field "sender" =: i8 1 ||: (field "sender" =: i8 2)
        ||: (field "sender" =: i8 3))
        []
        [ mark_reject "unknown-peer" ];
      call "checksum" [] ~result:"sum";
      if_ (field "crc" <>: v "sum") [ mark_reject "bad-crc" ] [];
      switch (field "request")
        [
          ( read_op,
            [
              (* BUG (from the paper): only the upper bound is checked; a
                 negative address passes the signed comparison *)
              if_
                (field "address" >=+: i32 data_size)
                [ mark_reject "read-oob" ]
                [];
              store "reply" (i8 0) (i8 read_op);
              send (field "sender") "reply";
              mark_accept "read";
            ] );
          ( write_op,
            [
              if_
                (field "address" >=+: i32 data_size)
                [ mark_reject "write-oob" ]
                [];
              if_ (field "address" <+: i32 0) [ mark_reject "write-neg" ] [];
              store "reply" (i8 0) (i8 write_op);
              send (field "sender") "reply";
              mark_accept "write";
            ] );
        ]
        ~default:[ mark_reject "bad-request" ];
    ]

let client =
  let open Builder in
  let set_field name value = Layout.store_field layout name ~buf:"msg" ~value in
  prog "rw-client"
    ~buffers:[ ("msg", message_size) ]
    ~procs:[ checksum_proc "msg" ]
    [
      (* getPeerID(): over-approximated to [1, 3] via annotations (Fig. 9) *)
      make_symbolic "peer_id" ~width:8;
      when_ (v "peer_id" <: i8 1) [ drop_path ];
      when_ (v "peer_id" >: i8 3) [ drop_path ];
      read_input "operation" ~width:8;
      read_input "address" ~width:32;
      (* the client validates the address before contacting the server *)
      when_ (v "address" >=+: i32 data_size) [ halt ];
      when_ (v "address" <+: i32 0) [ halt ];
      when_
        (v "operation" =: i8 read_op)
        (List.concat
           [
             set_field "sender" (cast 8 (v "peer_id"));
             set_field "request" (i8 read_op);
             set_field "address" (v "address");
             set_field "value" (i32 0);
             [ call "checksum" [] ~result:"sum" ];
             set_field "crc" (cast 8 (v "sum"));
             [ send (i8 0) "msg" ];
           ]);
      when_
        (v "operation" =: i8 write_op)
        (List.concat
           [
             [ read_input "value" ~width:32 ];
             set_field "sender" (cast 8 (v "peer_id"));
             set_field "request" (i8 write_op);
             set_field "address" (v "address");
             set_field "value" (v "value");
             [ call "checksum" [] ~result:"sum" ];
             set_field "crc" (cast 8 (v "sum"));
             [ send (i8 0) "msg" ];
           ]);
      halt;
    ]

(* Ground truth for tests: a message is a Trojan iff it passes the server's
   checks with request = READ and a (signed) negative address. *)
let is_trojan bytes =
  let open Achilles_smt in
  let sender = Bv.to_int (Layout.field_value layout bytes "sender") in
  let request = Bv.to_int (Layout.field_value layout bytes "request") in
  let address = Layout.field_value layout bytes "address" in
  let crc_expected =
    let acc = ref (Bv.zero 8) in
    for i = 0 to message_size - 2 do
      acc := Bv.add !acc bytes.(i)
    done;
    !acc
  in
  let crc = Layout.field_value layout bytes "crc" in
  sender >= 1 && sender <= 3
  && Bv.equal crc crc_expected
  && request = read_op
  && Bv.slt address (Bv.zero 32)
