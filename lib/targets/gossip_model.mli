(** The paper's opening example (§1), modeled: gossip messages carrying
    failure counts that "the system state information was incorrect" — the
    Amazon S3 2008 outage. Reporter nodes observe failure events and gossip
    their count to an aggregator that checks framing but never asks whether
    the count is plausible.

    §3.4's Concrete Local State mode finds the Trojan: in a deployment that
    has seen exactly [k] failures, every correct reporter's counter is [k],
    so any report with a different count is Trojan {e for that scenario} —
    the paper's "the message was Trojan in the concrete scenario in which
    it occurred".

    Message: mtype(1: 1=failure-event, 2=report) reporter(1) count(1)
    epoch(2). *)

open Achilles_smt
open Achilles_symvm

val msg_failure_event : int
val msg_report : int
val cluster_size : int
val n_reporters : int
val current_epoch : int
val emergency_threshold : int
val message_size : int
val layout : Layout.t
val analysis_mask : string list

val reporter_prefix : Ast.program
(** Consumes the deployment's failure-event trace; run concretely under
    {!Achilles_core.Local_state.concrete} it leaves the observation counter
    in the reporter's state. *)

val failure_event : Bv.t array
(** One concrete failure-event message for the prefix's queue. *)

val reporter : Ast.program
(** Gossips its current counter — a concrete constant under Concrete Local
    State, which is what makes the negate operator (§3.2 case 1) bite. *)

val aggregator : ?hardened:bool -> unit -> Ast.program
(** The receiver. [hardened:true] adds the post-mortem fix: counts beyond
    the cluster size are logged and rejected. *)

val is_trojan : ?hardened:bool -> observed:int -> Bv.t array -> bool
