(** A single-decree Paxos acceptor, the paper's running example for the
    local-state modes (§3.4).

    Once value [v] is locked in phase 2, correct proposers only send
    [Accept (ballot, v)]; the acceptor however takes any Accept with a high
    enough ballot — every Accept carrying a different value is a Trojan
    for that scenario. The acceptor's behaviour depends on its promised
    ballot, which each local-state mode controls differently.

    Message format: mtype(1: 1=Prepare, 2=Accept) ballot(2) value(2)
    proposer(1). *)

open Achilles_smt
open Achilles_symvm

val msg_prepare : int
val msg_accept : int
val n_proposers : int
val message_size : int
val layout : Layout.t

val proposer : value:Ast.expr -> Ast.program
(** A phase-2 proposer sending Accept for the given value expression. *)

val proposer_concrete : value:int -> Ast.program

val proposer_symbolic : Ast.program
(** Proposal value as a symbolic input — one constructed-symbolic-state
    analysis covers every concrete value. *)

val acceptor : Ast.program
(** Event-loop acceptor; earlier (preloaded) rounds run through the same
    handler and build local state. The planted bug: Accept values are
    never cross-checked against the locked value. *)

val phase1_prefix : ballot:int -> Ast.program
(** Concrete prefix for {!Achilles_core.Local_state.concrete}: leaves the
    acceptor having promised [ballot]. *)

val is_phase2_trojan :
  promised:int -> chosen_value:int -> Bv.t array -> bool
