(* An HTTP-style key-value store exercising §5.1's automatic accept/reject
   classification: the server carries NO accept/reject markers at all —
   every request gets a reply whose status byte says 2xx or 4xx, and the
   analysis classifies paths from that status (the "4xx status codes in
   HTTP" extension the paper mentions).

   Request:  method(1: 1=GET, 2=PUT)  key(2)  value(2)  token(2)
   Reply:    status(1: 2=2xx, 4=4xx)  body(2)

   Two planted Trojan families:
   - the server never validates the [token] authenticator, while correct
     clients always send the deployment secret;
   - the server serves any key below [server_key_space]; clients are
     configured with a smaller namespace [client_key_space], so keys in
     between are accepted-but-never-sent. *)

open Achilles_symvm

let method_get = 1
let method_put = 2
let secret_token = 0xBEEF
let client_key_space = 100 (* clients only use keys below this *)
let server_key_space = 200 (* the server serves keys below this *)
let message_size = 7
let reply_size = 3

let layout =
  Layout.make ~name:"kv-request"
    [ ("method", 1); ("key", 2); ("value", 2); ("token", 2) ]

let analysis_mask = [ "method"; "key"; "value"; "token" ]

let client =
  let open Builder in
  let set_field name value = Layout.store_field layout name ~buf:"req" ~value in
  prog "kv-client"
    ~buffers:[ ("req", message_size) ]
    (List.concat
       [
         [
           read_input "op" ~width:8;
           read_input "key" ~width:16;
           read_input "value" ~width:16;
           (* configuration limits the client to its own key namespace *)
           when_ (v "key" >=: i16 client_key_space) [ halt ];
         ];
         set_field "key" (v "key");
         set_field "token" (i16 secret_token);
         [
           if_ (v "op" =: i8 method_get)
             (List.concat
                [
                  set_field "method" (i8 method_get);
                  set_field "value" (i16 0);
                  [ send (i8 0) "req"; halt ];
                ])
             [];
           if_ (v "op" =: i8 method_put)
             (List.concat
                [
                  set_field "method" (i8 method_put);
                  set_field "value" (v "value");
                  [ send (i8 0) "req"; halt ];
                ])
             [];
           halt;
         ];
       ])

(* The server: parse, reply with a status code, loop. No markers anywhere —
   classification is entirely [Interp.classify_by_status]. *)
let server =
  let open Builder in
  let field name = Layout.field_expr layout name ~buf:"req" in
  let reply status body =
    [
      store "reply" (i8 0) (i8 status);
      store "reply" (i8 1) (cast 8 (Binop (Ast.Lshr, body, Num { value = 8; width = 16 })));
      store "reply" (i8 2) (cast 8 body);
      send (i8 1) "reply";
      halt (* back to the event loop *);
    ]
  in
  prog "kv-server"
    ~globals:[ ("stored", 16) ]
    ~buffers:[ ("req", message_size); ("reply", reply_size) ]
    [
      receive "req";
      (* NOTE: the token is never checked — the first Trojan family *)
      if_
        (field "method" <>: i8 method_get &&: (field "method" <>: i8 method_put))
        (reply 4 (i16 0x0400) (* 400 bad request *))
        [];
      (* the server's key space is wider than any client's configuration —
         the second Trojan family *)
      if_ (field "key" >=: i16 server_key_space) (reply 4 (i16 0x0404)) [];
      if_ (field "method" =: i8 method_put)
        ([ set "stored" (field "value") ] @ reply 2 (i16 0x0200))
        (reply 2 (v "stored") (* 200 with the stored value *));
    ]

let auto_classifier =
  Interp.classify_by_status ~offset:0 ~accept:(fun code -> code = 2)

open Achilles_smt

(* Ground truth: accepted (2xx) requests that no configured client sends. *)
let is_trojan bytes =
  let fv name = Layout.field_value layout bytes name in
  let meth = Bv.to_int (fv "method") in
  let key = Bv.to_int (fv "key") in
  let token = Bv.to_int (fv "token") in
  let accepted =
    (meth = method_get || meth = method_put) && key < server_key_space
  in
  let generable =
    (meth = method_get || meth = method_put)
    && key < client_key_space && token = secret_token
    && (meth <> method_get || Bv.to_int (fv "value") = 0)
  in
  accepted && not generable
