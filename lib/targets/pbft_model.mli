(** Model of a PBFT client request and replica, following §6.1.

    Request format: tag(2) extra(2) size(4) od(16) replier(2)
    command_size(2) cid(2) rid(2) command(4) mac(8). The digest [od] and
    the MAC authenticators are approximated with constants on the client
    side (the paper's annotation bypass of the crypto); the replica's
    request-history structure is over-approximated with symbolic state
    ([last_rid], see {!Achilles_core.Local_state.over_approximate}).

    The replica checks tag, sizes, digest, client id and request freshness
    — but never the authenticators. Correct clients only emit the
    (approximated) valid MAC bytes, so every request with a different MAC
    is a Trojan: the MAC attack of Clement et al., rediscovered as in
    §6.2-§6.3. *)

open Achilles_smt
open Achilles_symvm

val tag_request : int
val n_replicas : int
val n_clients : int
val command_bytes : int
val mac_bytes : int
val message_size : int
val digest_byte : int
val mac_byte : int
val layout : Layout.t

val analysis_mask : string list
(** All fields except the 16-byte digest (masked like the paper masks the
    approximated crypto). *)

val client : Ast.program
val replica : Ast.program

val replica_accepts : ?last_rid:int -> Bv.t array -> bool
val has_valid_mac : Bv.t array -> bool
val is_mac_trojan : Bv.t array -> bool
(** Accepted, yet carrying authenticator bytes no correct client
    produces. *)
