(* A single-decree Paxos acceptor, used to demonstrate the three local-state
   modes of §3.4 exactly on the paper's example: an acceptor that has just
   entered the second phase with a proposed value should only validate
   Accept messages carrying *that* value — any other Accept that it takes is
   a Trojan message.

   Message format: mtype(1) ballot(2) value(2) proposer(1).
   mtype: 1 = Prepare, 2 = Accept. *)

open Achilles_symvm

let msg_prepare = 1
let msg_accept = 2
let n_proposers = 3
let message_size = 6

let layout =
  Layout.make ~name:"paxos"
    [ ("mtype", 1); ("ballot", 2); ("value", 2); ("proposer", 1) ]

(* --- proposer (the client side of phase 2) ----------------------------------- *)

(* A correct phase-2 proposer only sends Accept for the value it proposed in
   phase 1 — which the caller pins (concretely or symbolically). *)
let proposer ~value =
  let open Builder in
  let set_field name v = Layout.store_field layout name ~buf:"msg" ~value:v in
  prog "paxos-proposer"
    ~buffers:[ ("msg", message_size) ]
    (List.concat
       [
         [
           make_symbolic "me" ~width:8;
           assume (v "me" <: i8 n_proposers);
           read_input "ballot" ~width:16;
         ];
         set_field "mtype" (i8 msg_accept);
         set_field "ballot" (v "ballot");
         set_field "value" value;
         set_field "proposer" (cast 8 (v "me"));
         [ send (i8 0) "msg"; halt ];
       ])

let proposer_concrete ~value = proposer ~value:(Builder.i16 value)

(* A proposer whose proposal value is itself a symbolic input — used by the
   constructed-symbolic-local-state mode so one analysis covers all values. *)
let proposer_symbolic =
  let open Builder in
  prog "paxos-proposer-symbolic"
    ~buffers:[ ("msg", message_size) ]
    (List.concat
       [
         [
           make_symbolic "me" ~width:8;
           assume (v "me" <: i8 n_proposers);
           read_input "ballot" ~width:16;
           read_input "proposal" ~width:16;
         ];
         Layout.store_field layout "mtype" ~buf:"msg" ~value:(i8 msg_accept);
         Layout.store_field layout "ballot" ~buf:"msg" ~value:(v "ballot");
         Layout.store_field layout "value" ~buf:"msg" ~value:(v "proposal");
         Layout.store_field layout "proposer" ~buf:"msg"
           ~value:(cast 8 (v "me"));
         [ send (i8 0) "msg"; halt ];
       ])

(* --- acceptor ----------------------------------------------------------------- *)

(* Acceptor in phase 2. Its local state: [promised] (the highest ballot it
   promised in phase 1) and [locked_value] (the phase-2 value, 0 when none).
   The acceptor validates the ballot against its promise, but — like many
   real implementations — never cross-checks the proposed value against the
   value already locked by the protocol: a Trojan opportunity that only
   shows up once local state is taken into account. *)
let acceptor =
  let open Builder in
  let field name = Layout.field_expr layout name ~buf:"msg" in
  prog "paxos-acceptor"
    ~globals:[ ("promised", 16); ("locked_value", 16) ]
    ~buffers:[ ("msg", message_size); ("reply", 2) ]
    [
      (* event loop: earlier rounds (preloaded messages) run through the
         same handler and build up local state; accept/reject markers only
         classify the analyzed round *)
      while_ (i8 1)
        [
          receive "msg";
          when_
            (field "proposer" >=: i8 n_proposers)
            [ mark_reject "bad-proposer" ];
          switch (field "mtype")
            [
              ( msg_prepare,
                [
                  when_
                    (field "ballot" <=: v "promised")
                    [ mark_reject "old-ballot" ];
                  set "promised" (field "ballot");
                  store "reply" (i8 0) (i8 msg_prepare);
                  send (field "proposer") "reply";
                  mark_accept "promise";
                ] );
              ( msg_accept,
                [
                  when_
                    (field "ballot" <: v "promised")
                    [ mark_reject "below-promise" ];
                  (* BUG: nothing checks that msg.value matches the value
                     the protocol locked for this ballot *)
                  store "reply" (i8 0) (i8 msg_accept);
                  send (field "proposer") "reply";
                  mark_accept "accepted";
                ] );
            ]
            ~default:[ mark_reject "bad-type" ];
        ];
    ]

(* A concrete phase-1-plus-proposal prefix for the Concrete Local State
   mode: the acceptor promises ballot [ballot] (so the analysis starts in
   phase 2). Running it concretely builds promised = ballot. *)
let phase1_prefix ~ballot =
  let open Builder in
  prog "paxos-acceptor-phase1"
    ~globals:[ ("promised", 16); ("locked_value", 16) ]
    ~buffers:[ ("msg", message_size) ]
    [ set "promised" (i16 ballot); halt ]

open Achilles_smt

(* Ground truth for the concrete scenario (promised ballot B, chosen value
   V): a Trojan Accept is one the acceptor takes with value <> V. *)
let is_phase2_trojan ~promised ~chosen_value bytes =
  let fv name = Layout.field_value layout bytes name in
  Bv.to_int (fv "mtype") = msg_accept
  && Bv.to_int (fv "proposer") < n_proposers
  && Bv.to_int (fv "ballot") >= promised
  && Bv.to_int (fv "value") <> chosen_value
