(** The paper's working example (Figures 2-3): a read/write server whose
    READ handler forgets to reject negative addresses, and a client that
    validates addresses before sending. Every READ with a (signed) negative
    address is a Trojan message.

    Message layout: sender(1) request(1) address(4) value(4) crc(1), where
    crc is an additive checksum both sides compute — a stand-in for the
    CRC of the paper's example whose negation disjuncts the overlap check
    discards (sums are not injective). *)

open Achilles_smt
open Achilles_symvm

val read_op : int
val write_op : int
val data_size : int
val message_size : int
val layout : Layout.t

val server : Ast.program
(** Figure 2, with the planted missing-lower-bound check on READ. *)

val client : Ast.program
(** Figure 3: validates [0 <= address < data_size] before sending; the
    peer id is over-approximated to the configured range via annotations
    (the Figure 9 idiom). *)

val is_trojan : Bv.t array -> bool
(** Ground truth: the message passes all server checks with request = READ
    and a signed-negative address. *)
