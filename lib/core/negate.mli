(** The custom under-approximate negate operator (§3.2).

    [negate(pathC)] describes messages that cannot be generated on client
    path [pathC]. It is computed per message field as a disjunction:

    - a field whose client-side value is a concrete constant [C] contributes
      "server field <> C";
    - a field holding an expression over symbolic inputs contributes
      "server field = renamed-expression AND (disjunction of the negated
      path constraints influencing those inputs)", with all client
      variables renamed fresh so each disjunct quantifies independently;
    - a symbolic field with no influencing constraints is abandoned
      (contributes nothing) — the under-approximation of §4.2.

    Optionally each disjunct is checked for overlap against the original
    client path predicate and discarded when a common solution exists,
    which removes negate-induced false positives (§4.1). *)

open Achilles_smt
open Achilles_symvm

val related_constraints : Predicate.client_path -> int list -> Term.t list
(** Path constraints transitively influencing the given variable ids: the
    closure adds any constraint sharing a variable with the growing set. *)

val negate_field :
  layout:Layout.t ->
  target:Term.t ->
  Predicate.client_path ->
  string ->
  Term.t option
(** Negation of one field, phrased over [target] (the server-side term for
    that field's value). [None] when the field is abandoned. *)

val negate_path :
  ?check_overlap:bool ->
  ?mask:string list ->
  layout:Layout.t ->
  server_vars:Term.var array ->
  Predicate.client_path ->
  Term.t
(** The full per-path negation: disjunction of the per-field negations over
    the server's symbolic message bytes. [Term.fls] when every field was
    abandoned or discarded (the most conservative answer: nothing can be
    proven un-generable on this path). [check_overlap] defaults to [true]. *)
