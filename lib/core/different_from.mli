(** The precomputed [differentFrom] relation (§3.3).

    [different t ~i ~j ~field] is [true] when there exists at least one
    message on client path [i] whose [field] value cannot appear in that
    field on client path [j]. During the server search, when a branch
    constraint touching only [field] kills client path [i], every path [j]
    with [different ~i:j ~j:i ~field = false] (i.e. [j]'s values for the
    field are contained in [i]'s) can be dropped without a solver call.

    The matrix is only defined for {e independent} fields — fields whose
    variables never share constraints with other fields (the CRC-style
    dependent fields are excluded). *)

open Achilles_symvm

type t

type stats = {
  fields_covered : string list; (* independent fields, in layout order *)
  pairs_checked : int; (* solver queries actually issued *)
  pairs_static : int; (* deduplicated pairs decided without the solver *)
  wall_time : float;
}

val compute :
  ?memoize:bool ->
  ?mask:string list ->
  ?pool:Pool.t ->
  ?use_slice:bool ->
  ?server_slice:Achilles_slice.Slice.summary ->
  Predicate.client_predicate ->
  t * stats
(** [memoize] (default [true]) caches pair checks on alpha-canonical
    (value, constraints) signatures — structurally identical client paths
    from different utilities share one solver call. Disable it to measure
    the paper's raw quadratic precomputation cost.

    [pool] distributes the (deduplicated) pair checks over worker domains.
    The result — matrix, stats, and even the fresh-variable ids consumed —
    is identical to the sequential computation: representatives are fixed
    in the sequential iteration order and each check replays a pinned
    fresh-counter slot on whichever domain runs it.

    [use_slice] (default {!Achilles_slice.Slice.enabled}) decides pairs
    whose field summaries are statically known (concrete vs concrete,
    unconstrained injective chain vs concrete, unconstrained symbolic on
    the containing side) without a solver query; the verdicts are exactly
    the ones the queries would return, so the matrix is unchanged. With
    [server_slice] — the server program's dependence summary — pair checks
    for fields that reach no server branch are skipped wholesale: their
    matrix entries stay [false] (the safe no-drop default, and the rows the
    search provably never consults), while [fields_covered] is unchanged.
    Statically decided pairs count in [pairs_static], never in
    [pairs_checked]. Skipped checks keep their fresh-variable slots, so
    later variable ids (and report digests) are independent of slicing. *)

val covers_field : t -> string -> bool
val different : t -> i:int -> j:int -> field:string -> bool
(** [false] for fields not covered (the safe default: no transitive drop). *)

val layout : t -> Layout.t
