(** Phase two of Achilles: explore the server symbolically and search for
    Trojan messages incrementally while building [PS] (§3.2, §3.3).

    Every server state carries the set of client path predicates that can
    still trigger it ("alive" paths). At each new branch constraint:

    - each alive client path [i] is kept only if [pathS /\ bind(pathCi)]
      stays satisfiable; once dropped, [negate(pathCi)] disappears from the
      Trojan query for good;
    - if the constraint touches a single independent field [a] and path [i]
      was dropped, every alive [j] whose field-[a] values are contained in
      [i]'s (per the differentFrom matrix) is dropped without a solver call;
    - the state is pruned as soon as [pathS /\ AND_i negate(pathCi)] becomes
      unsatisfiable — no Trojan message can reach it anymore.

    Accepting states therefore have Trojan messages by construction; the
    search emits a symbolic Trojan expression and one or more concrete
    witnesses per accepting path, each timestamped for the discovery curve
    of Figure 10.

    {b Multicore.} With [domains > 1] the exploration tree is split into
    [2^split_bits] route shards run as tasks on a {!Pool} of domains, each
    with its own solver sessions, domain-local solver cache/stats and a
    fresh-variable counter replaying the sequential id sequence. Exactly one
    shard owns (records) each state, and the merge sorts the disjoint event
    logs by route — lexicographic route order equals sequential depth-first
    creation order — and renumbers state ids by route rank, so the report is
    identical to the sequential one except for wall-clock fields
    ([wall_time], and [found_at], which is re-monotonized in merge order).
    Caveats: determinism assumes the server allocates no fresh symbolic
    variables after its first fork (all bundled models receive the analyzed
    message up front), that [max_states] (a per-task bound in parallel mode)
    is not hit, and [explain_drops] unsat-core {e contents} may differ
    (cores depend on solver history; the set of drop events does not). *)

open Achilles_smt
open Achilles_symvm

type config = {
  drop_alive : bool; (* optimization 1: per-state alive tracking *)
  use_different_from : bool; (* optimization 2: transitive drops *)
  prune_no_trojan : bool; (* drop states with an unsat Trojan query *)
  check_overlap : bool; (* negate's false-positive discard (§4.1) *)
  incremental_bindings : bool;
      (* run the alive-set checks through per-client incremental solver
         sessions: the msgS = msgC binding is bitblasted once and each
         check solves under the path constraints as assumptions *)
  explain_drops : bool;
      (* record an unsat-core explanation for every dropped client path
         (requires incremental_bindings) *)
  use_slice : bool;
      (* answer server branch feasibility through the static-slice oracle
         ({!Achilles_slice.Slice.make_oracle}): cone-restricted, memoized
         queries with equality chains decided statically, and [max_depth]
         counting only message-tainted decisions. Verdict-preserving on
         clean runs, so the report digest is byte-identical either way.
         Defaults to {!Achilles_slice.Slice.enabled} ([ACHILLES_SLICE]) *)
  mask : string list option; (* analyzed fields; None = all *)
  witnesses_per_path : int; (* concrete witnesses enumerated per path *)
  distinct_by : (Bv.t array -> Term.var array -> Term.t) option;
      (* blocking-constraint generator steering witness enumeration toward
         distinct message classes; [None] blocks the exact witness bytes *)
  interp : Interp.config;
  domains : int;
      (* worker domains for the parallel search; <= 1 runs sequentially *)
  split_bits : int option;
      (* route shards = 2^split_bits (in [0,16]); [None] picks
         ceil(log2 domains) + 2, capped at 8 *)
  solver_budget : Solver.budget option;
      (* ambient solver budget installed for the run (per worker domain in
         parallel mode); [None] leaves queries unbounded *)
  shard_retries : int;
      (* extra in-place attempts for a shard task that raises, before the
         shard is recorded as failed (parallel mode) *)
  shard_backoff : int -> float;
      (* seconds to sleep before retry [attempt + 1]; default exponential,
         50 ms doubling *)
  checkpoint_dir : string option;
      (* when set (parallel mode), every completed shard's event log is
         flushed to [dir/shard-NNNN.ckpt] via an atomic rename *)
  resume : bool;
      (* with [checkpoint_dir]: load valid shard checkpoints and re-explore
         only the missing shards *)
  cancel : unit -> bool;
      (* cooperative cancellation, polled at every branch constraint; once
         true, in-flight shards abandon exploration and the report is
         assembled from the shards already complete *)
  chaos : (shard_index:int -> attempt:int -> unit) option;
      (* test hook run at the top of every shard attempt (raise to simulate
         a shard crash and exercise the retry path) *)
}

val default_config : config
(** [domains] defaults to [$ACHILLES_DOMAINS] when that is set to a positive
    integer (read once at startup), else 1. Robustness defaults: no solver
    budget, [shard_retries = 2] with exponential backoff, no checkpointing,
    [cancel] constantly false, no chaos hook. *)

type trojan = {
  server_state_id : int;
  accept_label : string;
  witness : Bv.t array; (* a concrete Trojan message *)
  symbolic : Term.t list; (* pathS /\ negations: the Trojan expression *)
  msg_vars : Term.var array;
  confirmed : bool;
      (* [true]: the witness was enumerated from a [Sat] answer. [false]:
         the witness query came back [Unknown] (budget exhausted or fault
         injected) — the symbolic expression is still sound, but the
         all-zero placeholder witness is unverified and the accepting state
         itself is only an over-approximation *)
  found_at : float; (* seconds since the search started *)
}

type alive_sample = { state_id : int; path_length : int; alive : int }
(** One (execution-path length, surviving client paths) measurement —
    the raw data of Figure 11. *)

type drop_explanation = {
  at_state : int;
  dropped_path : int; (* cp_id of the dropped client path *)
  conflicting : Term.t list;
      (* the unsat core: server path constraints that together with the
         msgS = msgC binding rule this client path out — "why can't client
         path i trigger this state any more" *)
}

type stats = {
  accepting_paths : int;
  rejecting_paths : int;
  other_paths : int;
  pruned_states : int; (* states killed by the no-Trojan check *)
  forks : int;
  alive_checks : int; (* pathS /\ pathCi solver checks issued *)
  transitive_drops : int; (* drops decided by differentFrom alone *)
  alive_samples : alive_sample list;
  wall_time : float;
}

(** Honest accounting of what a (possibly degraded) run actually covered.

    Soundness of the degradation paths: an [Unknown] alive check keeps the
    client path alive (the implied negation stays in the Trojan query, so
    the answer set only shrinks to the sound side); an [Unknown] prune check
    keeps the state (more exploration, never less); an [Unknown] witness
    query emits an {e unconfirmed} Trojan. Budget exhaustion therefore
    over-approximates — it can add unconfirmed Trojans but never silently
    drops a real one. Failed or cancelled shards, by contrast, are missing
    coverage, which is why they are reported here instead of being folded
    into a seemingly complete report. *)
type coverage = {
  total_shards : int; (* 1 in sequential mode *)
  completed_shards : int;
  failed_shards : int list; (* shard indices exhausted of retries *)
  resumed_shards : int; (* loaded from checkpoints instead of explored *)
  shard_retry_attempts : int; (* extra attempts across all shards *)
  interrupted : bool; (* [cancel] fired during the run *)
  unknown_alive : int; (* alive checks degraded to keep-alive *)
  unknown_prune : int; (* prune checks degraded to keep-state *)
  unknown_witness : int; (* witness queries degraded to unconfirmed *)
  budget_exhaustions : int; (* solver escalation ladders ending Unknown *)
  injected_faults : int; (* faults fired by {!Solver.set_fault_injection} *)
  abandoned_states : int; (* states cut off by cancellation *)
  solver_cache_entries : int; (* live bounded-cache entries, all domains *)
  solver_cache_evictions : int; (* entries dropped at the size cap *)
  solver_cache_hits : int; (* queries answered from the cache *)
  solver_queries : int; (* total queries (denominator of the hit rate) *)
  (* slice-oracle effectiveness (process-wide since the last stats reset,
     like the cache stats; never digested): *)
  slice_static_branches : int; (* branch feasibilities settled statically *)
  slice_cone_queries : int; (* cone-restricted queries replacing full-path ones *)
}

val coverage_complete : coverage -> bool
(** Every shard completed, none failed, not interrupted. A complete run may
    still contain Unknown degradations — those over-approximate and are
    visible per-trojan via [confirmed]. *)

type report = {
  trojans : trojan list; (* discovery order *)
  accepting : Predicate.server_path list;
  drops : drop_explanation list; (* populated when [explain_drops] is set *)
  search_stats : stats;
  coverage : coverage;
}

val run :
  ?config:config ->
  ?different_from:Different_from.t ->
  client:Predicate.client_predicate ->
  server:Ast.program ->
  unit ->
  report

val trojan_queries :
  report -> (Predicate.server_path * Term.t list option) list
(** Every accepting state paired with the symbolic Trojan query the search
    decided it with ([pathS /\ AND_alive negate(pathCi)], the [symbolic]
    field of that state's trojans), or [None] when the query was
    unsatisfiable — no Trojan message can reach the state. This is the
    predicate export the filter compiler ([Achilles_filter]) consumes: the
    per-receiving-state [¬PC] the paper's offline analysis ends with. *)

val minimize_witness : trojan -> Bv.t array
(** A witness for the same Trojan expression with greedily as many zero
    bytes as the expression allows — easier to read and to diff against
    valid traffic when preparing fire-drill payloads. *)

(** {1 Distributed-search support}

    The shard-level building blocks the multi-process coordinator/worker
    protocol ([Achilles_dist]) runs on. A worker process calls {!Shards.explore}
    for each shard it leases and persists the result with {!Shards.write};
    the coordinator validates completed checkpoints with {!Shards.load} and
    assembles the final report with {!Shards.merge} — the same merge the
    in-process parallel mode uses, so a distributed run's report digest is
    byte-identical to a single-process run regardless of worker count,
    kills, or lease reassignments. *)
module Shards : sig
  type out
  (** One completed shard's event log plus its final fresh-variable
      counter. Opaque: produced by {!explore} or {!load}, consumed by
      {!write} and {!merge}. *)

  val split_bits : config -> int
  (** The shard decomposition the config implies ([2^bits] shards). *)

  val fingerprint :
    bits:int ->
    config:config ->
    client:Predicate.client_predicate ->
    server:Ast.program ->
    string
  (** Identity of a run for checkpoint-reuse purposes (see the resume
      caveats in the config docs): a checkpoint written under a different
      fingerprint is never merged. *)

  val prepare_dir : string -> unit
  (** Create the directory if needed and delete stale [*.tmp.*] leftovers
      from killed writers. Call once per run, before any worker writes. *)

  val explore :
    config:config ->
    different_from:Different_from.t option ->
    client:Predicate.client_predicate ->
    server:Ast.program ->
    bits:int ->
    base:int ->
    started:float ->
    int ->
    out option * int
  (** [explore ... idx] runs shard [idx] to completion in the calling
      domain, replaying the fresh-variable sequence from [base]. Returns
      [(None, abandoned)] when [config.cancel] fired mid-shard — a partial
      log must neither be written nor merged. *)

  val write : file:string -> fingerprint:string -> idx:int -> out -> unit
  (** Durable atomic checkpoint: marshal to a pid-qualified temp file,
      fsync, rename into place, fsync the directory. *)

  val load : file:string -> fingerprint:string -> idx:int -> out option
  (** [None] if the file is missing, torn, corrupt (payload digest
      mismatch), or belongs to a different run or shard — with a warning
      and a ["checkpoint.corrupt"] count for everything but absence. *)

  val merge :
    total:int ->
    base:int ->
    started:float ->
    outs_resumed:(out * bool) list ->
    failed_shards:int list ->
    retry_attempts:int ->
    interrupted:bool ->
    abandoned:int ->
    report
  (** Deterministic merge of disjoint shard logs ([resumed] flags feed the
      coverage block). [failed_shards] are reported as uncovered — never
      silently dropped. *)
end
