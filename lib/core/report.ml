open Achilles_smt
open Achilles_symvm

let pp_witness layout fmt witness =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (f : Layout.field) ->
      if f.Layout.size > 8 then begin
        Format.fprintf fmt "  %-14s =" f.Layout.field_name;
        Array.iter
          (fun b -> Format.fprintf fmt " %02Lx" (Bv.value b))
          (Layout.field_bytes layout witness f.Layout.field_name);
        Format.fprintf fmt "@,"
      end
      else
        let value = Layout.field_value layout witness f.Layout.field_name in
        let printable =
          if f.Layout.size = 1 then
            let code = Bv.to_int value in
            if code >= 32 && code < 127 then
              Printf.sprintf " %C" (Char.chr code)
            else ""
          else ""
        in
        Format.fprintf fmt "  %-14s = %a%s@," f.Layout.field_name Bv.pp value
          printable)
    (Layout.fields layout);
  Format.fprintf fmt "@]"

let pp_trojan layout fmt (t : Search.trojan) =
  Format.fprintf fmt
    "@[<v>Trojan message (server path %d, accept label %S, found at %.2fs)%s:@,%a@]"
    t.Search.server_state_id t.Search.accept_label t.Search.found_at
    (if t.Search.confirmed then ""
     else " [UNCONFIRMED: witness query exhausted its solver budget]")
    (pp_witness layout) t.Search.witness

let pp_coverage fmt (c : Search.coverage) =
  Format.fprintf fmt "@[<v>Coverage: %s@,"
    (if Search.coverage_complete c then "complete" else "PARTIAL");
  Format.fprintf fmt "  shards          %d/%d completed" c.Search.completed_shards
    c.Search.total_shards;
  if c.Search.resumed_shards > 0 then
    Format.fprintf fmt " (%d resumed from checkpoint)" c.Search.resumed_shards;
  Format.fprintf fmt "@,";
  (match c.Search.failed_shards with
  | [] -> ()
  | failed ->
      Format.fprintf fmt "  uncovered shards %s@,"
        (String.concat ", " (List.map string_of_int failed)));
  if c.Search.shard_retry_attempts > 0 then
    Format.fprintf fmt "  shard retries   %d@," c.Search.shard_retry_attempts;
  if c.Search.interrupted then
    Format.fprintf fmt "  interrupted     yes (%d states abandoned)@,"
      c.Search.abandoned_states;
  if
    c.Search.unknown_alive > 0 || c.Search.unknown_prune > 0
    || c.Search.unknown_witness > 0
  then
    Format.fprintf fmt
      "  solver Unknowns %d alive (kept alive), %d prune (kept state), %d \
       witness (unconfirmed)@,"
      c.Search.unknown_alive c.Search.unknown_prune c.Search.unknown_witness;
  if c.Search.budget_exhaustions > 0 then
    Format.fprintf fmt "  budget blown    %d escalation ladders@,"
      c.Search.budget_exhaustions;
  if c.Search.injected_faults > 0 then
    Format.fprintf fmt "  injected faults %d@," c.Search.injected_faults;
  if c.Search.solver_queries > 0 then
    Format.fprintf fmt
      "  solver cache    %d entries, %d evictions, %.1f%% hit rate@,"
      c.Search.solver_cache_entries c.Search.solver_cache_evictions
      (100.
      *. float_of_int c.Search.solver_cache_hits
      /. float_of_int c.Search.solver_queries);
  if c.Search.slice_static_branches > 0 || c.Search.slice_cone_queries > 0 then
    Format.fprintf fmt
      "  slice oracle    %d branches decided statically, %d cone queries@,"
      c.Search.slice_static_branches c.Search.slice_cone_queries;
  Format.fprintf fmt "@]"

(* Counts only: span durations and histograms are wall-clock and belong in
   the trace file, never in report text that digests could be derived from.
   Phases with no spans and empty counter sets are omitted so untraced
   sequential runs don't render a wall of zeros. *)
let pp_metrics fmt (snap : Achilles_obs.Obs.snapshot) =
  let module Obs = Achilles_obs.Obs in
  let phases = List.filter (fun (_, m) -> m.Obs.spans > 0) snap.Obs.phases in
  let counters = List.filter (fun (_, n) -> n > 0) snap.Obs.counters in
  if phases <> [] || counters <> [] then begin
    Format.fprintf fmt "@[<v>Metrics (counts; timings go to --trace):@,";
    List.iter
      (fun (p, m) ->
        Format.fprintf fmt "  %-28s %d spans@," (Obs.phase_name p) m.Obs.spans)
      phases;
    List.iter
      (fun (name, n) -> Format.fprintf fmt "  %-28s %d@," name n)
      counters;
    Format.fprintf fmt "@]"
  end

let discovery_curve ~total trojans =
  let total = max total 1 in
  List.mapi
    (fun i (t : Search.trojan) ->
      (t.Search.found_at, 100. *. float_of_int (i + 1) /. float_of_int total))
    trojans

let alive_scatter (stats : Search.stats) =
  List.map
    (fun (s : Search.alive_sample) -> (s.Search.path_length, s.Search.alive))
    stats.Search.alive_samples

let render_ascii_curve ?(width = 60) ?(height = 12) points =
  match points with
  | [] -> "(no data)\n"
  | _ ->
      let xs = List.map fst points and ys = List.map snd points in
      let xmax = List.fold_left max 0.0001 xs in
      let ymax = List.fold_left max 0.0001 ys in
      let grid = Array.make_matrix height width ' ' in
      List.iter
        (fun (x, y) ->
          let col =
            min (width - 1) (int_of_float (x /. xmax *. float_of_int (width - 1)))
          in
          let row =
            min (height - 1)
              (int_of_float (y /. ymax *. float_of_int (height - 1)))
          in
          grid.(height - 1 - row).(col) <- '*')
        points;
      let buf = Buffer.create ((width + 8) * height) in
      Array.iteri
        (fun i row ->
          let label =
            if i = 0 then Printf.sprintf "%6.1f |" ymax
            else if i = height - 1 then Printf.sprintf "%6.1f |" 0.
            else "       |"
          in
          Buffer.add_string buf label;
          Array.iter (Buffer.add_char buf) row;
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_string buf "       +";
      Buffer.add_string buf (String.make width '-');
      Buffer.add_char buf '\n';
      Buffer.add_string buf
        (Printf.sprintf "        0%*s%.2f\n" (width - 6) "" xmax);
      Buffer.contents buf

(* --- deterministic digests ------------------------------------------------- *)

let hex_of_witness witness =
  String.concat ""
    (Array.to_list
       (Array.map (fun b -> Printf.sprintf "%02Lx" (Bv.value b)) witness))

let add_trojan buf (t : Search.trojan) =
  Buffer.add_string buf
    (Printf.sprintf "T %d %s %s |" t.Search.server_state_id
       t.Search.accept_label
       (hex_of_witness t.Search.witness));
  List.iter
    (fun term -> Buffer.add_string buf (Term.to_string term ^ ";"))
    t.Search.symbolic;
  Buffer.add_string buf "|";
  Array.iter
    (fun (v : Term.var) ->
      Buffer.add_string buf (Printf.sprintf "%s#%d," v.Term.name v.Term.id))
    t.Search.msg_vars;
  (* only degraded runs produce unconfirmed trojans, so fault-free digests
     (the pinned goldens) are unchanged by this marker *)
  if not t.Search.confirmed then Buffer.add_string buf " unconfirmed";
  Buffer.add_char buf '\n'

let discovery_digest (r : Search.report) =
  let buf = Buffer.create 4096 in
  List.iter (add_trojan buf) r.Search.trojans;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let alive_digest (stats : Search.stats) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (s : Search.alive_sample) ->
      Buffer.add_string buf
        (Printf.sprintf "A %d %d %d\n" s.Search.state_id s.Search.path_length
           s.Search.alive))
    stats.Search.alive_samples;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let report_digest (r : Search.report) =
  let buf = Buffer.create 8192 in
  List.iter (add_trojan buf) r.Search.trojans;
  List.iter
    (fun (sp : Predicate.server_path) ->
      Buffer.add_string buf
        (Printf.sprintf "P %d %s |" sp.Predicate.sp_state_id
           sp.Predicate.label);
      List.iter
        (fun term -> Buffer.add_string buf (Term.to_string term ^ ";"))
        sp.Predicate.sp_constraints;
      Buffer.add_char buf '\n')
    r.Search.accepting;
  (* drop events are part of the digest; their unsat-core contents are not
     (cores depend on solver history, see Search's multicore notes) *)
  List.iter
    (fun (d : Search.drop_explanation) ->
      Buffer.add_string buf
        (Printf.sprintf "D %d %d\n" d.Search.at_state d.Search.dropped_path))
    r.Search.drops;
  let s = r.Search.search_stats in
  Buffer.add_string buf
    (Printf.sprintf "S %d %d %d %d %d %d %d\n" s.Search.accepting_paths
       s.Search.rejecting_paths s.Search.other_paths s.Search.pruned_states
       s.Search.forks s.Search.alive_checks s.Search.transitive_drops);
  List.iter
    (fun (a : Search.alive_sample) ->
      Buffer.add_string buf
        (Printf.sprintf "A %d %d %d\n" a.Search.state_id a.Search.path_length
           a.Search.alive))
    s.Search.alive_samples;
  (* Coverage enters the digest only when the run is incomplete: a partial
     report must never collide with the complete one (resume correctness is
     checked by exactly this digest), while complete runs — degraded or not
     — keep the digest the determinism suite pinned before coverage
     existed. Unknown-degradation on a complete run is already visible
     above through the per-trojan "unconfirmed" markers. *)
  let c = r.Search.coverage in
  if not (Search.coverage_complete c) then
    Buffer.add_string buf
      (Printf.sprintf "C partial %d/%d failed=[%s] interrupted=%b\n"
         c.Search.completed_shards c.Search.total_shards
         (String.concat "," (List.map string_of_int c.Search.failed_shards))
         c.Search.interrupted);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* --- grammar summaries ---------------------------------------------------- *)

type field_summary =
  | Constant of Bv.t list
  | Ranged of { low : Bv.t; high : Bv.t }
  | Unconstrained

(* Smallest achievable value of [value] under [constraints], by binary
   search on SAT(value <= mid). *)
let solver_min ~width value constraints =
  let rec go lo hi =
    (* invariant: some achievable value lies in [lo, hi] *)
    if Bv.equal lo hi then lo
    else
      let mid =
        Bv.add lo (Bv.lshr (Bv.sub hi lo) (Bv.one width))
      in
      if Solver.is_sat (Term.ule value (Term.const mid) :: constraints) then
        go lo mid
      else go (Bv.add mid (Bv.one width)) hi
  in
  go (Bv.zero width) (Bv.ones width)

let solver_max ~width value constraints =
  let rec go lo hi =
    if Bv.equal lo hi then lo
    else
      (* ceil((hi - lo) / 2) without the +1 that would overflow on the
         full-domain range: half + parity bit *)
      let diff = Bv.sub hi lo in
      let mid =
        Bv.add lo
          (Bv.add
             (Bv.lshr diff (Bv.one width))
             (Bv.logand diff (Bv.one width)))
      in
      if Solver.is_sat (Term.ule (Term.const mid) value :: constraints) then
        go mid hi
      else go lo (Bv.sub mid (Bv.one width))
  in
  go (Bv.zero width) (Bv.ones width)

let describe_grammar ?mask (pc : Predicate.client_predicate) =
  let layout = pc.Predicate.layout in
  let fields = Predicate.analyzed_fields ?mask layout in
  List.filter_map
    (fun (f : Layout.field) ->
      if f.Layout.size > 8 then None
      else begin
        let width = 8 * f.Layout.size in
        let per_path =
          List.map
            (fun (p : Predicate.client_path) ->
              let value =
                Layout.field_term layout p.Predicate.message f.Layout.field_name
              in
              match Term.const_value value with
              | Some c -> `Const c
              | None -> (
                  match Negate.related_constraints p (Term.var_ids value) with
                  | [] -> `Full
                  | constraints -> `Range (value, constraints)))
            pc.Predicate.paths
        in
        let summary =
          if List.for_all (function `Const _ -> true | _ -> false) per_path
          then
            Constant
              (List.filter_map
                 (function `Const c -> Some c | _ -> None)
                 per_path
              |> List.sort_uniq Bv.compare_unsigned)
          else if List.exists (function `Full -> true | _ -> false) per_path
          then Unconstrained
          else begin
            let lows, highs =
              List.fold_left
                (fun (lows, highs) case ->
                  match case with
                  | `Const c -> (c :: lows, c :: highs)
                  | `Range (value, constraints) ->
                      ( solver_min ~width value constraints :: lows,
                        solver_max ~width value constraints :: highs )
                  | `Full -> (lows, highs))
                ([], []) per_path
            in
            let low =
              List.fold_left
                (fun a b -> if Bv.ult b a then b else a)
                (Bv.ones width) lows
            in
            let high =
              List.fold_left
                (fun a b -> if Bv.ult a b then b else a)
                (Bv.zero width) highs
            in
            Ranged { low; high }
          end
        in
        Some (f.Layout.field_name, summary)
      end)
    fields

let pp_grammar fmt summaries =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (name, summary) ->
      Format.fprintf fmt "  %-14s " name;
      (match summary with
      | Constant values ->
          Format.fprintf fmt "constant in {%s}"
            (String.concat ", " (List.map (fun v -> Printf.sprintf "%Lu" (Bv.value v)) values))
      | Ranged { low; high } ->
          Format.fprintf fmt "values within [%Lu, %Lu] (hull)" (Bv.value low)
            (Bv.value high)
      | Unconstrained -> Format.fprintf fmt "unconstrained");
      Format.fprintf fmt "@,")
    summaries;
  Format.fprintf fmt "@]"
