open Achilles_smt

let generable_by ~client witness =
  let layout = client.Predicate.layout in
  if Array.length witness <> Achilles_symvm.Layout.total_size layout then
    invalid_arg "Refine.generable_by: message size mismatch";
  let produces (path : Predicate.client_path) =
    let equalities =
      Array.to_list
        (Array.mapi
           (fun i byte -> Term.eq path.Predicate.message.(i) (Term.const byte))
           witness)
    in
    Solver.is_sat (equalities @ path.Predicate.constraints)
  in
  List.find_opt produces client.Predicate.paths
  |> Option.map (fun (p : Predicate.client_path) -> p.Predicate.cp_id)

type result = {
  confirmed : Search.trojan list;
  refuted : (Search.trojan * int) list;
}

let refine ~client trojans =
  let confirmed, refuted =
    List.fold_left
      (fun (confirmed, refuted) (t : Search.trojan) ->
        match generable_by ~client t.Search.witness with
        | None -> (t :: confirmed, refuted)
        | Some path_id -> (confirmed, (t, path_id) :: refuted))
      ([], []) trojans
  in
  { confirmed = List.rev confirmed; refuted = List.rev refuted }

let pp_result fmt r =
  Format.fprintf fmt
    "refinement: %d witnesses confirmed as Trojan, %d refuted as generable"
    (List.length r.confirmed) (List.length r.refuted)
