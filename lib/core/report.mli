(** Human-readable rendering of analysis results: discovered Trojan
    messages with field decoding, discovery curves, and alive-set data. *)

open Achilles_smt
open Achilles_symvm

val pp_witness : Layout.t -> Format.formatter -> Bv.t array -> unit
(** Decode a concrete message per the layout, one line per field. *)

val pp_trojan : Layout.t -> Format.formatter -> Search.trojan -> unit
(** Unconfirmed trojans (witness query degraded to [Unknown]) are marked as
    such in the rendering. *)

val pp_coverage : Format.formatter -> Search.coverage -> unit
(** The honest-accounting block: shard completion/failures/retries/resumes,
    interruption, solver Unknown counts by site, budget exhaustions and
    injected faults. Quiet counters are omitted; a fault-free complete run
    renders as a single "complete" line. *)

val pp_metrics : Format.formatter -> Achilles_obs.Obs.snapshot -> unit
(** The observability metrics block: per-phase span counts and named
    counters from {!Achilles_obs.Obs.aggregate}. Counts only — digest-stable
    by construction, since digests never cover it and wall-clock values are
    confined to the trace file. Renders nothing when no spans or counters
    were recorded. *)

val discovery_curve :
  total:int -> Search.trojan list -> (float * float) list
(** Cumulative discovery points [(seconds, percent-of-total)] in found
    order — the series plotted in Figure 10. *)

val alive_scatter : Search.stats -> (int * int) list
(** (execution path length, alive client predicates) points — the scatter
    of Figure 11. *)

val render_ascii_curve :
  ?width:int -> ?height:int -> (float * float) list -> string
(** A small ASCII plot for terminal output of the benchmark harness. *)

(** {1 Deterministic digests}

    MD5 hex digests of canonical renderings that exclude every wall-clock
    field ([found_at], [wall_time]) and the history-dependent unsat-core
    contents of drop explanations. Two searches of the same client/server
    pair produce equal digests exactly when their reports agree on all
    deterministic content — the equality the multicore search guarantees
    across any [domains] setting, and what the golden tests and the CI
    matrix pin. *)

val report_digest : Search.report -> string
(** Trojans (state id, label, witness bytes, symbolic expression, message
    variables, plus an [unconfirmed] marker on budget-degraded ones),
    accepting server paths, drop events (sans cores), counter stats, and
    alive samples. Coverage is included {e only for incomplete runs}
    (failed shards or interruption): a partial report can never digest
    equal to the complete one, while complete runs keep the pre-coverage
    digest — so fault-free goldens stay pinned and a resumed run that
    completes reproduces the uninterrupted digest byte-for-byte. *)

val discovery_digest : Search.report -> string
(** Only the discovery series of Figure 10: the ordered trojan list. *)

val alive_digest : Search.stats -> string
(** Only the alive-sample rows behind Figure 11. *)

(** {1 Grammar summaries}

    A human-readable digest of the extracted client predicate, in the
    spirit of protocol reverse-engineering (the Caballero-Song line of
    related work §7): per message field, what values correct clients put
    there. *)

type field_summary =
  | Constant of Bv.t list  (** finitely many constants across the paths *)
  | Ranged of { low : Bv.t; high : Bv.t }
      (** unsigned hull of the achievable values (solver-computed; an
          over-approximation of the exact set) *)
  | Unconstrained  (** some path can put any value there *)

val describe_grammar :
  ?mask:string list ->
  Predicate.client_predicate ->
  (string * field_summary) list
(** One summary per (analyzed) layout field. Fields wider than 64 bits are
    skipped. *)

val pp_grammar :
  Format.formatter -> (string * field_summary) list -> unit
