(** The three local-state modes of §3.4.

    Servers whose predicate depends on state built across earlier message
    rounds need that state controlled before the analysis:

    - {b Concrete}: run the node concretely through a prefix of the
      protocol (earlier rounds, configuration, ...) and analyze from the
      resulting concrete state.
    - {b Constructed symbolic}: run a client symbolically and deliver its
      captured {e symbolic} message(s) to the server before the analyzed
      round, so the local state holds symbolic expressions covering every
      concrete scenario at once.
    - {b Over-approximate}: declare chosen globals as unconstrained (or
      constrained) fresh symbolic values, standing in for "any state the
      data structure could hold".

    Each mode is expressed as a transformation of the interpreter
    configuration used for the server analysis. *)

open Achilles_smt
open Achilles_symvm

val concrete :
  ?inputs:Bv.t list ->
  ?incoming:Bv.t array list ->
  prefix:Ast.program ->
  Interp.config ->
  Interp.config
(** Run [prefix] concretely; its final global values become the initial
    globals of the analysis. Raises [Invalid_argument] if the prefix
    crashes. *)

val constructed_symbolic :
  rounds:State.message list -> Interp.config -> Interp.config
(** Deliver previously captured symbolic messages (with their path
    constraints) to the server before the analyzed round. *)

val over_approximate :
  vars:(string * int) list ->
  ?constrain:(Term.t Achilles_symvm.State.String_map.t -> Term.t list) ->
  Interp.config ->
  Interp.config
(** Replace each named global (width in bits) with a fresh symbolic value;
    [constrain] may add initial path constraints over those values (it
    receives the name-to-term mapping of the overridden globals). *)
