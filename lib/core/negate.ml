open Achilles_smt
open Achilles_symvm
module Obs = Achilles_obs.Obs

let related_constraints (path : Predicate.client_path) seed_ids =
  let rec closure ids =
    let selected =
      List.filter
        (fun c -> List.exists (fun id -> List.mem id ids) (Term.var_ids c))
        path.Predicate.constraints
    in
    let ids' =
      List.sort_uniq compare (ids @ List.concat_map Term.var_ids selected)
    in
    if List.length ids' = List.length ids then selected else closure ids'
  in
  closure (List.sort_uniq compare seed_ids)

(* Rename every variable of [terms] to a fresh copy; returns the renaming
   substitution applied to each term. *)
let rename_fresh terms =
  let table : (int, Term.t) Hashtbl.t = Hashtbl.create 16 in
  let freshen (v : Term.var) =
    match Hashtbl.find_opt table v.Term.id with
    | Some t -> Some t
    | None ->
        let t = Term.var (Term.fresh_var ~name:(v.Term.name ^ "'") v.Term.sort) in
        Hashtbl.replace table v.Term.id t;
        Some t
  in
  List.map (Term.subst freshen) terms

let negate_field ~layout ~target (path : Predicate.client_path) field_name =
  let value = Layout.field_term layout path.Predicate.message field_name in
  match Term.const_value value with
  | Some c ->
      (* case 1: concrete value; the negation is target <> C *)
      Some (Term.neq target (Term.const c))
  | None -> (
      let ids = Term.var_ids value in
      match related_constraints path ids with
      | [] -> None (* case 2 with no constraints: abandon the field *)
      | constraints -> (
          match rename_fresh (value :: constraints) with
          | value' :: constraints' ->
              let negated = Term.or_l (List.map Term.not_ constraints') in
              Some (Term.and_ (Term.eq target value') negated)
          | [] -> assert false))

let negate_path ?(check_overlap = true) ?mask ~layout ~server_vars
    (path : Predicate.client_path) =
  Obs.span Obs.Negate @@ fun () ->
  Obs.count "negate.paths_negated";
  let server_bytes = Array.map Term.var server_vars in
  let binding = lazy (Predicate.bind_to_server ~server_vars path) in
  let fields = Predicate.analyzed_fields ?mask layout in
  let disjuncts =
    List.filter_map
      (fun (f : Layout.field) ->
        let target = Layout.field_term layout server_bytes f.Layout.field_name in
        match negate_field ~layout ~target path f.Layout.field_name with
        | None -> None
        | Some disjunct ->
            if
              check_overlap
              (* verdict-only, so the overlap probe shares the per-domain
                 incremental context (and its bitblasted binding) across
                 all fields and paths; scratch when incrementality is off *)
              && Solver.is_sat_assuming (disjunct :: Lazy.force binding)
            then None (* a message satisfies both: discard to avoid FPs *)
            else Some disjunct)
      fields
  in
  Term.or_l disjuncts
