open Achilles_smt
open Achilles_symvm
module Obs = Achilles_obs.Obs
module Slice = Achilles_slice.Slice

type t = {
  layout : Layout.t;
  fields : string list;
  n_paths : int;
  (* matrix.(field_index).(i * n_paths + j) *)
  matrix : (string * bool array) list;
}

type stats = {
  fields_covered : string list;
  pairs_checked : int;
  pairs_static : int;
  wall_time : float;
}

(* Does path [i] have a field value outside path [j]'s set? Checked as
   SAT(x = value_i /\ constraints_i /\ negate_field_j(x)) with [x] a shared
   fresh field-sized variable. The second component reports whether a solver
   query was actually issued — [negate_field] answering [None] settles the
   pair for free. *)
let check_pair ~layout field_name (pi : Predicate.client_path)
    (pj : Predicate.client_path) =
  let f = Layout.field layout field_name in
  let x = Term.var (Term.fresh_var ~name:("df_" ^ field_name) (Term.Bitvec (8 * f.Layout.size))) in
  match Negate.negate_field ~layout ~target:x pj field_name with
  | None ->
      (false, false)
      (* j's field is unconstrained symbolic: nothing escapes it *)
  | Some negation ->
      let value_i = Layout.field_term layout pi.Predicate.message field_name in
      let constraints_i =
        Negate.related_constraints pi (Term.var_ids value_i)
      in
      (* verdict-only: rides the per-domain incremental context so the
         O(paths^2 x fields) matrix reuses translations across probes *)
      (Solver.is_sat_assuming (Term.eq x value_i :: negation :: constraints_i), true)

(* Decide a pair without the solver when both sides' field summaries are
   statically known. Mirrors [check_pair] case by case, so the verdict is
   exactly what the query would return:
   - [j] concrete [cj], [i] concrete [ci]: SAT(x = ci /\ x <> cj) = ci <> cj;
   - [j] concrete, [i] an unconstrained injective chain over >= 1 variable
     bit: the image has >= 2 values, so one escapes [cj];
   - [j] symbolic and unconstrained: [negate_field] answers [None] and the
     pair is [false] with no query either way. *)
let static_verdict ~layout field_name (pi : Predicate.client_path)
    (pj : Predicate.client_path) =
  let value_j = Layout.field_term layout pj.Predicate.message field_name in
  match Term.const_value value_j with
  | Some cj -> (
      let value_i = Layout.field_term layout pi.Predicate.message field_name in
      match Term.const_value value_i with
      | Some ci -> Some (not (Bv.equal ci cj))
      | None -> (
          match Negate.related_constraints pi (Term.var_ids value_i) with
          | _ :: _ -> None
          | [] -> (
              match Slice.injective_image_bits value_i with
              | Some vw when vw > 0 -> Some true
              | _ -> None)))
  | None -> (
      match Negate.related_constraints pj (Term.var_ids value_j) with
      | [] -> Some false
      | _ :: _ -> None)

(* Number of fresh variables [check_pair ~layout field_name _ pj] allocates:
   the probe [x], plus — when [negate_field] reaches its renaming case —
   one copy of each distinct variable in [pj]'s field value and its related
   constraints. Computed from the same inputs so the parallel path can pin
   each check's fresh-counter slot without running it. *)
let check_allocs ~layout field_name (pj : Predicate.client_path) =
  let value = Layout.field_term layout pj.Predicate.message field_name in
  match Term.const_value value with
  | Some _ -> 1
  | None -> (
      match Negate.related_constraints pj (Term.var_ids value) with
      | [] -> 1
      | constraints ->
          1
          + List.length
              (List.sort_uniq compare
                 (List.concat_map Term.var_ids (value :: constraints))))

(* Alpha-canonical signature of a path's field: the field value term plus
   its related constraints with variables renamed to their order of first
   occurrence. Client utilities built from the same code produce identical
   signatures with different fresh variables; pair checks are memoized on
   the signature pair, which collapses the quadratic blow-up. *)
let field_signature ~layout field_name (p : Predicate.client_path) =
  let value = Layout.field_term layout p.Predicate.message field_name in
  let constraints = Negate.related_constraints p (Term.var_ids value) in
  Term.alpha_key (value :: constraints)

let compute ?(memoize = true) ?mask ?pool ?use_slice ?server_slice
    (pc : Predicate.client_predicate) =
  Obs.span Obs.Different_from @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let use_slice =
    match use_slice with Some b -> b | None -> Slice.enabled ()
  in
  (* A field no server branch can read never gets its message variables
     into a path constraint, so [single_field_of] never attributes a kill
     to it and its matrix rows are never consulted: answer every pair
     [false] (the safe no-drop default) without solving. *)
  let field_irrelevant =
    match server_slice with
    | Some s when use_slice -> fun f -> not (Slice.field_reaches_branch s f)
    | _ -> fun _ -> false
  in
  let layout = pc.Predicate.layout in
  let fields = Predicate.independent_fields ?mask pc in
  let paths = Array.of_list pc.Predicate.paths in
  let n = Array.length paths in
  (* One pass in the (field, row-major cell) iteration order collects the
     representative pair of every distinct memo key; each representative
     becomes one solver check. The sequential path below and the parallel
     path agree on this order, and [check_allocs] predicts how many fresh
     variables each check consumes, so pinning check [k]'s fresh counter to
     [base] plus the allocations of checks [0..k-1] on whichever domain
     runs it reproduces the sequential variable ids exactly. *)
  let checks = ref [] (* representatives, newest first *) in
  let n_checks = ref 0 in
  let plan =
    List.map
      (fun field_name ->
        let signature =
          Array.map (fun p -> field_signature ~layout field_name p) paths
        in
        let memo : (string * string, int) Hashtbl.t = Hashtbl.create 64 in
        (* cell -> index of the check deciding it; -1 on the diagonal *)
        let cell_check = Array.make (n * n) (-1) in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            if i <> j then begin
              let key = (signature.(i), signature.(j)) in
              let check =
                match if memoize then Hashtbl.find_opt memo key else None with
                | Some k -> k
                | None ->
                    let k = !n_checks in
                    n_checks := k + 1;
                    checks := (field_name, i, j) :: !checks;
                    if memoize then Hashtbl.replace memo key k;
                    k
              in
              cell_check.((i * n) + j) <- check
            end
          done
        done;
        (field_name, cell_check))
      fields
  in
  let checks = Array.of_list (List.rev !checks) in
  let base = Term.fresh_counter_value () in
  (* Every check — run or statically skipped — keeps its fresh-counter
     slot: check [k] replays from [base + offsets.(k)] and the counter ends
     at [base + offsets.(total)] regardless of which checks actually ran,
     so every later fresh variable (and hence the report digest) is
     independent of slicing and of the worker-domain schedule. Pinning is
     the identity when nothing is skipped: [check_allocs] is exact. *)
  let offsets = Array.make (Array.length checks + 1) 0 in
  Array.iteri
    (fun k (field_name, _i, j) ->
      offsets.(k + 1) <-
        offsets.(k) + check_allocs ~layout field_name paths.(j))
    checks;
  let run_check k =
    let field_name, i, j = checks.(k) in
    Term.set_fresh_counter (base + offsets.(k));
    if field_irrelevant field_name then (false, `Static)
    else
      match
        if use_slice then
          static_verdict ~layout field_name paths.(i) paths.(j)
        else None
      with
      | Some v -> (v, `Static)
      | None -> (
          match check_pair ~layout field_name paths.(i) paths.(j) with
          | r, true -> (r, `Query)
          | r, false -> (r, `Free))
  in
  let outcomes =
    match pool with
    | None -> Array.init (Array.length checks) run_check
    | Some pool ->
        Pool.parallel_map pool run_check
          (Array.init (Array.length checks) Fun.id)
  in
  Term.set_fresh_counter (base + offsets.(Array.length checks));
  let matrix =
    List.map
      (fun (field_name, cell_check) ->
        ( field_name,
          Array.map (fun k -> k >= 0 && fst outcomes.(k)) cell_check ))
      plan
  in
  let count kind =
    Array.fold_left
      (fun acc (_, k) -> if k = kind then acc + 1 else acc)
      0 outcomes
  in
  let pairs_checked = count `Query in
  let pairs_static = count `Static in
  Obs.count ~n:pairs_checked "different_from.pair_checks";
  if pairs_static > 0 then Obs.count ~n:pairs_static "slice.pairs_static";
  let t = { layout; fields; n_paths = n; matrix } in
  let stats =
    {
      fields_covered = fields;
      pairs_checked;
      pairs_static;
      wall_time = Unix.gettimeofday () -. t0;
    }
  in
  (t, stats)

let covers_field t name = List.mem name t.fields

let different t ~i ~j ~field =
  match List.assoc_opt field t.matrix with
  | None -> false
  | Some cells ->
      if i < 0 || j < 0 || i >= t.n_paths || j >= t.n_paths then
        invalid_arg "Different_from.different: path index out of range"
      else i <> j && cells.((i * t.n_paths) + j)

let layout t = t.layout
