open Achilles_smt
open Achilles_symvm

type t = {
  layout : Layout.t;
  fields : string list;
  n_paths : int;
  (* matrix.(field_index).(i * n_paths + j) *)
  matrix : (string * bool array) list;
}

type stats = {
  fields_covered : string list;
  pairs_checked : int;
  wall_time : float;
}

(* Does path [i] have a field value outside path [j]'s set? Checked as
   SAT(x = value_i /\ constraints_i /\ negate_field_j(x)) with [x] a shared
   fresh field-sized variable. *)
let check_pair ~layout field_name (pi : Predicate.client_path)
    (pj : Predicate.client_path) =
  let f = Layout.field layout field_name in
  let x = Term.var (Term.fresh_var ~name:("df_" ^ field_name) (Term.Bitvec (8 * f.Layout.size))) in
  match Negate.negate_field ~layout ~target:x pj field_name with
  | None -> false (* j's field is unconstrained symbolic: nothing escapes it *)
  | Some negation ->
      let value_i = Layout.field_term layout pi.Predicate.message field_name in
      let constraints_i =
        Negate.related_constraints pi (Term.var_ids value_i)
      in
      Solver.is_sat (Term.eq x value_i :: negation :: constraints_i)

(* Alpha-canonical signature of a path's field: the field value term plus
   its related constraints with variables renamed to their order of first
   occurrence. Client utilities built from the same code produce identical
   signatures with different fresh variables; pair checks are memoized on
   the signature pair, which collapses the quadratic blow-up. *)
let field_signature ~layout field_name (p : Predicate.client_path) =
  let value = Layout.field_term layout p.Predicate.message field_name in
  let constraints = Negate.related_constraints p (Term.var_ids value) in
  Term.alpha_key (value :: constraints)

let compute ?(memoize = true) ?mask (pc : Predicate.client_predicate) =
  let t0 = Unix.gettimeofday () in
  let layout = pc.Predicate.layout in
  let fields = Predicate.independent_fields ?mask pc in
  let paths = Array.of_list pc.Predicate.paths in
  let n = Array.length paths in
  let pairs_checked = ref 0 in
  let matrix =
    List.map
      (fun field_name ->
        let signature =
          Array.map (fun p -> field_signature ~layout field_name p) paths
        in
        let memo : (string * string, bool) Hashtbl.t = Hashtbl.create 64 in
        let cells = Array.make (n * n) false in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            if i <> j then begin
              let key = (signature.(i), signature.(j)) in
              let result =
                match if memoize then Hashtbl.find_opt memo key else None with
                | Some r -> r
                | None ->
                    incr pairs_checked;
                    let r = check_pair ~layout field_name paths.(i) paths.(j) in
                    if memoize then Hashtbl.replace memo key r;
                    r
              in
              cells.((i * n) + j) <- result
            end
          done
        done;
        (field_name, cells))
      fields
  in
  let t = { layout; fields; n_paths = n; matrix } in
  let stats =
    {
      fields_covered = fields;
      pairs_checked = !pairs_checked;
      wall_time = Unix.gettimeofday () -. t0;
    }
  in
  (t, stats)

let covers_field t name = List.mem name t.fields

let different t ~i ~j ~field =
  match List.assoc_opt field t.matrix with
  | None -> false
  | Some cells ->
      if i < 0 || j < 0 || i >= t.n_paths || j >= t.n_paths then
        invalid_arg "Different_from.different: path index out of range"
      else i <> j && cells.((i * t.n_paths) + j)

let layout t = t.layout
