open Achilles_smt
open Achilles_symvm
module Obs = Achilles_obs.Obs

type t = {
  layout : Layout.t;
  fields : string list;
  n_paths : int;
  (* matrix.(field_index).(i * n_paths + j) *)
  matrix : (string * bool array) list;
}

type stats = {
  fields_covered : string list;
  pairs_checked : int;
  wall_time : float;
}

(* Does path [i] have a field value outside path [j]'s set? Checked as
   SAT(x = value_i /\ constraints_i /\ negate_field_j(x)) with [x] a shared
   fresh field-sized variable. *)
let check_pair ~layout field_name (pi : Predicate.client_path)
    (pj : Predicate.client_path) =
  let f = Layout.field layout field_name in
  let x = Term.var (Term.fresh_var ~name:("df_" ^ field_name) (Term.Bitvec (8 * f.Layout.size))) in
  match Negate.negate_field ~layout ~target:x pj field_name with
  | None -> false (* j's field is unconstrained symbolic: nothing escapes it *)
  | Some negation ->
      let value_i = Layout.field_term layout pi.Predicate.message field_name in
      let constraints_i =
        Negate.related_constraints pi (Term.var_ids value_i)
      in
      (* verdict-only: rides the per-domain incremental context so the
         O(paths^2 x fields) matrix reuses translations across probes *)
      Solver.is_sat_assuming (Term.eq x value_i :: negation :: constraints_i)

(* Number of fresh variables [check_pair ~layout field_name _ pj] allocates:
   the probe [x], plus — when [negate_field] reaches its renaming case —
   one copy of each distinct variable in [pj]'s field value and its related
   constraints. Computed from the same inputs so the parallel path can pin
   each check's fresh-counter slot without running it. *)
let check_allocs ~layout field_name (pj : Predicate.client_path) =
  let value = Layout.field_term layout pj.Predicate.message field_name in
  match Term.const_value value with
  | Some _ -> 1
  | None -> (
      match Negate.related_constraints pj (Term.var_ids value) with
      | [] -> 1
      | constraints ->
          1
          + List.length
              (List.sort_uniq compare
                 (List.concat_map Term.var_ids (value :: constraints))))

(* Alpha-canonical signature of a path's field: the field value term plus
   its related constraints with variables renamed to their order of first
   occurrence. Client utilities built from the same code produce identical
   signatures with different fresh variables; pair checks are memoized on
   the signature pair, which collapses the quadratic blow-up. *)
let field_signature ~layout field_name (p : Predicate.client_path) =
  let value = Layout.field_term layout p.Predicate.message field_name in
  let constraints = Negate.related_constraints p (Term.var_ids value) in
  Term.alpha_key (value :: constraints)

let compute ?(memoize = true) ?mask ?pool (pc : Predicate.client_predicate) =
  Obs.span Obs.Different_from @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let layout = pc.Predicate.layout in
  let fields = Predicate.independent_fields ?mask pc in
  let paths = Array.of_list pc.Predicate.paths in
  let n = Array.length paths in
  (* One pass in the (field, row-major cell) iteration order collects the
     representative pair of every distinct memo key; each representative
     becomes one solver check. The sequential path below and the parallel
     path agree on this order, and [check_allocs] predicts how many fresh
     variables each check consumes, so pinning check [k]'s fresh counter to
     [base] plus the allocations of checks [0..k-1] on whichever domain
     runs it reproduces the sequential variable ids exactly. *)
  let checks = ref [] (* representatives, newest first *) in
  let n_checks = ref 0 in
  let plan =
    List.map
      (fun field_name ->
        let signature =
          Array.map (fun p -> field_signature ~layout field_name p) paths
        in
        let memo : (string * string, int) Hashtbl.t = Hashtbl.create 64 in
        (* cell -> index of the check deciding it; -1 on the diagonal *)
        let cell_check = Array.make (n * n) (-1) in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            if i <> j then begin
              let key = (signature.(i), signature.(j)) in
              let check =
                match if memoize then Hashtbl.find_opt memo key else None with
                | Some k -> k
                | None ->
                    let k = !n_checks in
                    n_checks := k + 1;
                    checks := (field_name, i, j) :: !checks;
                    if memoize then Hashtbl.replace memo key k;
                    k
              in
              cell_check.((i * n) + j) <- check
            end
          done
        done;
        (field_name, cell_check))
      fields
  in
  let checks = Array.of_list (List.rev !checks) in
  let base = Term.fresh_counter_value () in
  let results =
    match pool with
    | None ->
        Array.map
          (fun (field_name, i, j) ->
            check_pair ~layout field_name paths.(i) paths.(j))
          checks
    | Some pool ->
        let offsets = Array.make (Array.length checks + 1) 0 in
        Array.iteri
          (fun k (field_name, _i, j) ->
            offsets.(k + 1) <-
              offsets.(k) + check_allocs ~layout field_name paths.(j))
          checks;
        let results =
          Pool.parallel_map pool
            (fun k ->
              let field_name, i, j = checks.(k) in
              Term.set_fresh_counter (base + offsets.(k));
              check_pair ~layout field_name paths.(i) paths.(j))
            (Array.init (Array.length checks) Fun.id)
        in
        Term.set_fresh_counter (base + offsets.(Array.length checks));
        results
  in
  let matrix =
    List.map
      (fun (field_name, cell_check) ->
        ( field_name,
          Array.map (fun k -> k >= 0 && results.(k)) cell_check ))
      plan
  in
  let pairs_checked = ref (Array.length checks) in
  Obs.count ~n:!pairs_checked "different_from.pair_checks";
  let t = { layout; fields; n_paths = n; matrix } in
  let stats =
    {
      fields_covered = fields;
      pairs_checked = !pairs_checked;
      wall_time = Unix.gettimeofday () -. t0;
    }
  in
  (t, stats)

let covers_field t name = List.mem name t.fields

let different t ~i ~j ~field =
  match List.assoc_opt field t.matrix with
  | None -> false
  | Some cells ->
      if i < 0 || j < 0 || i >= t.n_paths || j >= t.n_paths then
        invalid_arg "Different_from.different: path index out of range"
      else i <> j && cells.((i * t.n_paths) + j)

let layout t = t.layout
