open Achilles_smt
open Achilles_symvm

type config = {
  drop_alive : bool;
  use_different_from : bool;
  prune_no_trojan : bool;
  check_overlap : bool;
  incremental_bindings : bool;
      (* alive-set checks through per-client incremental solver sessions:
         the msgS = msgC binding is asserted once and each check solves
         under the current path constraints as assumptions *)
  explain_drops : bool;
      (* record, for every dropped client path, the unsat core of server
         constraints that made it incompatible (requires
         incremental_bindings) *)
  mask : string list option;
  witnesses_per_path : int;
  distinct_by : (Bv.t array -> Term.var array -> Term.t) option;
  interp : Interp.config;
}

let default_config =
  {
    drop_alive = true;
    use_different_from = true;
    prune_no_trojan = true;
    check_overlap = true;
    incremental_bindings = true;
    explain_drops = false;
    mask = None;
    witnesses_per_path = 1;
    distinct_by = None;
    interp = Interp.default_config;
  }

type trojan = {
  server_state_id : int;
  accept_label : string;
  witness : Bv.t array;
  symbolic : Term.t list;
  msg_vars : Term.var array;
  found_at : float;
}

type alive_sample = { state_id : int; path_length : int; alive : int }

type drop_explanation = {
  at_state : int; (* server state where the client path died *)
  dropped_path : int; (* cp_id *)
  conflicting : Term.t list; (* server constraints in the unsat core *)
}

type stats = {
  accepting_paths : int;
  rejecting_paths : int;
  other_paths : int;
  pruned_states : int;
  forks : int;
  alive_checks : int;
  transitive_drops : int;
  alive_samples : alive_sample list;
  wall_time : float;
}

type report = {
  trojans : trojan list;
  accepting : Predicate.server_path list;
  drops : drop_explanation list; (* populated when [explain_drops] is set *)
  search_stats : stats;
}

(* Mutable search context shared by the interpreter hooks. *)
type search_ctx = {
  cfg : config;
  client : Predicate.client_predicate;
  paths : Predicate.client_path array;
  different_from : Different_from.t option;
  alive : (int, int list) Hashtbl.t; (* state id -> alive client indices *)
  bindings : (int, Term.t list) Hashtbl.t; (* client idx -> msgS=msgC binding *)
  sessions : (int, Solver.Incremental.session) Hashtbl.t;
      (* client idx -> incremental session with the binding asserted *)
  negations : (int, Term.t) Hashtbl.t; (* client idx -> negate(pathCi) *)
  mutable server_vars : Term.var array option;
  mutable field_var_ids : (string * int list) list; (* server var ids per field *)
  mutable trojans_rev : trojan list;
  mutable accepting_rev : Predicate.server_path list;
  mutable samples_rev : alive_sample list;
  mutable drops_rev : drop_explanation list;
  mutable n_accepting : int;
  mutable n_rejecting : int;
  mutable n_other : int;
  mutable n_pruned : int;
  mutable n_alive_checks : int;
  mutable n_transitive : int;
  started : float;
}

let all_indices ctx = List.init (Array.length ctx.paths) Fun.id

let setup_server_vars ctx vars =
  match ctx.server_vars with
  | Some existing when existing == vars -> ()
  | Some _ ->
      (* A second, distinct symbolic message would need per-state negations;
         all our server models receive the analyzed message exactly once. *)
      invalid_arg "Search: server received more than one symbolic message"
  | None ->
      ctx.server_vars <- Some vars;
      let layout = ctx.client.Predicate.layout in
      ctx.field_var_ids <-
        List.map
          (fun (f : Layout.field) ->
            let ids =
              List.init f.Layout.size (fun i ->
                  vars.(f.Layout.offset + i).Term.id)
            in
            (f.Layout.field_name, List.sort compare ids))
          (Layout.fields layout)

let binding_for ctx idx =
  match Hashtbl.find_opt ctx.bindings idx with
  | Some b -> b
  | None ->
      let server_vars = Option.get ctx.server_vars in
      let b = Predicate.bind_to_server ~server_vars ctx.paths.(idx) in
      Hashtbl.replace ctx.bindings idx b;
      b

let session_for ctx idx =
  match Hashtbl.find_opt ctx.sessions idx with
  | Some s -> s
  | None ->
      let s = Solver.Incremental.create () in
      List.iter (Solver.Incremental.assert_always s) (binding_for ctx idx);
      Hashtbl.replace ctx.sessions idx s;
      s

(* pathS /\ bind(pathCi) unsatisfiable? The hot query of the search. *)
let binding_incompatible ctx idx (st : State.t) =
  if ctx.cfg.incremental_bindings then
    Solver.Incremental.is_unsat (session_for ctx idx) st.State.path
  else Solver.is_unsat (List.rev_append st.State.path (binding_for ctx idx))

let negation_for ctx idx =
  match Hashtbl.find_opt ctx.negations idx with
  | Some n -> n
  | None ->
      let server_vars = Option.get ctx.server_vars in
      let n =
        Negate.negate_path ~check_overlap:ctx.cfg.check_overlap
          ?mask:ctx.cfg.mask ~layout:ctx.client.Predicate.layout ~server_vars
          ctx.paths.(idx)
      in
      Hashtbl.replace ctx.negations idx n;
      n

let alive_for ctx (st : State.t) =
  match Hashtbl.find_opt ctx.alive st.State.id with
  | Some l -> l
  | None -> (
      match st.State.parent with
      | Some p when Hashtbl.mem ctx.alive p -> Hashtbl.find ctx.alive p
      | _ -> all_indices ctx)

(* Which single field, if any, does this constraint depend on? The
   constraint must mention only server message variables, all within one
   field. *)
let single_field_of ctx cond =
  let ids = Term.var_ids cond in
  if ids = [] then None
  else
    List.find_opt
      (fun (_, field_ids) -> List.for_all (fun id -> List.mem id field_ids) ids)
      ctx.field_var_ids
    |> Option.map fst

let trojan_query ctx (st : State.t) alive =
  List.rev_append
    (List.map (negation_for ctx) alive)
    (List.rev st.State.path)

(* The incremental step: update the alive set for the new constraint, then
   decide whether any Trojan message can still trigger this state. *)
let on_constraint ctx (st : State.t) cond =
  match st.State.msg_vars with
  | None -> true (* constraints before the message arrives: nothing to do *)
  | Some vars ->
      setup_server_vars ctx vars;
      let alive = alive_for ctx st in
      let alive =
        if not ctx.cfg.drop_alive then alive
        else begin
          let field =
            if ctx.cfg.use_different_from && ctx.different_from <> None then
              single_field_of ctx cond
            else None
          in
          let dropped = Hashtbl.create 8 in
          let maybe_transitive_drop i =
            match field, ctx.different_from with
            | Some a, Some df when Different_from.covers_field df a ->
                List.iter
                  (fun j ->
                    if
                      (not (Hashtbl.mem dropped j))
                      && not (Different_from.different df ~i:j ~j:i ~field:a)
                    then begin
                      Hashtbl.replace dropped j ();
                      ctx.n_transitive <- ctx.n_transitive + 1
                    end)
                  (all_indices ctx)
            | _ -> ()
          in
          List.iter
            (fun i ->
              if not (Hashtbl.mem dropped i) then begin
                ctx.n_alive_checks <- ctx.n_alive_checks + 1;
                if binding_incompatible ctx i st then begin
                  if ctx.cfg.explain_drops && ctx.cfg.incremental_bindings
                  then begin
                    match Solver.Incremental.unsat_core (session_for ctx i) with
                    | Some conflicting ->
                        ctx.drops_rev <-
                          {
                            at_state = st.State.id;
                            dropped_path = i;
                            conflicting;
                          }
                          :: ctx.drops_rev
                    | None -> ()
                  end;
                  Hashtbl.replace dropped i ();
                  maybe_transitive_drop i
                end
              end)
            alive;
          List.filter (fun i -> not (Hashtbl.mem dropped i)) alive
        end
      in
      Hashtbl.replace ctx.alive st.State.id alive;
      ctx.samples_rev <-
        {
          state_id = st.State.id;
          path_length = List.length st.State.path;
          alive = List.length alive;
        }
        :: ctx.samples_rev;
      if not ctx.cfg.prune_no_trojan then true
      else begin
        let feasible = Solver.is_sat (trojan_query ctx st alive) in
        if not feasible then ctx.n_pruned <- ctx.n_pruned + 1;
        feasible
      end

let on_fork ctx ~parent ~child =
  let alive = alive_for ctx parent in
  Hashtbl.replace ctx.alive child.State.id alive

let witness_of_model vars model =
  Array.map
    (fun v ->
      match Model.find model v with
      | Some (Model.Vbv bv) -> bv
      | Some (Model.Vbool _) -> assert false
      | None -> Bv.zero 8)
    vars

(* Enumerate concrete Trojan witnesses on an accepting path, blocking each
   discovered message (or message class) before re-solving. *)
let emit_trojans ctx (st : State.t) label =
  match st.State.msg_vars with
  | None -> ()
  | Some vars ->
      setup_server_vars ctx vars;
      let alive = alive_for ctx st in
      let base_query = trojan_query ctx st alive in
      ctx.accepting_rev <-
        {
          Predicate.sp_state_id = st.State.id;
          label;
          msg_vars = vars;
          sp_constraints = List.rev st.State.path;
        }
        :: ctx.accepting_rev;
      let block witness =
        match ctx.cfg.distinct_by with
        | Some f -> f witness vars
        | None ->
            (* block exactly these bytes *)
            Term.not_
              (Term.and_l
                 (Array.to_list
                    (Array.mapi
                       (fun i v -> Term.eq (Term.var vars.(i)) (Term.const v))
                       witness)))
      in
      let rec enumerate blocked n =
        if n < ctx.cfg.witnesses_per_path then
          match Solver.get_model (List.rev_append blocked base_query) with
          | None -> ()
          | Some model ->
              let witness = witness_of_model vars model in
              ctx.trojans_rev <-
                {
                  server_state_id = st.State.id;
                  accept_label = label;
                  witness;
                  symbolic = base_query;
                  msg_vars = vars;
                  found_at = Unix.gettimeofday () -. ctx.started;
                }
                :: ctx.trojans_rev;
              enumerate (block witness :: blocked) (n + 1)
      in
      enumerate [] 0

(* Greedily zero out witness bytes while the Trojan expression stays
   satisfiable: smaller witnesses make fire-drill payloads easier to read
   and diff against valid traffic. *)
let minimize_witness (t : trojan) =
  let pins = Array.map (fun b -> Some b) t.witness in
  let pin_terms () =
    Array.to_list pins
    |> List.mapi (fun i p ->
           Option.map (fun b -> Term.eq (Term.var t.msg_vars.(i)) (Term.const b)) p)
    |> List.filter_map Fun.id
  in
  let current = Array.copy t.witness in
  Array.iteri
    (fun i byte ->
      if not (Bv.equal byte (Bv.zero 8)) then begin
        pins.(i) <- Some (Bv.zero 8);
        if Solver.is_sat (pin_terms () @ t.symbolic) then
          current.(i) <- Bv.zero 8
        else pins.(i) <- Some current.(i)
      end)
    t.witness;
  current

let on_terminal ctx (st : State.t) =
  match st.State.status with
  | State.Accepted label ->
      ctx.n_accepting <- ctx.n_accepting + 1;
      emit_trojans ctx st label
  | State.Rejected _ | State.Finished ->
      (* per §5.1, a server path that returns to the event loop without
         accepting rejected its message *)
      ctx.n_rejecting <- ctx.n_rejecting + 1
  | State.Dropped | State.Crashed _ -> ctx.n_other <- ctx.n_other + 1
  | State.Running -> ()

let run ?(config = default_config) ?different_from ~client ~server () =
  let started = Unix.gettimeofday () in
  let ctx =
    {
      cfg = config;
      client;
      paths = Array.of_list client.Predicate.paths;
      different_from;
      alive = Hashtbl.create 256;
      bindings = Hashtbl.create 64;
      sessions = Hashtbl.create 64;
      negations = Hashtbl.create 64;
      server_vars = None;
      field_var_ids = [];
      trojans_rev = [];
      accepting_rev = [];
      samples_rev = [];
      drops_rev = [];
      n_accepting = 0;
      n_rejecting = 0;
      n_other = 0;
      n_pruned = 0;
      n_alive_checks = 0;
      n_transitive = 0;
      started;
    }
  in
  let hooks =
    {
      Interp.on_constraint = (fun st c -> on_constraint ctx st c);
      Interp.on_fork = (fun ~parent ~child -> on_fork ctx ~parent ~child);
      Interp.on_send = (fun _ _ -> ());
      Interp.on_terminal = (fun st -> on_terminal ctx st);
    }
  in
  let run_result = Interp.run ~config:config.interp ~hooks server in
  let stats =
    {
      accepting_paths = ctx.n_accepting;
      rejecting_paths = ctx.n_rejecting;
      other_paths = ctx.n_other;
      pruned_states = ctx.n_pruned;
      forks = run_result.Interp.stats.Interp.forks;
      alive_checks = ctx.n_alive_checks;
      transitive_drops = ctx.n_transitive;
      alive_samples = List.rev ctx.samples_rev;
      wall_time = Unix.gettimeofday () -. started;
    }
  in
  {
    trojans = List.rev ctx.trojans_rev;
    accepting = List.rev ctx.accepting_rev;
    drops = List.rev ctx.drops_rev;
    search_stats = stats;
  }
