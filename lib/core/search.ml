open Achilles_smt
open Achilles_symvm
module Obs = Achilles_obs.Obs
module Slice = Achilles_slice.Slice

type config = {
  drop_alive : bool;
  use_different_from : bool;
  prune_no_trojan : bool;
  check_overlap : bool;
  incremental_bindings : bool;
      (* alive-set checks through per-client incremental solver sessions:
         the msgS = msgC binding is asserted once and each check solves
         under the current path constraints as assumptions *)
  explain_drops : bool;
      (* record, for every dropped client path, the unsat core of server
         constraints that made it incompatible (requires
         incremental_bindings) *)
  use_slice : bool;
      (* answer branch feasibility through the static-slice oracle (cone
         restriction + equality-chain decisions); verdict-preserving, so
         report digests are unchanged *)
  mask : string list option;
  witnesses_per_path : int;
  distinct_by : (Bv.t array -> Term.var array -> Term.t) option;
  interp : Interp.config;
  domains : int;
  split_bits : int option;
  solver_budget : Solver.budget option;
      (* ambient per-query budget installed in every search worker *)
  shard_retries : int; (* extra attempts per raising shard task *)
  shard_backoff : int -> float; (* seconds to sleep before retry [n+1] *)
  checkpoint_dir : string option;
      (* flush each completed shard's event log here (atomically) *)
  resume : bool; (* reuse matching shard checkpoints already in the dir *)
  cancel : unit -> bool;
      (* polled cooperative interrupt: when it turns true, in-flight
         exploration stops and only already-completed shards are reported *)
  chaos : (shard_index:int -> attempt:int -> unit) option;
      (* test hook run at each shard attempt start; may raise to simulate
         a crashing worker *)
}

let domains_from_env () =
  match Sys.getenv_opt "ACHILLES_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 1)
  | None -> 1

let default_config =
  {
    drop_alive = true;
    use_different_from = true;
    prune_no_trojan = true;
    check_overlap = true;
    incremental_bindings = true;
    explain_drops = false;
    use_slice = Slice.enabled ();
    mask = None;
    witnesses_per_path = 1;
    distinct_by = None;
    interp = Interp.default_config;
    domains = domains_from_env ();
    split_bits = None;
    solver_budget = None;
    shard_retries = 2;
    shard_backoff = (fun attempt -> 0.05 *. (2. ** float_of_int attempt));
    checkpoint_dir = None;
    resume = false;
    cancel = (fun () -> false);
    chaos = None;
  }

type trojan = {
  server_state_id : int;
  accept_label : string;
  witness : Bv.t array;
  symbolic : Term.t list;
  msg_vars : Term.var array;
  confirmed : bool;
      (* false: the witness query went Unknown, so the symbolic expression
         stands but no concrete message was extracted (witness is zeros) *)
  found_at : float;
}

type alive_sample = { state_id : int; path_length : int; alive : int }

type drop_explanation = {
  at_state : int; (* server state where the client path died *)
  dropped_path : int; (* cp_id *)
  conflicting : Term.t list; (* server constraints in the unsat core *)
}

type stats = {
  accepting_paths : int;
  rejecting_paths : int;
  other_paths : int;
  pruned_states : int;
  forks : int;
  alive_checks : int;
  transitive_drops : int;
  alive_samples : alive_sample list;
  wall_time : float;
}

(* Honest accounting of everything that degraded a run: failed or resumed
   shards, Unknown answers by query site, budget exhaustions, injected
   faults, cancellation. A pristine run has [coverage_complete] true and
   all-zero degradation counters. *)
type coverage = {
  total_shards : int;
  completed_shards : int; (* shards whose event log made the report *)
  failed_shards : int list; (* shard indices that exhausted their retries *)
  resumed_shards : int; (* completed shards loaded from a checkpoint *)
  shard_retry_attempts : int; (* extra shard attempts spent on retries *)
  interrupted : bool; (* the cooperative cancel fired *)
  unknown_alive : int; (* alive-check Unknowns: client path kept alive *)
  unknown_prune : int; (* prune-check Unknowns: state kept *)
  unknown_witness : int; (* witness Unknowns: trojan emitted unconfirmed *)
  budget_exhaustions : int;
  injected_faults : int;
  abandoned_states : int; (* states cut off by cancellation *)
  (* solver result-cache health at the end of the run, process-wide: live
     entries across every domain's bounded cache, evictions and hits since
     the last stats reset, and the query total the hits are a fraction of.
     Never digested: cache behavior may not influence reported results. *)
  solver_cache_entries : int;
  solver_cache_evictions : int;
  solver_cache_hits : int;
  solver_queries : int;
  (* slice-oracle effectiveness, process-wide since the last stats reset
     (like the cache stats above — never digested, and multi-process
     workers' counters stay in their own processes): branch decisions
     settled statically, and full-path feasibility queries replaced by
     cone-restricted ones *)
  slice_static_branches : int;
  slice_cone_queries : int;
}

(* Cumulative Obs counter reads, mirroring [Solver.aggregate_stats]. *)
let slice_counters () =
  let counters = (Obs.aggregate ()).Obs.counters in
  let get name = Option.value ~default:0 (List.assoc_opt name counters) in
  (get "slice.branch_skipped", get "slice.cone_queries")

let coverage_complete c =
  c.completed_shards = c.total_shards
  && c.failed_shards = [] && not c.interrupted

type report = {
  trojans : trojan list;
  accepting : Predicate.server_path list;
  drops : drop_explanation list; (* populated when [explain_drops] is set *)
  search_stats : stats;
  coverage : coverage;
}

(* --- parallel-mode event log ----------------------------------------------

   A shard worker cannot use sequential state ids (each task numbers its own
   states), so instead of filling the report directly it logs every
   observation keyed by the state's route. Only the shard that *owns* a
   state records it, so the merge is a concatenation — no deduplication —
   sorted by route, with ids rewritten to the lexicographic rank of the
   route, which equals the id the sequential depth-first run would have
   assigned. *)

type cevent = {
  (* one per recorded constraint on a message-constrained state *)
  ce_route : string;
  ce_plen : int;
  ce_alive : int;
  ce_checks : int;
  ce_transitive : int;
  ce_pruned : bool;
}

type wtrojan = {
  wt_route : string;
  wt_idx : int; (* enumeration index within the accepting state *)
  wt_label : string;
  wt_witness : Bv.t array;
  wt_symbolic : Term.t list;
  wt_msg_vars : Term.var array;
  wt_confirmed : bool;
  wt_found_at : float;
}

type waccept = {
  wa_route : string;
  wa_label : string;
  wa_msg_vars : Term.var array;
  wa_constraints : Term.t list;
}

type wdrop = {
  wd_route : string;
  wd_plen : int;
  wd_ord : int; (* position within the constraint event *)
  wd_path : int;
  wd_conflicting : Term.t list;
}

type recorder = {
  mutable rec_routes : string list; (* owned fork children *)
  mutable rec_cevents : cevent list;
  mutable rec_terminals : (string * State.status) list;
  mutable rec_trojans : wtrojan list;
  mutable rec_accepting : waccept list;
  mutable rec_drops : wdrop list;
  mutable rec_forks : int;
  (* degradation accounting (coverage block), owner-deduplicated like the
     other events *)
  mutable rec_unknown_alive : int;
  mutable rec_unknown_prune : int;
  mutable rec_unknown_witness : int;
  mutable rec_exhaustions : int; (* solver-stat delta over the task *)
  mutable rec_faults : int;
}

let fresh_recorder () =
  {
    rec_routes = [];
    rec_cevents = [];
    rec_terminals = [];
    rec_trojans = [];
    rec_accepting = [];
    rec_drops = [];
    rec_forks = 0;
    rec_unknown_alive = 0;
    rec_unknown_prune = 0;
    rec_unknown_witness = 0;
    rec_exhaustions = 0;
    rec_faults = 0;
  }

(* Mutable search context shared by the interpreter hooks. *)
type search_ctx = {
  cfg : config;
  client : Predicate.client_predicate;
  paths : Predicate.client_path array;
  different_from : Different_from.t option;
  alive : (int, int list) Hashtbl.t; (* state id -> alive client indices *)
  bindings : (int, Term.t list) Hashtbl.t; (* client idx -> msgS=msgC binding *)
  sessions : (int, Solver.Incremental.session) Hashtbl.t;
      (* client idx -> incremental session with the binding asserted *)
  negations : (int, Term.t) Hashtbl.t; (* client idx -> negate(pathCi) *)
  shard : Interp.shard option; (* the route shard this worker explores *)
  recorder : recorder option; (* event log target (parallel mode only) *)
  mutable server_vars : Term.var array option;
  mutable field_var_ids : (string * int list) list; (* server var ids per field *)
  mutable trojans_rev : trojan list;
  mutable accepting_rev : Predicate.server_path list;
  mutable samples_rev : alive_sample list;
  mutable drops_rev : drop_explanation list;
  mutable n_accepting : int;
  mutable n_rejecting : int;
  mutable n_other : int;
  mutable n_pruned : int;
  mutable n_alive_checks : int;
  mutable n_transitive : int;
  mutable n_unknown_alive : int;
  mutable n_unknown_prune : int;
  mutable n_unknown_witness : int;
  mutable n_abandoned : int; (* states cut off by cancellation *)
  started : float;
}

let all_indices ctx = List.init (Array.length ctx.paths) Fun.id

(* Does this worker record observations for this state? Sequential runs
   record everything; a shard worker records only the states it owns. *)
let records ctx (st : State.t) =
  match ctx.shard with
  | None -> true
  | Some sh -> Interp.shard_owns sh st.State.route

let negation_for ctx idx =
  match Hashtbl.find_opt ctx.negations idx with
  | Some n -> n
  | None ->
      let server_vars = Option.get ctx.server_vars in
      let n =
        Negate.negate_path ~check_overlap:ctx.cfg.check_overlap
          ?mask:ctx.cfg.mask ~layout:ctx.client.Predicate.layout ~server_vars
          ctx.paths.(idx)
      in
      Hashtbl.replace ctx.negations idx n;
      n

let setup_server_vars ctx vars =
  match ctx.server_vars with
  | Some existing when existing == vars -> ()
  | Some _ ->
      (* A second, distinct symbolic message would need per-state negations;
         all our server models receive the analyzed message exactly once. *)
      invalid_arg "Search: server received more than one symbolic message"
  | None ->
      ctx.server_vars <- Some vars;
      let layout = ctx.client.Predicate.layout in
      ctx.field_var_ids <-
        List.map
          (fun (f : Layout.field) ->
            let ids =
              List.init f.Layout.size (fun i ->
                  vars.(f.Layout.offset + i).Term.id)
            in
            (f.Layout.field_name, List.sort compare ids))
          (Layout.fields layout);
      (* Build every per-path negation now, in path order. Negation builds
         allocate fresh (primed) variables; doing all of them at the first
         message-constrained state — a point every shard passes with the
         same fresh counter — gives the primed variables identical ids in
         every shard and in the sequential run, whichever state a worker
         happens to need one for first. *)
      List.iter (fun i -> ignore (negation_for ctx i)) (all_indices ctx)

let binding_for ctx idx =
  match Hashtbl.find_opt ctx.bindings idx with
  | Some b -> b
  | None ->
      let server_vars = Option.get ctx.server_vars in
      let b = Predicate.bind_to_server ~server_vars ctx.paths.(idx) in
      Hashtbl.replace ctx.bindings idx b;
      b

let session_for ctx idx =
  match Hashtbl.find_opt ctx.sessions idx with
  | Some s -> s
  | None ->
      let s = Solver.Incremental.create () in
      List.iter (Solver.Incremental.assert_always s) (binding_for ctx idx);
      Hashtbl.replace ctx.sessions idx s;
      s

(* pathS /\ bind(pathCi) unsatisfiable? The hot query of the search.
   [Unknown] (budget exhausted, fault injected) must keep the client path
   alive: an alive path only adds its — then implied — negation to the
   Trojan query, whereas a wrong drop would delete a conjunct and admit
   spurious Trojans. Degrading towards "alive" is the sound direction. *)
let binding_check ctx idx (st : State.t) =
  let r =
    if Solver.incremental_enabled () then
      (* the per-domain frame context: the path prefix is asserted once and
         shared with the prune query, the interpreter's feasibility checks
         and every other client's binding check at this state; only the
         binding terms ride as per-call assumptions *)
      Solver.check_assuming ~path:st.State.path (binding_for ctx idx)
    else if ctx.cfg.incremental_bindings then
      Solver.Incremental.check (session_for ctx idx) st.State.path
    else Solver.check (List.rev_append st.State.path (binding_for ctx idx))
  in
  match r with
  | Solver.Unsat -> `Incompatible
  | Solver.Sat _ -> `Compatible
  | Solver.Unknown -> `Unknown

(* Explanation for the drop just reported by [binding_check]: the server
   constraints in the unsat core. With the shared frame context the core
   may also name binding terms; those are filtered out so the explanation
   keeps its historical meaning. *)
let drop_core ctx idx (st : State.t) =
  if Solver.incremental_enabled () then
    match Solver.last_assumption_core () with
    | None -> None
    | Some core ->
        Some
          (List.filter
             (fun t -> List.exists (Term.equal t) st.State.path)
             core)
  else Solver.Incremental.unsat_core (session_for ctx idx)

let alive_for ctx (st : State.t) =
  match Hashtbl.find_opt ctx.alive st.State.id with
  | Some l -> l
  | None -> (
      match st.State.parent with
      | Some p when Hashtbl.mem ctx.alive p -> Hashtbl.find ctx.alive p
      | _ -> all_indices ctx)

(* Which single field, if any, does this constraint depend on? The
   constraint must mention only server message variables, all within one
   field. *)
let single_field_of ctx cond =
  let ids = Term.var_ids cond in
  if ids = [] then None
  else
    List.find_opt
      (fun (_, field_ids) -> List.for_all (fun id -> List.mem id field_ids) ids)
      ctx.field_var_ids
    |> Option.map fst

let trojan_query ctx (st : State.t) alive =
  List.rev_append
    (List.map (negation_for ctx) alive)
    (List.rev st.State.path)

(* The incremental step: update the alive set for the new constraint, then
   decide whether any Trojan message can still trigger this state. *)
let on_constraint ctx (st : State.t) cond =
  if ctx.cfg.cancel () then begin
    (* cooperative interrupt: stop growing this subtree; the state ends
       [Dropped] and the surrounding shard is reported incomplete *)
    ctx.n_abandoned <- ctx.n_abandoned + 1;
    false
  end
  else
  match st.State.msg_vars with
  | None -> true (* constraints before the message arrives: nothing to do *)
  | Some vars ->
      setup_server_vars ctx vars;
      let recording = records ctx st in
      let checks_here = ref 0 and transitive_here = ref 0 and drop_ord = ref 0 in
      let alive = alive_for ctx st in
      let alive =
        if not ctx.cfg.drop_alive then alive
        else begin
          let field =
            if ctx.cfg.use_different_from && ctx.different_from <> None then
              single_field_of ctx cond
            else None
          in
          let dropped = Hashtbl.create 8 in
          let maybe_transitive_drop i =
            match field, ctx.different_from with
            | Some a, Some df when Different_from.covers_field df a ->
                List.iter
                  (fun j ->
                    if
                      (not (Hashtbl.mem dropped j))
                      && not (Different_from.different df ~i:j ~j:i ~field:a)
                    then begin
                      Hashtbl.replace dropped j ();
                      incr transitive_here;
                      Obs.count "search.transitive_drops";
                      if Obs.live () then
                        Obs.emit ~kind:"drop" ~name:"transitive"
                          ~args:
                            [
                              ("route", Obs.S st.State.route);
                              ("path", Obs.I j);
                            ]
                          ()
                    end)
                  (all_indices ctx)
            | _ -> ()
          in
          List.iter
            (fun i ->
              if not (Hashtbl.mem dropped i) then begin
                incr checks_here;
                match binding_check ctx i st with
                | `Compatible -> ()
                | `Unknown ->
                    (* sound degradation: an undecided compatibility keeps
                       the client path alive (its negation stays in the
                       Trojan query, over- rather than under-constraining) *)
                    if recording then
                      ctx.n_unknown_alive <- ctx.n_unknown_alive + 1
                | `Incompatible ->
                  if
                    recording && ctx.cfg.explain_drops
                    && (ctx.cfg.incremental_bindings
                       || Solver.incremental_enabled ())
                  then begin
                    match drop_core ctx i st with
                    | Some conflicting -> (
                        let plen = List.length st.State.path in
                        match ctx.recorder with
                        | None ->
                            ctx.drops_rev <-
                              {
                                at_state = st.State.id;
                                dropped_path = i;
                                conflicting;
                              }
                              :: ctx.drops_rev
                        | Some r ->
                            r.rec_drops <-
                              {
                                wd_route = st.State.route;
                                wd_plen = plen;
                                wd_ord = !drop_ord;
                                wd_path = i;
                                wd_conflicting = conflicting;
                              }
                              :: r.rec_drops);
                        incr drop_ord
                    | None -> ()
                  end;
                  Obs.count "search.client_path_drops";
                  if Obs.live () then
                    Obs.emit ~kind:"drop" ~name:"client_path"
                      ~args:
                        [
                          ("route", Obs.S st.State.route);
                          ("path", Obs.I i);
                        ]
                      ();
                  Hashtbl.replace dropped i ();
                  maybe_transitive_drop i
              end)
            alive;
          List.filter (fun i -> not (Hashtbl.mem dropped i)) alive
        end
      in
      ctx.n_alive_checks <- ctx.n_alive_checks + !checks_here;
      ctx.n_transitive <- ctx.n_transitive + !transitive_here;
      Hashtbl.replace ctx.alive st.State.id alive;
      let pruned =
        ctx.cfg.prune_no_trojan
        &&
        (* dedup the sibling constraints (shared client negations reappear
           across alive sets) before the query; the reported term lists are
           left verbatim. Verdict-only, so with incrementality on it rides
           the frame context whose stack already holds this state's path;
           witness extraction below stays on the scratch path (models from
           a persistent instance would perturb report digests). *)
        match
          (if Solver.incremental_enabled () then
             Solver.check_assuming ~path:st.State.path
               (List.map (negation_for ctx) alive)
           else Solver.check (Term.dedup (trojan_query ctx st alive)))
        with
        | Solver.Unsat -> true
        | Solver.Sat _ -> false
        | Solver.Unknown ->
            (* sound degradation: only a proven-Trojan-free state may be
               pruned; an undecided query keeps the state alive *)
            if recording then ctx.n_unknown_prune <- ctx.n_unknown_prune + 1;
            false
      in
      if pruned then begin
        ctx.n_pruned <- ctx.n_pruned + 1;
        Obs.count "search.pruned_states";
        if Obs.live () then
          Obs.emit ~kind:"drop" ~name:"pruned"
            ~args:[ ("route", Obs.S st.State.route) ]
            ()
      end;
      if recording then begin
        let plen = List.length st.State.path in
        let n_alive = List.length alive in
        match ctx.recorder with
        | None ->
            ctx.samples_rev <-
              { state_id = st.State.id; path_length = plen; alive = n_alive }
              :: ctx.samples_rev
        | Some r ->
            r.rec_cevents <-
              {
                ce_route = st.State.route;
                ce_plen = plen;
                ce_alive = n_alive;
                ce_checks = !checks_here;
                ce_transitive = !transitive_here;
                ce_pruned = pruned;
              }
              :: r.rec_cevents
      end;
      not pruned

let on_fork ctx ~parent ~child =
  let alive = alive_for ctx parent in
  Hashtbl.replace ctx.alive child.State.id alive;
  match ctx.recorder, ctx.shard with
  | Some r, Some sh ->
      let croute = child.State.route in
      if Interp.shard_owns sh croute then r.rec_routes <- croute :: r.rec_routes;
      (* count each two-sided fork once: at its '0' child, by the parent's
         owner (who always explores that child) *)
      let clen = String.length croute in
      if
        clen > 0
        && croute.[clen - 1] = '0'
        && Interp.shard_owns sh parent.State.route
      then r.rec_forks <- r.rec_forks + 1
  | _ -> ()

let witness_of_model vars model =
  Array.map
    (fun v ->
      match Model.find model v with
      | Some (Model.Vbv bv) -> bv
      | Some (Model.Vbool _) -> assert false
      | None -> Bv.zero 8)
    vars

(* Enumerate concrete Trojan witnesses on an accepting path, blocking each
   discovered message (or message class) before re-solving. *)
let emit_trojans ctx (st : State.t) label =
  match st.State.msg_vars with
  | None -> ()
  | Some vars ->
      setup_server_vars ctx vars;
      let alive = alive_for ctx st in
      let base_query = trojan_query ctx st alive in
      (match ctx.recorder with
      | None ->
          ctx.accepting_rev <-
            {
              Predicate.sp_state_id = st.State.id;
              label;
              msg_vars = vars;
              sp_constraints = List.rev st.State.path;
            }
            :: ctx.accepting_rev
      | Some r ->
          r.rec_accepting <-
            {
              wa_route = st.State.route;
              wa_label = label;
              wa_msg_vars = vars;
              wa_constraints = List.rev st.State.path;
            }
            :: r.rec_accepting);
      let block witness =
        match ctx.cfg.distinct_by with
        | Some f -> f witness vars
        | None ->
            (* block exactly these bytes *)
            Term.not_
              (Term.and_l
                 (Array.to_list
                    (Array.mapi
                       (fun i v -> Term.eq (Term.var vars.(i)) (Term.const v))
                       witness)))
      in
      let emit ~n ~confirmed witness =
        Obs.count "search.trojans_emitted";
        if Obs.live () then
          Obs.emit ~kind:"trojan" ~name:label
            ~args:
              [
                ("route", Obs.S st.State.route);
                ("idx", Obs.I n);
                ("confirmed", Obs.B confirmed);
              ]
            ();
        let found_at = Unix.gettimeofday () -. ctx.started in
        match ctx.recorder with
        | None ->
            ctx.trojans_rev <-
              {
                server_state_id = st.State.id;
                accept_label = label;
                witness;
                symbolic = base_query;
                msg_vars = vars;
                confirmed;
                found_at;
              }
              :: ctx.trojans_rev
        | Some r ->
            r.rec_trojans <-
              {
                wt_route = st.State.route;
                wt_idx = n;
                wt_label = label;
                wt_witness = witness;
                wt_symbolic = base_query;
                wt_msg_vars = vars;
                wt_confirmed = confirmed;
                wt_found_at = found_at;
              }
              :: r.rec_trojans
      in
      let rec enumerate blocked n =
        if n < ctx.cfg.witnesses_per_path then
          match Solver.check (Term.dedup (List.rev_append blocked base_query)) with
          | Solver.Unsat -> ()
          | Solver.Unknown ->
              (* sound degradation: the accepting state is reported with its
                 symbolic Trojan expression but no extracted message —
                 an over-approximation flagged [unconfirmed], never a
                 silently dropped Trojan *)
              ctx.n_unknown_witness <- ctx.n_unknown_witness + 1;
              emit ~n ~confirmed:false (Array.map (fun _ -> Bv.zero 8) vars)
          | Solver.Sat model ->
              let witness = witness_of_model vars model in
              emit ~n ~confirmed:true witness;
              enumerate (block witness :: blocked) (n + 1)
      in
      enumerate [] 0

(* Greedily zero out witness bytes while the Trojan expression stays
   satisfiable: smaller witnesses make fire-drill payloads easier to read
   and diff against valid traffic. *)
let minimize_witness (t : trojan) =
  let pins = Array.map (fun b -> Some b) t.witness in
  let pin_terms () =
    Array.to_list pins
    |> List.mapi (fun i p ->
           Option.map (fun b -> Term.eq (Term.var t.msg_vars.(i)) (Term.const b)) p)
    |> List.filter_map Fun.id
  in
  let current = Array.copy t.witness in
  Array.iteri
    (fun i byte ->
      if not (Bv.equal byte (Bv.zero 8)) then begin
        pins.(i) <- Some (Bv.zero 8);
        if Solver.is_sat (pin_terms () @ t.symbolic) then
          current.(i) <- Bv.zero 8
        else pins.(i) <- Some current.(i)
      end)
    t.witness;
  current

let on_terminal ctx (st : State.t) =
  if records ctx st then begin
    (match ctx.recorder with
    | Some r when st.State.status <> State.Running ->
        r.rec_terminals <- (st.State.route, st.State.status) :: r.rec_terminals
    | _ -> ());
    match st.State.status with
    | State.Accepted label ->
        ctx.n_accepting <- ctx.n_accepting + 1;
        emit_trojans ctx st label
    | State.Rejected _ | State.Finished ->
        (* per §5.1, a server path that returns to the event loop without
           accepting rejected its message *)
        ctx.n_rejecting <- ctx.n_rejecting + 1
    | State.Dropped | State.Crashed _ -> ctx.n_other <- ctx.n_other + 1
    | State.Running -> ()
  end

let make_ctx ~config ~client ~different_from ~shard ~recorder ~started =
  {
    cfg = config;
    client;
    paths = Array.of_list client.Predicate.paths;
    different_from;
    alive = Hashtbl.create 256;
    bindings = Hashtbl.create 64;
    sessions = Hashtbl.create 64;
    negations = Hashtbl.create 64;
    shard;
    recorder;
    server_vars = None;
    field_var_ids = [];
    trojans_rev = [];
    accepting_rev = [];
    samples_rev = [];
    drops_rev = [];
    n_accepting = 0;
    n_rejecting = 0;
    n_other = 0;
    n_pruned = 0;
    n_alive_checks = 0;
    n_transitive = 0;
    n_unknown_alive = 0;
    n_unknown_prune = 0;
    n_unknown_witness = 0;
    n_abandoned = 0;
    started;
  }

let hooks_of ctx =
  {
    Interp.on_constraint = (fun st c -> on_constraint ctx st c);
    Interp.on_fork = (fun ~parent ~child -> on_fork ctx ~parent ~child);
    Interp.on_send = (fun _ _ -> ());
    Interp.on_terminal = (fun st -> on_terminal ctx st);
  }

(* --- sequential mode ------------------------------------------------------- *)

let run_sequential ~config ~different_from ~client ~server ~started =
  let ctx =
    make_ctx ~config ~client ~different_from ~shard:None ~recorder:None
      ~started
  in
  let solver_stats = Solver.stats () in
  let exhaustions0 = solver_stats.Solver.budget_exhaustions in
  let faults0 = solver_stats.Solver.injected_faults in
  let saved_budget = Solver.get_budget () in
  Solver.set_budget config.solver_budget;
  let iconfig =
    if config.use_slice then
      { config.interp with Interp.oracle = Some (Slice.make_oracle ()) }
    else config.interp
  in
  let run_result =
    Fun.protect
      ~finally:(fun () -> Solver.set_budget saved_budget)
      (fun () ->
        Obs.span Obs.Server_se (fun () ->
            Interp.run ~config:iconfig ~hooks:(hooks_of ctx) server))
  in
  let stats =
    {
      accepting_paths = ctx.n_accepting;
      rejecting_paths = ctx.n_rejecting;
      other_paths = ctx.n_other;
      pruned_states = ctx.n_pruned;
      forks = run_result.Interp.stats.Interp.forks;
      alive_checks = ctx.n_alive_checks;
      transitive_drops = ctx.n_transitive;
      alive_samples = List.rev ctx.samples_rev;
      wall_time = Unix.gettimeofday () -. started;
    }
  in
  let interrupted = config.cancel () in
  let agg = Solver.aggregate_stats () in
  let slice_static, slice_cone = slice_counters () in
  let coverage =
    {
      total_shards = 1;
      completed_shards = (if interrupted then 0 else 1);
      failed_shards = [];
      resumed_shards = 0;
      shard_retry_attempts = 0;
      interrupted;
      unknown_alive = ctx.n_unknown_alive;
      unknown_prune = ctx.n_unknown_prune;
      unknown_witness = ctx.n_unknown_witness;
      budget_exhaustions =
        solver_stats.Solver.budget_exhaustions - exhaustions0;
      injected_faults = solver_stats.Solver.injected_faults - faults0;
      abandoned_states = ctx.n_abandoned;
      solver_cache_entries = Solver.aggregate_cache_entries ();
      solver_cache_evictions = agg.Solver.cache_evictions;
      solver_cache_hits = agg.Solver.cache_hits;
      solver_queries = agg.Solver.queries;
      slice_static_branches = slice_static;
      slice_cone_queries = slice_cone;
    }
  in
  {
    trojans = List.rev ctx.trojans_rev;
    accepting = List.rev ctx.accepting_rev;
    drops = List.rev ctx.drops_rev;
    search_stats = stats;
    coverage;
  }

(* --- parallel mode ---------------------------------------------------------

   The exploration tree is split into 2^split_bits route shards; each shard
   is one task on a pool of [domains] workers. A task replays the shared
   spine (routes shorter than split_bits) and exclusively explores — and
   records — the subtrees matching its bit pattern, with its domain-local
   solver state and its fresh-variable counter reset to the pre-search
   base, so every variable (message bytes, negation primes) gets the same
   id it gets sequentially. The merge concatenates the disjoint event logs,
   sorts them by route (lexicographic route order = sequential depth-first
   creation order), and renumbers state ids by route rank; everything
   except wall-clock timestamps is bit-identical to the sequential run. *)

module String_set = Set.Make (String)

(* --- shard checkpoints ------------------------------------------------------

   Each completed shard's event log is flushed to its own file, written to a
   temporary name, fsynced, and renamed — atomic on POSIX — with the
   containing directory fsynced after the rename, so a run killed at any
   moment (including SIGKILL or power loss) leaves only whole, durable
   shard files behind. The payload carries its own digest: a torn or
   bit-rotted file is detected on load and treated as missing (the shard is
   re-explored with a warning), never trusted and never fatal. [resume]
   then re-explores exactly the missing shards: because every shard task
   replays the same fresh-variable base and owns disjoint routes, a merge
   of loaded and re-explored shards is indistinguishable from an
   uninterrupted run (the determinism guarantee extends across process
   boundaries). *)

let ckpt_magic = "ACHILLES-CKPT-2"

(* Identity of a run for resume purposes: everything that changes the shard
   decomposition or per-shard event logs. Closure-valued config fields
   ([distinct_by], [interp.auto_classify]) cannot be fingerprinted; resume
   assumes they are unchanged. The client's terms are fingerprinted by
   their printed rendering, not their in-memory representation: hash-consed
   nodes carry process-local ids that vary with construction order, and
   marshaling them would make the fingerprint differ between runs of the
   same analysis. *)
let client_rendering (client : Predicate.client_predicate) =
  List.map
    (fun (p : Predicate.client_path) ->
      ( p.Predicate.cp_id,
        p.Predicate.source,
        Array.to_list (Array.map Term.to_string p.Predicate.message),
        List.map Term.to_string p.Predicate.constraints ))
    client.Predicate.paths

let run_fingerprint ~bits ~config ~client ~server =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( ckpt_magic,
            bits,
            config.drop_alive,
            config.use_different_from,
            config.prune_no_trojan,
            config.check_overlap,
            config.incremental_bindings,
            config.explain_drops,
            config.mask,
            config.witnesses_per_path,
            Layout.name client.Predicate.layout,
            Layout.total_size client.Predicate.layout,
            client_rendering client,
            server )
          []))

let shard_file dir idx =
  Filename.concat dir (Printf.sprintf "shard-%04d.ckpt" idx)

(* Flush [fd], then its durability: an atomic rename only orders the
   *names*; the bytes (and the new directory entry) still have to reach the
   platter before a crash may assume the checkpoint exists. Filesystems
   that refuse fsync on directories (some network mounts) degrade to the
   rename-only guarantee. *)
let fsync_noerr fd = try Unix.fsync fd with Unix.Unix_error _ -> ()

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      fsync_noerr fd;
      Unix.close fd
  | exception Unix.Unix_error _ -> ()

let write_checkpoint_file ~file ~fingerprint ~idx (recorder, counter) =
  Obs.span Obs.Checkpoint_io @@ fun () ->
  if Obs.live () then
    Obs.emit ~kind:"checkpoint" ~name:"write" ~args:[ ("index", Obs.I idx) ] ();
  (* pid-qualified temp name: two processes racing the same shard (a
     presumed-dead worker and its replacement) must never interleave writes
     into one temp file *)
  let tmp = Printf.sprintf "%s.tmp.%d.%d" file (Unix.getpid ()) idx in
  let payload = Marshal.to_string (recorder, counter) [] in
  let oc = open_out_bin tmp in
  Marshal.to_channel oc
    (ckpt_magic, fingerprint, idx, Digest.string payload, payload)
    [];
  flush oc;
  fsync_noerr (Unix.descr_of_out_channel oc);
  close_out oc;
  Sys.rename tmp file;
  fsync_dir (Filename.dirname file)

let write_shard_checkpoint ~dir ~fingerprint ~idx out =
  write_checkpoint_file ~file:(shard_file dir idx) ~fingerprint ~idx out

(* Terms revived by [Marshal] bypassed the smart constructors: their node
   ids belong to the (dead) process that wrote the checkpoint and may
   collide with ids of live terms, which would poison id-keyed memo tables
   (e.g. [Term.var_ids]) when report building walks the loaded events.
   Re-intern every term before letting the recorder out. *)
let rebuild_recorder r =
  let terms = List.map Term.rebuild in
  r.rec_trojans <-
    List.map
      (fun w -> { w with wt_symbolic = terms w.wt_symbolic })
      r.rec_trojans;
  r.rec_accepting <-
    List.map
      (fun w -> { w with wa_constraints = terms w.wa_constraints })
      r.rec_accepting;
  r.rec_drops <-
    List.map
      (fun w -> { w with wd_conflicting = terms w.wd_conflicting })
      r.rec_drops;
  r

(* A checkpoint that fails any validation step — bad magic, wrong
   fingerprint or index, short read, payload digest mismatch, Marshal
   failure — is treated as missing: the shard is recomputed. A killed or
   corrupted writer must degrade [--resume] to extra work, never crash it
   or poison the merge. *)
let load_checkpoint_file ~file ~fingerprint ~idx : (recorder * int) option =
  Obs.span Obs.Checkpoint_io @@ fun () ->
  if Obs.live () then
    Obs.emit ~kind:"checkpoint" ~name:"load" ~args:[ ("index", Obs.I idx) ] ();
  if not (Sys.file_exists file) then None
  else begin
    let corrupt reason =
      Printf.eprintf
        "achilles: warning: ignoring corrupt shard checkpoint %s (%s); \
         re-exploring shard %d\n\
         %!"
        file reason idx;
      Obs.count "checkpoint.corrupt";
      Obs.emit ~kind:"checkpoint" ~name:"corrupt"
        ~args:
          [
            ("index", Obs.I idx);
            ("file", Obs.S file);
            ("reason", Obs.S reason);
          ]
        ();
      None
    in
    match
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          (Marshal.from_channel ic
            : string * string * int * Digest.t * string))
    with
    | exception _ -> corrupt "unreadable header (torn or foreign file)"
    | magic, _, _, _, _ when magic <> ckpt_magic -> corrupt "bad magic"
    | _, fp, _, _, _ when fp <> fingerprint -> corrupt "fingerprint mismatch"
    | _, _, i, _, _ when i <> idx -> corrupt "shard index mismatch"
    | _, _, _, digest, payload when not (Digest.equal digest (Digest.string payload))
      ->
        corrupt "payload digest mismatch"
    | _, _, _, _, payload -> (
        match (Marshal.from_string payload 0 : recorder * int) with
        | r, c -> Some (rebuild_recorder r, c)
        | exception _ -> corrupt "payload unmarshal failure")
  end

let load_shard_checkpoint ~dir ~fingerprint ~idx =
  load_checkpoint_file ~file:(shard_file dir idx) ~fingerprint ~idx

(* A writer killed between creating its temp file and the rename leaves the
   temp behind; left alone, those accumulate and (worse) a matching-name
   temp from a dead pid could be confused for live work. Startup owns the
   directory (single run per dir), so any [*.tmp.*] is garbage by
   definition. *)
let clean_stale_tmp_files dir =
  Array.iter
    (fun name ->
      let full = Filename.concat dir name in
      let is_tmp =
        (* shard-NNNN.ckpt.tmp.<pid>.<idx> (and the pre-durability
           shard-NNNN.ckpt.tmp.<idx> form) *)
        match String.index_opt name '.' with
        | None -> false
        | Some _ ->
            String.length name > 4
            &&
            let rec find_sub i =
              if i + 5 > String.length name then false
              else if String.sub name i 5 = ".tmp." then true
              else find_sub (i + 1)
            in
            find_sub 0
      in
      if is_tmp && not (Sys.is_directory full) then begin
        Obs.count "checkpoint.stale_tmp_removed";
        (try Sys.remove full with Sys_error _ -> ())
      end)
    (try Sys.readdir dir with Sys_error _ -> [||])

let ensure_checkpoint_dir dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg
      (Printf.sprintf "Search: checkpoint dir %S is not a directory" dir)
  else clean_stale_tmp_files dir

let ceil_log2 n =
  let rec go b = if 1 lsl b >= n then b else go (b + 1) in
  go 0

let split_bits_of config =
  match config.split_bits with
  | Some b ->
      if b < 0 || b > 16 then invalid_arg "Search: split_bits out of [0,16]";
      b
  | None -> min 8 (ceil_log2 config.domains + 2)

(* Deterministic merge of disjoint shard event logs into a report:
   concatenate, sort by route (lexicographic route order = sequential
   depth-first creation order), and renumber state ids by route rank. The
   in-process pool and the multi-process coordinator both end here — which
   is what makes the final report digest independent of worker count,
   kills, lease reassignments and resume history. *)
let merge_outs ~total ~base ~started ~outs_resumed ~failed_shards
    ~retry_attempts ~interrupted ~abandoned =
  let outs = List.map fst outs_resumed in
  let sum f = List.fold_left (fun acc (r, _) -> acc + f r) 0 outs in
  let agg = Solver.aggregate_stats () in
  let slice_static, slice_cone = slice_counters () in
  let coverage =
    {
      total_shards = total;
      completed_shards = List.length outs;
      failed_shards;
      resumed_shards = List.length (List.filter snd outs_resumed);
      shard_retry_attempts = retry_attempts;
      interrupted;
      unknown_alive = sum (fun r -> r.rec_unknown_alive);
      unknown_prune = sum (fun r -> r.rec_unknown_prune);
      unknown_witness = sum (fun r -> r.rec_unknown_witness);
      budget_exhaustions = sum (fun r -> r.rec_exhaustions);
      injected_faults = sum (fun r -> r.rec_faults);
      abandoned_states = abandoned;
      solver_cache_entries = Solver.aggregate_cache_entries ();
      solver_cache_evictions = agg.Solver.cache_evictions;
      solver_cache_hits = agg.Solver.cache_hits;
      solver_queries = agg.Solver.queries;
      slice_static_branches = slice_static;
      slice_cone_queries = slice_cone;
    }
  in
  (* keep the coordinating domain's counter ahead of every id any worker
     allocated, so later analyses cannot reuse ids live in this report *)
  let top = List.fold_left (fun acc (_, c) -> max acc c) base outs in
  Term.set_fresh_counter (max top (Term.fresh_counter_value ()));
  (* Sequential ids are assigned in depth-first creation order, and the
     interpreter forks true-branch first, so creation order is exactly the
     lexicographic order of routes. Rank = sequential id. *)
  let routes =
    List.fold_left
      (fun acc (r, _) ->
        List.fold_left (fun a rt -> String_set.add rt a) acc r.rec_routes)
      (String_set.singleton "") outs
  in
  let rank_of = Hashtbl.create (String_set.cardinal routes) in
  let next = ref 0 in
  String_set.iter
    (fun r ->
      Hashtbl.replace rank_of r !next;
      incr next)
    routes;
  let rank r = Hashtbl.find rank_of r in
  let by_route_then key_cmp get_route a b =
    match String.compare (get_route a) (get_route b) with
    | 0 -> key_cmp a b
    | c -> c
  in
  let cevents =
    List.concat_map (fun (r, _) -> r.rec_cevents) outs
    |> List.sort
         (by_route_then
            (fun a b -> compare a.ce_plen b.ce_plen)
            (fun e -> e.ce_route))
  in
  let trojans_sorted =
    List.concat_map (fun (r, _) -> r.rec_trojans) outs
    |> List.sort
         (by_route_then
            (fun a b -> compare a.wt_idx b.wt_idx)
            (fun t -> t.wt_route))
  in
  (* found_at is wall clock — the one field outside the determinism claim.
     Tasks finish out of order, so restore monotonicity along the merged
     (sequential-equivalent) order for the Figure-10 discovery curve. *)
  let _, trojans =
    List.fold_left_map
      (fun floor w ->
        let found_at = Float.max floor w.wt_found_at in
        ( found_at,
          {
            server_state_id = rank w.wt_route;
            accept_label = w.wt_label;
            witness = w.wt_witness;
            symbolic = w.wt_symbolic;
            msg_vars = w.wt_msg_vars;
            confirmed = w.wt_confirmed;
            found_at;
          } ))
      0. trojans_sorted
  in
  let accepting =
    List.concat_map (fun (r, _) -> r.rec_accepting) outs
    |> List.sort (by_route_then (fun _ _ -> 0) (fun a -> a.wa_route))
    |> List.map (fun a ->
           {
             Predicate.sp_state_id = rank a.wa_route;
             label = a.wa_label;
             msg_vars = a.wa_msg_vars;
             sp_constraints = a.wa_constraints;
           })
  in
  let drops =
    List.concat_map (fun (r, _) -> r.rec_drops) outs
    |> List.sort
         (by_route_then
            (fun a b -> compare (a.wd_plen, a.wd_ord) (b.wd_plen, b.wd_ord))
            (fun d -> d.wd_route))
    |> List.map (fun d ->
           {
             at_state = rank d.wd_route;
             dropped_path = d.wd_path;
             conflicting = d.wd_conflicting;
           })
  in
  let terminals = List.concat_map (fun (r, _) -> r.rec_terminals) outs in
  let count p = List.length (List.filter p terminals) in
  let stats =
    {
      accepting_paths =
        count (fun (_, s) -> match s with State.Accepted _ -> true | _ -> false);
      rejecting_paths =
        count (fun (_, s) ->
            match s with State.Rejected _ | State.Finished -> true | _ -> false);
      other_paths =
        count (fun (_, s) ->
            match s with State.Dropped | State.Crashed _ -> true | _ -> false);
      pruned_states =
        List.length (List.filter (fun e -> e.ce_pruned) cevents);
      forks = List.fold_left (fun acc (r, _) -> acc + r.rec_forks) 0 outs;
      alive_checks = List.fold_left (fun acc e -> acc + e.ce_checks) 0 cevents;
      transitive_drops =
        List.fold_left (fun acc e -> acc + e.ce_transitive) 0 cevents;
      alive_samples =
        List.map
          (fun e ->
            {
              state_id = rank e.ce_route;
              path_length = e.ce_plen;
              alive = e.ce_alive;
            })
          cevents;
      wall_time = Unix.gettimeofday () -. started;
    }
  in
  { trojans; accepting; drops; search_stats = stats; coverage }

(* Run one route shard to completion in the calling domain: replay the
   sequential fresh-variable id sequence from [base], explore the shard's
   subtrees, and return the completed event log plus the states abandoned
   to cancellation. [None] when the cooperative cancel fired — a partial
   event log must neither be checkpointed nor merged. This is the unit of
   work a distributed worker process executes for one lease. *)
let explore_shard ~config ~different_from ~client ~server ~bits ~base ~started
    idx =
  let shard = { Interp.shard_index = idx; Interp.shard_bits = bits } in
  Term.set_fresh_counter base;
  Solver.set_budget config.solver_budget;
  let solver_stats = Solver.stats () in
  let exhaustions0 = solver_stats.Solver.budget_exhaustions in
  let faults0 = solver_stats.Solver.injected_faults in
  let recorder = fresh_recorder () in
  let ctx =
    make_ctx ~config ~client ~different_from ~shard:(Some shard)
      ~recorder:(Some recorder) ~started
  in
  let iconfig =
    {
      config.interp with
      Interp.shard = Some shard;
      (* fresh oracle per shard task: the memo table must not cross
         domains, and a retried task must not see a crashed attempt's *)
      Interp.oracle =
        (if config.use_slice then Some (Slice.make_oracle ()) else None);
    }
  in
  Obs.span Obs.Server_se (fun () ->
      ignore (Interp.run ~config:iconfig ~hooks:(hooks_of ctx) server));
  if config.cancel () then (None, ctx.n_abandoned)
  else begin
    recorder.rec_unknown_alive <- ctx.n_unknown_alive;
    recorder.rec_unknown_prune <- ctx.n_unknown_prune;
    recorder.rec_unknown_witness <- ctx.n_unknown_witness;
    recorder.rec_exhaustions <-
      solver_stats.Solver.budget_exhaustions - exhaustions0;
    recorder.rec_faults <- solver_stats.Solver.injected_faults - faults0;
    (Some (recorder, Term.fresh_counter_value ()), ctx.n_abandoned)
  end

let run_parallel ~config ~different_from ~client ~server ~started =
  (* One main-domain span covering sharding, pool execution and the merge:
     worker domains open their own nested Server_se spans per shard. *)
  Obs.span Obs.Server_se @@ fun () ->
  let bits = split_bits_of config in
  let n_tasks = 1 lsl bits in
  let base = Term.fresh_counter_value () in
  let fingerprint =
    match config.checkpoint_dir with
    | Some dir ->
        ensure_checkpoint_dir dir;
        run_fingerprint ~bits ~config ~client ~server
    | None -> ""
  in
  let loaded =
    Array.init n_tasks (fun idx ->
        match config.checkpoint_dir with
        | Some dir when config.resume ->
            load_shard_checkpoint ~dir ~fingerprint ~idx
        | _ -> None)
  in
  let abandoned = Atomic.make 0 in
  let attempts_seen = Array.make n_tasks 0 in
  let task idx =
    (* [attempts_seen.(idx)] is touched only by the worker currently running
       shard [idx] — retries happen in place on that same worker. *)
    let attempt = attempts_seen.(idx) in
    attempts_seen.(idx) <- attempt + 1;
    if Obs.live () then
      Obs.emit ~kind:"shard" ~name:(if attempt = 0 then "start" else "retry")
        ~args:[ ("index", Obs.I idx); ("attempt", Obs.I attempt) ]
        ();
    (match config.chaos with
    | Some hook -> hook ~shard_index:idx ~attempt
    | None -> ());
    if config.cancel () then None
    else begin
      let out, n_abandoned =
        explore_shard ~config ~different_from ~client ~server ~bits ~base
          ~started idx
      in
      ignore (Atomic.fetch_and_add abandoned n_abandoned);
      match out with
      | None ->
          (* the event log is partial: neither checkpoint nor merge it *)
          if Obs.live () then
            Obs.emit ~kind:"shard" ~name:"cancelled"
              ~args:[ ("index", Obs.I idx) ]
              ();
          None
      | Some out ->
          (match config.checkpoint_dir with
          | Some dir -> write_shard_checkpoint ~dir ~fingerprint ~idx out
          | None -> ());
          if Obs.live () then
            Obs.emit ~kind:"shard" ~name:"done"
              ~args:[ ("index", Obs.I idx); ("attempt", Obs.I attempt) ]
              ();
          Some out
    end
  in
  let missing =
    Array.of_list
      (List.filter
         (fun idx -> loaded.(idx) = None)
         (List.init n_tasks Fun.id))
  in
  let outcomes =
    if Array.length missing = 0 then [||]
    else
      Pool.with_pool ~domains:config.domains (fun pool ->
          Pool.map_with_retries ~retries:config.shard_retries
            ~backoff:config.shard_backoff pool task missing)
  in
  let shard_results =
    Array.map
      (function Some out -> `Done (out, true) | None -> `Missing)
      loaded
  in
  Array.iteri
    (fun k idx ->
      match outcomes.(k).Pool.result with
      | Ok (Some out) -> shard_results.(idx) <- `Done (out, false)
      | Ok None -> () (* cancelled before completing: stays missing *)
      | Error _ ->
          if Obs.live () then
            Obs.emit ~kind:"shard" ~name:"failed"
              ~args:[ ("index", Obs.I idx) ]
              ();
          shard_results.(idx) <- `Failed)
    missing;
  let outs_resumed =
    List.filter_map
      (function `Done (out, resumed) -> Some (out, resumed) | _ -> None)
      (Array.to_list shard_results)
  in
  let failed_shards =
    List.filter_map Fun.id
      (List.init n_tasks (fun idx ->
           match shard_results.(idx) with `Failed -> Some idx | _ -> None))
  in
  merge_outs ~total:n_tasks ~base ~started ~outs_resumed ~failed_shards
    ~retry_attempts:
      (Array.fold_left (fun acc o -> acc + o.Pool.attempts - 1) 0 outcomes)
    ~interrupted:(config.cancel ()) ~abandoned:(Atomic.get abandoned)

let run ?(config = default_config) ?different_from ~client ~server () =
  let started = Unix.gettimeofday () in
  if config.domains <= 1 && config.checkpoint_dir = None && not config.resume
  then run_sequential ~config ~different_from ~client ~server ~started
  else run_parallel ~config ~different_from ~client ~server ~started

(* Accepting states paired with the Trojan query the search decided them
   with — the predicate export consumed by the filter compiler
   ([Achilles_filter]). Trojans carry the query of their state verbatim
   ([emit_trojans] stores [trojan_query] as [symbolic]); states with no
   trojan entry had an unsatisfiable query, so [None] means "provably no
   Trojan message reaches this state". *)
let trojan_queries (r : report) =
  List.map
    (fun (sp : Predicate.server_path) ->
      let query =
        List.find_map
          (fun (t : trojan) ->
            if t.server_state_id = sp.Predicate.sp_state_id then
              Some t.symbolic
            else None)
          r.trojans
      in
      (sp, query))
    r.accepting

(* The shard-level surface the multi-process coordinator/worker protocol
   ([Achilles_dist]) is built on: explore one leased shard, persist or load
   its event log as a durable checkpoint file, and merge disjoint logs into
   the canonical report. Everything here is exactly what the in-process
   parallel mode uses, so the two modes cannot drift. *)
module Shards = struct
  type out = recorder * int

  let split_bits = split_bits_of
  let fingerprint = run_fingerprint
  let prepare_dir = ensure_checkpoint_dir
  let explore = explore_shard
  let write = write_checkpoint_file
  let load = load_checkpoint_file
  let merge = merge_outs
end
