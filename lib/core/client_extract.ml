open Achilles_symvm
module Obs = Achilles_obs.Obs

type stats = {
  programs : int;
  paths_explored : int;
  messages_captured : int;
  wall_time : float;
}

let extract ?(config = Interp.default_config) ~layout programs =
  Obs.span Obs.Client_se @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let captured = ref [] in
  let paths_explored = ref 0 in
  let capture source (message : State.message) =
    if Array.length message.State.payload <> Layout.total_size layout then
      invalid_arg
        (Printf.sprintf
           "Client_extract: %s sent a %d-byte message; layout %s is %d bytes"
           source
           (Array.length message.State.payload)
           (Layout.name layout) (Layout.total_size layout));
    captured :=
      (source, message.State.payload, message.State.path_at_send) :: !captured
  in
  List.iter
    (fun (program : Ast.program) ->
      let hooks =
        {
          Interp.default_hooks with
          Interp.on_send = (fun _st msg -> capture program.Ast.prog_name msg);
          Interp.on_terminal = (fun _ -> incr paths_explored);
        }
      in
      ignore (Interp.run ~config ~hooks program))
    programs;
  let paths =
    List.rev !captured
    |> List.mapi (fun cp_id (source, message, constraints) ->
           { Predicate.cp_id; source; message; constraints })
  in
  let predicate = { Predicate.layout; paths } in
  Obs.count ~n:(List.length paths) "client.messages_captured";
  Obs.count ~n:!paths_explored "client.paths_explored";
  let stats =
    {
      programs = List.length programs;
      paths_explored = !paths_explored;
      messages_captured = List.length paths;
      wall_time = Unix.gettimeofday () -. t0;
    }
  in
  (predicate, stats)
