(** Achilles: end-to-end Trojan-message analysis.

    Ties the phases together: client predicate extraction, preprocessing
    (the differentFrom matrix), and the incremental server search. This is
    the entry point a user of the library calls; the phase modules remain
    available for finer control. *)

open Achilles_symvm

type timing = {
  client_extraction : float; (* seconds *)
  preprocessing : float;
  server_analysis : float;
}

type analysis = {
  client : Predicate.client_predicate;
  client_stats : Client_extract.stats;
  different_from : Different_from.t option;
  different_from_stats : Different_from.stats option;
  report : Search.report;
  timing : timing;
}

val analyze :
  ?search_config:Search.config ->
  ?client_interp:Interp.config ->
  layout:Layout.t ->
  clients:Ast.program list ->
  server:Ast.program ->
  unit ->
  analysis
(** Run the full pipeline. The differentFrom matrix is only computed when
    the search configuration enables its use. *)

val trojans : analysis -> Search.trojan list
val pp_summary : Format.formatter -> analysis -> unit
