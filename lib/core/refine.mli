(** Witness refinement — the future work sketched in §4.1.

    The paper proposes using the expressions that define Trojan messages to
    guide a focused re-execution of the client, CEGAR-style, and eliminate
    false positives. This module implements the focused check: for each
    concrete witness, ask the solver whether {e any} extracted client path
    can produce exactly those bytes. A witness some path can produce is a
    false positive (possible when the negate overlap check is disabled, or
    when symbolic execution of the client was itself incomplete on the
    captured paths) and is refuted.

    The check is exact with respect to the extracted client predicate; the
    paper's caveat stands: client paths that were never explored can still
    cause false positives this refinement cannot see. *)

open Achilles_smt

val generable_by :
  client:Predicate.client_predicate -> Bv.t array -> int option
(** The id of a client path that can generate exactly this message, if one
    exists. Raises [Invalid_argument] if the message size does not match
    the predicate's layout. *)

type result = {
  confirmed : Search.trojan list; (* no client path produces them *)
  refuted : (Search.trojan * int) list; (* witness, producing path id *)
}

val refine :
  client:Predicate.client_predicate -> Search.trojan list -> result

val pp_result : Format.formatter -> result -> unit
