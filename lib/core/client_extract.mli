(** Phase one of Achilles: extract the client predicate [PC].

    Each client program runs in a symbolic environment — every local input
    becomes unconstrained symbolic data — and every message it sends is
    captured together with the path constraints in force at the send
    (§3.1). Several client programs (e.g. the FSP command-line utilities)
    contribute paths to a single client predicate. *)

open Achilles_symvm

type stats = {
  programs : int;
  paths_explored : int; (* terminal client states *)
  messages_captured : int;
  wall_time : float;
}

val extract :
  ?config:Interp.config ->
  layout:Layout.t ->
  Ast.program list ->
  Predicate.client_predicate * stats
(** Raises [Invalid_argument] if a client sends a message whose size does
    not match the layout. *)
