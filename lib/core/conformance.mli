(** The dual difference: {e lost} messages, [C \ S].

    Achilles looks for [S \ C] (accepted but not generable). The same
    machinery run the other way finds messages a correct client {e can}
    generate that every accepting server path rejects — interoperability
    gaps where the server's validation is stricter than the client's
    generation. Because accepting server path predicates are plain
    (existential-free) conjunctions over the message bytes, their negation
    needs no quantifier tricks: a lost message for client path [i] is a
    model of [bind(pathCi) /\ AND_j not(pathSj)].

    FSP exhibits the phenomenon out of the box: clients copy uninitialized
    trailing bytes into the payload, and the server rejects any message
    whose trailing bytes are not NUL-or-printable. *)

open Achilles_smt
open Achilles_symvm

type lost = {
  client_path : int; (* cp_id of the generating path *)
  witness : Bv.t array; (* a generable message every accepting path rejects *)
}

type report = {
  lost : lost list;
  accepting_paths : int; (* server accepting paths the check ran against *)
  client_paths : int;
  wall_time : float;
}

val run :
  ?interp:Interp.config ->
  ?max_per_path:int ->
  client:Predicate.client_predicate ->
  server:Ast.program ->
  unit ->
  report
(** [max_per_path] (default 1) bounds the witnesses enumerated per client
    path (exact-byte blocking between solutions). *)

val pp_report : Layout.t -> Format.formatter -> report -> unit
