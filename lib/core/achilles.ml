open Achilles_symvm

type timing = {
  client_extraction : float;
  preprocessing : float;
  server_analysis : float;
}

type analysis = {
  client : Predicate.client_predicate;
  client_stats : Client_extract.stats;
  different_from : Different_from.t option;
  different_from_stats : Different_from.stats option;
  report : Search.report;
  timing : timing;
}

let analyze ?(search_config = Search.default_config)
    ?(client_interp = Interp.default_config) ~layout ~clients ~server () =
  let client_interp =
    (* the slice oracle is verdict-preserving, so client extraction can use
       it too — client guard chains are mostly single-variable interval
       atoms the oracle decides without a solver call *)
    if search_config.Search.use_slice then
      {
        client_interp with
        Interp.oracle = Some (Achilles_slice.Slice.make_oracle ());
      }
    else client_interp
  in
  let client, client_stats =
    Client_extract.extract ~config:client_interp ~layout clients
  in
  let different_from, different_from_stats, preprocessing =
    if search_config.Search.use_different_from then begin
      let server_slice =
        if search_config.Search.use_slice then
          Some (Achilles_slice.Slice.analyze ~layout server)
        else None
      in
      let df, stats =
        Different_from.compute ?mask:search_config.Search.mask
          ~use_slice:search_config.Search.use_slice ?server_slice client
      in
      (Some df, Some stats, stats.Different_from.wall_time)
    end
    else (None, None, 0.)
  in
  let report =
    Search.run ~config:search_config ?different_from ~client ~server ()
  in
  {
    client;
    client_stats;
    different_from;
    different_from_stats;
    report;
    timing =
      {
        client_extraction = client_stats.Client_extract.wall_time;
        preprocessing;
        server_analysis = report.Search.search_stats.Search.wall_time;
      };
  }

let trojans analysis = analysis.report.Search.trojans

let pp_summary fmt analysis =
  let stats = analysis.report.Search.search_stats in
  let unconfirmed =
    List.length
      (List.filter
         (fun (t : Search.trojan) -> not t.Search.confirmed)
         analysis.report.Search.trojans)
  in
  Format.fprintf fmt
    "@[<v>Achilles analysis summary@,\
     \  client paths:        %d (from %d programs, %.2fs)@,\
     \  preprocessing:       %.2fs%s@,\
     \  server analysis:     %.2fs@,\
     \  accepting paths:     %d@,\
     \  rejecting paths:     %d@,\
     \  states pruned:       %d@,\
     \  alive-set checks:    %d (+%d transitive drops)@,\
     \  Trojan witnesses:    %d%s@,\
     %a@]"
    (Predicate.client_path_count analysis.client)
    analysis.client_stats.Client_extract.programs
    analysis.timing.client_extraction analysis.timing.preprocessing
    (match analysis.different_from_stats with
    | Some s ->
        Printf.sprintf " (%d pair checks, %d static, %d fields)"
          s.Different_from.pairs_checked s.Different_from.pairs_static
          (List.length s.Different_from.fields_covered)
    | None -> " (skipped)")
    analysis.timing.server_analysis stats.Search.accepting_paths
    stats.Search.rejecting_paths stats.Search.pruned_states
    stats.Search.alive_checks stats.Search.transitive_drops
    (List.length analysis.report.Search.trojans)
    (if unconfirmed > 0 then Printf.sprintf " (%d unconfirmed)" unconfirmed
     else "")
    Report.pp_coverage analysis.report.Search.coverage
