open Achilles_smt
open Achilles_symvm

let concrete ?(inputs = []) ?(incoming = []) ~prefix (config : Interp.config) =
  let outcome = Concrete.run ~inputs ~incoming prefix in
  (match outcome.Concrete.status with
  | State.Crashed msg ->
      invalid_arg (Printf.sprintf "Local_state.concrete: prefix crashed: %s" msg)
  | _ -> ());
  let initial_globals =
    List.map
      (fun (name, bv) -> (name, Term.const bv))
      outcome.Concrete.globals
  in
  { config with Interp.initial_globals }

let constructed_symbolic ~rounds (config : Interp.config) =
  let preload_messages =
    config.Interp.preload_messages
    @ List.map (fun (m : State.message) -> m.State.payload) rounds
  in
  let initial_path =
    config.Interp.initial_path
    @ List.concat_map (fun (m : State.message) -> List.rev m.State.path_at_send) rounds
  in
  { config with Interp.preload_messages; Interp.initial_path }

let over_approximate ~vars ?(constrain = fun _ -> []) (config : Interp.config) =
  let bindings =
    List.map
      (fun (name, width) ->
        (name, Term.var (Term.fresh_var ~name (Term.Bitvec width))))
      vars
  in
  let map =
    List.fold_left
      (fun m (name, t) -> State.String_map.add name t m)
      State.String_map.empty bindings
  in
  {
    config with
    Interp.initial_globals = config.Interp.initial_globals @ bindings;
    Interp.initial_path = config.Interp.initial_path @ constrain map;
  }
