(** Client and server path predicates (the paper's [pathCi] and [pathS]).

    A client path predicate captures one execution path of a client that
    sends a message: the message's byte terms (expressions over the client's
    symbolic inputs) plus the path constraints under which it is sent. The
    client predicate [PC] is the disjunction of all client path predicates.

    A server path predicate is the conjunction of path constraints over the
    bytes of the symbolic received message. The server predicate [PS] is the
    disjunction of the accepting server paths. *)

open Achilles_smt
open Achilles_symvm

type client_path = {
  cp_id : int; (* index within the client predicate *)
  source : string; (* which client program produced it *)
  message : Term.t array; (* byte terms, one per message byte *)
  constraints : Term.t list; (* path constraints at the send *)
}

type client_predicate = {
  layout : Layout.t;
  paths : client_path list; (* cp_id = position in this list *)
}

type server_path = {
  sp_state_id : int;
  label : string; (* the accept marker's label *)
  msg_vars : Term.var array; (* the symbolic message bytes *)
  sp_constraints : Term.t list;
}

val client_path_count : client_predicate -> int

val bind_to_server :
  server_vars:Term.var array -> client_path -> Term.t list
(** The paper's message-equality binding: the client path constraints plus
    one equality per byte between the server's symbolic message bytes and
    the client's message byte expressions ([msgS = msgC]). *)

val field_vars : Layout.t -> client_path -> string -> int list
(** Ids of the client input variables that feed the given field's bytes. *)

val constraints_mentioning : client_path -> int list -> Term.t list
(** Path constraints that mention at least one of the given variable ids. *)

val independent_fields : ?mask:string list -> client_predicate -> string list
(** Fields whose variables never share a constraint with another field's
    variables, in any client path — the fields for which the differentFrom
    matrix may be computed (§3.3). [mask] restricts to the analyzed
    fields. *)

val analyzed_fields : ?mask:string list -> Layout.t -> Layout.field list
(** The fields under analysis: all layout fields, or the mask subset. *)

val pp_client_path : Layout.t -> Format.formatter -> client_path -> unit
val pp_client_predicate : Format.formatter -> client_predicate -> unit
