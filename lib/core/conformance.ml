open Achilles_smt
open Achilles_symvm

type lost = { client_path : int; witness : Bv.t array }

type report = {
  lost : lost list;
  accepting_paths : int;
  client_paths : int;
  wall_time : float;
}

(* Collect the server's accepting paths (vanilla exploration). *)
let accepting_paths ?(interp = Interp.default_config) server =
  let acc = ref [] in
  let hooks =
    {
      Interp.default_hooks with
      Interp.on_terminal =
        (fun st ->
          match st.State.status, st.State.msg_vars with
          | State.Accepted _, Some vars ->
              acc := (vars, List.rev st.State.path) :: !acc
          | _ -> ());
    }
  in
  ignore (Interp.run ~config:interp ~hooks server);
  List.rev !acc

let witness_of_model vars model =
  Array.map
    (fun v ->
      match Model.find model v with
      | Some (Model.Vbv bv) -> bv
      | _ -> Bv.zero 8)
    vars

let run ?interp ?(max_per_path = 1) ~client ~server () =
  let t0 = Unix.gettimeofday () in
  let accepting = accepting_paths ?interp server in
  match accepting with
  | [] ->
      {
        lost = [];
        accepting_paths = 0;
        client_paths = Predicate.client_path_count client;
        wall_time = Unix.gettimeofday () -. t0;
      }
  | (server_vars, _) :: _ ->
      (* all accepting paths share the message variables of the single
         Receive; reject = conjunction of the negated path conjunctions *)
      let rejected_by_all =
        List.map
          (fun (_, constraints) -> Term.not_ (Term.and_l constraints))
          accepting
      in
      let lost =
        List.concat_map
          (fun (path : Predicate.client_path) ->
            let binding = Predicate.bind_to_server ~server_vars path in
            let base = rejected_by_all @ binding in
            let block witness =
              Term.not_
                (Term.and_l
                   (Array.to_list
                      (Array.mapi
                         (fun i b ->
                           Term.eq (Term.var server_vars.(i)) (Term.const b))
                         witness)))
            in
            let rec go blocked n acc =
              if n >= max_per_path then List.rev acc
              else
                match Solver.get_model (blocked @ base) with
                | None -> List.rev acc
                | Some model ->
                    let witness = witness_of_model server_vars model in
                    go (block witness :: blocked) (n + 1)
                      ({ client_path = path.Predicate.cp_id; witness } :: acc)
            in
            go [] 0 [])
          client.Predicate.paths
      in
      {
        lost;
        accepting_paths = List.length accepting;
        client_paths = Predicate.client_path_count client;
        wall_time = Unix.gettimeofday () -. t0;
      }

let pp_report layout fmt r =
  Format.fprintf fmt
    "@[<v>conformance: %d lost message(s) across %d client paths (%d server \
     accepting paths, %.2fs)@,"
    (List.length r.lost) r.client_paths r.accepting_paths r.wall_time;
  List.iter
    (fun l ->
      Format.fprintf fmt "lost message from client path %d:@,%a" l.client_path
        (Report.pp_witness layout) l.witness)
    r.lost;
  Format.fprintf fmt "@]"
