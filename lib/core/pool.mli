(** A fixed-size pool of domains with per-worker work-stealing deques.

    Built for the parallel Trojan search: batches of coarse-grained tasks
    (one route shard of the server exploration each) are distributed across
    the workers' deques; a worker runs its own deque newest-first and steals
    oldest-first from its siblings when it runs dry. Tasks must not submit
    further batches themselves — one batch is in flight at a time, submitted
    from (and awaited by) a single coordinating domain.

    Determinism: {!parallel_map} places results by task index, so the output
    never depends on which worker ran which task or in what order tasks
    finished. *)

type t

val create : domains:int -> t
(** Spawn a pool of [domains] worker domains (at least 1; this is the number
    of workers, the coordinating domain does not run tasks). Raises
    [Invalid_argument] for [domains < 1]. *)

val size : t -> int

val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array
(** Apply [f] to every element, tasks distributed over the pool; result [i]
    is [f arr.(i)]. Blocks until the whole batch has finished. If any task
    raised, the exception of the lowest-indexed failing task is re-raised
    here (with its backtrace) — after the batch has drained, so the pool
    stays usable. Raises [Invalid_argument] if the pool is shut down or a
    batch is already in flight. *)

val run_tasks : t -> (unit -> unit) array -> unit
(** [parallel_map] for effectful tasks without results. *)

type 'b outcome = {
  result : ('b, exn) result;
  attempts : int;  (** total attempts made, >= 1 *)
}

val map_with_retries :
  ?retries:int ->
  ?backoff:(int -> float) ->
  t ->
  ('a -> 'b) ->
  'a array ->
  'b outcome array
(** Fault-isolated [parallel_map]: a task that raises is retried in place up
    to [retries] more times (default 2), sleeping [backoff attempt] seconds
    before retry [attempt + 1] (default exponential, 50 ms doubling), and is
    recorded as [Error] once the cap is spent — the batch always completes
    and never re-raises a task exception. Raises [Invalid_argument] on
    negative [retries], a shut-down pool, or an in-flight batch. *)

val shutdown : t -> unit
(** Stop the workers and join their domains. Idempotent. Must not be called
    while a batch is in flight. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [create], run, and [shutdown] (also on exceptions). *)

val recommended_domains : unit -> int
(** [max 1 (recommended_domain_count - 1)]: the default width for sibling
    worker processes/domains, leaving a core for the coordinating process. *)
