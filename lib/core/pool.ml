(* A fixed-size domain pool with per-worker work-stealing deques.

   Tasks are coarse (a whole route shard of the server search), so a single
   pool-wide mutex around the deques is plenty: contention is a handful of
   lock acquisitions per task, nothing against the seconds of solver work
   inside one. Workers pop their own deque newest-first (LIFO keeps a
   worker on the subtree it just split) and steal oldest-first from their
   siblings (FIFO takes the biggest remaining chunk). *)

module Obs = Achilles_obs.Obs

module Deque = struct
  type 'a t = {
    mutable front : 'a list; (* oldest first *)
    mutable back : 'a list; (* newest first *)
  }

  let create () = { front = []; back = [] }
  let push_back d x = d.back <- x :: d.back

  let pop_back d =
    match d.back with
    | x :: rest ->
        d.back <- rest;
        Some x
    | [] -> (
        match List.rev d.front with
        | [] -> None
        | x :: rest ->
            (* [x] is the newest of [front]; keep the rest as the new back *)
            d.front <- [];
            d.back <- rest;
            Some x)

  let pop_front d =
    match d.front with
    | x :: rest ->
        d.front <- rest;
        Some x
    | [] -> (
        match List.rev d.back with
        | [] -> None
        | x :: rest ->
            d.front <- rest;
            d.back <- [];
            Some x)
end

type task = { run : unit -> unit; index : int }

type t = {
  size : int;
  mutex : Mutex.t;
  work_ready : Condition.t; (* workers sleep here waiting for tasks *)
  batch_done : Condition.t; (* the submitter sleeps here *)
  deques : task Deque.t array;
  mutable outstanding : int;
  mutable in_flight : bool;
  mutable failure : (int * exn * Printexc.raw_backtrace) option;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
}

let size p = p.size

(* Called with [p.mutex] held. *)
let find_task p w =
  match Deque.pop_back p.deques.(w) with
  | Some t -> Some t
  | None ->
      let rec steal k =
        if k = p.size then None
        else
          match Deque.pop_front p.deques.((w + k) mod p.size) with
          | Some t ->
              Obs.count "pool.tasks_stolen";
              Some t
          | None -> steal (k + 1)
      in
      steal 1

let record_failure p index exn bt =
  match p.failure with
  | Some (i, _, _) when i <= index -> ()
  | _ -> p.failure <- Some (index, exn, bt)

let worker_loop p w =
  Mutex.lock p.mutex;
  let rec loop () =
    if p.stopping then Mutex.unlock p.mutex
    else
      match find_task p w with
      | None ->
          Condition.wait p.work_ready p.mutex;
          loop ()
      | Some task ->
          Mutex.unlock p.mutex;
          Obs.count "pool.tasks_executed";
          let failed =
            try
              task.run ();
              None
            with exn -> Some (exn, Printexc.get_raw_backtrace ())
          in
          Mutex.lock p.mutex;
          (match failed with
          | Some (exn, bt) -> record_failure p task.index exn bt
          | None -> ());
          p.outstanding <- p.outstanding - 1;
          if p.outstanding = 0 then Condition.broadcast p.batch_done;
          loop ()
  in
  loop ()

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: need at least one domain";
  let p =
    {
      size = domains;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      batch_done = Condition.create ();
      deques = Array.init domains (fun _ -> Deque.create ());
      outstanding = 0;
      in_flight = false;
      failure = None;
      stopping = false;
      workers = [||];
    }
  in
  p.workers <- Array.init domains (fun w -> Domain.spawn (fun () -> worker_loop p w));
  p

let run_tasks p fs =
  let n = Array.length fs in
  if n = 0 then ()
  else begin
    Mutex.lock p.mutex;
    if p.stopping then begin
      Mutex.unlock p.mutex;
      invalid_arg "Pool.run_tasks: pool is shut down"
    end;
    if p.in_flight then begin
      Mutex.unlock p.mutex;
      invalid_arg "Pool.run_tasks: a batch is already in flight"
    end;
    p.in_flight <- true;
    p.failure <- None;
    Array.iteri
      (fun i run -> Deque.push_back p.deques.(i mod p.size) { run; index = i })
      fs;
    p.outstanding <- n;
    Condition.broadcast p.work_ready;
    while p.outstanding > 0 do
      Condition.wait p.batch_done p.mutex
    done;
    let failure = p.failure in
    p.failure <- None;
    p.in_flight <- false;
    Mutex.unlock p.mutex;
    match failure with
    | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None -> ()
  end

let parallel_map p f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    run_tasks p (Array.init n (fun i () -> results.(i) <- Some (f arr.(i))));
    Array.map (function Some r -> r | None -> assert false) results
  end

type 'b outcome = { result : ('b, exn) result; attempts : int }

(* Fault-isolated variant of [parallel_map]: a task that raises is retried
   in place (with a backoff sleep inside the worker — tasks are coarse, so
   occupying the worker for the sleep is cheaper than re-enqueueing) and,
   once the retry cap is spent, recorded as [Error] in its slot instead of
   aborting the batch. The batch itself never raises. *)
let map_with_retries ?(retries = 2)
    ?(backoff = fun attempt -> 0.05 *. (2. ** float_of_int attempt)) p f arr =
  if retries < 0 then invalid_arg "Pool.map_with_retries: negative retries";
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    run_tasks p
      (Array.init n (fun i () ->
           let rec attempt k =
             match f arr.(i) with
             | v -> results.(i) <- Some { result = Ok v; attempts = k + 1 }
             | exception exn ->
                 if k < retries then begin
                   Obs.count "pool.task_retries";
                   let pause = backoff k in
                   if pause > 0. then Unix.sleepf pause;
                   attempt (k + 1)
                 end
                 else
                   results.(i) <- Some { result = Error exn; attempts = k + 1 }
           in
           attempt 0));
    Array.map (function Some r -> r | None -> assert false) results
  end

let shutdown p =
  Mutex.lock p.mutex;
  if p.stopping then Mutex.unlock p.mutex
  else begin
    p.stopping <- true;
    Condition.broadcast p.work_ready;
    Mutex.unlock p.mutex;
    Array.iter Domain.join p.workers;
    p.workers <- [||]
  end

let with_pool ~domains f =
  let p = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)

(* One domain per core minus one for the caller (which the parallel search
   also uses as a worker, but a coordinator process does not): the default
   parallelism for anything that spawns sibling processes or domains. *)
let recommended_domains () = max 1 (Domain.recommended_domain_count () - 1)
