open Achilles_smt
open Achilles_symvm

type client_path = {
  cp_id : int;
  source : string;
  message : Term.t array;
  constraints : Term.t list;
}

type client_predicate = { layout : Layout.t; paths : client_path list }

type server_path = {
  sp_state_id : int;
  label : string;
  msg_vars : Term.var array;
  sp_constraints : Term.t list;
}

let client_path_count pc = List.length pc.paths

let bind_to_server ~server_vars path =
  if Array.length server_vars <> Array.length path.message then
    invalid_arg "Predicate.bind_to_server: message size mismatch";
  let equalities =
    Array.to_list
      (Array.mapi
         (fun i byte -> Term.eq (Term.var server_vars.(i)) byte)
         path.message)
  in
  equalities @ path.constraints

let field_vars layout path name =
  let f = Layout.field layout name in
  let ids = ref [] in
  for i = f.Layout.offset to f.Layout.offset + f.Layout.size - 1 do
    ids := Term.var_ids path.message.(i) @ !ids
  done;
  List.sort_uniq compare !ids

let constraints_mentioning path ids =
  List.filter
    (fun c -> List.exists (fun id -> List.mem id ids) (Term.var_ids c))
    path.constraints

let analyzed_fields ?mask layout =
  match mask with
  | None -> Layout.fields layout
  | Some names ->
      List.filter
        (fun (f : Layout.field) -> List.mem f.Layout.field_name names)
        (Layout.fields layout)

(* A field is independent when, in every client path, no path constraint and
   no message byte couples its variables with another analyzed field's
   variables. Fields outside the analysis mask are invisible to the
   analysis (negate never touches them), so value-sharing with them — e.g.
   a masked-out checksum over every other field — does not count. *)
let independent_fields ?mask pc =
  let fields = analyzed_fields ?mask pc.layout in
  let independent_in_path path (f : Layout.field) =
    let own = field_vars pc.layout path f.Layout.field_name in
    let others =
      List.concat_map
        (fun (g : Layout.field) ->
          if g.Layout.field_name = f.Layout.field_name then []
          else field_vars pc.layout path g.Layout.field_name)
        fields
    in
    let shares_var ids =
      List.exists (fun id -> List.mem id own) ids
      && List.exists (fun id -> List.mem id others) ids
    in
    (* a variable used by both fields couples them directly *)
    (not (List.exists (fun id -> List.mem id others) own))
    && not
         (List.exists (fun c -> shares_var (Term.var_ids c)) path.constraints)
  in
  List.filter
    (fun (f : Layout.field) ->
      List.for_all (fun p -> independent_in_path p f) pc.paths)
    fields
  |> List.map (fun (f : Layout.field) -> f.Layout.field_name)

let pp_client_path layout fmt path =
  Format.fprintf fmt "@[<v>path %d (from %s):@," path.cp_id path.source;
  List.iter
    (fun (f : Layout.field) ->
      if f.Layout.size <= 8 then
        let t = Layout.field_term layout path.message f.Layout.field_name in
        Format.fprintf fmt "  %s = %a@," f.Layout.field_name Term.pp t
      else begin
        (* too wide for one bitvector term: print per byte *)
        Format.fprintf fmt "  %s =" f.Layout.field_name;
        Array.iter
          (fun b -> Format.fprintf fmt " %a" Term.pp b)
          (Layout.field_bytes layout path.message f.Layout.field_name);
        Format.fprintf fmt "@,"
      end)
    (Layout.fields layout);
  (match path.constraints with
  | [] -> Format.fprintf fmt "  (no path constraints)@,"
  | cs ->
      Format.fprintf fmt "  subject to:@,";
      List.iter (fun c -> Format.fprintf fmt "    %a@," Term.pp c) (List.rev cs));
  Format.fprintf fmt "@]"

let pp_client_predicate fmt pc =
  Format.fprintf fmt "@[<v>client predicate (%d paths over %s):@,"
    (client_path_count pc)
    (Layout.name pc.layout);
  List.iter (fun p -> pp_client_path pc.layout fmt p) pc.paths;
  Format.fprintf fmt "@]"
