(** Terms of the quantifier-free bitvector + boolean theory.

    Terms are built exclusively through the smart constructors below, which
    perform constant folding and light algebraic simplification. Every term
    is a hash-consed record: [node] is the structure, [hkey] a structural
    hash computed at construction, and [tid] a process-unique id assigned
    when the node is first built. With sharing enabled (the default), each
    domain interns the nodes it constructs, so structurally equal terms
    built on one domain are physically equal and {!equal}/{!compare}/{!hash}
    are (amortized) O(1).

    The [tid] is an identity for memo tables only: it never participates in
    {!equal}, {!compare} or {!pp}, so printed output — and everything
    digested from it — is independent of construction order, domain count
    and sharing mode. *)

type sort = Bool | Bitvec of int

type var = private { id : int; name : string; sort : sort }

type t = private { tid : int; node : node; hkey : int }

and node =
  | True
  | False
  | Const of Bv.t
  | Var of var
  | Not of t
  | And of t * t
  | Or of t * t
  | Ite of t * t * t  (** boolean condition; branches of equal sort *)
  | Eq of t * t
  | Ult of t * t
  | Slt of t * t
  | Ule of t * t
  | Sle of t * t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Udiv of t * t
  | Urem of t * t
  | Bnot of t
  | Band of t * t
  | Bor of t * t
  | Bxor of t * t
  | Shl of t * t
  | Lshr of t * t
  | Ashr of t * t
  | Concat of t * t  (** first operand is the high bits *)
  | Extract of int * int * t  (** [Extract (hi, lo, t)], bits inclusive *)

exception Sort_error of string

val sort_equal : sort -> sort -> bool
val pp_sort : Format.formatter -> sort -> unit

val fresh_var : ?name:string -> sort -> var
(** Allocate a globally fresh variable. *)

val reset_fresh_counter : unit -> unit
(** Reset the fresh-variable counter. Only for reproducible experiments and
    tests that compare printed output; never call while terms are live. The
    counter is per-domain ([Domain.DLS]); this resets the calling domain's. *)

val set_fresh_counter : int -> unit
(** Set the calling domain's fresh-variable counter; the next variable gets
    id [n + 1]. Parallel search workers use this to replay the sequential id
    sequence inside their shard. *)

val fresh_counter_value : unit -> int
(** The calling domain's current counter (the id of the last variable it
    allocated). *)

val sort_of : t -> sort
(** Raises {!Sort_error} on ill-sorted terms (cannot happen for terms built
    with the smart constructors). *)

val width_of : t -> int
(** Width of a bitvector-sorted term; raises {!Sort_error} for booleans. *)

(** {1 Smart constructors} *)

val tru : t
val fls : t
val bool : bool -> t
val const : Bv.t -> t
val int : width:int -> int -> t
val var : var -> t
val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val and_l : t list -> t
val or_l : t list -> t
val implies : t -> t -> t
val ite : t -> t -> t -> t
val eq : t -> t -> t
val neq : t -> t -> t
val ult : t -> t -> t
val slt : t -> t -> t
val ule : t -> t -> t
val sle : t -> t -> t
val ugt : t -> t -> t
val uge : t -> t -> t
val sgt : t -> t -> t
val sge : t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val udiv : t -> t -> t
val urem : t -> t -> t
val neg : t -> t
val bnot : t -> t
val band : t -> t -> t
val bor : t -> t -> t
val bxor : t -> t -> t
val shl : t -> t -> t
val lshr : t -> t -> t
val ashr : t -> t -> t
val concat : t -> t -> t
val concat_l : t list -> t
(** [concat_l [hi; ...; lo]]; the list must be non-empty. *)

val extract : hi:int -> lo:int -> t -> t
val zero_extend : by:int -> t -> t
val sign_extend : by:int -> t -> t
val resize_unsigned : width:int -> t -> t
(** Zero-extend or truncate to the requested width. *)

(** {1 Inspection} *)

val is_const : t -> bool
val const_value : t -> Bv.t option
val bool_value : t -> bool option

val fold_vars : (var -> 'a -> 'a) -> t -> 'a -> 'a
val vars : t -> var list
(** Distinct variables occurring in the term, in ascending id order. *)

val var_ids : t -> int list
(** Distinct variable ids, ascending. Memoized per [tid] on the calling
    domain while sharing is enabled (the closure computations in [Negate]
    and [Predicate] re-ask for the same terms constantly). *)

val mentions : t -> var -> bool
val size : t -> int
(** Number of AST nodes. *)

val subst : (var -> t option) -> t -> t
(** Capture-free substitution of variables; substituted terms must have the
    variable's sort. *)

val alpha_key : t list -> string
(** A canonical rendering of the terms with variables renamed to their order
    of first occurrence: two term lists that differ only in the identity of
    their (fresh) variables get equal keys. Used to memoize per-path solver
    work across structurally identical client paths. *)

val equal : t -> t -> bool
(** Structural equality (ignoring [tid]), with a physical-equality fast
    path. On interned same-domain terms this is O(1); across domains or
    with sharing off it falls back to an [hkey]-filtered structural walk. *)

val compare : t -> t -> int
(** A total order with exactly the semantics the previous plain-ADT
    representation got from [Stdlib.compare] (constructor order, fields
    left to right, bitvectors by width then signed value) so every sorted
    canonical form — and therefore every digest — is unchanged. *)

val hash : t -> int
(** The stored structural hash; O(1) in both sharing modes. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Interning control and introspection} *)

val set_sharing : bool -> unit
(** Toggle hash-consing (default on). With sharing off every construction
    allocates a fresh node, reproducing the pre-interning cost model; all
    results are identical in both modes, only speed and memory change. *)

val sharing_enabled : unit -> bool

val intern_stats : unit -> int * int
(** [(hits, created)] for the calling domain: constructions answered from
    the intern table vs nodes physically allocated. *)

val aggregate_intern_stats : unit -> int * int
(** Totals over every domain that has built terms (including finished
    ones). *)

val structural_work : unit -> int
(** Total number of term nodes visited by the structural fallbacks of
    {!equal} and {!compare} and by the traversal behind {!var_ids}, across
    all domains — the work that sharing exists to avoid.  Physical-equality
    hits and per-tid memo hits cost (and count) nothing. *)

val clear_interning : unit -> unit
(** Drop every domain's intern table and per-tid memo and zero the sharing
    counters. Safe only while no other domain is constructing terms; live
    terms stay valid (subsequent constructions simply re-intern). *)

val rebuild : t -> t
(** Re-intern a term that bypassed the smart constructors — e.g. one
    revived by [Marshal] from a checkpoint, whose [tid]s belong to a dead
    process and must not be allowed near tid-keyed memo tables. Rebuilds
    bottom-up through the smart constructors (idempotent on their normal
    forms) with a per-call memo, so DAG-shaped sharing is preserved. *)

val dedup : t list -> t list
(** Order-preserving removal of duplicate terms (by {!equal}); used to
    dedup sibling constraints before they are sent to the solver. *)

(** Hash table keyed by terms, hashing with the stored [hkey] and comparing
    with {!equal}. The semantics are exactly those of a polymorphic
    [Hashtbl] over the old structural representation, at O(1) per probe on
    interned terms — which is what makes the bitblast memo and incremental-
    session indicator maps cheap without perturbing their contents. *)
module Tbl : Hashtbl.S with type key = t
