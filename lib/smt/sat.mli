(** A CDCL SAT solver (two-watched literals, first-UIP clause learning,
    VSIDS branching, phase saving, Luby restarts, learnt-clause reduction).

    Literals use the DIMACS convention: a positive integer [v] denotes
    variable [v], [-v] its negation. Variables must be allocated with
    {!new_var} before use.

    Instances support {e incremental} use: call {!solve} repeatedly with
    different [assumptions] while adding clauses in between; learnt clauses
    persist across calls. An [Unsat] answer without assumptions is final
    for the instance; under assumptions it only covers that assumption set
    (unless the instance itself became unsatisfiable, which subsequent
    calls report). *)

type t

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable; returns its (positive) index, starting at 1. *)

val num_vars : t -> int

val add_clause : t -> int list -> unit
(** Add a clause. Adding the empty clause (or only falsified literals at
    level 0) makes the instance unsatisfiable. Raises [Invalid_argument] on
    literals naming unallocated variables. *)

type result = Sat | Unsat

val solve :
  ?conflict_limit:int ->
  ?deadline:float ->
  ?assumptions:int list ->
  t ->
  result option
(** Run the search, optionally under assumption literals that hold for this
    call only. [None] means a resource budget was exhausted (only possible
    when one is given): either [conflict_limit] conflicts were spent, or the
    wall clock passed [deadline] (an absolute [Unix.gettimeofday] time,
    checked between restarts — the overshoot is bounded by one restart
    segment, ~100-1000 conflicts). *)

val value : t -> int -> bool
(** Value of a variable in the satisfying assignment; only valid after
    {!solve} returned [Sat]. Unassigned variables read as [false]. *)

val lit_value : t -> int -> bool
(** Value of a DIMACS literal under the model. *)

(** {1 Statistics} *)

val conflicts : t -> int
val decisions : t -> int
val propagations : t -> int

val unsat_core : t -> int list
(** After {!solve} returned [Unsat] under assumptions: the subset of the
    assumption literals (DIMACS) that already suffices for
    unsatisfiability. Empty when the instance is unsatisfiable outright. *)
