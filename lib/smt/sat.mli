(** A CDCL SAT solver (two-watched literals, first-UIP clause learning,
    VSIDS branching, phase saving, Luby restarts, learnt-clause reduction).

    Literals use the DIMACS convention: a positive integer [v] denotes
    variable [v], [-v] its negation. Variables must be allocated with
    {!new_var} before use.

    Instances support {e incremental} use: call {!solve} repeatedly with
    different [assumptions] while adding clauses in between; learnt clauses
    persist across calls. An [Unsat] answer without assumptions is final
    for the instance; under assumptions it only covers that assumption set
    (unless the instance itself became unsatisfiable, which subsequent
    calls report). *)

type t

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable; returns its (positive) index, starting at 1. *)

val num_vars : t -> int

val add_clause : t -> int list -> unit
(** Add a clause. Adding the empty clause (or only falsified literals at
    level 0) makes the instance unsatisfiable. Raises [Invalid_argument] on
    literals naming unallocated variables. *)

type result = Sat | Unsat

val solve :
  ?conflict_limit:int ->
  ?deadline:float ->
  ?assumptions:int list ->
  ?decide_vars:int array ->
  t ->
  result option
(** Run the search, optionally under assumption literals that hold for this
    call only. [None] means a resource budget was exhausted (only possible
    when one is given): either [conflict_limit] conflicts were spent, or the
    wall clock passed [deadline] (an absolute [Unix.gettimeofday] time,
    checked between restarts — the overshoot is bounded by one restart
    segment, ~100-1000 conflicts).

    [decide_vars] restricts decisions to the given variables; the search
    claims [Sat] once all of them are assigned without conflict, leaving the
    rest of the instance undecided. This is only sound when every clause not
    fully covered by [decide_vars] is satisfiable under {e any} assignment
    of the covered variables — e.g. activation-literal implications (the
    unassumed activation var can be set false) and definitional circuit
    clauses of total operators whose inputs either lie in [decide_vars] or
    are free. The caller is responsible for that closure property; the
    shared incremental contexts in {!Solver.Frames} maintain it by passing
    the full bitblast cone of the queried terms. After such a call the
    assignment is partial, so {!value} must not be used for model
    extraction. The array may be reordered in place. *)

val value : t -> int -> bool
(** Value of a variable in the satisfying assignment; only valid after
    {!solve} returned [Sat]. Unassigned variables read as [false]. *)

val lit_value : t -> int -> bool
(** Value of a DIMACS literal under the model. *)

(** {1 Statistics} *)

val conflicts : t -> int
val decisions : t -> int
val propagations : t -> int

val num_learnts : t -> int
(** Learnt clauses currently retained in the database (units are absorbed
    at level 0 and not counted). Across incremental {!solve} calls this is
    the learning carried from one query, or escalation rung, to the next. *)

val num_clauses : t -> int
(** Problem (non-learnt) clauses added so far. *)

val unsat_core : t -> int list
(** After {!solve} returned [Unsat] under assumptions: the subset of the
    assumption literals (DIMACS) that already suffices for
    unsatisfiability. Empty when the instance is unsatisfiable outright. *)
