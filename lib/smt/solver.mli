(** Front end of the SMT solver: satisfiability of conjunctions of boolean
    terms over the QF_BV theory.

    Pipeline per query: structural canonicalization (flatten conjunctions,
    dedupe, detect trivial answers) -> result cache lookup -> unsigned
    interval pre-check -> bitblasting -> CDCL SAT search -> model
    extraction.

    The cache and the statistics are per-domain ([Domain.DLS]): every domain
    running solver queries gets its own, so parallel search workers never
    contend on shared tables. {!aggregate_stats} merges across domains.
    Because each non-cached query is decided on a fresh SAT instance built
    from a canonicalized key, answers (including models) do not depend on
    which domain's cache served them. *)

type result = Sat of Model.t | Unsat | Unknown

val check : ?conflict_limit:int -> Term.t list -> result
(** Satisfiability of the conjunction. [Unknown] is only returned when the
    query is resource-bounded — a per-call [conflict_limit], an ambient
    {!budget} installed with {!set_budget}, or active {!set_fault_injection}
    — and the bound was exhausted on every rung of the escalation ladder
    (each [Unknown] attempt is retried at x4 the previous deadline/conflict
    budget, [b_escalations] times, before [Unknown] is final). A per-call
    [conflict_limit] overrides the ambient budget's conflict count but still
    rides the ambient ladder and deadline. *)

val is_sat : Term.t list -> bool
(** [check] specialized to a boolean. [Unknown] maps to [false] ("not shown
    satisfiable"), so under a budget a caller needing soundness one way or
    the other must use [check] and handle [Unknown] explicitly: [is_sat] and
    {!is_unsat} may {e both} be [false] for the same bounded query. *)

val is_unsat : Term.t list -> bool
(** [false] on [Sat] {e and} on [Unknown] — an exhausted budget never proves
    unsatisfiability. *)

val get_model : Term.t list -> Model.t option
(** A satisfying assignment, if one exists ([None] also on a budget-
    exhausted [Unknown]). *)

val implied : Term.t list -> Term.t -> bool
(** [implied assumptions t]: does the conjunction of [assumptions] entail
    [t]? *)

(** {1 Incremental solving (assumption-based frame stack)}

    When incremental solving is enabled (the default; see
    {!incremental_enabled}), verdict-only queries can be decided on a
    long-lived per-domain SAT instance instead of a scratch instance per
    query. Constraints are activated through per-term guard literals and a
    push/pop frame stack mirrors the DFS path prefix, so sibling queries
    along the path tree only bitblast their delta constraint and learnt
    clauses persist across queries and across escalation rungs.

    Incremental checks are {e verdict-oriented}: [Sat] answers carry an
    empty model. Model extraction (witness enumeration) must keep using the
    scratch {!check} — a persistent instance finds different (though equally
    valid) models, and report digests include witness bytes. Complete
    solvers agree on verdicts, so report digests are byte-identical whether
    incrementality is on or off. *)

val incremental_enabled : unit -> bool
(** Whether {!check_assuming} uses the per-domain incremental context.
    Defaults to [true]; the environment variable [ACHILLES_INCREMENTAL]
    (["0"], ["false"], ["off"], ["no"]) or {!set_incremental} turns it off,
    falling back to the scratch path. *)

val set_incremental : bool -> unit
(** Toggle incremental solving globally (the [--no-incremental] escape
    hatch). Takes effect on the next query; existing contexts are kept and
    simply bypassed while disabled. *)

val check_assuming :
  ?conflict_limit:int -> ?path:Term.t list -> Term.t list -> result
(** [check_assuming ~path extras]: satisfiability of the conjunction of
    [path] (newest-first, as [State.path]) and [extras]. With incremental
    solving enabled this syncs the calling domain's frame stack to [path]
    (popping what the search backtracked past, pushing the delta) and solves
    under assumptions on the shared instance; disabled, it is exactly
    [check (extras @ path)]. Treat the answer as a verdict only: the
    incremental path returns [Sat] with an empty model, while the scratch
    fallback happens to carry a real one. *)

val is_sat_assuming : ?path:Term.t list -> Term.t list -> bool
(** {!check_assuming} specialized to a boolean; [Unknown] maps to [false]
    like {!is_sat}. *)

val last_assumption_core : unit -> Term.t list option
(** After an [Unsat] from {!check_assuming} on this domain: the subset of
    that query's terms (path and extras alike) responsible for the
    conflict. [None] with incrementality disabled, after Sat/Unknown, or
    when the conflict was found before reaching the SAT core machinery. *)

val set_context_var_cap : int -> unit
(** Variable count at which a domain's incremental context is recycled
    (rebuilt fresh, re-asserting only the live frames) — bounds the cost
    unrelated accumulated CNF imposes on every later check. Default
    200_000. Raises [Invalid_argument] on a non-positive cap. Test API. *)

val aggregate_incremental_contexts : unit -> int
(** Live incremental contexts across every registered domain — 0 right
    after {!clear_cache} / {!reset_all_for_tests}, which drop them
    registry-wide. *)

(** Explicit handle on the frame-stack machinery backing {!check_assuming}
    — the differential test harness drives it directly. *)
module Frames : sig
  type t

  val create : unit -> t
  (** A fresh, empty context (its own SAT instance and bitblast cache). *)

  val for_domain : unit -> t
  (** The calling domain's shared context, created on first use; the one
      {!check_assuming} syncs to. *)

  val push : t -> Term.t -> unit
  (** Enter a frame asserting one term (guarded by an activation literal;
      the term is bitblasted now, once per context). *)

  val pop : t -> unit
  (** Leave the innermost frame. The term's guard and CNF stay registered
      for later re-activation; only the assumption is dropped. Raises
      [Invalid_argument] on an empty stack. *)

  val depth : t -> int
  val path : t -> Term.t list
  (** Current frames, innermost first (the [State.path] orientation). *)

  val set_path : t -> Term.t list -> unit
  (** Align the stack with a DFS path (newest first): pop frames past the
      common prefix, push the delta. *)

  val check : ?conflict_limit:int -> t -> Term.t list -> result
  (** Satisfiability of (every frame on the stack /\ the given terms); the
      given terms hold for this call only. Honors the ambient {!budget}
      (with learnt clauses retained between escalation rungs) and fault
      injection exactly like the top-level {!check}. [Sat] carries an
      empty model. *)

  val is_sat : ?conflict_limit:int -> t -> Term.t list -> bool

  val unsat_core : t -> Term.t list option
  (** Terms behind the last [Unsat] answer of {!check}. *)

  val learnts : t -> int
  (** Learnt clauses currently retained by the context's SAT instance. *)
end

(** {1 Resource budgets}

    A budget bounds each query attempt by a wall-clock deadline ([deadline]
    seconds) and/or a CDCL conflict count, with an escalation ladder: an
    attempt answering [Unknown] is retried at x4 the previous budget, up to
    [escalations] extra attempts, after which [Unknown] is returned and
    counted as a budget exhaustion. Budgets are ambient and per-domain
    (like the cache and statistics): parallel search workers install their
    own copy. *)

type budget

val budget :
  ?deadline:float -> ?conflicts:int -> ?escalations:int -> unit -> budget
(** [deadline] is seconds per attempt (wall clock), [conflicts] a CDCL
    conflict count per attempt, [escalations] the number of x4 retries
    (default 2). Raises [Invalid_argument] on negative values. A budget with
    neither [deadline] nor [conflicts] leaves queries unbounded. *)

val set_budget : budget option -> unit
(** Install (or clear, with [None]) the calling domain's ambient budget. *)

val get_budget : unit -> budget option

(** {1 Fault injection}

    Deterministic chaos for exercising degradation paths: with probability
    [rate], a SAT attempt is replaced by an [Unknown] answer (or, when
    [exceptions] is set, occasionally a raised {!Injected_fault}). Faults
    fire at exactly the points a real budget blow-up would, so the callers'
    Unknown policies, retry ladders and shard-failure handling are tested by
    the same machinery that degrades production runs. Configured globally
    ([ACHILLES_SOLVER_FAULT_RATE] / [ACHILLES_SOLVER_FAULT_SEED] read at
    startup, Unknown-only), each domain drawing from a PRNG seeded by
    (seed, domain slot) so fixed-domain-count runs replay identically. *)

exception Injected_fault

val set_fault_injection :
  ?rate:float -> ?exceptions:bool -> ?seed:int -> unit -> unit
(** Reconfigure fault injection (test API; overrides the environment).
    [rate = 0.] (the default) turns it off. Raises [Invalid_argument] when
    [rate] is outside [0, 1]. *)

val fault_rate : unit -> float
(** The currently configured fault rate (0 when injection is off). *)

(** {1 Statistics and cache control} *)

type stats = {
  mutable queries : int;
  mutable cache_hits : int;
  mutable cache_misses : int; (* enabled-cache lookups that missed *)
  mutable interval_prunes : int; (* queries settled by the interval check *)
  mutable sat_calls : int;
  mutable sat_results : int;
  mutable unsat_results : int;
  mutable unknown_results : int; (* final Unknown answers (post-ladder) *)
  mutable budget_escalations : int; (* x4 retries taken *)
  mutable budget_exhaustions : int; (* ladders that ended in Unknown *)
  mutable injected_faults : int; (* faults fired by {!set_fault_injection} *)
  mutable cache_evictions : int; (* result-cache entries dropped at the cap *)
  mutable incremental_checks : int; (* queries decided on a frame context *)
  mutable frame_pushes : int; (* frames entered ({!Frames.push}) *)
  mutable frame_pops : int; (* frames left ({!Frames.pop}) *)
  mutable learnts_retained : int;
  (* learnt clauses already present at the start of each incremental SAT
     attempt — the learning carried over from earlier queries *)
  mutable rung_retained : int;
  (* the subset of [learnts_retained] carried into escalation retries
     (rung >= 1): scratch solving re-learns these from nothing *)
  mutable context_resets : int; (* incremental contexts recycled at the cap *)
  mutable solve_time : float; (* seconds spent inside the SAT solver *)
}

val stats : unit -> stats
(** The calling domain's live statistics record (mutated in place by the
    solver as it runs in that domain). *)

val aggregate_stats : unit -> stats
(** A snapshot summing the statistics of every domain that has ever used the
    solver (including finished ones). Only a consistent total when no other
    domain is solving concurrently. *)

val reset_stats : unit -> unit
(** Zero the calling domain's statistics only. *)

val reset_all_for_tests : unit -> unit
(** Zero every domain's statistics, clear every domain's cache, drop every
    domain's term-interning tables and zero the bitblast memo counters, so
    test suites are order-independent regardless of which domains earlier
    cases ran solver work on. Not safe while another domain is solving. *)

val clear_cache : unit -> unit
(** Drop the result cache of {e every} registered domain (including
    finished ones). Clearing must be registry-wide: reconfiguration paths
    that cleared only the calling domain's cache left other domains serving
    results computed under the abandoned configuration. Not safe while
    another domain is solving. *)

val set_cache_enabled : bool -> unit
(** Toggle result caching for the calling domain. *)

val set_cache_capacity : int -> unit
(** Cap (globally) on each domain's result-cache entry count; at the cap the
    oldest entry is evicted first (FIFO), counted in [cache_evictions].
    Default 65536. Raises [Invalid_argument] on a non-positive cap. *)

type cache_stats = {
  cache_entries : int; (* live entries in this domain's result cache *)
  cache_hit_count : int;
  cache_miss_count : int;
  cache_eviction_count : int;
}

val cache_stats : unit -> cache_stats
(** Labeled result-cache statistics for the calling domain. *)

val aggregate_cache_entries : unit -> int
(** Total live result-cache entries across every registered domain. *)

(** {1 Incremental sessions}

    A session keeps one SAT instance alive across queries: permanent
    constraints are asserted once, and each {!Incremental.check} solves
    under per-call assumption terms (guard literals in the underlying CDCL
    solver). Terms are bitblasted once per session and learnt clauses
    persist, which is exactly right for symbolic execution's pattern of
    re-querying a fixed binding under monotonically growing path
    constraints. *)
module Incremental : sig
  type session

  val create : unit -> session

  val assert_always : session -> Term.t -> unit
  (** Add a permanent constraint. *)

  val check : ?conflict_limit:int -> session -> Term.t list -> result
  (** Satisfiability of (permanent constraints /\ the given terms); the
      given terms hold for this call only. Honors the calling domain's
      ambient {!budget} (deadline, conflicts, escalation ladder) and fault
      injection exactly like the top-level {!check}. *)

  val is_sat : ?conflict_limit:int -> session -> Term.t list -> bool
  val is_unsat : ?conflict_limit:int -> session -> Term.t list -> bool
  (** Like the top-level specializations, both map [Unknown] to [false]:
      an exhausted budget proves neither satisfiability nor its negation. *)

  val unsat_core : session -> Term.t list option
  (** After an [Unsat] answer: the subset of that check's terms already
      sufficient for unsatisfiability together with the permanent
      constraints — an explanation of the conflict. [None] when the
      permanent constraints alone are contradictory. *)
end
