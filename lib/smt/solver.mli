(** Front end of the SMT solver: satisfiability of conjunctions of boolean
    terms over the QF_BV theory.

    Pipeline per query: structural canonicalization (flatten conjunctions,
    dedupe, detect trivial answers) -> result cache lookup -> unsigned
    interval pre-check -> bitblasting -> CDCL SAT search -> model
    extraction.

    The cache and the statistics are per-domain ([Domain.DLS]): every domain
    running solver queries gets its own, so parallel search workers never
    contend on shared tables. {!aggregate_stats} merges across domains.
    Because each non-cached query is decided on a fresh SAT instance built
    from a canonicalized key, answers (including models) do not depend on
    which domain's cache served them. *)

type result = Sat of Model.t | Unsat | Unknown

val check : ?conflict_limit:int -> Term.t list -> result
(** Satisfiability of the conjunction. [Unknown] is only returned when
    [conflict_limit] is given and exhausted. *)

val is_sat : Term.t list -> bool
(** [check] specialized; treats [Unknown] as satisfiable is never needed
    because no limit is passed. *)

val is_unsat : Term.t list -> bool

val get_model : Term.t list -> Model.t option
(** A satisfying assignment, if one exists. *)

val implied : Term.t list -> Term.t -> bool
(** [implied assumptions t]: does the conjunction of [assumptions] entail
    [t]? *)

(** {1 Statistics and cache control} *)

type stats = {
  mutable queries : int;
  mutable cache_hits : int;
  mutable interval_prunes : int; (* queries settled by the interval check *)
  mutable sat_calls : int;
  mutable sat_results : int;
  mutable unsat_results : int;
  mutable solve_time : float; (* seconds spent inside the SAT solver *)
}

val stats : unit -> stats
(** The calling domain's live statistics record (mutated in place by the
    solver as it runs in that domain). *)

val aggregate_stats : unit -> stats
(** A snapshot summing the statistics of every domain that has ever used the
    solver (including finished ones). Only a consistent total when no other
    domain is solving concurrently. *)

val reset_stats : unit -> unit
(** Zero the calling domain's statistics only. *)

val reset_all_for_tests : unit -> unit
(** Zero every domain's statistics and clear every domain's cache, so test
    suites are order-independent regardless of which domains earlier cases
    ran solver work on. Not safe while another domain is solving. *)

val clear_cache : unit -> unit
(** Drop the calling domain's result cache. *)

val set_cache_enabled : bool -> unit
(** Toggle result caching for the calling domain. *)

(** {1 Incremental sessions}

    A session keeps one SAT instance alive across queries: permanent
    constraints are asserted once, and each {!Incremental.check} solves
    under per-call assumption terms (guard literals in the underlying CDCL
    solver). Terms are bitblasted once per session and learnt clauses
    persist, which is exactly right for symbolic execution's pattern of
    re-querying a fixed binding under monotonically growing path
    constraints. *)
module Incremental : sig
  type session

  val create : unit -> session

  val assert_always : session -> Term.t -> unit
  (** Add a permanent constraint. *)

  val check : ?conflict_limit:int -> session -> Term.t list -> result
  (** Satisfiability of (permanent constraints /\ the given terms); the
      given terms hold for this call only. *)

  val is_sat : ?conflict_limit:int -> session -> Term.t list -> bool
  val is_unsat : ?conflict_limit:int -> session -> Term.t list -> bool

  val unsat_core : session -> Term.t list option
  (** After an [Unsat] answer: the subset of that check's terms already
      sufficient for unsatisfiability together with the permanent
      constraints — an explanation of the conflict. [None] when the
      permanent constraints alone are contradictory. *)
end
