type result = Sat of Model.t | Unsat | Unknown

type stats = {
  mutable queries : int;
  mutable cache_hits : int;
  mutable interval_prunes : int;
  mutable sat_calls : int;
  mutable sat_results : int;
  mutable unsat_results : int;
  mutable solve_time : float;
}

let fresh_stats () =
  {
    queries = 0;
    cache_hits = 0;
    interval_prunes = 0;
    sat_calls = 0;
    sat_results = 0;
    unsat_results = 0;
    solve_time = 0.;
  }

(* Every domain gets its own stats record, result cache and cache switch, so
   parallel search workers never contend on (or corrupt) shared tables. A
   registry of all per-domain states backs the aggregate/reset APIs. *)
type domain_state = {
  dstats : stats;
  dcache : (Term.t list, result) Hashtbl.t;
  mutable dcache_enabled : bool;
}

let registry : domain_state list ref = ref []
let registry_mutex = Mutex.create ()

let domain_key =
  Domain.DLS.new_key (fun () ->
      let st =
        {
          dstats = fresh_stats ();
          dcache = Hashtbl.create 1024;
          dcache_enabled = true;
        }
      in
      Mutex.lock registry_mutex;
      registry := st :: !registry;
      Mutex.unlock registry_mutex;
      st)

let domain_state () = Domain.DLS.get domain_key
let stats () = (domain_state ()).dstats

let reset_one st =
  st.queries <- 0;
  st.cache_hits <- 0;
  st.interval_prunes <- 0;
  st.sat_calls <- 0;
  st.sat_results <- 0;
  st.unsat_results <- 0;
  st.solve_time <- 0.

let reset_stats () = reset_one (stats ())

let aggregate_stats () =
  Mutex.lock registry_mutex;
  let states = !registry in
  Mutex.unlock registry_mutex;
  let acc = fresh_stats () in
  List.iter
    (fun d ->
      let s = d.dstats in
      acc.queries <- acc.queries + s.queries;
      acc.cache_hits <- acc.cache_hits + s.cache_hits;
      acc.interval_prunes <- acc.interval_prunes + s.interval_prunes;
      acc.sat_calls <- acc.sat_calls + s.sat_calls;
      acc.sat_results <- acc.sat_results + s.sat_results;
      acc.unsat_results <- acc.unsat_results + s.unsat_results;
      acc.solve_time <- acc.solve_time +. s.solve_time)
    states;
  acc

let reset_all_for_tests () =
  Mutex.lock registry_mutex;
  let states = !registry in
  Mutex.unlock registry_mutex;
  List.iter
    (fun d ->
      reset_one d.dstats;
      Hashtbl.reset d.dcache)
    states

let clear_cache () = Hashtbl.reset (domain_state ()).dcache
let set_cache_enabled b = (domain_state ()).dcache_enabled <- b

(* Flatten nested conjunctions, drop [True], dedupe and sort for a canonical
   cache key. Returns [None] when a conjunct is literally [False]. *)
let canonicalize terms =
  let rec flatten acc = function
    | [] -> Some acc
    | Term.True :: rest -> flatten acc rest
    | Term.False :: _ -> None
    | Term.And (a, b) :: rest -> flatten acc (a :: b :: rest)
    | t :: rest -> flatten (t :: acc) rest
  in
  Option.map (List.sort_uniq Term.compare) (flatten [] terms)

let solve_with_sat ?conflict_limit terms =
  let st = stats () in
  let sat = Sat.create () in
  let bb = Bitblast.create sat in
  List.iter (Bitblast.assert_true bb) terms;
  st.sat_calls <- st.sat_calls + 1;
  let t0 = Unix.gettimeofday () in
  let answer = Sat.solve ?conflict_limit sat in
  st.solve_time <- st.solve_time +. (Unix.gettimeofday () -. t0);
  match answer with
  | Some Sat.Sat ->
      st.sat_results <- st.sat_results + 1;
      Sat (Bitblast.extract_model bb)
  | Some Sat.Unsat ->
      st.unsat_results <- st.unsat_results + 1;
      Unsat
  | None -> Unknown

let check ?conflict_limit terms =
  let d = domain_state () in
  let st = d.dstats in
  st.queries <- st.queries + 1;
  match canonicalize terms with
  | None ->
      st.unsat_results <- st.unsat_results + 1;
      Unsat
  | Some [] -> Sat Model.empty
  | Some key -> (
      match if d.dcache_enabled then Hashtbl.find_opt d.dcache key else None with
      | Some r ->
          st.cache_hits <- st.cache_hits + 1;
          r
      | None ->
          let r =
            if Interval.definitely_unsat key then begin
              st.interval_prunes <- st.interval_prunes + 1;
              Unsat
            end
            else solve_with_sat ?conflict_limit key
          in
          (match r with
          | Unknown -> ()
          | Sat _ | Unsat ->
              if d.dcache_enabled then Hashtbl.replace d.dcache key r);
          r)

let is_sat terms = match check terms with Sat _ -> true | Unsat | Unknown -> false
let is_unsat terms = match check terms with Unsat -> true | Sat _ | Unknown -> false

let get_model terms =
  match check terms with Sat m -> Some m | Unsat | Unknown -> None

let implied assumptions t = is_unsat (Term.not_ t :: assumptions)

(* --- incremental sessions ------------------------------------------------- *)

module Incremental = struct
  type session = {
    sat : Sat.t;
    bb : Bitblast.t;
    indicators : (Term.t, int) Hashtbl.t; (* assumption term -> guard var *)
    terms_of_guard : (int, Term.t) Hashtbl.t; (* reverse, for unsat cores *)
    mutable dead : bool; (* permanent constraints became unsatisfiable *)
  }

  let create () =
    let sat = Sat.create () in
    {
      sat;
      bb = Bitblast.create sat;
      indicators = Hashtbl.create 64;
      terms_of_guard = Hashtbl.create 64;
      dead = false;
    }

  let assert_always session term =
    match term with
    | Term.True -> ()
    | Term.False -> session.dead <- true
    | _ -> Bitblast.assert_true session.bb term

  (* Guard variable implying the term: assuming the guard forces the term.
     Terms are translated (and their implication clause added) once per
     session; later checks reuse the same guard. *)
  let indicator session term =
    match Hashtbl.find_opt session.indicators term with
    | Some g -> g
    | None ->
        let g = Sat.new_var session.sat in
        Sat.add_clause session.sat [ -g; Bitblast.lit_of session.bb term ];
        Hashtbl.replace session.indicators term g;
        Hashtbl.replace session.terms_of_guard g term;
        g

  let check ?conflict_limit session terms =
    let st = stats () in
    st.queries <- st.queries + 1;
    if session.dead then Unsat
    else begin
      match canonicalize terms with
      | None -> Unsat
      | Some terms ->
          let assumptions = List.map (indicator session) terms in
          st.sat_calls <- st.sat_calls + 1;
          let t0 = Unix.gettimeofday () in
          let answer = Sat.solve ?conflict_limit ~assumptions session.sat in
          st.solve_time <- st.solve_time +. (Unix.gettimeofday () -. t0);
          (match answer with
          | Some Sat.Sat ->
              st.sat_results <- st.sat_results + 1;
              Sat (Bitblast.extract_model session.bb)
          | Some Sat.Unsat ->
              st.unsat_results <- st.unsat_results + 1;
              (* Unsat under assumptions; the session stays usable unless
                 the permanent part itself is contradictory, which the next
                 unassumed call would reveal. *)
              Unsat
          | None -> Unknown)
    end

  (* The subset of the last check's terms already responsible for its
     unsatisfiability; [None] when the permanent constraints alone are
     contradictory (the empty core). *)
  let unsat_core session =
    match Sat.unsat_core session.sat with
    | [] -> None
    | lits ->
        Some
          (List.filter_map
             (fun l -> Hashtbl.find_opt session.terms_of_guard (abs l))
             lits)

  let is_sat ?conflict_limit session terms =
    match check ?conflict_limit session terms with
    | Sat _ -> true
    | Unsat | Unknown -> false

  let is_unsat ?conflict_limit session terms =
    match check ?conflict_limit session terms with
    | Unsat -> true
    | Sat _ | Unknown -> false
end
