module Obs = Achilles_obs.Obs

type result = Sat of Model.t | Unsat | Unknown

type stats = {
  mutable queries : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable interval_prunes : int;
  mutable sat_calls : int;
  mutable sat_results : int;
  mutable unsat_results : int;
  mutable unknown_results : int;
  mutable budget_escalations : int;
  mutable budget_exhaustions : int;
  mutable injected_faults : int;
  mutable cache_evictions : int;
  mutable incremental_checks : int;
  mutable frame_pushes : int;
  mutable frame_pops : int;
  mutable learnts_retained : int;
  mutable rung_retained : int;
  mutable context_resets : int;
  mutable solve_time : float;
}

let fresh_stats () =
  {
    queries = 0;
    cache_hits = 0;
    cache_misses = 0;
    interval_prunes = 0;
    sat_calls = 0;
    sat_results = 0;
    unsat_results = 0;
    unknown_results = 0;
    budget_escalations = 0;
    budget_exhaustions = 0;
    injected_faults = 0;
    cache_evictions = 0;
    incremental_checks = 0;
    frame_pushes = 0;
    frame_pops = 0;
    learnts_retained = 0;
    rung_retained = 0;
    context_resets = 0;
    solve_time = 0.;
  }

(* --- per-query resource budgets ------------------------------------------- *)

type budget = {
  b_deadline : float option;
  b_conflicts : int option;
  b_escalations : int;
}

let budget ?deadline ?conflicts ?(escalations = 2) () =
  (match deadline with
  | Some d when d < 0. -> invalid_arg "Solver.budget: negative deadline"
  | _ -> ());
  (match conflicts with
  | Some c when c < 0 -> invalid_arg "Solver.budget: negative conflicts"
  | _ -> ());
  if escalations < 0 then invalid_arg "Solver.budget: negative escalations";
  { b_deadline = deadline; b_conflicts = conflicts; b_escalations = escalations }

(* --- fault injection -------------------------------------------------------

   Forces random [Unknown]s (and, when enabled, exceptions) at exactly the
   sites where a real SAT search could blow past its budget, so every
   degradation path of the callers (search policies, pool retries, partial
   reports) can be exercised. The configuration is global; each domain draws
   from its own PRNG seeded by (seed, registration slot), so a run with a
   fixed domain count replays the same fault pattern. *)

exception Injected_fault

type fault_config = { f_rate : float; f_exceptions : bool; f_seed : int }

let env_float name =
  match Sys.getenv_opt name with
  | None -> None
  | Some s -> float_of_string_opt (String.trim s)

let fault_config =
  Atomic.make
    {
      f_rate =
        (match env_float "ACHILLES_SOLVER_FAULT_RATE" with
        | Some r when r > 0. -> Float.min r 1.
        | _ -> 0.);
      f_exceptions = false;
      f_seed =
        (match Sys.getenv_opt "ACHILLES_SOLVER_FAULT_SEED" with
        | Some s -> ( match int_of_string_opt (String.trim s) with
                      | Some n -> n
                      | None -> 0x5eed)
        | None -> 0x5eed);
    }

(* Bumped on every reconfiguration so domains re-seed their cached PRNG. *)
let fault_generation = Atomic.make 0

let set_fault_injection ?(rate = 0.) ?(exceptions = false) ?(seed = 0x5eed) () =
  if rate < 0. || rate > 1. then
    invalid_arg "Solver.set_fault_injection: rate outside [0,1]";
  Atomic.set fault_config { f_rate = rate; f_exceptions = exceptions; f_seed = seed };
  Atomic.incr fault_generation

let fault_rate () = (Atomic.get fault_config).f_rate

(* Result-cache keys are the canonicalized conjunct lists. The table must
   hash and compare them structurally whatever the sharing mode — a
   polymorphic Hashtbl would hash the [tid]s and never hit — so it uses the
   terms' stored structural keys. *)
module Key_tbl = Hashtbl.Make (struct
  type t = Term.t list

  let equal = List.equal Term.equal
  let hash key = List.fold_left (fun h t -> (h * 31) + Term.hash t) 17 key
end)

(* Satellite: the per-domain result cache is bounded. Keys are evicted in
   insertion order (FIFO) once the cap is reached — sound because a miss
   merely re-solves, and deterministic because insertion order is the query
   order, which the replay discipline already fixes. *)
let cache_capacity = Atomic.make 65536

let set_cache_capacity n =
  if n < 1 then invalid_arg "Solver.set_cache_capacity";
  Atomic.set cache_capacity n

(* Every domain gets its own stats record, result cache and cache switch, so
   parallel search workers never contend on (or corrupt) shared tables. A
   registry of all per-domain states backs the aggregate/reset APIs. *)
(* The per-domain incremental solver context: one long-lived SAT instance
   plus bitblast cache, a stack of activation-literal frames mirroring the
   DFS path prefix, and the guard tables mapping terms to their activation
   variables. Lives in [domain_state] beside the intern tables and result
   cache; see the [Frames] module below for the operations. *)
type frames_ctx = {
  mutable fc_sat : Sat.t;
  mutable fc_bb : Bitblast.t;
  fc_guards : int Term.Tbl.t; (* term -> activation var *)
  fc_guard_terms : (int, Term.t) Hashtbl.t; (* reverse, for unsat cores *)
  mutable fc_stack : Term.t list; (* frames, innermost first (as State.path) *)
  mutable fc_last_core : Term.t list option; (* terms behind the last Unsat *)
}

type domain_state = {
  dstats : stats;
  dcache : result Key_tbl.t;
  dcache_order : Term.t list Queue.t; (* insertion order, for eviction *)
  (* Verdict-only cache for incremental checks, deliberately separate from
     [dcache]: incremental [Sat] answers carry no model, and serving one to
     a model-extracting scratch caller would desynchronize witness
     enumeration between the two modes. Stores the unsat core alongside
     [Unsat] so cached answers still explain drops. *)
  dvcache : (result * Term.t list option) Key_tbl.t;
  dvcache_order : Term.t list Queue.t;
  mutable dcache_enabled : bool;
  mutable dbudget : budget option;
  dslot : int; (* registration order; seeds the fault PRNG *)
  mutable dfault : (int * Random.State.t) option; (* generation, PRNG *)
  mutable dframes : frames_ctx option; (* lazily-built incremental context *)
}

let registry : domain_state list ref = ref []
let registry_mutex = Mutex.create ()

let domain_key =
  Domain.DLS.new_key (fun () ->
      Mutex.lock registry_mutex;
      let st =
        {
          dstats = fresh_stats ();
          dcache = Key_tbl.create 1024;
          dcache_order = Queue.create ();
          dvcache = Key_tbl.create 1024;
          dvcache_order = Queue.create ();
          dcache_enabled = true;
          dbudget = None;
          dslot = List.length !registry;
          dfault = None;
          dframes = None;
        }
      in
      registry := st :: !registry;
      Mutex.unlock registry_mutex;
      st)

let domain_state () = Domain.DLS.get domain_key
let stats () = (domain_state ()).dstats
let set_budget b = (domain_state ()).dbudget <- b
let get_budget () = (domain_state ()).dbudget

let reset_one st =
  st.queries <- 0;
  st.cache_hits <- 0;
  st.cache_misses <- 0;
  st.interval_prunes <- 0;
  st.sat_calls <- 0;
  st.sat_results <- 0;
  st.unsat_results <- 0;
  st.unknown_results <- 0;
  st.budget_escalations <- 0;
  st.budget_exhaustions <- 0;
  st.injected_faults <- 0;
  st.cache_evictions <- 0;
  st.incremental_checks <- 0;
  st.frame_pushes <- 0;
  st.frame_pops <- 0;
  st.learnts_retained <- 0;
  st.rung_retained <- 0;
  st.context_resets <- 0;
  st.solve_time <- 0.

let reset_stats () = reset_one (stats ())

let aggregate_stats () =
  Mutex.lock registry_mutex;
  let states = !registry in
  Mutex.unlock registry_mutex;
  let acc = fresh_stats () in
  List.iter
    (fun d ->
      let s = d.dstats in
      acc.queries <- acc.queries + s.queries;
      acc.cache_hits <- acc.cache_hits + s.cache_hits;
      acc.cache_misses <- acc.cache_misses + s.cache_misses;
      acc.interval_prunes <- acc.interval_prunes + s.interval_prunes;
      acc.sat_calls <- acc.sat_calls + s.sat_calls;
      acc.sat_results <- acc.sat_results + s.sat_results;
      acc.unsat_results <- acc.unsat_results + s.unsat_results;
      acc.unknown_results <- acc.unknown_results + s.unknown_results;
      acc.budget_escalations <- acc.budget_escalations + s.budget_escalations;
      acc.budget_exhaustions <- acc.budget_exhaustions + s.budget_exhaustions;
      acc.injected_faults <- acc.injected_faults + s.injected_faults;
      acc.cache_evictions <- acc.cache_evictions + s.cache_evictions;
      acc.incremental_checks <- acc.incremental_checks + s.incremental_checks;
      acc.frame_pushes <- acc.frame_pushes + s.frame_pushes;
      acc.frame_pops <- acc.frame_pops + s.frame_pops;
      acc.learnts_retained <- acc.learnts_retained + s.learnts_retained;
      acc.rung_retained <- acc.rung_retained + s.rung_retained;
      acc.context_resets <- acc.context_resets + s.context_resets;
      acc.solve_time <- acc.solve_time +. s.solve_time)
    states;
  acc

let clear_one_cache d =
  Key_tbl.reset d.dcache;
  Queue.clear d.dcache_order;
  Key_tbl.reset d.dvcache;
  Queue.clear d.dvcache_order;
  (* The incremental context is a cache too (of CNF, guard variables and
     learnt clauses keyed by term structure): dropping only the result
     cache would leave every other domain's long-lived SAT instance holding
     guards for terms from the configuration being abandoned — and after a
     [Term.clear_interning] those structural keys can collide with fresh
     terms. The next incremental check lazily rebuilds a fresh context. *)
  d.dframes <- None

(* Clearing is registry-wide: a per-domain clear left the other domains'
   caches holding results computed under the configuration being abandoned,
   which is exactly the desynchronization the reconfigure paths hit. *)
let clear_cache () =
  Mutex.lock registry_mutex;
  let states = !registry in
  Mutex.unlock registry_mutex;
  List.iter clear_one_cache states

let reset_all_for_tests () =
  Mutex.lock registry_mutex;
  let states = !registry in
  Mutex.unlock registry_mutex;
  List.iter
    (fun d ->
      reset_one d.dstats;
      clear_one_cache d)
    states;
  Term.clear_interning ();
  Bitblast.reset_memo_stats ();
  Obs.reset_all ()

let aggregate_incremental_contexts () =
  Mutex.lock registry_mutex;
  let states = !registry in
  Mutex.unlock registry_mutex;
  List.fold_left
    (fun n d -> match d.dframes with Some _ -> n + 1 | None -> n)
    0 states

(* --- incremental-solving switch --------------------------------------------

   The escape hatch demanded by any refactor of the solver hot path: with
   incrementality off every query takes the historical scratch route (fresh
   SAT instance per query), so a miscompare between the two modes is one
   environment variable away from a workaround and a bug report. *)

let incremental_flag =
  Atomic.make
    (match Sys.getenv_opt "ACHILLES_INCREMENTAL" with
    | Some s -> (
        match String.lowercase_ascii (String.trim s) with
        | "0" | "false" | "off" | "no" -> false
        | _ -> true)
    | None -> true)

let incremental_enabled () = Atomic.get incremental_flag
let set_incremental b = Atomic.set incremental_flag b

let set_cache_enabled b = (domain_state ()).dcache_enabled <- b

(* Labeled view of this domain's result-cache behaviour — the bare
   [entries, evictions] tuple this replaced invited silent transpositions
   at call sites. *)
type cache_stats = {
  cache_entries : int;
  cache_hit_count : int;
  cache_miss_count : int;
  cache_eviction_count : int;
}

let cache_stats () =
  let d = domain_state () in
  {
    cache_entries = Key_tbl.length d.dcache;
    cache_hit_count = d.dstats.cache_hits;
    cache_miss_count = d.dstats.cache_misses;
    cache_eviction_count = d.dstats.cache_evictions;
  }

let aggregate_cache_entries () =
  Mutex.lock registry_mutex;
  let states = !registry in
  Mutex.unlock registry_mutex;
  List.fold_left (fun n d -> n + Key_tbl.length d.dcache) 0 states

(* Insert a fresh result, evicting the oldest entry at capacity. Only keys
   actually inserted are queued, so queue length always equals table size. *)
let cache_insert d key r =
  if not (Key_tbl.mem d.dcache key) then begin
    if Key_tbl.length d.dcache >= Atomic.get cache_capacity then begin
      let oldest = Queue.pop d.dcache_order in
      Key_tbl.remove d.dcache oldest;
      d.dstats.cache_evictions <- d.dstats.cache_evictions + 1
    end;
    Key_tbl.replace d.dcache key r;
    Queue.push key d.dcache_order
  end
  else Key_tbl.replace d.dcache key r

let vcache_insert d key r =
  if not (Key_tbl.mem d.dvcache key) then begin
    if Key_tbl.length d.dvcache >= Atomic.get cache_capacity then begin
      let oldest = Queue.pop d.dvcache_order in
      Key_tbl.remove d.dvcache oldest;
      d.dstats.cache_evictions <- d.dstats.cache_evictions + 1
    end;
    Key_tbl.replace d.dvcache key r;
    Queue.push key d.dvcache_order
  end
  else Key_tbl.replace d.dvcache key r

(* Flatten nested conjunctions, drop [True], dedupe and sort for a canonical
   cache key. Returns [None] when a conjunct is literally [False]. *)
let canonicalize terms =
  let rec flatten acc = function
    | [] -> Some acc
    | (t : Term.t) :: rest -> (
        match t.Term.node with
        | Term.True -> flatten acc rest
        | Term.False -> None
        | Term.And (a, b) -> flatten acc (a :: b :: rest)
        | _ -> flatten (t :: acc) rest)
  in
  Option.map (List.sort_uniq Term.compare) (flatten [] terms)

(* Does an injected fault hit this SAT call? Counts the fault and either
   answers [Unknown] (returns [true]) or raises [Injected_fault]. *)
let fault_fires d =
  let cfg = Atomic.get fault_config in
  if cfg.f_rate <= 0. then false
  else begin
    let gen = Atomic.get fault_generation in
    let rng =
      match d.dfault with
      | Some (g, rng) when g = gen -> rng
      | _ ->
          let rng = Random.State.make [| cfg.f_seed; d.dslot |] in
          d.dfault <- Some (gen, rng);
          rng
    in
    if Random.State.float rng 1.0 < cfg.f_rate then begin
      d.dstats.injected_faults <- d.dstats.injected_faults + 1;
      if cfg.f_exceptions && Random.State.int rng 4 = 0 then
        raise Injected_fault;
      true
    end
    else false
  end

(* The escalation ladder. Run one solving attempt under the domain's ambient
   budget; every [Unknown] answer (exhausted limit or injected fault) is
   retried at x4 the previous budget, up to [b_escalations] extra attempts,
   after which [Unknown] stands and counts as a budget exhaustion. With no
   ambient budget the single attempt is unbounded (modulo a per-call
   [conflict_limit]), preserving the historical semantics. *)
let with_budget ~conflict_limit d attempt =
  let st = d.dstats in
  (* [rung] is how many escalations the answer needed (0 = first attempt);
     it reaches the trace so budget tuning can see which queries struggled. *)
  let finish ~rung r =
    (match r with
    | Unknown -> st.unknown_results <- st.unknown_results + 1
    | Sat _ | Unsat -> ());
    if Obs.live () then
      Obs.emit ~kind:"solver" ~name:"verdict"
        ~args:
          [
            ( "result",
              Obs.S
                (match r with
                | Sat _ -> "sat"
                | Unsat -> "unsat"
                | Unknown -> "unknown") );
            ("rung", Obs.I rung);
          ]
        ();
    r
  in
  match d.dbudget with
  | None -> finish ~rung:0 (attempt ~conflict_limit ~deadline:None)
  | Some b ->
      let base_conflicts =
        match conflict_limit with Some _ -> conflict_limit | None -> b.b_conflicts
      in
      if base_conflicts = None && b.b_deadline = None then
        finish ~rung:0 (attempt ~conflict_limit:None ~deadline:None)
      else begin
        let rec go i scale =
          let deadline =
            Option.map
              (fun s -> Unix.gettimeofday () +. (s *. float_of_int scale))
              b.b_deadline
          in
          let conflicts = Option.map (fun c -> c * scale) base_conflicts in
          match attempt ~conflict_limit:conflicts ~deadline with
          | Unknown when i < b.b_escalations ->
              st.budget_escalations <- st.budget_escalations + 1;
              go (i + 1) (scale * 4)
          | Unknown ->
              st.budget_exhaustions <- st.budget_exhaustions + 1;
              finish ~rung:i Unknown
          | r -> finish ~rung:i r
        in
        go 0 1
      end

let solve_with_sat d terms ~conflict_limit ~deadline =
  let st = d.dstats in
  if fault_fires d then Unknown
  else begin
    let sat = Sat.create () in
    let bb = Bitblast.create sat in
    Obs.span Obs.Bitblast (fun () -> List.iter (Bitblast.assert_true bb) terms);
    st.sat_calls <- st.sat_calls + 1;
    let t0 = Unix.gettimeofday () in
    let answer = Sat.solve ?conflict_limit ?deadline sat in
    st.solve_time <- st.solve_time +. (Unix.gettimeofday () -. t0);
    match answer with
    | Some Sat.Sat ->
        st.sat_results <- st.sat_results + 1;
        Sat (Bitblast.extract_model bb)
    | Some Sat.Unsat ->
        st.unsat_results <- st.unsat_results + 1;
        Unsat
    | None -> Unknown
  end

let check ?conflict_limit terms =
  let d = domain_state () in
  let st = d.dstats in
  st.queries <- st.queries + 1;
  Obs.span Obs.Solver_query (fun () ->
      match canonicalize terms with
      | None ->
          st.unsat_results <- st.unsat_results + 1;
          Unsat
      | Some [] -> Sat Model.empty
      | Some key -> (
          match
            if d.dcache_enabled then Key_tbl.find_opt d.dcache key else None
          with
          | Some r ->
              st.cache_hits <- st.cache_hits + 1;
              if Obs.live () then Obs.emit ~kind:"cache" ~name:"hit" ();
              r
          | None ->
              if d.dcache_enabled then begin
                st.cache_misses <- st.cache_misses + 1;
                if Obs.live () then Obs.emit ~kind:"cache" ~name:"miss" ()
              end;
              let r =
                if Interval.definitely_unsat key then begin
                  st.interval_prunes <- st.interval_prunes + 1;
                  Unsat
                end
                else with_budget ~conflict_limit d (solve_with_sat d key)
              in
              (match r with
              | Unknown -> ()
              | Sat _ | Unsat -> if d.dcache_enabled then cache_insert d key r);
              r))

let is_sat terms = match check terms with Sat _ -> true | Unsat | Unknown -> false
let is_unsat terms = match check terms with Unsat -> true | Sat _ | Unknown -> false

let get_model terms =
  match check terms with Sat m -> Some m | Unsat | Unknown -> None

let implied assumptions t = is_unsat (Term.not_ t :: assumptions)

(* --- incremental sessions ------------------------------------------------- *)

module Incremental = struct
  type session = {
    sat : Sat.t;
    bb : Bitblast.t;
    indicators : int Term.Tbl.t; (* assumption term -> guard var *)
    terms_of_guard : (int, Term.t) Hashtbl.t; (* reverse, for unsat cores *)
    mutable dead : bool; (* permanent constraints became unsatisfiable *)
  }

  let create () =
    let sat = Sat.create () in
    {
      sat;
      bb = Bitblast.create sat;
      indicators = Term.Tbl.create 64;
      terms_of_guard = Hashtbl.create 64;
      dead = false;
    }

  let assert_always session (term : Term.t) =
    match term.Term.node with
    | Term.True -> ()
    | Term.False -> session.dead <- true
    | _ -> Bitblast.assert_true session.bb term

  (* Guard variable implying the term: assuming the guard forces the term.
     Terms are translated (and their implication clause added) once per
     session; later checks reuse the same guard. *)
  let indicator session term =
    match Term.Tbl.find_opt session.indicators term with
    | Some g -> g
    | None ->
        let g = Sat.new_var session.sat in
        Sat.add_clause session.sat [ -g; Bitblast.lit_of session.bb term ];
        Term.Tbl.replace session.indicators term g;
        Hashtbl.replace session.terms_of_guard g term;
        g

  let check ?conflict_limit session terms =
    let d = domain_state () in
    let st = d.dstats in
    st.queries <- st.queries + 1;
    if session.dead then Unsat
    else
      Obs.span Obs.Solver_query (fun () ->
      match canonicalize terms with
      | None -> Unsat
      | Some terms ->
          let assumptions =
            Obs.span Obs.Bitblast (fun () ->
                List.map (indicator session) terms)
          in
          with_budget ~conflict_limit d (fun ~conflict_limit ~deadline ->
              if fault_fires d then Unknown
              else begin
                st.sat_calls <- st.sat_calls + 1;
                let t0 = Unix.gettimeofday () in
                let answer =
                  Sat.solve ?conflict_limit ?deadline ~assumptions session.sat
                in
                st.solve_time <- st.solve_time +. (Unix.gettimeofday () -. t0);
                match answer with
                | Some Sat.Sat ->
                    st.sat_results <- st.sat_results + 1;
                    Sat (Bitblast.extract_model session.bb)
                | Some Sat.Unsat ->
                    st.unsat_results <- st.unsat_results + 1;
                    (* Unsat under assumptions; the session stays usable
                       unless the permanent part itself is contradictory,
                       which the next unassumed call would reveal. *)
                    Unsat
                | None -> Unknown
              end))

  (* The subset of the last check's terms already responsible for its
     unsatisfiability; [None] when the permanent constraints alone are
     contradictory (the empty core). *)
  let unsat_core session =
    match Sat.unsat_core session.sat with
    | [] -> None
    | lits ->
        Some
          (List.filter_map
             (fun l -> Hashtbl.find_opt session.terms_of_guard (abs l))
             lits)

  let is_sat ?conflict_limit session terms =
    match check ?conflict_limit session terms with
    | Sat _ -> true
    | Unsat | Unknown -> false

  let is_unsat ?conflict_limit session terms =
    match check ?conflict_limit session terms with
    | Unsat -> true
    | Sat _ | Unknown -> false
end

(* --- assumption-based frame stack ------------------------------------------

   The incremental core of the solver: one long-lived SAT instance per
   context, a push/pop stack of constraint frames mirroring the DFS path
   prefix, and per-term activation literals. Asserting a term adds the
   clause (-g \/ lit(term)) once; a check solves under the assumptions
   {g_t | t in stack} + {g_e | e in extras}, so sibling queries along the
   path tree re-use each other's CNF and learnt clauses and only the delta
   constraint is ever bitblasted. Popping a frame merely drops its term
   from the stack — the guard stays registered, and re-pushing the same
   term later (the interpreter pushes [cond] for the true child after
   checking [not cond] for the false child) costs a table hit.

   Checks through a frame context are verdict-oriented: [Sat] carries an
   empty model. Model extraction must stay on the scratch path — a
   persistent instance's phase saving and learnt clauses steer it to
   different (though equally valid) models than a fresh solve, and report
   digests include witness bytes. Complete solvers agree on verdicts, which
   is why routing only verdict queries through here keeps report digests
   byte-identical with incrementality on or off. *)

(* Contexts are recycled once the SAT instance accumulates this many
   variables: every CDCL answer assigns all variables, so an instance that
   grew unboundedly across an entire run would make even trivial checks pay
   for every query that came before. Recycling re-asserts only the current
   stack (the bitblast cache is rebuilt on demand). *)
let context_var_cap = Atomic.make 200_000

let set_context_var_cap n =
  if n < 1 then invalid_arg "Solver.set_context_var_cap";
  Atomic.set context_var_cap n

module Frames = struct
  type t = frames_ctx

  let create () =
    let sat = Sat.create () in
    {
      fc_sat = sat;
      fc_bb = Bitblast.create sat;
      fc_guards = Term.Tbl.create 256;
      fc_guard_terms = Hashtbl.create 256;
      fc_stack = [];
      fc_last_core = None;
    }

  let for_domain () =
    let d = domain_state () in
    match d.dframes with
    | Some c -> c
    | None ->
        let c = create () in
        d.dframes <- Some c;
        c

  (* Activation variable implying the term; allocated (and the implication
     clause added) once per context, then reused by every later frame or
     per-call assumption mentioning the same term. *)
  let guard c (term : Term.t) =
    match Term.Tbl.find_opt c.fc_guards term with
    | Some g -> g
    | None ->
        let g = Sat.new_var c.fc_sat in
        Sat.add_clause c.fc_sat [ -g; Bitblast.lit_of c.fc_bb term ];
        Term.Tbl.replace c.fc_guards term g;
        Hashtbl.replace c.fc_guard_terms g term;
        g

  let recycle c =
    let st = (domain_state ()).dstats in
    st.context_resets <- st.context_resets + 1;
    Obs.count "solver.context_resets";
    let sat = Sat.create () in
    c.fc_sat <- sat;
    c.fc_bb <- Bitblast.create sat;
    Term.Tbl.reset c.fc_guards;
    Hashtbl.reset c.fc_guard_terms;
    c.fc_last_core <- None;
    List.iter (fun t -> ignore (guard c t)) (List.rev c.fc_stack)

  let push c term =
    let st = (domain_state ()).dstats in
    st.frame_pushes <- st.frame_pushes + 1;
    Obs.count "solver.push";
    ignore (guard c term);
    c.fc_stack <- term :: c.fc_stack

  let pop c =
    match c.fc_stack with
    | [] -> invalid_arg "Solver.Frames.pop: empty frame stack"
    | _ :: rest ->
        let st = (domain_state ()).dstats in
        st.frame_pops <- st.frame_pops + 1;
        Obs.count "solver.pop";
        c.fc_stack <- rest

  let depth c = List.length c.fc_stack
  let path c = c.fc_stack

  (* Align the frame stack with a DFS path (newest first, as [State.path]):
     keep the common oldest-first prefix, pop what the search backtracked
     past, push the delta. Sibling queries share everything but their last
     few conjuncts, so this is O(path length) list walking and usually one
     push. *)
  let set_path c target =
    let rec strip cur tgt =
      match (cur, tgt) with
      | c0 :: cr, t0 :: tr when Term.equal c0 t0 -> strip cr tr
      | _ -> (cur, tgt)
    in
    let to_pop, to_push = strip (List.rev c.fc_stack) (List.rev target) in
    List.iter (fun _ -> pop c) to_pop;
    List.iter (push c) to_push

  let learnts c = Sat.num_learnts c.fc_sat

  let check ?conflict_limit c extras =
    let d = domain_state () in
    let st = d.dstats in
    st.queries <- st.queries + 1;
    st.incremental_checks <- st.incremental_checks + 1;
    c.fc_last_core <- None;
    Obs.span Obs.Solver_query (fun () ->
        match canonicalize (List.rev_append c.fc_stack extras) with
        | None ->
            st.unsat_results <- st.unsat_results + 1;
            Unsat
        | Some [] -> Sat Model.empty
        | Some key when Interval.definitely_unsat key ->
            (* same sound pre-check the scratch path runs; the whole
               canonical conjunction stands in for a core (the analysis
               does not localize the conflict) *)
            st.interval_prunes <- st.interval_prunes + 1;
            c.fc_last_core <- Some key;
            Unsat
        | Some key when d.dcache_enabled && Key_tbl.mem d.dvcache key ->
            (* verdict cache: repeated queries (sibling branches re-deciding
               the same feasibility, the O(paths^2) matrix probes) answer
               without touching the SAT instance, like the scratch path's
               result cache — but from the verdict-only table *)
            let r, core = Key_tbl.find d.dvcache key in
            st.cache_hits <- st.cache_hits + 1;
            if Obs.live () then Obs.emit ~kind:"cache" ~name:"hit" ();
            (match r with Unsat -> c.fc_last_core <- core | Sat _ | Unknown -> ());
            r
        | Some key ->
            if d.dcache_enabled then begin
              st.cache_misses <- st.cache_misses + 1;
              if Obs.live () then Obs.emit ~kind:"cache" ~name:"miss" ()
            end;
            if Sat.num_vars c.fc_sat > Atomic.get context_var_cap then
              recycle c;
            let assumptions, decide_vars =
              Obs.span Obs.Bitblast (fun () ->
                  (* frame guards oldest-first, then the per-call extras:
                     assumptions become the leading decision levels, so this
                     keeps the shared path prefix at the same levels across
                     sibling queries *)
                  let path_guards = List.rev_map (guard c) c.fc_stack in
                  let assumptions = path_guards @ List.map (guard c) extras in
                  (* decisions restricted to the query's own translation
                     cone: everything else in the shared instance is either
                     an unassumed activation implication or a total circuit
                     definition, so a cone-complete partial assignment always
                     extends — the query must not pay for what its siblings
                     accumulated *)
                  let decide_vars =
                    Bitblast.cone_vars c.fc_bb
                      (List.rev_append c.fc_stack extras)
                  in
                  (assumptions, decide_vars))
            in
            let rung = ref (-1) in
            let r =
              with_budget ~conflict_limit d (fun ~conflict_limit ~deadline ->
                incr rung;
                let retained = Sat.num_learnts c.fc_sat in
                st.learnts_retained <- st.learnts_retained + retained;
                if !rung > 0 then begin
                  (* learning carried into an escalation retry: the rung
                     restarts with a bigger budget but not from scratch *)
                  st.rung_retained <- st.rung_retained + retained;
                  Obs.count ~n:retained "solver.rung_retained_learnts"
                end;
                if fault_fires d then Unknown
                else begin
                  st.sat_calls <- st.sat_calls + 1;
                  let t0 = Unix.gettimeofday () in
                  let answer =
                    Sat.solve ?conflict_limit ?deadline ~assumptions
                      ~decide_vars c.fc_sat
                  in
                  st.solve_time <- st.solve_time +. (Unix.gettimeofday () -. t0);
                  match answer with
                  | Some Sat.Sat ->
                      st.sat_results <- st.sat_results + 1;
                      Sat Model.empty
                  | Some Sat.Unsat ->
                      st.unsat_results <- st.unsat_results + 1;
                      c.fc_last_core <-
                        (match Sat.unsat_core c.fc_sat with
                        | [] -> None
                        | lits ->
                            Some
                              (List.filter_map
                                 (fun l ->
                                   Hashtbl.find_opt c.fc_guard_terms (abs l))
                                 lits));
                      Unsat
                  | None -> Unknown
                end)
            in
            (match r with
            | Unknown -> ()
            | Sat _ | Unsat ->
                if d.dcache_enabled then
                  vcache_insert d key (r, c.fc_last_core));
            r)

  let is_sat ?conflict_limit c extras =
    match check ?conflict_limit c extras with
    | Sat _ -> true
    | Unsat | Unknown -> false

  (* Assumption terms (frames and per-call extras alike) responsible for the
     last [Unsat]; [None] when the last check answered Sat/Unknown or hit a
     trivially-false conjunct. *)
  let unsat_core c = c.fc_last_core
end

let check_assuming ?conflict_limit ?(path = []) extras =
  if not (incremental_enabled ()) then check ?conflict_limit (extras @ path)
  else begin
    let c = Frames.for_domain () in
    Frames.set_path c path;
    Frames.check ?conflict_limit c extras
  end

let is_sat_assuming ?path terms =
  match check_assuming ?path terms with
  | Sat _ -> true
  | Unsat | Unknown -> false

let last_assumption_core () =
  if not (incremental_enabled ()) then None
  else
    match (domain_state ()).dframes with
    | None -> None
    | Some c -> Frames.unsat_core c
