(* A MiniSat-style CDCL solver. Internal literals are encoded as
   [2*var + sign] with sign = 1 for negated, so [lit lxor 1] negates and
   [lit lsr 1] recovers the variable. Variables are 1-based; index 0 of the
   per-variable arrays is unused. *)

type clause = {
  mutable lits : int array; (* lits.(0) and lits.(1) are watched *)
  learnt : bool;
  mutable activity : float;
}

module Vec = struct
  type 'a t = { mutable data : 'a array; mutable size : int; dummy : 'a }

  let create dummy = { data = Array.make 16 dummy; size = 0; dummy }

  let push v x =
    if v.size = Array.length v.data then begin
      let data = Array.make (2 * v.size) v.dummy in
      Array.blit v.data 0 data 0 v.size;
      v.data <- data
    end;
    v.data.(v.size) <- x;
    v.size <- v.size + 1

  let get v i = v.data.(i)
  let set v i x = v.data.(i) <- x
  let size v = v.size
  let shrink v n = v.size <- n
  let clear v = v.size <- 0
  let pop v = v.size <- v.size - 1; v.data.(v.size)
end

type t = {
  mutable ok : bool; (* false once a top-level conflict is found *)
  mutable nvars : int;
  clauses : clause Vec.t;
  learnts : clause Vec.t;
  mutable watches : clause Vec.t array; (* indexed by internal literal *)
  mutable assigns : int array; (* -1 unassigned / 0 false / 1 true, by var *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable activity : float array;
  mutable polarity : bool array; (* saved phase, by var *)
  mutable seen : bool array; (* scratch for conflict analysis *)
  mutable heap_index : int array; (* position in [heap], -1 if absent *)
  heap : int Vec.t; (* binary max-heap of vars ordered by activity *)
  trail : int Vec.t; (* assigned literals in order *)
  trail_lim : int Vec.t; (* trail size at each decision level *)
  mutable qhead : int;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable n_conflicts : int;
  mutable n_decisions : int;
  mutable n_propagations : int;
  mutable max_learnts : float;
  mutable last_core : int list; (* internal lits; valid after assumption-UNSAT *)
}

let dummy_clause = { lits = [||]; learnt = false; activity = 0. }

let create () =
  {
    ok = true;
    nvars = 0;
    clauses = Vec.create dummy_clause;
    learnts = Vec.create dummy_clause;
    watches = Array.init 4 (fun _ -> Vec.create dummy_clause);
    assigns = Array.make 4 (-1);
    level = Array.make 4 0;
    reason = Array.make 4 None;
    activity = Array.make 4 0.;
    polarity = Array.make 4 false;
    seen = Array.make 4 false;
    heap_index = Array.make 4 (-1);
    heap = Vec.create 0;
    trail = Vec.create 0;
    trail_lim = Vec.create 0;
    qhead = 0;
    var_inc = 1.0;
    cla_inc = 1.0;
    n_conflicts = 0;
    n_decisions = 0;
    n_propagations = 0;
    max_learnts = 0.;
    last_core = [];
  }

let grow_array make a n =
  let len = Array.length a in
  if n < len then a
  else begin
    let a' = make (max n (2 * len)) in
    Array.blit a 0 a' 0 len;
    a'
  end

(* --- activity order heap ------------------------------------------------ *)

let heap_lt s v w = s.activity.(v) > s.activity.(w)

let rec heap_sift_up s i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    let v = Vec.get s.heap i and p = Vec.get s.heap parent in
    if heap_lt s v p then begin
      Vec.set s.heap i p;
      Vec.set s.heap parent v;
      s.heap_index.(p) <- i;
      s.heap_index.(v) <- parent;
      heap_sift_up s parent
    end
  end

let rec heap_sift_down s i =
  let n = Vec.size s.heap in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = i in
  let best = if l < n && heap_lt s (Vec.get s.heap l) (Vec.get s.heap best) then l else best in
  let best = if r < n && heap_lt s (Vec.get s.heap r) (Vec.get s.heap best) then r else best in
  if best <> i then begin
    let a = Vec.get s.heap i and b = Vec.get s.heap best in
    Vec.set s.heap i b;
    Vec.set s.heap best a;
    s.heap_index.(b) <- i;
    s.heap_index.(a) <- best;
    heap_sift_down s best
  end

let heap_insert s v =
  if s.heap_index.(v) = -1 then begin
    Vec.push s.heap v;
    s.heap_index.(v) <- Vec.size s.heap - 1;
    heap_sift_up s (Vec.size s.heap - 1)
  end

let heap_remove_max s =
  let top = Vec.get s.heap 0 in
  let last = Vec.pop s.heap in
  s.heap_index.(top) <- -1;
  if Vec.size s.heap > 0 then begin
    Vec.set s.heap 0 last;
    s.heap_index.(last) <- 0;
    heap_sift_down s 0
  end;
  top

let heap_decrease s v = if s.heap_index.(v) >= 0 then heap_sift_up s s.heap_index.(v)

(* --- variables and values ----------------------------------------------- *)

let new_var s =
  s.nvars <- s.nvars + 1;
  let v = s.nvars in
  let n = v + 1 in
  s.assigns <- grow_array (fun n -> Array.make n (-1)) s.assigns n;
  s.level <- grow_array (fun n -> Array.make n 0) s.level n;
  s.reason <- grow_array (fun n -> Array.make n None) s.reason n;
  s.activity <- grow_array (fun n -> Array.make n 0.) s.activity n;
  s.polarity <- grow_array (fun n -> Array.make n false) s.polarity n;
  s.seen <- grow_array (fun n -> Array.make n false) s.seen n;
  s.heap_index <- grow_array (fun n -> Array.make n (-1)) s.heap_index n;
  let nlits = 2 * (v + 1) in
  if nlits > Array.length s.watches then begin
    let watches = Array.init (max nlits (2 * Array.length s.watches))
        (fun i -> if i < Array.length s.watches then s.watches.(i)
          else Vec.create dummy_clause)
    in
    s.watches <- watches
  end;
  heap_insert s v;
  v

let num_vars s = s.nvars

let lit_of_dimacs s l =
  let v = abs l in
  if l = 0 || v > s.nvars then invalid_arg "Sat: literal out of range";
  if l > 0 then 2 * v else (2 * v) + 1

(* value of an internal literal: -1 unassigned, 0 false, 1 true *)
let lit_val s l =
  let a = s.assigns.(l lsr 1) in
  if a < 0 then -1 else a lxor (l land 1)

let decision_level s = Vec.size s.trail_lim

(* --- assignment --------------------------------------------------------- *)

let enqueue s l reason =
  let v = l lsr 1 in
  s.assigns.(v) <- 1 lxor (l land 1);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  Vec.push s.trail l

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    for i = Vec.size s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = l lsr 1 in
      s.polarity.(v) <- s.assigns.(v) = 1;
      s.assigns.(v) <- -1;
      s.reason.(v) <- None;
      heap_insert s v
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lvl;
    s.qhead <- bound
  end

(* --- clause management --------------------------------------------------- *)

let watch s l c = Vec.push s.watches.(l) c

let attach_clause s c =
  watch s (c.lits.(0) lxor 1) c;
  watch s (c.lits.(1) lxor 1) c

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 1 to s.nvars do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  heap_decrease s v

let var_decay s = s.var_inc <- s.var_inc /. 0.95

let cla_bump s (c : clause) =
  c.activity <- c.activity +. s.cla_inc;
  if c.activity > 1e20 then begin
    for i = 0 to Vec.size s.learnts - 1 do
      let c = Vec.get s.learnts i in
      c.activity <- c.activity *. 1e-20
    done;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let cla_decay s = s.cla_inc <- s.cla_inc /. 0.999

let add_clause s lits =
  (* clauses may only be simplified against root-level facts; a model left
     by a previous [solve] must not satisfy-away or shrink a new clause *)
  cancel_until s 0;
  if s.ok then begin
    let lits = List.map (lit_of_dimacs s) lits in
    (* remove duplicates; drop clause if tautological or already true *)
    let lits = List.sort_uniq compare lits in
    let tautology =
      List.exists (fun l -> List.mem (l lxor 1) lits) lits
      || List.exists (fun l -> lit_val s l = 1) lits
    in
    if not tautology then begin
      let lits = List.filter (fun l -> lit_val s l <> 0) lits in
      match lits with
      | [] -> s.ok <- false
      | [ l ] -> enqueue s l None
      | _ ->
          let c = { lits = Array.of_list lits; learnt = false; activity = 0. } in
          Vec.push s.clauses c;
          attach_clause s c
    end
  end

(* --- propagation --------------------------------------------------------- *)

exception Conflict of clause

let propagate s =
  try
    while s.qhead < Vec.size s.trail do
      let l = Vec.get s.trail s.qhead in
      s.qhead <- s.qhead + 1;
      s.n_propagations <- s.n_propagations + 1;
      (* [l] became true, so literal [l lxor 1] became false; the clauses
         watching it are registered under [watches.(l)]. *)
      let ws = s.watches.(l) in
      let falsified = l lxor 1 in
      let n = Vec.size ws in
      let kept = ref 0 in
      for i = 0 to n - 1 do
        let c = Vec.get ws i in
        (* ensure the false literal is lits.(1) *)
        if c.lits.(0) = falsified then begin
          c.lits.(0) <- c.lits.(1);
          c.lits.(1) <- falsified
        end;
        if lit_val s c.lits.(0) = 1 then begin
          (* clause satisfied; keep the watch *)
          Vec.set ws !kept c;
          incr kept
        end
        else begin
          (* look for a new literal to watch *)
          let len = Array.length c.lits in
          let found = ref false in
          let j = ref 2 in
          while (not !found) && !j < len do
            if lit_val s c.lits.(!j) <> 0 then begin
              c.lits.(1) <- c.lits.(!j);
              c.lits.(!j) <- falsified;
              watch s (c.lits.(1) lxor 1) c;
              found := true
            end;
            incr j
          done;
          if not !found then begin
            (* unit or conflicting *)
            Vec.set ws !kept c;
            incr kept;
            if lit_val s c.lits.(0) = 0 then begin
              (* conflict: keep remaining watches before raising *)
              for k = i + 1 to n - 1 do
                Vec.set ws !kept (Vec.get ws k);
                incr kept
              done;
              Vec.shrink ws !kept;
              s.qhead <- Vec.size s.trail;
              raise (Conflict c)
            end
            else enqueue s c.lits.(0) (Some c)
          end
        end
      done;
      Vec.shrink ws !kept
    done;
    None
  with Conflict c -> Some c

(* --- conflict analysis (first UIP) --------------------------------------- *)

let analyze s confl =
  let learnt = ref [] in
  let path_count = ref 0 in
  let p = ref (-1) in (* -1 encodes "start with the whole conflict clause" *)
  let index = ref (Vec.size s.trail - 1) in
  let backtrack_level = ref 0 in
  let c = ref confl in
  let continue = ref true in
  while !continue do
    if !c.learnt then cla_bump s !c;
    let lits = !c.lits in
    let start = if !p = -1 then 0 else 1 in
    for j = start to Array.length lits - 1 do
      let q = lits.(j) in
      let v = q lsr 1 in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        var_bump s v;
        s.seen.(v) <- true;
        if s.level.(v) >= decision_level s then incr path_count
        else begin
          learnt := q :: !learnt;
          if s.level.(v) > !backtrack_level then backtrack_level := s.level.(v)
        end
      end
    done;
    (* select next literal to expand from the trail *)
    let rec next_seen i =
      let l = Vec.get s.trail i in
      if s.seen.(l lsr 1) then i else next_seen (i - 1)
    in
    index := next_seen !index;
    let l = Vec.get s.trail !index in
    decr index;
    p := l;
    s.seen.(l lsr 1) <- false;
    decr path_count;
    if !path_count > 0 then
      c :=
        (match s.reason.(l lsr 1) with
        | Some r -> r
        | None -> assert false)
    else continue := false
  done;
  let learnt_lits = (!p lxor 1) :: !learnt in
  List.iter (fun l -> s.seen.(l lsr 1) <- false) !learnt;
  (learnt_lits, !backtrack_level)

(* --- learnt clause DB reduction ------------------------------------------ *)

let locked s (c : clause) =
  let v = c.lits.(0) lsr 1 in
  lit_val s c.lits.(0) = 1 && s.reason.(v) == Some c

let remove_watch s l c =
  let ws = s.watches.(l) in
  let n = Vec.size ws in
  let kept = ref 0 in
  for i = 0 to n - 1 do
    let c' = Vec.get ws i in
    if c' != c then begin
      Vec.set ws !kept c';
      incr kept
    end
  done;
  Vec.shrink ws !kept

let detach_clause s c =
  remove_watch s (c.lits.(0) lxor 1) c;
  remove_watch s (c.lits.(1) lxor 1) c

let reduce_db s =
  let n = Vec.size s.learnts in
  let arr = Array.init n (Vec.get s.learnts) in
  Array.sort (fun (a : clause) (b : clause) -> compare a.activity b.activity) arr;
  Vec.clear s.learnts;
  let limit = s.cla_inc /. float_of_int (max n 1) in
  Array.iteri
    (fun i c ->
      if
        (not (locked s c))
        && Array.length c.lits > 2
        && (i < n / 2 || c.activity < limit)
      then detach_clause s c
      else Vec.push s.learnts c)
    arr

(* --- search --------------------------------------------------------------- *)

let pick_branch_var s =
  let rec go () =
    if Vec.size s.heap = 0 then 0
    else
      let v = heap_remove_max s in
      if s.assigns.(v) = -1 then v else go ()
  in
  go ()

(* Restricted decision order: an ordered array of candidate vars and a
   monotone scan pointer. The pointer only ever moves right between
   conflicts; a backtrack unassigns variables to its left, so conflicts (and
   fresh [search] calls after a restart) reset it to 0. Returns 0 when every
   candidate is assigned. *)
let pick_branch_restricted s (arr : int array) ptr =
  let n = Array.length arr in
  let rec go i =
    if i >= n then 0
    else
      let v = arr.(i) in
      if s.assigns.(v) = -1 then begin
        ptr := i;
        v
      end
      else go (i + 1)
  in
  go !ptr

let luby y x =
  (* Finite subsequences of the Luby sequence *)
  let rec find_size size seq =
    if size >= x + 1 then (size, seq) else find_size ((2 * size) + 1) (seq + 1)
  in
  let rec go x (size, seq) =
    if size - 1 = x then (seq, x)
    else
      let size = (size - 1) / 2 in
      let seq = seq - 1 in
      go (x mod size) (size, seq)
  in
  let seq, _ = go x (find_size 1 0) in
  y ** float_of_int seq

(* Which assumption decisions force the given (currently false) literals?
   Standard analyzeFinal: walk the trail top-down through reasons, keeping
   the decisions encountered (at assumption levels every decision is an
   assumption). Returns internal literals of the involved assumptions. *)
let analyze_final s seed_lits =
  let core = ref [] in
  List.iter
    (fun l ->
      let v = l lsr 1 in
      if s.level.(v) > 0 then s.seen.(v) <- true)
    seed_lits;
  for i = Vec.size s.trail - 1 downto 0 do
    let l = Vec.get s.trail i in
    let v = l lsr 1 in
    if s.seen.(v) then begin
      (match s.reason.(v) with
      | None -> core := l :: !core (* a decision: an assumption *)
      | Some c ->
          Array.iter
            (fun l' ->
              let v' = l' lsr 1 in
              if v' <> v && s.level.(v') > 0 then s.seen.(v') <- true)
            c.lits);
      s.seen.(v) <- false
    end
  done;
  (* clear any remaining scratch marks (level-0 seeds) *)
  List.iter (fun l -> s.seen.(l lsr 1) <- false) seed_lits;
  !core

type result = Sat | Unsat

(* Unsatisfiable specifically under the current assumptions (the instance
   itself may still be satisfiable). *)
exception Assumption_conflict

let search s ~assumptions ~order ~max_conflicts =
  let conflicts = ref 0 in
  (match order with Some (_, ptr) -> ptr := 0 | None -> ());
  let rec loop () =
    match propagate s with
    | Some confl ->
        s.n_conflicts <- s.n_conflicts + 1;
        incr conflicts;
        if decision_level s = 0 then begin
          s.ok <- false;
          Some Unsat
        end
        else if decision_level s <= Array.length assumptions then begin
          (* the conflict depends only on assumption decisions and their
             consequences: the query is unsatisfiable under them *)
          s.last_core <- analyze_final s (Array.to_list confl.lits);
          raise Assumption_conflict
        end
        else begin
          let learnt_lits, back_level = analyze s confl in
          cancel_until s back_level;
          (match order with Some (_, ptr) -> ptr := 0 | None -> ());
          (match learnt_lits with
          | [ l ] -> enqueue s l None
          | l :: _ ->
              let c =
                { lits = Array.of_list learnt_lits; learnt = true; activity = 0. }
              in
              cla_bump s c;
              Vec.push s.learnts c;
              attach_clause s c;
              enqueue s l (Some c)
          | [] -> assert false);
          var_decay s;
          cla_decay s;
          loop ()
        end
    | None ->
        if !conflicts >= max_conflicts then begin
          cancel_until s 0;
          None
        end
        else if float_of_int (Vec.size s.learnts) >= s.max_learnts then begin
          reduce_db s;
          decide ()
        end
        else decide ()
  and decide () =
    let level = decision_level s in
    if level < Array.length assumptions then begin
      (* take the next assumption as a decision *)
      let l = assumptions.(level) in
      match lit_val s l with
      | 1 ->
          (* already implied: open an empty level so indices line up *)
          Vec.push s.trail_lim (Vec.size s.trail);
          loop ()
      | 0 ->
          (* this assumption is falsified by the previous ones *)
          s.last_core <- l :: analyze_final s [ l lxor 1 ];
          raise Assumption_conflict
      | _ ->
          Vec.push s.trail_lim (Vec.size s.trail);
          enqueue s l None;
          loop ()
    end
    else begin
      let v =
        match order with
        | None -> pick_branch_var s
        | Some (arr, ptr) -> pick_branch_restricted s arr ptr
      in
      if v = 0 then Some Sat
      else begin
        s.n_decisions <- s.n_decisions + 1;
        Vec.push s.trail_lim (Vec.size s.trail);
        let l = if s.polarity.(v) then 2 * v else (2 * v) + 1 in
        enqueue s l None;
        loop ()
      end
    end
  in
  loop ()

let solve ?conflict_limit ?deadline ?(assumptions = []) ?decide_vars s =
  cancel_until s 0;
  s.last_core <- [];
  if not s.ok then Some Unsat
  else begin
    let assumptions = Array.of_list (List.map (lit_of_dimacs s) assumptions) in
    let order =
      match decide_vars with
      | None -> None
      | Some vars ->
          Array.iter
            (fun v ->
              if v < 1 || v > s.nvars then
                invalid_arg "Sat.solve: decide variable out of range")
            vars;
          (* the first restart segment decides in the order given — for
             circuit CNF, allocation order is roughly topological (inputs
             first, outputs propagated), and easy queries never pay for a
             sort — later segments re-sort by activity (below), giving
             conflict-heavy queries a periodically-refreshed VSIDS order *)
          Some (vars, ref 0)
    in
    s.max_learnts <- max 1000. (float_of_int (Vec.size s.clauses) /. 3.);
    let budget_left =
      ref (match conflict_limit with None -> max_int | Some n -> n)
    in
    let past_deadline () =
      match deadline with
      | None -> false
      | Some d -> Unix.gettimeofday () > d
    in
    let rec restart_loop i =
      if !budget_left <= 0 || past_deadline () then None
      else begin
        (match order with
        | Some (arr, _) when i > 0 ->
            (* the query survived a whole restart segment: refresh the static
               decision order from the activities the conflicts built up *)
            Array.sort
              (fun a b -> compare s.activity.(b) s.activity.(a))
              arr
        | _ -> ());
        let inner = int_of_float (100. *. luby 2. i) in
        let inner = min inner !budget_left in
        match search s ~assumptions ~order ~max_conflicts:inner with
        | Some r -> Some r
        | None ->
            budget_left := !budget_left - inner;
            restart_loop (i + 1)
      end
    in
    match restart_loop 0 with
    | Some Unsat ->
        s.ok <- false;
        Some Unsat
    | (Some Sat | None) as result -> result
    | exception Assumption_conflict ->
        cancel_until s 0;
        Some Unsat
  end

let value s v =
  if v < 1 || v > s.nvars then invalid_arg "Sat.value: out of range";
  s.assigns.(v) = 1

let lit_value s l =
  let b = value s (abs l) in
  if l > 0 then b else not b

(* Assumptions (DIMACS) involved in the last assumption-level UNSAT; the
   empty list when the instance is unsatisfiable outright. *)
let unsat_core s =
  List.map
    (fun l -> if l land 1 = 0 then l lsr 1 else -(l lsr 1))
    s.last_core

let conflicts s = s.n_conflicts
let decisions s = s.n_decisions
let propagations s = s.n_propagations

(* Learnt clauses currently in the database. Unit learnts are enqueued at
   level 0 rather than stored, so this undercounts total learning — but it
   is exactly the number of clauses an incremental caller retains between
   solves, which is what the clause-retention statistics report. *)
let num_learnts s = Vec.size s.learnts
let num_clauses s = Vec.size s.clauses
