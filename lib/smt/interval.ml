type bounds = { lo : int64; hi : int64 }

let ucmp = Int64.unsigned_compare
let umin a b = if ucmp a b <= 0 then a else b
let umax a b = if ucmp a b >= 0 then a else b

type acc = {
  mutable ivals : (Term.var * bounds) list; (* keyed by var id *)
  mutable neqs : (int * int64) list; (* var id, excluded value *)
  mutable empty : bool;
}

let full_bounds (v : Term.var) =
  match v.sort with
  | Term.Bitvec w -> { lo = 0L; hi = Bv.value (Bv.ones w) }
  | Term.Bool -> { lo = 0L; hi = 1L }

let refine acc (v : Term.var) ~lo ~hi =
  if not acc.empty then begin
    let current =
      match List.assq_opt v acc.ivals with
      | Some b -> b
      | None -> full_bounds v
    in
    let lo = umax current.lo lo and hi = umin current.hi hi in
    if ucmp lo hi > 0 then acc.empty <- true
    else acc.ivals <- (v, { lo; hi }) :: List.remove_assq v acc.ivals
  end

let exclude acc (v : Term.var) value = acc.neqs <- (v.id, value) :: acc.neqs

(* Recognize [atom] (positively or negatively) as a bound on a single
   variable. Anything unrecognized is ignored, which is sound. *)
let rec scan acc ~positive (atom : Term.t) =
  let max_of (v : Term.var) = (full_bounds v).hi in
  match atom.Term.node, positive with
  | Term.Not t, _ -> scan acc ~positive:(not positive) t
  | Term.And (a, b), true ->
      scan acc ~positive:true a;
      scan acc ~positive:true b
  | Term.Eq ({ node = Var v; _ }, { node = Const c; _ }), true
  | Term.Eq ({ node = Const c; _ }, { node = Var v; _ }), true ->
      refine acc v ~lo:(Bv.value c) ~hi:(Bv.value c)
  | Term.Eq ({ node = Var v; _ }, { node = Const c; _ }), false
  | Term.Eq ({ node = Const c; _ }, { node = Var v; _ }), false ->
      exclude acc v (Bv.value c)
  | Term.Ult ({ node = Var v; _ }, { node = Const c; _ }), true ->
      (* x < c; c = 0 cannot be produced by the smart constructors *)
      if Bv.value c = 0L then acc.empty <- true
      else refine acc v ~lo:0L ~hi:(Int64.sub (Bv.value c) 1L)
  | Term.Ult ({ node = Var v; _ }, { node = Const c; _ }), false ->
      refine acc v ~lo:(Bv.value c) ~hi:(max_of v)
  | Term.Ult ({ node = Const c; _ }, { node = Var v; _ }), true ->
      if ucmp (Bv.value c) (max_of v) >= 0 then acc.empty <- true
      else refine acc v ~lo:(Int64.add (Bv.value c) 1L) ~hi:(max_of v)
  | Term.Ult ({ node = Const c; _ }, { node = Var v; _ }), false ->
      refine acc v ~lo:0L ~hi:(Bv.value c)
  | Term.Ule ({ node = Var v; _ }, { node = Const c; _ }), true ->
      refine acc v ~lo:0L ~hi:(Bv.value c)
  | Term.Ule ({ node = Var v; _ }, { node = Const c; _ }), false ->
      if ucmp (Bv.value c) (max_of v) >= 0 then acc.empty <- true
      else refine acc v ~lo:(Int64.add (Bv.value c) 1L) ~hi:(max_of v)
  | Term.Ule ({ node = Const c; _ }, { node = Var v; _ }), true ->
      refine acc v ~lo:(Bv.value c) ~hi:(max_of v)
  | Term.Ule ({ node = Const c; _ }, { node = Var v; _ }), false ->
      if Bv.value c = 0L then acc.empty <- true
      else refine acc v ~lo:0L ~hi:(Int64.sub (Bv.value c) 1L)
  | Term.False, true | Term.True, false -> acc.empty <- true
  | _ -> ()

let analyze terms =
  let acc = { ivals = []; neqs = []; empty = false } in
  List.iter (scan acc ~positive:true) terms;
  if acc.empty then None
  else begin
    (* tighten interval edges against disequalities *)
    let tightened =
      List.map
        (fun ((v : Term.var), b) ->
          let excluded x = List.mem (v.id, x) acc.neqs in
          let rec tighten b =
            if ucmp b.lo b.hi > 0 then None
            else if excluded b.lo then
              if Int64.equal b.lo b.hi then None
              else tighten { b with lo = Int64.add b.lo 1L }
            else if excluded b.hi then
              if Int64.equal b.lo b.hi then None
              else tighten { b with hi = Int64.sub b.hi 1L }
            else Some b
          in
          (v, tighten b))
        acc.ivals
    in
    if List.exists (fun (_, b) -> b = None) tightened then None
    else
      Some
        (List.filter_map
           (fun (v, b) -> Option.map (fun b -> (v, b)) b)
           tightened)
  end

let definitely_unsat terms = Option.is_none (analyze terms)
