type value = Vbool of bool | Vbv of Bv.t

module Int_map = Map.Make (Int)

type t = (Term.var * value) Int_map.t

let empty = Int_map.empty

let value_sort = function
  | Vbool _ -> Term.Bool
  | Vbv bv -> Term.Bitvec (Bv.width bv)

let add (v : Term.var) value t =
  if not (Term.sort_equal v.sort (value_sort value)) then
    invalid_arg (Printf.sprintf "Model.add: sort mismatch for %s" v.name);
  Int_map.add v.id (v, value) t

let add_bv v bv t = add v (Vbv bv) t
let add_bool v b t = add v (Vbool b) t
let of_list l = List.fold_left (fun acc (v, value) -> add v value acc) empty l
let find t (v : Term.var) = Option.map snd (Int_map.find_opt v.id t)
let bindings t = Int_map.bindings t |> List.map snd

let pp_value fmt = function
  | Vbool b -> Format.pp_print_bool fmt b
  | Vbv bv -> Bv.pp fmt bv

let default_value (sort : Term.sort) =
  match sort with Bool -> Vbool false | Bitvec w -> Vbv (Bv.zero w)

let as_bool = function
  | Vbool b -> b
  | Vbv _ -> raise (Term.Sort_error "eval: expected Bool")

let as_bv = function
  | Vbv bv -> bv
  | Vbool _ -> raise (Term.Sort_error "eval: expected bitvector")

let rec eval t (term : Term.t) =
  let b e = as_bool (eval t e) in
  let v e = as_bv (eval t e) in
  match term.Term.node with
  | True -> Vbool true
  | False -> Vbool false
  | Const bv -> Vbv bv
  | Var var -> (
      match find t var with Some value -> value | None -> default_value var.sort)
  | Not e -> Vbool (not (b e))
  | And (x, y) -> Vbool (b x && b y)
  | Or (x, y) -> Vbool (b x || b y)
  | Ite (c, x, y) -> if b c then eval t x else eval t y
  | Eq (x, y) -> (
      match eval t x, eval t y with
      | Vbool p, Vbool q -> Vbool (Bool.equal p q)
      | Vbv p, Vbv q -> Vbool (Bv.equal p q)
      | _ -> raise (Term.Sort_error "eval: eq on mismatched sorts"))
  | Ult (x, y) -> Vbool (Bv.ult (v x) (v y))
  | Slt (x, y) -> Vbool (Bv.slt (v x) (v y))
  | Ule (x, y) -> Vbool (Bv.ule (v x) (v y))
  | Sle (x, y) -> Vbool (Bv.sle (v x) (v y))
  | Add (x, y) -> Vbv (Bv.add (v x) (v y))
  | Sub (x, y) -> Vbv (Bv.sub (v x) (v y))
  | Mul (x, y) -> Vbv (Bv.mul (v x) (v y))
  | Udiv (x, y) -> Vbv (Bv.udiv (v x) (v y))
  | Urem (x, y) -> Vbv (Bv.urem (v x) (v y))
  | Bnot x -> Vbv (Bv.lognot (v x))
  | Band (x, y) -> Vbv (Bv.logand (v x) (v y))
  | Bor (x, y) -> Vbv (Bv.logor (v x) (v y))
  | Bxor (x, y) -> Vbv (Bv.logxor (v x) (v y))
  | Shl (x, y) -> Vbv (Bv.shl (v x) (v y))
  | Lshr (x, y) -> Vbv (Bv.lshr (v x) (v y))
  | Ashr (x, y) -> Vbv (Bv.ashr (v x) (v y))
  | Concat (x, y) -> Vbv (Bv.concat (v x) (v y))
  | Extract (hi, lo, x) -> Vbv (Bv.extract ~hi ~lo (v x))

let eval_bool t term = as_bool (eval t term)
let eval_bv t term = as_bv (eval t term)
let satisfies t terms = List.for_all (eval_bool t) terms

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun ((var : Term.var), value) ->
      Format.fprintf fmt "%s#%d = %a@," var.name var.id pp_value value)
    (bindings t);
  Format.fprintf fmt "@]"
