(** Cheap incomplete unsatisfiability pre-check based on unsigned intervals.

    The check scans a conjunction for atomic constraints that bound a single
    variable against a constant ([x < c], [c <= x], [x = c], [x <> c] and
    friends), intersects the resulting unsigned intervals per variable, and
    reports definite unsatisfiability when an interval becomes empty. Path
    constraints produced by symbolic execution are full of such atoms, so
    this filters out many queries before the SAT solver runs.

    The check is sound: [definitely_unsat ts = true] implies the conjunction
    of [ts] has no model. [false] means "don't know". *)

type bounds = { lo : int64; hi : int64 }
(** Unsigned inclusive bounds. *)

val analyze : Term.t list -> (Term.var * bounds) list option
(** Per-variable refined bounds, or [None] if some interval is empty (the
    conjunction is unsatisfiable). Variables without recognized atomic
    constraints are omitted. *)

val definitely_unsat : Term.t list -> bool
