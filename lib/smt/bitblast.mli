(** Bitblasting of bitvector terms to CNF over a {!Sat} instance.

    A context owns a SAT solver and a cache mapping already-translated terms
    to their SAT-level representation (a literal for booleans, an lsb-first
    literal vector for bitvectors). Identical subterms are translated once.

    Division and remainder follow SMT-LIB semantics ([udiv x 0 = ones],
    [urem x 0 = x]); shifts by amounts [>= width] produce zero (or the sign
    fill for arithmetic shifts). *)

type t

val create : Sat.t -> t
val sat : t -> Sat.t

val assert_true : t -> Term.t -> unit
(** Constrain a boolean-sorted term to hold. *)

val lit_of : t -> Term.t -> int
(** DIMACS literal equisatisfiable with a boolean-sorted term. *)

val extract_model : t -> Model.t
(** Read back values for every term variable mentioned so far. Only valid
    after [Sat.solve] returned [Sat]. *)

val clauses_added : t -> int
val aux_vars : t -> int

val cached_terms : t -> int
(** Distinct terms translated so far in this context — the reuse a
    long-lived (incremental) context has accumulated. *)

val cone_vars : t -> Term.t list -> int array
(** The SAT variables mentioned by the translations of the given terms
    (each variable once, in no particular order). Every term must already
    have been translated in this context ({!lit_of}/{!assert_true});
    untranslated subterms are silently absent. A long-lived context passes
    this as [Sat.solve]'s [decide_vars] so a query only decides its own
    cone instead of everything the context has accumulated. *)

(** {1 Memo statistics}

    Translation-cache hits and misses, accumulated per domain across every
    context the domain creates (contexts are per-query, so the counters
    must outlive them). *)

val memo_stats : unit -> int * int
(** [(hits, misses)] for the calling domain. *)

val aggregate_memo_stats : unit -> int * int
(** Totals over all domains that have bitblasted anything. *)

val reset_memo_stats : unit -> unit
(** Zero every domain's counters. *)
